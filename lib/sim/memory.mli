(** Flat data memory with two access models.

    One 4-byte cell per program word; a cell holds either a 32-bit
    integer or a double (per-cell kind tag). Byte accesses address
    little-endian lanes within integer cells and never alignment-trap.

    - strict (default): out-of-range, null, misaligned or
      kind-confused accesses raise {!Sim.Trap.Error} — an MMU model;
    - lenient: the SimpleScalar sim-safe model the paper ran on —
      wild loads read 0, wild stores vanish, kind confusion reads 0,
      and misaligned word accesses are truncated to their word. *)

type t

val create : ?lenient:bool -> cells:int -> unit -> t
val size_bytes : t -> int
val is_lenient : t -> bool

val copy : t -> t
(** Deep copy (fresh cell arrays, same access model). The restore
    primitive of checkpointed execution: copying a prototype or
    snapshot image replaces replaying {!of_prog}'s initialization. *)

val load_int : t -> int -> int
val load_flt : t -> int -> float
val store_int : t -> int -> int -> unit
val store_flt : t -> int -> float -> unit

val load_byte : t -> int -> int
(** Zero-extended; never alignment-traps. *)

val store_byte : t -> int -> int -> unit
(** Stores the low 8 bits; never alignment-traps. *)

val peek : t -> int -> Value.t option
(** Non-trapping inspection (word granularity). *)

val cell_index : t -> int -> int
(** Non-trapping resolution of a word access to its cell under this
    machine's model, or [-1] when the access hits no cell (lenient
    zero page, or an address that would trap). For the taint
    interpreter's shadow memory. *)

val byte_cell_index : t -> int -> int
(** Like {!cell_index} for byte accesses (no alignment handling). *)

val of_prog : ?lenient:bool -> Ir.Prog.t -> t
(** Lay out and initialize the program's globals (see
    {!Ir.Prog.layout}). *)

val read_global : t -> Ir.Prog.t -> string -> Value.t array
(** A whole global in element order; byte globals are unpacked. *)

val read_global_ints : t -> Ir.Prog.t -> string -> int array
(** Float cells convert with truncation; non-finite or out-of-range
    doubles (reachable after float injection) read as [0] instead of
    the platform's unspecified [int_of_float] result. *)

val int_of_float_total : float -> int
(** The total conversion {!read_global_ints} uses: truncation for
    finite doubles inside the 32-bit int range, [0] for everything
    [int_of_float] leaves unspecified (nan, infinities, out-of-range).
    Exposed so other float-to-int sites (workload/score extraction)
    share one defined behaviour instead of raw [int_of_float]. *)

val read_global_flts : t -> Ir.Prog.t -> string -> float array

val digest : t -> string
(** Hex MD5 over the full image: cell values, kind tags, size and
    access model. Equal digests mean the two memories are observably
    identical to the interpreter. *)
