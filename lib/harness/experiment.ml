(* Shared experiment context: each application built once per seed,
   with campaign targets under both tagging modes and prepared
   injection configurations per policy.

   Mode vocabulary (see DESIGN.md and EXPERIMENTS.md):
   - [Full]: control + address protection (the companion work's
     treatment; reproduces Table 2's near-zero protected failures);
   - [Literal]: the paper's Section-3 rules verbatim — loads terminate
     def-use chains and addresses are not pulled into CVar (reproduces
     Table 3's large low-reliability fractions). *)

type mode =
  | Full
  | Literal

let mode_name = function Full -> "full" | Literal -> "literal"

type loaded = {
  app : Apps.App.t;
  built : Apps.App.built;
  golden : Sim.Interp.result;
  target : mode -> Core.Campaign.target;
  prepared : mode -> Core.Policy.t -> Core.Campaign.prepared;
}

(* Mutex-protected so the per-app closures may be forced from worker
   domains (e.g. Table 3 computing its rows in parallel, one app per
   domain). The lock is held across the compute: concurrent callers of
   the same memo serialize, distinct apps (distinct memos) do not. *)
let memo f =
  let tbl = Hashtbl.create 4 in
  let lock = Mutex.create () in
  fun k ->
    Mutex.lock lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock lock)
      (fun () ->
        match Hashtbl.find_opt tbl k with
        | Some v -> v
        | None ->
          let v = f k in
          Hashtbl.replace tbl k v;
          v)

let load ?(seed = 1) ?jobs ?engine ?checkpoint_stride (app : Apps.App.t) :
    loaded =
  let built = app.Apps.App.build ~seed in
  let of_prog mode =
    Core.Campaign.of_prog
      ~protect_addresses:(mode = Full)
      ?engine built.Apps.App.prog
  in
  let target =
    match jobs with
    | None -> memo of_prog
    | Some _ ->
      (* Single-app parallel path (e.g. [etap inject APP --jobs N]):
         the two tagging modes' targets build independently (tagging,
         baseline run, engine compilation), so fan them out over the
         same [Core.Pool] that {!load_all} uses across apps. *)
      let modes = [ Full; Literal ] in
      let targets = Core.Pool.map_list ?jobs of_prog modes in
      let assoc = List.combine modes targets in
      fun mode -> List.assoc mode assoc
  in
  let prepared =
    memo (fun (mode, policy) ->
        Core.Campaign.prepare ?checkpoint_stride (target mode) policy)
  in
  let golden = (target Full).Core.Campaign.baseline in
  { app; built; golden; target; prepared = (fun m p -> prepared (m, p)) }

(* Building an app (workload generation, Mlang compilation, tagging,
   baseline run) touches no cross-app state, so the builds themselves
   fan out across domains; each inner load stays sequential so the
   pool is not nested. *)
let load_all ?seed ?jobs ?engine () =
  Core.Pool.map_list ?jobs (load ?seed ?engine) Apps.Registry.all

(* Catastrophic-failure percentage for one cell of Table 2. *)
let pct_catastrophic ?jobs (l : loaded) ~mode ~policy ~errors ~trials ~seed =
  let p = l.prepared mode policy in
  Core.Campaign.pct_catastrophic
    (Core.Campaign.run ?jobs p ~errors ~trials ~seed)

(* Fidelity summary of a sweep point: mean fidelity over completed
   trials plus the catastrophic percentage. The campaign scores each
   trial at the source (on the worker domain), so the sweep point only
   ever holds floats — no simulator results survive the campaign. *)
type sweep_point = {
  errors : int;
  n : int;
  pct_failed : float;
  mean_fidelity : float option;  (* None when no trial completed *)
  fidelities : float list;
  stats : Core.Stats.t;
}

let sweep_point ?jobs (l : loaded) ~mode ~policy ~errors ~trials ~seed :
    sweep_point =
  let p = l.prepared mode policy in
  let score r = l.built.Apps.App.score ~golden:l.golden r in
  let s = Core.Campaign.run ?jobs ~score p ~errors ~trials ~seed in
  {
    errors;
    n = Core.Campaign.n s;
    pct_failed = Core.Campaign.pct_catastrophic s;
    mean_fidelity = Core.Campaign.mean_fidelity s;
    fidelities = Core.Campaign.fidelities s;
    stats = s.Core.Campaign.stats;
  }

let sweep ?jobs (l : loaded) ~mode ~policy ~errors_list ~trials ~seed =
  List.map
    (fun errors -> sweep_point ?jobs l ~mode ~policy ~errors ~trials ~seed)
    errors_list
