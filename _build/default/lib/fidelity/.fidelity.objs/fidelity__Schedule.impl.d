lib/fidelity/schedule.ml: Array
