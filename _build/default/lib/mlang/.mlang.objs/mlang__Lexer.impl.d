lib/mlang/lexer.ml: List Printf String
