(** Golden checkpoint sequence for fork-from-prefix campaigns.

    A single fault-free pass (the {e golden} pass) records immutable
    {!Interp.snapshot}s every [stride] injectable ordinals. Trials
    whose first planned fault lands at ordinal [o] resume from the
    nearest checkpoint at or before [o] instead of re-executing the
    fault-free prefix — bit-exact for any stride, because the prefix is
    identical across all trials of a prepared target. Checkpoints are
    immutable after the build and safe to share read-only across
    domains ({!Interp.resume} copies all mutable state). *)

type t

val build :
  stride:int ->
  tags:bool array array ->
  ?image:Interp.image ->
  ?lenient:bool ->
  ?budget:int ->
  ?memory:Memory.t ->
  Code.t ->
  t
(** Run the golden pass with the given tagging mask (empty plan — the
    mask only makes ordinals advance as they will in trials) and
    capture a checkpoint every [stride] ordinals, plus the initial
    state at ordinal 0. Raises [Invalid_argument] if [stride <= 0];
    propagates traps or {!Interp.Timeout_exn} if the fault-free run
    itself fails ([Campaign] targets are validated by their baseline
    first). [image] runs the golden pass on the fast engine (it must
    carry the same [tags] array); checkpoints are engine-independent.
    [memory]/[lenient] as in {!Interp.machine}. *)

val auto_stride : injectable_total:int -> image_bytes:int -> int
(** Stride giving up to 64 evenly spaced checkpoints, backed off so the
    retained memory images stay within ~64 MiB. Always [>= 1]. *)

val nearest : t -> ordinal:int -> Interp.snapshot
(** The checkpoint at the largest multiple of [stride] at or below
    [ordinal] (clamped to the last one recorded). [ordinal] may exceed
    the run's total — e.g. [max_int] for an empty plan — and still
    resolves to the last checkpoint. Raises on negative [ordinal]. *)

val stride : t -> int

val count : t -> int
(** Number of checkpoints recorded (including ordinal 0). *)
