lib/apps/mpeg.ml: App Array Fidelity Float List Mlang Sim Workloads
