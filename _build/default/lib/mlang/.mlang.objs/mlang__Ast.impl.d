lib/mlang/ast.ml: Printf
