(* MCF (SPEC CPU2000): single-depot vehicle scheduling as min-cost
   flow. The paper's MCF uses a network simplex; we solve the same
   problem with successive shortest paths (SPFA search, max-capacity
   augmentation), which is exact for min-cost flow — the fidelity
   question ("was the schedule optimal / feasible?") is unchanged.

   Output is the flow on every arc plus the reported cost; fidelity
   checks feasibility (conservation + capacities + full supply) and
   optimality against the host solver. The paper observed that wrong
   schedules were "not just inoptimal, but incomplete" — exactly what
   [Fidelity.Schedule.check] classifies as [Infeasible]. *)

let inf = 1_000_000_000
let queue_size = 4096

(* ------------------------------------------------------------------ *)
(* Host reference implementation.                                      *)

type graph = {
  n : int;
  (* residual arcs, paired: arc 2j forward, 2j+1 backward *)
  afrom : int array;
  ato : int array;
  acap : int array;
  acost : int array;
  head : int array;  (* adjacency list head per node, -1 = none *)
  next : int array;  (* next arc index in the same list, -1 = end *)
}

let build_graph (inst : Workloads.Network_gen.t) =
  let m = Array.length inst.Workloads.Network_gen.arcs in
  let afrom = Array.make (2 * m) 0
  and ato = Array.make (2 * m) 0
  and acap = Array.make (2 * m) 0
  and acost = Array.make (2 * m) 0 in
  let head = Array.make inst.Workloads.Network_gen.n_nodes (-1) in
  let next = Array.make (2 * m) (-1) in
  Array.iteri
    (fun j (u, v, cap, cost) ->
      let a = 2 * j and b = (2 * j) + 1 in
      afrom.(a) <- u;
      ato.(a) <- v;
      acap.(a) <- cap;
      acost.(a) <- cost;
      afrom.(b) <- v;
      ato.(b) <- u;
      acap.(b) <- 0;
      acost.(b) <- -cost;
      next.(a) <- head.(u);
      head.(u) <- a;
      next.(b) <- head.(v);
      head.(v) <- b)
    inst.Workloads.Network_gen.arcs;
  { n = inst.Workloads.Network_gen.n_nodes; afrom; ato; acap; acost; head; next }

(* One SPFA shortest-path pass; fills dist/prev_arc; returns whether
   the sink is reachable. *)
let spfa g ~source ~sink ~dist ~prev_arc =
  Array.fill dist 0 g.n inf;
  Array.fill prev_arc 0 g.n (-1);
  let inq = Array.make g.n false in
  let q = Queue.create () in
  dist.(source) <- 0;
  Queue.add source q;
  inq.(source) <- true;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    inq.(u) <- false;
    let a = ref g.head.(u) in
    while !a >= 0 do
      let arc = !a in
      if g.acap.(arc) > 0 && dist.(u) + g.acost.(arc) < dist.(g.ato.(arc))
      then begin
        dist.(g.ato.(arc)) <- dist.(u) + g.acost.(arc);
        prev_arc.(g.ato.(arc)) <- arc;
        if not inq.(g.ato.(arc)) then begin
          Queue.add g.ato.(arc) q;
          inq.(g.ato.(arc)) <- true
        end
      end;
      a := g.next.(arc)
    done
  done;
  dist.(sink) < inf

let host_solve (inst : Workloads.Network_gen.t) =
  let g = build_graph inst in
  let source = inst.Workloads.Network_gen.source
  and sink = inst.Workloads.Network_gen.sink in
  let dist = Array.make g.n 0 and prev_arc = Array.make g.n 0 in
  let shipped = ref 0 and cost = ref 0 in
  let continue_ = ref true in
  while !continue_ && !shipped < inst.Workloads.Network_gen.supply do
    if not (spfa g ~source ~sink ~dist ~prev_arc) then continue_ := false
    else begin
      (* bottleneck along the path *)
      let f = ref (inst.Workloads.Network_gen.supply - !shipped) in
      let node = ref sink in
      while !node <> source do
        let a = prev_arc.(!node) in
        if g.acap.(a) < !f then f := g.acap.(a);
        node := g.afrom.(a)
      done;
      let node = ref sink in
      while !node <> source do
        let a = prev_arc.(!node) in
        g.acap.(a) <- g.acap.(a) - !f;
        g.acap.(a lxor 1) <- g.acap.(a lxor 1) + !f;
        cost := !cost + (!f * g.acost.(a));
        node := g.afrom.(a)
      done;
      shipped := !shipped + !f
    end
  done;
  let m = Array.length inst.Workloads.Network_gen.arcs in
  let flows =
    Array.init m (fun j ->
        let (_, _, cap, _) = inst.Workloads.Network_gen.arcs.(j) in
        cap - g.acap.(2 * j))
  in
  (flows, !cost, !shipped)

(* ------------------------------------------------------------------ *)
(* The Mlang program.                                                  *)

let mlang_program (inst : Workloads.Network_gen.t) : Mlang.Ast.program =
  let open Mlang.Dsl in
  let g = build_graph inst in
  let m = Array.length inst.Workloads.Network_gen.arcs in
  let n = g.n in
  let caps = Array.map (fun (_, _, cap, _) -> cap) inst.Workloads.Network_gen.arcs in
  let a32 = App.ints_of_array in
  program
    [
      garray_init "afrom" (a32 g.afrom);
      garray_init "ato" (a32 g.ato);
      garray_init "acap" (a32 g.acap);  (* mutated: residual capacities *)
      garray_init "acost" (a32 g.acost);
      garray_init "head" (a32 g.head);
      garray_init "nxt" (a32 g.next);
      garray_init "caps" (a32 caps);
      garray "dist" n;
      garray "prevarc" n;
      garray "inq" n;
      garray "queue" queue_size;
      garray "flows" m;
      garray "result" 2;  (* total cost, shipped units *)
    ]
    [
      (* SPFA from source; returns 1 when the sink is reachable. *)
      fn "spfa" [ p_int "source"; p_int "sink" ] ~ret:(Some Mlang.Ast.TInt)
        [
          for_ "u" (i 0) (i n)
            [
              sto "dist" (v "u") (i inf);
              sto "prevarc" (v "u") (i (-1));
              sto "inq" (v "u") (i 0);
            ];
          sto "dist" (v "source") (i 0);
          sto "queue" (i 0) (v "source");
          sto "inq" (v "source") (i 1);
          let_ "qh" (i 0);
          let_ "qt" (i 1);
          while_
            (v "qh" <>! v "qt")
            [
              let_ "u" ("queue".%(v "qh"));
              set "qh" ((v "qh" +! i 1) %! i queue_size);
              sto "inq" (v "u") (i 0);
              let_ "a" ("head".%(v "u"));
              while_
                (v "a" >=! i 0)
                [
                  let_ "w" ("ato".%(v "a"));
                  let_ "nd" ("dist".%(v "u") +! "acost".%(v "a"));
                  when_
                    (("acap".%(v "a") >! i 0) &&! (v "nd" <! "dist".%(v "w")))
                    [
                      sto "dist" (v "w") (v "nd");
                      sto "prevarc" (v "w") (v "a");
                      when_
                        ("inq".%(v "w") ==! i 0)
                        [
                          sto "queue" (v "qt") (v "w");
                          set "qt" ((v "qt" +! i 1) %! i queue_size);
                          sto "inq" (v "w") (i 1);
                        ];
                    ];
                  set "a" ("nxt".%(v "a"));
                ];
            ];
          ret ("dist".%(v "sink") <! i inf);
        ];
      proc "solve" [ p_int "source"; p_int "sink"; p_int "supply" ]
        [
          let_ "shipped" (i 0);
          let_ "cost" (i 0);
          let_ "go" (i 1);
          while_
            ((v "go" ==! i 1) &&! (v "shipped" <! v "supply"))
            [
              if_
                (call "spfa" [ v "source"; v "sink" ] ==! i 0)
                [ set "go" (i 0) ]
                [
                  let_ "f" (v "supply" -! v "shipped");
                  let_ "node" (v "sink");
                  while_
                    (v "node" <>! v "source")
                    [
                      let_ "a" ("prevarc".%(v "node"));
                      when_
                        ("acap".%(v "a") <! v "f")
                        [ set "f" ("acap".%(v "a")) ];
                      set "node" ("afrom".%(v "a"));
                    ];
                  set "node" (v "sink");
                  while_
                    (v "node" <>! v "source")
                    [
                      let_ "a" ("prevarc".%(v "node"));
                      sto "acap" (v "a") ("acap".%(v "a") -! v "f");
                      sto "acap" (v "a" ^! i 1) ("acap".%(v "a" ^! i 1) +! v "f");
                      set "cost" (v "cost" +! (v "f" *! "acost".%(v "a")));
                      set "node" ("afrom".%(v "a"));
                    ];
                  set "shipped" (v "shipped" +! v "f");
                ];
            ];
          for_ "j" (i 0) (i m)
            [ sto "flows" (v "j") ("caps".%(v "j") -! "acap".%(i 2 *! v "j")) ];
          sto "result" (i 0) (v "cost");
          sto "result" (i 1) (v "shipped");
        ];
      fn ~eligible:false "main" [] ~ret:(Some Mlang.Ast.TInt)
        [
          call_ "solve"
            [
              i inst.Workloads.Network_gen.source;
              i inst.Workloads.Network_gen.sink;
              i inst.Workloads.Network_gen.supply;
            ];
          ret (i 0);
        ];
    ]

(* ------------------------------------------------------------------ *)

(* Clamp the requested supply to the instance's max-flow value so every
   built instance is feasible (the paper's instances always admit a
   complete schedule). *)
let instance ~seed =
  let base =
    Workloads.Network_gen.generate ~seed ~layers:5 ~per_layer:5 ~supply:12
  in
  let _, _, shippable = host_solve base in
  { base with Workloads.Network_gen.supply = min 12 shippable }

(* Schedule verdict for a completed run: feasibility + optimality. *)
let verdict ~inst ~optimal_cost (r : Sim.Interp.result) prog =
  let flows = App.out_ints r prog "flows" in
  let result = App.out_ints r prog "result" in
  Fidelity.Schedule.check
    (Workloads.Network_gen.to_fidelity_instance inst)
    ~optimal_cost ~flows ~reported_cost:result.(0)

let build ~seed : App.built =
  let inst = instance ~seed in
  let prog = Mlang.Compile.to_ir (mlang_program inst) in
  let expected_flows, expected_cost, expected_shipped = host_solve inst in
  assert (expected_shipped = inst.Workloads.Network_gen.supply);
  let score ~golden:_ (r : Sim.Interp.result) =
    match verdict ~inst ~optimal_cost:expected_cost r prog with
    | Fidelity.Schedule.Optimal -> 100.0
    | Fidelity.Schedule.Suboptimal extra -> Float.max 0.0 (100.0 -. extra)
    | Fidelity.Schedule.Infeasible -> 0.0
  in
  let host_check (r : Sim.Interp.result) =
    let flows = App.out_ints r prog "flows" in
    let result = App.out_ints r prog "result" in
    if flows <> expected_flows then
      Error "mcf: flows differ from host reference"
    else if result.(0) <> expected_cost then
      Error "mcf: cost differs from host reference"
    else if result.(1) <> expected_shipped then
      Error "mcf: shipped units differ from host reference"
    else Ok ()
  in
  {
    App.app_name = "mcf";
    prog;
    fidelity_name = "schedule quality";
    fidelity_units = "% (100 = optimal)";
    higher_is_better = true;
    threshold = Some 100.0;
    score;
    host_check;
  }

let app : App.t =
  {
    App.name = "mcf";
    description =
      "single-depot vehicle scheduling as min-cost flow (successive \
       shortest paths); fidelity = schedule feasibility and optimality";
    source = "SPEC CPU2000 (181.mcf)";
    build;
  }
