lib/sim/value.ml: Format Int32 Int64 Printf
