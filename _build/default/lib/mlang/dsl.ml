(* Combinators for writing Mlang programs directly in OCaml.

   The applications in [lib/apps] are written against this module; it
   is the ergonomic surface of the language. Integer operators are
   suffixed with [!], float operators with [!.], comparisons yield
   Mlang ints (0/1) in both cases. *)

open Ast

let i n = Int n
let f x = Flt x
let v name = Var name

(* Integer arithmetic. *)
let ( +! ) a b = Bin (Add, a, b)
let ( -! ) a b = Bin (Sub, a, b)
let ( *! ) a b = Bin (Mul, a, b)
let ( /! ) a b = Bin (Div, a, b)
let ( %! ) a b = Bin (Rem, a, b)
let ( &! ) a b = Bin (BAnd, a, b)
let ( |! ) a b = Bin (BOr, a, b)
let ( ^! ) a b = Bin (BXor, a, b)
let ( <<! ) a b = Bin (Shl, a, b)
let ( >>! ) a b = Bin (Shr, a, b)
let ( >>>! ) a b = Bin (Ashr, a, b)

(* Float arithmetic (same constructors; the typechecker separates). *)
let ( +!. ) a b = Bin (Add, a, b)
let ( -!. ) a b = Bin (Sub, a, b)
let ( *!. ) a b = Bin (Mul, a, b)
let ( /!. ) a b = Bin (Div, a, b)

(* Comparisons (operands of one type, integer 0/1 result). *)
let ( ==! ) a b = Cmp (Eq, a, b)
let ( <>! ) a b = Cmp (Ne, a, b)
let ( <! ) a b = Cmp (Lt, a, b)
let ( <=! ) a b = Cmp (Le, a, b)
let ( >! ) a b = Cmp (Gt, a, b)
let ( >=! ) a b = Cmp (Ge, a, b)

let neg e = Neg e
let not_ e = Not e

(* Short-circuit-free logical connectives on 0/1 ints. *)
let ( &&! ) a b = Bin (BAnd, a, b)
let ( ||! ) a b = Bin (BOr, a, b)

let i2f e = I2F e
let f2i e = F2I e

(* Array access: [arr.%(idx)] loads, [arr.%(idx) <- e] is [sto]. *)
let ( .%() ) name idx = Load (name, idx)
let sto name idx value = Store (name, idx, value)

let call name args = Call (name, args)

(* Statements. *)
let let_ name e = Decl (name, e)
let set name e = Assign (name, e)
let if_ cond then_ else_ = If (cond, then_, else_)
let when_ cond then_ = If (cond, then_, [])
let while_ cond body = While (cond, body)
let for_ name lo hi body = For (name, lo, hi, body)
let expr e = Expr e
let call_ name args = Expr (Call (name, args))
let ret e = Return (Some e)
let ret_void = Return None
let break_ = Break
let continue_ = Continue

(* Declarations. *)
let fn ?(eligible = true) name params ~ret body =
  { name; params; ret; body; eligible }

let proc ?(eligible = true) name params body =
  { name; params; ret = None; body; eligible }

let p_int name = (name, TInt)
let p_flt name = (name, TFlt)

let garray ?(init = GZero) name size =
  { gname = name; gty = TInt; byte = false; size; init }

let garray_f ?(init = GZero) name size =
  { gname = name; gty = TFlt; byte = false; size; init }

(* Unsigned-byte element arrays (images, text, LUTs): loads
   zero-extend, stores keep the low 8 bits, accesses never
   alignment-trap — the uchar semantics of the original benchmarks. *)
let garray_b ?(init = GZero) name size =
  { gname = name; gty = TInt; byte = true; size; init }

let garray_init name data = garray ~init:(GInts data) name (Array.length data)

let garray_init_f name data =
  garray_f ~init:(GFlts data) name (Array.length data)

let garray_init_b name data =
  garray_b ~init:(GInts data) name (Array.length data)

let program ?(entry = "main") globals funcs = { globals; funcs; entry }
