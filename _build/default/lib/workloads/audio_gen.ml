(* Speech-like synthetic audio: a sum of slowly wandering harmonics
   under a syllable-rate amplitude envelope, plus low-level noise.
   16-bit signed samples. The ADPCM/GSM codecs only need realistic
   short-time correlation and dynamics, which this provides. *)

let pi = 4.0 *. atan 1.0

let speech ~seed ~samples =
  let rng = Rng.make seed in
  let base = 100.0 +. Rng.float rng 80.0 in   (* fundamental, Hz-ish *)
  let rate = 8000.0 in
  let out = Array.make samples 0 in
  for n = 0 to samples - 1 do
    let t = float_of_int n /. rate in
    (* syllable envelope at ~3 Hz *)
    let env = 0.55 +. (0.45 *. sin (2.0 *. pi *. 3.0 *. t)) in
    let v = ref 0.0 in
    for h = 1 to 4 do
      let fh = base *. float_of_int h *. (1.0 +. (0.01 *. sin (2.0 *. pi *. 0.7 *. t))) in
      v := !v +. (sin (2.0 *. pi *. fh *. t) /. float_of_int h)
    done;
    let noise = (Rng.float rng 2.0 -. 1.0) *. 0.02 in
    let s = env *. ((!v /. 2.0) +. noise) *. 12000.0 in
    out.(n) <- max (-32768) (min 32767 (int_of_float s))
  done;
  out

(* Tone burst, handy for SNR sanity tests. *)
let tone ~freq ~samples ~amplitude =
  let rate = 8000.0 in
  Array.init samples (fun n ->
      let t = float_of_int n /. rate in
      int_of_float (float_of_int amplitude *. sin (2.0 *. pi *. freq *. t)))
