(* The paper's static analysis (Section 3).

   Backwards over each function, we maintain CVar — the set of
   registers "likely to influence control flow" — and tag every
   value-producing instruction whose destination is not in CVar as
   LOW-RELIABILITY: its result may be corrupted without (statically
   provable) risk to control. The rest is CRITICAL and assumed
   protected by the architecture.

   Rules, following the paper:
   - branch operands enter CVar; branches themselves are control;
   - a definition of a register in CVar removes it and inserts the
     instruction's uses (the Def-Use chain walk of the paper's
     worked example);
   - a load terminates the chain: the loaded value's provenance is
     memory and is not tracked (in the paper's example, LD empties
     CVar); a *stored value* likewise escapes untracked — the paper
     performs no memory disambiguation, and this is exactly its
     documented residual failure mode (Table 2, "with protection");
   - [protect_addresses] (default true, the companion work's
     "control and address" treatment) additionally pulls every load/
     store base register into CVar: a corrupted address is a wild
     access. The paper's Section 3 rules alone correspond to
     [protect_addresses:false]; the ablation experiment quantifies
     the difference;
   - calls use interprocedural summaries: which formal parameters
     (transitively) influence control inside the callee, and whether
     the caller consumes the return value in a control-influencing
     way; summaries are iterated to a fixpoint over the call graph;
   - only functions the programmer marked eligible are analyzed;
     ineligible functions are fully protected and all their formals
     are treated as control-critical.

   The result is deliberately conservative in the same places the
   paper is, so the simulator reproduces both the protection (near-zero
   catastrophic failures) and the leak-through-memory residual. *)

module RS = Ir.Reg.Set

type summary = {
  mutable ret_critical : bool;
  mutable critical_params : bool array;
}

type t = {
  prog : Ir.Prog.t;
  order : string list;
  protect_addresses : bool;
  (* true = low-reliability / injectable; indexed like the body *)
  low_rel : (string, bool array) Hashtbl.t;
  summaries : (string, summary) Hashtbl.t;
}

module B = Analysis.Dataflow.Backward (Analysis.Dataflow.Reg_set_domain)

(* One intraprocedural pass under the current summaries. Mutates
   summaries of callees (monotonically) when new demands appear;
   returns the CVar set at function entry. *)
let analyze_func ~protect_addresses (f : Ir.Func.t) ~(get : string -> summary)
    =
  let self = get f.Ir.Func.name in
  let cfg = Ir.Cfg.build f in
  let transfer _i (instr : Ir.Instr.t) cvar =
    let add = List.fold_left (fun acc r -> RS.add r acc) in
    match instr with
    | Br (_, a, b, _) -> RS.add a (RS.add b cvar)
    | Brz (_, a, _) -> RS.add a cvar
    | Jmp _ | Label _ | Nop -> cvar
    | Ret None -> cvar
    | Ret (Some r) -> if self.ret_critical then RS.add r cvar else cvar
    | Lw (d, base, _) | Lb (d, base, _) | Lwf (d, base, _) ->
      (* The loaded value's provenance is memory: untracked — the
         chain terminates here, exactly as in the paper's worked
         example (LD empties CVar). Under address protection the base
         register is pulled into CVar instead of being dropped. *)
      let cvar = RS.remove d cvar in
      if protect_addresses then RS.add base cvar else cvar
    | Sw (_, base, _) | Sb (_, base, _) | Swf (_, base, _) ->
      (* The stored value escapes to memory untracked (the paper's
         "no memory disambiguation" residual failure mode). *)
      if protect_addresses then RS.add base cvar else cvar
    | Call { dst; func = g; args } ->
      let gsum = get g in
      (if (match dst with Some d -> RS.mem d cvar | None -> false) then
         gsum.ret_critical <- true);
      let cvar =
        match dst with Some d -> RS.remove d cvar | None -> cvar
      in
      let cvar =
        List.fold_left
          (fun acc (k, a) ->
            if k < Array.length gsum.critical_params && gsum.critical_params.(k)
            then RS.add a acc
            else acc)
          cvar
          (List.mapi (fun k a -> (k, a)) args)
      in
      cvar
    | Li (d, _) | Lf (d, _) | La (d, _) ->
      RS.remove d cvar
    | Mov (d, s) ->
      if RS.mem d cvar then RS.add s (RS.remove d cvar) else cvar
    | Bin (_, d, a, b) | Cmp (_, d, a, b) | Fbin (_, d, a, b)
    | Fcmp (_, d, a, b) ->
      if RS.mem d cvar then add (RS.remove d cvar) [ a; b ] else cvar
    | Bini (_, d, a, _) | Fun_ (_, d, a) | I2f (d, a) | F2i (d, a) ->
      if RS.mem d cvar then RS.add a (RS.remove d cvar) else cvar
  in
  let result = B.solve cfg ~exit_state:RS.empty ~transfer in
  (* Low-reliability marks: def exists and is outside CVar-after. *)
  let low = Array.make (Array.length f.Ir.Func.body) false in
  B.iter_instrs cfg result ~transfer (fun i instr cvar_after ->
      match Ir.Instr.def instr with
      | Some d -> low.(i) <- not (RS.mem d cvar_after)
      | None -> ());
  (result.B.live_in.(0), low)

let compute ?(protect_addresses = true) (prog : Ir.Prog.t) =
  let funcs = Ir.Prog.funcs prog in
  let summaries = Hashtbl.create 16 in
  let get name =
    match Hashtbl.find_opt summaries name with
    | Some s -> s
    | None ->
      let f = Ir.Prog.get_func prog name in
      let nparams = List.length f.Ir.Func.params in
      let s =
        if f.Ir.Func.eligible then
          { ret_critical = false; critical_params = Array.make nparams false }
        else
          (* Fully protected function: treat every formal as critical
             so callers protect what they pass in. *)
          { ret_critical = false; critical_params = Array.make nparams true }
      in
      Hashtbl.replace summaries name s;
      s
  in
  let low_rel = Hashtbl.create 16 in
  (* Ineligible functions: nothing injectable. *)
  List.iter
    (fun (f : Ir.Func.t) ->
      ignore (get f.Ir.Func.name);
      if not f.Ir.Func.eligible then
        Hashtbl.replace low_rel f.Ir.Func.name
          (Array.make (Array.length f.Ir.Func.body) false))
    funcs;
  (* The entry point's return value leaves the program (exit status):
     treat it as critical so top-level control chains are protected. *)
  (get prog.Ir.Prog.entry).ret_critical <- true;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f : Ir.Func.t) ->
        if f.Ir.Func.eligible then begin
          let self = get f.Ir.Func.name in
          let before_ret = self.ret_critical in
          let snapshot =
            Hashtbl.fold
              (fun n s acc ->
                (n, s.ret_critical, Array.copy s.critical_params) :: acc)
              summaries []
          in
          let entry_cvar, low = analyze_func ~protect_addresses f ~get in
          Hashtbl.replace low_rel f.Ir.Func.name low;
          (* Entry CVar ∩ formals → critical parameters. *)
          List.iteri
            (fun k p ->
              if RS.mem p entry_cvar && not self.critical_params.(k) then begin
                self.critical_params.(k) <- true;
                changed := true
              end)
            f.Ir.Func.params;
          if self.ret_critical <> before_ret then changed := true;
          (* Any callee summary mutated during the pass re-triggers. *)
          List.iter
            (fun (n, rc, cp) ->
              let s = get n in
              if s.ret_critical <> rc || s.critical_params <> cp then
                changed := true)
            snapshot
        end)
      funcs
  done;
  {
    prog;
    order = List.map (fun (f : Ir.Func.t) -> f.Ir.Func.name) funcs;
    protect_addresses;
    low_rel;
    summaries;
  }

let low_reliability t name = Hashtbl.find_opt t.low_rel name

let summary t name = Hashtbl.find_opt t.summaries name

(* Injectability masks per function, in program declaration order —
   index-aligned with [Sim.Code.of_prog]'s function ids. *)
let mask t (policy : Policy.t) : bool array array =
  let funcs = Ir.Prog.funcs t.prog in
  Array.of_list
    (List.map
       (fun (f : Ir.Func.t) ->
         let n = Array.length f.Ir.Func.body in
         match policy with
         | Policy.Protect_all -> Array.make n false
         | Policy.Protect_nothing ->
           Array.init n (fun i -> Ir.Instr.def f.Ir.Func.body.(i) <> None)
         | Policy.Protect_control ->
           (match Hashtbl.find_opt t.low_rel f.Ir.Func.name with
            | Some a -> Array.copy a
            | None -> Array.make n false))
       funcs)

(* Static fraction of instructions tagged low-reliability, over
   instructions that produce a value. *)
let static_stats t =
  let tagged = ref 0 and producing = ref 0 and total = ref 0 in
  List.iter
    (fun (f : Ir.Func.t) ->
      let low =
        Option.value
          ~default:(Array.make (Array.length f.Ir.Func.body) false)
          (low_reliability t f.Ir.Func.name)
      in
      Array.iteri
        (fun i instr ->
          (match instr with Ir.Instr.Label _ -> () | _ -> incr total);
          if Ir.Instr.def instr <> None then begin
            incr producing;
            if low.(i) then incr tagged
          end)
        f.Ir.Func.body)
    (Ir.Prog.funcs t.prog);
  (`Tagged !tagged, `Producing !producing, `Total !total)

(* Dynamic fraction (paper Table 3): given per-instruction execution
   counts from a profiled run, the share of dynamic instructions whose
   static instruction was tagged low-reliability. *)
let dynamic_low_fraction t (exec_counts : int array array) =
  let funcs = Array.of_list (Ir.Prog.funcs t.prog) in
  let tagged = ref 0 and total = ref 0 in
  Array.iteri
    (fun fid counts ->
      let f = funcs.(fid) in
      let low =
        Option.value
          ~default:(Array.make (Array.length f.Ir.Func.body) false)
          (low_reliability t f.Ir.Func.name)
      in
      Array.iteri
        (fun i c ->
          total := !total + c;
          if low.(i) then tagged := !tagged + c)
        counts)
    exec_counts;
  if !total = 0 then 0.0 else float_of_int !tagged /. float_of_int !total
