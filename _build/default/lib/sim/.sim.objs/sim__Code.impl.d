lib/sim/code.ml: Array Hashtbl Ir List Value
