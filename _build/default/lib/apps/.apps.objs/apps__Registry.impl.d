lib/apps/registry.ml: Adpcm App Art Blowfish Gsm List Mcf Mpeg Susan
