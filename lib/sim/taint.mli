(** Shadow taint for dynamic fault-flow classification.

    A 2-bit mask rides alongside every register and memory cell while
    the taint interpreter runs: bit 0 marks values derived from an
    injected fault, bit 1 marks chains that passed through memory
    (store/load round trips, loads through corrupted bases). Bit 1 is
    sticky and mirrors the paper's "no memory disambiguation": the
    tagging analysis deliberately loses track of values at memory, so
    through-memory contamination of control is the documented residual
    rather than a soundness violation. See DESIGN.md §11. *)

type mask = int

val none : mask
val fresh : mask
(** Seeded at an injection site: tainted along a memory-free chain. *)

val is_tainted : mask -> bool
val via_memory : mask -> bool

val loaded : cell:mask -> base:mask -> mask
(** Taint of a loaded value: union of the cell's and the base
    register's taint, marked as through-memory (clean stays clean). *)

val stored : mask -> mask
(** Taint a stored value leaves in its cell: through-memory marked. *)

(** Fault-flow taxonomy of one trial, ordered by severity. *)
type flow =
  | Vanished        (** taint never propagated past the injected register *)
  | Data_only       (** propagated through registers, reached no sink *)
  | Reached_memory  (** a tainted value was stored *)
  | Reached_address
      (** a tainted load/store base, integer div/rem denominator or
          [F2i] operand — the crash-capable operand sinks *)
  | Reached_control (** a tainted branch operand *)

val all_flows : flow list
(** In ascending severity order. *)

val flow_to_string : flow -> string
val pp_flow : Format.formatter -> flow -> unit

(** Mutable per-run event accumulator, owned by the taint interpreter. *)
type tracker

val make : cells:int -> tracker
(** [cells] is the memory image size in 4-byte cells. *)

val mem_get : tracker -> int -> mask
val mem_set : tracker -> int -> mask -> unit
val mem_union : tracker -> int -> mask -> unit
(** For byte stores, which overwrite only one lane of a cell. *)

val propagate : tracker -> mask -> unit
(** Note operand taint flowing into a computed result. *)

val sink_control : tracker -> fid:int -> pc:int -> mask -> unit
val sink_address : tracker -> mask -> unit
val sink_trap_operand : tracker -> mask -> unit
val sink_memory : tracker -> mask -> unit

type summary = {
  flow : flow;
  control_free : int;
      (** control contaminations along memory-free chains — must be 0
          under [Protect_control] (the tagging soundness invariant) *)
  control_via_memory : int;
      (** control contaminations whose chain passed through memory —
          the paper's documented residual *)
  address_hits : int;
  trap_operand_hits : int;
  memory_hits : int;
  first_control : (string * int) option;
      (** (function, body index) of the first memory-free control
          contamination, the audit's violation witness *)
}

val summarize : tracker -> func_name:(int -> string) -> summary
