(* Execution-state substrate shared by the two engines.

   Both the reference match-dispatch loop (Interp) and the
   threaded-closure engine (Threaded) drive the same explicit machine:
   a frame stack of {fid; pc; iregs; fregs} plus the dynamic counters
   and the plan cursor. Everything observable about a run — ordinals,
   landed faults and their sites, trap provenance, pause/capture/resume
   — is defined here once, so the engines can only differ in how they
   dispatch instructions, never in what a dispatched instruction does.

   The [fast] field selects the engine: a machine built from a
   compiled [image] carries the closure table and is driven by
   Threaded.exec; an empty table means reference dispatch. The image is
   compiled against one (code, tags) pair, and [make]/[restore]
   validate both by physical equality — campaigns pass the same tag
   mask to every trial of a prepared target, so the check is free and
   catches any mix-up between policies. *)

type injection = {
  tags : bool array array;  (* fid -> body index -> injectable *)
  plan_ords : int array;    (* planned ordinals, strictly increasing *)
  plan_bits : int array;    (* bit to flip, parallel to [plan_ords] *)
}

exception Timeout_exn
exception Pause_exn

let max_call_depth = 4096
let default_budget = 100_000_000

let sx32 = Value.sx32

let binop_i (op : Ir.Instr.binop) a b =
  match op with
  | Add -> sx32 (a + b)
  | Sub -> sx32 (a - b)
  | Mul -> sx32 (a * b)
  | Div ->
    if b = 0 then raise (Trap.Error Trap.Division_by_zero) else sx32 (a / b)
  | Rem ->
    if b = 0 then raise (Trap.Error Trap.Division_by_zero) else sx32 (a mod b)
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Sll -> sx32 (a lsl (b land 31))
  | Srl -> sx32 ((a land 0xFFFFFFFF) lsr (b land 31))
  | Sra -> a asr (b land 31)

let cmp_i (op : Ir.Instr.cmpop) a b =
  match op with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let binop_f (op : Ir.Instr.fbinop) a b =
  match op with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b  (* IEEE: yields inf/nan, no trap *)

let unop_f (op : Ir.Instr.funop) a =
  match op with Fneg -> -.a | Fabs -> Float.abs a | Fsqrt -> Float.sqrt a

let cmp_f (op : Ir.Instr.cmpop) (a : float) (b : float) =
  match op with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let f2i (x : float) =
  if Float.is_nan x || x >= 2147483648.0 || x < -2147483648.0 then
    raise (Trap.Error (Trap.Float_to_int_overflow x));
  int_of_float (Float.trunc x)

let no_counts : int array = [||]
let no_tags : bool array = [||]
let no_ops : bool array array = [||]

(* One activation record. [pc] always holds the body index of the
   instruction currently (or next) being dispatched whenever the
   machine is observable (paused, trapped, or at a frame switch), so
   trap provenance and snapshot/resume both read it directly. While a
   callee runs, the caller's [pc] stays parked on its DCall — return
   write-back and the post-call resume point are recovered from it. *)
type frame = {
  fid : int;
  mutable pc : int;
  iregs : int array;
  fregs : float array;
}

type status =
  | Running
  | Done_ of Value.t option
  | Trapped_ of Trap.t * (int * int) option  (* trap, (fid, pc) site *)
  | Timeout_

type t = {
  code : Code.t;
  memory : Memory.t;
  budget : int;
  count_exec : bool;
  exec_counts : int array array;
  all_tags : bool array array;
  has_injection : bool;
  plan_ords : int array;
  plan_bits : int array;
  mutable cursor : int;
  mutable next_planned : int;  (* smallest pending ordinal, max_int when done *)
  mutable dyn : int;
  mutable inj_seen : int;
  mutable landed : int;
  land_fids : int array;  (* fid of landing [i], parallel to the plan *)
  land_pcs : int array;
  mutable cur_fid : int;
      (* fid of the frame the dispatch loop is executing in — the
         landing-site attribution for the next fault. Synced when the
         head frame changes and on return write-back. *)
  mutable stack : frame list;  (* innermost frame first; never empty while Running *)
  mutable depth : int;         (* depth of the head frame; entry frame is 0 *)
  mutable status : status;
  fast : op array array;
      (* per-function closure tables from the compiled image; [||]
         selects the reference match-dispatch loop *)
  mutable pause_at : int;
      (* the live [advance ~pause_at] bound; both engines read it so
         mid-chain ordinal bumps can pause without re-entering the
         driver *)
  mutable run_fr : frame;
      (* the head frame, cached for the fast engine: ops are unary
         closures over the machine (a unary unknown application is a
         bare code-pointer jump in ocamlopt — no caml_apply arity
         check), so the frame rides in this field, set by the driver at
         each re-entry. Meaningless between driver entries of the
         reference engine. *)
}

and op = t -> unit
(* One compiled instruction: executes against the machine ([run_fr]
   holds the head frame), then either tail-calls its successor closure
   (straight-line and branch flow) or returns unit when the head frame
   changed (call, return) so the driver re-enters. *)

type image = {
  icode : Code.t;
  itags : bool array array;
  iops : op array array;
  (* Pristine memory prototypes, one per access model: a machine built
     from an image deep-copies one of these (a handful of memcpys)
     instead of replaying the global-initialization walk of
     [Memory.of_prog] on every run. *)
  imem_strict : Memory.t;
  imem_lenient : Memory.t;
}

let fresh_frame (code : Code.t) fid =
  let df = code.Code.funcs.(fid) in
  {
    fid;
    pc = 0;
    iregs = Array.make (max df.Code.n_int 1) 0;
    fregs = Array.make (max df.Code.n_flt 1) 0.0;
  }

(* An image is valid for exactly the (code, tags) pair it was compiled
   against: tag rows are baked into the closures, so running it under
   any other mask would silently miscount ordinals. Campaigns reuse one
   tags array across every trial of a prepared target, so physical
   equality is the precise check, not an approximation. *)
let check_image ~count_exec (image : image option)
    (injection : injection option) (code : Code.t) =
  match image with
  | None -> ()
  | Some img ->
    if img.icode != code then
      invalid_arg "Interp: image was compiled from a different program";
    if count_exec then
      invalid_arg "Interp: count_exec requires the reference engine";
    let tags = match injection with Some { tags; _ } -> tags | None -> no_ops in
    if
      not
        (img.itags == tags
        || (Array.length img.itags = 0 && Array.length tags = 0))
    then invalid_arg "Interp: image was compiled with a different tag mask"

let make ?image ?injection ?lenient ?(budget = default_budget)
    ?(count_exec = false) ?memory (code : Code.t) : t =
  check_image ~count_exec image injection code;
  let memory =
    match memory with
    | Some mem -> mem
    | None -> (
      match image with
      | Some img ->
        Memory.copy
          (if lenient = Some true then img.imem_lenient else img.imem_strict)
      | None -> Memory.of_prog ?lenient code.Code.prog)
  in
  (* Per-function execution counters are only materialized when
     requested: campaigns run hundreds of trials per prepared target
     and none of them profiles. *)
  let exec_counts =
    if count_exec then
      Array.map
        (fun (df : Code.dfunc) -> Array.make (Array.length df.Code.dbody) 0)
        code.Code.funcs
    else [||]
  in
  let plan_ords, plan_bits =
    match (injection : injection option) with
    | Some { plan_ords; plan_bits; _ } -> (plan_ords, plan_bits)
    | None -> (no_counts, no_counts)
  in
  let all_tags =
    match (injection : injection option) with
    | Some { tags; _ } -> tags
    | None -> [||]
  in
  let entry = fresh_frame code code.Code.entry_fid in
  {
    code;
    memory;
    budget;
    count_exec;
    exec_counts;
    all_tags;
    has_injection = Array.length all_tags > 0;
    plan_ords;
    plan_bits;
    cursor = 0;
    next_planned =
      (if Array.length plan_ords > 0 then plan_ords.(0) else max_int);
    dyn = 0;
    inj_seen = 0;
    landed = 0;
    land_fids = Array.make (Array.length plan_ords) 0;
    land_pcs = Array.make (Array.length plan_ords) 0;
    cur_fid = code.Code.entry_fid;
    stack = [ entry ];
    depth = 0;
    status = Running;
    fast = (match image with Some img -> img.iops | None -> [||]);
    pause_at = max_int;
    run_fr = entry;
  }

let advance_plan m =
  let c = m.cursor + 1 in
  m.cursor <- c;
  m.next_planned <-
    (if c < Array.length m.plan_ords then Array.unsafe_get m.plan_ords c
     else max_int);
  m.landed <- m.landed + 1;
  Array.unsafe_get m.plan_bits (c - 1)

(* Landing-site record: (fid, pc) per plan entry, written into arrays
   preallocated at plan length — no allocation on the landing path, and
   plans hold only a handful of entries. *)
let record_land m pc =
  m.land_fids.(m.landed - 1) <- m.cur_fid;
  m.land_pcs.(m.landed - 1) <- pc

(* Fault hooks: called with the body index of the defining instruction
   and the freshly computed value, on every value-producing write-back
   (including call-return write-back, attributed to the DCall). *)
let inject_i m ftags pc v =
  if m.has_injection && Array.unsafe_get ftags pc then begin
    let ord = m.inj_seen in
    m.inj_seen <- ord + 1;
    if ord = m.next_planned then begin
      let bit = advance_plan m in
      record_land m pc;
      Value.flip_int ~bit:(bit land 31) v
    end
    else v
  end
  else v

let inject_f m ftags pc x =
  if m.has_injection && Array.unsafe_get ftags pc then begin
    let ord = m.inj_seen in
    m.inj_seen <- ord + 1;
    if ord = m.next_planned then begin
      let bit = advance_plan m in
      record_land m pc;
      Value.flip_float ~bit:(bit land 63) x
    end
    else x
  end
  else x

(* Pop the head frame and deliver [v] to its caller (or halt when it
   was the entry frame). Return write-back runs the injection hook at
   the caller's DCall, exactly where the recursive interpreter ran it,
   then steps the caller past the call. *)
let return m (v : Value.t option) =
  match m.stack with
  | [] -> assert false
  | [ _ ] -> m.status <- Done_ v
  | _ :: (caller :: _ as rest) ->
    m.stack <- rest;
    m.depth <- m.depth - 1;
    let df = m.code.Code.funcs.(caller.fid) in
    m.cur_fid <- caller.fid;
    (match df.Code.dbody.(caller.pc) with
     | Code.DCall c ->
       (if c.Code.dst >= 0 then
          let ftags =
            if m.has_injection then m.all_tags.(caller.fid) else no_tags
          in
          match v with
          | Some (Value.I x) when not c.Code.dst_flt ->
            caller.iregs.(c.Code.dst) <- inject_i m ftags caller.pc x
          | Some (Value.F x) when c.Code.dst_flt ->
            caller.fregs.(c.Code.dst) <- inject_f m ftags caller.pc x
          | _ -> invalid_arg "return bank mismatch at runtime");
       caller.pc <- caller.pc + 1
     | _ -> assert false)

let is_running m = match m.status with Running -> true | _ -> false

(* --------------------------- snapshots --------------------------- *)

(* An immutable copy of a paused machine's full architectural state.
   Snapshots are taken during a fault-free pass (no landed faults, no
   partially consumed plan), so they carry no plan bookkeeping: resume
   installs a fresh plan whose ordinals must all lie at or after the
   snapshot's ordinal. Restore copies everything mutable, so one
   snapshot can seed any number of trials concurrently — including
   read-only sharing across domains. A snapshot carries no engine
   state: it can be captured under one engine and resumed under the
   other, which the cross-engine differential suite exercises. *)
type snapshot = {
  s_code : Code.t;
  s_budget : int;
  s_memory : Memory.t;
  s_frames : frame array;  (* innermost first, like the live stack *)
  s_depth : int;
  s_dyn : int;
  s_inj_seen : int;
}

let copy_frame fr =
  { fr with iregs = Array.copy fr.iregs; fregs = Array.copy fr.fregs }

let capture m : snapshot =
  (match m.status with
   | Running -> ()
   | _ -> invalid_arg "Interp.capture: machine has halted");
  if m.count_exec then
    invalid_arg "Interp.capture: profiling machines are not snapshotable";
  if m.landed > 0 then
    invalid_arg "Interp.capture: snapshots must be fault-free";
  {
    s_code = m.code;
    s_budget = m.budget;
    s_memory = Memory.copy m.memory;
    s_frames = Array.of_list (List.map copy_frame m.stack);
    s_depth = m.depth;
    s_dyn = m.dyn;
    s_inj_seen = m.inj_seen;
  }

let snapshot_ordinal s = s.s_inj_seen
let snapshot_dyn s = s.s_dyn

let restore ?image ?injection (s : snapshot) : t =
  check_image ~count_exec:false image injection s.s_code;
  let plan_ords, plan_bits =
    match (injection : injection option) with
    | Some { plan_ords; plan_bits; _ } -> (plan_ords, plan_bits)
    | None -> (no_counts, no_counts)
  in
  if Array.length plan_ords > 0 && plan_ords.(0) < s.s_inj_seen then
    invalid_arg "Interp.resume: plan ordinal precedes snapshot";
  let all_tags =
    match (injection : injection option) with
    | Some { tags; _ } -> tags
    | None -> [||]
  in
  let frames = Array.map copy_frame s.s_frames in
  let head =
    if Array.length frames > 0 then frames.(0)
    else fresh_frame s.s_code s.s_code.Code.entry_fid
  in
  {
    code = s.s_code;
    memory = Memory.copy s.s_memory;
    budget = s.s_budget;
    count_exec = false;
    exec_counts = [||];
    all_tags;
    has_injection = Array.length all_tags > 0;
    plan_ords;
    plan_bits;
    cursor = 0;
    next_planned =
      (if Array.length plan_ords > 0 then plan_ords.(0) else max_int);
    dyn = s.s_dyn;
    inj_seen = s.s_inj_seen;
    landed = 0;
    land_fids = Array.make (Array.length plan_ords) 0;
    land_pcs = Array.make (Array.length plan_ords) 0;
    cur_fid = head.fid;
    stack = Array.to_list frames;
    depth = s.s_depth;
    status = Running;
    fast = (match image with Some img -> img.iops | None -> [||]);
    pause_at = max_int;
    run_fr = head;
  }

(* Fid of the frame the dispatch loop is executing in. At a pause this
   is exactly the frame that consumed the most recent injectable
   ordinal: the hook bumps [inj_seen] at write-back (with [cur_fid]
   already synced — [return] re-syncs it before the call-return
   write-back hook runs) and the pause check sits at the top of
   dispatch, before any frame switch can follow. Compositional
   campaigns read it to attribute an ordinal to its owning section. *)
let machine_fid m = m.cur_fid

(* Content digest of a snapshot's full architectural state. [fid_key]
   names each stack frame's function with a rename-stable identity
   (section local hashes in compositional campaigns) so the digest
   survives renames/reorders but changes with any frame code, register,
   pc, counter or memory difference. *)
let snapshot_digest ~fid_key (s : snapshot) : string =
  let b = Buffer.create 1024 in
  Buffer.add_int64_le b (Int64.of_int s.s_budget);
  Buffer.add_int64_le b (Int64.of_int s.s_dyn);
  Buffer.add_int64_le b (Int64.of_int s.s_inj_seen);
  Buffer.add_int64_le b (Int64.of_int s.s_depth);
  Array.iter
    (fun fr ->
      Buffer.add_string b (fid_key fr.fid);
      Buffer.add_int64_le b (Int64.of_int fr.pc);
      Array.iter (fun v -> Buffer.add_int64_le b (Int64.of_int v)) fr.iregs;
      Array.iter
        (fun x -> Buffer.add_int64_le b (Int64.bits_of_float x))
        fr.fregs;
      Buffer.add_char b ';')
    s.s_frames;
  Buffer.add_string b (Memory.digest s.s_memory);
  Digest.to_hex (Digest.string (Buffer.contents b))
