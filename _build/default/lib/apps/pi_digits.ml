(* Hexadecimal digits of pi via the Bailey–Borwein–Plouffe formula,
   used to reproduce Blowfish's nothing-up-my-sleeve P-array and S-box
   constants without embedding kilobytes of opaque tables.

   We evaluate the BBP fraction at positions 0, 8, 16, ... and take
   eight hex digits (one 32-bit word) per evaluation — the standard
   double-precision usage, which is accurate well past the 8-digit
   window we consume. The first words are pinned against the published
   Blowfish constants in the test suite. *)

let modpow b e m =
  (* m <= 8*8500 + 6 < 2^17, so products fit comfortably in 63 bits *)
  let rec go b e acc =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then acc * b mod m else acc in
      go (b * b mod m) (e lsr 1) acc
  in
  if m = 1 then 0 else go (b mod m) e 1

(* Fractional part of sum_k 16^(d-k)/(8k+j). *)
let series j d =
  let acc = ref 0.0 in
  for k = 0 to d do
    let m = (8 * k) + j in
    acc := !acc +. (float_of_int (modpow 16 (d - k) m) /. float_of_int m);
    acc := !acc -. Float.of_int (int_of_float !acc)
  done;
  let t = ref (1.0 /. 16.0) in
  for k = d + 1 to d + 16 do
    acc := !acc +. (!t /. float_of_int ((8 * k) + j));
    t := !t /. 16.0
  done;
  !acc -. Float.of_int (int_of_float !acc)

(* The 32-bit word formed by hex digits [8w+1 .. 8w+8] of pi's
   fractional part (digit 1 is the first digit after the point). *)
let word w =
  let d = 8 * w in
  let x =
    (4.0 *. series 1 d) -. (2.0 *. series 4 d) -. series 5 d -. series 6 d
  in
  let frac = x -. Float.of_int (int_of_float (Float.floor x)) in
  let frac = if frac < 0.0 then frac +. 1.0 else frac in
  let v = ref 0 in
  let f = ref frac in
  for _ = 1 to 8 do
    f := !f *. 16.0;
    let digit = int_of_float !f in
    f := !f -. float_of_int digit;
    v := (!v lsl 4) lor (digit land 15)
  done;
  !v

(* Memoized prefix of pi words; Blowfish needs 18 + 4*256 = 1042. *)
let cache : (int, int array) Hashtbl.t = Hashtbl.create 1

let words n =
  let best =
    Hashtbl.fold (fun k v acc -> if k >= n then Some v else acc) cache None
  in
  match best with
  | Some a -> Array.sub a 0 n
  | None ->
    let a = Array.init n word in
    Hashtbl.replace cache n a;
    a
