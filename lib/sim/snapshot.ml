(* Golden checkpoint sequence for fork-from-prefix campaigns.

   One fault-free pass over the program (with the tagging mask
   installed so injectable ordinals are counted) captures an immutable
   [Interp.snapshot] every [stride] injectable ordinals, plus the
   initial state at ordinal 0. A trial whose first planned fault lands
   at ordinal [o] then resumes from checkpoint [o / stride] instead of
   re-executing the whole fault-free prefix — exact, because the
   snapshot carries the complete architectural state and the fault-free
   prefix is identical across all trials of a prepared target.

   Checkpoint [k] sits exactly at ordinal [k * stride]
   ([Interp.advance]'s pause guarantee), so lookup is pure
   arithmetic. *)

type t = {
  stride : int;
  checkpoints : Interp.snapshot array;
      (* checkpoints.(k) at injectable ordinal k * stride; index 0 is
         the initial state. The last entry may sit short of the final
         ordinal when the run ends between strides. *)
}

let stride t = t.stride
let count t = Array.length t.checkpoints

(* Stride choice trades golden-pass memory against skipped prefix
   length: aim for up to [max_checkpoints] evenly spaced snapshots, but
   never hold more than ~[mem_budget] of memory images. Programs small
   in either dimension get the full 64 checkpoints; a huge image backs
   off to fewer, coarser ones. *)
let max_checkpoints = 64
let mem_budget = 64 * 1024 * 1024

let auto_stride ~injectable_total ~image_bytes =
  let by_mem = max 1 (mem_budget / max 1 image_bytes) in
  let n = max 1 (min max_checkpoints by_mem) in
  max 1 ((injectable_total + n - 1) / n)

let build ~stride ~tags ?image ?lenient ?budget ?memory code : t =
  if stride <= 0 then invalid_arg "Snapshot.build: stride must be positive";
  let t0 = Obs.span_begin () in
  (* Empty plan: the injection only installs the tag mask, so ordinals
     advance exactly as they will in every trial, and no fault fires. *)
  let injection = Interp.injection ~tags ~plan:[] in
  let m = Interp.machine ?image ~injection ?lenient ?budget ?memory code in
  let acc = ref [ Interp.capture m ] in
  let k = ref 1 in
  let rec go () =
    match Interp.advance m ~pause_at:(!k * stride) with
    | `Paused ->
      acc := Interp.capture m :: !acc;
      incr k;
      go ()
    | `Halted -> ()
  in
  go ();
  let t = { stride; checkpoints = Array.of_list (List.rev !acc) } in
  if Obs.enabled () then begin
    (* Stride-dependent by construction (unlike the sim.* run counters,
       which are jobs- and stride-invariant). *)
    Obs.count "snapshot.builds" 1;
    Obs.count "snapshot.checkpoints" (Array.length t.checkpoints);
    Obs.span_end ~name:"snapshot.build" ~cat:"sim"
      ~args:
        [
          ("stride", string_of_int stride);
          ("checkpoints", string_of_int (Array.length t.checkpoints));
        ]
      t0
  end;
  t

let nearest t ~ordinal =
  if ordinal < 0 then invalid_arg "Snapshot.nearest: negative ordinal";
  let k = min (ordinal / t.stride) (Array.length t.checkpoints - 1) in
  t.checkpoints.(k)
