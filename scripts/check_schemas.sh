#!/usr/bin/env bash
# Validate the versioned schema markers of etap's machine-readable
# outputs. Every JSON document the toolchain writes carries a "schema"
# field; this script is the CI gate that keeps those markers (and the
# documents' basic shape) from drifting silently.
#
#   check_schemas.sh report FILE    # etap-report/1 (etap --json, bench --json)
#   check_schemas.sh matrix FILE    # etap-report/1 from `etap matrix --json`
#                                   # (typed cell statuses + cache meta)
#   check_schemas.sh trace FILE     # etap-trace/1  (--trace)
#   check_schemas.sh metrics FILE   # etap-metrics/1 (--metrics, JSONL)
#   check_schemas.sh cache FILE     # etap-cache/1  (one _etap_cache/ entry)
#   check_schemas.sh cache DIR      # every *.json entry under the store
#   check_schemas.sh serve FILE     # etap-serve/1  (JSONL of daemon
#                                   # responses; embedded reports are
#                                   # validated as etap-report/1 and
#                                   # embedded stats docs as etap-stats/1)
#   check_schemas.sh stats FILE     # etap-stats/1  (one stats document,
#                                   # e.g. extracted from a response)
#   check_schemas.sh access FILE    # etap-access/1 (JSONL access log)
#
# Uses python3's json module (present on CI runners); no jq dependency.
set -euo pipefail

usage="usage: check_schemas.sh report|matrix|trace|metrics|cache|serve|stats|access FILE"
kind="${1:?$usage}"
file="${2:?$usage}"

python3 - "$kind" "$file" <<'EOF'
import json, sys

kind, path = sys.argv[1], sys.argv[2]

def fail(msg):
    print(f"schema check FAILED for {path}: {msg}", file=sys.stderr)
    sys.exit(1)

def expect(cond, msg):
    if not cond:
        fail(msg)

if kind == "metrics":
    # JSONL: first line is the header, every later line a typed record.
    with open(path) as f:
        lines = [json.loads(l) for l in f if l.strip()]
    expect(lines, "empty metrics stream")
    head = lines[0]
    expect(head.get("schema") == "etap-metrics/1",
           f"bad schema marker {head.get('schema')!r}")
    expect("command" in head and "meta" in head, "header missing command/meta")
    for rec in lines[1:]:
        t = rec.get("type")
        expect(t in ("counter", "histogram", "fault_site"),
               f"unknown record type {t!r}")
        if t == "counter":
            expect(isinstance(rec.get("value"), int), "non-integer counter")
        if t == "fault_site":
            expect(rec["total"] == rec["crash"] + rec["infinite"] + rec["completed"],
                   "fault_site total != class sum")
elif kind == "trace":
    doc = json.load(open(path))
    expect(doc.get("schema") == "etap-trace/1",
           f"bad schema marker {doc.get('schema')!r}")
    evs = doc.get("traceEvents")
    expect(isinstance(evs, list) and evs, "missing/empty traceEvents")
    for e in evs:
        expect(e.get("ph") in ("X", "M"), f"unexpected phase {e.get('ph')!r}")
        if e["ph"] == "X":
            expect(isinstance(e.get("ts"), (int, float)) and e["ts"] >= 0,
                   "complete event without non-negative ts")
            expect(isinstance(e.get("dur"), (int, float)) and e["dur"] >= 0,
                   "complete event without non-negative dur")
elif kind == "cache":
    # One entry file, or a store root — then every *.json below it.
    import os
    if os.path.isdir(path):
        files = sorted(
            os.path.join(d, f)
            for d, _, fs in os.walk(path) for f in fs if f.endswith(".json"))
        expect(files, "no cache entries under store root")
    else:
        files = [path]
    hexfloat = {"nan", "-nan", "infinity", "-infinity"}
    for fp in files:
        doc = json.load(open(fp))
        expect(doc.get("schema") == "etap-cache/1",
               f"{fp}: bad schema marker {doc.get('schema')!r}")
        expect(isinstance(doc.get("key"), str) and len(doc["key"]) == 32,
               f"{fp}: key is not a 32-hex-char digest")
        sec = doc.get("section")
        expect(isinstance(sec, dict) and isinstance(sec.get("name"), str)
               and isinstance(sec.get("hash"), str),
               f"{fp}: missing section name/hash")
        trials = doc.get("trials")
        expect(isinstance(trials, list) and trials, f"{fp}: missing/empty trials")
        indices = []
        for t in trials:
            for k in ("index", "dyn", "planned", "landed"):
                expect(isinstance(t.get(k), int), f"{fp}: trial {k} not an int")
            expect(t["landed"] <= t["planned"], f"{fp}: landed > planned")
            fid = t.get("fidelity")
            expect(fid is None or isinstance(fid, str)
                   and (fid.startswith(("0x", "-0x")) or fid.lower() in hexfloat),
                   f"{fp}: fidelity {fid!r} is not null or a hexfloat string")
            indices.append(t["index"])
        expect(indices == sorted(indices), f"{fp}: trial indices not ascending")
    print(f"checked {len(files)} cache entr{'y' if len(files) == 1 else 'ies'}")
elif kind == "access":
    # JSONL access log: one typed line per request the daemon served.
    with open(path) as f:
        lines = [json.loads(l) for l in f if l.strip()]
    expect(lines, "empty access log")
    for i, rec in enumerate(lines):
        where = f"line {i + 1}: "
        expect(rec.get("schema") == "etap-access/1",
               f"{where}bad schema marker {rec.get('schema')!r}")
        expect("id" in rec, f"{where}line without a request id")
        expect(isinstance(rec.get("kind"), str) and rec["kind"],
               f"{where}kind is not a string")
        expect(rec.get("status") in ("ok", "failed"),
               f"{where}status {rec.get('status')!r} is not typed")
        expect(isinstance(rec.get("coalesced"), bool),
               f"{where}coalesced is not a boolean")
        for k in ("ts_us", "wall_us", "warm_hits", "warm_misses",
                  "cache_hits", "cache_misses", "trials_run", "trials_reused"):
            expect(isinstance(rec.get(k), int) and rec[k] >= 0,
                   f"{where}{k} is not a non-negative int")
        if rec["coalesced"]:
            expect(rec["trials_run"] == 0,
                   f"{where}coalesced waiter claims executed trials")
    print(f"checked {len(lines)} access line(s)")
elif kind in ("report", "matrix", "serve", "stats"):
    def check_report(doc, where=""):
        expect(doc.get("schema") == "etap-report/1",
               f"{where}bad schema marker {doc.get('schema')!r}")
        expect(isinstance(doc.get("tables"), list) and doc["tables"],
               f"{where}missing/empty tables")
        for t in doc["tables"]:
            keys = [c["key"] for c in t["columns"]]
            for row in t["rows"]:
                expect(list(row.keys()) == keys,
                       f"{where}table {t['id']}: row keys diverge from columns")
            if t["id"] == "experiments":
                # Bench wall-time rows mark experiments that did no
                # fresh work with an explicit boolean — the wall cell
                # is null exactly when it is set.
                for row in t["rows"]:
                    expect(isinstance(row.get("skipped"), bool),
                           f"{where}experiments row {row.get('name')!r}: "
                           "skipped is not a boolean")
                    expect((row["wall_s"] is None) == row["skipped"],
                           f"{where}experiments row {row.get('name')!r}: "
                           "wall_s null-ness diverges from skipped")

    def check_stats(doc, where=""):
        expect(doc.get("schema") == "etap-stats/1",
               f"{where}bad stats schema marker {doc.get('schema')!r}")
        for k in ("uptime_us", "window_us"):
            expect(isinstance(doc.get(k), int) and doc[k] >= 0,
                   f"{where}stats {k} is not a non-negative int")
        sections = {
            "requests": ("served", "failed", "coalesced", "malformed"),
            "warm": ("hits", "misses", "apps", "prepared"),
            "store": ("entries", "bytes", "gc_runs", "gc_evicted"),
            "executor": ("workers", "busy", "queued_jobs", "queued_batches"),
        }
        for sec, keys in sections.items():
            obj = doc.get(sec)
            expect(isinstance(obj, dict), f"{where}stats missing {sec}")
            for k in keys:
                expect(isinstance(obj.get(k), int) and obj[k] >= 0,
                       f"{where}stats {sec}.{k} is not a non-negative int")
        for sec in ("totals", "interval"):
            obj = doc.get(sec)
            expect(isinstance(obj, dict), f"{where}stats missing {sec}")
            counters = obj.get("counters")
            expect(isinstance(counters, dict)
                   and all(isinstance(v, int) for v in counters.values()),
                   f"{where}stats {sec}.counters is not a str->int object")
            latency = obj.get("latency")
            expect(isinstance(latency, dict), f"{where}stats {sec}.latency missing")
            for kind_name, dig in latency.items():
                expect(isinstance(dig.get("count"), int) and dig["count"] >= 0,
                       f"{where}stats {sec}.latency.{kind_name}.count bad")
                for q in ("p50_us", "p90_us", "p99_us"):
                    v = dig.get(q)
                    expect(v is None or isinstance(v, (int, float)),
                           f"{where}stats {sec}.latency.{kind_name}.{q} bad")

    if kind == "stats":
        check_stats(json.load(open(path)))
        print(f"{path}: {kind} schema OK")
        sys.exit(0)

    if kind == "serve":
        # JSONL of daemon responses: every line typed, every embedded
        # report a full etap-report/1 document, every embedded stats
        # document a full etap-stats/1 document.
        with open(path) as f:
            lines = [json.loads(l) for l in f if l.strip()]
        expect(lines, "empty serve response stream")
        for i, rec in enumerate(lines):
            where = f"line {i + 1}: "
            expect(rec.get("schema") == "etap-serve/1",
                   f"{where}bad schema marker {rec.get('schema')!r}")
            expect("id" in rec, f"{where}response without an id")
            status = rec.get("status")
            expect(status in ("ok", "failed"),
                   f"{where}status {status!r} is not typed")
            if status == "failed":
                expect(isinstance(rec.get("error"), str) and rec["error"],
                       f"{where}failed response without an error string")
            if "report" in rec:
                check_report(rec["report"], where)
            if "stats" in rec:
                check_stats(rec["stats"], where)
        print(f"checked {len(lines)} serve response(s)")
        print(f"{path}: {kind} schema OK")
        sys.exit(0)

    doc = json.load(open(path))
    check_report(doc)
    if kind == "matrix":
        # A matrix report additionally carries typed per-cell statuses
        # and cache accounting in its meta — the fail-fast contract of
        # `etap matrix`.
        ids = {t["id"] for t in doc["tables"]}
        expect({"matrix", "matrix_anomalies"} <= ids,
               f"matrix report missing tables (got {sorted(ids)})")
        cells = next(t for t in doc["tables"] if t["id"] == "matrix")["rows"]
        expect(cells, "matrix table has no cells")
        for row in cells:
            expect(row.get("status") in ("ok", "skipped", "failed"),
                   f"bad cell status {row.get('status')!r}")
        meta = doc.get("meta", {})
        for k in ("cells_requested", "cells_ok", "cells_skipped",
                  "cells_failed", "cells_hit", "cells_miss",
                  "trials_reused", "trials_run"):
            expect(isinstance(meta.get(k), int), f"meta {k} not an int")
        expect(meta["cells_requested"] == len(cells),
               "meta cells_requested != matrix row count")
        expect(meta["cells_requested"]
               == meta["cells_ok"] + meta["cells_skipped"] + meta["cells_failed"],
               "cell status counts do not sum to cells_requested")
else:
    fail(f"unknown kind {kind!r}")

print(f"{path}: {kind} schema OK")
EOF
