(* Protection trade-off study (the paper's Section 5.3, "Future
   Potential"): if low-reliability instructions could run on cheaper
   or faster hardware, how much of each benchmark's execution
   qualifies, and what residual risk remains?

   For every benchmark we report, under both tagging modes:
   - the fraction of dynamic instructions that may run unprotected,
   - the catastrophic-failure rate at a fixed error pressure when only
     those instructions are exposed.

   Run with:  dune exec examples/protection_tradeoff.exe *)

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  say "%-10s | %22s | %22s" "" "ctrl+addr protection" "paper-literal rules";
  say "%-10s | %10s %10s | %10s %10s" "app" "% exposed" "% fail" "% exposed"
    "% fail";
  say "%s" (String.make 62 '-');
  List.iter
    (fun (app : Apps.App.t) ->
      let built = app.Apps.App.build ~seed:1 in
      let cell protect_addresses =
        let target =
          Core.Campaign.of_prog ~protect_addresses built.Apps.App.prog
        in
        let exposed =
          100.0
          *. Core.Tagging.dynamic_low_fraction target.Core.Campaign.tagging
               target.Core.Campaign.baseline.Sim.Interp.exec_counts
        in
        let prepared =
          Core.Campaign.prepare target Core.Policy.Protect_control
        in
        let s = Core.Campaign.run prepared ~errors:10 ~trials:20 ~seed:17 in
        (exposed, Core.Campaign.pct_catastrophic s)
      in
      let e_full, f_full = cell true in
      let e_lit, f_lit = cell false in
      say "%-10s | %9.1f%% %9.1f%% | %9.1f%% %9.1f%%" app.Apps.App.name
        e_full f_full e_lit f_lit)
    Apps.Registry.all;
  say "";
  say "reading: the literal rules expose far more of the execution (the";
  say "paper's Table 3) at the cost of a residual failure rate through";
  say "corrupted addresses and memory round trips (the paper's Table 2";
  say "'with protection' column); protecting addresses as well drives the";
  say "residual to zero but shrinks the exposable fraction.";
  say "(10 errors per run is ~10^3 x the paper's per-instruction rate.)"
