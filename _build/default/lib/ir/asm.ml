(* Textual assembler for the IR, accepting the exact surface syntax
   that [Prog.pp] / [Func.pp] print, so print -> parse is a structural
   round trip (global initializers are not part of the surface syntax;
   parsed globals are zero-initialized).

     global img : u8[1024]
     global acc : i32[4]

     func main() -> i32:
       li    $r0, 5
     loop:
       addi  $r0, $r0, -1
       bgtz  $r0, loop
       ret   $r0

     func helper($r0:i32, $f0:f64):  ; protected
       ret *)

type error = {
  line : int;
  message : string;
}

exception Parse_error of error

let errorf line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

(* ------------------------------------------------------------------ *)
(* Lexing: split a line into word tokens, treating ',', '(', ')' as
   separators, and stripping ';' comments. *)

let tokens_of_line line =
  let line =
    match String.index_opt line ';' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let buf = Buffer.create 8 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | ',' | '(' | ')' -> flush ()
      | c -> Buffer.add_char buf c)
    line;
  flush ();
  List.rev !out

let parse_reg ln s =
  let fail () = errorf ln "expected a register, got %S" s in
  if String.length s < 3 || s.[0] <> '$' then fail ();
  let bank = s.[1] in
  match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
  | Some n when n >= 0 ->
    if bank = 'r' then Reg.int n else if bank = 'f' then Reg.flt n else fail ()
  | _ -> fail ()

let parse_int ln s =
  match Int32.of_string_opt s with
  | Some n -> n
  | None -> errorf ln "expected an integer, got %S" s

let parse_float ln s =
  match float_of_string_opt s with
  | Some x -> x
  | None -> errorf ln "expected a float, got %S" s

let cmpop_of_suffix ln s : Instr.cmpop =
  match s with
  | "eq" -> Instr.Eq
  | "ne" -> Instr.Ne
  | "lt" -> Instr.Lt
  | "le" -> Instr.Le
  | "gt" -> Instr.Gt
  | "ge" -> Instr.Ge
  | _ -> errorf ln "unknown comparison %S" s

let binop_of_name (s : string) : Instr.binop option =
  match s with
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul
  | "div" -> Some Instr.Div
  | "rem" -> Some Instr.Rem
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "sll" -> Some Instr.Sll
  | "srl" -> Some Instr.Srl
  | "sra" -> Some Instr.Sra
  | _ -> None

let fbinop_of_name (s : string) : Instr.fbinop option =
  match s with
  | "fadd" -> Some Instr.Fadd
  | "fsub" -> Some Instr.Fsub
  | "fmul" -> Some Instr.Fmul
  | "fdiv" -> Some Instr.Fdiv
  | _ -> None

let funop_of_name (s : string) : Instr.funop option =
  match s with
  | "fneg" -> Some Instr.Fneg
  | "fabs" -> Some Instr.Fabs
  | "fsqrt" -> Some Instr.Fsqrt
  | _ -> None

(* "4($r1)" arrives as two tokens "4" "$r1" after separator stripping. *)
let parse_mem ln off base = (parse_reg ln base, Int32.to_int (parse_int ln off))

let strip_suffix ~prefix ~suffix s =
  let pl = String.length prefix and sl = String.length suffix in
  if
    String.length s >= pl + sl + 1
    && String.sub s 0 pl = prefix
    && String.sub s (String.length s - sl) sl = suffix
  then Some (String.sub s pl (String.length s - pl - sl))
  else None

let parse_instr ln (toks : string list) : Instr.t =
  let reg = parse_reg ln in
  match toks with
  | [ "nop" ] -> Instr.Nop
  | [ "ret" ] -> Instr.Ret None
  | [ "ret"; r ] -> Instr.Ret (Some (reg r))
  | [ "j"; l ] -> Instr.Jmp l
  | [ "li"; d; n ] -> Instr.Li (reg d, parse_int ln n)
  | [ "lf"; d; x ] -> Instr.Lf (reg d, parse_float ln x)
  | [ "la"; d; g ] -> Instr.La (reg d, g)
  | [ "mov"; d; s ] -> Instr.Mov (reg d, reg s)
  | [ "i2f"; d; s ] -> Instr.I2f (reg d, reg s)
  | [ "f2i"; d; s ] -> Instr.F2i (reg d, reg s)
  | [ "lw"; d; off; base ] ->
    let b, o = parse_mem ln off base in
    Instr.Lw (reg d, b, o)
  | [ "sw"; v; off; base ] ->
    let b, o = parse_mem ln off base in
    Instr.Sw (reg v, b, o)
  | [ "lbu"; d; off; base ] ->
    let b, o = parse_mem ln off base in
    Instr.Lb (reg d, b, o)
  | [ "sb"; v; off; base ] ->
    let b, o = parse_mem ln off base in
    Instr.Sb (reg v, b, o)
  | [ "lwf"; d; off; base ] ->
    let b, o = parse_mem ln off base in
    Instr.Lwf (reg d, b, o)
  | [ "swf"; v; off; base ] ->
    let b, o = parse_mem ln off base in
    Instr.Swf (reg v, b, o)
  | [ op; d; a; b ] when binop_of_name op <> None ->
    Instr.Bin (Option.get (binop_of_name op), reg d, reg a, reg b)
  | [ op; d; a; n ]
    when String.length op > 1
         && op.[String.length op - 1] = 'i'
         && binop_of_name (String.sub op 0 (String.length op - 1)) <> None ->
    let base_op =
      Option.get (binop_of_name (String.sub op 0 (String.length op - 1)))
    in
    Instr.Bini (base_op, reg d, reg a, parse_int ln n)
  | [ op; d; a; b ] when fbinop_of_name op <> None ->
    Instr.Fbin (Option.get (fbinop_of_name op), reg d, reg a, reg b)
  | [ op; d; s ] when funop_of_name op <> None ->
    Instr.Fun_ (Option.get (funop_of_name op), reg d, reg s)
  | [ op; d; a; b ]
    when String.length op = 4 && op.[0] = 'f' && op.[1] = 's' ->
    Instr.Fcmp (cmpop_of_suffix ln (String.sub op 2 2), reg d, reg a, reg b)
  | [ op; d; a; b ] when String.length op = 3 && op.[0] = 's' ->
    Instr.Cmp (cmpop_of_suffix ln (String.sub op 1 2), reg d, reg a, reg b)
  | [ op; a; l ] when strip_suffix ~prefix:"b" ~suffix:"z" op <> None ->
    let c = Option.get (strip_suffix ~prefix:"b" ~suffix:"z" op) in
    Instr.Brz (cmpop_of_suffix ln c, reg a, l)
  | [ op; a; b; l ] when String.length op = 3 && op.[0] = 'b' ->
    Instr.Br (cmpop_of_suffix ln (String.sub op 1 2), reg a, reg b, l)
  | [ "call"; f ] -> Instr.Call { dst = None; func = f; args = [] }
  | "call" :: f :: args ->
    Instr.Call { dst = None; func = f; args = List.map reg args }
  | d :: "=" :: "call" :: f :: args ->
    Instr.Call { dst = Some (reg d); func = f; args = List.map reg args }
  | [ label ] when String.length label > 1 && label.[String.length label - 1] = ':'
    ->
    Instr.Label (String.sub label 0 (String.length label - 1))
  | _ -> errorf ln "cannot parse instruction: %s" (String.concat " " toks)

(* ------------------------------------------------------------------ *)
(* Program structure.                                                  *)

let parse_ty ln s =
  match s with
  | "i32" -> Ty.I32
  | "f64" -> Ty.F64
  | "u8" -> Ty.I8
  | _ -> errorf ln "unknown type %S" s

(* "i32[16]" *)
let parse_ty_size ln s =
  match String.index_opt s '[' with
  | Some i when s.[String.length s - 1] = ']' ->
    let ty = parse_ty ln (String.sub s 0 i) in
    let size_str = String.sub s (i + 1) (String.length s - i - 2) in
    (match int_of_string_opt size_str with
     | Some n when n > 0 -> (ty, n)
     | _ -> errorf ln "bad array size in %S" s)
  | _ -> errorf ln "expected ty[size], got %S" s

(* "$r0:i32" — the type annotation is redundant with the bank but is
   what the printer emits; we check consistency. *)
let parse_param ln s =
  match String.split_on_char ':' s with
  | [ r; ty ] ->
    let r = parse_reg ln r in
    let ty = parse_ty ln ty in
    if Ty.equal (Ty.of_reg r) ty then r
    else errorf ln "parameter %S: bank/type mismatch" s
  | _ -> errorf ln "expected $reg:ty, got %S" s

type fdecl = {
  fname : string;
  fparams : Reg.t list;
  fret : Ty.t option;
  feligible : bool;
  mutable fbody : Instr.t list;  (* reversed *)
  fline : int;
}

(* "func name($r0:i32, $f0:f64) -> i32:" possibly with "; protected" *)
let parse_func_header ln line =
  let protected_ =
    match String.index_opt line ';' with
    | Some i ->
      let c = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      c = "protected"
    | None -> false
  in
  match tokens_of_line line with
  | "func" :: rest -> begin
    let rest, fret =
      match List.rev rest with
      | last :: "->" :: before when String.length last > 0 ->
        let last =
          if last.[String.length last - 1] = ':' then
            String.sub last 0 (String.length last - 1)
          else last
        in
        (List.rev before, Some (parse_ty ln last))
      | _ -> (rest, None)
    in
    match rest with
    | name :: params ->
      let name =
        if String.length name > 0 && name.[String.length name - 1] = ':' then
          String.sub name 0 (String.length name - 1)
        else name
      in
      let params =
        List.map
          (fun p ->
            let p =
              if String.length p > 0 && p.[String.length p - 1] = ':' then
                String.sub p 0 (String.length p - 1)
              else p
            in
            parse_param ln p)
          params
      in
      {
        fname = name;
        fparams = params;
        fret;
        feligible = not protected_;
        fbody = [];
        fline = ln;
      }
    | [] -> errorf ln "missing function name"
  end
  | _ -> errorf ln "expected a func header"

let parse_program ?(entry = "main") (source : string) : Prog.t =
  let lines = String.split_on_char '\n' source in
  let globals = ref [] in
  let funcs = ref [] in
  let current : fdecl option ref = ref None in
  let finish () =
    match !current with
    | None -> ()
    | Some f ->
      funcs :=
        Func.make ~eligible:f.feligible ~name:f.fname ~params:f.fparams
          ~ret:f.fret (List.rev f.fbody)
        :: !funcs;
      current := None
  in
  List.iteri
    (fun idx raw ->
      let ln = idx + 1 in
      let trimmed = String.trim raw in
      let stripped =
        match String.index_opt trimmed ';' with
        | Some i -> String.trim (String.sub trimmed 0 i)
        | None -> trimmed
      in
      if stripped = "" then ()
      else
        match tokens_of_line stripped with
        | "global" :: rest -> begin
          finish ();
          match rest with
          | [ name; ":"; tysize ] | [ name; tysize ] ->
            let ty, size = parse_ty_size ln tysize in
            globals := Prog.global name ty size :: !globals
          | _ -> errorf ln "expected: global NAME : TY[SIZE]"
        end
        | "func" :: _ ->
          finish ();
          current := Some (parse_func_header ln trimmed)
        | toks -> begin
          match !current with
          | None -> errorf ln "instruction outside a function"
          | Some f -> f.fbody <- parse_instr ln toks :: f.fbody
        end)
    lines;
  finish ();
  try Prog.make ~entry ~globals:(List.rev !globals) (List.rev !funcs)
  with Prog.Invalid m -> raise (Parse_error { line = 0; message = m })

let parse_program_res ?entry source =
  match parse_program ?entry source with
  | p -> Ok p
  | exception Parse_error e -> Error (Format.asprintf "%a" pp_error e)
