(* etap top — client-side rendering of the daemon's [stats] verb.

   The daemon does the hard part: every etap-stats/1 document carries
   both lifetime totals and an "interval" section — the [Obs.diff] of
   the current snapshot against the previous [stats] request's — so a
   poller gets exact per-window deltas without keeping state beyond
   the poll loop itself. This module turns one document into typed
   [Report] tables (the same renderer every other etap surface uses):
   an overview of the daemon gauges and a per-request-kind rates table
   derived from the interval latency digests. *)

module J = Report.Json

let get path (doc : J.t) : J.t option =
  List.fold_left
    (fun acc k -> match acc with Some j -> J.member k j | None -> None)
    (Some doc) path

let geti path doc =
  match get path doc with
  | Some j -> Option.value ~default:0 (J.to_int_opt j)
  | None -> 0

let getf path doc =
  match get path doc with
  | Some j -> Option.value ~default:0.0 (J.to_float_opt j)
  | None -> 0.0

(* Daemon gauges, one metric per row: uptime and the requests / warm
   registry / store / executor sections of the stats document. *)
let overview_table (doc : J.t) : Report.table =
  let num text v = Report.num ~text v in
  let secs us = num (Printf.sprintf "%.1f s" (us /. 1e6)) (us /. 1e6) in
  let mib b =
    num
      (Printf.sprintf "%.2f MiB" (float_of_int b /. 1048576.0))
      (float_of_int b /. 1048576.0)
  in
  let warm_hits = geti [ "warm"; "hits" ] doc in
  let warm_misses = geti [ "warm"; "misses" ] doc in
  let hit_rate =
    if warm_hits + warm_misses = 0 then Report.text "n/a"
    else
      Report.pct
        (100.0 *. float_of_int warm_hits /. float_of_int (warm_hits + warm_misses))
  in
  let rows =
    [
      ("uptime", secs (getf [ "uptime_us" ] doc));
      ("window", secs (getf [ "window_us" ] doc));
      ("requests served", Report.int (geti [ "requests"; "served" ] doc));
      ("requests failed", Report.int (geti [ "requests"; "failed" ] doc));
      ("requests coalesced", Report.int (geti [ "requests"; "coalesced" ] doc));
      ("requests malformed", Report.int (geti [ "requests"; "malformed" ] doc));
      ("warm hit rate", hit_rate);
      ("warm apps", Report.int (geti [ "warm"; "apps" ] doc));
      ("warm prepared", Report.int (geti [ "warm"; "prepared" ] doc));
      ("store entries", Report.int (geti [ "store"; "entries" ] doc));
      ("store size", mib (geti [ "store"; "bytes" ] doc));
      ("gc evicted", Report.int (geti [ "store"; "gc_evicted" ] doc));
      ( "workers busy",
        Report.text
          (Printf.sprintf "%d/%d"
             (geti [ "executor"; "busy" ] doc)
             (geti [ "executor"; "workers" ] doc)) );
      ("queued jobs", Report.int (geti [ "executor"; "queued_jobs" ] doc));
    ]
  in
  Report.table ~id:"top_overview" ~title:"etap top: daemon"
    ~columns:
      [ Report.column ~key:"metric" "metric"; Report.column ~key:"value" "value" ]
    (List.map (fun (m, v) -> [ Report.text m; v ]) rows)

(* Per-request-kind rates over the poll window: request count and
   latency digests from the interval section (live view), lifetime
   request count from totals. Kinds are whatever the daemon has seen —
   inject, matrix, ping, stats, shutdown, malformed. *)
let kinds_table (doc : J.t) : Report.table =
  let window_s = getf [ "window_us" ] doc /. 1e6 in
  let fields = function Some (J.Obj kvs) -> kvs | _ -> [] in
  let interval = fields (get [ "interval"; "latency" ] doc) in
  let totals = fields (get [ "totals"; "latency" ] doc) in
  let ms j v =
    match get [ v ] j with
    | Some (J.Float x) -> Report.num ~text:(Printf.sprintf "%.2f" (x /. 1e3)) (x /. 1e3)
    | Some (J.Int x) ->
      Report.num
        ~text:(Printf.sprintf "%.2f" (float_of_int x /. 1e3))
        (float_of_int x /. 1e3)
    | _ -> Report.text "-"
  in
  let rows =
    List.map
      (fun (kind, tot) ->
        let itv = Option.value ~default:J.Null (List.assoc_opt kind interval) in
        let window_n = geti [ "count" ] itv in
        let rate =
          if window_s <= 0.0 then Report.text "-"
          else
            let r = float_of_int window_n /. window_s in
            Report.num ~text:(Printf.sprintf "%.2f" r) r
        in
        [
          Report.text kind;
          Report.int window_n;
          rate;
          ms itv "p50_us";
          ms itv "p90_us";
          ms itv "p99_us";
          Report.int (geti [ "count" ] tot);
        ])
      totals
  in
  Report.table ~id:"top_kinds" ~title:"requests by kind (this window)"
    ~columns:
      [
        Report.column ~key:"kind" "kind";
        Report.column ~key:"window_requests" "req";
        Report.column ~key:"req_per_s" "req/s";
        Report.column ~key:"p50_ms" "p50 ms";
        Report.column ~key:"p90_ms" "p90 ms";
        Report.column ~key:"p99_ms" "p99 ms";
        Report.column ~key:"total_requests" "total";
      ]
    rows

let tables (doc : J.t) : Report.table list =
  [ overview_table doc; kinds_table doc ]
