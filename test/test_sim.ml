(* Tests for the functional simulator: value semantics, the two memory
   models, the interpreter's instruction semantics, traps, timeouts
   and the fault-injection hook. *)

open Ir

let r0 = Reg.int 0
let r1 = Reg.int 1
let r2 = Reg.int 2
let f0 = Reg.flt 0
let f1 = Reg.flt 1
let f2 = Reg.flt 2

(* ------------------------------------------------------------------ *)
(* Values and bit flips.                                               *)

let test_sx32 () =
  Alcotest.(check int) "id small" 42 (Sim.Value.sx32 42);
  Alcotest.(check int) "wrap max" (-2147483648) (Sim.Value.sx32 2147483648);
  Alcotest.(check int) "id min" (-2147483648) (Sim.Value.sx32 (-2147483648));
  Alcotest.(check int) "wrap -1 image" (-1) (Sim.Value.sx32 0xFFFFFFFF);
  Alcotest.(check int) "2^32 wraps to 0" 0 (Sim.Value.sx32 (1 lsl 32))

let test_flip_int () =
  Alcotest.(check int) "bit 0" 1 (Sim.Value.flip_int ~bit:0 0);
  Alcotest.(check int) "bit 31 sign" (-2147483648)
    (Sim.Value.flip_int ~bit:31 0);
  Alcotest.(check int) "clears" 0 (Sim.Value.flip_int ~bit:4 16)

let test_flip_float () =
  let x = 1.5 in
  let y = Sim.Value.flip_float ~bit:63 x in
  Alcotest.(check (float 0.0)) "sign bit" (-1.5) y

let flip_involution =
  QCheck.Test.make ~name:"int flip is an involution" ~count:500
    QCheck.(pair int (int_bound 31))
    (fun (v, bit) ->
      let v = Sim.Value.sx32 v in
      Sim.Value.flip_int ~bit (Sim.Value.flip_int ~bit v) = v)

let flip_changes =
  QCheck.Test.make ~name:"flip changes the value" ~count:500
    QCheck.(pair int (int_bound 31))
    (fun (v, bit) ->
      let v = Sim.Value.sx32 v in
      Sim.Value.flip_int ~bit v <> v)

let flip_float_involution =
  QCheck.Test.make ~name:"float flip is an involution (bitwise)" ~count:500
    QCheck.(pair float (int_bound 63))
    (fun (x, bit) ->
      Int64.equal
        (Int64.bits_of_float
           (Sim.Value.flip_float ~bit (Sim.Value.flip_float ~bit x)))
        (Int64.bits_of_float x))

(* ------------------------------------------------------------------ *)
(* Memory.                                                             *)

let test_memory_strict_traps () =
  let m = Sim.Memory.create ~cells:8 () in
  Alcotest.check_raises "unaligned" (Sim.Trap.Error (Sim.Trap.Unaligned 6))
    (fun () -> ignore (Sim.Memory.load_int m 6));
  Alcotest.check_raises "null" (Sim.Trap.Error Sim.Trap.Null_access)
    (fun () -> ignore (Sim.Memory.load_int m 0));
  Alcotest.check_raises "oob" (Sim.Trap.Error (Sim.Trap.Out_of_bounds 64))
    (fun () -> ignore (Sim.Memory.load_int m 64));
  Sim.Memory.store_flt m 4 2.5;
  Alcotest.check_raises "type confusion"
    (Sim.Trap.Error (Sim.Trap.Type_confusion 4)) (fun () ->
      ignore (Sim.Memory.load_int m 4))

let test_memory_lenient () =
  let m = Sim.Memory.create ~lenient:true ~cells:8 () in
  Alcotest.(check int) "oob load zero" 0 (Sim.Memory.load_int m 1000);
  Alcotest.(check int) "negative addr zero" 0 (Sim.Memory.load_int m (-8));
  Sim.Memory.store_int m 1000 5;  (* dropped silently *)
  Sim.Memory.store_int m 8 7;
  Alcotest.(check int) "unaligned rounds down" 7 (Sim.Memory.load_int m 10);
  Sim.Memory.store_flt m 4 2.5;
  Alcotest.(check int) "kind confusion reads 0" 0 (Sim.Memory.load_int m 4)

let test_memory_bytes () =
  let m = Sim.Memory.create ~cells:8 () in
  Sim.Memory.store_byte m 4 0xAB;
  Sim.Memory.store_byte m 5 0xCD;
  Alcotest.(check int) "lane 0" 0xAB (Sim.Memory.load_byte m 4);
  Alcotest.(check int) "lane 1" 0xCD (Sim.Memory.load_byte m 5);
  (* little-endian packing within the word *)
  Alcotest.(check int) "word image" 0xCDAB (Sim.Memory.load_int m 4);
  Sim.Memory.store_byte m 7 0xFF;
  Alcotest.(check bool) "word is signed" true (Sim.Memory.load_int m 4 < 0);
  Alcotest.(check int) "byte reload zero-extends" 0xFF
    (Sim.Memory.load_byte m 7);
  (* byte store truncates to the low 8 bits *)
  Sim.Memory.store_byte m 6 0x1FF;
  Alcotest.(check int) "truncated" 0xFF (Sim.Memory.load_byte m 6)

let test_memory_of_prog_init () =
  let globals =
    [
      Prog.global ~init:(Prog.Int_data [| 10l; -2l |]) "w" Ty.I32 2;
      Prog.global ~init:(Prog.Flt_data [| 3.25 |]) "f" Ty.F64 1;
      Prog.global ~init:(Prog.Int_data [| 1l; 2l; 3l; 4l; 5l |]) "b" Ty.I8 5;
    ]
  in
  let main = Func.make ~name:"main" ~params:[] ~ret:None [ Instr.Ret None ] in
  let p = Prog.make ~globals [ main ] in
  let m = Sim.Memory.of_prog p in
  Alcotest.(check int) "w[0]" 10 (Sim.Memory.load_int m (Prog.global_addr p "w"));
  Alcotest.(check int) "w[1]" (-2)
    (Sim.Memory.load_int m (Prog.global_addr p "w" + 4));
  Alcotest.(check (float 0.0)) "f[0]" 3.25
    (Sim.Memory.load_flt m (Prog.global_addr p "f"));
  let b = Prog.global_addr p "b" in
  Alcotest.(check int) "b[4]" 5 (Sim.Memory.load_byte m (b + 4));
  let back = Sim.Memory.read_global_ints m p "b" in
  Alcotest.(check (array int)) "read_global bytes" [| 1; 2; 3; 4; 5 |] back

(* Regression: [int_of_float] is unspecified for nan/inf and values
   outside the int range — all reachable in a float cell after a float
   injection flips an exponent bit. [read_global_ints] must clamp them
   to 0 instead of returning platform noise. *)
let test_read_global_ints_nonfinite () =
  let globals = [ Prog.global "f" Ty.F64 5 ] in
  let main = Func.make ~name:"main" ~params:[] ~ret:None [ Instr.Ret None ] in
  let p = Prog.make ~globals [ main ] in
  let m = Sim.Memory.of_prog p in
  let a = Prog.global_addr p "f" in
  Sim.Memory.store_flt m a Float.nan;
  Sim.Memory.store_flt m (a + 4) Float.infinity;
  Sim.Memory.store_flt m (a + 8) Float.neg_infinity;
  Sim.Memory.store_flt m (a + 12) 1e30;  (* finite, out of int32 range *)
  Sim.Memory.store_flt m (a + 16) (-42.75);
  Alcotest.(check (array int))
    "non-finite and out-of-range clamp to 0"
    [| 0; 0; 0; 0; -42 |]
    (Sim.Memory.read_global_ints m p "f")

(* ------------------------------------------------------------------ *)
(* Interpreter semantics.                                              *)

(* Build a one-function program returning an int expression. *)
let run_main ?injection ?lenient ?budget body =
  let f = Func.make ~name:"main" ~params:[] ~ret:(Some Ty.I32) body in
  let p = Prog.make ~globals:[ Prog.global "g" Ty.I32 8 ] [ f ] in
  Sim.Interp.run ?injection ?lenient ?budget (Sim.Code.of_prog p)

let expect_ret name body expected =
  match (run_main body).Sim.Interp.outcome with
  | Sim.Interp.Done (Some (Sim.Value.I v)) ->
    Alcotest.(check int) name expected v
  | o ->
    Alcotest.failf "%s: unexpected outcome %s" name
      (match o with
       | Sim.Interp.Trapped t -> Sim.Trap.to_string t
       | Sim.Interp.Timeout -> "timeout"
       | Sim.Interp.Done _ -> "wrong value kind")

let bin op a b = [ Instr.Li (r0, a); Instr.Li (r1, b); Instr.Bin (op, r2, r0, r1); Instr.Ret (Some r2) ]

let test_alu () =
  expect_ret "add wrap" (bin Instr.Add 2147483647l 1l) (-2147483648);
  expect_ret "sub" (bin Instr.Sub 5l 9l) (-4);
  expect_ret "mul wrap" (bin Instr.Mul 65536l 65536l) 0;
  expect_ret "div trunc toward zero" (bin Instr.Div (-7l) 2l) (-3);
  expect_ret "rem sign" (bin Instr.Rem (-7l) 2l) (-1);
  expect_ret "and" (bin Instr.And 12l 10l) 8;
  expect_ret "or" (bin Instr.Or 12l 10l) 14;
  expect_ret "xor" (bin Instr.Xor 12l 10l) 6;
  expect_ret "sll" (bin Instr.Sll 1l 31l) (-2147483648);
  expect_ret "srl on negative" (bin Instr.Srl (-1l) 28l) 15;
  expect_ret "sra on negative" (bin Instr.Sra (-16l) 2l) (-4);
  expect_ret "shift amount masked" (bin Instr.Sll 1l 33l) 2

let test_cmp () =
  expect_ret "slt true"
    [ Instr.Li (r0, 1l); Instr.Li (r1, 2l); Instr.Cmp (Instr.Lt, r2, r0, r1); Instr.Ret (Some r2) ]
    1;
  expect_ret "sge false"
    [ Instr.Li (r0, 1l); Instr.Li (r1, 2l); Instr.Cmp (Instr.Ge, r2, r0, r1); Instr.Ret (Some r2) ]
    0

let test_float_ops () =
  let body =
    [
      Instr.Lf (f0, 1.5);
      Instr.Lf (f1, 2.25);
      Instr.Fbin (Instr.Fmul, f2, f0, f1);
      Instr.F2i (r0, f2);
      Instr.Ret (Some r0);
    ]
  in
  expect_ret "fmul then trunc" body 3

let test_f2i_traps_on_nan () =
  let body =
    [
      Instr.Lf (f0, 0.0);
      Instr.Lf (f1, 0.0);
      Instr.Fbin (Instr.Fdiv, f2, f0, f1);  (* nan, no trap *)
      Instr.F2i (r0, f2);                   (* trap *)
      Instr.Ret (Some r0);
    ]
  in
  match (run_main body).Sim.Interp.outcome with
  | Sim.Interp.Trapped (Sim.Trap.Float_to_int_overflow _) -> ()
  | _ -> Alcotest.fail "expected f2i trap"

let test_div_by_zero_traps () =
  match (run_main (bin Instr.Div 1l 0l)).Sim.Interp.outcome with
  | Sim.Interp.Trapped Sim.Trap.Division_by_zero -> ()
  | _ -> Alcotest.fail "expected division trap"

let test_branches_and_loop () =
  (* sum 1..5 *)
  let body =
    [
      Instr.Li (r0, 0l);       (* acc *)
      Instr.Li (r1, 1l);       (* i *)
      Instr.Li (r2, 5l);       (* n *)
      Instr.Label "head";
      Instr.Br (Instr.Gt, r1, r2, "done");
      Instr.Bin (Instr.Add, r0, r0, r1);
      Instr.Bini (Instr.Add, r1, r1, 1l);
      Instr.Jmp "head";
      Instr.Label "done";
      Instr.Ret (Some r0);
    ]
  in
  expect_ret "loop sum" body 15

let test_call_and_recursion () =
  (* fib 10 = 55, recursively *)
  let fib =
    Func.make ~name:"fib" ~params:[ r0 ] ~ret:(Some Ty.I32)
      [
        Instr.Li (r1, 2l);
        Instr.Br (Instr.Lt, r0, r1, "base");
        Instr.Bini (Instr.Sub, r1, r0, 1l);
        Instr.Call { dst = Some r2; func = "fib"; args = [ r1 ] };
        Instr.Bini (Instr.Sub, r1, r0, 2l);
        Instr.Call { dst = Some (Reg.int 3); func = "fib"; args = [ r1 ] };
        Instr.Bin (Instr.Add, r2, r2, Reg.int 3);
        Instr.Ret (Some r2);
        Instr.Label "base";
        Instr.Ret (Some r0);
      ]
  in
  let main =
    Func.make ~name:"main" ~params:[] ~ret:(Some Ty.I32)
      [
        Instr.Li (r0, 10l);
        Instr.Call { dst = Some r1; func = "fib"; args = [ r0 ] };
        Instr.Ret (Some r1);
      ]
  in
  let p = Prog.make ~globals:[] [ main; fib ] in
  match (Sim.Interp.run (Sim.Code.of_prog p)).Sim.Interp.outcome with
  | Sim.Interp.Done (Some (Sim.Value.I 55)) -> ()
  | _ -> Alcotest.fail "fib 10 <> 55"

let test_stack_overflow () =
  let loop =
    Func.make ~name:"loop" ~params:[] ~ret:None
      [
        Instr.Call { dst = None; func = "loop"; args = [] };
        Instr.Ret None;
      ]
  in
  let main =
    Func.make ~name:"main" ~params:[] ~ret:None
      [ Instr.Call { dst = None; func = "loop"; args = [] }; Instr.Ret None ]
  in
  let p = Prog.make ~globals:[] [ main; loop ] in
  match (Sim.Interp.run (Sim.Code.of_prog p)).Sim.Interp.outcome with
  | Sim.Interp.Trapped (Sim.Trap.Call_stack_overflow _) -> ()
  | _ -> Alcotest.fail "expected call stack overflow"

let test_timeout () =
  let body =
    [ Instr.Label "spin"; Instr.Jmp "spin"; Instr.Ret (Some r0) ]
  in
  match (run_main ~budget:10_000 body).Sim.Interp.outcome with
  | Sim.Interp.Timeout -> ()
  | _ -> Alcotest.fail "expected timeout"

let test_dyn_count_excludes_labels () =
  let r = run_main [ Instr.Label "a"; Instr.Li (r0, 1l); Instr.Ret (Some r0) ] in
  Alcotest.(check int) "labels free" 2 r.Sim.Interp.dyn_count

let test_determinism () =
  let body = bin Instr.Add 3l 4l in
  let a = run_main body and b = run_main body in
  Alcotest.(check int) "same count" a.Sim.Interp.dyn_count b.Sim.Interp.dyn_count

(* ------------------------------------------------------------------ *)
(* Injection hook.                                                     *)

let test_injection_exact () =
  (* main: r0 = 5 (injectable); flip bit 1 of the single injectable
     dynamic instruction -> result 7 *)
  let f =
    Func.make ~name:"main" ~params:[] ~ret:(Some Ty.I32)
      [ Instr.Li (r0, 5l); Instr.Ret (Some r0) ]
  in
  let p = Prog.make ~globals:[] [ f ] in
  let code = Sim.Code.of_prog p in
  let tags = [| [| true; false |] |] in
  let injection = Sim.Interp.injection ~tags ~plan:[ (0, 1) ] in
  let r = Sim.Interp.run ~injection code in
  (match r.Sim.Interp.outcome with
   | Sim.Interp.Done (Some (Sim.Value.I 7)) -> ()
   | _ -> Alcotest.fail "expected corrupted 7");
  Alcotest.(check int) "one injectable" 1 r.Sim.Interp.injectable_seen;
  Alcotest.(check int) "one landed" 1 r.Sim.Interp.faults_landed

let test_injection_counts_only_tagged () =
  let f =
    Func.make ~name:"main" ~params:[] ~ret:(Some Ty.I32)
      [ Instr.Li (r0, 1l); Instr.Li (r1, 2l); Instr.Bin (Instr.Add, r2, r0, r1); Instr.Ret (Some r2) ]
  in
  let p = Prog.make ~globals:[] [ f ] in
  let code = Sim.Code.of_prog p in
  let tags = [| [| false; true; false; false |] |] in
  let r =
    Sim.Interp.run ~injection:(Sim.Interp.injection ~tags ~plan:[]) code
  in
  Alcotest.(check int) "only tagged counted" 1 r.Sim.Interp.injectable_seen

(* The sorted-plan/monotone-cursor path must land exactly the faults a
   per-ordinal lookup (the old Hashtbl implementation) would: every
   planned ordinal below the injectable count is applied once, plan
   order does not matter, and ordinals past the end of the run are
   ignored without derailing the cursor. *)
let test_multi_fault_plan_matches_lookup () =
  (* main: r0..r3 loaded (all injectable), returns r0+r1+r2+r3. *)
  let r3 = Reg.int 3 in
  let f =
    Func.make ~name:"main" ~params:[] ~ret:(Some Ty.I32)
      [
        Instr.Li (r0, 1l); Instr.Li (r1, 1l); Instr.Li (r2, 1l);
        Instr.Li (r3, 1l);
        Instr.Bin (Instr.Add, r0, r0, r1);
        Instr.Bin (Instr.Add, r0, r0, r2);
        Instr.Bin (Instr.Add, r0, r0, r3);
        Instr.Ret (Some r0);
      ]
  in
  let p = Prog.make ~globals:[] [ f ] in
  let code = Sim.Code.of_prog p in
  let tags = [| [| true; true; true; true; false; false; false; false |] |] in
  (* Reference semantics, ordinal by ordinal: flipping bit b of an
     ordinal's value XORs the final sum with the same delta whichever
     Li it hits (all hold 1, and the adds are untagged). *)
  let run_with plan =
    Sim.Interp.run ~injection:(Sim.Interp.injection ~tags ~plan) code
  in
  let value r =
    match r.Sim.Interp.outcome with
    | Sim.Interp.Done (Some (Sim.Value.I v)) -> v
    | _ -> Alcotest.fail "expected an int return"
  in
  (* ordinal 5 exceeds injectable_seen (4): it must not land, and must
     not block later entries from matching (none here). *)
  let plan = [ (0, 1); (2, 2); (3, 0); (5, 7) ] in
  let r = run_with plan in
  Alcotest.(check int) "injectable pool" 4 r.Sim.Interp.injectable_seen;
  Alcotest.(check int) "three land, overflow ignored" 3
    r.Sim.Interp.faults_landed;
  (* 1+1+1+1 with ordinal 0 -> 1 xor 2 = 3, ordinal 2 -> 1 xor 4 = 5,
     ordinal 3 -> 1 xor 1 = 0: sum = 3 + 1 + 5 + 0 *)
  Alcotest.(check int) "exact corruption" 9 (value r);
  (* plan list order is irrelevant: the constructor sorts *)
  List.iter
    (fun permuted ->
      let r' = run_with permuted in
      Alcotest.(check int) "same result, permuted plan" (value r) (value r');
      Alcotest.(check int) "same landed count" r.Sim.Interp.faults_landed
        r'.Sim.Interp.faults_landed)
    [
      [ (5, 7); (3, 0); (2, 2); (0, 1) ];
      [ (2, 2); (0, 1); (5, 7); (3, 0) ];
    ];
  (* duplicate ordinals are rejected rather than silently dropped *)
  Alcotest.check_raises "duplicate ordinal"
    (Invalid_argument "Interp.injection: duplicate ordinal") (fun () ->
      ignore (Sim.Interp.injection ~tags ~plan:[ (1, 0); (1, 3) ]))

let test_exec_counts () =
  let body =
    [
      Instr.Li (r0, 0l);
      Instr.Li (r1, 3l);
      Instr.Label "head";
      Instr.Brz (Instr.Le, r1, "done");
      Instr.Bini (Instr.Sub, r1, r1, 1l);
      Instr.Jmp "head";
      Instr.Label "done";
      Instr.Ret (Some r0);
    ]
  in
  let f = Func.make ~name:"main" ~params:[] ~ret:(Some Ty.I32) body in
  let p = Prog.make ~globals:[] [ f ] in
  let r = Sim.Interp.run ~count_exec:true (Sim.Code.of_prog p) in
  let counts = r.Sim.Interp.exec_counts.(0) in
  Alcotest.(check int) "li once" 1 counts.(0);
  Alcotest.(check int) "branch 4x" 4 counts.(3);
  Alcotest.(check int) "body 3x" 3 counts.(4)

(* ------------------------------------------------------------------ *)
(* Properties: interpreter arithmetic agrees with native 32-bit
   semantics, and byte/word memory interactions are consistent.        *)

let alu_matches_native_prop =
  QCheck.Test.make ~name:"interp ALU = native 32-bit semantics" ~count:300
    QCheck.(triple (int_bound 8) int int)
    (fun (opn, a, b) ->
      let a = Sim.Value.sx32 a and b = Sim.Value.sx32 b in
      let op, expected =
        match opn with
        | 0 -> (Instr.Add, Sim.Value.sx32 (a + b))
        | 1 -> (Instr.Sub, Sim.Value.sx32 (a - b))
        | 2 -> (Instr.Mul, Sim.Value.sx32 (a * b))
        | 3 -> (Instr.And, a land b)
        | 4 -> (Instr.Or, a lor b)
        | 5 -> (Instr.Xor, a lxor b)
        | 6 -> (Instr.Sll, Sim.Value.sx32 (a lsl (b land 31)))
        | 7 -> (Instr.Srl, Sim.Value.sx32 ((a land 0xFFFFFFFF) lsr (b land 31)))
        | _ -> (Instr.Sra, a asr (b land 31))
      in
      let r =
        run_main
          [
            Instr.Li (r0, Int32.of_int a);
            Instr.Li (r1, Int32.of_int b);
            Instr.Bin (op, r2, r0, r1);
            Instr.Ret (Some r2);
          ]
      in
      match r.Sim.Interp.outcome with
      | Sim.Interp.Done (Some (Sim.Value.I v)) -> v = expected
      | _ -> false)

let byte_word_consistency_prop =
  QCheck.Test.make ~name:"four byte stores = one word image" ~count:200
    QCheck.(quad (int_bound 255) (int_bound 255) (int_bound 255) (int_bound 255))
    (fun (b0, b1, b2, b3) ->
      let m = Sim.Memory.create ~cells:4 () in
      Sim.Memory.store_byte m 4 b0;
      Sim.Memory.store_byte m 5 b1;
      Sim.Memory.store_byte m 6 b2;
      Sim.Memory.store_byte m 7 b3;
      let word = Sim.Memory.load_int m 4 in
      let expected =
        Sim.Value.sx32 (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))
      in
      word = expected
      && Sim.Memory.load_byte m 4 = b0
      && Sim.Memory.load_byte m 5 = b1
      && Sim.Memory.load_byte m 6 = b2
      && Sim.Memory.load_byte m 7 = b3)

let word_store_overwrites_bytes_prop =
  QCheck.Test.make ~name:"word store overwrites all byte lanes" ~count:200
    QCheck.(pair int (int_bound 3))
    (fun (v, lane) ->
      let v = Sim.Value.sx32 v in
      let m = Sim.Memory.create ~cells:4 () in
      Sim.Memory.store_byte m (4 + lane) 0xAA;
      Sim.Memory.store_int m 4 v;
      Sim.Memory.load_byte m (4 + lane)
      = ((v land 0xFFFFFFFF) lsr (8 * lane)) land 0xFF)

let lenient_never_raises_prop =
  QCheck.Test.make ~name:"lenient memory never raises" ~count:300
    QCheck.(pair int (int_bound 3))
    (fun (addr, kind) ->
      let m = Sim.Memory.create ~lenient:true ~cells:8 () in
      (try
         (match kind with
          | 0 -> ignore (Sim.Memory.load_int m addr)
          | 1 -> Sim.Memory.store_int m addr 7
          | 2 -> ignore (Sim.Memory.load_byte m addr)
          | _ -> Sim.Memory.store_byte m addr 7);
         true
       with _ -> false))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "sim"
    [
      ( "value",
        [
          Alcotest.test_case "sx32" `Quick test_sx32;
          Alcotest.test_case "flip int" `Quick test_flip_int;
          Alcotest.test_case "flip float" `Quick test_flip_float;
          QCheck_alcotest.to_alcotest flip_involution;
          QCheck_alcotest.to_alcotest flip_changes;
          QCheck_alcotest.to_alcotest flip_float_involution;
        ] );
      ( "memory",
        [
          Alcotest.test_case "strict traps" `Quick test_memory_strict_traps;
          Alcotest.test_case "lenient (sim-safe)" `Quick test_memory_lenient;
          Alcotest.test_case "byte lanes" `Quick test_memory_bytes;
          Alcotest.test_case "of_prog init" `Quick test_memory_of_prog_init;
          Alcotest.test_case "read_global_ints non-finite" `Quick
            test_read_global_ints_nonfinite;
        ] );
      ( "interp",
        [
          Alcotest.test_case "alu" `Quick test_alu;
          Alcotest.test_case "compare" `Quick test_cmp;
          Alcotest.test_case "floats" `Quick test_float_ops;
          Alcotest.test_case "f2i nan trap" `Quick test_f2i_traps_on_nan;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero_traps;
          Alcotest.test_case "branches and loops" `Quick test_branches_and_loop;
          Alcotest.test_case "calls and recursion" `Quick
            test_call_and_recursion;
          Alcotest.test_case "stack overflow" `Quick test_stack_overflow;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "labels not counted" `Quick
            test_dyn_count_excludes_labels;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "injection",
        [
          Alcotest.test_case "exact flip" `Quick test_injection_exact;
          Alcotest.test_case "counts only tagged" `Quick
            test_injection_counts_only_tagged;
          Alcotest.test_case "multi-fault plan matches lookup" `Quick
            test_multi_fault_plan_matches_lookup;
          Alcotest.test_case "exec counts" `Quick test_exec_counts;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest alu_matches_native_prop;
          QCheck_alcotest.to_alcotest byte_word_consistency_prop;
          QCheck_alcotest.to_alcotest word_store_overwrites_bytes_prop;
          QCheck_alcotest.to_alcotest lenient_never_raises_prop;
        ] );
    ]
