(** Campaign telemetry: spans, counters, log-bucketed histograms, a
    fault-site attribution tally, and exporters (Chrome trace-event
    JSON and a JSONL metrics stream).

    The layer is {e ambient}: recording goes through the currently
    {!install}ed {!sink}. The default sink is {!disabled}, and every
    recording entry point is a cheap no-op then — one atomic load and a
    compare, no allocation — so instrumentation can stay in place on
    hot paths. An enabled sink gives each domain a private buffer
    (registered on first write, then written lock-free), and {!view}
    merges the buffers with commutative, associative operations, so the
    merged counters, histograms and site tallies are identical for any
    domain fan-out and any merge order. Only span timestamps are
    inherently non-deterministic; they appear in obs output only, never
    in trial records.

    Determinism contract (see DESIGN.md §13): for a fixed campaign
    configuration, every counter total, histogram {e count} and site
    tally is byte-identical across [--jobs] values; histogram bucket
    contents and span timings are wall-clock and therefore volatile. *)

(** Mergeable log-bucketed histogram (shared with [Core.Stats]).

    Buckets are geometric with 8 sub-buckets per octave (ratio
    [2^(1/8)], ~9% relative width): bucket [i] holds values whose
    [log2] rounds to [i/8]. Non-positive and NaN samples land in a
    single underflow bucket whose representative value is [0.]. Merging
    adds bucket counts, so [merge] is exact, associative and
    commutative. *)
module Hist : sig
  type t

  val empty : t
  val add : t -> float -> t
  val merge : t -> t -> t
  val count : t -> int

  val quantile : t -> float -> float option
  (** [quantile h q] is the representative value of the bucket
      containing the [ceil (q * count)]-th smallest sample ([q] clamped
      to [0,1]); [None] on the empty histogram — never [nan]. *)

  val buckets : t -> (int * int) list
  (** [(bucket index, count)] pairs in ascending bucket order. *)

  val bucket_value : int -> float
  (** Representative value of a bucket: [2^(i/8)], or [0.] for the
      underflow bucket. Always finite. *)

  val diff : t -> t -> t
  (** [diff newer older] subtracts bucket-wise, clamping each bucket at
      zero and dropping emptied buckets. On two snapshots of one
      growing histogram the delta is exact, and — because it works
      bucket-by-bucket, like {!merge} — diff distributes over merge:
      interval deltas are jobs-invariant. *)

  val sum_approx : t -> float
  (** Approximate sum of the samples, reconstructed from bucket
      representatives (within one bucket-width, ~9%, of the true sum
      per sample). The histogram stores no exact sum; this feeds the
      OpenMetrics [_sum] sample. *)
end

(** {1 Sinks} *)

type sink

val disabled : sink
(** The inert sink: recording through it does nothing and allocates
    nothing. Installed by default. *)

val make : ?record_spans:bool -> unit -> sink
(** A fresh collecting sink. [record_spans] (default [true]) controls
    whether {!span_end} appends span events: counters, histograms and
    site tallies are bounded-size aggregates, but spans grow per
    event, so an always-on sink (the serve daemon's) passes [false]
    to keep its footprint bounded over an unbounded lifetime. *)

val install : sink -> unit
(** Make [sink] the ambient sink for all subsequent recording, on
    every domain. *)

val installed : unit -> sink

val enabled : unit -> bool
(** Whether the ambient sink collects ([installed () != disabled]). *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install [sink], run the thunk, restore the previous sink (also on
    exception). *)

(** {1 Recording}

    All of these are no-ops when the ambient sink is {!disabled}. *)

val count : string -> int -> unit
(** [count name v] adds [v] to the counter [name]. *)

val observe : string -> float -> unit
(** [observe name x] adds one sample to the histogram [name]. *)

(** Outcome class of a fault landing, for the attribution tally. *)
type cls =
  | Crash
  | Infinite
  | Completed

val site : func:string -> pc:int -> cls -> unit
(** Tally one injected fault that landed at body index [pc] of
    function [func], in a trial classified as [cls]. *)

val now_us : unit -> float
(** The clock spans are stamped with, in microseconds: CLOCK_MONOTONIC
    (via bechamel's stubs), rebased once at startup onto the wall
    clock. Differences of [now_us] values are immune to wall-clock
    steps — daemon uptime and span durations survive NTP adjustments —
    while the epoch-µs magnitudes (and hence exported traces, which
    rebase to the earliest span) match the previous [gettimeofday]
    source byte-for-byte in shape. *)

val span_begin : unit -> float
(** Start timestamp for a span: {!now_us} when enabled, [0.] when
    disabled (a static constant — no allocation). *)

val elapsed_us : float -> float
(** Microseconds since a {!span_begin} timestamp. *)

val span_end :
  name:string -> ?cat:string -> ?args:(string * string) list -> float -> unit
(** [span_end ~name t0] records a complete span begun at [t0]. Spans
    whose [t0] is [0.] (begun while disabled) are dropped, so a sink
    installed mid-span never records a garbage duration. [cat] defaults
    to ["etap"]. *)

val span : name:string -> ?cat:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span (recorded even if it raises). *)

(** {1 Merged views and exporters} *)

type span_ev = {
  sp_name : string;
  sp_cat : string;
  sp_ts_us : float;
  sp_dur_us : float;
  sp_tid : int;  (** domain id of the recording domain *)
  sp_args : (string * string) list;
}

type view = {
  counters : (string * int) list;  (** sorted by name *)
  hists : (string * Hist.t) list;  (** sorted by name *)
  sites : ((string * int) * int array) list;
      (** [(func, pc)] -> counts indexed by {!cls} (3 cells), sorted by
          [(func, pc)] *)
  spans : span_ev list;  (** sorted by [(ts, tid, name)] *)
}

val view : sink -> view
(** Merge the sink's per-domain buffers. Non-destructive: the sink
    keeps collecting, and a later [view] includes everything again.
    Call after the domains writing to the sink have been joined. *)

val snapshot : sink -> view
(** A point-in-time view of a {e live} sink (the same merge as {!view},
    which already copies every counter, histogram and site array — a
    view is an immutable value). Unlike {!view}'s contract, writers
    need not have quiesced: concurrent reads are memory-safe under
    OCaml 5 and may lag in-flight increments, but once the intervening
    work has a happens-before edge to the caller (e.g. the serve
    daemon snapshots under its state lock after worker batches have
    landed), successive snapshots bracket it exactly. *)

val merge : view -> view -> view
(** Merge two views with the same commutative, associative operations
    {!view} applies across per-domain buffers: counters and site
    tallies add, histograms {!Hist.merge}, spans interleave in
    timestamp order. *)

val diff : view -> view -> view
(** [diff newer older] — the interval between two snapshots of one
    sink. Counters and site tallies subtract (zero entries dropped),
    histograms {!Hist.diff} bucket-wise, spans take the multiset
    difference. Diff distributes over {!merge}, so interval deltas
    inherit the determinism contract of the totals: exact and
    jobs-invariant. Keys present only in [older] are dropped. *)

val cls_index : cls -> int
(** Index of a class in a {!view} site tally: 0 crash, 1 infinite,
    2 completed. *)

val trace_schema_version : string
(** ["etap-trace/1"]. *)

val metrics_schema_version : string
(** ["etap-metrics/1"]. *)

val trace_json : view -> Report.Json.t
(** Chrome trace-event document (loadable by chrome://tracing and
    Perfetto): one ["ph": "X"] complete event per span plus thread-name
    metadata, under a top-level [schema] marker. *)

val write_trace : path:string -> view -> unit

val metrics_lines :
  ?redact_volatile:bool ->
  command:string ->
  meta:(string * Report.Json.t) list ->
  view ->
  string list
(** The JSONL metrics stream, one compact JSON document per line: a
    header line declaring [schema]/[command]/[meta] plus capture host
    and wall-clock time, then one line per counter, histogram and
    fault site. [redact_volatile] (default false, used by the golden
    generator) nulls the wall-clock-dependent fields — capture time,
    hostname, histogram quantiles and buckets — leaving a byte-stable
    document; deterministic fields (every counter, histogram counts,
    site tallies) are kept. *)

val write_metrics :
  path:string ->
  command:string ->
  meta:(string * Report.Json.t) list ->
  view ->
  unit

val openmetrics_lines : view -> string list
(** The view in OpenMetrics (Prometheus text exposition) format, one
    line per list element: each counter as a counter family
    ([etap_<name>_total], ['.'] separators mapped to ['_']), each
    histogram as a histogram family — cumulative [_bucket{le="..."}]
    samples over the occupied log-bucket representatives plus
    [le="+Inf"], then [_sum] ({!Hist.sum_approx}; the exact sum is not
    stored) and [_count] — and the fault-site tally as
    [etap_fault_site_total{func,pc,class}]. The last line is the
    mandatory [# EOF] terminator. *)

val write_openmetrics : path:string -> view -> unit
