(* etap-serve/1 — the line protocol of the campaign daemon.

   One request per line, one response per line, both compact JSON.
   Requests carry a client-chosen [id] (any JSON value) that the
   response echoes verbatim, so clients may pipeline. Two work-bearing
   shapes mirror the CLI subcommands:

     {"id": 1, "cmd": "inject", "app": "gsm",
      "errors": 3, "trials": 10, "seed": 1, "literal": false}
     {"id": 2, "cmd": "matrix", "spec": {"apps": ["adpcm"], "errors": [1]}}

   plus ["ping"] (liveness probe, answered with an ["info"] health
   object: uptime, requests served, schema versions), ["stats"] (live
   introspection, answered with an [etap-stats/1] document under a
   ["stats"] key — see DESIGN.md §18) and ["shutdown"] (stop the
   daemon after responding). Optional inject fields default exactly
   like the
   CLI flags; a matrix [spec] object is read by the same
   [Matrix.spec_of_json] that reads [--spec] files, against the same
   default spec.

   Responses embed the same [etap-report/1] document the CLI writes:

     {"schema": "etap-serve/1", "id": 1, "status": "ok", "report": {...}}
     {"schema": "etap-serve/1", "id": 3, "status": "failed",
      "error": "...", "report": {...}?}

   [status] is the typed surface: "failed" carries a human-readable
   [error] and — when the failure is per-cell rather than structural —
   still the full report, so a matrix with one failed cell never
   yields a silent partial result. Malformed lines get a "failed"
   response with a null id; the connection stays up. *)

module J = Report.Json

let schema = "etap-serve/1"
let stats_schema = "etap-stats/1"
let access_schema = "etap-access/1"

(* ----------------------------- requests ---------------------------- *)

type inject_req = {
  app : string;
  errors : int;
  trials : int;
  seed : int;
  literal : bool;
}

type request =
  | Inject of inject_req
  | Matrix of Matrix.spec
  | Ping
  | Stats  (* live introspection: answered with an etap-stats/1 doc *)
  | Shutdown

(* Defaults mirror the CLI flags (etap inject -e 10 -t 20 --seed 1). *)
let inject_defaults = { app = ""; errors = 10; trials = 20; seed = 1; literal = false }

let field_int j name default =
  match J.member name j with
  | None -> Ok default
  | Some (J.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field %S: expected an int" name)

let field_bool j name default =
  match J.member name j with
  | None -> Ok default
  | Some (J.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S: expected a bool" name)

let inject_of_json (j : J.t) : (request, string) result =
  let ( let* ) = Result.bind in
  let* app =
    match J.member "app" j with
    | Some (J.Str s) -> Ok s
    | Some _ -> Error "field \"app\": expected a string"
    | None -> Error "inject request: missing \"app\""
  in
  let d = inject_defaults in
  let* errors = field_int j "errors" d.errors in
  let* trials = field_int j "trials" d.trials in
  let* seed = field_int j "seed" d.seed in
  let* literal = field_bool j "literal" d.literal in
  Ok (Inject { app; errors; trials; seed; literal })

(* [request_of_line] never raises: any malformed line becomes
   [Error msg] alongside whatever [id] could be salvaged (Null when
   the line was not even JSON), so the daemon can always answer with
   a typed failure addressed to the right request. *)
let request_of_line (line : string) : J.t * (request, string) result =
  match J.of_string line with
  | Error m -> (J.Null, Error ("request is not valid JSON: " ^ m))
  | Ok j ->
    let id = Option.value ~default:J.Null (J.member "id" j) in
    let req =
      match J.member "cmd" j with
      | Some (J.Str "inject") -> inject_of_json j
      | Some (J.Str "matrix") -> (
        match J.member "spec" j with
        | Some spec ->
          Result.map
            (fun s -> Matrix s)
            (Matrix.spec_of_json ~base:Matrix.default_spec spec)
        | None -> Error "matrix request: missing \"spec\"")
      | Some (J.Str "ping") -> Ok Ping
      | Some (J.Str "stats") -> Ok Stats
      | Some (J.Str "shutdown") -> Ok Shutdown
      | Some (J.Str c) -> Error (Printf.sprintf "unknown cmd %S" c)
      | Some _ -> Error "field \"cmd\": expected a string"
      | None -> Error "request: missing \"cmd\""
    in
    (id, req)

(* Canonical identity of the computation a request names — everything
   that determines its report, nothing else (not the id, not the
   client). Two in-flight requests with equal group keys are the same
   work; the daemon runs one and fans the result out. *)
let group_key (r : request) : string =
  match r with
  | Ping -> "ping"
  | Stats -> "stats"
  | Shutdown -> "shutdown"
  | Inject i ->
    Printf.sprintf "inject app=%s errors=%d trials=%d seed=%d literal=%b"
      i.app i.errors i.trials i.seed i.literal
  | Matrix s ->
    Printf.sprintf "matrix apps=%s mode=%s policies=%s errors=%s trials=%d seed=%d"
      (String.concat "," s.Matrix.apps)
      (Experiment.mode_name s.Matrix.mode)
      (String.concat ","
         (List.map Core.Policy.to_string s.Matrix.policies))
      (String.concat "," (List.map string_of_int s.Matrix.errors))
      s.Matrix.trials s.Matrix.seed

(* ----------------------------- responses --------------------------- *)

type response = {
  rid : J.t;  (* echoed request id *)
  report : Report.t option;
  error : string option;  (* None = status ok *)
  extra : (string * J.t) list;
      (* verb-specific payloads appended to the response object: a
         [stats] response carries ("stats", <etap-stats/1 doc>), a
         [ping] response ("info", <health doc>). Empty for work-bearing
         verbs, whose payload is the report. *)
}

let response_json (r : response) : J.t =
  J.Obj
    ([
       ("schema", J.Str schema);
       ("id", r.rid);
       ("status", J.Str (if r.error = None then "ok" else "failed"));
     ]
    @ (match r.error with None -> [] | Some e -> [ ("error", J.Str e) ])
    @ (match r.report with
      | None -> []
      | Some rep -> [ ("report", Report.to_json rep) ])
    @ r.extra)

let response_line (r : response) : string =
  J.to_compact_string (response_json r)

(* Client-side reader ([etap serve --connect], tests, bench). *)
type reply = {
  id : J.t;
  ok : bool;
  error : string option;
  report : J.t option;  (* the embedded etap-report/1 document *)
  body : J.t;  (* the whole response object, for verb-specific
                  payloads ("stats", "info") *)
}

let reply_of_line (line : string) : (reply, string) result =
  let ( let* ) = Result.bind in
  let* j = J.of_string line in
  let* () =
    if J.member "schema" j = Some (J.Str schema) then Ok ()
    else Error (Printf.sprintf "response without %s schema marker" schema)
  in
  let* ok =
    match J.member "status" j with
    | Some (J.Str "ok") -> Ok true
    | Some (J.Str "failed") -> Ok false
    | _ -> Error "response without a typed status"
  in
  let error =
    match J.member "error" j with Some (J.Str e) -> Some e | _ -> None
  in
  Ok
    {
      id = Option.value ~default:J.Null (J.member "id" j);
      ok;
      error;
      report = J.member "report" j;
      body = j;
    }
