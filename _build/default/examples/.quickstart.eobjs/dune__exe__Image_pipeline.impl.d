examples/image_pipeline.ml: Apps Array Core Fidelity List Printf Sim
