(* Tests for the Mlang language: typechecking, lowering semantics
   (checked by executing compiled programs on the simulator against
   OCaml-evaluated references), optimization soundness, and byte-array
   semantics. *)

open Mlang.Dsl

let compile ?optimize p = Mlang.Compile.to_ir ?optimize p

let run_prog ?optimize p =
  let prog = compile ?optimize p in
  let r = Sim.Interp.run_exn (Sim.Code.of_prog prog) in
  (prog, r)

let ret_int ?optimize p =
  match (snd (run_prog ?optimize p)).Sim.Interp.outcome with
  | Sim.Interp.Done (Some (Sim.Value.I v)) -> v
  | _ -> Alcotest.fail "expected int return"

let main_returning body =
  program [] [ fn "main" [] ~ret:(Some Mlang.Ast.TInt) body ]

(* ------------------------------------------------------------------ *)
(* Typechecking.                                                       *)

let expect_type_error name p =
  match Mlang.Typecheck.check_program p with
  | () -> Alcotest.failf "%s: expected a type error" name
  | exception Mlang.Ast.Type_error _ -> ()

let test_typecheck_rejects () =
  expect_type_error "unbound variable"
    (main_returning [ ret (v "nope") ]);
  expect_type_error "mixed arithmetic"
    (main_returning [ ret (i 1 +! f 2.0) ]);
  expect_type_error "float rem"
    (program [] [ fn "main" [] ~ret:(Some Mlang.Ast.TFlt) [ ret (f 1.0 %! f 2.0) ] ]);
  expect_type_error "assign before decl"
    (main_returning [ set "x" (i 1); ret (i 0) ]);
  expect_type_error "assign wrong type"
    (main_returning [ let_ "x" (i 1); set "x" (f 2.0); ret (i 0) ]);
  expect_type_error "unknown array"
    (main_returning [ ret ("nope".%(i 0)) ]);
  expect_type_error "float index"
    (program [ garray "a" 4 ] [ fn "main" [] ~ret:(Some Mlang.Ast.TInt) [ ret ("a".%(f 1.0)) ] ]);
  expect_type_error "unknown call"
    (main_returning [ ret (call "nope" []) ]);
  expect_type_error "arity"
    (program []
       [
         fn "g" [ p_int "x" ] ~ret:(Some Mlang.Ast.TInt) [ ret (v "x") ];
         fn "main" [] ~ret:(Some Mlang.Ast.TInt) [ ret (call "g" []) ];
       ]);
  expect_type_error "void used as value"
    (program []
       [
         proc "g" [] [ ret_void ];
         fn "main" [] ~ret:(Some Mlang.Ast.TInt) [ ret (call "g" []) ];
       ]);
  expect_type_error "break outside loop"
    (main_returning [ break_; ret (i 0) ]);
  expect_type_error "missing return"
    (main_returning [ let_ "x" (i 1) ]);
  expect_type_error "byte init out of range"
    (program
       [ garray_init_b "b" [| 300l |] ]
       [ fn "main" [] ~ret:(Some Mlang.Ast.TInt) [ ret (i 0) ] ])

let test_typecheck_accepts_shadowing () =
  (* a branch-local declaration may shadow and must not escape *)
  let p =
    main_returning
      [
        let_ "x" (i 1);
        when_ (v "x" >! i 0) [ let_ "x" (i 99); set "x" (v "x" +! i 1) ];
        ret (v "x");
      ]
  in
  Alcotest.(check int) "outer x unchanged" 1 (ret_int p)

let test_return_paths () =
  (* both branches return: accepted *)
  let p =
    main_returning
      [ if_ (i 1) [ ret (i 5) ] [ ret (i 6) ] ]
  in
  Alcotest.(check int) "if returning" 5 (ret_int p)

(* ------------------------------------------------------------------ *)
(* Expression semantics vs an OCaml evaluator (property test).         *)

let sx32 v = ((v land 0xFFFFFFFF) lxor 0x80000000) - 0x80000000

(* random integer expression over two variables *)
let rec gen_expr rng depth =
  if depth = 0 then
    match Random.State.int rng 3 with
    | 0 -> Mlang.Ast.Int (Random.State.int rng 2001 - 1000)
    | 1 -> Mlang.Ast.Var "x"
    | _ -> Mlang.Ast.Var "y"
  else
    let a = gen_expr rng (depth - 1) and b = gen_expr rng (depth - 1) in
    match Random.State.int rng 10 with
    | 0 -> Mlang.Ast.Bin (Mlang.Ast.Add, a, b)
    | 1 -> Mlang.Ast.Bin (Mlang.Ast.Sub, a, b)
    | 2 -> Mlang.Ast.Bin (Mlang.Ast.Mul, a, b)
    | 3 -> Mlang.Ast.Bin (Mlang.Ast.BAnd, a, b)
    | 4 -> Mlang.Ast.Bin (Mlang.Ast.BOr, a, b)
    | 5 -> Mlang.Ast.Bin (Mlang.Ast.BXor, a, b)
    | 6 -> Mlang.Ast.Bin (Mlang.Ast.Shl, a, Mlang.Ast.Int (Random.State.int rng 32))
    | 7 -> Mlang.Ast.Bin (Mlang.Ast.Ashr, a, Mlang.Ast.Int (Random.State.int rng 32))
    | 8 -> Mlang.Ast.Cmp (Mlang.Ast.Lt, a, b)
    | _ -> Mlang.Ast.Neg a

let rec eval_expr env (e : Mlang.Ast.expr) =
  match e with
  | Mlang.Ast.Int n -> sx32 n
  | Mlang.Ast.Var x -> List.assoc x env
  | Mlang.Ast.Bin (op, a, b) ->
    let a = eval_expr env a and b = eval_expr env b in
    sx32
      (match op with
       | Mlang.Ast.Add -> a + b
       | Mlang.Ast.Sub -> a - b
       | Mlang.Ast.Mul -> a * b
       | Mlang.Ast.Div -> a / b
       | Mlang.Ast.Rem -> a mod b
       | Mlang.Ast.BAnd -> a land b
       | Mlang.Ast.BOr -> a lor b
       | Mlang.Ast.BXor -> a lxor b
       | Mlang.Ast.Shl -> a lsl (b land 31)
       | Mlang.Ast.Shr -> (a land 0xFFFFFFFF) lsr (b land 31)
       | Mlang.Ast.Ashr -> a asr (b land 31))
  | Mlang.Ast.Cmp (op, a, b) ->
    let a = eval_expr env a and b = eval_expr env b in
    let holds =
      match op with
      | Mlang.Ast.Eq -> a = b
      | Mlang.Ast.Ne -> a <> b
      | Mlang.Ast.Lt -> a < b
      | Mlang.Ast.Le -> a <= b
      | Mlang.Ast.Gt -> a > b
      | Mlang.Ast.Ge -> a >= b
    in
    if holds then 1 else 0
  | Mlang.Ast.Neg a -> sx32 (-eval_expr env a)
  | Mlang.Ast.Not a -> if eval_expr env a = 0 then 1 else 0
  | _ -> Alcotest.fail "unsupported in evaluator"

let expr_semantics_prop =
  QCheck.Test.make ~name:"compiled expressions match OCaml evaluation"
    ~count:150
    QCheck.(triple (int_bound 100_000) small_signed_int small_signed_int)
    (fun (seed, x, y) ->
      let rng = Random.State.make [| seed |] in
      let e = gen_expr rng 4 in
      let x = sx32 x and y = sx32 y in
      let expected = eval_expr [ ("x", x); ("y", y) ] e in
      let p =
        main_returning [ let_ "x" (i x); let_ "y" (i y); ret e ]
      in
      ret_int p = expected && ret_int ~optimize:false p = expected)

(* ------------------------------------------------------------------ *)
(* Statement semantics.                                                *)

let test_while_break_continue () =
  (* sum odd numbers below 10, stopping at 7: 1+3+5+7 = 16 *)
  let p =
    main_returning
      [
        let_ "acc" (i 0);
        let_ "k" (i 0);
        while_ (i 1)
          [
            set "k" (v "k" +! i 1);
            when_ (v "k" >! i 7) [ break_ ];
            when_ ((v "k" %! i 2) ==! i 0) [ continue_ ];
            set "acc" (v "acc" +! v "k");
          ];
        ret (v "acc");
      ]
  in
  Alcotest.(check int) "break/continue" 16 (ret_int p)

let test_for_bound_evaluated_once () =
  (* mutating the bound variable inside the body must not move the
     bound (it is pinned at loop entry) *)
  let p =
    main_returning
      [
        let_ "n" (i 5);
        let_ "count" (i 0);
        for_ "k" (i 0) (v "n")
          [ set "n" (i 100); set "count" (v "count" +! i 1) ];
        ret (v "count");
      ]
  in
  Alcotest.(check int) "bound pinned" 5 (ret_int p)

let test_nested_loops () =
  let p =
    main_returning
      [
        let_ "acc" (i 0);
        for_ "a" (i 0) (i 4)
          [ for_ "b" (i 0) (i 4) [ set "acc" (v "acc" +! (v "a" *! v "b")) ] ];
        ret (v "acc");
      ]
  in
  Alcotest.(check int) "nested" 36 (ret_int p)

let test_float_pipeline () =
  let p =
    program
      [ garray_f "out" 1 ]
      [
        fn "main" [] ~ret:(Some Mlang.Ast.TInt)
          [
            let_ "x" (f 1.5);
            let_ "y" (v "x" *!. f 4.0 +!. f 0.25);
            sto "out" (i 0) (v "y");
            ret (f2i (v "y"));
          ];
      ]
  in
  let prog, r = run_prog p in
  (match r.Sim.Interp.outcome with
   | Sim.Interp.Done (Some (Sim.Value.I 6)) -> ()
   | _ -> Alcotest.fail "f2i of 6.25");
  let out = Sim.Memory.read_global_flts r.Sim.Interp.memory prog "out" in
  Alcotest.(check (float 0.0)) "stored float" 6.25 out.(0)

let test_byte_array_semantics () =
  let p =
    program
      [ garray_b "b" 8 ]
      [
        fn "main" [] ~ret:(Some Mlang.Ast.TInt)
          [
            sto "b" (i 0) (i 511);   (* truncates to 255 *)
            sto "b" (i 1) (i (-1));  (* low 8 bits: 255 *)
            sto "b" (i 2) (i 7);
            ret (("b".%(i 0) +! "b".%(i 1)) *! i 1000 +! "b".%(i 2));
          ];
      ]
  in
  Alcotest.(check int) "byte truncation and zero-extension" 510007 (ret_int p)

let test_recursive_mlang () =
  let p =
    program []
      [
        fn "fact" [ p_int "n" ] ~ret:(Some Mlang.Ast.TInt)
          [
            when_ (v "n" <=! i 1) [ ret (i 1) ];
            ret (v "n" *! call "fact" [ v "n" -! i 1 ]);
          ];
        fn "main" [] ~ret:(Some Mlang.Ast.TInt) [ ret (call "fact" [ i 10 ]) ];
      ]
  in
  Alcotest.(check int) "10!" 3628800 (ret_int p)

(* ------------------------------------------------------------------ *)
(* Optimizer soundness.                                                *)

let test_dce_preserves_output () =
  let p =
    program
      [ garray "out" 4 ]
      [
        fn "main" [] ~ret:(Some Mlang.Ast.TInt)
          [
            let_ "dead" (i 1 +! i 2);      (* never used *)
            let_ "live" (i 6 *! i 7);
            sto "out" (i 0) (v "live");
            ret (v "live");
          ];
      ]
  in
  let v1 = ret_int ~optimize:true p and v2 = ret_int ~optimize:false p in
  Alcotest.(check int) "same result" v2 v1;
  Alcotest.(check int) "42" 42 v1

let test_dce_shrinks () =
  let p =
    main_returning
      [
        let_ "a" (i 1);
        let_ "b" (v "a" +! i 1);
        let_ "c" (v "b" +! i 1);  (* c unused *)
        ret (v "b");
      ]
  in
  let opt = compile ~optimize:true p and raw = compile ~optimize:false p in
  Alcotest.(check bool) "optimized smaller" true
    (Ir.Prog.static_instruction_count opt < Ir.Prog.static_instruction_count raw)

let test_dce_keeps_traps () =
  (* a division that may trap must survive even if its result is dead *)
  let p =
    program
      [ garray "g" 1 ]
      [
        fn "main" [] ~ret:(Some Mlang.Ast.TInt)
          [
            let_ "zero" ("g".%(i 0));              (* 0 at runtime *)
            let_ "dead" (i 1 /! v "zero");         (* traps! *)
            ret (i 7);
          ];
      ]
  in
  let prog = compile ~optimize:true p in
  match (Sim.Interp.run (Sim.Code.of_prog prog)).Sim.Interp.outcome with
  | Sim.Interp.Trapped Sim.Trap.Division_by_zero -> ()
  | _ -> Alcotest.fail "trapping division must not be removed"

let test_constant_folding () =
  let prog = compile (main_returning [ ret ((i 6 *! i 7) +! (i 100 /! i 4)) ]) in
  (* fully folded: body is just li + ret *)
  let main = Ir.Prog.get_func prog "main" in
  Alcotest.(check int) "folded to li/ret" 2 (Ir.Func.length main)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mlang"
    [
      ( "typecheck",
        [
          Alcotest.test_case "rejects ill-typed" `Quick test_typecheck_rejects;
          Alcotest.test_case "shadowing scoped" `Quick
            test_typecheck_accepts_shadowing;
          Alcotest.test_case "return paths" `Quick test_return_paths;
        ] );
      ( "semantics",
        [
          QCheck_alcotest.to_alcotest expr_semantics_prop;
          Alcotest.test_case "while/break/continue" `Quick
            test_while_break_continue;
          Alcotest.test_case "for bound pinned" `Quick
            test_for_bound_evaluated_once;
          Alcotest.test_case "nested loops" `Quick test_nested_loops;
          Alcotest.test_case "float pipeline" `Quick test_float_pipeline;
          Alcotest.test_case "byte arrays" `Quick test_byte_array_semantics;
          Alcotest.test_case "recursion" `Quick test_recursive_mlang;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "dce preserves output" `Quick
            test_dce_preserves_output;
          Alcotest.test_case "dce shrinks" `Quick test_dce_shrinks;
          Alcotest.test_case "dce keeps traps" `Quick test_dce_keeps_traps;
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
        ] );
    ]
