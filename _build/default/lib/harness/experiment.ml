(* Shared experiment context: each application built once per seed,
   with campaign targets under both tagging modes and prepared
   injection configurations per policy.

   Mode vocabulary (see DESIGN.md and EXPERIMENTS.md):
   - [Full]: control + address protection (the companion work's
     treatment; reproduces Table 2's near-zero protected failures);
   - [Literal]: the paper's Section-3 rules verbatim — loads terminate
     def-use chains and addresses are not pulled into CVar (reproduces
     Table 3's large low-reliability fractions). *)

type mode =
  | Full
  | Literal

let mode_name = function Full -> "full" | Literal -> "literal"

type loaded = {
  app : Apps.App.t;
  built : Apps.App.built;
  golden : Sim.Interp.result;
  target : mode -> Core.Campaign.target;
  prepared : mode -> Core.Policy.t -> Core.Campaign.prepared;
}

let memo f =
  let tbl = Hashtbl.create 4 in
  fun k ->
    match Hashtbl.find_opt tbl k with
    | Some v -> v
    | None ->
      let v = f k in
      Hashtbl.replace tbl k v;
      v

let load ?(seed = 1) (app : Apps.App.t) : loaded =
  let built = app.Apps.App.build ~seed in
  let target =
    memo (fun mode ->
        Core.Campaign.of_prog
          ~protect_addresses:(mode = Full)
          built.Apps.App.prog)
  in
  let prepared =
    memo (fun (mode, policy) -> Core.Campaign.prepare (target mode) policy)
  in
  let golden = (target Full).Core.Campaign.baseline in
  { app; built; golden; target; prepared = (fun m p -> prepared (m, p)) }

let load_all ?seed () = List.map (load ?seed) Apps.Registry.all

(* Catastrophic-failure percentage for one cell of Table 2. *)
let pct_catastrophic (l : loaded) ~mode ~policy ~errors ~trials ~seed =
  let p = l.prepared mode policy in
  Core.Campaign.pct_catastrophic (Core.Campaign.run p ~errors ~trials ~seed)

(* Fidelity summary of a sweep point: mean fidelity over completed
   trials plus the catastrophic percentage. *)
type sweep_point = {
  errors : int;
  n : int;
  pct_failed : float;
  mean_fidelity : float;  (* nan when no trial completed *)
  fidelities : float list;
}

let sweep_point (l : loaded) ~mode ~policy ~errors ~trials ~seed : sweep_point
    =
  let p = l.prepared mode policy in
  let s = Core.Campaign.run p ~errors ~trials ~seed in
  let score r = l.built.Apps.App.score ~golden:l.golden r in
  let fidelities = Core.Campaign.fidelities s ~score in
  {
    errors;
    n = s.Core.Campaign.n;
    pct_failed = Core.Campaign.pct_catastrophic s;
    mean_fidelity = Core.Campaign.mean fidelities;
    fidelities;
  }

let sweep (l : loaded) ~mode ~policy ~errors_list ~trials ~seed =
  List.map
    (fun errors -> sweep_point l ~mode ~policy ~errors ~trials ~seed)
    errors_list
