lib/apps/mcf.ml: App Array Fidelity Float Mlang Queue Sim Workloads
