(* Section 5.3 of the paper ("Future Potential"): "we could employ
   well-known reliability implementations to protect control data
   while running the rest of the instructions ... on cheaper or faster
   hardware. In order for this to be beneficial, a sufficient
   percentage of the execution must be on low-reliability
   instructions."

   This module quantifies that claim with a simple linear cost model:
   a protected instruction costs [k]x a plain one (k = 2 models dual
   modular redundancy / re-execution, k = 3 TMR). If a fraction [p] of
   dynamic instructions may run unprotected, selective protection
   costs k(1-p) + p per instruction against k for uniform protection —
   a speedup of k / (k(1-p) + p), bounded by k as p -> 1. *)

type row = {
  app_name : string;
  pct_low : float;           (* p, in percent *)
  speedup_dmr : float;       (* selective vs uniform, k = 2 *)
  speedup_tmr : float;       (* k = 3 *)
  cost_vs_unprotected : float;  (* selective cost per instruction, k = 3 *)
}

let speedup ~k ~p = k /. ((k *. (1.0 -. p)) +. p)

let selective_cost ~k ~p = (k *. (1.0 -. p)) +. p

(* Analysis-only (no campaigns): [jobs] fans the per-app target
   computations out across domains, as in {!Table3.run}. *)
let run ?jobs ~(mode : Experiment.mode) (loaded : Experiment.loaded list) :
    row list =
  Core.Pool.map_list ?jobs
    (fun (l : Experiment.loaded) ->
      let t = l.Experiment.target mode in
      let p =
        Core.Tagging.dynamic_low_fraction t.Core.Campaign.tagging
          t.Core.Campaign.baseline.Sim.Interp.exec_counts
      in
      {
        app_name = l.Experiment.app.Apps.App.name;
        pct_low = 100.0 *. p;
        speedup_dmr = speedup ~k:2.0 ~p;
        speedup_tmr = speedup ~k:3.0 ~p;
        cost_vs_unprotected = selective_cost ~k:3.0 ~p;
      })
    loaded

let factor x = Report.num ~text:(Printf.sprintf "%.2fx" x) x

let to_table ~(mode : Experiment.mode) rows : Report.table =
  Report.table ~id:"cost_model"
    ~title:
      (Printf.sprintf
         "Protection cost model (paper Sec. 5.3): selective vs uniform \
          redundancy, %s tagging"
         (Experiment.mode_name mode))
    ~columns:
      [
        Report.column ~key:"app" "app";
        Report.column ~key:"pct_low" "% low-rel";
        Report.column ~key:"speedup_dmr" "speedup vs DMR";
        Report.column ~key:"speedup_tmr" "speedup vs TMR";
        Report.column ~key:"selective_cost_tmr" "selective cost (TMR=3.0)";
      ]
    (List.map
       (fun r ->
         [
           Report.text r.app_name;
           Report.pct r.pct_low;
           factor r.speedup_dmr;
           factor r.speedup_tmr;
           factor r.cost_vs_unprotected;
         ])
       rows)

let render ~(mode : Experiment.mode) rows =
  Report.to_text (to_table ~mode rows)
