lib/fidelity/byte_match.ml: Array
