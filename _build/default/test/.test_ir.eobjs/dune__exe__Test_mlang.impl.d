test/test_mlang.ml: Alcotest Array Ir List Mlang QCheck QCheck_alcotest Random Sim
