(* Image pipeline: Susan edge detection under increasing error rates,
   with the edge maps rendered as ASCII art so the fidelity loss is
   visible, not just numeric.

   Run with:  dune exec examples/image_pipeline.exe *)

let say fmt = Printf.printf (fmt ^^ "\n%!")

let render_edges ~width (resp : int array) =
  let shades = [| ' '; '.'; ':'; '+'; '*'; '#' |] in
  Array.iteri
    (fun i r ->
      let level = min 5 (r * 6 / 256) in
      print_char shades.(level);
      if (i + 1) mod width = 0 then print_newline ())
    resp

let () =
  let built = Apps.Susan.build ~seed:3 in
  let prog = built.Apps.App.prog in
  let target = Core.Campaign.of_prog ~protect_addresses:false prog in
  let golden = target.Core.Campaign.baseline in
  let golden_resp =
    Sim.Memory.read_global_ints golden.Sim.Interp.memory prog "resp"
  in
  say "fault-free edge map (%d dynamic instructions):"
    golden.Sim.Interp.dyn_count;
  render_edges ~width:32 golden_resp;

  let prepared =
    Core.Campaign.prepare target Core.Policy.Protect_control
  in
  (* This example renders the corrupted memory image itself, so it uses
     the [run_trial_result] escape hatch rather than [run] (whose
     summaries deliberately never retain a [Memory.t]). [trial_rng]
     reproduces the RNG that [run] would give trial 0. *)
  List.iter
    (fun errors ->
      let rng =
        Core.Campaign.trial_rng ~seed:5 ~errors
          ~policy:Core.Policy.Protect_control 0
      in
      let r = Core.Campaign.run_trial_result prepared ~errors ~rng in
      match Core.Outcome.of_result r with
      | Core.Outcome.Completed ->
        let resp = Sim.Memory.read_global_ints r.Sim.Interp.memory prog "resp" in
        say "";
        say "with %d errors inserted (control protected): PSNR %.1f dB"
          errors
          (Fidelity.Psnr.psnr_db golden_resp resp);
        render_edges ~width:32 resp
      | _ -> say "with %d errors: catastrophic failure" errors)
    [ 200; 1000; 3000 ];
  say "";
  say "the paper's fidelity threshold for Susan is 10 dB PSNR \
       (ImageMagick comparison)."
