(** Single-bit-upset fault model (paper Section 4): a fixed number of
    bit flips placed uniformly at random, without replacement, over the
    dynamic executions of injectable instructions. *)

type plan = (int, int) Hashtbl.t
(** injectable-instruction ordinal -> bit position (0..63; folded onto
    0..31 for integer destinations by the interpreter) *)

val make_plan :
  rng:Random.State.t -> injectable_total:int -> errors:int -> plan
(** Draws [min errors injectable_total] distinct ordinals. *)

val injection : tags:bool array array -> plan:plan -> Sim.Interp.injection

val profiling_injection : tags:bool array array -> Sim.Interp.injection
(** Empty plan under real tags: counts injectable dynamic instructions
    without perturbing anything. *)
