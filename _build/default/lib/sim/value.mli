(** Runtime values and single-bit corruption.

    Integers are OCaml ints kept in canonical signed 32-bit form;
    floats are IEEE-754 doubles. *)

type t =
  | I of int  (** always within [-2^31, 2^31) *)
  | F of float

val sx32 : int -> int
(** Sign-extend the low 32 bits — the canonical form of every integer
    value in the machine. *)

val of_int32 : int32 -> int

val flip_int : bit:int -> int -> int
(** Flip one bit (0..31) of the 32-bit two's-complement image. *)

val flip_float : bit:int -> float -> float
(** Flip one bit (0..63) of the IEEE-754 double image. *)

val flip : bit:int -> t -> t
(** Dispatches on the value kind, folding [bit] into range. *)

val bits : t -> int
val equal : t -> t -> bool
(** Bitwise equality: NaNs with equal images are equal. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
