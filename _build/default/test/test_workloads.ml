(* Tests for the synthetic workload generators: determinism, range
   discipline, structural properties. *)

let test_rng_determinism () =
  let a = Workloads.Rng.make 7 and b = Workloads.Rng.make 7 in
  for _ = 1 to 50 do
    Alcotest.(check int) "same stream" (Workloads.Rng.int a 1000)
      (Workloads.Rng.int b 1000)
  done

let test_rng_seed_sensitivity () =
  let a = Workloads.Rng.make 7 and b = Workloads.Rng.make 8 in
  let xs = List.init 20 (fun _ -> Workloads.Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Workloads.Rng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" true (xs <> ys)

let test_scene_properties () =
  let img = Workloads.Image_gen.scene ~seed:1 ~width:32 ~height:32 in
  Alcotest.(check int) "size" (32 * 32)
    (Array.length img.Workloads.Image_gen.pixels);
  Alcotest.(check bool) "pixels in range" true
    (Array.for_all (fun p -> p >= 0 && p <= 255) img.Workloads.Image_gen.pixels);
  (* structural: both bright and dark content present *)
  Alcotest.(check bool) "has bright region" true
    (Array.exists (fun p -> p > 180) img.Workloads.Image_gen.pixels);
  Alcotest.(check bool) "has dark region" true
    (Array.exists (fun p -> p < 80) img.Workloads.Image_gen.pixels);
  let img2 = Workloads.Image_gen.scene ~seed:1 ~width:32 ~height:32 in
  Alcotest.(check bool) "deterministic" true
    (img.Workloads.Image_gen.pixels = img2.Workloads.Image_gen.pixels)

let test_video_temporal_correlation () =
  let frames = Workloads.Image_gen.video ~seed:2 ~width:16 ~height:16 ~frames:4 in
  Alcotest.(check int) "frame count" 4 (List.length frames);
  match frames with
  | f0 :: f1 :: _ ->
    (* consecutive frames are similar but not identical *)
    let diff =
      Array.map2 (fun a b -> abs (a - b)) f0.Workloads.Image_gen.pixels
        f1.Workloads.Image_gen.pixels
    in
    let changed = Array.fold_left (fun n d -> if d > 8 then n + 1 else n) 0 diff in
    Alcotest.(check bool) "some motion" true (changed > 0);
    Alcotest.(check bool) "mostly static" true
      (changed < Array.length diff / 2)
  | _ -> Alcotest.fail "expected frames"

let test_speech_properties () =
  let s = Workloads.Audio_gen.speech ~seed:3 ~samples:800 in
  Alcotest.(check int) "length" 800 (Array.length s);
  Alcotest.(check bool) "16-bit range" true
    (Array.for_all (fun x -> x >= -32768 && x <= 32767) s);
  Alcotest.(check bool) "nontrivial energy" true
    (Array.exists (fun x -> abs x > 1000) s);
  (* short-time correlation: adjacent samples are close relative to range *)
  let jumps = ref 0 in
  for k = 1 to 799 do
    if abs (s.(k) - s.(k - 1)) > 8000 then incr jumps
  done;
  Alcotest.(check bool) "smooth" true (!jumps < 40)

let test_tone () =
  let t = Workloads.Audio_gen.tone ~freq:1000.0 ~samples:80 ~amplitude:1000 in
  Alcotest.(check bool) "bounded by amplitude" true
    (Array.for_all (fun x -> abs x <= 1000) t)

let test_text_roundtrip () =
  let s = Workloads.Text_gen.generate ~seed:4 ~bytes:101 in
  Alcotest.(check int) "length" 101 (String.length s);
  Alcotest.(check bool) "printable ascii" true
    (String.for_all (fun c -> Char.code c >= 32 && Char.code c < 127) s);
  let words = Workloads.Text_gen.to_words s in
  let back = Workloads.Text_gen.of_words (Array.map Int32.to_int words) in
  (* padded to a word multiple with spaces *)
  Alcotest.(check string) "roundtrip" (s ^ "   ") back

let test_network_properties () =
  let net = Workloads.Network_gen.generate ~seed:5 ~layers:4 ~per_layer:4 ~supply:8 in
  Alcotest.(check bool) "arcs positive costs" true
    (Array.for_all (fun (_, _, cap, cost) -> cap > 0 && cost > 0)
       net.Workloads.Network_gen.arcs);
  Alcotest.(check bool) "nodes in range" true
    (Array.for_all
       (fun (u, v, _, _) ->
         u >= 0 && v >= 0
         && u < net.Workloads.Network_gen.n_nodes
         && v < net.Workloads.Network_gen.n_nodes)
       net.Workloads.Network_gen.arcs);
  Alcotest.(check bool) "source has outgoing capacity" true
    (Workloads.Network_gen.max_supply net > 0);
  let net2 = Workloads.Network_gen.generate ~seed:5 ~layers:4 ~per_layer:4 ~supply:8 in
  Alcotest.(check bool) "deterministic" true
    (net.Workloads.Network_gen.arcs = net2.Workloads.Network_gen.arcs)

let test_network_is_dag () =
  (* layered construction: every arc goes strictly forward except from
     the source / into the sink *)
  let net = Workloads.Network_gen.generate ~seed:6 ~layers:5 ~per_layer:5 ~supply:10 in
  let layer node =
    if node = net.Workloads.Network_gen.source then -1
    else if node = net.Workloads.Network_gen.sink then max_int
    else (node - 1) / 5
  in
  Alcotest.(check bool) "forward arcs only" true
    (Array.for_all
       (fun (u, v, _, _) -> layer u < layer v)
       net.Workloads.Network_gen.arcs)

let test_thermal_embeds_object () =
  let obj =
    {
      Workloads.Image_gen.width = 8;
      height = 8;
      pixels = Array.make 64 200;
    }
  in
  let img =
    Workloads.Image_gen.thermal ~seed:7 ~width:16 ~height:16 ~obj ~ox:4 ~oy:8
  in
  Alcotest.(check int) "object pixel" 200 (Workloads.Image_gen.get img 4 8);
  Alcotest.(check bool) "background dim" true
    (Workloads.Image_gen.get img 0 0 < 60)

let () =
  Alcotest.run "workloads"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
        ] );
      ( "images",
        [
          Alcotest.test_case "scene" `Quick test_scene_properties;
          Alcotest.test_case "video motion" `Quick test_video_temporal_correlation;
          Alcotest.test_case "thermal" `Quick test_thermal_embeds_object;
        ] );
      ( "audio",
        [
          Alcotest.test_case "speech" `Quick test_speech_properties;
          Alcotest.test_case "tone" `Quick test_tone;
        ] );
      ( "text", [ Alcotest.test_case "roundtrip" `Quick test_text_roundtrip ] );
      ( "networks",
        [
          Alcotest.test_case "properties" `Quick test_network_properties;
          Alcotest.test_case "dag" `Quick test_network_is_dag;
        ] );
    ]
