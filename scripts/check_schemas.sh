#!/usr/bin/env bash
# Validate the versioned schema markers of etap's machine-readable
# outputs. Every JSON document the toolchain writes carries a "schema"
# field; this script is the CI gate that keeps those markers (and the
# documents' basic shape) from drifting silently.
#
#   check_schemas.sh report FILE    # etap-report/1 (etap --json, bench --json)
#   check_schemas.sh trace FILE     # etap-trace/1  (--trace)
#   check_schemas.sh metrics FILE   # etap-metrics/1 (--metrics, JSONL)
#
# Uses python3's json module (present on CI runners); no jq dependency.
set -euo pipefail

usage="usage: check_schemas.sh report|trace|metrics FILE"
kind="${1:?$usage}"
file="${2:?$usage}"

python3 - "$kind" "$file" <<'EOF'
import json, sys

kind, path = sys.argv[1], sys.argv[2]

def fail(msg):
    print(f"schema check FAILED for {path}: {msg}", file=sys.stderr)
    sys.exit(1)

def expect(cond, msg):
    if not cond:
        fail(msg)

if kind == "metrics":
    # JSONL: first line is the header, every later line a typed record.
    with open(path) as f:
        lines = [json.loads(l) for l in f if l.strip()]
    expect(lines, "empty metrics stream")
    head = lines[0]
    expect(head.get("schema") == "etap-metrics/1",
           f"bad schema marker {head.get('schema')!r}")
    expect("command" in head and "meta" in head, "header missing command/meta")
    for rec in lines[1:]:
        t = rec.get("type")
        expect(t in ("counter", "histogram", "fault_site"),
               f"unknown record type {t!r}")
        if t == "counter":
            expect(isinstance(rec.get("value"), int), "non-integer counter")
        if t == "fault_site":
            expect(rec["total"] == rec["crash"] + rec["infinite"] + rec["completed"],
                   "fault_site total != class sum")
elif kind == "trace":
    doc = json.load(open(path))
    expect(doc.get("schema") == "etap-trace/1",
           f"bad schema marker {doc.get('schema')!r}")
    evs = doc.get("traceEvents")
    expect(isinstance(evs, list) and evs, "missing/empty traceEvents")
    for e in evs:
        expect(e.get("ph") in ("X", "M"), f"unexpected phase {e.get('ph')!r}")
        if e["ph"] == "X":
            expect(isinstance(e.get("ts"), (int, float)) and e["ts"] >= 0,
                   "complete event without non-negative ts")
            expect(isinstance(e.get("dur"), (int, float)) and e["dur"] >= 0,
                   "complete event without non-negative dur")
elif kind == "report":
    doc = json.load(open(path))
    expect(doc.get("schema") == "etap-report/1",
           f"bad schema marker {doc.get('schema')!r}")
    expect(isinstance(doc.get("tables"), list) and doc["tables"],
           "missing/empty tables")
    for t in doc["tables"]:
        keys = [c["key"] for c in t["columns"]]
        for row in t["rows"]:
            expect(list(row.keys()) == keys,
                   f"table {t['id']}: row keys diverge from columns")
else:
    fail(f"unknown kind {kind!r}")

print(f"{path}: {kind} schema OK")
EOF
