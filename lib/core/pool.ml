(* Deterministic fan-out of an indexed job set over OCaml 5 domains.

   Campaign trials are embarrassingly parallel *and* order-independent:
   trial [i] derives its RNG from the trial index, so the result of
   [f i] does not depend on which domain runs it or when. The pool
   exploits that with the simplest possible schedule — static striping,
   no work stealing, no shared queues: stripe [k] of [jobs] computes
   indices k, k+jobs, k+2*jobs, ... and writes each result into its own
   slot of a shared results array. Slots are disjoint, so there are no
   data races; [Domain.join] publishes every write back to the caller.

   Striping (rather than contiguous chunking) keeps the load balanced
   when cost drifts with the index, while remaining fully deterministic:
   the returned array is always in index order, bit-exact with a
   sequential run. *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* Clamp a requested job count into [1, n]: never more domains than
   jobs to run, never fewer than one stripe. *)
let resolve_jobs ?jobs n =
  let j = match jobs with Some j -> j | None -> default_jobs () in
  max 1 (min j n)

(* Per-stripe telemetry spans. Spans only, never counters: a stripe
   boundary is a scheduling artifact, and counter totals must stay
   identical across [--jobs] values (lib/obs determinism contract). *)
let stripe_span ~stripe ~jobs t0 =
  Obs.span_end ~name:"stripe" ~cat:"pool"
    ~args:[ ("stripe", string_of_int stripe); ("jobs", string_of_int jobs) ]
    t0

let map_n ?jobs n (f : int -> 'a) : 'a array =
  if n <= 0 then [||]
  else
    let jobs = resolve_jobs ?jobs n in
    if jobs = 1 then begin
      let t0 = Obs.span_begin () in
      let r = Array.init n f in
      stripe_span ~stripe:0 ~jobs:1 t0;
      r
    end
    else begin
      let results = Array.make n None in
      let stripe first () =
        let t0 = Obs.span_begin () in
        let i = ref first in
        while !i < n do
          results.(!i) <- Some (f !i);
          i := !i + jobs
        done;
        stripe_span ~stripe:first ~jobs t0
      in
      let workers =
        Array.init (jobs - 1) (fun k -> Domain.spawn (stripe (k + 1)))
      in
      (* Run stripe 0 on the calling domain, then join every worker
         even if something raised — leaking a domain would abort the
         process at exit. The first failure wins. *)
      let first_failure = ref None in
      let note e = if Option.is_none !first_failure then first_failure := Some e in
      (try stripe 0 () with e -> note e);
      Array.iter
        (fun d -> try Domain.join d with e -> note e)
        workers;
      (match !first_failure with Some e -> raise e | None -> ());
      Array.map
        (function Some v -> v | None -> assert false (* all stripes ran *))
        results
    end

let map_list ?jobs (f : 'a -> 'b) (xs : 'a list) : 'b list =
  match xs with
  | [] | [ _ ] -> List.map f xs
  | _ ->
    let arr = Array.of_list xs in
    Array.to_list (map_n ?jobs (Array.length arr) (fun i -> f arr.(i)))
