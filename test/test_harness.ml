(* Tests for the experiment harness: table rendering via the report
   layer, experiment loading, sweeps and the tables' shapes on small
   trial counts. *)

let test_table_text () =
  let t =
    Report.table ~id:"t" ~title:"T"
      ~columns:[ Report.column "a"; Report.column "bb" ]
      [
        [ Report.int 1; Report.int 2 ];
        [ Report.text "333"; Report.pct 12.34 ];
      ]
  in
  let s = Report.to_text t in
  Alcotest.(check bool) "title" true (String.length s > 0);
  (* every row line has the same width *)
  let lines = String.split_on_char '\n' s in
  let widths =
    List.filter_map
      (fun l -> if String.length l > 0 && l.[0] = '|' then Some (String.length l) else None)
      lines
  in
  (match widths with
   | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned" w w') rest
   | [] -> Alcotest.fail "no rows");
  Alcotest.(check bool) "pct formats as in the tables" true
    (let rec has_sub i =
       i + 5 <= String.length s && (String.sub s i 5 = "12.3%" || has_sub (i + 1))
     in
     has_sub 0)

let loaded =
  lazy (Harness.Experiment.load ~seed:1 (Option.get (Apps.Registry.find "mcf")))

let test_experiment_load () =
  let l = Lazy.force loaded in
  let t_full = l.Harness.Experiment.target Harness.Experiment.Full in
  let t_lit = l.Harness.Experiment.target Harness.Experiment.Literal in
  Alcotest.(check bool) "baselines agree" true
    (t_full.Core.Campaign.baseline.Sim.Interp.dyn_count
    = t_lit.Core.Campaign.baseline.Sim.Interp.dyn_count);
  (* memoization: same target back *)
  Alcotest.(check bool) "memoized" true
    (l.Harness.Experiment.target Harness.Experiment.Full == t_full)

let test_sweep_zero_errors_is_clean () =
  let l = Lazy.force loaded in
  let p =
    Harness.Experiment.sweep_point l ~mode:Harness.Experiment.Full
      ~policy:Core.Policy.Protect_control ~errors:0 ~trials:3 ~seed:1
  in
  Alcotest.(check (float 0.0)) "no failures at 0 errors" 0.0
    p.Harness.Experiment.pct_failed;
  Alcotest.(check (option (float 0.0))) "perfect fidelity at 0 errors"
    (Some 100.0) p.Harness.Experiment.mean_fidelity

let test_table3_shape () =
  (* table 3 needs only baselines; run it on two apps *)
  let loaded =
    List.filter_map
      (fun n -> Option.map (Harness.Experiment.load ~seed:1) (Apps.Registry.find n))
      [ "mcf"; "adpcm" ]
  in
  let rows = Harness.Table3.run loaded in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  List.iter
    (fun (r : Harness.Table3.row) ->
      Alcotest.(check bool) "literal >= full" true
        (r.Harness.Table3.pct_low_literal >= r.Harness.Table3.pct_low_full);
      Alcotest.(check bool) "percent bounds" true
        (r.Harness.Table3.pct_low_literal >= 0.0
        && r.Harness.Table3.pct_low_literal <= 100.0))
    rows;
  Alcotest.(check bool) "renders" true
    (String.length (Harness.Table3.render rows) > 0)

let test_figure_render () =
  (* structural check on a tiny synthetic figure result *)
  let point errors =
    {
      Harness.Experiment.errors;
      n = 2;
      pct_failed = 0.0;
      mean_fidelity = Some 50.0;
      fidelities = [ 50.0; 50.0 ];
      stats = Core.Stats.empty;
    }
  in
  let r =
    {
      Harness.Figures.id = "figX";
      title = "X";
      fidelity_name = "f";
      series =
        [ { Harness.Figures.label = "s"; points = [ point 0; point 5 ] } ];
    }
  in
  let s = Harness.Figures.render r in
  Alcotest.(check bool) "has error rows" true
    (String.length s > 0
    && String.split_on_char '\n' s
       |> List.exists (fun l -> String.length l > 2 && l.[0] = '|' && l.[2] = '5'))

let test_ablation_eligibility_rows () =
  (* tiny trial counts: checks structure and the pool ordering *)
  let rows = Harness.Ablation.eligibility ~errors:2 ~trials:3 () in
  Alcotest.(check int) "three configurations" 3 (List.length rows);
  match rows with
  | [ none; kernel; everything ] ->
    Alcotest.(check int) "nothing eligible -> empty pool" 0
      none.Harness.Ablation.pool;
    Alcotest.(check bool) "kernel pool nonempty" true
      (kernel.Harness.Ablation.pool > 0);
    Alcotest.(check bool) "everything >= kernel" true
      (everything.Harness.Ablation.pool >= kernel.Harness.Ablation.pool)
  | _ -> Alcotest.fail "unexpected rows"

let test_cost_model_math () =
  Alcotest.(check (float 1e-9)) "p=0 no speedup" 1.0
    (Harness.Cost_model.speedup ~k:3.0 ~p:0.0);
  Alcotest.(check (float 1e-9)) "p=1 full speedup" 3.0
    (Harness.Cost_model.speedup ~k:3.0 ~p:1.0);
  Alcotest.(check (float 1e-9)) "half exposed, k=2" (4.0 /. 3.0)
    (Harness.Cost_model.speedup ~k:2.0 ~p:0.5);
  Alcotest.(check bool) "monotone in p" true
    (Harness.Cost_model.speedup ~k:3.0 ~p:0.8
    > Harness.Cost_model.speedup ~k:3.0 ~p:0.2)

let test_cost_model_rows () =
  let rows =
    Harness.Cost_model.run ~mode:Harness.Experiment.Literal
      [ Lazy.force loaded ]
  in
  match rows with
  | [ r ] ->
    Alcotest.(check bool) "speedups within [1,k]" true
      (r.Harness.Cost_model.speedup_dmr >= 1.0
      && r.Harness.Cost_model.speedup_dmr <= 2.0
      && r.Harness.Cost_model.speedup_tmr >= 1.0
      && r.Harness.Cost_model.speedup_tmr <= 3.0)
  | _ -> Alcotest.fail "one row expected"

let test_taxonomy_sums_to_100 () =
  let rows =
    Harness.Taxonomy.run ~errors:2 ~trials:8 ~mode:Harness.Experiment.Literal
      [ Lazy.force loaded ]
  in
  match rows with
  | [ r ] ->
    Alcotest.(check (float 0.5)) "partitions the trials" 100.0
      (r.Harness.Taxonomy.pct_benign +. r.Harness.Taxonomy.pct_degraded
      +. r.Harness.Taxonomy.pct_catastrophic)
  | _ -> Alcotest.fail "one row expected"

let () =
  Alcotest.run "harness"
    [
      ("table text", [ Alcotest.test_case "render" `Quick test_table_text ]);
      ( "experiment",
        [
          Alcotest.test_case "load and memoize" `Quick test_experiment_load;
          Alcotest.test_case "zero errors clean" `Quick
            test_sweep_zero_errors_is_clean;
        ] );
      ( "tables",
        [ Alcotest.test_case "table 3 shape" `Quick test_table3_shape ] );
      ("figures", [ Alcotest.test_case "render" `Quick test_figure_render ]);
      ( "cost model",
        [
          Alcotest.test_case "math" `Quick test_cost_model_math;
          Alcotest.test_case "rows" `Quick test_cost_model_rows;
        ] );
      ( "taxonomy",
        [ Alcotest.test_case "partition" `Quick test_taxonomy_sums_to_100 ] );
      ( "ablation",
        [
          Alcotest.test_case "eligibility rows" `Quick
            test_ablation_eligibility_rows;
        ] );
    ]
