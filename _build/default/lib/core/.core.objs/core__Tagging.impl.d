lib/core/tagging.ml: Analysis Array Hashtbl Ir List Option Policy
