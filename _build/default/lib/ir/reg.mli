(** Virtual registers of the MIPS-like IR.

    A register is either an integer register ([$rN], holding a 32-bit
    two's-complement value) or a floating-point register ([$fN], holding
    an IEEE-754 double). Register numbers are per-function and
    unbounded; the simulator sizes each frame from the function's
    declared register counts. *)

type t =
  | Int of int  (** integer register [$rN] *)
  | Flt of int  (** floating-point register [$fN] *)

val int : int -> t
(** [int i] is integer register [$ri]. Raises [Assert_failure] on
    negative [i]. *)

val flt : int -> t
(** [flt i] is floating-point register [$fi]. *)

val is_int : t -> bool
val is_flt : t -> bool

val index : t -> int
(** Bank-local index of the register. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
