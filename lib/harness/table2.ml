(* Paper Table 2: "% catastrophic failures (infinite runs or crashes)
   with and without protecting control data", at a low and a high
   error count per application.

   Error counts are the paper's absolute values. Because our runs are
   ~10^3 times shorter than the paper's (reduced-scale inputs), the
   same absolute count is a much higher per-instruction rate here —
   the comparison of interest (with vs. without protection at equal
   error count) is preserved. When an application's injectable pool
   under protection is smaller than the requested count, the plan
   saturates the pool; the row reports the requested count. *)

type row = {
  app_name : string;
  errors : int;
  total_instructions : int;
  pct_with : float;          (* protection ON, control+address (Full) *)
  pct_with_literal : float;  (* protection ON, paper's literal rules *)
  pct_without : float;       (* protection OFF *)
  paper_with : float;
  paper_without : float;
}

(* (app, errors, paper % with, paper % without), from the paper. *)
let cells =
  [
    ("susan", 2200, 0.0, 10.0);
    ("mpeg", 20, 0.0, 100.0);
    ("mpeg", 120, 0.0, 100.0);
    ("mcf", 1, 0.0, 100.0);
    ("mcf", 340, 6.0, 100.0);
    ("blowfish", 2, 0.0, 10.0);
    ("blowfish", 20, 19.0, 48.0);
    ("gsm", 10, 0.0, 100.0);
    ("gsm", 40, 0.0, 100.0);
    ("art", 4, 0.0, 0.0);
    ("adpcm", 3, 2.0, 8.5);
    ("adpcm", 56, 8.0, 53.5);
  ]

let run ?(trials = 25) ?(seed = 11) ?jobs (loaded : Experiment.loaded list) :
    row list =
  List.filter_map
    (fun (name, errors, paper_with, paper_without) ->
      match
        List.find_opt
          (fun (l : Experiment.loaded) -> l.Experiment.app.Apps.App.name = name)
          loaded
      with
      | None -> None
      | Some l ->
        let pct mode policy =
          Experiment.pct_catastrophic ?jobs l ~mode ~policy ~errors ~trials
            ~seed
        in
        Some
          {
            app_name = name;
            errors;
            total_instructions =
              (l.Experiment.target Experiment.Full).Core.Campaign.baseline
                .Sim.Interp.dyn_count;
            pct_with = pct Experiment.Full Core.Policy.Protect_control;
            pct_with_literal =
              pct Experiment.Literal Core.Policy.Protect_control;
            pct_without = pct Experiment.Full Core.Policy.Protect_nothing;
            paper_with;
            paper_without;
          })
    cells

let to_table rows : Report.table =
  Report.table ~id:"table2"
    ~title:
      "Table 2: % catastrophic failures (crash or infinite run), with vs \
       without control protection"
    ~columns:
      [
        Report.column ~key:"app" "app";
        Report.column ~key:"errors" "errors";
        Report.column ~key:"instructions" "instrs";
        Report.column ~key:"pct_with" "with ctrl+addr (ours)";
        Report.column ~key:"pct_with_literal" "with literal (ours)";
        Report.column ~key:"pct_without" "without (ours)";
        Report.column ~key:"paper_with" "with (paper)";
        Report.column ~key:"paper_without" "without (paper)";
      ]
    (List.map
       (fun r ->
         [
           Report.text r.app_name;
           Report.int r.errors;
           Report.int r.total_instructions;
           Report.pct r.pct_with;
           Report.pct r.pct_with_literal;
           Report.pct r.pct_without;
           Report.pct r.paper_with;
           Report.pct r.paper_without;
         ])
       rows)

let render rows = Report.to_text (to_table rows)
