(* ART fidelity (paper Table 1: "error in confidence of match";
   Figure 6: "% images recognized"). A scan is recognized when it
   picks the same window and category as the fault-free run; the
   confidence error quantifies degradation of the match strength. *)

type scan = {
  best_window : int;
  best_category : int;
  confidence : float;
}

let recognized ~golden ~observed =
  golden.best_window = observed.best_window
  && golden.best_category = observed.best_category

let confidence_error ~golden ~observed =
  Float.abs (golden.confidence -. observed.confidence)
