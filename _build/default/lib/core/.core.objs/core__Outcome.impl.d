lib/core/outcome.ml: Format Sim
