lib/harness/table2.ml: Apps Core Experiment List Sim Tablefmt
