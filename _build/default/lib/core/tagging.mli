(** The paper's static analysis (Section 3): backward interprocedural
    CVar dataflow that tags every value-producing instruction whose
    result cannot (statically) influence control flow as
    LOW-RELIABILITY — eligible to run on unprotected hardware.

    Two rule sets are provided:
    - [protect_addresses:false] — the paper's Section 3 verbatim: a
      load terminates the def-use chain and address registers do not
      enter CVar;
    - [protect_addresses:true] (default) — additionally treats every
      load/store base register as control-critical, the "control and
      address" treatment of the authors' companion work. *)

type summary = {
  mutable ret_critical : bool;
      (** some caller consumes the return value in a control-
          influencing way *)
  mutable critical_params : bool array;
      (** per formal: does it (transitively) reach control inside the
          function? *)
}

type t = {
  prog : Ir.Prog.t;
  order : string list;
  protect_addresses : bool;
  low_rel : (string, bool array) Hashtbl.t;
  summaries : (string, summary) Hashtbl.t;
}

val compute : ?protect_addresses:bool -> Ir.Prog.t -> t
(** Run the analysis to fixpoint over the whole program. Ineligible
    functions ([Ir.Func.eligible = false]) are fully protected and
    their formals treated as critical. *)

val low_reliability : t -> string -> bool array option
(** Per-body-index low-reliability marks for a function; [true] means
    the instruction's result may be corrupted. *)

val summary : t -> string -> summary option

val mask : t -> Policy.t -> bool array array
(** Injectability masks per function, index-aligned with
    [Sim.Code.of_prog]'s function ids: [Protect_control] exposes the
    tagged instructions, [Protect_nothing] every value-producing
    instruction, [Protect_all] nothing. *)

val static_stats :
  t -> [ `Tagged of int ] * [ `Producing of int ] * [ `Total of int ]
(** Static counts: tagged instructions, value-producing instructions,
    and all instructions (labels excluded). *)

val dynamic_low_fraction : t -> int array array -> float
(** Fraction of *dynamic* instructions whose static instruction is
    tagged, given per-instruction execution counts from a profiled run
    (paper Table 3). *)
