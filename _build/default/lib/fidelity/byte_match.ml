(* Percentage of positions whose values match exactly — Blowfish's "%
   bytes correct from original" and ADPCM's "% similarity" measures
   (paper Table 1). *)

let pct_equal a b =
  if Array.length a <> Array.length b then invalid_arg "byte_match: length";
  if Array.length a = 0 then 100.0
  else begin
    let same = ref 0 in
    Array.iteri (fun i x -> if x = b.(i) then incr same) a;
    100.0 *. float_of_int !same /. float_of_int (Array.length a)
  end

(* Tolerant variant for codecs whose reconstruction is only close:
   positions within [tol] count as matching. *)
let pct_close ~tol a b =
  if Array.length a <> Array.length b then invalid_arg "byte_match: length";
  if Array.length a = 0 then 100.0
  else begin
    let same = ref 0 in
    Array.iteri (fun i x -> if abs (x - b.(i)) <= tol then incr same) a;
    100.0 *. float_of_int !same /. float_of_int (Array.length a)
  end
