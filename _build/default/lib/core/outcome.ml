(* Classification of an injected run (paper Section 5: "catastrophic
   failures (infinite runs or crashes)" versus completed runs, which
   are then scored by the application's fidelity measure). *)

type t =
  | Crash of Sim.Trap.t
  | Infinite  (* exceeded the dynamic-instruction budget *)
  | Completed of Sim.Interp.result

let of_result (r : Sim.Interp.result) =
  match r.Sim.Interp.outcome with
  | Sim.Interp.Trapped t -> Crash t
  | Sim.Interp.Timeout -> Infinite
  | Sim.Interp.Done _ -> Completed r

let is_catastrophic = function
  | Crash _ | Infinite -> true
  | Completed _ -> false

let to_string = function
  | Crash t -> "crash: " ^ Sim.Trap.to_string t
  | Infinite -> "infinite execution"
  | Completed _ -> "completed"

let pp fmt t = Format.pp_print_string fmt (to_string t)
