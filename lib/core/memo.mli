(** Compositional campaign memoization: section-level result reuse
    through a content-addressed on-disk cache (FastFlip-style — see
    DESIGN.md §15).

    {!run} is a drop-in sibling of {!Campaign.run}: same arguments plus
    a {!Store.t}, same [summary] — bit-identical to the monolithic one
    on a cold cache, and composed from cached per-section records on a
    warm one. Each trial is attributed to the section (function, with a
    composed content hash over its call subtree — [Analysis.Section])
    owning its first planned fault ordinal; a group of trials is
    reusable iff nothing its key covers changed: the owning section's
    composed hash, the fault-model coordinates (policy, errors, seed,
    injectable pool, budget), the baseline behaviour digest, and each
    trial's entry-state class (digest of the checkpoint it resumes
    from, frames keyed by local section hashes).

    Incremental campaigns never run under taint — audit flows stay
    monolithic ({!Campaign.run} [~taint:true]). *)

type stats = {
  sections : int;  (** section groups (sections owning at least 1 trial) *)
  hits : int;  (** groups served entirely from the cache *)
  misses : int;  (** groups executed and stored *)
  trials_reused : int;
  trials_run : int;
}

val zero_stats : stats

(** Content-addressed entry store under a root directory (by
    convention [_etap_cache/]): one JSON document per group, schema
    [etap-cache/1], at [root/<key[0:2]>/<key[2:]>.json]. Corrupt,
    foreign-schema or stale-membership entries read as misses, never
    as errors; writes are atomic (temp file + rename). *)
module Store : sig
  type t

  val schema : string
  (** ["etap-cache/1"] *)

  val open_ : string -> t
  (** Create (mkdir -p) or reopen the store rooted at the path. *)

  val root : t -> string

  val load : t -> key:string -> Report.Json.t option
  (** The entry stored under [key], or [None] when absent, corrupt or
      carrying a foreign schema marker. *)

  val save : t -> key:string -> Report.Json.t -> unit
  (** Atomically publish an entry: the document is written to a
      temp file unique per (process, domain, save) and renamed over the
      final path, so concurrent writers of the same key — domains of
      one matrix run, or separate processes sharing a store — never
      expose a torn entry to a reader. *)

  val scan : t -> (string * int * float) list
  (** Every entry under the store root as [(path, bytes, mtime)],
      unsorted — the same walk {!gc} evicts from, without the
      side-effects (no temp-file reaping). Feeds the offline store
      summary ([etap cache stats]) and the serve daemon's [stats]
      store section. *)

  type gc_stats = {
    gc_scanned : int;  (** entries found under the store root *)
    gc_evicted : int;
    gc_kept : int;
    gc_bytes_before : int;
    gc_bytes_after : int;
  }

  val gc : ?max_bytes:int -> ?max_age_days:float -> t -> gc_stats
  (** LRU-by-mtime eviction ([etap cache gc]). {!load} touches entries
      on every hit, so mtime order is recency-of-use order: entries
      older than [max_age_days] are evicted first, then oldest-first
      until total size fits under [max_bytes]. With neither bound the
      pass only reports sizes (and reaps stale [.tmp] files from
      crashed writers). Safe to run concurrently with readers and
      writers of the same store. *)
end

val sections_of : Campaign.prepared -> Analysis.Section.t
(** Section partition of the prepared target's program, with the
    policy's tag mask folded into the hashes. *)

val owners_of : Campaign.prepared -> ordinals:int list -> (int, int) Hashtbl.t
(** Owning fid of each requested injectable ordinal (ascending list),
    from one golden walk on the reference engine pausing at [o + 1] —
    the paused frame is exactly the one that consumed ordinal [o].
    Ordinals past the last pause point attribute to the entry
    section. *)

val trial_to_json : Campaign.trial -> Report.Json.t
(** Cache-entry encoding of one trial record. Floats travel as hexfloat
    strings so records roundtrip bit-exactly; [fault_flow] is always
    [None] on this path and is not encoded. *)

val trial_of_json : Report.Json.t -> Campaign.trial
(** Inverse of {!trial_to_json}. Raises on malformed input (callers in
    this module convert that to a cache miss). *)

val run :
  ?jobs:int ->
  ?fanout:
    ((int -> Campaign.trial * int) -> int list -> (Campaign.trial * int) list) ->
  ?score:(Sim.Interp.result -> float) ->
  ?salt:string ->
  ?sections:Analysis.Section.t ->
  store:Store.t ->
  Campaign.prepared ->
  errors:int ->
  trials:int ->
  seed:int ->
  Campaign.summary * stats
(** Incremental counterpart of {!Campaign.run}. Cache misses execute
    through {!Campaign.run_trial_skip} (the monolithic per-trial path)
    and are then published to [store]; hits are composed from their
    stored records. The summary's [trials], [stats], [errors_*] fields
    are bit-identical to {!Campaign.run}'s for the same arguments;
    [resumed_trials]/[skipped_dyn] count executed trials only (a fully
    warm run reports 0/0).

    [salt] folds an out-of-band identity into every key — callers pass
    the app name (and anything else that selects the scorer/workload)
    because a [score] closure itself cannot be hashed. [jobs] fans the
    misses out over domains; results are jobs-invariant.

    [fanout] hands the miss fan-out to an external scheduler (the
    serve daemon's shared executor): it receives the per-trial
    execution function and the missing indices, and must return one
    result per index in the given order. When supplied, this run
    spawns no domains of its own — the coalescing-safe entry. The
    per-trial computation is identical either way, so summaries are
    scheduler-invariant.

    [sections] lets a batch caller (the matrix sweep runner) compute
    {!sections_of} once per prepared target and share it across every
    cell on that target; it must be the partition of exactly this
    prepared's program and tag mask. *)
