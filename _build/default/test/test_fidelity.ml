(* Tests for the fidelity measures of paper Table 1. *)

let test_psnr_identical () =
  let a = [| 1; 2; 3; 250 |] in
  Alcotest.(check (float 0.0)) "capped" Fidelity.Psnr.cap_db
    (Fidelity.Psnr.psnr_db a a)

let test_psnr_known_value () =
  (* constant error of 5 on every pixel: MSE = 25, PSNR = 10 log10(255^2/25) *)
  let a = Array.make 100 100 and b = Array.make 100 105 in
  let expected = 10.0 *. log10 (255.0 *. 255.0 /. 25.0) in
  Alcotest.(check (float 1e-9)) "psnr" expected (Fidelity.Psnr.psnr_db a b)

let test_psnr_monotone () =
  let a = Array.make 64 128 in
  let noisy k = Array.map (fun x -> x + k) a in
  Alcotest.(check bool) "more noise, lower psnr" true
    (Fidelity.Psnr.psnr_db a (noisy 2) > Fidelity.Psnr.psnr_db a (noisy 20))

let test_psnr_threshold () =
  let a = Array.make 16 0 and b = Array.make 16 255 in
  Alcotest.(check bool) "max noise fails threshold" false
    (Fidelity.Psnr.meets_threshold ~threshold_db:10.0 a b);
  Alcotest.(check bool) "identical passes" true
    (Fidelity.Psnr.meets_threshold ~threshold_db:10.0 a a)

let test_psnr_rejects_mismatch () =
  Alcotest.check_raises "length" (Invalid_argument "psnr: length mismatch")
    (fun () -> ignore (Fidelity.Psnr.psnr_db [| 1 |] [| 1; 2 |]))

let test_snr_cases () =
  let reference = Array.init 64 (fun k -> 100 * (1 + (k mod 3))) in
  Alcotest.(check (float 0.0)) "identical capped" Fidelity.Snr.cap_db
    (Fidelity.Snr.snr_db reference reference);
  let noisy = Array.map (fun x -> x + 10) reference in
  let snr = Fidelity.Snr.snr_db reference noisy in
  Alcotest.(check bool) "finite positive" true (snr > 0.0 && snr < 99.0);
  Alcotest.(check (float 1e-9)) "loss" 3.0
    (Fidelity.Snr.loss_db ~baseline_db:40.0 ~observed_db:37.0)

let test_snr_zero_signal () =
  let z = Array.make 8 0 in
  Alcotest.(check (float 0.0)) "zero ref with noise" 0.0
    (Fidelity.Snr.snr_db z (Array.make 8 3))

let test_byte_match () =
  Alcotest.(check (float 0.0)) "all equal" 100.0
    (Fidelity.Byte_match.pct_equal [| 1; 2; 3; 4 |] [| 1; 2; 3; 4 |]);
  Alcotest.(check (float 0.0)) "half" 50.0
    (Fidelity.Byte_match.pct_equal [| 1; 2; 3; 4 |] [| 1; 2; 0; 0 |]);
  Alcotest.(check (float 0.0)) "tolerance" 100.0
    (Fidelity.Byte_match.pct_close ~tol:1 [| 10; 20 |] [| 11; 19 |]);
  Alcotest.(check (float 0.0)) "empty" 100.0
    (Fidelity.Byte_match.pct_equal [||] [||])

(* Schedule checking over a tiny two-arc network: s -0-> t (cap 2 cost 1),
   s -1-> t (cap 2 cost 3), supply 3. Optimal = 2*1 + 1*3 = 5. *)
let inst : Fidelity.Schedule.instance =
  {
    Fidelity.Schedule.n_nodes = 2;
    arcs = [| (0, 1, 2, 1); (0, 1, 2, 3) |];
    source = 0;
    sink = 1;
    supply = 3;
  }

let check flows cost =
  Fidelity.Schedule.check inst ~optimal_cost:5 ~flows ~reported_cost:cost

let test_schedule_optimal () =
  Alcotest.(check bool) "optimal" true
    (Fidelity.Schedule.is_optimal (check [| 2; 1 |] 5))

let test_schedule_suboptimal () =
  match check [| 1; 2 |] 7 with
  | Fidelity.Schedule.Suboptimal extra ->
    Alcotest.(check (float 1e-9)) "40% extra" 40.0 extra
  | _ -> Alcotest.fail "expected suboptimal"

let test_schedule_infeasible () =
  (* wrong amount shipped *)
  (match check [| 2; 0 |] 2 with
   | Fidelity.Schedule.Infeasible -> ()
   | _ -> Alcotest.fail "short shipment must be infeasible");
  (* over capacity *)
  (match check [| 3; 0 |] 3 with
   | Fidelity.Schedule.Infeasible -> ()
   | _ -> Alcotest.fail "over-capacity must be infeasible");
  (* misreported cost *)
  (match check [| 2; 1 |] 4 with
   | Fidelity.Schedule.Infeasible -> ()
   | _ -> Alcotest.fail "lying about cost must be infeasible");
  (* negative flow *)
  match check [| -1; 2 |] 5 with
  | Fidelity.Schedule.Infeasible -> ()
  | _ -> Alcotest.fail "negative flow must be infeasible"

let test_confidence () =
  let g = { Fidelity.Confidence.best_window = 4; best_category = 2; confidence = 0.9 } in
  let same = { g with Fidelity.Confidence.confidence = 0.7 } in
  let other = { g with Fidelity.Confidence.best_window = 5 } in
  Alcotest.(check bool) "same window+cat recognized" true
    (Fidelity.Confidence.recognized ~golden:g ~observed:same);
  Alcotest.(check bool) "other window not" false
    (Fidelity.Confidence.recognized ~golden:g ~observed:other);
  Alcotest.(check (float 1e-9)) "confidence error" 0.2
    (Fidelity.Confidence.confidence_error ~golden:g ~observed:same)

let psnr_symmetric_prop =
  QCheck.Test.make ~name:"psnr is symmetric" ~count:100
    QCheck.(pair (array_of_size (QCheck.Gen.return 16) (int_bound 255))
              (array_of_size (QCheck.Gen.return 16) (int_bound 255)))
    (fun (a, b) ->
      Float.abs (Fidelity.Psnr.psnr_db a b -. Fidelity.Psnr.psnr_db b a) < 1e-9)

let byte_match_bounds_prop =
  QCheck.Test.make ~name:"byte match in [0,100]" ~count:100
    QCheck.(pair (array_of_size (QCheck.Gen.return 32) small_signed_int)
              (array_of_size (QCheck.Gen.return 32) small_signed_int))
    (fun (a, b) ->
      let p = Fidelity.Byte_match.pct_equal a b in
      p >= 0.0 && p <= 100.0)

let () =
  Alcotest.run "fidelity"
    [
      ( "psnr",
        [
          Alcotest.test_case "identical" `Quick test_psnr_identical;
          Alcotest.test_case "known value" `Quick test_psnr_known_value;
          Alcotest.test_case "monotone" `Quick test_psnr_monotone;
          Alcotest.test_case "threshold" `Quick test_psnr_threshold;
          Alcotest.test_case "length mismatch" `Quick test_psnr_rejects_mismatch;
          QCheck_alcotest.to_alcotest psnr_symmetric_prop;
        ] );
      ( "snr",
        [
          Alcotest.test_case "cases" `Quick test_snr_cases;
          Alcotest.test_case "zero signal" `Quick test_snr_zero_signal;
        ] );
      ( "bytes",
        [
          Alcotest.test_case "match" `Quick test_byte_match;
          QCheck_alcotest.to_alcotest byte_match_bounds_prop;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "optimal" `Quick test_schedule_optimal;
          Alcotest.test_case "suboptimal" `Quick test_schedule_suboptimal;
          Alcotest.test_case "infeasible" `Quick test_schedule_infeasible;
        ] );
      ( "confidence", [ Alcotest.test_case "scan" `Quick test_confidence ] );
    ]
