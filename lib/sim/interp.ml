(* Functional simulator.

   Executes a decoded [Code.t] image: no timing model, exact
   architectural state, faithful trap semantics — the SimpleScalar
   "sim-safe" role in the paper's methodology. The interpreter exposes
   the paper's fault-injection hook: an [injection] carries a
   per-instruction injectability mask (the tagging analysis output) and
   a plan mapping ordinals *among dynamic executions of injectable
   instructions* to bit positions. When execution reaches a planned
   ordinal, the bit is flipped in the just-computed destination value
   before write-back, and the corruption then propagates
   architecturally.

   The plan is kept as a pair of parallel arrays sorted by ordinal and
   consumed with a monotone cursor: ordinals are assigned in increasing
   order, so "is this ordinal planned?" is a single integer compare
   against the next pending entry instead of a hash probe on every
   injectable execution.

   Execution is an *explicit machine* (see Machine): a frame stack of
   {fid; pc; iregs; fregs} plus the dynamic counters, so the full
   architectural state is a first-class value — execution can pause at
   any injectable-ordinal boundary, be captured into an immutable
   [snapshot], and resume later, the basis of checkpointed
   fork-from-prefix campaigns (see Snapshot and Core.Campaign).

   Two engines drive that machine:
   - the *reference* engine is the match-dispatch loop below ([exec]):
     one [Code.d] match per dynamic instruction, easy to audit against
     the semantics;
   - the *fast* engine (Threaded) pre-compiles each function body into
     a flat array of specialized closures with direct threading, and is
     selected by building the machine from a compiled [image].
   Both engines produce bit-identical results — trial records,
   outcomes, trap sites, landed-fault attribution, snapshots — which
   the differential suite in test_engine pins on random programs.

   Taint mode keeps the original recursive twin ([call_t] below): it
   threads per-frame shadow state through the host stack, is engine-
   independent and not snapshotable — audit campaigns run from
   scratch. *)

open Machine

type injection = Machine.injection = {
  tags : bool array array;  (* fid -> body index -> injectable *)
  plan_ords : int array;    (* planned ordinals, strictly increasing *)
  plan_bits : int array;    (* bit to flip, parallel to [plan_ords] *)
}

let injection ~tags ~plan : injection =
  let plan = List.sort (fun (a, _) (b, _) -> Int.compare a b) plan in
  let n = List.length plan in
  let ords = Array.make n 0 and bits = Array.make n 0 in
  List.iteri
    (fun i (o, b) ->
      if o < 0 then invalid_arg "Interp.injection: negative ordinal";
      if i > 0 && ords.(i - 1) = o then
        invalid_arg "Interp.injection: duplicate ordinal";
      ords.(i) <- o;
      bits.(i) <- b)
    plan;
  { tags; plan_ords = ords; plan_bits = bits }

type outcome =
  | Done of Value.t option
  | Trapped of Trap.t
  | Timeout

type result = {
  outcome : outcome;
  dyn_count : int;          (* dynamic instructions executed *)
  injectable_seen : int;    (* dynamic executions of injectable instructions *)
  faults_landed : int;      (* plan entries actually applied *)
  memory : Memory.t;
  exec_counts : int array array;  (* fid -> body index -> executions *)
  trap_site : (string * int) option;
      (* (function name, body index) of the trapping instruction when
         [outcome] is [Trapped]; [None] otherwise *)
  landed_sites : (string * int) array;
      (* (function name, body index) of each landed fault, in landing
         order; length [faults_landed]. The raw material of the obs
         fault-site attribution profile. *)
  fault_flow : Taint.summary option;
      (* [Some] iff [taint] was set: the shadow-taint fault-flow
         classification of this run *)
}

exception Timeout_exn = Machine.Timeout_exn

let max_call_depth = Machine.max_call_depth

(* ---------------------------- engines ---------------------------- *)

type engine =
  | Fast
  | Ref

let engine_name = function Fast -> "fast" | Ref -> "ref"

type image = Machine.image

let compile = Threaded.compile

type machine = Machine.t

let machine ?image ?injection ?lenient ?budget ?count_exec ?memory code :
    machine =
  Machine.make ?image ?injection ?lenient ?budget ?count_exec ?memory code

(* The reference dispatch loop. Executes until the machine halts, or
   pauses as soon as [m.pause_at] injectable ordinals have been seen —
   the pause check sits at the top of dispatch and ordinals advance by
   at most one per dispatched instruction, so a pause lands exactly at
   ordinal [pause_at] (before any ordinal >= pause_at is consumed).

   The outer loop re-caches per-frame state (body, registers, tag row,
   counter row) whenever a call or return switches the head frame; the
   inner [loop] is a tail-recursive hot path over one frame. *)
let exec m =
  let funcs = m.code.Code.funcs in
  let memory = m.memory in
  let pause_at = m.pause_at in
  while is_running m do
    let fr = match m.stack with fr :: _ -> fr | [] -> assert false in
    let df = Array.unsafe_get funcs fr.fid in
    let body = df.Code.dbody in
    let len = Array.length body in
    let iregs = fr.iregs and fregs = fr.fregs in
    let counts = if m.count_exec then m.exec_counts.(fr.fid) else no_counts in
    let ftags = if m.has_injection then m.all_tags.(fr.fid) else no_tags in
    m.cur_fid <- fr.fid;
    (* Returns unit when the head frame changed (call or return) or the
       machine halted; the outer loop then re-enters. *)
    let rec loop pc =
      fr.pc <- pc;
      if m.inj_seen >= pause_at then raise Pause_exn;
      if pc >= len then
        (* The validator guarantees terminators, so this is only
           reachable through interpreter bugs; fail loudly. *)
        invalid_arg (Printf.sprintf "pc past end of %s" df.Code.name);
      let d = Array.unsafe_get body pc in
      (match d with
       | Code.DNop -> ()
       | _ ->
         m.dyn <- m.dyn + 1;
         if m.dyn > m.budget then raise Timeout_exn;
         if m.count_exec then counts.(pc) <- counts.(pc) + 1);
      match d with
      | Code.DNop -> loop (pc + 1)
      | Code.DLi (d, v) ->
        iregs.(d) <- inject_i m ftags pc v;
        loop (pc + 1)
      | Code.DLf (d, x) ->
        fregs.(d) <- inject_f m ftags pc x;
        loop (pc + 1)
      | Code.DLa (d, addr) ->
        iregs.(d) <- inject_i m ftags pc addr;
        loop (pc + 1)
      | Code.DMovI (d, s) ->
        iregs.(d) <- inject_i m ftags pc iregs.(s);
        loop (pc + 1)
      | Code.DMovF (d, s) ->
        fregs.(d) <- inject_f m ftags pc fregs.(s);
        loop (pc + 1)
      | Code.DBin (op, d, a, b) ->
        iregs.(d) <- inject_i m ftags pc (binop_i op iregs.(a) iregs.(b));
        loop (pc + 1)
      | Code.DBini (op, d, a, n) ->
        iregs.(d) <- inject_i m ftags pc (binop_i op iregs.(a) n);
        loop (pc + 1)
      | Code.DCmp (op, d, a, b) ->
        iregs.(d) <-
          inject_i m ftags pc (if cmp_i op iregs.(a) iregs.(b) then 1 else 0);
        loop (pc + 1)
      | Code.DFbin (op, d, a, b) ->
        fregs.(d) <- inject_f m ftags pc (binop_f op fregs.(a) fregs.(b));
        loop (pc + 1)
      | Code.DFun (op, d, s) ->
        fregs.(d) <- inject_f m ftags pc (unop_f op fregs.(s));
        loop (pc + 1)
      | Code.DFcmp (op, d, a, b) ->
        iregs.(d) <-
          inject_i m ftags pc (if cmp_f op fregs.(a) fregs.(b) then 1 else 0);
        loop (pc + 1)
      | Code.DI2f (d, s) ->
        fregs.(d) <- inject_f m ftags pc (float_of_int iregs.(s));
        loop (pc + 1)
      | Code.DF2i (d, s) ->
        iregs.(d) <- inject_i m ftags pc (f2i fregs.(s));
        loop (pc + 1)
      | Code.DLw (d, b, o) ->
        iregs.(d) <- inject_i m ftags pc (Memory.load_int memory (iregs.(b) + o));
        loop (pc + 1)
      | Code.DSw (v, b, o) ->
        Memory.store_int memory (iregs.(b) + o) iregs.(v);
        loop (pc + 1)
      | Code.DLb (d, b, o) ->
        iregs.(d) <-
          inject_i m ftags pc (Memory.load_byte memory (iregs.(b) + o));
        loop (pc + 1)
      | Code.DSb (v, b, o) ->
        Memory.store_byte memory (iregs.(b) + o) iregs.(v);
        loop (pc + 1)
      | Code.DLwf (d, b, o) ->
        fregs.(d) <- inject_f m ftags pc (Memory.load_flt memory (iregs.(b) + o));
        loop (pc + 1)
      | Code.DSwf (v, b, o) ->
        Memory.store_flt memory (iregs.(b) + o) fregs.(v);
        loop (pc + 1)
      | Code.DBr (op, a, b, target) ->
        if cmp_i op iregs.(a) iregs.(b) then loop target else loop (pc + 1)
      | Code.DBrz (op, a, target) ->
        if cmp_i op iregs.(a) 0 then loop target else loop (pc + 1)
      | Code.DJmp target -> loop target
      | Code.DCall c ->
        (* Depth check before the push: the overflow is attributed to
           this call site (the head frame's pc is parked here), with
           the callee's would-be depth as payload — same as the
           recursive interpreter's entry check seen from its caller. *)
        let callee_depth = m.depth + 1 in
        if callee_depth > max_call_depth then
          raise (Trap.Error (Trap.Call_stack_overflow callee_depth));
        let nf = fresh_frame m.code c.Code.fid in
        Array.iter
          (fun (src, dst) -> nf.iregs.(dst) <- iregs.(src))
          c.Code.iargs;
        Array.iter
          (fun (src, dst) -> nf.fregs.(dst) <- fregs.(src))
          c.Code.fargs;
        m.depth <- callee_depth;
        m.stack <- nf :: m.stack
        (* head frame changed: fall out to the outer loop *)
      | Code.DRetI r -> return m (Some (Value.I iregs.(r)))
      | Code.DRetF r -> return m (Some (Value.F fregs.(r)))
      | Code.DRetV -> return m None
    in
    loop fr.pc
  done

let advance m ~pause_at : [ `Paused | `Halted ] =
  match m.status with
  | Running -> (
    m.pause_at <- pause_at;
    try
      (if Array.length m.fast > 0 then Threaded.exec m else exec m);
      `Halted
    with
    | Pause_exn -> `Paused
    | Trap.Error t ->
      (* The head frame's pc is synced at every observable point, so it
         points at the trapping instruction; traps raised inside a
         callee are attributed innermost (the callee is the head
         frame). *)
      let site =
        match m.stack with fr :: _ -> Some (fr.fid, fr.pc) | [] -> None
      in
      m.status <- Trapped_ (t, site);
      `Halted
    | Timeout_exn ->
      m.status <- Timeout_;
      `Halted)
  | _ -> `Halted

(* Telemetry for one finished run. Cold path (once per run) and
   guarded by [Obs.enabled], so the dispatch loop stays oblivious to
   observability. Counter totals depend only on what the run executed,
   never on scheduling or engine — the jobs-invariance contract of
   lib/obs extends to engine-invariance. *)
let obs_run_counters ~dyn ~inj_seen ~landed ~outcome ~trap_site =
  if Obs.enabled () then begin
    Obs.count "sim.runs" 1;
    Obs.count "sim.instructions" dyn;
    Obs.count "sim.injectable_seen" inj_seen;
    if landed > 0 then Obs.count "sim.faults_landed" landed;
    (match outcome with
     | Trapped t ->
       Obs.count ("sim.trap." ^ Trap.kind t) 1;
       (match trap_site with
        | Some (func, pc) ->
          Obs.count (Printf.sprintf "sim.trap_site.%s+%d" func pc) 1
        | None -> ())
     | Timeout -> Obs.count "sim.timeouts" 1
     | Done _ -> ())
  end

let finish m : result =
  (match advance m ~pause_at:max_int with
   | `Halted -> ()
   | `Paused -> assert false);
  let outcome, trap_site =
    match m.status with
    | Running -> assert false
    | Done_ v -> (Done v, None)
    | Timeout_ -> (Timeout, None)
    | Trapped_ (t, site) ->
      ( Trapped t,
        match site with
        | Some (fid, pc) -> Some (m.code.Code.funcs.(fid).Code.name, pc)
        | None -> None )
  in
  obs_run_counters ~dyn:m.dyn ~inj_seen:m.inj_seen ~landed:m.landed ~outcome
    ~trap_site;
  {
    outcome;
    dyn_count = m.dyn;
    injectable_seen = m.inj_seen;
    faults_landed = m.landed;
    memory = m.memory;
    exec_counts = m.exec_counts;
    trap_site;
    landed_sites =
      Array.init m.landed (fun i ->
          (m.code.Code.funcs.(m.land_fids.(i)).Code.name, m.land_pcs.(i)));
    fault_flow = None;
  }

(* --------------------------- snapshots --------------------------- *)

type snapshot = Machine.snapshot

let capture = Machine.capture
let snapshot_ordinal = Machine.snapshot_ordinal
let snapshot_dyn = Machine.snapshot_dyn
let snapshot_digest = Machine.snapshot_digest
let machine_fid = Machine.machine_fid

let resume ?image ?injection (s : snapshot) : machine =
  Machine.restore ?image ?injection s

(* ------------------------- taint twin run ------------------------- *)

(* Taint mode is a second, fully separate interpreter loop ([call_t]
   below) rather than hooks in the plain one: the plain loop is the
   campaign hot path and must not pay even a predictable branch per
   instruction for an audit-only feature. The two loops share every
   value-level helper ([binop_i], [f2i], the plan cursor, the trap
   bookkeeping), execute instructions in the same order and call the
   injection hook at the same write-back points, so ordinals — and
   therefore where a plan's faults land — are identical in both modes;
   test_taint pins that equivalence with a property test. It stays
   host-stack recursive (per-frame shadow state lives in the recursion)
   and is therefore not snapshotable: audit trials run from scratch. *)
let run_taint ?injection ?lenient ~budget ~count_exec ?memory (code : Code.t) :
    result =
  let memory =
    match memory with
    | Some mem -> mem
    | None -> Memory.of_prog ?lenient code.Code.prog
  in
  let dyn = ref 0 in
  let inj_seen = ref 0 in
  let landed = ref 0 in
  (* Trap provenance: (fid, pc) of the instruction whose evaluation
     raised. Written once, by the innermost handler (the call arm sees
     traps propagating out of callees and must not overwrite the
     callee's record). Cold path: only touched when a trap fires. *)
  let trap_fid = ref (-1) in
  let trap_pc = ref (-1) in
  let trap_at fid pc e =
    if !trap_fid < 0 then begin
      trap_fid := fid;
      trap_pc := pc
    end;
    raise e
  in
  let exec_counts =
    if count_exec then
      Array.map
        (fun (df : Code.dfunc) -> Array.make (Array.length df.Code.dbody) 0)
        code.Code.funcs
    else [||]
  in
  let plan_ords, plan_bits =
    match (injection : injection option) with
    | Some { plan_ords; plan_bits; _ } -> (plan_ords, plan_bits)
    | None -> (no_counts, no_counts)
  in
  let plan_len = Array.length plan_ords in
  let land_fids = Array.make plan_len 0 in
  let land_pcs = Array.make plan_len 0 in
  let cursor = ref 0 in
  let next_planned = ref (if plan_len > 0 then plan_ords.(0) else max_int) in
  let advance_plan () =
    let c = !cursor + 1 in
    cursor := c;
    next_planned :=
      (if c < plan_len then Array.unsafe_get plan_ords c else max_int);
    incr landed;
    Array.unsafe_get plan_bits (c - 1)
  in
  let all_tags =
    match (injection : injection option) with
    | Some { tags; _ } -> tags
    | None -> [||]
  in
  let has_injection = Array.length all_tags > 0 in
  let tr = Taint.make ~cells:(Memory.size_bytes memory / 4) in
  (* Returns the function's result together with the taint of the
     returned value, so contamination survives call boundaries. *)
  let rec call_t depth fid set_args : Value.t option * Taint.mask =
    if depth > max_call_depth then
      raise (Trap.Error (Trap.Call_stack_overflow depth));
    let df = code.Code.funcs.(fid) in
    let iregs = Array.make (max df.Code.n_int 1) 0 in
    let fregs = Array.make (max df.Code.n_flt 1) 0.0 in
    let itn = Array.make (max df.Code.n_int 1) Taint.none in
    let ftn = Array.make (max df.Code.n_flt 1) Taint.none in
    set_args iregs fregs itn ftn;
    let body = df.Code.dbody in
    let len = Array.length body in
    let counts = if count_exec then exec_counts.(fid) else no_counts in
    let ftags = if has_injection then all_tags.(fid) else [||] in
    let inject_i pc v =
      if has_injection && Array.unsafe_get ftags pc then begin
        let ord = !inj_seen in
        incr inj_seen;
        if ord = !next_planned then begin
          let bit = advance_plan () in
          land_fids.(!landed - 1) <- fid;
          land_pcs.(!landed - 1) <- pc;
          Value.flip_int ~bit:(bit land 31) v
        end
        else v
      end
      else v
    in
    let inject_f pc x =
      if has_injection && Array.unsafe_get ftags pc then begin
        let ord = !inj_seen in
        incr inj_seen;
        if ord = !next_planned then begin
          let bit = advance_plan () in
          land_fids.(!landed - 1) <- fid;
          land_pcs.(!landed - 1) <- pc;
          Value.flip_float ~bit:(bit land 63) x
        end
        else x
      end
      else x
    in
    (* Write-back with shadow taint: record operand taint [tv] flowing
       into the destination, run the injection hook at exactly the same
       point as the plain loop, and seed fresh (memory-free) taint when
       a fault lands here. *)
    let set_i d pc tv v =
      Taint.propagate tr tv;
      let l0 = !landed in
      iregs.(d) <- inject_i pc v;
      itn.(d) <- (if !landed > l0 then tv lor Taint.fresh else tv)
    in
    let set_f d pc tv x =
      Taint.propagate tr tv;
      let l0 = !landed in
      fregs.(d) <- inject_f pc x;
      ftn.(d) <- (if !landed > l0 then tv lor Taint.fresh else tv)
    in
    let rec loop pc : Value.t option * Taint.mask =
      if pc >= len then
        invalid_arg (Printf.sprintf "pc past end of %s" df.Code.name);
      let d = Array.unsafe_get body pc in
      (match d with
       | Code.DNop -> ()
       | _ ->
         incr dyn;
         if !dyn > budget then raise Timeout_exn;
         if count_exec then counts.(pc) <- counts.(pc) + 1);
      match d with
      | Code.DNop -> loop (pc + 1)
      | Code.DLi (d, v) ->
        set_i d pc Taint.none v;
        loop (pc + 1)
      | Code.DLf (d, x) ->
        set_f d pc Taint.none x;
        loop (pc + 1)
      | Code.DLa (d, addr) ->
        set_i d pc Taint.none addr;
        loop (pc + 1)
      | Code.DMovI (d, s) ->
        set_i d pc itn.(s) iregs.(s);
        loop (pc + 1)
      | Code.DMovF (d, s) ->
        set_f d pc ftn.(s) fregs.(s);
        loop (pc + 1)
      | Code.DBin (op, d, a, b) ->
        (match op with
         | Ir.Instr.Div | Ir.Instr.Rem -> Taint.sink_trap_operand tr itn.(b)
         | _ -> ());
        let v =
          try binop_i op iregs.(a) iregs.(b)
          with Trap.Error _ as e -> trap_at fid pc e
        in
        set_i d pc (itn.(a) lor itn.(b)) v;
        loop (pc + 1)
      | Code.DBini (op, d, a, n) ->
        let v =
          try binop_i op iregs.(a) n
          with Trap.Error _ as e -> trap_at fid pc e
        in
        set_i d pc itn.(a) v;
        loop (pc + 1)
      | Code.DCmp (op, d, a, b) ->
        set_i d pc (itn.(a) lor itn.(b))
          (if cmp_i op iregs.(a) iregs.(b) then 1 else 0);
        loop (pc + 1)
      | Code.DFbin (op, d, a, b) ->
        set_f d pc (ftn.(a) lor ftn.(b)) (binop_f op fregs.(a) fregs.(b));
        loop (pc + 1)
      | Code.DFun (op, d, s) ->
        set_f d pc ftn.(s) (unop_f op fregs.(s));
        loop (pc + 1)
      | Code.DFcmp (op, d, a, b) ->
        set_i d pc (ftn.(a) lor ftn.(b))
          (if cmp_f op fregs.(a) fregs.(b) then 1 else 0);
        loop (pc + 1)
      | Code.DI2f (d, s) ->
        set_f d pc itn.(s) (float_of_int iregs.(s));
        loop (pc + 1)
      | Code.DF2i (d, s) ->
        Taint.sink_trap_operand tr ftn.(s);
        let v =
          try f2i fregs.(s) with Trap.Error _ as e -> trap_at fid pc e
        in
        set_i d pc ftn.(s) v;
        loop (pc + 1)
      | Code.DLw (d, b, o) ->
        Taint.sink_address tr itn.(b);
        let addr = iregs.(b) + o in
        let v =
          try Memory.load_int memory addr
          with Trap.Error _ as e -> trap_at fid pc e
        in
        let c = Memory.cell_index memory addr in
        set_i d pc
          (Taint.loaded
             ~cell:(if c >= 0 then Taint.mem_get tr c else Taint.none)
             ~base:itn.(b))
          v;
        loop (pc + 1)
      | Code.DSw (v, b, o) ->
        Taint.sink_address tr itn.(b);
        Taint.sink_memory tr itn.(v);
        let addr = iregs.(b) + o in
        (try Memory.store_int memory addr iregs.(v)
         with Trap.Error _ as e -> trap_at fid pc e);
        let c = Memory.cell_index memory addr in
        if c >= 0 then Taint.mem_set tr c (Taint.stored (itn.(v) lor itn.(b)));
        loop (pc + 1)
      | Code.DLb (d, b, o) ->
        Taint.sink_address tr itn.(b);
        let addr = iregs.(b) + o in
        let v =
          try Memory.load_byte memory addr
          with Trap.Error _ as e -> trap_at fid pc e
        in
        let c = Memory.byte_cell_index memory addr in
        set_i d pc
          (Taint.loaded
             ~cell:(if c >= 0 then Taint.mem_get tr c else Taint.none)
             ~base:itn.(b))
          v;
        loop (pc + 1)
      | Code.DSb (v, b, o) ->
        Taint.sink_address tr itn.(b);
        Taint.sink_memory tr itn.(v);
        let addr = iregs.(b) + o in
        (try Memory.store_byte memory addr iregs.(v)
         with Trap.Error _ as e -> trap_at fid pc e);
        let c = Memory.byte_cell_index memory addr in
        if c >= 0 then Taint.mem_union tr c (Taint.stored (itn.(v) lor itn.(b)));
        loop (pc + 1)
      | Code.DLwf (d, b, o) ->
        Taint.sink_address tr itn.(b);
        let addr = iregs.(b) + o in
        let x =
          try Memory.load_flt memory addr
          with Trap.Error _ as e -> trap_at fid pc e
        in
        let c = Memory.cell_index memory addr in
        set_f d pc
          (Taint.loaded
             ~cell:(if c >= 0 then Taint.mem_get tr c else Taint.none)
             ~base:itn.(b))
          x;
        loop (pc + 1)
      | Code.DSwf (v, b, o) ->
        Taint.sink_address tr itn.(b);
        Taint.sink_memory tr ftn.(v);
        let addr = iregs.(b) + o in
        (try Memory.store_flt memory addr fregs.(v)
         with Trap.Error _ as e -> trap_at fid pc e);
        let c = Memory.cell_index memory addr in
        if c >= 0 then Taint.mem_set tr c (Taint.stored (ftn.(v) lor itn.(b)));
        loop (pc + 1)
      | Code.DBr (op, a, b, target) ->
        Taint.sink_control tr ~fid ~pc (itn.(a) lor itn.(b));
        if cmp_i op iregs.(a) iregs.(b) then loop target else loop (pc + 1)
      | Code.DBrz (op, a, target) ->
        Taint.sink_control tr ~fid ~pc itn.(a);
        if cmp_i op iregs.(a) 0 then loop target else loop (pc + 1)
      | Code.DJmp target -> loop target
      | Code.DCall c ->
        let set callee_i callee_f callee_it callee_ft =
          Array.iter
            (fun (src, dst) ->
              callee_i.(dst) <- iregs.(src);
              callee_it.(dst) <- itn.(src))
            c.Code.iargs;
          Array.iter
            (fun (src, dst) ->
              callee_f.(dst) <- fregs.(src);
              callee_ft.(dst) <- ftn.(src))
            c.Code.fargs
        in
        let ret, rt =
          try call_t (depth + 1) c.Code.fid set
          with Trap.Error _ as e -> trap_at fid pc e
        in
        (if c.Code.dst >= 0 then
           match ret with
           | Some (Value.I v) when not c.Code.dst_flt -> set_i c.Code.dst pc rt v
           | Some (Value.F x) when c.Code.dst_flt -> set_f c.Code.dst pc rt x
           | _ -> invalid_arg "return bank mismatch at runtime");
        loop (pc + 1)
      | Code.DRetI r -> (Some (Value.I iregs.(r)), itn.(r))
      | Code.DRetF r -> (Some (Value.F fregs.(r)), ftn.(r))
      | Code.DRetV -> (None, Taint.none)
    in
    loop 0
  in
  let outcome =
    try
      let ret, rt = call_t 0 code.Code.entry_fid (fun _ _ _ _ -> ()) in
      (* A tainted entry return value is program output contamination
         even though no frame survives to hold it. *)
      Taint.propagate tr rt;
      Done ret
    with
    | Trap.Error t -> Trapped t
    | Timeout_exn -> Timeout
  in
  let trap_site =
    match outcome with
    | Trapped _ when !trap_fid >= 0 ->
      Some (code.Code.funcs.(!trap_fid).Code.name, !trap_pc)
    | _ -> None
  in
  obs_run_counters ~dyn:!dyn ~inj_seen:!inj_seen ~landed:!landed ~outcome
    ~trap_site;
  {
    outcome;
    dyn_count = !dyn;
    injectable_seen = !inj_seen;
    faults_landed = !landed;
    memory;
    exec_counts;
    trap_site;
    landed_sites =
      Array.init !landed (fun i ->
          (code.Code.funcs.(land_fids.(i)).Code.name, land_pcs.(i)));
    fault_flow =
      Some
        (Taint.summarize tr ~func_name:(fun f -> code.Code.funcs.(f).Code.name));
  }

let run ?image ?injection ?lenient ?(budget = Machine.default_budget)
    ?(count_exec = false) ?(taint = false) ?memory (code : Code.t) : result =
  if taint then begin
    (match image with
     | Some _ -> invalid_arg "Interp.run: taint mode requires the reference engine"
     | None -> ());
    run_taint ?injection ?lenient ~budget ~count_exec ?memory code
  end
  else finish (machine ?image ?injection ?lenient ~budget ~count_exec ?memory code)

(* Fault-free execution, trusting the program: raises on trap/timeout. *)
let run_exn ?image ?lenient ?budget ?count_exec code =
  let r = run ?image ?lenient ?budget ?count_exec code in
  match r.outcome with
  | Done _ -> r
  | Trapped t -> failwith ("fault-free run trapped: " ^ Trap.to_string t)
  | Timeout -> failwith "fault-free run exceeded budget"
