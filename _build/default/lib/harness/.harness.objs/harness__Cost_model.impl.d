lib/harness/cost_model.ml: Apps Core Experiment List Printf Sim Tablefmt
