(* ADPCM (MiBench): Jack Jansen's IMA ADPCM coder — 16-bit linear PCM
   to 4-bit codes and back. Fidelity is the percent of decoded samples
   identical to the fault-free decode (paper Table 1 uses "% similarity
   of the output PCM data"). *)

let n_samples = 1600

let step_table =
  [|
    7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31; 34; 37; 41;
    45; 50; 55; 60; 66; 73; 80; 88; 97; 107; 118; 130; 143; 157; 173; 190;
    209; 230; 253; 279; 307; 337; 371; 408; 449; 494; 544; 598; 658; 724;
    796; 876; 963; 1060; 1166; 1282; 1411; 1552; 1707; 1878; 2066; 2272;
    2499; 2749; 3024; 3327; 3660; 4026; 4428; 4871; 5358; 5894; 6484; 7132;
    7845; 8630; 9493; 10442; 11487; 12635; 13899; 15289; 16818; 18500;
    20350; 22385; 24623; 27086; 29794; 32767;
  |]

let index_table = [| -1; -1; -1; -1; 2; 4; 6; 8; -1; -1; -1; -1; 2; 4; 6; 8 |]

(* ------------------------------------------------------------------ *)
(* Host reference implementation.                                      *)

let host_encode (pcm : int array) : int array =
  let valpred = ref 0 and index = ref 0 in
  Array.map
    (fun sample ->
      let step = ref step_table.(!index) in
      let diff = ref (sample - !valpred) in
      let sign = if !diff < 0 then 8 else 0 in
      if sign <> 0 then diff := - !diff;
      let delta = ref 0 in
      let vpdiff = ref (!step lsr 3) in
      if !diff >= !step then begin
        delta := 4;
        diff := !diff - !step;
        vpdiff := !vpdiff + !step
      end;
      step := !step lsr 1;
      if !diff >= !step then begin
        delta := !delta lor 2;
        diff := !diff - !step;
        vpdiff := !vpdiff + !step
      end;
      step := !step lsr 1;
      if !diff >= !step then begin
        delta := !delta lor 1;
        vpdiff := !vpdiff + !step
      end;
      if sign <> 0 then valpred := !valpred - !vpdiff
      else valpred := !valpred + !vpdiff;
      valpred := App.clamp (-32768) 32767 !valpred;
      let delta = !delta lor sign in
      index := App.clamp 0 88 (!index + index_table.(delta));
      delta)
    pcm

let host_decode (codes : int array) : int array =
  let valpred = ref 0 and index = ref 0 in
  Array.map
    (fun delta ->
      let step = step_table.(!index) in
      index := App.clamp 0 88 (!index + index_table.(delta land 15));
      let sign = delta land 8 and mag = delta land 7 in
      let vpdiff = ref (step lsr 3) in
      if mag land 4 <> 0 then vpdiff := !vpdiff + step;
      if mag land 2 <> 0 then vpdiff := !vpdiff + (step lsr 1);
      if mag land 1 <> 0 then vpdiff := !vpdiff + (step lsr 2);
      if sign <> 0 then valpred := !valpred - !vpdiff
      else valpred := !valpred + !vpdiff;
      valpred := App.clamp (-32768) 32767 !valpred;
      !valpred)
    codes

(* ------------------------------------------------------------------ *)
(* The Mlang program.                                                  *)

let mlang_program (pcm : int array) : Mlang.Ast.program =
  let open Mlang.Dsl in
  let n = Array.length pcm in
  program
    [
      garray_init "step_tab" (App.ints_of_array step_table);
      garray_init "idx_tab" (App.ints_of_array index_table);
      garray_init "pcm_in" (App.ints_of_array pcm);
      garray_b "codes" n;
      garray "pcm_out" n;
    ]
    [
      fn "clamp16" [ p_int "x" ] ~ret:(Some Mlang.Ast.TInt)
        [
          when_ (v "x" >! i 32767) [ ret (i 32767) ];
          when_ (v "x" <! i (-32768)) [ ret (i (-32768)) ];
          ret (v "x");
        ];
      fn "clamp_idx" [ p_int "x" ] ~ret:(Some Mlang.Ast.TInt)
        [
          when_ (v "x" <! i 0) [ ret (i 0) ];
          when_ (v "x" >! i 88) [ ret (i 88) ];
          ret (v "x");
        ];
      proc "encode" []
        [
          let_ "valpred" (i 0);
          let_ "index" (i 0);
          for_ "t" (i 0) (i n)
            [
              let_ "step" ("step_tab".%(v "index"));
              let_ "diff" ("pcm_in".%(v "t") -! v "valpred");
              let_ "sign" (i 0);
              when_
                (v "diff" <! i 0)
                [ set "sign" (i 8); set "diff" (neg (v "diff")) ];
              let_ "delta" (i 0);
              let_ "vpdiff" (v "step" >>! i 3);
              when_
                (v "diff" >=! v "step")
                [
                  set "delta" (i 4);
                  set "diff" (v "diff" -! v "step");
                  set "vpdiff" (v "vpdiff" +! v "step");
                ];
              set "step" (v "step" >>! i 1);
              when_
                (v "diff" >=! v "step")
                [
                  set "delta" (v "delta" |! i 2);
                  set "diff" (v "diff" -! v "step");
                  set "vpdiff" (v "vpdiff" +! v "step");
                ];
              set "step" (v "step" >>! i 1);
              when_
                (v "diff" >=! v "step")
                [
                  set "delta" (v "delta" |! i 1);
                  set "vpdiff" (v "vpdiff" +! v "step");
                ];
              if_
                (v "sign" <>! i 0)
                [ set "valpred" (v "valpred" -! v "vpdiff") ]
                [ set "valpred" (v "valpred" +! v "vpdiff") ];
              set "valpred" (call "clamp16" [ v "valpred" ]);
              set "delta" (v "delta" |! v "sign");
              set "index"
                (call "clamp_idx" [ v "index" +! "idx_tab".%(v "delta") ]);
              sto "codes" (v "t") (v "delta");
            ];
        ];
      proc "decode" []
        [
          let_ "valpred" (i 0);
          let_ "index" (i 0);
          for_ "t" (i 0) (i n)
            [
              let_ "step" ("step_tab".%(v "index"));
              let_ "delta" ("codes".%(v "t") &! i 15);
              set "index"
                (call "clamp_idx" [ v "index" +! "idx_tab".%(v "delta") ]);
              let_ "sign" (v "delta" &! i 8);
              let_ "mag" (v "delta" &! i 7);
              let_ "vpdiff" (v "step" >>! i 3);
              when_
                ((v "mag" &! i 4) <>! i 0)
                [ set "vpdiff" (v "vpdiff" +! v "step") ];
              when_
                ((v "mag" &! i 2) <>! i 0)
                [ set "vpdiff" (v "vpdiff" +! (v "step" >>! i 1)) ];
              when_
                ((v "mag" &! i 1) <>! i 0)
                [ set "vpdiff" (v "vpdiff" +! (v "step" >>! i 2)) ];
              if_
                (v "sign" <>! i 0)
                [ set "valpred" (v "valpred" -! v "vpdiff") ]
                [ set "valpred" (v "valpred" +! v "vpdiff") ];
              set "valpred" (call "clamp16" [ v "valpred" ]);
              sto "pcm_out" (v "t") (v "valpred");
            ];
        ];
      fn ~eligible:false "main" [] ~ret:(Some Mlang.Ast.TInt)
        [ call_ "encode" []; call_ "decode" []; ret (i 0) ];
    ]

(* ------------------------------------------------------------------ *)

let build ~seed : App.built =
  let pcm = Workloads.Audio_gen.speech ~seed ~samples:n_samples in
  let prog = Mlang.Compile.to_ir (mlang_program pcm) in
  let expected = host_decode (host_encode pcm) in
  let score ~(golden : Sim.Interp.result) (r : Sim.Interp.result) =
    Fidelity.Byte_match.pct_equal
      (App.out_ints golden prog "pcm_out")
      (App.out_ints r prog "pcm_out")
  in
  let host_check (r : Sim.Interp.result) =
    let got = App.out_ints r prog "pcm_out" in
    if got = expected then Ok ()
    else Error "adpcm: compiled decode differs from host reference"
  in
  {
    App.app_name = "adpcm";
    prog;
    fidelity_name = "% samples correct";
    fidelity_units = "%";
    higher_is_better = true;
    threshold = Some 90.0;
    score;
    host_check;
  }

let app : App.t =
  {
    App.name = "adpcm";
    description =
      "IMA ADPCM speech encode/decode (4:1 compression), fidelity = % of \
       decoded samples matching the fault-free decode";
    source = "MiBench";
    build;
  }
