lib/core/fault_model.ml: Hashtbl Random Sim
