lib/sim/memory.mli: Ir Value
