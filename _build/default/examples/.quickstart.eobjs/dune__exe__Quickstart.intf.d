examples/quickstart.mli:
