(* Deterministic random source for workload generation. A thin wrapper
   over [Random.State] so every generated input is a pure function of
   its seed — campaigns and tests replay exactly. *)

type t = Random.State.t

let make seed = Random.State.make [| 0x57ab; seed |]
let split t tag = Random.State.make [| Random.State.bits t; tag |]
let int t bound = Random.State.int t bound
let range t lo hi = lo + Random.State.int t (hi - lo)
let float t bound = Random.State.float t bound
let bool t = Random.State.bool t
