(* MPEG (paper Table 1: "MPEG video encoding", fidelity = % frames not
   dropped). A reduced-scale MPEG-style codec with the structure the
   paper's analysis cares about: I frames intra-coded, P frames
   predicted from the previous reference, B frames bidirectionally
   predicted from the surrounding references, residuals through an
   8x8 integer DCT + flat quantizer, closed-loop reconstruction in the
   encoder and a separate decoder pass.

   A frame is "bad" when its decoded quality (SNR against the original
   input frame) drops more than 2 dB (I), 4 dB (P) or 6 dB (B) below
   the fault-free decode of the same frame; the fidelity threshold is
   10% bad frames. *)

let frame_w = 16
let frame_h = 16
let frame_px = frame_w * frame_h
let n_frames = 7

(* Display-order frame types and references. *)
let ftype = [| 0; 2; 2; 1; 2; 2; 1 |]  (* 0 = I, 1 = P, 2 = B *)
let ref1 = [| 0; 0; 0; 0; 3; 3; 3 |]   (* previous reference *)
let ref2 = [| 0; 3; 3; 0; 6; 6; 0 |]   (* next reference (B frames) *)
let coding_order = [| 0; 3; 1; 2; 6; 4; 5 |]

let quant_step = 16

(* 8-point orthonormal DCT basis scaled by 64:
   T.(u).(x) = round(64 * c(u) * cos((2x+1)u*pi/16)). Scale 64 keeps
   the worst-case two-stage product (~5e8) inside 32 bits, so the
   simulated 32-bit arithmetic matches the host exactly. *)
let dct_scale_shift = 12  (* two stages of x64 *)

let dct_t =
  let pi = 4.0 *. atan 1.0 in
  Array.init 8 (fun u ->
      Array.init 8 (fun x ->
          let c = if u = 0 then sqrt (1.0 /. 8.0) else 0.5 in
          int_of_float
            (Float.round
               (64.0 *. c *. cos ((2.0 *. float_of_int x +. 1.0) *. float_of_int u *. pi /. 16.0)))))

let dct_flat = Array.concat (Array.to_list dct_t)

(* ------------------------------------------------------------------ *)
(* Host reference implementation (exact integer mirror of the Mlang).  *)

(* Exact product; [ta]/[tb] transpose flags let one routine serve all
   four stage shapes. *)
let matmul (a : int array) (b : int array) ~ta ~tb =
  let out = Array.make 64 0 in
  for r = 0 to 7 do
    for c = 0 to 7 do
      let acc = ref 0 in
      for k = 0 to 7 do
        let av = if ta then a.((k * 8) + r) else a.((r * 8) + k) in
        let bv = if tb then b.((c * 8) + k) else b.((k * 8) + c) in
        acc := !acc + (av * bv)
      done;
      out.((r * 8) + c) <- !acc
    done
  done;
  out

let shift_round a =
  Array.map
    (fun x -> (x + (1 lsl (dct_scale_shift - 1))) asr dct_scale_shift)
    a

let fwd_dct blk =
  shift_round (matmul (matmul dct_flat blk ~ta:false ~tb:false) dct_flat ~ta:false ~tb:true)

let inv_dct coef =
  shift_round (matmul (matmul dct_flat coef ~ta:true ~tb:false) dct_flat ~ta:false ~tb:false)

let host_codec (frames : int array) =
  let recon = Array.make (n_frames * frame_px) 0 in
  let coefs = Array.make (n_frames * frame_px) 0 in
  let code_frame fi =
    let t = ftype.(fi) in
    List.iter
      (fun (by, bx) ->
        let blk = Array.make 64 0 and pred = Array.make 64 0 in
        for r = 0 to 7 do
          for c = 0 to 7 do
            let idx = ((by + r) * frame_w) + bx + c in
            let p =
              if t = 0 then 0
              else if t = 1 then recon.((ref1.(fi) * frame_px) + idx)
              else
                (recon.((ref1.(fi) * frame_px) + idx)
                + recon.((ref2.(fi) * frame_px) + idx))
                / 2
            in
            pred.((r * 8) + c) <- p;
            blk.((r * 8) + c) <- frames.((fi * frame_px) + idx) - p
          done
        done;
        let coef = fwd_dct blk in
        let q = Array.map (fun x -> x / quant_step) coef in
        let dq = Array.map (fun x -> x * quant_step) q in
        let res = inv_dct dq in
        for r = 0 to 7 do
          for c = 0 to 7 do
            let idx = ((by + r) * frame_w) + bx + c in
            coefs.((fi * frame_px) + idx) <- q.((r * 8) + c);
            recon.((fi * frame_px) + idx) <-
              App.clamp 0 255 (res.((r * 8) + c) + pred.((r * 8) + c))
          done
        done)
      [ (0, 0); (0, 8); (8, 0); (8, 8) ]
  in
  Array.iter code_frame coding_order;
  (* Decoder: same prediction structure over its own output. *)
  let decoded = Array.make (n_frames * frame_px) 0 in
  let decode_frame fi =
    let t = ftype.(fi) in
    List.iter
      (fun (by, bx) ->
        let q = Array.make 64 0 and pred = Array.make 64 0 in
        for r = 0 to 7 do
          for c = 0 to 7 do
            let idx = ((by + r) * frame_w) + bx + c in
            q.((r * 8) + c) <- coefs.((fi * frame_px) + idx);
            pred.((r * 8) + c) <-
              (if t = 0 then 0
               else if t = 1 then decoded.((ref1.(fi) * frame_px) + idx)
               else
                 (decoded.((ref1.(fi) * frame_px) + idx)
                 + decoded.((ref2.(fi) * frame_px) + idx))
                 / 2)
          done
        done;
        let res = inv_dct (Array.map (fun x -> x * quant_step) q) in
        for r = 0 to 7 do
          for c = 0 to 7 do
            let idx = ((by + r) * frame_w) + bx + c in
            decoded.((fi * frame_px) + idx) <-
              App.clamp 0 255 (res.((r * 8) + c) + pred.((r * 8) + c))
          done
        done)
      [ (0, 0); (0, 8); (8, 0); (8, 8) ]
  in
  Array.iter decode_frame coding_order;
  (coefs, recon, decoded)

(* ------------------------------------------------------------------ *)
(* The Mlang program.                                                  *)

let mlang_program (frames : int array) : Mlang.Ast.program =
  let open Mlang.Dsl in
  let a32 = App.ints_of_array in
  (* shared 8x8 scratch: blk (input/output), tmp, coef *)
  program
    [
      garray_init_b "frames_in" (a32 frames);
      garray "coefs" (n_frames * frame_px);
      garray_b "recon" (n_frames * frame_px);
      garray_b "decoded" (n_frames * frame_px);
      garray_init "dct_t" (a32 dct_flat);
      garray_init_b "ftype" (a32 ftype);
      garray_init_b "ref1" (a32 ref1);
      garray_init_b "ref2" (a32 ref2);
      garray_init_b "corder" (a32 coding_order);
      garray "blk" 64;
      garray "tmp" 64;
      garray "coef" 64;
      garray "pred" 64;
    ]
    [
      (* tmp = dct_t . blk, with >>14 rounding *)
      proc "mm_t_blk" []
        [
          for_ "r" (i 0) (i 8)
            [
              for_ "c" (i 0) (i 8)
                [
                  let_ "acc" (i 0);
                  for_ "k" (i 0) (i 8)
                    [
                      set "acc"
                        (v "acc"
                        +! ("dct_t".%((v "r" *! i 8) +! v "k")
                           *! "blk".%((v "k" *! i 8) +! v "c")));
                    ];
                  sto "tmp" ((v "r" *! i 8) +! v "c") (v "acc");
                ];
            ];
        ];
      (* coef = (tmp . dct_t^T) >> 14 *)
      proc "mm_tmp_tt" []
        [
          for_ "r" (i 0) (i 8)
            [
              for_ "c" (i 0) (i 8)
                [
                  let_ "acc" (i 0);
                  for_ "k" (i 0) (i 8)
                    [
                      set "acc"
                        (v "acc"
                        +! ("tmp".%((v "r" *! i 8) +! v "k")
                           *! "dct_t".%((v "c" *! i 8) +! v "k")));
                    ];
                  sto "coef" ((v "r" *! i 8) +! v "c")
                    ((v "acc" +! i 2048) >>>! i 12);
                ];
            ];
        ];
      (* tmp = dct_t^T . blk *)
      proc "mm_tt_blk" []
        [
          for_ "r" (i 0) (i 8)
            [
              for_ "c" (i 0) (i 8)
                [
                  let_ "acc" (i 0);
                  for_ "k" (i 0) (i 8)
                    [
                      set "acc"
                        (v "acc"
                        +! ("dct_t".%((v "k" *! i 8) +! v "r")
                           *! "blk".%((v "k" *! i 8) +! v "c")));
                    ];
                  sto "tmp" ((v "r" *! i 8) +! v "c") (v "acc");
                ];
            ];
        ];
      (* coef = (tmp . dct_t) >> 14 *)
      proc "mm_tmp_t" []
        [
          for_ "r" (i 0) (i 8)
            [
              for_ "c" (i 0) (i 8)
                [
                  let_ "acc" (i 0);
                  for_ "k" (i 0) (i 8)
                    [
                      set "acc"
                        (v "acc"
                        +! ("tmp".%((v "r" *! i 8) +! v "k")
                           *! "dct_t".%((v "k" *! i 8) +! v "c")));
                    ];
                  sto "coef" ((v "r" *! i 8) +! v "c")
                    ((v "acc" +! i 2048) >>>! i 12);
                ];
            ];
        ];
      (* Forward DCT of blk into coef; the intermediate product is not
         shifted (exact), only the final stage rounds — matching the
         host's matmul-then-shift pipeline. *)
      proc "fwd_dct" [] [ call_ "mm_t_blk" []; call_ "mm_tmp_tt" [] ];
      proc "inv_dct" [] [ call_ "mm_tt_blk" []; call_ "mm_tmp_t" [] ];
      fn "clamp255" [ p_int "x" ] ~ret:(Some Mlang.Ast.TInt)
        [
          when_ (v "x" <! i 0) [ ret (i 0) ];
          when_ (v "x" >! i 255) [ ret (i 255) ];
          ret (v "x");
        ];
      (* Prediction for pixel [idx] of frame [fi] out of buffer [which]
         (0 = recon, 1 = decoded). *)
      fn "predict" [ p_int "fi"; p_int "idx"; p_int "which" ]
        ~ret:(Some Mlang.Ast.TInt)
        [
          let_ "t" ("ftype".%(v "fi"));
          when_ (v "t" ==! i 0) [ ret (i 0) ];
          let_ "a" (i 0);
          let_ "b" (i 0);
          if_
            (v "which" ==! i 0)
            [
              set "a" ("recon".%((("ref1".%(v "fi")) *! i frame_px) +! v "idx"));
              set "b" ("recon".%((("ref2".%(v "fi")) *! i frame_px) +! v "idx"));
            ]
            [
              set "a"
                ("decoded".%((("ref1".%(v "fi")) *! i frame_px) +! v "idx"));
              set "b"
                ("decoded".%((("ref2".%(v "fi")) *! i frame_px) +! v "idx"));
            ];
          when_ (v "t" ==! i 1) [ ret (v "a") ];
          ret ((v "a" +! v "b") /! i 2);
        ];
      proc "code_block" [ p_int "fi"; p_int "by"; p_int "bx" ]
        [
          for_ "r" (i 0) (i 8)
            [
              for_ "c" (i 0) (i 8)
                [
                  let_ "idx" (((v "by" +! v "r") *! i frame_w) +! v "bx" +! v "c");
                  let_ "p" (call "predict" [ v "fi"; v "idx"; i 0 ]);
                  sto "pred" ((v "r" *! i 8) +! v "c") (v "p");
                  sto "blk" ((v "r" *! i 8) +! v "c")
                    ("frames_in".%((v "fi" *! i frame_px) +! v "idx") -! v "p");
                ];
            ];
          call_ "fwd_dct" [];
          (* quantize into coefs, dequantize into blk *)
          for_ "k" (i 0) (i 64)
            [
              let_ "q" ("coef".%(v "k") /! i quant_step);
              sto "coef" (v "k") (v "q" *! i quant_step);
              sto "blk" (v "k") (v "q");
            ];
          (* stash quantized values: blk holds q, coef holds dq *)
          for_ "k" (i 0) (i 64) [ sto "tmp" (v "k") ("blk".%(v "k")) ];
          for_ "k" (i 0) (i 64) [ sto "blk" (v "k") ("coef".%(v "k")) ];
          for_ "r" (i 0) (i 8)
            [
              for_ "c" (i 0) (i 8)
                [
                  let_ "idx" (((v "by" +! v "r") *! i frame_w) +! v "bx" +! v "c");
                  sto "coefs" ((v "fi" *! i frame_px) +! v "idx")
                    ("tmp".%((v "r" *! i 8) +! v "c"));
                ];
            ];
          call_ "inv_dct" [];
          for_ "r" (i 0) (i 8)
            [
              for_ "c" (i 0) (i 8)
                [
                  let_ "idx" (((v "by" +! v "r") *! i frame_w) +! v "bx" +! v "c");
                  let_ "k" ((v "r" *! i 8) +! v "c");
                  sto "recon" ((v "fi" *! i frame_px) +! v "idx")
                    (call "clamp255" [ "coef".%(v "k") +! "pred".%(v "k") ]);
                ];
            ];
        ];
      proc "decode_block" [ p_int "fi"; p_int "by"; p_int "bx" ]
        [
          for_ "r" (i 0) (i 8)
            [
              for_ "c" (i 0) (i 8)
                [
                  let_ "idx" (((v "by" +! v "r") *! i frame_w) +! v "bx" +! v "c");
                  let_ "k" ((v "r" *! i 8) +! v "c");
                  sto "pred" (v "k") (call "predict" [ v "fi"; v "idx"; i 1 ]);
                  sto "blk" (v "k")
                    ("coefs".%((v "fi" *! i frame_px) +! v "idx")
                    *! i quant_step);
                ];
            ];
          call_ "inv_dct" [];
          for_ "r" (i 0) (i 8)
            [
              for_ "c" (i 0) (i 8)
                [
                  let_ "idx" (((v "by" +! v "r") *! i frame_w) +! v "bx" +! v "c");
                  let_ "k" ((v "r" *! i 8) +! v "c");
                  sto "decoded" ((v "fi" *! i frame_px) +! v "idx")
                    (call "clamp255" [ "coef".%(v "k") +! "pred".%(v "k") ]);
                ];
            ];
        ];
      proc "encode" []
        [
          for_ "ci" (i 0) (i n_frames)
            [
              let_ "fi" ("corder".%(v "ci"));
              call_ "code_block" [ v "fi"; i 0; i 0 ];
              call_ "code_block" [ v "fi"; i 0; i 8 ];
              call_ "code_block" [ v "fi"; i 8; i 0 ];
              call_ "code_block" [ v "fi"; i 8; i 8 ];
            ];
        ];
      proc "decode" []
        [
          for_ "ci" (i 0) (i n_frames)
            [
              let_ "fi" ("corder".%(v "ci"));
              call_ "decode_block" [ v "fi"; i 0; i 0 ];
              call_ "decode_block" [ v "fi"; i 0; i 8 ];
              call_ "decode_block" [ v "fi"; i 8; i 0 ];
              call_ "decode_block" [ v "fi"; i 8; i 8 ];
            ];
        ];
      fn ~eligible:false "main" [] ~ret:(Some Mlang.Ast.TInt)
        [ call_ "encode" []; call_ "decode" []; ret (i 0) ];
    ]

(* ------------------------------------------------------------------ *)

let frame_of array fi = Array.sub array (fi * frame_px) frame_px

let loss_thresholds = [| 2.0; 4.0; 6.0 |]  (* indexed by ftype: I, P, B *)

(* % of frames whose decoded quality (vs. the original input) dropped
   more than the type-specific threshold below the fault-free decode. *)
let pct_bad_frames ~(original : int array) ~(golden_dec : int array)
    ~(dec : int array) =
  let bad = ref 0 in
  for fi = 0 to n_frames - 1 do
    let orig = frame_of original fi in
    let gold_snr = Fidelity.Snr.snr_db orig (frame_of golden_dec fi) in
    let got_snr = Fidelity.Snr.snr_db orig (frame_of dec fi) in
    if gold_snr -. got_snr > loss_thresholds.(ftype.(fi)) then incr bad
  done;
  100.0 *. float_of_int !bad /. float_of_int n_frames

let build ~seed : App.built =
  let video =
    Workloads.Image_gen.video ~seed ~width:frame_w ~height:frame_h
      ~frames:n_frames
  in
  let frames =
    Array.concat
      (List.map (fun im -> im.Workloads.Image_gen.pixels) video)
  in
  let prog = Mlang.Compile.to_ir (mlang_program frames) in
  let expected_coefs, expected_recon, expected_dec = host_codec frames in
  let score ~(golden : Sim.Interp.result) (r : Sim.Interp.result) =
    pct_bad_frames ~original:frames
      ~golden_dec:(App.out_ints golden prog "decoded")
      ~dec:(App.out_ints r prog "decoded")
  in
  let host_check (r : Sim.Interp.result) =
    if App.out_ints r prog "coefs" <> expected_coefs then
      Error "mpeg: coefficients differ from host reference"
    else if App.out_ints r prog "recon" <> expected_recon then
      Error "mpeg: reconstruction differs from host reference"
    else if App.out_ints r prog "decoded" <> expected_dec then
      Error "mpeg: decode differs from host reference"
    else Ok ()
  in
  {
    App.app_name = "mpeg";
    prog;
    fidelity_name = "% bad frames";
    fidelity_units = "%";
    higher_is_better = false;
    threshold = Some 10.0;
    score;
    host_check;
  }

let app : App.t =
  {
    App.name = "mpeg";
    description =
      "MPEG-style video codec (I/P/B frames, 8x8 integer DCT, closed-loop \
       encoder + decoder); fidelity = % bad frames (type-weighted SNR loss)";
    source = "derived from the MPEG-2 reference structure (paper: SPEC/\
              mediabench-style MPEG)";
    build;
  }
