(* Unit and property tests for the IR: registers, instruction def/use
   structure, function assembly, CFG construction, validation and
   layout. *)

open Ir

let reg = Alcotest.testable Reg.pp Reg.equal

(* ------------------------------------------------------------------ *)
(* Registers.                                                          *)

let test_reg_basics () =
  Alcotest.check reg "int reg" (Reg.Int 3) (Reg.int 3);
  Alcotest.check reg "flt reg" (Reg.Flt 2) (Reg.flt 2);
  Alcotest.(check bool) "is_int" true (Reg.is_int (Reg.int 0));
  Alcotest.(check bool) "is_flt" true (Reg.is_flt (Reg.flt 0));
  Alcotest.(check int) "index" 7 (Reg.index (Reg.int 7));
  Alcotest.(check string) "to_string int" "$r4" (Reg.to_string (Reg.int 4));
  Alcotest.(check string) "to_string flt" "$f1" (Reg.to_string (Reg.flt 1))

let test_reg_set_distinguishes_banks () =
  let s = Reg.Set.of_list [ Reg.int 1; Reg.flt 1 ] in
  Alcotest.(check int) "banks distinct" 2 (Reg.Set.cardinal s)

(* ------------------------------------------------------------------ *)
(* Instruction def/use.                                                *)

let r0 = Reg.int 0
let r1 = Reg.int 1
let r2 = Reg.int 2
let f0 = Reg.flt 0
let f1 = Reg.flt 1

let test_def_use () =
  let check_du instr ~def ~uses =
    Alcotest.(check (option reg)) "def" def (Instr.def instr);
    Alcotest.(check (list reg)) "uses" uses (Instr.uses instr)
  in
  check_du (Instr.Li (r0, 5l)) ~def:(Some r0) ~uses:[];
  check_du (Instr.Bin (Instr.Add, r0, r1, r2)) ~def:(Some r0) ~uses:[ r1; r2 ];
  check_du (Instr.Lw (r0, r1, 4)) ~def:(Some r0) ~uses:[ r1 ];
  check_du (Instr.Sw (r0, r1, 0)) ~def:None ~uses:[ r0; r1 ];
  check_du (Instr.Lb (r0, r1, 3)) ~def:(Some r0) ~uses:[ r1 ];
  check_du (Instr.Sb (r0, r1, 3)) ~def:None ~uses:[ r0; r1 ];
  check_du (Instr.Br (Instr.Lt, r0, r1, "l")) ~def:None ~uses:[ r0; r1 ];
  check_du (Instr.Fbin (Instr.Fadd, f0, f1, f1)) ~def:(Some f0) ~uses:[ f1; f1 ];
  check_du (Instr.Fcmp (Instr.Le, r0, f0, f1)) ~def:(Some r0) ~uses:[ f0; f1 ];
  check_du
    (Instr.Call { dst = Some r0; func = "f"; args = [ r1; f0 ] })
    ~def:(Some r0) ~uses:[ r1; f0 ];
  check_du (Instr.Ret (Some r2)) ~def:None ~uses:[ r2 ]

let test_addr_uses () =
  Alcotest.(check (list reg)) "lw addr" [ r1 ] (Instr.addr_uses (Instr.Lw (r0, r1, 0)));
  Alcotest.(check (list reg)) "sw addr" [ r1 ] (Instr.addr_uses (Instr.Sw (r0, r1, 0)));
  Alcotest.(check (list reg)) "add none" [] (Instr.addr_uses (Instr.Bin (Instr.Add, r0, r1, r2)))

let test_stored_value () =
  Alcotest.(check (option reg)) "sw value" (Some r0)
    (Instr.stored_value (Instr.Sw (r0, r1, 0)));
  Alcotest.(check (option reg)) "lw none" None
    (Instr.stored_value (Instr.Lw (r0, r1, 0)))

let test_control_predicates () =
  Alcotest.(check bool) "br control" true (Instr.is_control (Instr.Jmp "x"));
  Alcotest.(check bool) "ret control" true (Instr.is_control (Instr.Ret None));
  Alcotest.(check bool) "add not" false
    (Instr.is_control (Instr.Bin (Instr.Add, r0, r1, r2)));
  Alcotest.(check bool) "call not control" false
    (Instr.is_control (Instr.Call { dst = None; func = "f"; args = [] }))

(* ------------------------------------------------------------------ *)
(* Functions and labels.                                               *)

let test_func_labels () =
  let f =
    Func.make ~name:"f" ~params:[] ~ret:None
      [ Instr.Label "a"; Instr.Jmp "a"; Instr.Ret None ]
  in
  Alcotest.(check int) "label index" 0 (Func.label_index f "a");
  Alcotest.(check int) "length" 3 (Func.length f)

let test_func_duplicate_label () =
  Alcotest.check_raises "duplicate label"
    (Func.Invalid "function f: duplicate label a") (fun () ->
      ignore
        (Func.make ~name:"f" ~params:[] ~ret:None
           [ Instr.Label "a"; Instr.Label "a"; Instr.Ret None ]))

let test_func_undefined_label () =
  Alcotest.check_raises "undefined label"
    (Func.Invalid "function f: undefined label nope") (fun () ->
      ignore
        (Func.make ~name:"f" ~params:[] ~ret:None
           [ Instr.Jmp "nope"; Instr.Ret None ]))

let test_func_register_counts () =
  let f =
    Func.make ~name:"f" ~params:[ Reg.int 0; Reg.flt 0 ] ~ret:None
      [ Instr.Bin (Instr.Add, Reg.int 5, Reg.int 0, Reg.int 0); Instr.Ret None ]
  in
  Alcotest.(check int) "int regs" 6 f.Func.n_int_regs;
  Alcotest.(check int) "flt regs" 1 f.Func.n_flt_regs

(* ------------------------------------------------------------------ *)
(* CFG.                                                                *)

let diamond_func () =
  (* if r0 then r1 = 1 else r1 = 2; ret r1 *)
  Func.make ~name:"d" ~params:[ r0 ] ~ret:(Some Ty.I32)
    [
      Instr.Brz (Instr.Eq, r0, "else");  (* 0: block A *)
      Instr.Li (r1, 1l);                 (* 1: block B *)
      Instr.Jmp "end";
      Instr.Label "else";                (* 3: block C *)
      Instr.Li (r1, 2l);
      Instr.Label "end";                 (* 5: block D *)
      Instr.Ret (Some r1);
    ]

let test_cfg_diamond () =
  let cfg = Cfg.build (diamond_func ()) in
  Alcotest.(check int) "4 blocks" 4 (Cfg.n_blocks cfg);
  let sorted l = List.sort compare l in
  Alcotest.(check (list int)) "A succs" [ 1; 2 ]
    (sorted (Cfg.block cfg 0).Cfg.succs);
  Alcotest.(check (list int)) "B succs" [ 3 ] (Cfg.block cfg 1).Cfg.succs;
  Alcotest.(check (list int)) "C succs" [ 3 ] (Cfg.block cfg 2).Cfg.succs;
  Alcotest.(check (list int)) "D succs" [] (Cfg.block cfg 3).Cfg.succs;
  Alcotest.(check (list int)) "D preds" [ 1; 2 ]
    (sorted (Cfg.block cfg 3).Cfg.preds)

let test_cfg_loop () =
  let f =
    Func.make ~name:"l" ~params:[ r0 ] ~ret:None
      [
        Instr.Label "head";
        Instr.Brz (Instr.Le, r0, "exit");
        Instr.Bini (Instr.Sub, r0, r0, 1l);
        Instr.Jmp "head";
        Instr.Label "exit";
        Instr.Ret None;
      ]
  in
  let cfg = Cfg.build f in
  Alcotest.(check int) "3 blocks" 3 (Cfg.n_blocks cfg);
  Alcotest.(check bool) "back edge" true
    (List.mem 0 (Cfg.block cfg 1).Cfg.succs)

let test_cfg_rpo_starts_at_entry () =
  let cfg = Cfg.build (diamond_func ()) in
  match Cfg.reverse_postorder cfg with
  | 0 :: _ -> ()
  | _ -> Alcotest.fail "rpo must start at entry"

(* Property: blocks partition the body; preds/succs are dual. *)
let random_cfg_prop =
  QCheck.Test.make ~name:"cfg partition and duality" ~count:200
    QCheck.(pair (int_bound 20) (int_bound 1000))
    (fun (n_branch, seed) ->
      let rng = Random.State.make [| seed |] in
      let n = 5 + Random.State.int rng 30 in
      let body = ref [] in
      for i = 0 to n - 1 do
        body := Instr.Label (Printf.sprintf "L%d" i) :: !body;
        let roll = Random.State.int rng 4 in
        let instr =
          if roll = 0 && n_branch > 0 then
            Instr.Br
              (Instr.Lt, r0, r1, Printf.sprintf "L%d" (Random.State.int rng n))
          else if roll = 1 then
            Instr.Jmp (Printf.sprintf "L%d" (Random.State.int rng n))
          else Instr.Bini (Instr.Add, r0, r0, 1l)
        in
        body := instr :: !body
      done;
      body := Instr.Ret None :: !body;
      let f =
        Func.make ~name:"rand" ~params:[ r0; r1 ] ~ret:None (List.rev !body)
      in
      let cfg = Cfg.build f in
      (* partition: every body index belongs to exactly one block range *)
      let covered = Array.make (Func.length f) 0 in
      Array.iter
        (fun blk ->
          for i = blk.Cfg.lo to blk.Cfg.hi do
            covered.(i) <- covered.(i) + 1
          done)
        cfg.Cfg.blocks;
      let partition_ok = Array.for_all (fun c -> c = 1) covered in
      (* duality: s in succs(b) iff b in preds(s) *)
      let dual_ok = ref true in
      Array.iter
        (fun blk ->
          List.iter
            (fun s ->
              if not (List.mem blk.Cfg.id (Cfg.block cfg s).Cfg.preds) then
                dual_ok := false)
            blk.Cfg.succs)
        cfg.Cfg.blocks;
      partition_ok && !dual_ok)

(* ------------------------------------------------------------------ *)
(* Program and layout.                                                 *)

let test_prog_layout () =
  let g1 = Prog.global "a" Ty.I32 3 in
  let g2 = Prog.global "b" Ty.F64 2 in
  let g3 = Prog.global "c" Ty.I8 5 in  (* 5 bytes -> 8 bytes padded *)
  let g4 = Prog.global "d" Ty.I32 1 in
  let main =
    Func.make ~name:"main" ~params:[] ~ret:None [ Instr.Ret None ]
  in
  let p = Prog.make ~globals:[ g1; g2; g3; g4 ] [ main ] in
  Alcotest.(check int) "a at 4" 4 (Prog.global_addr p "a");
  Alcotest.(check int) "b after a" 16 (Prog.global_addr p "b");
  Alcotest.(check int) "c after b" 24 (Prog.global_addr p "c");
  Alcotest.(check int) "d word-aligned after c" 32 (Prog.global_addr p "d");
  let _, total = Prog.layout p in
  Alcotest.(check int) "total" 36 total

let test_prog_duplicate_function () =
  let f = Func.make ~name:"main" ~params:[] ~ret:None [ Instr.Ret None ] in
  Alcotest.check_raises "duplicate" (Prog.Invalid "duplicate function main")
    (fun () -> ignore (Prog.make ~globals:[] [ f; f ]))

let test_prog_missing_entry () =
  let f = Func.make ~name:"helper" ~params:[] ~ret:None [ Instr.Ret None ] in
  Alcotest.check_raises "no entry" (Prog.Invalid "missing entry function main")
    (fun () -> ignore (Prog.make ~globals:[] [ f ]))

let test_byte_global_range () =
  Alcotest.check_raises "byte range"
    (Prog.Invalid "global g: byte init out of range") (fun () ->
      ignore (Prog.global ~init:(Prog.Int_data [| 256l |]) "g" Ty.I8 1))

(* ------------------------------------------------------------------ *)
(* Validation.                                                         *)

let valid_prog body =
  let f = Func.make ~name:"main" ~params:[] ~ret:None body in
  Prog.make ~globals:[ Prog.global "g" Ty.I32 4 ] [ f ]

let test_validate_ok () =
  let p =
    valid_prog
      [ Instr.La (r0, "g"); Instr.Li (r1, 7l); Instr.Sw (r1, r0, 0); Instr.Ret None ]
  in
  Alcotest.(check int) "no errors" 0 (List.length (Validate.check p))

let expect_invalid name body =
  let p = valid_prog body in
  match Validate.check p with
  | [] -> Alcotest.failf "%s: expected a validation error" name
  | _ -> ()

let test_validate_errors () =
  expect_invalid "bank mismatch alu"
    [ Instr.Bin (Instr.Add, f0, r0, r1); Instr.Ret None ];
  expect_invalid "bank mismatch fpu"
    [ Instr.Fbin (Instr.Fadd, r0, f0, f1); Instr.Ret None ];
  expect_invalid "unknown global" [ Instr.La (r0, "nope"); Instr.Ret None ];
  expect_invalid "unknown callee"
    [ Instr.Call { dst = None; func = "nope"; args = [] }; Instr.Ret None ];
  expect_invalid "unaligned offset" [ Instr.Lw (r0, r1, 2); Instr.Ret None ];
  expect_invalid "ret value in void" [ Instr.Ret (Some r0) ];
  expect_invalid "falls off end" [ Instr.Li (r0, 1l) ]

let test_validate_call_arity () =
  let callee =
    Func.make ~name:"callee" ~params:[ r0; r1 ] ~ret:(Some Ty.I32)
      [ Instr.Ret (Some r0) ]
  in
  let main =
    Func.make ~name:"main" ~params:[] ~ret:None
      [
        Instr.Li (r0, 1l);
        Instr.Call { dst = None; func = "callee"; args = [ r0 ] };
        Instr.Ret None;
      ]
  in
  let p = Prog.make ~globals:[] [ main; callee ] in
  (* arity mismatch AND ignored-return is legal; arity must error *)
  Alcotest.(check bool) "arity error" true (List.length (Validate.check p) >= 1)

(* ------------------------------------------------------------------ *)
(* Assembler.                                                          *)

let asm_source = {|
; a tiny program in surface syntax
global data : i32[4]
global img  : u8[16]

func helper($r0:i32) -> i32:   ; protected
  addi  $r1, $r0, 5
  ret   $r1

func main() -> i32:
  li    $r0, 3
  $r1 = call  helper($r0)
loop:
  subi  $r1, $r1, 1
  bgtz  $r1, loop
  la    $r2, data
  sw    $r1, 4($r2)
  ret   $r1
|}

let test_asm_parse_and_run () =
  let prog = Ir.Asm.parse_program asm_source in
  Validate.check_exn prog;
  let helper = Prog.get_func prog "helper" in
  Alcotest.(check bool) "protected comment" false helper.Func.eligible;
  let r = Sim.Interp.run_exn (Sim.Code.of_prog prog) in
  match r.Sim.Interp.outcome with
  | Sim.Interp.Done (Some (Sim.Value.I 0)) -> ()
  | _ -> Alcotest.fail "expected loop to count down to 0"

let exercise_all_instrs () =
  (* one function touching every instruction form the printer emits *)
  Func.make ~name:"main" ~params:[ r0; f0 ] ~ret:(Some Ty.I32)
    [
      Instr.Li (r1, -7l);
      Instr.Lf (f1, 1.5);
      Instr.La (r2, "g");
      Instr.Mov (r1, r2);
      Instr.Bin (Instr.Xor, r1, r1, r2);
      Instr.Bini (Instr.Sra, r1, r1, 2l);
      Instr.Cmp (Instr.Le, r1, r1, r2);
      Instr.Fbin (Instr.Fdiv, f1, f0, f1);
      Instr.Fun_ (Instr.Fsqrt, f1, f1);
      Instr.Fcmp (Instr.Ge, r1, f0, f1);
      Instr.I2f (f1, r1);
      Instr.F2i (r1, f1);
      Instr.Lw (r1, r2, 8);
      Instr.Sw (r1, r2, -4);
      Instr.Lb (r1, r2, 3);
      Instr.Sb (r1, r2, 3);
      Instr.Lwf (f1, r2, 0);
      Instr.Swf (f1, r2, 0);
      Instr.Label "l";
      Instr.Br (Instr.Ne, r1, r2, "l");
      Instr.Brz (Instr.Gt, r1, "l");
      Instr.Call { dst = Some r1; func = "main"; args = [ r1; f1 ] };
      Instr.Call { dst = None; func = "main"; args = [ r1; f1 ] };
      Instr.Nop;
      Instr.Jmp "l";
      Instr.Ret (Some r1);
    ]

let test_asm_roundtrip () =
  let f = exercise_all_instrs () in
  let prog = Prog.make ~globals:[ Prog.global "g" Ty.I32 4 ] [ f ] in
  let printed = Format.asprintf "%a" Prog.pp prog in
  let reparsed = Ir.Asm.parse_program printed in
  let reprinted = Format.asprintf "%a" Prog.pp reparsed in
  Alcotest.(check string) "print/parse/print fixpoint" printed reprinted

let test_asm_errors () =
  let expect_err src =
    match Ir.Asm.parse_program_res src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" src
  in
  expect_err "func main() -> i32:\n  bogus $r0\n  ret $r0";
  expect_err "li $r0, 1";  (* instruction outside a function *)
  expect_err "global g : i32[0]\nfunc main():\n  ret";
  expect_err "func main() -> i32:\n  li $rX, 1\n  ret $r0"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ir"
    [
      ( "reg",
        [
          Alcotest.test_case "basics" `Quick test_reg_basics;
          Alcotest.test_case "set distinguishes banks" `Quick
            test_reg_set_distinguishes_banks;
        ] );
      ( "instr",
        [
          Alcotest.test_case "def/use" `Quick test_def_use;
          Alcotest.test_case "addr uses" `Quick test_addr_uses;
          Alcotest.test_case "stored value" `Quick test_stored_value;
          Alcotest.test_case "control predicates" `Quick
            test_control_predicates;
        ] );
      ( "func",
        [
          Alcotest.test_case "labels" `Quick test_func_labels;
          Alcotest.test_case "duplicate label" `Quick test_func_duplicate_label;
          Alcotest.test_case "undefined label" `Quick test_func_undefined_label;
          Alcotest.test_case "register counts" `Quick test_func_register_counts;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "diamond" `Quick test_cfg_diamond;
          Alcotest.test_case "loop" `Quick test_cfg_loop;
          Alcotest.test_case "rpo entry" `Quick test_cfg_rpo_starts_at_entry;
          QCheck_alcotest.to_alcotest random_cfg_prop;
        ] );
      ( "prog",
        [
          Alcotest.test_case "layout" `Quick test_prog_layout;
          Alcotest.test_case "duplicate function" `Quick
            test_prog_duplicate_function;
          Alcotest.test_case "missing entry" `Quick test_prog_missing_entry;
          Alcotest.test_case "byte global range" `Quick test_byte_global_range;
        ] );
      ( "asm",
        [
          Alcotest.test_case "parse and run" `Quick test_asm_parse_and_run;
          Alcotest.test_case "print/parse roundtrip" `Quick test_asm_roundtrip;
          Alcotest.test_case "errors" `Quick test_asm_errors;
        ] );
      ( "validate",
        [
          Alcotest.test_case "accepts valid" `Quick test_validate_ok;
          Alcotest.test_case "rejects invalid" `Quick test_validate_errors;
          Alcotest.test_case "call arity" `Quick test_validate_call_arity;
        ] );
    ]
