(** Fault-injection campaigns: the experimental loop of the paper.

    Typical use:
    {[
      let target = Campaign.of_prog prog in
      let prepared = Campaign.prepare target Policy.Protect_control in
      let summary = Campaign.run prepared ~errors:20 ~trials:40 ~seed:7 in
      Campaign.pct_catastrophic summary
    ]} *)

type target = {
  code : Sim.Code.t;
  tagging : Tagging.t;
  baseline : Sim.Interp.result;  (** fault-free run, with exec counts *)
  lenient : bool;  (** sim-safe sparse-memory model for injected runs *)
  profile_memo : (bool array array, int) Hashtbl.t;
      (** policy mask -> injectable pool size; lets {!prepare} share one
          profiling run across policies with identical masks *)
}

type prepared = {
  target : target;
  policy : Policy.t;
  tags : bool array array;
  injectable_total : int;
      (** dynamic executions of injectable instructions (profiling) *)
  budget : int;  (** timeout bound: 10x the fault-free dynamic count *)
}

type trial = {
  index : int;
  outcome : Outcome.t;
  faults_requested : int;
  faults_landed : int;
}

type summary = {
  trials : trial list;
  n : int;
  crashes : int;
  infinite : int;
  completed : int;
}

val timeout_factor : int

val of_prog :
  ?protect_addresses:bool -> ?lenient:bool -> Ir.Prog.t -> target
(** Compile, tag and run the fault-free baseline. [lenient] defaults to
    [true] — the SimpleScalar sim-safe memory model the paper used. *)

val prepare : target -> Policy.t -> prepared
(** Profiling pass: count injectable dynamic instructions under the
    policy. Memoized per target on the policy mask, so repeated calls
    (and distinct policies with equal masks) pay for one run. Not
    domain-safe: call from one domain at a time. *)

val run_trial :
  prepared -> errors:int -> rng:Random.State.t -> index:int -> trial

val run :
  ?jobs:int -> prepared -> errors:int -> trials:int -> seed:int -> summary
(** Deterministic: trial [i] uses an RNG derived from
    [(seed, i, errors, policy)] via {!Policy.seed_tag}, so trials are
    order-independent. [jobs] fans the trials out over that many
    domains (default [Domain.recommended_domain_count () - 1], clamped
    to [\[1, trials\]]); the summary is identical for every [jobs]
    value, assembled in trial-index order. *)

val pct_catastrophic : summary -> float

val fidelities : summary -> score:(Sim.Interp.result -> float) -> float list
(** Scores of the completed trials only. *)

val mean : float list -> float
(** Arithmetic mean; [nan] on the empty list. *)
