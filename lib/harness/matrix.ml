(* Spec-driven sweep runner: apps x policies x error counts, every cell
   routed through the campaign result cache (Core.Memo).

   Shape of a run (see DESIGN.md §16):

   1. each distinct app loads/compiles ONCE, loads fanned over the
      domain pool;
   2. each distinct (app, policy) with a non-empty injectable pool is
      prepared once, and its section partition (Memo.sections_of) is
      computed once and shared by every error-count cell on it;
   3. cells fan out over the pool with inner [~jobs:1] (the pool runs
      jobs=1 work inline on the calling domain, so campaigns inside
      pool workers never nest domain spawns);
   4. every cell gets a typed status — [Ok] with its summary and cache
      stats, [Skipped] with a reason, or [Failed] with the error — so
      a sweep never yields silent partial results.

   Cells use campaign seed [spec.seed + 100] and the app's own scorer
   against the mode's golden baseline: exactly the configuration of
   [etap inject --incremental], so a matrix cell's summary is
   bit-identical to the equivalent standalone run and the two share
   cache entries. *)

type spec = {
  apps : string list;
  mode : Experiment.mode;
  policies : Core.Policy.t list;
  errors : int list;
  trials : int;
  seed : int;
}

let default_policies = [ Core.Policy.Protect_control; Core.Policy.Protect_nothing ]
let default_errors = [ 1; 5; 20 ]

let default_spec =
  {
    apps = List.map (fun (a : Apps.App.t) -> a.Apps.App.name) Apps.Registry.all;
    mode = Experiment.Full;
    policies = default_policies;
    errors = default_errors;
    trials = 20;
    seed = 1;
  }

type cell_spec = {
  app : string;
  mode : Experiment.mode;
  policy : Core.Policy.t;
  errors : int;
  trials : int;
  seed : int;
}

type cell_ok = {
  summary : Core.Campaign.summary;
  cache : Core.Memo.stats;
  pool : int;  (* injectable pool size under the cell's tag mask *)
  fidelity_units : string;
}

(* The cell status model: one constructor per requested cell, always.
   [Skipped] is for cells that are structurally not runnable (empty
   injectable pool — nothing to inject into); [Failed] captures any
   exception a cell raised. A single [Failed] cell makes the whole
   sweep exit non-zero (see bin/etap.ml). *)
type status =
  | Ok of cell_ok
  | Skipped of string
  | Failed of string

type cell = { cell : cell_spec; status : status }

type result = {
  spec : spec;
  cells : cell list;  (* one per requested cell, spec order *)
  load_s : float;  (* wall: loading the distinct apps (once each) *)
  wall_s : float;
}

let cell_label (c : cell_spec) =
  Printf.sprintf "%s/%s/%s e=%d t=%d" c.app
    (Experiment.mode_name c.mode)
    (Core.Policy.to_string c.policy)
    c.errors c.trials

let status_kind = function
  | Ok _ -> "ok"
  | Skipped _ -> "skipped"
  | Failed _ -> "failed"

(* Requested cells in deterministic spec order: app-major, then policy,
   then error count. Duplicates in the spec stay duplicates here —
   every requested cell appears in the output exactly once per
   request. *)
let cells_of_spec (s : spec) : cell_spec list =
  List.concat_map
    (fun app ->
      List.concat_map
        (fun policy ->
          List.map
            (fun errors ->
              {
                app;
                mode = s.mode;
                policy;
                errors;
                trials = s.trials;
                seed = s.seed;
              })
            s.errors)
        s.policies)
    s.apps

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

(* Shared per-cell execution path. Both schedulers — the one-shot sweep
   below and the serve daemon's executor — route cells through here, so
   a cell's summary cannot depend on who scheduled it. [lookup] resolves
   an app name to its loaded context (None = unknown app, a Failed
   cell); [prepared_of] resolves (app, policy) to the injectable pool
   size and, for non-empty pools, the prepared target plus its shared
   section partition. [memo_fanout] forwards to {!Core.Memo.run}'s
   external-scheduler entry; inner jobs stays pinned to 1 either way
   (trials run inline on whichever worker owns the cell). *)
let exec_cell
    ~(lookup : string -> Experiment.loaded option)
    ~(prepared_of :
       string ->
       Core.Policy.t ->
       int * (Core.Campaign.prepared * Analysis.Section.t) option)
    ?memo_fanout ~(store : Core.Memo.Store.t) (c : cell_spec) : status =
  match lookup c.app with
  | None -> Failed (Printf.sprintf "unknown application %S" c.app)
  | Some l -> (
    match prepared_of c.app c.policy with
    | 0, _ | _, None -> Skipped "empty injectable pool"
    | pool, Some (p, sections) ->
      let b = l.Experiment.built in
      let target = l.Experiment.target c.mode in
      let golden = target.Core.Campaign.baseline in
      let score r = b.Apps.App.score ~golden r in
      let summary, cache =
        Core.Memo.run ~jobs:1 ?fanout:memo_fanout ~score ~salt:c.app
          ~sections ~store p ~errors:c.errors ~trials:c.trials
          ~seed:(c.seed + 100)
      in
      Ok { summary; cache; pool; fidelity_units = b.Apps.App.fidelity_units })

(* [exec_cell] under the typed-status contract: any exception a cell
   raises becomes its [Failed] status, and every cell records a
   [matrix.cell] span. *)
let run_cell ~lookup ~prepared_of ?memo_fanout ~store (c : cell_spec) : status
    =
  let t0 = Obs.span_begin () in
  let status =
    try exec_cell ~lookup ~prepared_of ?memo_fanout ~store c
    with e -> Failed (Printexc.to_string e)
  in
  Obs.span_end ~name:"matrix.cell" ~cat:"matrix"
    ~args:[ ("cell", cell_label c); ("status", status_kind status) ]
    t0;
  status

(* Cell-status counters, recorded on the calling domain after
   collection so they are jobs-invariant like every other counter in
   the tree. A cell is a "hit" when the cache served every one of its
   trials. *)
let record_counters (cells : cell list) =
  List.iter
    (fun { status; _ } ->
      match status with
      | Ok ok ->
        if ok.cache.Core.Memo.trials_run = 0 then Obs.count "matrix.cells_hit" 1
        else Obs.count "matrix.cells_miss" 1
      | Skipped _ -> Obs.count "matrix.cells_skipped" 1
      | Failed _ -> Obs.count "matrix.cells_failed" 1)
    cells

let run ?jobs ?engine ?checkpoint_stride ~(store : Core.Memo.Store.t) (s : spec)
    : result =
  let t_run = Unix.gettimeofday () in
  let sp = Obs.span_begin () in
  let cells = cells_of_spec s in
  (* Load each distinct known app exactly once, loads fanned across
     the pool. Unknown names never load — their cells fail below. *)
  let names = dedup s.apps in
  let known =
    List.filter_map
      (fun n ->
        Option.map (fun a -> (n, a)) (Apps.Registry.find n))
      names
  in
  let t_load = Unix.gettimeofday () in
  let loaded =
    Core.Pool.map_list ?jobs
      (fun (n, app) ->
        (n, Experiment.load ~seed:s.seed ?engine ?checkpoint_stride app))
      known
  in
  let load_s = Unix.gettimeofday () -. t_load in
  (* Prepare each distinct (app, policy) once — but only when its
     injectable pool is non-empty. Empty-pool combos (e.g. protect-all,
     or adpcm under protect-control) skip the checkpointing pass and
     engine compilation entirely; their cells report [Skipped]. The
     section partition is computed here, once per prepared target, and
     shared by every error-count cell on that target. *)
  let pool_of (l : Experiment.loaded) policy =
    let t = l.Experiment.target s.mode in
    Core.Campaign.injectable_pool t (Core.Tagging.mask t.Core.Campaign.tagging policy)
  in
  let combos =
    dedup
      (List.filter_map
         (fun (c : cell_spec) ->
           if List.mem_assoc c.app loaded then Some (c.app, c.policy) else None)
         cells)
  in
  let prepared_tbl = Hashtbl.create 16 in
  Core.Pool.map_list ?jobs
    (fun (name, policy) ->
      let l = List.assoc name loaded in
      let pool = pool_of l policy in
      let v =
        if pool = 0 then None
        else
          let p = l.Experiment.prepared s.mode policy in
          Some (p, Core.Memo.sections_of p)
      in
      ((name, policy), (pool, v)))
    combos
  |> List.iter (fun (k, v) -> Hashtbl.replace prepared_tbl k v);
  (* Fan the cells themselves over the pool. Inner jobs is pinned to 1:
     campaign trials run inline on the pool worker that owns the cell.
     Concurrent cells share [store]; overlapping keys are safe (atomic
     publish, last rename wins, identical content either way). *)
  let lookup name = List.assoc_opt name loaded in
  let prepared_of name policy = Hashtbl.find prepared_tbl (name, policy) in
  let statuses =
    Core.Pool.map_list ?jobs (run_cell ~lookup ~prepared_of ~store) cells
  in
  let cells = List.map2 (fun cell status -> { cell; status }) cells statuses in
  record_counters cells;
  Obs.span_end ~name:"matrix.run" ~cat:"matrix"
    ~args:[ ("cells", string_of_int (List.length cells)) ]
    sp;
  { spec = s; cells; load_s; wall_s = Unix.gettimeofday () -. t_run }

(* ------------------------------------------------------------------ *)
(* Aggregates *)

type totals = {
  requested : int;
  ok : int;
  skipped : int;
  failed : int;
  cells_hit : int;  (* Ok cells served entirely from the cache *)
  cells_miss : int;
  trials_reused : int;
  trials_run : int;
}

let totals (r : result) : totals =
  List.fold_left
    (fun t { status; _ } ->
      match status with
      | Ok ok ->
        let c = ok.cache in
        {
          t with
          ok = t.ok + 1;
          cells_hit =
            (t.cells_hit + if c.Core.Memo.trials_run = 0 then 1 else 0);
          cells_miss =
            (t.cells_miss + if c.Core.Memo.trials_run = 0 then 0 else 1);
          trials_reused = t.trials_reused + c.Core.Memo.trials_reused;
          trials_run = t.trials_run + c.Core.Memo.trials_run;
        }
      | Skipped _ -> { t with skipped = t.skipped + 1 }
      | Failed _ -> { t with failed = t.failed + 1 })
    {
      requested = List.length r.cells;
      ok = 0;
      skipped = 0;
      failed = 0;
      cells_hit = 0;
      cells_miss = 0;
      trials_reused = 0;
      trials_run = 0;
    }
    r.cells

let any_failed (r : result) =
  List.exists (fun c -> match c.status with Failed _ -> true | _ -> false) r.cells

let failures (r : result) =
  List.filter_map
    (fun c ->
      match c.status with Failed m -> Some (cell_label c.cell, m) | _ -> None)
    r.cells

(* One diagnostic string for the fail-fast surface — shared verbatim by
   the CLI's non-zero exit message and the daemon's typed [Failed]
   response. [None] when every cell is ok or skipped. *)
let failures_message (r : result) : string option =
  match failures r with
  | [] -> None
  | fs ->
    Some
      (Printf.sprintf "%d matrix cell(s) failed:\n%s" (List.length fs)
         (String.concat "\n"
            (List.map (fun (l, m) -> "  " ^ l ^ ": " ^ m) fs)))

(* ------------------------------------------------------------------ *)
(* Anomaly clustering: recurring oddities across the sweep, ranked by
   occurrence count. Each anomaly carries a stable signature (the
   cluster key), a human explanation, and up to 3 example cells. *)

type anomaly = {
  signature : string;
  detail : string;
  occurrences : int;
  examples : string list;  (* at most 3 cell labels, spec order *)
}

let max_examples = 3

let anomalies (r : result) : anomaly list =
  let ok_cells =
    List.filter_map
      (fun c -> match c.status with Ok ok -> Some (c.cell, ok) | _ -> None)
      r.cells
  in
  (* Per-cell findings, in spec order: (signature, detail, label). *)
  let direct =
    List.concat_map
      (fun c ->
        let label = cell_label c.cell in
        match c.status with
        | Failed m -> [ ("failed-cell", m, label) ]
        | Skipped _ ->
          [
            ( "empty-pool",
              "no injectable instructions under this policy's tag mask",
              label );
          ]
        | Ok ok ->
          let s = ok.summary in
          (if Core.Campaign.errors_capped s then
             [
               ( "errors-capped",
                 "injectable pool smaller than the request; fault plans \
                  were truncated",
                 label );
             ]
           else [])
          @ (if
               c.cell.policy = Core.Policy.Protect_control
               && Core.Campaign.pct_catastrophic s > 0.0
             then
               [
                 ( "protected-catastrophic",
                   "catastrophic outcomes survive control protection",
                   label );
               ]
             else [])
          @
          if Core.Campaign.n s > 0 && Core.Campaign.completed s = 0 then
            [
              ( "no-completions",
                "every trial crashed or hung; fidelity unmeasurable",
                label );
            ]
          else [])
      r.cells
  in
  (* Catastrophic-rate outliers: within each policy's Ok cells (groups
     of at least 4, so the spread is meaningful), flag cells more than
     two standard deviations above the group mean. *)
  let outliers =
    List.concat_map
      (fun policy ->
        let group =
          List.filter (fun ((c : cell_spec), _) -> c.policy = policy) ok_cells
        in
        let n = List.length group in
        if n < 4 then []
        else
          let rates =
            List.map
              (fun (_, ok) -> Core.Campaign.pct_catastrophic ok.summary)
              group
          in
          let mean = List.fold_left ( +. ) 0.0 rates /. float_of_int n in
          let var =
            List.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 rates
            /. float_of_int n
          in
          let sd = sqrt var in
          if sd <= 0.0 then []
          else
            List.filter_map
              (fun ((c : cell_spec), ok) ->
                let rate = Core.Campaign.pct_catastrophic ok.summary in
                if rate > mean +. (2.0 *. sd) then
                  Some
                    ( "catastrophic-outlier",
                      Printf.sprintf
                        "rate > mean + 2 sigma among %s cells (mean %.1f%%, \
                         sd %.1f%%)"
                        (Core.Policy.to_string policy) mean sd,
                      cell_label c )
                else None)
              group)
      (dedup (List.map (fun ((c : cell_spec), _) -> c.policy) ok_cells))
  in
  let findings = direct @ outliers in
  (* Cluster by signature (first detail wins as the cluster's detail —
     details within a signature differ only for failed-cell, where the
     examples carry the specifics anyway). *)
  let sigs = dedup (List.map (fun (s, _, _) -> s) findings) in
  let clusters =
    List.map
      (fun signature ->
        let members =
          List.filter (fun (s, _, _) -> s = signature) findings
        in
        let detail =
          match members with (_, d, _) :: _ -> d | [] -> assert false
        in
        let examples =
          List.filteri (fun i _ -> i < max_examples)
            (List.map (fun (_, _, l) -> l) members)
        in
        { signature; detail; occurrences = List.length members; examples })
      sigs
  in
  List.sort
    (fun a b ->
      match compare b.occurrences a.occurrences with
      | 0 -> compare a.signature b.signature
      | c -> c)
    clusters

(* ------------------------------------------------------------------ *)
(* Report tables *)

let miss s = Report.Missing s

let to_table (r : result) : Report.table =
  Report.table ~id:"matrix"
    ~title:
      (Printf.sprintf "Matrix sweep (%s mode, seed %d, %d trials/cell)"
         (Experiment.mode_name r.spec.mode)
         r.spec.seed r.spec.trials)
    ~columns:
      [
        Report.column ~key:"app" "app";
        Report.column ~key:"policy" "policy";
        Report.column ~key:"errors" "errors";
        Report.column ~key:"status" "status";
        Report.column ~key:"note" "note";
        Report.column ~key:"pool" "pool";
        Report.column ~key:"errors_planned" "planned";
        Report.column ~key:"pct_catastrophic" "% catastrophic";
        Report.column ~key:"crashes" "crashes";
        Report.column ~key:"infinite" "infinite";
        Report.column ~key:"completed" "completed";
        Report.column ~key:"mean_fidelity" "mean fidelity";
        Report.column ~key:"trials_reused" "reused";
        Report.column ~key:"trials_run" "run";
      ]
    (List.map
       (fun { cell = c; status } ->
         [ Report.text c.app;
           Report.text (Core.Policy.to_string c.policy);
           Report.int c.errors;
           Report.text (status_kind status) ]
         @
         match status with
         | Ok ok ->
           let s = ok.summary in
           [
             Report.text "";
             Report.int ok.pool;
             Report.int s.Core.Campaign.errors_planned;
             Report.pct (Core.Campaign.pct_catastrophic s);
             Report.int (Core.Campaign.crashes s);
             Report.int (Core.Campaign.infinite s);
             Report.int (Core.Campaign.completed s);
             Report.opt ~missing:"n/a"
               (fun f -> Report.num ~text:(Printf.sprintf "%.1f" f) f)
               (Core.Campaign.mean_fidelity s);
             Report.int ok.cache.Core.Memo.trials_reused;
             Report.int ok.cache.Core.Memo.trials_run;
           ]
         | Skipped reason ->
           [
             Report.text reason;
             Report.int 0;
             miss "-"; miss "-"; miss "-"; miss "-"; miss "-"; miss "-";
             miss "-"; miss "-";
           ]
         | Failed err ->
           [
             Report.text err;
             miss "-"; miss "-"; miss "-"; miss "-"; miss "-"; miss "-";
             miss "-"; miss "-"; miss "-";
           ])
       r.cells)

let anomaly_table (r : result) : Report.table =
  let rows = anomalies r in
  Report.table ~id:"matrix_anomalies" ~title:"Anomaly clusters (ranked)"
    ~columns:
      [
        Report.column ~key:"signature" "signature";
        Report.column ~key:"occurrences" "occurrences";
        Report.column ~key:"examples" "examples";
        Report.column ~key:"detail" "detail";
      ]
    (List.map
       (fun a ->
         [
           Report.text a.signature;
           Report.int a.occurrences;
           Report.text (String.concat ", " a.examples);
           Report.text a.detail;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Report meta: the invocation-parameter block of a matrix report,
   shared by `etap matrix --json` and the serve daemon so the two
   emit identical documents for identical work. [spec_meta] is the
   pre-run half (also the obs-stream meta); [report_meta] appends the
   sweep's cache/status accounting. *)

let spec_meta ~engine ~jobs ~checkpoint_stride ~cache_dir (s : spec) :
    (string * Report.Json.t) list =
  let open Report.Json in
  [
    ("apps", Arr (List.map (fun a -> Str a) s.apps));
    ( "policies",
      Arr (List.map (fun p -> Str (Core.Policy.to_string p)) s.policies) );
    ("errors", Arr (List.map (fun e -> Int e) s.errors));
    ("trials", Int s.trials);
    ("seed", Int s.seed);
    ("literal", Bool (s.mode = Experiment.Literal));
    ("engine", Str (Sim.Interp.engine_name engine));
    ("jobs", of_int_opt jobs);
    ("checkpoint_stride", of_int_opt checkpoint_stride);
    ("cache_dir", Str cache_dir);
  ]

let report_meta ~engine ~jobs ~checkpoint_stride ~cache_dir (r : result) :
    (string * Report.Json.t) list =
  let t = totals r in
  spec_meta ~engine ~jobs ~checkpoint_stride ~cache_dir r.spec
  @ [
      ("cells_requested", Report.Json.Int t.requested);
      ("cells_ok", Report.Json.Int t.ok);
      ("cells_skipped", Report.Json.Int t.skipped);
      ("cells_failed", Report.Json.Int t.failed);
      ("cells_hit", Report.Json.Int t.cells_hit);
      ("cells_miss", Report.Json.Int t.cells_miss);
      ("trials_reused", Report.Json.Int t.trials_reused);
      ("trials_run", Report.Json.Int t.trials_run);
    ]

(* ------------------------------------------------------------------ *)
(* Spec parsing: a small JSON spec file overrides the CLI-derived base
   spec field by field. Unknown policy/app names surface as [Error]
   here (a malformed spec is a usage error, not a cell failure). *)

let policy_of_string = function
  | "control" | "protect-control" -> Stdlib.Ok Core.Policy.Protect_control
  | "nothing" | "protect-nothing" -> Stdlib.Ok Core.Policy.Protect_nothing
  | "all" | "protect-all" -> Stdlib.Ok Core.Policy.Protect_all
  | s -> Stdlib.Error (Printf.sprintf "unknown policy %S" s)

let spec_of_json ~(base : spec) (j : Report.Json.t) :
    (spec, string) Stdlib.result =
  let open Report.Json in
  let ( let* ) = Result.bind in
  let str_list field conv default =
    match member field j with
    | None -> Stdlib.Ok default
    | Some (Arr xs) ->
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          match x with
          | Str s ->
            let* v = conv s in
            Stdlib.Ok (acc @ [ v ])
          | _ ->
            Stdlib.Error
              (Printf.sprintf "spec field %S: expected an array of strings"
                 field))
        (Stdlib.Ok []) xs
    | Some _ ->
      Stdlib.Error
        (Printf.sprintf "spec field %S: expected an array of strings" field)
  in
  let int_list field default =
    match member field j with
    | None -> Stdlib.Ok default
    | Some (Arr xs) ->
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          match x with
          | Int i -> Stdlib.Ok (acc @ [ i ])
          | _ ->
            Stdlib.Error
              (Printf.sprintf "spec field %S: expected an array of ints" field))
        (Stdlib.Ok []) xs
    | Some _ ->
      Stdlib.Error
        (Printf.sprintf "spec field %S: expected an array of ints" field)
  in
  let int field default =
    match member field j with
    | None -> Stdlib.Ok default
    | Some (Int i) -> Stdlib.Ok i
    | Some _ ->
      Stdlib.Error (Printf.sprintf "spec field %S: expected an int" field)
  in
  match j with
  | Obj _ ->
    let* apps = str_list "apps" (fun s -> Stdlib.Ok s) base.apps in
    let* policies = str_list "policies" policy_of_string base.policies in
    let* errors = int_list "errors" base.errors in
    let* trials = int "trials" base.trials in
    let* seed = int "seed" base.seed in
    let* mode =
      match member "literal" j with
      | None -> Stdlib.Ok base.mode
      | Some (Bool true) -> Stdlib.Ok Experiment.Literal
      | Some (Bool false) -> Stdlib.Ok Experiment.Full
      | Some _ -> Stdlib.Error "spec field \"literal\": expected a bool"
    in
    Stdlib.Ok { apps; mode; policies; errors; trials; seed }
  | _ -> Stdlib.Error "matrix spec: expected a JSON object"
