(* Synthetic single-depot vehicle-scheduling instances, posed as
   min-cost-flow problems — the problem class MCF solves. Nodes are a
   depot source, a layered set of trip nodes ordered by departure time,
   and a sink; arcs are pull-outs (source->trip), feasible deadheads
   between time-compatible trips (layer i -> layer i+1), and pull-ins
   (trip->sink). Capacities are small, costs positive; the layering
   guarantees a DAG so every instance is feasible and bounded. *)

type t = {
  n_nodes : int;
  arcs : (int * int * int * int) array;  (* from, to, cap, cost *)
  source : int;
  sink : int;
  supply : int;
}

let generate ~seed ~layers ~per_layer ~supply =
  let rng = Rng.make seed in
  let n_trip = layers * per_layer in
  let source = 0 and sink = n_trip + 1 in
  let node layer k = 1 + (layer * per_layer) + k in
  let arcs = ref [] in
  let add u v cap cost = arcs := (u, v, cap, cost) :: !arcs in
  (* pull-outs: depot can start any first-layer trip *)
  for k = 0 to per_layer - 1 do
    add source (node 0 k) (1 + Rng.int rng 3) (5 + Rng.int rng 20)
  done;
  (* deadheads between consecutive layers: dense enough to be feasible *)
  for l = 0 to layers - 2 do
    for a = 0 to per_layer - 1 do
      for b = 0 to per_layer - 1 do
        if a = b || Rng.int rng 100 < 60 then
          add (node l a) (node (l + 1) b) (1 + Rng.int rng 3) (1 + Rng.int rng 15)
      done
    done
  done;
  (* pull-ins *)
  for k = 0 to per_layer - 1 do
    add (node (layers - 1) k) sink (1 + Rng.int rng 3) (5 + Rng.int rng 20)
  done;
  (* a couple of skip arcs to make shortest paths non-trivial *)
  for l = 0 to layers - 3 do
    for _ = 0 to per_layer / 2 do
      let a = Rng.int rng per_layer and b = Rng.int rng per_layer in
      add (node l a) (node (l + 2) b) (1 + Rng.int rng 2) (3 + Rng.int rng 25)
    done
  done;
  {
    n_nodes = n_trip + 2;
    arcs = Array.of_list (List.rev !arcs);
    source;
    sink;
    supply;
  }

(* Maximum shippable supply of an instance (min-cut bound through the
   pull-out arcs); used to clamp requested supply to feasibility. *)
let max_supply t =
  Array.fold_left
    (fun acc (u, _, cap, _) -> if u = t.source then acc + cap else acc)
    0 t.arcs

let to_fidelity_instance (t : t) : Fidelity.Schedule.instance =
  {
    Fidelity.Schedule.n_nodes = t.n_nodes;
    arcs = t.arcs;
    source = t.source;
    sink = t.sink;
    supply = t.supply;
  }
