lib/ir/instr.mli: Format Reg
