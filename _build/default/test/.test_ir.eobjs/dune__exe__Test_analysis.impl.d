test/test_analysis.ml: Alcotest Analysis Array Cfg Func Instr Ir List Printf Prog QCheck QCheck_alcotest Random Reg Ty
