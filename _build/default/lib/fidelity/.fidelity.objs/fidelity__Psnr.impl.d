lib/fidelity/psnr.ml: Array Float
