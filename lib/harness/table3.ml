(* Paper Table 3: dynamic instruction counts and the percentage of
   dynamic instructions the static analysis tags as low-reliability
   ("not leading to control instructions").

   Reported under both tagging modes; the paper's Section-3 rules
   correspond to the Literal column (see EXPERIMENTS.md for why the
   Full column is much lower). *)

type row = {
  app_name : string;
  instructions : int;
  pct_low_literal : float;
  pct_low_full : float;
  paper_pct : float;
}

let paper_pcts =
  [
    ("susan", 91.3); ("mpeg", 50.3); ("mcf", 8.9); ("blowfish", 62.4);
    ("adpcm", 93.26); ("gsm", 19.6); ("art", 70.8);
  ]

(* No campaigns here, but each row forces the app's Literal-mode target
   (tagging + profiling run) — independent work per app, so rows fan
   out across domains. *)
let run ?jobs (loaded : Experiment.loaded list) : row list =
  Core.Pool.map_list ?jobs
    (fun (l : Experiment.loaded) ->
      let name = l.Experiment.app.Apps.App.name in
      let frac mode =
        let t = l.Experiment.target mode in
        100.0
        *. Core.Tagging.dynamic_low_fraction t.Core.Campaign.tagging
             t.Core.Campaign.baseline.Sim.Interp.exec_counts
      in
      {
        app_name = name;
        instructions =
          (l.Experiment.target Experiment.Full).Core.Campaign.baseline
            .Sim.Interp.dyn_count;
        pct_low_literal = frac Experiment.Literal;
        pct_low_full = frac Experiment.Full;
        paper_pct =
          (try List.assoc name paper_pcts with Not_found -> nan);
      })
    loaded

let to_table rows : Report.table =
  Report.table ~id:"table3"
    ~title:
      "Table 3: dynamic instructions and % tagged low-reliability (may run \
       unprotected)"
    ~columns:
      [
        Report.column ~key:"app" "app";
        Report.column ~key:"instructions" "instrs";
        Report.column ~key:"pct_low_literal" "% low (literal rules)";
        Report.column ~key:"pct_low_full" "% low (ctrl+addr)";
        Report.column ~key:"paper_pct" "% low (paper)";
      ]
    (List.map
       (fun r ->
         [
           Report.text r.app_name;
           Report.int r.instructions;
           Report.pct r.pct_low_literal;
           Report.pct r.pct_low_full;
           Report.pct r.paper_pct;
         ])
       rows)

let render rows = Report.to_text (to_table rows)
