(* Lowering from the Mlang AST to the MIPS-like IR.

   Straightforward syntax-directed translation, one virtual register
   per local, with three local strengthenings that make the output
   resemble a non-optimizing C compiler's MIPS: bottom-up constant
   folding, immediate forms for constant right operands, and fused
   compare-and-branch for conditions. *)

open Ast
module SM = Map.Make (String)

type fctx = {
  gsigs : Typecheck.gsig SM.t;
  fsigs : Typecheck.fsig SM.t;
  tctx : Typecheck.ctx;
  mutable next_int : int;
  mutable next_flt : int;
  mutable next_label : int;
  mutable acc : Ir.Instr.t list;  (* reversed *)
  fname : string;
}

type venv = (Ir.Reg.t * ty) SM.t

let emit ctx i = ctx.acc <- i :: ctx.acc

let fresh_i ctx =
  let r = Ir.Reg.int ctx.next_int in
  ctx.next_int <- ctx.next_int + 1;
  r

let fresh_f ctx =
  let r = Ir.Reg.flt ctx.next_flt in
  ctx.next_flt <- ctx.next_flt + 1;
  r

let fresh ctx = function TInt -> fresh_i ctx | TFlt -> fresh_f ctx

let fresh_label ctx =
  let l = Printf.sprintf "%s_L%d" ctx.fname ctx.next_label in
  ctx.next_label <- ctx.next_label + 1;
  l

let tenv_of (env : venv) : ty SM.t = SM.map snd env

let infer ctx env e = Typecheck.infer ctx.tctx (tenv_of env) e

let ir_ty = function TInt -> Ir.Ty.I32 | TFlt -> Ir.Ty.F64

let ir_binop : binop -> Ir.Instr.binop = function
  | Add -> Ir.Instr.Add
  | Sub -> Ir.Instr.Sub
  | Mul -> Ir.Instr.Mul
  | Div -> Ir.Instr.Div
  | Rem -> Ir.Instr.Rem
  | BAnd -> Ir.Instr.And
  | BOr -> Ir.Instr.Or
  | BXor -> Ir.Instr.Xor
  | Shl -> Ir.Instr.Sll
  | Shr -> Ir.Instr.Srl
  | Ashr -> Ir.Instr.Sra

let ir_fbinop : binop -> Ir.Instr.fbinop = function
  | Add -> Ir.Instr.Fadd
  | Sub -> Ir.Instr.Fsub
  | Mul -> Ir.Instr.Fmul
  | Div -> Ir.Instr.Fdiv
  | Rem | BAnd | BOr | BXor | Shl | Shr | Ashr ->
    invalid_arg "integer-only operator on floats"

let ir_cmpop : cmpop -> Ir.Instr.cmpop = function
  | Eq -> Ir.Instr.Eq
  | Ne -> Ir.Instr.Ne
  | Lt -> Ir.Instr.Lt
  | Le -> Ir.Instr.Le
  | Gt -> Ir.Instr.Gt
  | Ge -> Ir.Instr.Ge

let negate_cmp : Ir.Instr.cmpop -> Ir.Instr.cmpop = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(* 32-bit wrap-around used both here (folding) and by the simulator. *)
let sx32 v = ((v land 0xFFFFFFFF) lxor 0x80000000) - 0x80000000

let fold_int op a b =
  match op with
  | Add -> Some (sx32 (a + b))
  | Sub -> Some (sx32 (a - b))
  | Mul -> Some (sx32 (a * b))
  | Div -> if b = 0 then None else Some (sx32 (a / b))
  | Rem -> if b = 0 then None else Some (sx32 (a mod b))
  | BAnd -> Some (a land b)
  | BOr -> Some (a lor b)
  | BXor -> Some (a lxor b)
  | Shl -> Some (sx32 (a lsl (b land 31)))
  | Shr -> Some (sx32 ((a land 0xFFFFFFFF) lsr (b land 31)))
  | Ashr -> Some (a asr (b land 31))

let cmp_int op a b =
  let holds =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if holds then 1 else 0

(* Bottom-up constant folding on the AST. *)
let rec fold (e : expr) : expr =
  match e with
  | Int _ | Flt _ | Var _ -> e
  | Bin (op, a, b) -> begin
    match (fold a, fold b) with
    | Int x, Int y -> (
      match fold_int op x y with
      | Some v -> Int v
      | None -> Bin (op, Int x, Int y))
    | Flt x, Flt y -> begin
      match op with
      | Add -> Flt (x +. y)
      | Sub -> Flt (x -. y)
      | Mul -> Flt (x *. y)
      | Div -> Flt (x /. y)
      | _ -> Bin (op, Flt x, Flt y)
    end
    | a, b -> Bin (op, a, b)
  end
  | Cmp (op, a, b) -> begin
    match (fold a, fold b) with
    | Int x, Int y -> Int (cmp_int op x y)
    | a, b -> Cmp (op, a, b)
  end
  | Neg a -> begin
    match fold a with
    | Int x -> Int (sx32 (-x))
    | Flt x -> Flt (-.x)
    | a -> Neg a
  end
  | Not a -> begin
    match fold a with Int x -> Int (if x = 0 then 1 else 0) | a -> Not a
  end
  | Load (g, idx) -> Load (g, fold idx)
  | Call (f, args) -> Call (f, List.map fold args)
  | I2F a -> (match fold a with Int x -> Flt (float_of_int x) | a -> I2F a)
  | F2I a -> F2I (fold a)

let commutative = function
  | Add | Mul | BAnd | BOr | BXor -> true
  | Sub | Div | Rem | Shl | Shr | Ashr -> false

(* Compile [e] and return the register holding its value; variables
   are returned in place (no copy). *)
let rec compile_expr ctx env (e : expr) : Ir.Reg.t =
  match e with
  | Var x -> fst (SM.find x env)
  | _ ->
    let d = fresh ctx (infer ctx env e) in
    compile_into ctx env d e;
    d

(* Compile [e] directly into destination register [d]. *)
and compile_into ctx env d (e : expr) : unit =
  match fold e with
  | Int n -> emit ctx (Ir.Instr.Li (d, Int32.of_int n))
  | Flt x -> emit ctx (Ir.Instr.Lf (d, x))
  | Var x ->
    let r, _ = SM.find x env in
    if not (Ir.Reg.equal r d) then emit ctx (Ir.Instr.Mov (d, r))
  | Bin (op, a, b) as whole -> begin
    match infer ctx env whole with
    | TFlt ->
      let ra = compile_expr ctx env a in
      let rb = compile_expr ctx env b in
      emit ctx (Ir.Instr.Fbin (ir_fbinop op, d, ra, rb))
    | TInt -> begin
      match (a, b) with
      | _, Int n ->
        let ra = compile_expr ctx env a in
        emit ctx (Ir.Instr.Bini (ir_binop op, d, ra, Int32.of_int n))
      | Int n, _ when commutative op ->
        let rb = compile_expr ctx env b in
        emit ctx (Ir.Instr.Bini (ir_binop op, d, rb, Int32.of_int n))
      | _ ->
        let ra = compile_expr ctx env a in
        let rb = compile_expr ctx env b in
        emit ctx (Ir.Instr.Bin (ir_binop op, d, ra, rb))
    end
  end
  | Cmp (op, a, b) -> begin
    let ra = compile_expr ctx env a in
    let rb = compile_expr ctx env b in
    match infer ctx env a with
    | TInt -> emit ctx (Ir.Instr.Cmp (ir_cmpop op, d, ra, rb))
    | TFlt -> emit ctx (Ir.Instr.Fcmp (ir_cmpop op, d, ra, rb))
  end
  | Neg a -> begin
    match infer ctx env a with
    | TFlt ->
      let ra = compile_expr ctx env a in
      emit ctx (Ir.Instr.Fun_ (Ir.Instr.Fneg, d, ra))
    | TInt ->
      let ra = compile_expr ctx env a in
      let rz = fresh_i ctx in
      emit ctx (Ir.Instr.Li (rz, 0l));
      emit ctx (Ir.Instr.Bin (Ir.Instr.Sub, d, rz, ra))
  end
  | Not a ->
    let ra = compile_expr ctx env a in
    let rz = fresh_i ctx in
    emit ctx (Ir.Instr.Li (rz, 0l));
    emit ctx (Ir.Instr.Cmp (Ir.Instr.Eq, d, ra, rz))
  | Load (g, idx) -> begin
    let gs = SM.find g ctx.gsigs in
    let addr, off = element_addr ctx env g gs idx in
    match (gs.Typecheck.g_ty, gs.Typecheck.g_byte) with
    | TInt, true -> emit ctx (Ir.Instr.Lb (d, addr, off))
    | TInt, false -> emit ctx (Ir.Instr.Lw (d, addr, off))
    | TFlt, _ -> emit ctx (Ir.Instr.Lwf (d, addr, off))
  end
  | Call (f, args) ->
    let regs = List.map (compile_expr ctx env) args in
    emit ctx (Ir.Instr.Call { dst = Some d; func = f; args = regs })
  | I2F a ->
    let ra = compile_expr ctx env a in
    emit ctx (Ir.Instr.I2f (d, ra))
  | F2I a ->
    let ra = compile_expr ctx env a in
    emit ctx (Ir.Instr.F2i (d, ra))

(* Address of element [idx] of global [g]: byte arrays use 1-byte
   stride, word/float arrays 4-byte stride. *)
and element_addr ctx env g (gs : Typecheck.gsig) idx =
  let scale = if gs.Typecheck.g_byte then 1 else 4 in
  let base = fresh_i ctx in
  emit ctx (Ir.Instr.La (base, g));
  match fold idx with
  | Int k -> (base, scale * k)
  | idx ->
    let ri = compile_expr ctx env idx in
    let roff =
      if scale = 1 then ri
      else begin
        let r = fresh_i ctx in
        emit ctx (Ir.Instr.Bini (Ir.Instr.Sll, r, ri, 2l));
        r
      end
    in
    let raddr = fresh_i ctx in
    emit ctx (Ir.Instr.Bin (Ir.Instr.Add, raddr, base, roff));
    (raddr, 0)

(* Branch to [target] when [cond]'s truth equals [jump_if]. *)
let rec compile_cond ctx env (cond : expr) ~jump_if ~target : unit =
  match fold cond with
  | Int n -> if n <> 0 = jump_if then emit ctx (Ir.Instr.Jmp target)
  | Not e -> compile_cond ctx env e ~jump_if:(not jump_if) ~target
  | Cmp (op, a, b) when infer ctx env a = TInt ->
    let ra = compile_expr ctx env a in
    let rb = compile_expr ctx env b in
    let op = ir_cmpop op in
    let op = if jump_if then op else negate_cmp op in
    emit ctx (Ir.Instr.Br (op, ra, rb, target))
  | cond ->
    let r = compile_expr ctx env cond in
    emit ctx
      (Ir.Instr.Brz ((if jump_if then Ir.Instr.Ne else Ir.Instr.Eq), r, target))


let rec compile_stmt ctx (env : venv) ~brk ~cont (s : stmt) : venv =
  match s with
  | Decl (x, e) ->
    let ty = infer ctx env e in
    let r = fresh ctx ty in
    compile_into ctx env r e;
    SM.add x (r, ty) env
  | Assign (x, e) ->
    let r, _ = SM.find x env in
    compile_into ctx env r e;
    env
  | Store (g, idx, value) ->
    let rv = compile_expr ctx env value in
    let gs = SM.find g ctx.gsigs in
    let addr, off = element_addr ctx env g gs idx in
    (match (gs.Typecheck.g_ty, gs.Typecheck.g_byte) with
     | (TInt, true) -> emit ctx (Ir.Instr.Sb (rv, addr, off))
     | (TInt, false) -> emit ctx (Ir.Instr.Sw (rv, addr, off))
     | (TFlt, _) -> emit ctx (Ir.Instr.Swf (rv, addr, off)));
    env
  | If (cond, then_, []) ->
    let lend = fresh_label ctx in
    compile_cond ctx env cond ~jump_if:false ~target:lend;
    compile_block ctx env ~brk ~cont then_;
    emit ctx (Ir.Instr.Label lend);
    env
  | If (cond, then_, else_) ->
    let lelse = fresh_label ctx in
    let lend = fresh_label ctx in
    compile_cond ctx env cond ~jump_if:false ~target:lelse;
    compile_block ctx env ~brk ~cont then_;
    emit ctx (Ir.Instr.Jmp lend);
    emit ctx (Ir.Instr.Label lelse);
    compile_block ctx env ~brk ~cont else_;
    emit ctx (Ir.Instr.Label lend);
    env
  | While (cond, body) ->
    let lhead = fresh_label ctx in
    let lend = fresh_label ctx in
    emit ctx (Ir.Instr.Label lhead);
    compile_cond ctx env cond ~jump_if:false ~target:lend;
    compile_block ctx env ~brk:(Some lend) ~cont:(Some lhead) body;
    emit ctx (Ir.Instr.Jmp lhead);
    emit ctx (Ir.Instr.Label lend);
    env
  | For (x, lo, hi, body) ->
    let rx = fresh_i ctx in
    compile_into ctx env rx lo;
    let rhi = compile_expr ctx env hi in
    (* [hi] is evaluated once; if it is a variable, pin the bound in a
       temp so assignments inside the body cannot move it. *)
    let rhi =
      match hi with
      | Var _ ->
        let t = fresh_i ctx in
        emit ctx (Ir.Instr.Mov (t, rhi));
        t
      | _ -> rhi
    in
    let lhead = fresh_label ctx in
    let lcont = fresh_label ctx in
    let lend = fresh_label ctx in
    emit ctx (Ir.Instr.Label lhead);
    emit ctx (Ir.Instr.Br (Ir.Instr.Ge, rx, rhi, lend));
    let env' = SM.add x (rx, TInt) env in
    compile_block ctx env' ~brk:(Some lend) ~cont:(Some lcont) body;
    emit ctx (Ir.Instr.Label lcont);
    emit ctx (Ir.Instr.Bini (Ir.Instr.Add, rx, rx, 1l));
    emit ctx (Ir.Instr.Jmp lhead);
    emit ctx (Ir.Instr.Label lend);
    env
  | Expr (Call (f, args)) when (SM.find f ctx.fsigs).Typecheck.f_ret = None ->
    let regs = List.map (compile_expr ctx env) args in
    emit ctx (Ir.Instr.Call { dst = None; func = f; args = regs });
    env
  | Expr e ->
    ignore (compile_expr ctx env e);
    env
  | Return None ->
    emit ctx (Ir.Instr.Ret None);
    env
  | Return (Some e) ->
    let r = compile_expr ctx env e in
    emit ctx (Ir.Instr.Ret (Some r));
    env
  | Break ->
    (match brk with
     | Some l -> emit ctx (Ir.Instr.Jmp l)
     | None -> invalid_arg "break outside loop");
    env
  | Continue ->
    (match cont with
     | Some l -> emit ctx (Ir.Instr.Jmp l)
     | None -> invalid_arg "continue outside loop");
    env

and compile_block ctx env ~brk ~cont body =
  ignore (List.fold_left (fun env s -> compile_stmt ctx env ~brk ~cont s) env body)

let lower_func ~gsigs ~fsigs (f : func) : Ir.Func.t =
  let tctx =
    {
      Typecheck.globals = gsigs;
      funcs = fsigs;
      fname = f.name;
      f_ret_ty = f.ret;
    }
  in
  let ctx =
    {
      gsigs;
      fsigs;
      tctx;
      next_int = 0;
      next_flt = 0;
      next_label = 0;
      acc = [];
      fname = f.name;
    }
  in
  (* Parameters occupy the first registers of each bank, in order. *)
  let env =
    List.fold_left
      (fun env (x, ty) -> SM.add x (fresh ctx ty, ty) env)
      SM.empty f.params
  in
  let params = List.map (fun (x, _) -> fst (SM.find x env)) f.params in
  compile_block ctx env ~brk:None ~cont:None f.body;
  (* Safety epilogue: the typechecker guarantees non-void bodies always
     return, so the appended return is unreachable; for void functions
     it is the implicit return. *)
  (match f.ret with
   | None -> emit ctx (Ir.Instr.Ret None)
   | Some TInt ->
     let r = fresh_i ctx in
     emit ctx (Ir.Instr.Li (r, 0l));
     emit ctx (Ir.Instr.Ret (Some r))
   | Some TFlt ->
     let r = fresh_f ctx in
     emit ctx (Ir.Instr.Lf (r, 0.0));
     emit ctx (Ir.Instr.Ret (Some r)));
  Ir.Func.make ~eligible:f.eligible ~name:f.name ~params
    ~ret:(Option.map ir_ty f.ret)
    (List.rev ctx.acc)

let lower_global (g : global) : Ir.Prog.global =
  let init =
    match g.init with
    | GZero -> Ir.Prog.Zero
    | GInts a -> Ir.Prog.Int_data a
    | GFlts a -> Ir.Prog.Flt_data a
  in
  let ty = if g.byte then Ir.Ty.I8 else ir_ty g.gty in
  Ir.Prog.global ~init g.gname ty g.size

let lower_program (p : program) : Ir.Prog.t =
  let gsigs, fsigs = Typecheck.ctx_of_program p in
  let funcs = List.map (lower_func ~gsigs ~fsigs) p.funcs in
  Ir.Prog.make ~entry:p.entry ~globals:(List.map lower_global p.globals) funcs
