lib/harness/ablation.ml: Apps Array Core Experiment Int32 List Mlang Printf Sim Tablefmt
