(* Abstract syntax of Mlang, the small imperative language the
   benchmark applications are written in. It deliberately mirrors the
   C subset the paper's benchmarks use: 32-bit integer and double
   scalars, global arrays, structured control flow, direct calls. *)

type ty =
  | TInt
  | TFlt

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | BAnd
  | BOr
  | BXor
  | Shl
  | Shr   (* logical right shift *)
  | Ashr  (* arithmetic right shift *)

type cmpop =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type expr =
  | Int of int
  | Flt of float
  | Var of string
  | Bin of binop * expr * expr
  | Cmp of cmpop * expr * expr   (* int result 0/1; operands same type *)
  | Neg of expr
  | Not of expr                  (* logical negation of an int *)
  | Load of string * expr        (* global_array.(index) *)
  | Call of string * expr list
  | I2F of expr
  | F2I of expr                  (* truncation toward zero *)

type stmt =
  | Decl of string * expr              (* introduces a local *)
  | Assign of string * expr
  | Store of string * expr * expr      (* global_array.(index) <- value *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of string * expr * expr * stmt list  (* for v = lo; v < hi; v++ *)
  | Expr of expr                       (* evaluate for effect (calls) *)
  | Return of expr option
  | Break
  | Continue

type func = {
  name : string;
  params : (string * ty) list;
  ret : ty option;
  body : stmt list;
  eligible : bool;  (* may the tagging analysis relax this function? *)
}

type ginit =
  | GZero
  | GInts of int32 array
  | GFlts of float array

type global = {
  gname : string;
  gty : ty;
  byte : bool;  (* unsigned-byte elements (gty must be TInt) *)
  size : int;
  init : ginit;
}

type program = {
  globals : global list;
  funcs : func list;
  entry : string;
}

exception Type_error of string

let type_errorf fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let string_of_ty = function TInt -> "int" | TFlt -> "float"
