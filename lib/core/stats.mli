(** Streaming statistics for campaign results.

    {!acc} is a single-pass accumulator over floats (Welford
    mean/variance, running min/max); {!t} adds the campaign outcome
    breakdown (crashes / infinite / completed) with a fidelity
    accumulator over the scored completed trials. Both are immutable
    and merge associatively, so per-domain partial statistics combine
    without revisiting trials. *)

type acc

val acc_empty : acc
val acc_add : acc -> float -> acc

val acc_merge : acc -> acc -> acc
(** [acc_merge a b] equals (up to floating-point rounding) the
    accumulator built by adding [a]'s and [b]'s observations to one
    accumulator. *)

val acc_count : acc -> int

val acc_mean : acc -> float option
(** [None] when empty — never [nan]. *)

val acc_variance : acc -> float option
(** Population variance (divide by [n]). *)

val acc_stddev : acc -> float option
val acc_min : acc -> float option
val acc_max : acc -> float option

(** Additive fault-flow class counters (shadow-taint taxonomy). Only
    trials run with taint on feed them, so their total can be below
    {!t.n}. *)
type flows = {
  vanished : int;
  data_only : int;
  reached_memory : int;
  reached_address : int;
  reached_control : int;
}

val flows_empty : flows
val flows_add : flows -> Sim.Taint.flow -> flows
val flows_merge : flows -> flows -> flows
val flows_total : flows -> int
val flows_get : flows -> Sim.Taint.flow -> int

type t = {
  n : int;  (** trials observed *)
  crashes : int;
  infinite : int;
  completed : int;
  fidelity : acc;  (** over completed trials that were scored *)
  flows : flows;  (** taint-mode trials only *)
}

val empty : t

val observe : ?flow:Sim.Taint.flow -> t -> Outcome.t -> fidelity:float option -> t
(** Count one classified trial; a [Some] fidelity on a completed trial
    also feeds the fidelity accumulator, and a [flow] feeds the
    fault-flow counters. *)

val merge : t -> t -> t
val catastrophic : t -> int

val pct_catastrophic : t -> float
(** [0.0] on the empty summary. *)

val mean_fidelity : t -> float option
(** [None] when no completed trial was scored — never [nan]. *)

(** {1 Log-bucketed histograms}

    Mergeable geometric-bucket histogram for latency-style quantities
    (8 sub-buckets per octave, ~9% relative resolution). The primitive
    is [Obs.Hist], re-exported so core consumers share buckets with the
    telemetry layer without depending on it directly. Merging adds
    bucket counts: exact, associative, commutative. *)

type hist = Obs.Hist.t

val hist_empty : hist
val hist_add : hist -> float -> hist
val hist_merge : hist -> hist -> hist
val hist_count : hist -> int

val hist_quantile : hist -> float -> float option
(** Representative value of the bucket holding the requested quantile
    ([q] clamped to [0,1]); [None] on the empty histogram — never
    [nan]. *)
