(** Protection policies compared in the paper's evaluation. *)

type t =
  | Protect_control
      (** the paper's proposal: only tagged (low-reliability)
          instructions are injectable *)
  | Protect_nothing
      (** static analysis OFF: every value-producing instruction is
          injectable *)
  | Protect_all  (** everything protected: no injection possible *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val all : t list

val seed_tag : t -> int
(** Stable per-policy component of the campaign trial seed. Fixed
    constants (frozen to the values [Hashtbl.hash] produced for these
    variants on the runtime the original goldens used), so campaign
    outputs do not depend on the runtime's hash function. *)
