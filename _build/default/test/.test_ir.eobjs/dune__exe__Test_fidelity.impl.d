test/test_fidelity.ml: Alcotest Array Fidelity Float QCheck QCheck_alcotest
