(* Static semantics of Mlang. Scoping is lexical per block; locals are
   introduced by [Decl] and may shadow outer locals. All checks raise
   [Ast.Type_error] with a function-qualified message. *)

open Ast
module SM = Map.Make (String)

type gsig = { g_ty : ty; g_byte : bool; g_size : int }
type fsig = { f_params : ty list; f_ret : ty option }

type ctx = {
  globals : gsig SM.t;
  funcs : fsig SM.t;
  fname : string;        (* for error messages *)
  f_ret_ty : ty option;
}

let err ctx fmt = Printf.ksprintf (fun s -> raise (Type_error (ctx.fname ^ ": " ^ s))) fmt

let int_only_op = function
  | Rem | BAnd | BOr | BXor | Shl | Shr | Ashr -> true
  | Add | Sub | Mul | Div -> false

let rec infer ctx (env : ty SM.t) (e : expr) : ty =
  match e with
  | Int _ -> TInt
  | Flt _ -> TFlt
  | Var x -> begin
    match SM.find_opt x env with
    | Some t -> t
    | None -> err ctx "unbound variable %s" x
  end
  | Bin (op, a, b) ->
    let ta = infer ctx env a and tb = infer ctx env b in
    if ta <> tb then
      err ctx "binary operator on mixed types (%s vs %s)" (string_of_ty ta)
        (string_of_ty tb);
    if ta = TFlt && int_only_op op then err ctx "integer-only operator on floats";
    ta
  | Cmp (_, a, b) ->
    let ta = infer ctx env a and tb = infer ctx env b in
    if ta <> tb then
      err ctx "comparison on mixed types (%s vs %s)" (string_of_ty ta)
        (string_of_ty tb);
    TInt
  | Neg a -> infer ctx env a
  | Not a ->
    if infer ctx env a <> TInt then err ctx "logical not on float";
    TInt
  | Load (g, idx) -> begin
    if infer ctx env idx <> TInt then err ctx "array index must be int";
    match SM.find_opt g ctx.globals with
    | Some { g_ty; _ } -> g_ty
    | None -> err ctx "unknown global array %s" g
  end
  | Call (f, args) -> begin
    match SM.find_opt f ctx.funcs with
    | None -> err ctx "call to unknown function %s" f
    | Some { f_params; f_ret } ->
      if List.length f_params <> List.length args then
        err ctx "call to %s: expected %d arguments, got %d" f
          (List.length f_params) (List.length args);
      List.iteri
        (fun k (want, arg) ->
          let got = infer ctx env arg in
          if got <> want then
            err ctx "call to %s: argument %d is %s, expected %s" f k
              (string_of_ty got) (string_of_ty want))
        (List.combine f_params args);
      (match f_ret with
       | Some t -> t
       | None -> err ctx "void call to %s used as a value" f)
  end
  | I2F a ->
    if infer ctx env a <> TInt then err ctx "i2f of a float";
    TFlt
  | F2I a ->
    if infer ctx env a <> TFlt then err ctx "f2i of an int";
    TInt

(* Checks a statement; returns the environment for the following
   statement in the same block. *)
let rec check_stmt ctx env ~in_loop (s : stmt) : ty SM.t =
  match s with
  | Decl (x, e) -> SM.add x (infer ctx env e) env
  | Assign (x, e) -> begin
    match SM.find_opt x env with
    | None -> err ctx "assignment to undeclared variable %s" x
    | Some t ->
      let te = infer ctx env e in
      if t <> te then
        err ctx "assignment to %s: %s := %s" x (string_of_ty t) (string_of_ty te);
      env
  end
  | Store (g, idx, value) -> begin
    if infer ctx env idx <> TInt then err ctx "array index must be int";
    match SM.find_opt g ctx.globals with
    | None -> err ctx "store to unknown global %s" g
    | Some { g_ty; _ } ->
      let tv = infer ctx env value in
      if tv <> g_ty then
        err ctx "store to %s: element is %s, value is %s" g (string_of_ty g_ty)
          (string_of_ty tv);
      env
  end
  | If (cond, then_, else_) ->
    if infer ctx env cond <> TInt then err ctx "condition must be int";
    check_block ctx env ~in_loop then_;
    check_block ctx env ~in_loop else_;
    env
  | While (cond, body) ->
    if infer ctx env cond <> TInt then err ctx "condition must be int";
    check_block ctx env ~in_loop:true body;
    env
  | For (x, lo, hi, body) ->
    if infer ctx env lo <> TInt then err ctx "for bound must be int";
    if infer ctx env hi <> TInt then err ctx "for bound must be int";
    check_block ctx (SM.add x TInt env) ~in_loop:true body;
    env
  | Expr (Call (fname, _) as e) ->
    (* Effectful expression statement: void calls are legal here. *)
    (match SM.find_opt fname ctx.funcs with
     | Some { f_ret = None; f_params } ->
       (* Re-run the argument checks that [infer] would skip. *)
       (match e with
        | Call (_, args) ->
          if List.length f_params <> List.length args then
            err ctx "call to %s: arity mismatch" fname;
          List.iteri
            (fun k (want, arg) ->
              let got = infer ctx env arg in
              if got <> want then
                err ctx "call to %s: argument %d is %s, expected %s" fname k
                  (string_of_ty got) (string_of_ty want))
            (List.combine f_params args)
        | _ -> assert false)
     | _ -> ignore (infer ctx env e));
    env
  | Expr e ->
    ignore (infer ctx env e);
    env
  | Return None ->
    if ctx.f_ret_ty <> None then err ctx "return without value";
    env
  | Return (Some e) -> begin
    match ctx.f_ret_ty with
    | None -> err ctx "return with value in void function"
    | Some t ->
      let te = infer ctx env e in
      if t <> te then
        err ctx "return type %s, expected %s" (string_of_ty te) (string_of_ty t);
      env
  end
  | Break | Continue ->
    if not in_loop then err ctx "break/continue outside loop";
    env

and check_block ctx env ~in_loop (body : stmt list) : unit =
  ignore
    (List.fold_left (fun env s -> check_stmt ctx env ~in_loop s) env body)

(* Conservative all-paths-return check for non-void functions. *)
let rec always_returns (body : stmt list) =
  List.exists
    (function
      | Return _ -> true
      | If (_, a, b) -> always_returns a && always_returns b
      | _ -> false)
    body

let ctx_of_program (p : program) =
  let globals =
    List.fold_left
      (fun m (g : global) ->
        SM.add g.gname { g_ty = g.gty; g_byte = g.byte; g_size = g.size } m)
      SM.empty p.globals
  in
  let funcs =
    List.fold_left
      (fun m (f : func) ->
        SM.add f.name { f_params = List.map snd f.params; f_ret = f.ret } m)
      SM.empty p.funcs
  in
  (globals, funcs)

let check_program (p : program) =
  let globals, funcs = ctx_of_program p in
  (match List.find_opt (fun (f : func) -> f.name = p.entry) p.funcs with
   | None -> raise (Type_error ("missing entry function " ^ p.entry))
   | Some _ -> ());
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (g : global) ->
      if Hashtbl.mem seen g.gname then
        raise (Type_error ("duplicate global " ^ g.gname));
      Hashtbl.replace seen g.gname ();
      if g.byte && g.gty <> TInt then
        raise (Type_error ("byte array must hold ints: " ^ g.gname));
      (match g.init with
       | GZero -> ()
       | GInts a ->
         if g.gty <> TInt || Array.length a > g.size then
           raise (Type_error ("bad initializer for " ^ g.gname));
         if g.byte then
           Array.iter
             (fun b ->
               if Int32.compare b 0l < 0 || Int32.compare b 255l > 0 then
                 raise (Type_error ("byte init out of range in " ^ g.gname)))
             a
       | GFlts a ->
         if g.gty <> TFlt || Array.length a > g.size then
           raise (Type_error ("bad initializer for " ^ g.gname))))
    p.globals;
  let fseen = Hashtbl.create 16 in
  List.iter
    (fun (f : func) ->
      if Hashtbl.mem fseen f.name then
        raise (Type_error ("duplicate function " ^ f.name));
      Hashtbl.replace fseen f.name ();
      let ctx = { globals; funcs; fname = f.name; f_ret_ty = f.ret } in
      let env =
        List.fold_left (fun m (x, t) -> SM.add x t m) SM.empty f.params
      in
      check_block ctx env ~in_loop:false f.body;
      if f.ret <> None && not (always_returns f.body) then
        raise
          (Type_error (f.name ^ ": non-void function may fall off the end")))
    p.funcs
