(* etap bench diff — the first automated guard over the BENCH_*.json
   trajectory.

   Two bench reports (etap-report/1 documents from `bench --json`) are
   compared cell by cell over the metrics that track performance:

     experiments.wall_s      per experiment name   (higher = worse)
     micro.ns_per_run        per micro name        (higher = worse)
     micro.minstr_per_s      per micro name        (lower  = worse)

   Every matching cell becomes a typed row with the signed delta and a
   direction-adjusted verdict; rows present on only one side surface
   as added/removed instead of silently vanishing (older BENCH
   artifacts predate some tables), and experiments skipped on either
   side stay visible as skipped. With [fail_above] the diff is a gate:
   any cell whose regression exceeds the threshold is a breach, and
   the CLI exits non-zero. Without it the same table ships in
   warn-only mode (the CI default — noisy runners make a hard global
   gate a flake machine; the threshold is opt-in per invocation). *)

module J = Report.Json

type verdict =
  | Same  (* within the labeling threshold *)
  | Regressed
  | Improved
  | Added  (* cell only in the new report *)
  | Removed  (* cell only in the old report *)
  | Skipped  (* experiment skipped (null wall) on either side *)

let verdict_name = function
  | Same -> "ok"
  | Regressed -> "regressed"
  | Improved -> "improved"
  | Added -> "added"
  | Removed -> "removed"
  | Skipped -> "skipped"

type row = {
  metric : string;  (* "wall_s" | "ns_per_run" | "minstr_per_s" *)
  name : string;
  old_v : float option;
  new_v : float option;
  delta_pct : float option;  (* signed, (new - old) / old * 100 *)
  worse_pct : float;  (* regression-direction-adjusted; > 0 is worse *)
  verdict : verdict;
}

type result = {
  rows : row list;
  breaches : int;  (* rows over [fail_above]; 0 when no threshold *)
  threshold : float option;
}

(* ----------------------------- extraction -------------------------- *)

let table_rows id (doc : J.t) : (string * J.t) list list =
  match J.member "tables" doc with
  | Some (J.Arr ts) -> (
    match
      List.find_opt (fun t -> J.member "id" t = Some (J.Str id)) ts
    with
    | Some t -> (
      match J.member "rows" t with
      | Some (J.Arr rows) ->
        List.filter_map (function J.Obj kvs -> Some kvs | _ -> None) rows
      | _ -> [])
    | None -> [])
  | _ -> []

(* (name, value) cells of one metric column; [None] marks a present
   row whose cell is null (a skipped experiment). *)
let cells id key doc : (string * float option) list =
  List.filter_map
    (fun kvs ->
      match List.assoc_opt "name" kvs with
      | Some (J.Str name) ->
        Some
          ( name,
            Option.bind (List.assoc_opt key kvs) (fun v -> J.to_float_opt v) )
      | _ -> None)
    (table_rows id doc)

(* ------------------------------- diff ------------------------------ *)

(* When no hard threshold is given the verdict labels still need a
   noise floor — wall-clock cells jitter a few percent run to run. *)
let label_threshold = 5.0

let diff_metric ~threshold ~metric ~higher_is_worse old_cells new_cells :
    row list =
  let label = Option.value threshold ~default:label_threshold in
  let names =
    List.sort_uniq String.compare
      (List.map fst old_cells @ List.map fst new_cells)
  in
  List.map
    (fun name ->
      let o = List.assoc_opt name old_cells in
      let n = List.assoc_opt name new_cells in
      let mk ?old_v ?new_v ?delta_pct ?(worse = 0.0) verdict =
        {
          metric;
          name;
          old_v;
          new_v;
          delta_pct;
          worse_pct = worse;
          verdict;
        }
      in
      match (o, n) with
      | None, Some n -> mk ?new_v:n Added
      | Some o, None -> mk ?old_v:o Removed
      | Some (Some o), Some (Some n) when o > 0.0 ->
        let delta = (n -. o) /. o *. 100.0 in
        let worse = if higher_is_worse then delta else -.delta in
        let verdict =
          if worse > label then Regressed
          else if worse < -.label then Improved
          else Same
        in
        mk ~old_v:o ~new_v:n ~delta_pct:delta ~worse verdict
      | Some o, Some n ->
        (* Null on either side (skipped experiment) or a degenerate
           zero baseline: visible, never a breach. *)
        mk ?old_v:o ?new_v:n Skipped
      | None, None -> assert false)
    names

let diff ?fail_above ~(old_doc : J.t) ~(new_doc : J.t) () :
    (result, string) Result.t =
  let check_schema which doc =
    if J.member "schema" doc = Some (J.Str Report.schema_version) then Ok ()
    else Error (Printf.sprintf "%s input is not an %s document" which
                  Report.schema_version)
  in
  match (check_schema "old" old_doc, check_schema "new" new_doc) with
  | Error e, _ | _, Error e -> Error e
  | Ok (), Ok () ->
    let metric ~id ~key ~higher_is_worse =
      diff_metric ~threshold:fail_above ~metric:key ~higher_is_worse
        (cells id key old_doc) (cells id key new_doc)
    in
    let rows =
      metric ~id:"experiments" ~key:"wall_s" ~higher_is_worse:true
      @ metric ~id:"micro" ~key:"ns_per_run" ~higher_is_worse:true
      @ metric ~id:"micro" ~key:"minstr_per_s" ~higher_is_worse:false
    in
    if rows = [] then Error "no comparable bench cells in either input"
    else begin
      let breaches =
        match fail_above with
        | None -> 0
        | Some th ->
          List.length (List.filter (fun r -> r.worse_pct > th) rows)
      in
      Ok { rows; breaches; threshold = fail_above }
    end

(* ------------------------------ report ----------------------------- *)

let table (r : result) : Report.table =
  let fnum v = Report.num ~text:(Printf.sprintf "%.3f" v) v in
  let opt = Report.opt ~missing:"-" fnum in
  let rows =
    List.map
      (fun row ->
        [
          Report.text row.metric;
          Report.text row.name;
          opt row.old_v;
          opt row.new_v;
          Report.opt ~missing:"-"
            (fun d -> Report.num ~text:(Printf.sprintf "%+.1f%%" d) d)
            row.delta_pct;
          Report.text (verdict_name row.verdict);
        ])
      r.rows
  in
  Report.table ~id:"bench_diff"
    ~title:
      (match r.threshold with
      | Some th -> Printf.sprintf "Bench regression diff (fail above +%.1f%%)" th
      | None -> "Bench regression diff (warn-only)")
    ~columns:
      [
        Report.column ~key:"metric" "metric";
        Report.column ~key:"name" "name";
        Report.column ~key:"old" "old";
        Report.column ~key:"new" "new";
        Report.column ~key:"delta_pct" "delta";
        Report.column ~key:"status" "status";
      ]
    rows
