(* Blowfish (MiBench): Schneier's 16-round Feistel cipher with
   key-dependent S-boxes, run as the paper runs it — key schedule, ECB
   encrypt of an ASCII text, decrypt, and "% bytes correct from
   original" as the fidelity measure.

   A pleasing property the paper observed ("at 10 errors, the output is
   identical"): a fault during the key schedule corrupts the P/S tables
   *consistently* for both directions, so decrypt(encrypt(x)) is still
   the identity; only faults in the per-block data path (or wild
   stores) damage bytes. *)

let text_bytes = 512
let key = [| 0x4B657931; 0x32333435 |]  (* "Key12345" as two words *)

let mask32 v = v land 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Host reference implementation (unsigned 32-bit convention).         *)

type host_state = { p : int array; s : int array }

let host_init () =
  let pi = Pi_digits.words 1042 in
  { p = Array.sub pi 0 18; s = Array.sub pi 18 1024 }

let f_fun st x =
  let a = (x lsr 24) land 255
  and b = (x lsr 16) land 255
  and c = (x lsr 8) land 255
  and d = x land 255 in
  mask32 (mask32 (mask32 (st.s.(a) + st.s.(256 + b)) lxor st.s.(512 + c)) + st.s.(768 + d))

let encrypt_block st (xl, xr) =
  let xl = ref xl and xr = ref xr in
  for i = 0 to 15 do
    xl := !xl lxor st.p.(i);
    xr := !xr lxor f_fun st !xl;
    let t = !xl in
    xl := !xr;
    xr := t
  done;
  let t = !xl in
  xl := !xr;
  xr := t;
  xr := !xr lxor st.p.(16);
  xl := !xl lxor st.p.(17);
  (!xl, !xr)

let decrypt_block st (xl, xr) =
  let xl = ref xl and xr = ref xr in
  for i = 17 downto 2 do
    xl := !xl lxor st.p.(i);
    xr := !xr lxor f_fun st !xl;
    let t = !xl in
    xl := !xr;
    xr := t
  done;
  let t = !xl in
  xl := !xr;
  xr := t;
  xr := !xr lxor st.p.(1);
  xl := !xl lxor st.p.(0);
  (!xl, !xr)

let key_schedule st =
  for i = 0 to 17 do
    st.p.(i) <- st.p.(i) lxor key.(i mod Array.length key)
  done;
  let l = ref 0 and r = ref 0 in
  for i = 0 to 8 do
    let l', r' = encrypt_block st (!l, !r) in
    l := l';
    r := r';
    st.p.(2 * i) <- l';
    st.p.((2 * i) + 1) <- r'
  done;
  for j = 0 to 511 do
    let l', r' = encrypt_block st (!l, !r) in
    l := l';
    r := r';
    st.s.(2 * j) <- l';
    st.s.((2 * j) + 1) <- r'
  done

let host_roundtrip (text_words : int array) =
  let st = host_init () in
  key_schedule st;
  let n = Array.length text_words in
  assert (n mod 2 = 0);
  let enc = Array.make n 0 and dec = Array.make n 0 in
  let rec blocks k =
    if k < n then begin
      let l, r = encrypt_block st (text_words.(k), text_words.(k + 1)) in
      enc.(k) <- l;
      enc.(k + 1) <- r;
      let l', r' = decrypt_block st (l, r) in
      dec.(k) <- l';
      dec.(k + 1) <- r';
      blocks (k + 2)
    end
  in
  blocks 0;
  (enc, dec)

(* ------------------------------------------------------------------ *)
(* The Mlang program.                                                  *)

let mlang_program (text_words : int array) : Mlang.Ast.program =
  let open Mlang.Dsl in
  let n = Array.length text_words in
  let pi = Pi_digits.words 1042 in
  let to32 a = Array.map Int32.of_int a in
  program
    [
      garray_init "pbox" (to32 (Array.sub pi 0 18));
      garray_init "sbox" (to32 (Array.sub pi 18 1024));
      garray_init "key" (to32 key);
      garray_init "text_in" (to32 text_words);
      garray "enc" n;
      garray "dec" n;
      garray "lr" 2;  (* two-word block register for the round functions *)
    ]
    [
      fn "bf_f" [ p_int "x" ] ~ret:(Some Mlang.Ast.TInt)
        [
          let_ "a" ((v "x" >>! i 24) &! i 255);
          let_ "b" ((v "x" >>! i 16) &! i 255);
          let_ "c" ((v "x" >>! i 8) &! i 255);
          let_ "d" (v "x" &! i 255);
          ret
            ((("sbox".%(v "a") +! "sbox".%(i 256 +! v "b"))
             ^! "sbox".%(i 512 +! v "c"))
            +! "sbox".%(i 768 +! v "d"));
        ];
      proc "encrypt_block" []
        [
          let_ "xl" ("lr".%(i 0));
          let_ "xr" ("lr".%(i 1));
          for_ "round" (i 0) (i 16)
            [
              set "xl" (v "xl" ^! "pbox".%(v "round"));
              set "xr" (v "xr" ^! call "bf_f" [ v "xl" ]);
              let_ "t" (v "xl");
              set "xl" (v "xr");
              set "xr" (v "t");
            ];
          let_ "t2" (v "xl");
          set "xl" (v "xr" ^! "pbox".%(i 17));
          set "xr" (v "t2" ^! "pbox".%(i 16));
          sto "lr" (i 0) (v "xl");
          sto "lr" (i 1) (v "xr");
        ];
      proc "decrypt_block" []
        [
          let_ "xl" ("lr".%(i 0));
          let_ "xr" ("lr".%(i 1));
          let_ "round" (i 17);
          while_ (v "round" >=! i 2)
            [
              set "xl" (v "xl" ^! "pbox".%(v "round"));
              set "xr" (v "xr" ^! call "bf_f" [ v "xl" ]);
              let_ "t" (v "xl");
              set "xl" (v "xr");
              set "xr" (v "t");
              set "round" (v "round" -! i 1);
            ];
          let_ "t2" (v "xl");
          set "xl" (v "xr" ^! "pbox".%(i 0));
          set "xr" (v "t2" ^! "pbox".%(i 1));
          sto "lr" (i 0) (v "xl");
          sto "lr" (i 1) (v "xr");
        ];
      proc "key_schedule" []
        [
          for_ "k" (i 0) (i 18)
            [
              sto "pbox" (v "k") ("pbox".%(v "k") ^! "key".%(v "k" %! i 2));
            ];
          sto "lr" (i 0) (i 0);
          sto "lr" (i 1) (i 0);
          for_ "k" (i 0) (i 9)
            [
              call_ "encrypt_block" [];
              sto "pbox" (i 2 *! v "k") ("lr".%(i 0));
              sto "pbox" ((i 2 *! v "k") +! i 1) ("lr".%(i 1));
            ];
          for_ "k" (i 0) (i 512)
            [
              call_ "encrypt_block" [];
              sto "sbox" (i 2 *! v "k") ("lr".%(i 0));
              sto "sbox" ((i 2 *! v "k") +! i 1) ("lr".%(i 1));
            ];
        ];
      proc "crypt_text" []
        [
          let_ "k" (i 0);
          while_
            (v "k" <! i n)
            [
              sto "lr" (i 0) ("text_in".%(v "k"));
              sto "lr" (i 1) ("text_in".%(v "k" +! i 1));
              call_ "encrypt_block" [];
              sto "enc" (v "k") ("lr".%(i 0));
              sto "enc" (v "k" +! i 1) ("lr".%(i 1));
              call_ "decrypt_block" [];
              sto "dec" (v "k") ("lr".%(i 0));
              sto "dec" (v "k" +! i 1) ("lr".%(i 1));
              set "k" (v "k" +! i 2);
            ];
        ];
      fn ~eligible:false "main" [] ~ret:(Some Mlang.Ast.TInt)
        [ call_ "key_schedule" []; call_ "crypt_text" []; ret (i 0) ];
    ]

(* ------------------------------------------------------------------ *)

let sx32 v = ((v land 0xFFFFFFFF) lxor 0x80000000) - 0x80000000

let build ~seed : App.built =
  let text = Workloads.Text_gen.generate ~seed ~bytes:text_bytes in
  let text_words =
    Array.map Int32.to_int (Workloads.Text_gen.to_words text)
    |> Array.map mask32
  in
  let prog = Mlang.Compile.to_ir (mlang_program text_words) in
  let expected_enc, expected_dec = host_roundtrip text_words in
  let original = Array.map sx32 text_words in
  let bytes_of_words words =
    Array.concat
      (Array.to_list
         (Array.map
            (fun w ->
              let u = w land 0xFFFFFFFF in
              [| (u lsr 24) land 255; (u lsr 16) land 255; (u lsr 8) land 255; u land 255 |])
            words))
  in
  let score ~golden:_ (r : Sim.Interp.result) =
    (* "% bytes correct from original": decrypt output vs input text. *)
    Fidelity.Byte_match.pct_equal
      (bytes_of_words original)
      (bytes_of_words (App.out_ints r prog "dec"))
  in
  let host_check (r : Sim.Interp.result) =
    let enc = App.out_ints r prog "enc" in
    let dec = App.out_ints r prog "dec" in
    if enc <> Array.map sx32 expected_enc then
      Error "blowfish: ciphertext differs from host reference"
    else if dec <> Array.map sx32 expected_dec then
      Error "blowfish: decrypted text differs from host reference"
    else if dec <> original then Error "blowfish: round trip is not identity"
    else Ok ()
  in
  {
    App.app_name = "blowfish";
    prog;
    fidelity_name = "% bytes correct";
    fidelity_units = "%";
    higher_is_better = true;
    threshold = Some 90.0;
    score;
    host_check;
  }

let app : App.t =
  {
    App.name = "blowfish";
    description =
      "Blowfish symmetric block cipher: key schedule + ECB encrypt/decrypt \
       round trip over ASCII text; fidelity = % bytes matching the original";
    source = "MiBench";
    build;
  }
