(* Paper Figures 1-6: fidelity and failure rate versus the number of
   errors inserted. Each figure is a set of sweeps over one
   application; series are printed as text tables (one row per error
   count).

   Sweeps run under the Literal tagging mode (the paper's Section-3
   rules): its injectable pool has the same composition as the paper's
   — dominated by mid-chain arithmetic whose corruption perturbs
   results gently — and the figures' own "Failures" series corresponds
   to the residual catastrophic rate that mode exhibits. Axes follow
   the paper's figures. *)

type series = {
  label : string;
  points : Experiment.sweep_point list;
}

type result = {
  id : string;
  title : string;
  fidelity_name : string;
  series : series list;
}

let find loaded name =
  List.find
    (fun (l : Experiment.loaded) -> l.Experiment.app.Apps.App.name = name)
    loaded

let fig1 ?(trials = 20) ?(seed = 21) ?jobs loaded : result =
  let l = find loaded "susan" in
  let errors_list = [ 0; 100; 550; 920; 1100; 1550; 2300 ] in
  let s policy label =
    {
      label;
      points =
        Experiment.sweep ?jobs l ~mode:Experiment.Literal ~policy ~errors_list
          ~trials ~seed;
    }
  in
  {
    id = "fig1";
    title = "Figure 1: Susan — PSNR of edge map vs errors inserted";
    fidelity_name = "PSNR (dB); threshold 10 dB";
    series =
      [
        s Core.Policy.Protect_control "analysis ON";
        s Core.Policy.Protect_nothing "analysis OFF";
      ];
  }

let one_series_fig ~id ~title ~fidelity_name ~app ~errors_list ?(trials = 20)
    ?(seed = 23) ?jobs loaded : result =
  let l = find loaded app in
  {
    id;
    title;
    fidelity_name;
    series =
      [
        {
          label = "analysis ON";
          points =
            Experiment.sweep ?jobs l ~mode:Experiment.Literal
              ~policy:Core.Policy.Protect_control ~errors_list ~trials ~seed;
        };
      ];
  }

let fig2 ?trials ?seed ?jobs loaded =
  one_series_fig ~id:"fig2"
    ~title:"Figure 2: MPEG — % bad frames and % failed runs vs errors"
    ~fidelity_name:"% bad frames (threshold 10%)" ~app:"mpeg"
    ~errors_list:[ 0; 50; 150; 300; 500 ]
    ?trials ?seed ?jobs loaded

let fig3 ?trials ?seed ?jobs loaded =
  one_series_fig ~id:"fig3"
    ~title:"Figure 3: MCF — % optimal schedules and % failed runs vs errors"
    ~fidelity_name:"schedule quality (100 = optimal)" ~app:"mcf"
    ~errors_list:[ 0; 1; 5; 20; 50; 150; 300 ]
    ?trials ?seed ?jobs loaded

let fig4 ?trials ?seed ?jobs loaded =
  one_series_fig ~id:"fig4"
    ~title:"Figure 4: Blowfish — % bytes correct and % failed runs vs errors"
    ~fidelity_name:"% bytes correct" ~app:"blowfish"
    ~errors_list:[ 0; 5; 10; 20; 30; 40 ]
    ?trials ?seed ?jobs loaded

let fig5 ?trials ?seed ?jobs loaded =
  one_series_fig ~id:"fig5"
    ~title:"Figure 5: GSM — % SNR from optimal and % failed runs vs errors"
    ~fidelity_name:"% SNR from optimal" ~app:"gsm"
    ~errors_list:[ 0; 5; 10; 20; 30; 40 ]
    ?trials ?seed ?jobs loaded

let fig6 ?(trials = 40) ?seed ?jobs loaded =
  one_series_fig ~id:"fig6"
    ~title:"Figure 6: ART — % images recognized and % failed runs vs errors"
    ~fidelity_name:"% recognized" ~app:"art"
    ~errors_list:[ 0; 1; 2; 3; 4 ]
    ~trials ?seed ?jobs loaded

let all ?trials ?seed ?jobs loaded =
  [
    fig1 ?trials ?seed ?jobs loaded;
    fig2 ?trials ?seed ?jobs loaded;
    fig3 ?trials ?seed ?jobs loaded;
    fig4 ?trials ?seed ?jobs loaded;
    fig5 ?trials ?seed ?jobs loaded;
    fig6 ?trials ?seed ?jobs loaded;
  ]

let to_table (r : result) : Report.table =
  let errors_axis =
    match r.series with
    | [] -> []
    | s :: _ -> List.map (fun p -> p.Experiment.errors) s.points
  in
  let columns =
    Report.column ~key:"errors" "errors"
    :: List.concat_map
         (fun s ->
           [
             Report.column (s.label ^ ": fidelity");
             Report.column (s.label ^ ": % failed");
           ])
         r.series
  in
  let fid = function
    | None -> Report.Missing "n/a (all failed)"
    | Some x -> Report.num ~text:(Printf.sprintf "%.1f" x) x
  in
  let series_points = List.map (fun s -> Array.of_list s.points) r.series in
  let rows =
    List.mapi
      (fun i errors ->
        Report.int errors
        :: List.concat_map
             (fun points ->
               let p = points.(i) in
               [
                 fid p.Experiment.mean_fidelity;
                 Report.pct p.Experiment.pct_failed;
               ])
             series_points)
      errors_axis
  in
  Report.table ~id:r.id
    ~title:(r.title ^ "  [" ^ r.fidelity_name ^ "]")
    ~columns rows

let render (r : result) : string = Report.to_text (to_table r)
