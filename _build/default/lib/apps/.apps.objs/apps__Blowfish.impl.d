lib/apps/blowfish.ml: App Array Fidelity Int32 Mlang Pi_digits Sim Workloads
