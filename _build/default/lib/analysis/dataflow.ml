(* Generic iterative dataflow over [Ir.Cfg].

   Both directions use a worklist fixpoint with join over the relevant
   CFG edges. Transfer functions are given per instruction, so clients
   never re-implement block walking. Termination requires the usual
   conditions: [join] monotone w.r.t. [equal]-quotiented domain with
   finite ascending chains (all our domains are finite powersets). *)

module type DOMAIN = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

module Backward (D : DOMAIN) = struct
  type result = {
    live_out : D.t array;  (* state at block end, before last instr *)
    live_in : D.t array;   (* state at block start *)
  }

  (* [exit_state] seeds blocks with no successors (function exits). *)
  let solve (cfg : Ir.Cfg.t) ~exit_state
      ~(transfer : int -> Ir.Instr.t -> D.t -> D.t) : result =
    let n = Ir.Cfg.n_blocks cfg in
    let live_in = Array.make n D.bottom in
    let live_out = Array.make n D.bottom in
    let transfer_block b out =
      let state = ref out in
      Ir.Cfg.rev_iter_instrs cfg (Ir.Cfg.block cfg b) (fun i instr ->
          state := transfer i instr !state);
      !state
    in
    let in_work = Array.make n true in
    let work = Queue.create () in
    (* Seed in reverse order: backward analyses converge faster walking
       from exits toward the entry. *)
    for b = n - 1 downto 0 do
      Queue.add b work
    done;
    while not (Queue.is_empty work) do
      let b = Queue.pop work in
      in_work.(b) <- false;
      let blk = Ir.Cfg.block cfg b in
      let out =
        match blk.Ir.Cfg.succs with
        | [] -> exit_state
        | succs ->
          List.fold_left (fun acc s -> D.join acc live_in.(s)) D.bottom succs
      in
      live_out.(b) <- out;
      let inn = transfer_block b out in
      if not (D.equal inn live_in.(b)) then begin
        live_in.(b) <- inn;
        List.iter
          (fun p ->
            if not in_work.(p) then begin
              in_work.(p) <- true;
              Queue.add p work
            end)
          blk.Ir.Cfg.preds
      end
    done;
    { live_out; live_in }

  (* Replay the fixpoint inside each block to obtain the state *after*
     (in program order) each instruction, i.e. the backward-flow input
     to that instruction. [f i instr state_after] is called for every
     instruction. *)
  let iter_instrs (cfg : Ir.Cfg.t) (r : result)
      ~(transfer : int -> Ir.Instr.t -> D.t -> D.t) f =
    Array.iter
      (fun blk ->
        let state = ref r.live_out.(blk.Ir.Cfg.id) in
        Ir.Cfg.rev_iter_instrs cfg blk (fun i instr ->
            f i instr !state;
            state := transfer i instr !state))
      cfg.Ir.Cfg.blocks
end

module Forward (D : DOMAIN) = struct
  type result = {
    in_state : D.t array;
    out_state : D.t array;
  }

  let solve (cfg : Ir.Cfg.t) ~entry_state
      ~(transfer : int -> Ir.Instr.t -> D.t -> D.t) : result =
    let n = Ir.Cfg.n_blocks cfg in
    let in_state = Array.make n D.bottom in
    let out_state = Array.make n D.bottom in
    let transfer_block b inn =
      let state = ref inn in
      Ir.Cfg.iter_instrs cfg (Ir.Cfg.block cfg b) (fun i instr ->
          state := transfer i instr !state);
      !state
    in
    let order = Ir.Cfg.reverse_postorder cfg in
    let in_work = Array.make n true in
    let work = Queue.create () in
    List.iter (fun b -> Queue.add b work) order;
    while not (Queue.is_empty work) do
      let b = Queue.pop work in
      in_work.(b) <- false;
      let blk = Ir.Cfg.block cfg b in
      let inn =
        if b = 0 then
          List.fold_left
            (fun acc p -> D.join acc out_state.(p))
            entry_state blk.Ir.Cfg.preds
        else
          match blk.Ir.Cfg.preds with
          | [] -> D.bottom  (* unreachable block *)
          | preds ->
            List.fold_left (fun acc p -> D.join acc out_state.(p)) D.bottom preds
      in
      in_state.(b) <- inn;
      let out = transfer_block b inn in
      if not (D.equal out out_state.(b)) then begin
        out_state.(b) <- out;
        List.iter
          (fun s ->
            if not in_work.(s) then begin
              in_work.(s) <- true;
              Queue.add s work
            end)
          blk.Ir.Cfg.succs
      end
    done;
    { in_state; out_state }
end

(* Shared powerset domains. *)

module Reg_set_domain = struct
  type t = Ir.Reg.Set.t

  let bottom = Ir.Reg.Set.empty
  let equal = Ir.Reg.Set.equal
  let join = Ir.Reg.Set.union
end

module Int_set_domain = struct
  module S = Set.Make (Int)

  type t = S.t

  let bottom = S.empty
  let equal = S.equal
  let join = S.union
end
