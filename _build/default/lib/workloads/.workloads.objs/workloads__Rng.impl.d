lib/workloads/rng.ml: Random
