lib/core/outcome.mli: Format Sim
