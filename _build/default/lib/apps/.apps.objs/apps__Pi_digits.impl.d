lib/apps/pi_digits.ml: Array Float Hashtbl
