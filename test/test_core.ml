(* Tests for the paper's contribution: the CVar tagging analysis
   (including the paper's own worked example from Section 3),
   protection policies, the fault model and campaign classification. *)

open Ir

let r reg_no = Reg.int reg_no

(* ------------------------------------------------------------------ *)
(* The worked example of Section 3 of the paper, verbatim:

     I0: $2 = $4 + 1          *
     I1: LD $3, addr[]
     I2: $2 = $3 + 2
     I3: $3 = $3 + 8
     I4: $10 = $8 - $4        *
     I5: $10 = $3 << $2
     I6: $4 = $3 + $6         *
     I7: $3 = $3 + 1
     I8: BNE $3, $10, label

   "The instructions we tag as not influencing the branch in
   instruction I8 are I6, I4 and I0." *)

let paper_example () =
  let base = r 1 in
  Func.make ~name:"paper" ~params:[ r 4; r 8; r 6; base ] ~ret:None
    [
      Instr.Bini (Instr.Add, r 2, r 4, 1l);       (* I0 *)
      Instr.Lw (r 3, base, 0);                    (* I1 *)
      Instr.Bini (Instr.Add, r 2, r 3, 2l);       (* I2 *)
      Instr.Bini (Instr.Add, r 3, r 3, 8l);       (* I3 *)
      Instr.Bin (Instr.Sub, r 10, r 8, r 4);      (* I4 *)
      Instr.Bin (Instr.Sll, r 10, r 3, r 2);      (* I5 *)
      Instr.Bin (Instr.Add, r 4, r 3, r 6);       (* I6 *)
      Instr.Bini (Instr.Add, r 3, r 3, 1l);       (* I7 *)
      Instr.Br (Instr.Ne, r 3, r 10, "label");    (* I8 *)
      Instr.Label "label";
      Instr.Ret None;
    ]

let tagged_indices prog mode =
  let tagging =
    Core.Tagging.compute
      ~protect_addresses:(mode = `Full)
      prog
  in
  match Core.Tagging.low_reliability tagging "paper" with
  | None -> Alcotest.fail "no tagging for function"
  | Some low ->
    List.filter (fun i -> low.(i)) (List.init (Array.length low) Fun.id)

let test_paper_example_literal () =
  let prog = Prog.make ~entry:"paper" ~globals:[] [ paper_example () ] in
  Alcotest.(check (list int)) "I0, I4, I6 tagged" [ 0; 4; 6 ]
    (tagged_indices prog `Literal)

let test_paper_example_full () =
  (* With address protection the same instructions are tagged here:
     the base register is a parameter, so no body instruction feeds an
     address. *)
  let prog = Prog.make ~entry:"paper" ~globals:[] [ paper_example () ] in
  Alcotest.(check (list int)) "I0, I4, I6 tagged" [ 0; 4; 6 ]
    (tagged_indices prog `Full)

(* ------------------------------------------------------------------ *)
(* Address rule difference.                                            *)

let test_address_modes_differ () =
  (* r2 = r0 + 4 feeds only a load address: tagged under the literal
     rules, critical under control+address protection. *)
  let f =
    Func.make ~name:"main" ~params:[ r 0 ] ~ret:(Some Ty.I32)
      [
        Instr.La (r 1, "g");
        Instr.Bin (Instr.Add, r 2, r 1, r 0);   (* address arithmetic *)
        Instr.Lw (r 3, r 2, 0);
        Instr.Ret (Some (r 3));
      ]
  in
  let prog = Prog.make ~globals:[ Prog.global "g" Ty.I32 4 ] [ f ] in
  let low mode =
    let t = Core.Tagging.compute ~protect_addresses:(mode = `Full) prog in
    Option.get (Core.Tagging.low_reliability t "main")
  in
  Alcotest.(check bool) "literal tags address add" true (low `Literal).(1);
  Alcotest.(check bool) "full protects address add" false (low `Full).(1)

(* ------------------------------------------------------------------ *)
(* Interprocedural behaviour.                                          *)

let test_interprocedural_ret_critical () =
  (* g computes x+1; main branches on g's result: the add inside g must
     be critical. *)
  let g =
    Func.make ~name:"g" ~params:[ r 0 ] ~ret:(Some Ty.I32)
      [ Instr.Bini (Instr.Add, r 1, r 0, 1l); Instr.Ret (Some (r 1)) ]
  in
  let main =
    Func.make ~name:"main" ~params:[] ~ret:(Some Ty.I32)
      [
        Instr.Li (r 0, 5l);
        Instr.Call { dst = Some (r 1); func = "g"; args = [ r 0 ] };
        Instr.Brz (Instr.Eq, r 1, "zero");
        Instr.Li (r 2, 1l);
        Instr.Ret (Some (r 2));
        Instr.Label "zero";
        Instr.Li (r 2, 0l);
        Instr.Ret (Some (r 2));
      ]
  in
  let prog = Prog.make ~globals:[] [ main; g ] in
  let t = Core.Tagging.compute prog in
  let g_low = Option.get (Core.Tagging.low_reliability t "g") in
  Alcotest.(check bool) "add in g critical" false g_low.(0);
  let s = Option.get (Core.Tagging.summary t "g") in
  Alcotest.(check bool) "g ret critical" true s.Core.Tagging.ret_critical;
  Alcotest.(check bool) "g param critical" true s.Core.Tagging.critical_params.(0)

let test_interprocedural_ret_not_critical () =
  (* main stores g's result to memory (a data sink): g's body may relax. *)
  let g =
    Func.make ~name:"g" ~params:[ r 0 ] ~ret:(Some Ty.I32)
      [ Instr.Bini (Instr.Add, r 1, r 0, 1l); Instr.Ret (Some (r 1)) ]
  in
  let main =
    Func.make ~name:"main" ~params:[] ~ret:None
      [
        Instr.Li (r 0, 5l);
        Instr.Call { dst = Some (r 1); func = "g"; args = [ r 0 ] };
        Instr.La (r 2, "g_out");
        Instr.Sw (r 1, r 2, 0);
        Instr.Ret None;
      ]
  in
  let prog =
    Prog.make ~globals:[ Prog.global "g_out" Ty.I32 1 ] [ main; g ]
  in
  let t = Core.Tagging.compute prog in
  let g_low = Option.get (Core.Tagging.low_reliability t "g") in
  Alcotest.(check bool) "add in g tagged" true g_low.(0)

let test_ineligible_function () =
  let g =
    Func.make ~eligible:false ~name:"g" ~params:[ r 0 ] ~ret:(Some Ty.I32)
      [ Instr.Bini (Instr.Add, r 1, r 0, 1l); Instr.Ret (Some (r 1)) ]
  in
  let main =
    Func.make ~name:"main" ~params:[] ~ret:None
      [
        Instr.Li (r 0, 5l);
        Instr.Call { dst = Some (r 1); func = "g"; args = [ r 0 ] };
        Instr.La (r 2, "g_out");
        Instr.Sw (r 1, r 2, 0);
        Instr.Ret None;
      ]
  in
  let prog =
    Prog.make ~globals:[ Prog.global "g_out" Ty.I32 1 ] [ main; g ]
  in
  let t = Core.Tagging.compute prog in
  let g_low = Option.get (Core.Tagging.low_reliability t "g") in
  Alcotest.(check bool) "nothing tagged in ineligible g" true
    (Array.for_all not g_low);
  (* and its formals are treated as control-critical by callers *)
  let s = Option.get (Core.Tagging.summary t "g") in
  Alcotest.(check bool) "formals critical" true s.Core.Tagging.critical_params.(0)

(* ------------------------------------------------------------------ *)
(* Policy masks.                                                       *)

let test_policy_masks () =
  let prog = Prog.make ~entry:"paper" ~globals:[] [ paper_example () ] in
  let t = Core.Tagging.compute prog in
  let nothing = Core.Tagging.mask t Core.Policy.Protect_nothing in
  let all = Core.Tagging.mask t Core.Policy.Protect_all in
  let control = Core.Tagging.mask t Core.Policy.Protect_control in
  let count m = Array.fold_left (fun a x -> if x then a + 1 else a) 0 m.(0) in
  Alcotest.(check int) "protect-all exposes none" 0 (count all);
  Alcotest.(check int) "protect-nothing exposes every def" 8 (count nothing);
  Alcotest.(check int) "protect-control exposes tagged" 3 (count control)

(* ------------------------------------------------------------------ *)
(* Fault model.                                                        *)

let test_plan_shape () =
  let rng = Random.State.make [| 42 |] in
  let plan = Core.Fault_model.make_plan ~rng ~injectable_total:1000 ~errors:50 in
  Alcotest.(check int) "50 distinct errors" 50 (Hashtbl.length plan);
  Hashtbl.iter
    (fun ordinal bit ->
      Alcotest.(check bool) "ordinal in range" true (ordinal >= 0 && ordinal < 1000);
      Alcotest.(check bool) "bit in range" true (bit >= 0 && bit < 64))
    plan

let test_plan_saturates () =
  let rng = Random.State.make [| 42 |] in
  let plan = Core.Fault_model.make_plan ~rng ~injectable_total:10 ~errors:50 in
  Alcotest.(check int) "saturated" 10 (Hashtbl.length plan)

let test_plan_empty_pool () =
  let rng = Random.State.make [| 42 |] in
  let plan = Core.Fault_model.make_plan ~rng ~injectable_total:0 ~errors:5 in
  Alcotest.(check int) "no faults possible" 0 (Hashtbl.length plan)

let plan_determinism =
  QCheck.Test.make ~name:"plans deterministic per seed" ~count:50
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (seed, errors) ->
      let mk () =
        let rng = Random.State.make [| seed |] in
        Core.Fault_model.make_plan ~rng ~injectable_total:10_000 ~errors
      in
      let a = mk () and b = mk () in
      Hashtbl.length a = Hashtbl.length b
      && Hashtbl.fold
           (fun k v acc -> acc && Hashtbl.find_opt b k = Some v)
           a true)

(* Dense requests take the Fisher–Yates path (rejection sampling
   degenerates near saturation); the plan must still be exactly
   [wanted] distinct in-range ordinals — including full saturation,
   where rejection sampling's expected work would be n·H(n). *)
let plan_dense_fisher_yates =
  QCheck.Test.make ~name:"dense plans: distinct, in-range, full-size"
    ~count:100
    QCheck.(pair (int_bound 1000) (int_range 1 200))
    (fun (seed, total) ->
      let errors = total in  (* wanted = total: the worst case *)
      let rng = Random.State.make [| seed |] in
      let plan = Core.Fault_model.make_plan ~rng ~injectable_total:total ~errors in
      Hashtbl.length plan = total
      && Hashtbl.fold
           (fun ord bit acc ->
             acc && ord >= 0 && ord < total && bit >= 0 && bit < 64)
           plan true)

let test_planned_cap () =
  Alcotest.(check int) "capped" 10
    (Core.Fault_model.planned ~injectable_total:10 ~errors:50);
  Alcotest.(check int) "uncapped" 5
    (Core.Fault_model.planned ~injectable_total:10 ~errors:5);
  Alcotest.(check int) "empty pool" 0
    (Core.Fault_model.planned ~injectable_total:0 ~errors:5)

(* The sparse path must keep the historical RNG stream: same seed, same
   plan as the rejection sampler always drew. Frozen expectation from
   the pre-Fisher–Yates implementation. *)
let test_plan_sparse_stream_frozen () =
  let rng = Random.State.make [| 7 |] in
  let plan = Core.Fault_model.make_plan ~rng ~injectable_total:100 ~errors:3 in
  let expected_rng = Random.State.make [| 7 |] in
  let expected = Hashtbl.create 3 in
  while Hashtbl.length expected < 3 do
    let ordinal = Random.State.int expected_rng 100 in
    if not (Hashtbl.mem expected ordinal) then
      Hashtbl.replace expected ordinal (Random.State.int expected_rng 64)
  done;
  Alcotest.(check int) "same size" (Hashtbl.length expected)
    (Hashtbl.length plan);
  Hashtbl.iter
    (fun ord bit ->
      Alcotest.(check (option int))
        (Printf.sprintf "ordinal %d" ord)
        (Some bit) (Hashtbl.find_opt plan ord))
    expected

(* ------------------------------------------------------------------ *)
(* Campaigns and the soundness of protection.                          *)

let gcd_mlang =
  let open Mlang.Dsl in
  program
    [ garray "out" 2 ]
    [
      fn "gcd" [ p_int "a"; p_int "b" ] ~ret:(Some Mlang.Ast.TInt)
        [
          while_ (v "b" <>! i 0)
            [ let_ "t" (v "b"); set "b" (v "a" %! v "b"); set "a" (v "t") ];
          ret (v "a");
        ];
      fn "main" [] ~ret:(Some Mlang.Ast.TInt)
        [
          let_ "g" (call "gcd" [ i 252; i 105 ]);
          let_ "scaled" (v "g" *! i 3);
          sto "out" (i 0) (v "scaled");
          ret (i 0);
        ];
    ]

let test_campaign_classification () =
  let prog = Mlang.Compile.to_ir gcd_mlang in
  let target = Core.Campaign.of_prog prog in
  let p = Core.Campaign.prepare target Core.Policy.Protect_control in
  let s = Core.Campaign.run p ~errors:1 ~trials:10 ~seed:3 in
  Alcotest.(check int) "all trials accounted" 10
    (Core.Campaign.crashes s + Core.Campaign.infinite s
    + Core.Campaign.completed s)

(* Soundness: with control+address protection and no memory round trip
   into control, a single injected fault can never change the execution
   path — the dynamic instruction count stays exactly the baseline. *)
let test_protection_soundness () =
  let prog = Mlang.Compile.to_ir gcd_mlang in
  let target = Core.Campaign.of_prog ~protect_addresses:true prog in
  let baseline = target.Core.Campaign.baseline.Sim.Interp.dyn_count in
  let p = Core.Campaign.prepare target Core.Policy.Protect_control in
  Alcotest.(check bool) "something injectable" true
    (p.Core.Campaign.injectable_total > 0);
  for trial = 0 to 60 do
    let rng = Random.State.make [| 99; trial |] in
    let t = Core.Campaign.run_trial p ~errors:1 ~rng ~index:trial in
    match t.Core.Campaign.outcome with
    | Core.Outcome.Completed ->
      Alcotest.(check int) "path unchanged" baseline t.Core.Campaign.dyn_count
    | o -> Alcotest.failf "catastrophic under protection: %s" (Core.Outcome.to_string o)
  done

let test_unprotected_can_diverge () =
  let prog = Mlang.Compile.to_ir gcd_mlang in
  let target = Core.Campaign.of_prog prog in
  let baseline = target.Core.Campaign.baseline.Sim.Interp.dyn_count in
  let p = Core.Campaign.prepare target Core.Policy.Protect_nothing in
  let diverged = ref false in
  for trial = 0 to 60 do
    let rng = Random.State.make [| 7; trial |] in
    let t = Core.Campaign.run_trial p ~errors:2 ~rng ~index:trial in
    match t.Core.Campaign.outcome with
    | Core.Outcome.Completed ->
      if t.Core.Campaign.dyn_count <> baseline then diverged := true
    | _ -> diverged := true
  done;
  Alcotest.(check bool) "unprotected faults change paths" true !diverged

(* Randomized soundness audit: generate random Mlang kernels whose
   memory traffic is write-only (no value is loaded back after being
   stored, so the analysis's only blind spot — the memory roundtrip —
   cannot occur). Under Full-mode protection, ANY single fault on a
   tagged instruction must leave the execution path identical. *)
let random_kernel seed =
  let open Mlang.Dsl in
  let rng = Random.State.make [| 0xbeef; seed |] in
  let n_stmts = 3 + Random.State.int rng 6 in
  let vars = [ "a"; "b"; "c" ] in
  let rvar () = List.nth vars (Random.State.int rng 3) in
  let rec expr depth =
    if depth = 0 then
      if Random.State.bool rng then i (Random.State.int rng 100 - 50)
      else v (rvar ())
    else
      let x = expr (depth - 1) and y = expr (depth - 1) in
      match Random.State.int rng 5 with
      | 0 -> x +! y
      | 1 -> x -! y
      | 2 -> x *! y
      | 3 -> x ^! y
      | _ -> x &! y
  in
  let body = ref [] in
  for k = 0 to n_stmts - 1 do
    let stmt =
      match Random.State.int rng 3 with
      | 0 -> set (rvar ()) (expr 2)
      | 1 -> sto "out" (i (k mod 8)) (expr 2)
      | _ ->
        for_ (Printf.sprintf "t%d" k) (i 0)
          (i (1 + Random.State.int rng 5))
          [ set (rvar ()) (expr 1 +! v (Printf.sprintf "t%d" k)) ]
    in
    body := stmt :: !body
  done;
  program
    [ garray "out" 8 ]
    [
      fn "main" [] ~ret:(Some Mlang.Ast.TInt)
        (List.concat
           [
             [ let_ "a" (i 3); let_ "b" (i 11); let_ "c" (i (-7)) ];
             List.rev !body;
             [ ret (v "a" +! v "b" +! v "c") ];
           ]);
    ]

let tagging_soundness_prop =
  QCheck.Test.make ~name:"random kernels: protected faults never change paths"
    ~count:60
    QCheck.(int_bound 100_000)
    (fun seed ->
      let prog = Mlang.Compile.to_ir (random_kernel seed) in
      let target = Core.Campaign.of_prog ~protect_addresses:true prog in
      let baseline = target.Core.Campaign.baseline.Sim.Interp.dyn_count in
      let p = Core.Campaign.prepare target Core.Policy.Protect_control in
      p.Core.Campaign.injectable_total = 0
      || List.for_all
           (fun trial ->
             let rng = Random.State.make [| seed; trial |] in
             let t = Core.Campaign.run_trial p ~errors:1 ~rng ~index:trial in
             match t.Core.Campaign.outcome with
             | Core.Outcome.Completed ->
               t.Core.Campaign.dyn_count = baseline
             | _ -> false)
           (List.init 5 Fun.id))

(* A request above the injectable pool is capped per plan; the summary
   must report the actual per-trial plan size, not echo the request. *)
let test_campaign_cap_reported () =
  let prog = Mlang.Compile.to_ir gcd_mlang in
  let target = Core.Campaign.of_prog prog in
  let p = Core.Campaign.prepare target Core.Policy.Protect_nothing in
  let pool = p.Core.Campaign.injectable_total in
  let s = Core.Campaign.run p ~errors:(pool + 5) ~trials:3 ~seed:1 in
  Alcotest.(check bool) "capped flagged" true (Core.Campaign.errors_capped s);
  Alcotest.(check int) "requested echoed" (pool + 5)
    s.Core.Campaign.errors_requested;
  Alcotest.(check int) "planned = pool" pool s.Core.Campaign.errors_planned;
  List.iter
    (fun (t : Core.Campaign.trial) ->
      Alcotest.(check int) "trial records cap" pool
        t.Core.Campaign.faults_planned)
    s.Core.Campaign.trials;
  let s' = Core.Campaign.run p ~errors:1 ~trials:2 ~seed:1 in
  Alcotest.(check bool) "uncapped not flagged" false
    (Core.Campaign.errors_capped s')

(* Parallel determinism: the per-trial RNG derivation makes trials
   order-independent, so any jobs count must yield the same summary,
   trial for trial. Compare the observable content of each trial
   (classification, fault counts, dynamic length of completed runs). *)
let trial_fingerprint (t : Core.Campaign.trial) =
  let dyn =
    match t.Core.Campaign.outcome with
    | Core.Outcome.Completed -> t.Core.Campaign.dyn_count
    | Core.Outcome.Crash _ | Core.Outcome.Infinite -> -1
  in
  Printf.sprintf "%d/%s/%d/%d/%d" t.Core.Campaign.index
    (Core.Outcome.to_string t.Core.Campaign.outcome)
    t.Core.Campaign.faults_planned t.Core.Campaign.faults_landed dyn

let test_campaign_jobs_bit_exact () =
  let prog = Mlang.Compile.to_ir gcd_mlang in
  let target = Core.Campaign.of_prog prog in
  let p = Core.Campaign.prepare target Core.Policy.Protect_nothing in
  let fingerprints jobs =
    let s = Core.Campaign.run ~jobs p ~errors:2 ~trials:13 ~seed:5 in
    ( List.map trial_fingerprint s.Core.Campaign.trials,
      ( Core.Campaign.n s,
        Core.Campaign.crashes s,
        Core.Campaign.infinite s,
        Core.Campaign.completed s ) )
  in
  let ref_trials, ref_counts = fingerprints 1 in
  List.iter
    (fun jobs ->
      let trials, counts = fingerprints jobs in
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d trials identical" jobs)
        ref_trials trials;
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d counts identical" jobs)
        true (counts = ref_counts))
    [ 2; 4; 13 ]

(* The explicit seed encoding must stay frozen: these constants are
   what [Hashtbl.hash] produced on the runtime the goldens were made
   with, and every published campaign number depends on them. *)
let test_policy_seed_tag_frozen () =
  Alcotest.(check int) "protect-control" 129913994
    (Core.Policy.seed_tag Core.Policy.Protect_control);
  Alcotest.(check int) "protect-nothing" 883721435
    (Core.Policy.seed_tag Core.Policy.Protect_nothing);
  Alcotest.(check int) "protect-all" 648017920
    (Core.Policy.seed_tag Core.Policy.Protect_all)

(* prepare sizes the injectable pool arithmetically from the baseline's
   exec counts; pin that against an actual profiling interpretation
   (empty plan under the same mask, counting hook firings), which is
   what the pool used to be measured by. *)
let test_prepare_pool_arithmetic () =
  let prog = Mlang.Compile.to_ir gcd_mlang in
  let target = Core.Campaign.of_prog prog in
  List.iter
    (fun policy ->
      let p = Core.Campaign.prepare target policy in
      let injection =
        Core.Fault_model.profiling_injection ~tags:p.Core.Campaign.tags
      in
      let r = Sim.Interp.run ~injection target.Core.Campaign.code in
      Alcotest.(check int)
        ("arithmetic pool = profiled pool: " ^ Core.Policy.to_string policy)
        r.Sim.Interp.injectable_seen p.Core.Campaign.injectable_total)
    [
      Core.Policy.Protect_control;
      Core.Policy.Protect_nothing;
      Core.Policy.Protect_all;
    ]

let test_outcome_classification () =
  Alcotest.(check bool) "crash catastrophic" true
    (Core.Outcome.is_catastrophic
       (Core.Outcome.Crash (Sim.Trap.Division_by_zero, None)));
  Alcotest.(check bool) "infinite catastrophic" true
    (Core.Outcome.is_catastrophic Core.Outcome.Infinite)

(* ------------------------------------------------------------------ *)

(* [Campaign.run_trial_result] — the escape hatch returning a trial's
   raw simulator result, memory image included — must hand back exactly
   the state a scratch reference run produces: same final memory image
   (digest compare), same outcome, counters and landed sites, under
   both engines and with checkpointing on (the default resume path) and
   off. The scratch reference rebuilds the same plan from the same
   derived RNG and runs the reference loop from the pristine image. *)
let test_run_trial_result_matches_scratch () =
  let module Campaign = Core.Campaign in
  let module Policy = Core.Policy in
  let module Fault_model = Core.Fault_model in
  let app =
    match Apps.Registry.find "adpcm" with
    | Some a -> a
    | None -> Alcotest.fail "adpcm missing"
  in
  let prog = (app.Apps.App.build ~seed:1).Apps.App.prog in
  List.iter
    (fun engine ->
      List.iter
        (fun stride ->
          let target = Campaign.of_prog ~engine prog in
          let p =
            Campaign.prepare ?checkpoint_stride:stride target
              Policy.Protect_nothing
          in
          List.iter
            (fun (seed, errors, index) ->
              let label what =
                Printf.sprintf "%s (engine=%s stride=%s e=%d i=%d)" what
                  (Sim.Interp.engine_name engine)
                  (match stride with None -> "auto" | Some s -> string_of_int s)
                  errors index
              in
              let rng =
                Campaign.trial_rng ~seed ~errors ~policy:p.Campaign.policy
                  index
              in
              let r = Campaign.run_trial_result p ~errors ~rng in
              let rng' =
                Campaign.trial_rng ~seed ~errors ~policy:p.Campaign.policy
                  index
              in
              let plan =
                Fault_model.make_plan ~rng:rng'
                  ~injectable_total:p.Campaign.injectable_total ~errors
              in
              let injection = Fault_model.injection ~tags:p.Campaign.tags ~plan in
              let ref_r =
                Sim.Interp.run ~injection ~budget:p.Campaign.budget
                  ~memory:(Sim.Memory.copy target.Campaign.proto)
                  target.Campaign.code
              in
              Alcotest.(check string)
                (label "final memory image")
                (Sim.Memory.digest ref_r.Sim.Interp.memory)
                (Sim.Memory.digest r.Sim.Interp.memory);
              Alcotest.(check bool)
                (label "outcome") true
                (compare r.Sim.Interp.outcome ref_r.Sim.Interp.outcome = 0);
              Alcotest.(check int) (label "dyn_count")
                ref_r.Sim.Interp.dyn_count r.Sim.Interp.dyn_count;
              Alcotest.(check int) (label "faults_landed")
                ref_r.Sim.Interp.faults_landed r.Sim.Interp.faults_landed;
              Alcotest.(check bool)
                (label "landed sites") true
                (r.Sim.Interp.landed_sites = ref_r.Sim.Interp.landed_sites))
            [ (5, 0, 0); (5, 3, 1); (9, 10, 2); (9, 25, 3) ])
        [ None; Some 0 ])
    [ Sim.Interp.Fast; Sim.Interp.Ref ]

let () =
  Alcotest.run "core"
    [
      ( "tagging",
        [
          Alcotest.test_case "paper worked example (literal)" `Quick
            test_paper_example_literal;
          Alcotest.test_case "paper worked example (full)" `Quick
            test_paper_example_full;
          Alcotest.test_case "address modes differ" `Quick
            test_address_modes_differ;
          Alcotest.test_case "interprocedural ret critical" `Quick
            test_interprocedural_ret_critical;
          Alcotest.test_case "interprocedural ret relaxed" `Quick
            test_interprocedural_ret_not_critical;
          Alcotest.test_case "ineligible function" `Quick
            test_ineligible_function;
          Alcotest.test_case "policy masks" `Quick test_policy_masks;
        ] );
      ( "fault model",
        [
          Alcotest.test_case "plan shape" `Quick test_plan_shape;
          Alcotest.test_case "plan saturates" `Quick test_plan_saturates;
          Alcotest.test_case "empty pool" `Quick test_plan_empty_pool;
          QCheck_alcotest.to_alcotest plan_determinism;
          QCheck_alcotest.to_alcotest plan_dense_fisher_yates;
          Alcotest.test_case "planned cap" `Quick test_planned_cap;
          Alcotest.test_case "sparse RNG stream frozen" `Quick
            test_plan_sparse_stream_frozen;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "classification totals" `Quick
            test_campaign_classification;
          Alcotest.test_case "protection soundness" `Quick
            test_protection_soundness;
          Alcotest.test_case "unprotected diverges" `Quick
            test_unprotected_can_diverge;
          QCheck_alcotest.to_alcotest tagging_soundness_prop;
          Alcotest.test_case "parallel jobs bit-exact" `Quick
            test_campaign_jobs_bit_exact;
          Alcotest.test_case "cap reported in summary" `Quick
            test_campaign_cap_reported;
          Alcotest.test_case "policy seed tags frozen" `Quick
            test_policy_seed_tag_frozen;
          Alcotest.test_case "prepare pool arithmetic" `Quick
            test_prepare_pool_arithmetic;
          Alcotest.test_case "outcome classes" `Quick
            test_outcome_classification;
          Alcotest.test_case "run_trial_result matches scratch" `Quick
            test_run_trial_result_matches_scratch;
        ] );
    ]
