lib/harness/figures.ml: Apps Core Experiment Float List Printf Tablefmt
