(** Classification of an injected run (paper Section 5): catastrophic
    failures are crashes and "infinite" executions; completed runs are
    scored by the application's fidelity measure.

    Compact by construction — no variant retains the simulator result
    (or its memory image), so classified trials cost O(1) memory. *)

type site = {
  func : string;  (** function containing the trapping instruction *)
  pc : int;  (** body index of that instruction *)
}

type t =
  | Crash of Sim.Trap.t * site option
      (** trap plus the site the interpreter attributed it to *)
  | Infinite  (** exceeded the dynamic-instruction budget *)
  | Completed

val of_result : Sim.Interp.result -> t
val is_catastrophic : t -> bool

val site_to_string : site -> string
(** ["func+pc"]. *)

val to_string : t -> string
(** Frozen classification wording (no site), as used by campaign text
    output and golden fingerprints. *)

val describe : t -> string
(** Like {!to_string} but crashes include their site when known. *)

val pp : Format.formatter -> t -> unit
