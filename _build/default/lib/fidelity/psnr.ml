(* Peak signal-to-noise ratio between two equal-length integer images,
   the ImageMagick-comparison substitute used for Susan (paper Table 1:
   fidelity threshold 10 dB PSNR). *)

let cap_db = 99.0  (* reported for identical images *)

let mse a b =
  if Array.length a <> Array.length b then invalid_arg "psnr: length mismatch";
  if Array.length a = 0 then invalid_arg "psnr: empty image";
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = float_of_int (x - b.(i)) in
      acc := !acc +. (d *. d))
    a;
  !acc /. float_of_int (Array.length a)

let psnr_db ?(peak = 255.0) a b =
  let m = mse a b in
  if m = 0.0 then cap_db
  else
    let v = 10.0 *. log10 (peak *. peak /. m) in
    Float.min v cap_db

let meets_threshold ?peak ~threshold_db a b = psnr_db ?peak a b >= threshold_db
