lib/ir/reg.ml: Format Map Printf Set Stdlib
