examples/custom_app.ml: Array Core Int32 List Mlang Printf Sim
