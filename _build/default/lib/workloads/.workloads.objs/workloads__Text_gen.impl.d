lib/workloads/text_gen.ml: Array Buffer Char Int32 List Rng String
