(* etap serve — the warm-state campaign daemon (DESIGN.md §17).

   Every standalone `etap` invocation pays the full cold-start tax —
   workload generation, Mlang compilation, tagging, baseline runs,
   fast-engine compilation, snapshot builds — before the first trial
   executes. This module keeps all of that warm across *requests*: a
   long-running process answers line-delimited [Proto] requests
   (inject-shaped campaigns and matrix-shaped sweeps) with the same
   typed-status [etap-report/1] documents the CLI emits, bit-identical
   to standalone runs because both sides route through the same
   builders ([inject_report] here, [Matrix.run_cell]/[Matrix.report_meta]
   for sweeps) and the same [Core.Memo] result cache.

   Three layers:

   - {b Warm registry} — loaded apps keyed by (name, seed), prepared
     targets and section partitions keyed by (app, seed, mode, policy),
     built once on first use under a registry lock. [Experiment.load]'s
     internal memos keep targets lazy, so a request only ever builds
     the modes/policies it touches. Every campaign still routes
     through [Core.Memo], so results persist across daemon restarts.

   - {b In-flight coalescing} — concurrent requests whose
     [Proto.group_key]s collide attach to the running computation (a
     promise table): one execution, N responses. New requests arriving
     after a flight lands run fresh — and hit the result cache.

   - {b Shared executor} — one pool of worker domains executes every
     job the daemon schedules: trial batches from inject requests,
     whole cells from matrix requests, across all connections. Workers
     take one job from the head batch then rotate it to the tail, so
     concurrent requests interleave fairly instead of queueing behind
     each other. Submitters on worker domains {e help} (they execute
     queued jobs — their own batch's or another's — while waiting,
     which makes nested submits deadlock-free on a finite pool);
     connection-handler threads wait passively and never execute jobs.

   Threading discipline for telemetry: obs buffers are per-domain and
   lock-free, so two systhreads of one domain must not record
   concurrently. All campaign work (and its obs traffic) runs on
   worker domains, each of which has exactly one thread; the few
   counters recorded on domain 0 — [serve.requests], [serve.coalesced],
   [serve.malformed], gc accounting — are serialized under the daemon
   state lock, which every handler thread shares. *)

module J = Report.Json

(* ----------------------------- executor ---------------------------- *)

module Executor = struct
  type batch = {
    jobs : (unit -> unit) array;  (* each job stores its own result *)
    mutable next : int;  (* next job index to hand out *)
    mutable finished : int;  (* jobs that completed execution *)
  }

  type t = {
    m : Mutex.t;
    progress : Condition.t;  (* job finished / queue grew / stop *)
    queue : batch Queue.t;  (* batches with unhanded jobs, rotating *)
    mutable stop : bool;
    mutable idle : int;  (* workers parked in [Condition.wait] *)
    mutable workers : unit Domain.t list;
  }

  (* Take one job, round-robin over batches: pop the head batch, hand
     out its next job, and re-queue it at the tail if jobs remain.
     Caller holds [m]. *)
  let take t =
    if Queue.is_empty t.queue then None
    else begin
      let b = Queue.pop t.queue in
      let job = b.jobs.(b.next) in
      b.next <- b.next + 1;
      if b.next < Array.length b.jobs then Queue.push b t.queue;
      Some (job, b)
    end

  (* Caller holds [m]. *)
  let finish t b =
    b.finished <- b.finished + 1;
    Condition.broadcast t.progress

  let worker_loop t =
    Mutex.lock t.m;
    let rec loop () =
      if t.stop && Queue.is_empty t.queue then Mutex.unlock t.m
      else
        match take t with
        | Some (job, b) ->
          Mutex.unlock t.m;
          job ();
          Mutex.lock t.m;
          finish t b;
          loop ()
        | None ->
          t.idle <- t.idle + 1;
          Condition.wait t.progress t.m;
          t.idle <- t.idle - 1;
          loop ()
    in
    loop ()

  let create ~jobs =
    let t =
      {
        m = Mutex.create ();
        progress = Condition.create ();
        queue = Queue.create ();
        stop = false;
        idle = 0;
        workers = [];
      }
    in
    t.workers <-
      List.init (max 1 jobs) (fun _ -> Domain.spawn (fun () -> worker_loop t));
    t

  (* Block until every job of [thunks] has finished. With [help] the
     caller drains queued jobs (any batch's) while waiting — required
     from worker domains, where parking the thread could starve the
     pool; forbidden from connection handlers, whose domain-0 obs
     buffer is not theirs to write. Deadlock-freedom of helping: a
     thread only waits when no job is takeable, and then every
     handed-out job has a live runner that will [finish] it. *)
  let submit_batch t ~help (thunks : (unit -> unit) array) =
    let n = Array.length thunks in
    if n > 0 then begin
      let b = { jobs = thunks; next = 0; finished = 0 } in
      Mutex.lock t.m;
      Queue.push b t.queue;
      Condition.broadcast t.progress;
      while b.finished < n do
        match if help then take t else None with
        | Some (job, b') ->
          Mutex.unlock t.m;
          job ();
          Mutex.lock t.m;
          finish t b'
        | None -> Condition.wait t.progress t.m
      done;
      Mutex.unlock t.m
    end

  (* Run [f] over [xs] through the pool and return results in input
     order. Exceptions are captured per element and re-raised on the
     submitter after the whole batch lands. *)
  let map t ~help f xs =
    let arr = Array.of_list xs in
    let out = Array.make (Array.length arr) None in
    let thunks =
      Array.mapi
        (fun i x ->
          fun () -> out.(i) <- Some (try Ok (f x) with e -> Error e))
        arr
    in
    submit_batch t ~help thunks;
    Array.to_list
      (Array.map
         (function
           | Some (Ok v) -> v
           | Some (Error e) -> raise e
           | None -> assert false)
         out)

  (* Queue-depth / utilization snapshot for the [stats] verb. [busy]
     is workers minus parked workers — approximate by nature (a worker
     between taking a job and re-locking counts as busy), which is the
     right reading for a utilization gauge. *)
  type pool_stats = {
    workers : int;
    busy : int;
    queued_jobs : int;  (* jobs not yet handed to any worker *)
    queued_batches : int;
  }

  let stats t : pool_stats =
    Mutex.lock t.m;
    let queued_jobs =
      Queue.fold (fun acc b -> acc + (Array.length b.jobs - b.next)) 0 t.queue
    in
    let workers = List.length t.workers in
    let s =
      {
        workers;
        busy = workers - t.idle;
        queued_jobs;
        queued_batches = Queue.length t.queue;
      }
    in
    Mutex.unlock t.m;
    s

  let shutdown t =
    Mutex.lock t.m;
    t.stop <- true;
    Condition.broadcast t.progress;
    Mutex.unlock t.m;
    List.iter Domain.join t.workers;
    t.workers <- []
end

(* --------------------------- daemon state -------------------------- *)

type config = {
  jobs : int option;  (* worker domains; default: cores - 1 *)
  engine : Sim.Interp.engine;
  checkpoint_stride : int option;
  cache_dir : string;
  gc_max_bytes : int option;  (* with either bound set, gc runs *)
  gc_max_age_days : float option;  (* between requests *)
  access_log : string option;
      (* one etap-access/1 JSONL line per request, appended *)
  gate : (string -> unit) option;
      (* test hook: a flight winner calls this with its group key after
         registering in the promise table and before computing, so
         tests can hold the winner until an attacher has joined. *)
}

let default_config =
  {
    jobs = None;
    engine = Sim.Interp.Fast;
    checkpoint_stride = None;
    cache_dir = "_etap_cache";
    gc_max_bytes = None;
    gc_max_age_days = None;
    access_log = None;
    gate = None;
  }

type flight = {
  mutable outcome : (Report.t option * string option) option;
      (* None while the winner computes *)
  mutable waiters : int;
}

type t = {
  cfg : config;
  store : Core.Memo.Store.t;
  ex : Executor.t;
  m : Mutex.t;  (* inflight table + stopping + domain-0 obs writes
                   + stats baseline + access-log channel *)
  flight_done : Condition.t;
  inflight : (string, flight) Hashtbl.t;
  mutable stopping : bool;
  mutable failures : int;  (* requests answered with status "failed" *)
  rl : Mutex.t;  (* warm registry *)
  apps : (string * int, Experiment.loaded) Hashtbl.t;  (* (name, seed) *)
  prepped :
    ( string * int * string * int,
      Core.Campaign.prepared * Analysis.Section.t )
    Hashtbl.t;  (* (name, seed, mode, policy tag) *)
  sink : Obs.sink;  (* the sink the [stats] verb snapshots *)
  owns_sink : bool;  (* we installed it; restore [disabled] on shutdown *)
  started_us : float;
  mutable last_stats : Obs.view * float;
      (* previous [stats] snapshot and its timestamp — the left edge of
         the next interval section *)
  access : out_channel option;  (* etap-access/1 JSONL, written under [m] *)
}

let create ?(config = default_config) () : t =
  (* A client vanishing mid-response must fail that [output_string],
     not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let jobs =
    match config.jobs with
    | Some j -> max 1 j
    | None -> max 1 (Domain.recommended_domain_count () - 1)
  in
  (* The [stats] verb needs telemetry regardless of --trace/--metrics,
     so a daemon without an ambient sink installs its own — without
     span recording, whose per-event log would grow unboundedly over a
     daemon lifetime. When the operator did enable tracing, the daemon
     snapshots that sink instead of forking the telemetry stream. *)
  let sink, owns_sink =
    if Obs.enabled () then (Obs.installed (), false)
    else begin
      let s = Obs.make ~record_spans:false () in
      Obs.install s;
      (s, true)
    end
  in
  let started_us = Obs.now_us () in
  {
    cfg = config;
    store = Core.Memo.Store.open_ config.cache_dir;
    ex = Executor.create ~jobs;
    m = Mutex.create ();
    flight_done = Condition.create ();
    inflight = Hashtbl.create 8;
    stopping = false;
    failures = 0;
    rl = Mutex.create ();
    apps = Hashtbl.create 8;
    prepped = Hashtbl.create 16;
    sink;
    owns_sink;
    started_us;
    last_stats = (Obs.snapshot sink, started_us);
    access =
      Option.map
        (fun p ->
          open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 p)
        config.access_log;
  }

let shutdown t =
  Executor.shutdown t.ex;
  (match t.access with
  | Some oc -> ( try close_out oc with Sys_error _ -> ())
  | None -> ());
  if t.owns_sink && Obs.installed () == t.sink then Obs.install Obs.disabled

(* ---------------------------- warm registry ------------------------ *)

(* Per-request accounting for the access log. Warm-registry outcomes
   are recorded here as well as in the global counters — under the
   registry lock, so the mutation is serialized even when a matrix
   request's cells resolve apps from several worker domains — which is
   what lets one request's access-log line sum exactly the work it did
   while other requests run concurrently (global counter deltas cannot
   be attributed per request). *)
type access_acc = {
  mutable acc_warm_hits : int;
  mutable acc_warm_misses : int;
}

let fresh_acc () = { acc_warm_hits = 0; acc_warm_misses = 0 }

(* Called from worker domains only (each its own obs buffer). The
   registry lock is held across cold builds: concurrent first requests
   for the same app serialize instead of building twice. *)
let registry_load t ~(acc : access_acc) (app : Apps.App.t) ~seed :
    Experiment.loaded =
  let key = (app.Apps.App.name, seed) in
  Mutex.lock t.rl;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.rl)
    (fun () ->
      match Hashtbl.find_opt t.apps key with
      | Some l ->
        Obs.count "serve.warm_hit" 1;
        acc.acc_warm_hits <- acc.acc_warm_hits + 1;
        l
      | None ->
        Obs.count "serve.warm_miss" 1;
        acc.acc_warm_misses <- acc.acc_warm_misses + 1;
        let sp = Obs.span_begin () in
        let l =
          Experiment.load ~seed ~engine:t.cfg.engine
            ?checkpoint_stride:t.cfg.checkpoint_stride app
        in
        Obs.span_end ~name:"serve.load" ~cat:"serve"
          ~args:[ ("app", app.Apps.App.name) ]
          sp;
        Hashtbl.replace t.apps key l;
        l)

let registry_prepared t (l : Experiment.loaded) ~name ~seed ~mode policy :
    Core.Campaign.prepared * Analysis.Section.t =
  let key =
    (name, seed, Experiment.mode_name mode, Core.Policy.seed_tag policy)
  in
  Mutex.lock t.rl;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.rl)
    (fun () ->
      match Hashtbl.find_opt t.prepped key with
      | Some v -> v
      | None ->
        let sp = Obs.span_begin () in
        let p = l.Experiment.prepared mode policy in
        let v = (p, Core.Memo.sections_of p) in
        Obs.span_end ~name:"serve.prepare" ~cat:"serve"
          ~args:
            [ ("app", name); ("policy", Core.Policy.to_string policy) ]
          sp;
        Hashtbl.replace t.prepped key v;
        v)

(* ----------------------------- reports ----------------------------- *)

(* The inject report, byte-for-byte the document `etap inject --json`
   writes — bin/etap.ml calls this too, so the CLI and the daemon
   cannot drift apart. [cache = Some (dir, totals)] is the incremental
   path; [None] reproduces a plain (non-incremental) run's meta. *)
let inject_report ~app ~errors ~trials ~seed ~literal ~engine ~jobs
    ~checkpoint_stride ~fidelity_units
    ~(cache : (string * Core.Memo.stats) option)
    (summaries : (Core.Policy.t * Core.Campaign.summary) list) : Report.t =
  let table =
    Report.table ~id:"inject"
      ~title:
        (Printf.sprintf "Fault-injection campaign: %s, %d errors" app errors)
      ~columns:
        [
          Report.column ~key:"policy" "policy";
          Report.column ~key:"trials" "trials";
          Report.column ~key:"errors_planned" "errors planned";
          Report.column ~key:"pct_catastrophic" "% catastrophic";
          Report.column ~key:"crashes" "crashes";
          Report.column ~key:"infinite" "infinite";
          Report.column ~key:"completed" "completed";
          Report.column ~key:"mean_fidelity" "mean fidelity";
        ]
      (List.map
         (fun (policy, s) ->
           [
             Report.text (Core.Policy.to_string policy);
             Report.int (Core.Campaign.n s);
             Report.int s.Core.Campaign.errors_planned;
             Report.pct (Core.Campaign.pct_catastrophic s);
             Report.int (Core.Campaign.crashes s);
             Report.int (Core.Campaign.infinite s);
             Report.int (Core.Campaign.completed s);
             Report.opt ~missing:"n/a"
               (fun m -> Report.num ~text:(Printf.sprintf "%.1f" m) m)
               (Core.Campaign.mean_fidelity s);
           ])
         summaries)
  in
  Report.make ~command:"inject"
    ~meta:
      ([
         ("app", J.Str app);
         ("errors", J.Int errors);
         ("trials", J.Int trials);
         ("seed", J.Int seed);
         ("literal", J.Bool literal);
         ("engine", J.Str (Sim.Interp.engine_name engine));
         ("jobs", J.of_int_opt jobs);
         ("checkpoint_stride", J.of_int_opt checkpoint_stride);
         ("fidelity_units", J.Str fidelity_units);
         ("incremental", J.Bool (cache <> None));
         ( "cache_dir",
           match cache with Some (d, _) -> J.Str d | None -> J.Null );
       ]
      @
      match cache with
      | None -> []
      | Some (_, st) ->
        [
          ("cache_sections", J.Int st.Core.Memo.sections);
          ("cache_hits", J.Int st.Core.Memo.hits);
          ("cache_misses", J.Int st.Core.Memo.misses);
          ("cache_trials_reused", J.Int st.Core.Memo.trials_reused);
          ("cache_trials_run", J.Int st.Core.Memo.trials_run);
        ])
    [ table ]

(* ----------------------------- handlers ---------------------------- *)

let add_stats (a : Core.Memo.stats) (b : Core.Memo.stats) : Core.Memo.stats =
  Core.Memo.
    {
      sections = a.sections + b.sections;
      hits = a.hits + b.hits;
      misses = a.misses + b.misses;
      trials_reused = a.trials_reused + b.trials_reused;
      trials_run = a.trials_run + b.trials_run;
    }

(* Trial fan-out for inject campaigns: hand [Memo.run]'s miss batch to
   the shared executor. The submitter is an orchestration job on a
   worker domain, so it helps. *)
let memo_fanout t exec indices = Executor.map t.ex ~help:true exec indices

let unknown_app name =
  Printf.sprintf "unknown application %S (known: %s)" name
    (String.concat ", " Apps.Registry.names)

let run_inject t ~acc (i : Proto.inject_req) :
    Report.t option * string option =
  match Apps.Registry.find i.app with
  | None -> (None, Some (unknown_app i.app))
  | Some app ->
    let l = registry_load t ~acc app ~seed:i.seed in
    let mode =
      if i.literal then Experiment.Literal else Experiment.Full
    in
    let b = l.Experiment.built in
    let target = l.Experiment.target mode in
    let golden = target.Core.Campaign.baseline in
    let score r = b.Apps.App.score ~golden r in
    let totals = ref Core.Memo.zero_stats in
    let summaries =
      List.map
        (fun policy ->
          let p, sections =
            registry_prepared t l ~name:i.app ~seed:i.seed ~mode policy
          in
          let s, st =
            Core.Memo.run ~fanout:(memo_fanout t) ~score ~salt:i.app
              ~sections ~store:t.store p ~errors:i.errors ~trials:i.trials
              ~seed:(i.seed + 100)
          in
          totals := add_stats !totals st;
          (policy, s))
        [ Core.Policy.Protect_control; Core.Policy.Protect_nothing ]
    in
    let rep =
      inject_report ~app:i.app ~errors:i.errors ~trials:i.trials ~seed:i.seed
        ~literal:i.literal ~engine:t.cfg.engine ~jobs:None
        ~checkpoint_stride:t.cfg.checkpoint_stride
        ~fidelity_units:b.Apps.App.fidelity_units
        ~cache:(Some (t.cfg.cache_dir, !totals))
        summaries
    in
    (Some rep, None)

let dedup xs =
  List.rev
    (List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs)

let run_matrix t ~acc (s : Matrix.spec) : Report.t option * string option =
  let t_run = Unix.gettimeofday () in
  let sp = Obs.span_begin () in
  let cells = Matrix.cells_of_spec s in
  (* Apps resolve through the warm registry — sequentially, since on a
     warm daemon they are table lookups. Unknown names never load;
     their cells fail below, exactly like the CLI sweep. *)
  let t_load = Unix.gettimeofday () in
  let loaded =
    List.filter_map
      (fun n ->
        Option.map
          (fun app -> (n, registry_load t ~acc app ~seed:s.Matrix.seed))
          (Apps.Registry.find n))
      (dedup s.Matrix.apps)
  in
  let load_s = Unix.gettimeofday () -. t_load in
  let lookup n = List.assoc_opt n loaded in
  let pool_of (l : Experiment.loaded) policy =
    let tgt = l.Experiment.target s.Matrix.mode in
    Core.Campaign.injectable_pool tgt
      (Core.Tagging.mask tgt.Core.Campaign.tagging policy)
  in
  let prepared_of n policy =
    let l = List.assoc n loaded in
    let pool = pool_of l policy in
    if pool = 0 then (0, None)
    else
      ( pool,
        Some
          (registry_prepared t l ~name:n ~seed:s.Matrix.seed
             ~mode:s.Matrix.mode policy) )
  in
  (* Cells are the scheduling unit: they fan over the shared executor
     (interleaving with any other in-flight request's batches), trials
     inside each cell run inline on the owning worker — the same
     inner-jobs-1 shape as the CLI sweep. *)
  let statuses =
    Executor.map t.ex ~help:true
      (Matrix.run_cell ~lookup ~prepared_of ~store:t.store)
      cells
  in
  let cells =
    List.map2
      (fun cell status -> { Matrix.cell; status })
      cells statuses
  in
  Matrix.record_counters cells;
  Obs.span_end ~name:"matrix.run" ~cat:"matrix"
    ~args:[ ("cells", string_of_int (List.length cells)) ]
    sp;
  let r =
    {
      Matrix.spec = s;
      cells;
      load_s;
      wall_s = Unix.gettimeofday () -. t_run;
    }
  in
  let meta =
    Matrix.report_meta ~engine:t.cfg.engine ~jobs:None
      ~checkpoint_stride:t.cfg.checkpoint_stride ~cache_dir:t.cfg.cache_dir r
  in
  let rep =
    Report.make ~command:"matrix" ~meta
      [ Matrix.to_table r; Matrix.anomaly_table r ]
  in
  (* A failed cell is a failed response — but the full typed report
     still ships with it: never a silent partial result. *)
  (Some rep, Matrix.failures_message r)

let dispatch t ~acc (req : Proto.request) : Report.t option * string option =
  let sp = Obs.span_begin () in
  let kind =
    match req with
    | Proto.Inject _ -> "inject"
    | Proto.Matrix _ -> "matrix"
    | Proto.Ping | Proto.Stats | Proto.Shutdown -> "control"
  in
  let (_, err) as r =
    match req with
    | Proto.Inject i -> run_inject t ~acc i
    | Proto.Matrix s -> run_matrix t ~acc s
    | Proto.Ping | Proto.Stats | Proto.Shutdown -> (None, None)
  in
  Obs.span_end ~name:"serve.request" ~cat:"serve"
    ~args:
      [ ("kind", kind); ("status", if err = None then "ok" else "failed") ]
    sp;
  r

(* --------------------------- coalescing ---------------------------- *)

(* Ship the computation to a worker domain and park this (handler)
   thread until it lands. *)
let on_worker t (f : unit -> 'a) : ('a, exn) result =
  let slot = ref None in
  Executor.submit_batch t.ex ~help:false
    [| (fun () -> slot := Some (try Ok (f ()) with e -> Error e)) |];
  Option.get !slot

(* One execution per in-flight group key: the first request in wins
   and computes; any request with the same key arriving before the
   outcome lands attaches as a waiter and receives the same payload.
   The returned flag says which side this call was — [true] for a
   waiter, whose access-log line must not claim the winner's work.
   Runs on handler threads — domain-0 obs writes stay under [t.m]. *)
let coalesced_run t ~key (compute : unit -> Report.t option * string option)
    : (Report.t option * string option) * bool =
  Mutex.lock t.m;
  match Hashtbl.find_opt t.inflight key with
  | Some f ->
    f.waiters <- f.waiters + 1;
    Obs.count "serve.coalesced" 1;
    while f.outcome = None do
      Condition.wait t.flight_done t.m
    done;
    f.waiters <- f.waiters - 1;
    let r = Option.get f.outcome in
    Mutex.unlock t.m;
    (r, true)
  | None ->
    let f = { outcome = None; waiters = 0 } in
    Hashtbl.replace t.inflight key f;
    Mutex.unlock t.m;
    (match t.cfg.gate with Some g -> g key | None -> ());
    let r =
      match compute () with
      | r -> r
      | exception e -> (None, Some (Printexc.to_string e))
    in
    Mutex.lock t.m;
    f.outcome <- Some r;
    Hashtbl.remove t.inflight key;
    Condition.broadcast t.flight_done;
    Mutex.unlock t.m;
    (r, false)

(* Waiters currently attached to [key]'s flight — 0 when none is in
   flight. Lets a [gate] hook hold a winner until an attacher joins. *)
let inflight_waiters t ~key =
  Mutex.lock t.m;
  let n =
    match Hashtbl.find_opt t.inflight key with
    | Some f -> f.waiters
    | None -> 0
  in
  Mutex.unlock t.m;
  n

(* ------------------------------- gc -------------------------------- *)

let gc_configured t = t.cfg.gc_max_bytes <> None || t.cfg.gc_max_age_days <> None

(* Between-requests cache maintenance. Under the registry lock so at
   most one sweep runs at a time; concurrent campaign reads/writes are
   safe against eviction by construction of the store. *)
let maybe_gc t =
  if gc_configured t then begin
    Mutex.lock t.rl;
    let st =
      Core.Memo.Store.gc ?max_bytes:t.cfg.gc_max_bytes
        ?max_age_days:t.cfg.gc_max_age_days t.store
    in
    Mutex.unlock t.rl;
    Mutex.lock t.m;
    Obs.count "serve.gc_runs" 1;
    Obs.count "serve.gc_evicted" st.Core.Memo.Store.gc_evicted;
    Mutex.unlock t.m
  end

(* --------------------------- introspection ------------------------- *)

let counter (v : Obs.view) name =
  Option.value ~default:0 (List.assoc_opt name v.Obs.counters)

let counters_json (v : Obs.view) =
  J.Obj (List.map (fun (k, c) -> (k, J.Int c)) v.Obs.counters)

(* Per-request-kind latency digests, from the "serve.request_us.<kind>"
   histograms [serve_connection] observes end-to-end (receipt to
   response-ready) on every request. *)
let latency_json (v : Obs.view) =
  let prefix = "serve.request_us." in
  let plen = String.length prefix in
  J.Obj
    (List.filter_map
       (fun (name, h) ->
         if
           String.length name > plen
           && String.equal (String.sub name 0 plen) prefix
         then begin
           let q p =
             match Obs.Hist.quantile h p with
             | None -> J.Null
             | Some x -> J.Float x
           in
           Some
             ( String.sub name plen (String.length name - plen),
               J.Obj
                 [
                   ("count", J.Int (Obs.Hist.count h));
                   ("p50_us", q 0.50);
                   ("p90_us", q 0.90);
                   ("p99_us", q 0.99);
                 ] )
         end
         else None)
       v.Obs.hists)

(* The etap-stats/1 document. Registry sizes and the store walk come
   first (each under its own lock — never while holding [t.m], to keep
   the lock order trivial); the snapshot, the interval baseline swap
   and the failure count happen atomically under the state mutex, so
   two concurrent [stats] requests see disjoint, gapless windows.
   Counter deltas are [Obs.diff]s of mergeable families: exact and
   jobs-invariant (DESIGN.md §18). *)
let stats_json t : J.t =
  Mutex.lock t.rl;
  let apps = Hashtbl.length t.apps in
  let prepped = Hashtbl.length t.prepped in
  Mutex.unlock t.rl;
  let entries = Core.Memo.Store.scan t.store in
  let store_entries = List.length entries in
  let store_bytes = List.fold_left (fun a (_, sz, _) -> a + sz) 0 entries in
  let ex = Executor.stats t.ex in
  Mutex.lock t.m;
  let now = Obs.now_us () in
  let snap = Obs.snapshot t.sink in
  let prev, prev_at = t.last_stats in
  t.last_stats <- (snap, now);
  let failures = t.failures in
  Mutex.unlock t.m;
  let delta = Obs.diff snap prev in
  let c = counter snap in
  let section v =
    J.Obj [ ("counters", counters_json v); ("latency", latency_json v) ]
  in
  J.Obj
    [
      ("schema", J.Str Proto.stats_schema);
      ("uptime_us", J.Int (int_of_float (now -. t.started_us)));
      ("window_us", J.Int (int_of_float (now -. prev_at)));
      ( "requests",
        J.Obj
          [
            ("served", J.Int (c "serve.requests"));
            ("failed", J.Int failures);
            ("coalesced", J.Int (c "serve.coalesced"));
            ("malformed", J.Int (c "serve.malformed"));
          ] );
      ( "warm",
        J.Obj
          [
            ("hits", J.Int (c "serve.warm_hit"));
            ("misses", J.Int (c "serve.warm_miss"));
            ("apps", J.Int apps);
            ("prepared", J.Int prepped);
          ] );
      ( "store",
        J.Obj
          [
            ("entries", J.Int store_entries);
            ("bytes", J.Int store_bytes);
            ("gc_runs", J.Int (c "serve.gc_runs"));
            ("gc_evicted", J.Int (c "serve.gc_evicted"));
          ] );
      ( "executor",
        J.Obj
          [
            ("workers", J.Int ex.Executor.workers);
            ("busy", J.Int ex.Executor.busy);
            ("queued_jobs", J.Int ex.Executor.queued_jobs);
            ("queued_batches", J.Int ex.Executor.queued_batches);
          ] );
      ("totals", section snap);
      ("interval", section delta);
    ]

(* The ping health object: liveness probes double as cheap health
   checks without paying for a store walk or an interval swap. *)
let info_json t : J.t =
  Mutex.lock t.m;
  let now = Obs.now_us () in
  let snap = Obs.snapshot t.sink in
  Mutex.unlock t.m;
  J.Obj
    [
      ("uptime_us", J.Int (int_of_float (now -. t.started_us)));
      ("requests_served", J.Int (counter snap "serve.requests"));
      ( "schemas",
        J.Obj
          [
            ("serve", J.Str Proto.schema);
            ("report", J.Str Report.schema_version);
            ("stats", J.Str Proto.stats_schema);
            ("access", J.Str Proto.access_schema);
            ("cache", J.Str Core.Memo.Store.schema);
          ] );
    ]

(* One etap-access/1 JSONL line per request. Work accounting comes
   from the request's own report meta (cache_hits/cells_hit, trial
   counts) plus the warm accumulator — never from global counters, so
   concurrent requests cannot bleed into each other's lines. Waiters
   of a coalesced flight pass [report:None]: the pair logs exactly one
   execution, on the winner's line. Written and flushed under [t.m] so
   lines from concurrent handler threads never interleave. *)
let log_access t ~rid ~kind ~key ~status ~wall_us ~coalesced
    ~(acc : access_acc) ~(report : Report.t option) =
  match t.access with
  | None -> ()
  | Some oc ->
    let meta_int k =
      match report with
      | None -> 0
      | Some r -> (
        match List.assoc_opt k r.Report.meta with
        | Some (J.Int i) -> i
        | _ -> 0)
    in
    (* Inject meta carries cache_* keys, matrix meta cells_* and bare
       trial totals; each key set is absent on the other path, so the
       sums read whichever one the report carries. *)
    let line =
      J.Obj
        [
          ("schema", J.Str Proto.access_schema);
          ("ts_us", J.Int (int_of_float (Obs.now_us ())));
          ("id", rid);
          ("kind", J.Str kind);
          ("key", match key with Some k -> J.Str k | None -> J.Null);
          ("status", J.Str status);
          ("wall_us", J.Int wall_us);
          ("coalesced", J.Bool coalesced);
          ("warm_hits", J.Int acc.acc_warm_hits);
          ("warm_misses", J.Int acc.acc_warm_misses);
          ("cache_hits", J.Int (meta_int "cache_hits" + meta_int "cells_hit"));
          ( "cache_misses",
            J.Int (meta_int "cache_misses" + meta_int "cells_miss") );
          ( "trials_run",
            J.Int (meta_int "cache_trials_run" + meta_int "trials_run") );
          ( "trials_reused",
            J.Int (meta_int "cache_trials_reused" + meta_int "trials_reused")
          );
        ]
    in
    Mutex.lock t.m;
    output_string oc (J.to_compact_string line);
    output_char oc '\n';
    flush oc;
    Mutex.unlock t.m

(* ---------------------------- transports --------------------------- *)

(* One connection: read request lines until EOF / shutdown, answer
   each on its own line. Any write failure (client went away) ends the
   connection quietly — in-flight work completes and lands in the
   result cache either way. *)
let serve_connection t ~ic ~oc : [ `Closed | `Shutdown ] =
  let send resp =
    try
      output_string oc (Proto.response_line resp);
      output_char oc '\n';
      flush oc;
      true
    with Sys_error _ -> false
  in
  let count ?(fail = false) name =
    Mutex.lock t.m;
    Obs.count name 1;
    if fail then t.failures <- t.failures + 1;
    Mutex.unlock t.m
  in
  (* End-to-end request latency (receipt to response-ready), observed
     into the per-kind histogram the [stats] verb digests. Under [t.m]:
     handler threads share domain 0's obs buffer. *)
  let observe_latency kind wall_us =
    Mutex.lock t.m;
    Obs.observe ("serve.request_us." ^ kind) wall_us;
    Mutex.unlock t.m
  in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> `Closed
    | line when String.trim line = "" -> loop ()
    | line -> (
      let t0 = Obs.now_us () in
      let wall () = int_of_float (Obs.now_us () -. t0) in
      count "serve.requests";
      let rid, parsed = Proto.request_of_line line in
      let finish ~kind ~key ~status ~coalesced ~acc ~logged_report resp cont =
        let w = wall () in
        observe_latency kind (float_of_int w);
        log_access t ~rid ~kind ~key ~status ~wall_us:w ~coalesced ~acc
          ~report:logged_report;
        if send resp then cont () else `Closed
      in
      let simple ~kind ?error ?(extra = []) cont =
        finish ~kind ~key:None
          ~status:(if error = None then "ok" else "failed")
          ~coalesced:false ~acc:(fresh_acc ()) ~logged_report:None
          { Proto.rid; report = None; error; extra }
          cont
      in
      match parsed with
      | Error msg ->
        count ~fail:true "serve.malformed";
        simple ~kind:"malformed" ~error:msg loop
      | Ok Proto.Ping ->
        simple ~kind:"ping" ~extra:[ ("info", info_json t) ] loop
      | Ok Proto.Stats ->
        (* Answered inline on the handler thread — introspection must
           not queue behind campaign batches on a busy executor. *)
        simple ~kind:"stats" ~extra:[ ("stats", stats_json t) ] loop
      | Ok Proto.Shutdown ->
        (* Stops the daemon even when the response write fails — a
           vanished client must not cancel an acknowledged shutdown. *)
        let w = wall () in
        observe_latency "shutdown" (float_of_int w);
        log_access t ~rid ~kind:"shutdown" ~key:None ~status:"ok" ~wall_us:w
          ~coalesced:false ~acc:(fresh_acc ()) ~report:None;
        ignore (send { Proto.rid; report = None; error = None; extra = [] });
        `Shutdown
      | Ok req ->
        let key = Proto.group_key req in
        let kind =
          match req with Proto.Matrix _ -> "matrix" | _ -> "inject"
        in
        let acc = fresh_acc () in
        let (report, error), coalesced =
          coalesced_run t ~key (fun () ->
              match on_worker t (fun () -> dispatch t ~acc req) with
              | Ok r -> r
              | Error e -> (None, Some (Printexc.to_string e)))
        in
        maybe_gc t;
        if error <> None then count ~fail:true "serve.failed";
        finish ~kind ~key:(Some key)
          ~status:(if error = None then "ok" else "failed")
          ~coalesced ~acc
          ~logged_report:(if coalesced then None else report)
          { Proto.rid; report; error; extra = [] }
          loop)
  in
  loop ()

(* Requests this daemon answered with a typed failure — the daemon's
   exit status is non-zero when this is, so a failing cell can never
   hide behind an otherwise clean shutdown. *)
let failed_requests t =
  Mutex.lock t.m;
  let n = t.failures in
  Mutex.unlock t.m;
  n

let request_stop t =
  Mutex.lock t.m;
  t.stopping <- true;
  Mutex.unlock t.m

let stopping t =
  Mutex.lock t.m;
  let s = t.stopping in
  Mutex.unlock t.m;
  s

(* Unix-domain socket daemon: one handler systhread per connection,
   all sharing the executor, registry and flight table. A [shutdown]
   request from any connection stops the accept loop (checked every
   200 ms); open connections drain before the executor is torn down. *)
let run_socket t ~path =
  if Sys.file_exists path then (try Unix.unlink path with Unix.Unix_error _ -> ());
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX path);
  Unix.listen srv 16;
  let handlers = ref [] in
  let rec accept_loop () =
    if not (stopping t) then begin
      let readable, _, _ = Unix.select [ srv ] [] [] 0.2 in
      if readable <> [] then begin
        let fd, _ = Unix.accept srv in
        let th =
          Thread.create
            (fun fd ->
              let ic = Unix.in_channel_of_descr fd in
              let oc = Unix.out_channel_of_descr fd in
              let res = serve_connection t ~ic ~oc in
              (try close_out oc with Sys_error _ -> ());
              match res with
              | `Shutdown -> request_stop t
              | `Closed -> ())
            fd
        in
        handlers := th :: !handlers
      end;
      accept_loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Thread.join !handlers;
      (try Unix.close srv with Unix.Unix_error _ -> ());
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      shutdown t)
    accept_loop

(* Stdin/stdout transport: one connection, then a clean executor
   teardown. *)
let run_stdio t =
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () -> ignore (serve_connection t ~ic:stdin ~oc:stdout))

(* Client side of the socket transport ([etap serve --connect]). *)
let connect ~path : in_channel * out_channel =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
