(* GSM (MiBench telecomm): a reduced RPE-LTP speech codec with the
   06.10 structure the paper injects into — per-subframe long-term
   prediction (lag search + 2-bit gain), regular-pulse-excitation grid
   selection, APCM block quantization, and a decoder that mirrors the
   closed-loop encoder. All arithmetic is integer (fixed point), like
   the real codec.

   Fidelity (paper Figure 5, "% SNR from Optimal"): the decoded
   signal's SNR against the original speech, as a percentage of the
   fault-free decode's SNR. *)

let n_samples = 640       (* 4 frames x 160 samples *)
let sub_len = 40
let n_sub = n_samples / sub_len
let min_lag = 40
let max_lag = 120
let n_pulses = 13         (* RPE subsampling by 3: 13 pulses per subframe *)

(* LTP gain quantizer: levels b = {0.10, 0.35, 0.65, 1.00} in Q5. *)
let gain_levels = [| 3; 11; 21; 32 |]

(* ------------------------------------------------------------------ *)
(* Host reference implementation.                                      *)

type coded = {
  lags : int array;
  gains : int array;   (* index into gain_levels *)
  grids : int array;
  xmaxs : int array;
  pulses : int array;  (* n_sub * n_pulses *)
}

(* Select gain index from scaled cross/energy correlations, using
   multiplication-only threshold tests (0.2 / 0.5 / 0.8). *)
let quantize_gain ~cross ~energy =
  if cross <= 0 || energy <= 0 then 0
  else if 5 * cross < energy then 0
  else if 2 * cross < energy then 1
  else if 5 * cross < 4 * energy then 2
  else 3

let host_codec (speech : int array) =
  let lags = Array.make n_sub 0
  and gains = Array.make n_sub 0
  and grids = Array.make n_sub 0
  and xmaxs = Array.make n_sub 0
  and pulses = Array.make (n_sub * n_pulses) 0 in
  let recon = Array.make n_samples 0 in
  (* ---- encoder (closed loop over [recon]) ---- *)
  for s = 0 to n_sub - 1 do
    let base = s * sub_len in
    let hist k = if k < 0 then 0 else recon.(k) in
    (* LTP lag search on >>3-scaled samples to keep products small *)
    let best_lag = ref min_lag and best_cross = ref min_int in
    for lag = min_lag to max_lag do
      let cross = ref 0 in
      for k = 0 to sub_len - 1 do
        cross :=
          !cross + ((speech.(base + k) asr 3) * (hist (base + k - lag) asr 3))
      done;
      if !cross > !best_cross then begin
        best_cross := !cross;
        best_lag := lag
      end
    done;
    let lag = !best_lag in
    let energy = ref 0 in
    for k = 0 to sub_len - 1 do
      let h = hist (base + k - lag) asr 3 in
      energy := !energy + (h * h)
    done;
    let gidx = quantize_gain ~cross:!best_cross ~energy:!energy in
    let b = gain_levels.(gidx) in
    (* short-term residual after LTP *)
    let resid = Array.make sub_len 0 in
    for k = 0 to sub_len - 1 do
      resid.(k) <- speech.(base + k) - ((b * hist (base + k - lag)) asr 5)
    done;
    (* RPE grid: the subsampling phase with maximal energy *)
    let best_grid = ref 0 and best_e = ref min_int in
    for m = 0 to 2 do
      let e = ref 0 in
      for j = 0 to n_pulses - 1 do
        let x = resid.(m + (3 * j)) asr 2 in
        e := !e + (x * x)
      done;
      if !e > !best_e then begin
        best_e := !e;
        best_grid := m
      end
    done;
    let m = !best_grid in
    (* APCM: scale the 13 pulses by the block maximum into [-7, 7] *)
    let xmax = ref 0 in
    for j = 0 to n_pulses - 1 do
      let a = abs resid.(m + (3 * j)) in
      if a > !xmax then xmax := a
    done;
    for j = 0 to n_pulses - 1 do
      let q =
        if !xmax = 0 then 0 else resid.(m + (3 * j)) * 7 / !xmax
      in
      pulses.((s * n_pulses) + j) <- q
    done;
    lags.(s) <- lag;
    gains.(s) <- gidx;
    grids.(s) <- m;
    xmaxs.(s) <- !xmax;
    (* reconstruct for the closed loop *)
    for k = 0 to sub_len - 1 do
      recon.(base + k) <- (b * hist (base + k - lag)) asr 5
    done;
    for j = 0 to n_pulses - 1 do
      let e' =
        if !xmax = 0 then 0 else pulses.((s * n_pulses) + j) * !xmax / 7
      in
      recon.(base + m + (3 * j)) <- recon.(base + m + (3 * j)) + e'
    done
  done;
  (* ---- decoder (independent pass over the coded parameters) ----
     Each parameter is masked to its bitstream field width before use
     (identity on valid encoder output), and samples saturate to 16
     bits — as in the real codec. *)
  let dec = Array.make n_samples 0 in
  for s = 0 to n_sub - 1 do
    let base = s * sub_len in
    let hist k = if k < 0 then 0 else dec.(k) in
    let lag =
      let l = lags.(s) land 127 in
      if l < min_lag then min_lag else l
    in
    let b = gain_levels.(gains.(s) land 3) in
    let m =
      let m = grids.(s) land 3 in
      if m > 2 then 2 else m
    in
    let xmax = xmaxs.(s) land 0x7FFF in
    for k = 0 to sub_len - 1 do
      dec.(base + k) <- (b * hist (base + k - lag)) asr 5
    done;
    for j = 0 to n_pulses - 1 do
      let q = ((pulses.((s * n_pulses) + j) + 8) land 15) - 8 in
      let e' = if xmax = 0 then 0 else q * xmax / 7 in
      dec.(base + m + (3 * j)) <-
        App.clamp (-32768) 32767 (dec.(base + m + (3 * j)) + e')
    done
  done;
  ({ lags; gains; grids; xmaxs; pulses }, recon, dec)

(* ------------------------------------------------------------------ *)
(* The Mlang program.                                                  *)

let mlang_program (speech : int array) : Mlang.Ast.program =
  let open Mlang.Dsl in
  let a32 = App.ints_of_array in
  (* hist(k) as a guarded load is inlined via a helper function *)
  program
    [
      garray_init "speech" (a32 speech);
      garray_init "glevels" (a32 gain_levels);
      garray "recon" n_samples;
      garray "dec" n_samples;
      garray "lags" n_sub;
      garray "gains" n_sub;
      garray "grids" n_sub;
      garray "xmaxs" n_sub;
      garray "pulses" (n_sub * n_pulses);
      garray "resid" sub_len;
    ]
    [
      (* recon[k] for k possibly negative (history before start) *)
      fn "hist_r" [ p_int "k" ] ~ret:(Some Mlang.Ast.TInt)
        [ when_ (v "k" <! i 0) [ ret (i 0) ]; ret ("recon".%(v "k")) ];
      fn "hist_d" [ p_int "k" ] ~ret:(Some Mlang.Ast.TInt)
        [ when_ (v "k" <! i 0) [ ret (i 0) ]; ret ("dec".%(v "k")) ];
      fn "clamp16" [ p_int "x" ] ~ret:(Some Mlang.Ast.TInt)
        [
          when_ (v "x" >! i 32767) [ ret (i 32767) ];
          when_ (v "x" <! i (-32768)) [ ret (i (-32768)) ];
          ret (v "x");
        ];
      fn "quant_gain" [ p_int "cross"; p_int "energy" ]
        ~ret:(Some Mlang.Ast.TInt)
        [
          when_ ((v "cross" <=! i 0) ||! (v "energy" <=! i 0)) [ ret (i 0) ];
          when_ ((i 5 *! v "cross") <! v "energy") [ ret (i 0) ];
          when_ ((i 2 *! v "cross") <! v "energy") [ ret (i 1) ];
          when_ ((i 5 *! v "cross") <! (i 4 *! v "energy")) [ ret (i 2) ];
          ret (i 3);
        ];
      proc "encode" []
        [
          for_ "s" (i 0) (i n_sub)
            [
              let_ "base" (v "s" *! i sub_len);
              (* LTP lag search *)
              let_ "best_lag" (i min_lag);
              let_ "best_cross" (i (-1073741824));
              for_ "lag" (i min_lag)
                (i (max_lag + 1))
                [
                  let_ "cross" (i 0);
                  for_ "k" (i 0) (i sub_len)
                    [
                      set "cross"
                        (v "cross"
                        +! (("speech".%(v "base" +! v "k") >>>! i 3)
                           *! (call "hist_r" [ v "base" +! v "k" -! v "lag" ]
                              >>>! i 3)));
                    ];
                  when_
                    (v "cross" >! v "best_cross")
                    [ set "best_cross" (v "cross"); set "best_lag" (v "lag") ];
                ];
              let_ "lag" (v "best_lag");
              let_ "energy" (i 0);
              for_ "k" (i 0) (i sub_len)
                [
                  let_ "h"
                    (call "hist_r" [ v "base" +! v "k" -! v "lag" ] >>>! i 3);
                  set "energy" (v "energy" +! (v "h" *! v "h"));
                ];
              let_ "gidx" (call "quant_gain" [ v "best_cross"; v "energy" ]);
              let_ "b" ("glevels".%(v "gidx"));
              for_ "k" (i 0) (i sub_len)
                [
                  sto "resid" (v "k")
                    ("speech".%(v "base" +! v "k")
                    -! ((v "b" *! call "hist_r" [ v "base" +! v "k" -! v "lag" ])
                       >>>! i 5));
                ];
              (* RPE grid selection *)
              let_ "best_grid" (i 0);
              let_ "best_e" (i (-1073741824));
              for_ "m" (i 0) (i 3)
                [
                  let_ "e" (i 0);
                  for_ "j" (i 0) (i n_pulses)
                    [
                      let_ "x" ("resid".%(v "m" +! (i 3 *! v "j")) >>>! i 2);
                      set "e" (v "e" +! (v "x" *! v "x"));
                    ];
                  when_
                    (v "e" >! v "best_e")
                    [ set "best_e" (v "e"); set "best_grid" (v "m") ];
                ];
              let_ "m" (v "best_grid");
              (* APCM *)
              let_ "xmax" (i 0);
              for_ "j" (i 0) (i n_pulses)
                [
                  let_ "a" ("resid".%(v "m" +! (i 3 *! v "j")));
                  when_ (v "a" <! i 0) [ set "a" (neg (v "a")) ];
                  when_ (v "a" >! v "xmax") [ set "xmax" (v "a") ];
                ];
              for_ "j" (i 0) (i n_pulses)
                [
                  let_ "q" (i 0);
                  when_
                    (v "xmax" <>! i 0)
                    [
                      set "q"
                        ("resid".%(v "m" +! (i 3 *! v "j")) *! i 7 /! v "xmax");
                    ];
                  sto "pulses" ((v "s" *! i n_pulses) +! v "j") (v "q");
                ];
              sto "lags" (v "s") (v "lag");
              sto "gains" (v "s") (v "gidx");
              sto "grids" (v "s") (v "m");
              sto "xmaxs" (v "s") (v "xmax");
              (* closed-loop reconstruction *)
              for_ "k" (i 0) (i sub_len)
                [
                  sto "recon" (v "base" +! v "k")
                    ((v "b" *! call "hist_r" [ v "base" +! v "k" -! v "lag" ])
                    >>>! i 5);
                ];
              for_ "j" (i 0) (i n_pulses)
                [
                  let_ "e2" (i 0);
                  when_
                    (v "xmax" <>! i 0)
                    [
                      set "e2"
                        ("pulses".%((v "s" *! i n_pulses) +! v "j")
                        *! v "xmax" /! i 7);
                    ];
                  let_ "at" (v "base" +! v "m" +! (i 3 *! v "j"));
                  sto "recon" (v "at") ("recon".%(v "at") +! v "e2");
                ];
            ];
        ];
      proc "decode" []
        [
          for_ "s" (i 0) (i n_sub)
            [
              let_ "base" (v "s" *! i sub_len);
              (* mask every parameter to its bitstream field width
                 (identity on valid encoder output) *)
              let_ "lag" ("lags".%(v "s") &! i 127);
              when_ (v "lag" <! i min_lag) [ set "lag" (i min_lag) ];
              let_ "b" ("glevels".%("gains".%(v "s") &! i 3));
              let_ "m" ("grids".%(v "s") &! i 3);
              when_ (v "m" >! i 2) [ set "m" (i 2) ];
              let_ "xmax" ("xmaxs".%(v "s") &! i 0x7FFF);
              for_ "k" (i 0) (i sub_len)
                [
                  sto "dec" (v "base" +! v "k")
                    ((v "b" *! call "hist_d" [ v "base" +! v "k" -! v "lag" ])
                    >>>! i 5);
                ];
              for_ "j" (i 0) (i n_pulses)
                [
                  let_ "q"
                    ((("pulses".%((v "s" *! i n_pulses) +! v "j") +! i 8)
                     &! i 15)
                    -! i 8);
                  let_ "e2" (i 0);
                  when_
                    (v "xmax" <>! i 0)
                    [ set "e2" (v "q" *! v "xmax" /! i 7) ];
                  let_ "at" (v "base" +! v "m" +! (i 3 *! v "j"));
                  sto "dec" (v "at")
                    (call "clamp16" [ "dec".%(v "at") +! v "e2" ]);
                ];
            ];
        ];
      fn ~eligible:false "main" [] ~ret:(Some Mlang.Ast.TInt)
        [ call_ "encode" []; call_ "decode" []; ret (i 0) ];
    ]

(* ------------------------------------------------------------------ *)

let build ~seed : App.built =
  let speech = Workloads.Audio_gen.speech ~seed ~samples:n_samples in
  let prog = Mlang.Compile.to_ir (mlang_program speech) in
  let coded, expected_recon, expected_dec = host_codec speech in
  let golden_snr = Fidelity.Snr.snr_db speech expected_dec in
  let score ~golden:_ (r : Sim.Interp.result) =
    let snr = Fidelity.Snr.snr_db speech (App.out_ints r prog "dec") in
    if golden_snr <= 0.0 then 0.0
    else 100.0 *. Float.max 0.0 snr /. golden_snr
  in
  let host_check (r : Sim.Interp.result) =
    if App.out_ints r prog "recon" <> expected_recon then
      Error "gsm: encoder reconstruction differs from host reference"
    else if App.out_ints r prog "dec" <> expected_dec then
      Error "gsm: decode differs from host reference"
    else if App.out_ints r prog "lags" <> coded.lags then
      Error "gsm: LTP lags differ from host reference"
    else Ok ()
  in
  {
    App.app_name = "gsm";
    prog;
    fidelity_name = "% SNR from optimal";
    fidelity_units = "%";
    higher_is_better = true;
    threshold = Some 70.0;
    score;
    host_check;
  }

let app : App.t =
  {
    App.name = "gsm";
    description =
      "reduced RPE-LTP speech codec (lag search, gain quantization, RPE \
       grid, APCM); fidelity = decoded SNR as % of the fault-free SNR";
    source = "MiBench telecomm (GSM 06.10)";
    build;
  }
