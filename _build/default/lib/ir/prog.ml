(* A whole program: global arrays plus functions, with a designated
   entry point. Globals are word arrays (one 4-byte cell per element,
   for both i32 and f64 elements; the simulator stores a tagged value
   per cell). The memory layout is fixed and deterministic: globals are
   laid out in declaration order starting at address 4 (address 0 is
   the null guard). *)

type init =
  | Zero
  | Int_data of int32 array
  | Flt_data of float array

type global = {
  gname : string;
  gty : Ty.t;
  size : int;  (* number of elements *)
  init : init;
}

type t = {
  globals : global list;
  funcs : (string, Func.t) Hashtbl.t;
  order : string list;  (* function declaration order, for printing *)
  entry : string;
}

exception Invalid of string

let invalidf fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let global ?(init = Zero) name ty size =
  if size <= 0 then invalidf "global %s: size must be positive" name;
  (match init with
   | Zero -> ()
   | Int_data a ->
     if Array.length a > size then invalidf "global %s: init too large" name;
     (match ty with
      | Ty.I32 -> ()
      | Ty.I8 ->
        Array.iter
          (fun b ->
            if Int32.compare b 0l < 0 || Int32.compare b 255l > 0 then
              invalidf "global %s: byte init out of range" name)
          a
      | Ty.F64 -> invalidf "global %s: int init on f64 global" name)
   | Flt_data a ->
     if Array.length a > size then invalidf "global %s: init too large" name;
     if not (Ty.equal ty Ty.F64) then
       invalidf "global %s: float init on %s global" name (Ty.to_string ty));
  { gname = name; gty = ty; size; init }

let make ?(entry = "main") ~globals funcs =
  let tbl = Hashtbl.create 16 in
  let order =
    List.map
      (fun (f : Func.t) ->
        if Hashtbl.mem tbl f.Func.name then
          invalidf "duplicate function %s" f.Func.name;
        Hashtbl.replace tbl f.Func.name f;
        f.Func.name)
      funcs
  in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun g ->
      if Hashtbl.mem seen g.gname then invalidf "duplicate global %s" g.gname;
      Hashtbl.replace seen g.gname ())
    globals;
  if not (Hashtbl.mem tbl entry) then invalidf "missing entry function %s" entry;
  { globals; funcs = tbl; order; entry }

let find_func t name = Hashtbl.find_opt t.funcs name

let get_func t name =
  match find_func t name with
  | Some f -> f
  | None -> invalidf "unknown function %s" name

let funcs t = List.map (get_func t) t.order

let find_global t name = List.find_opt (fun g -> g.gname = name) t.globals

(* Bytes of memory a global occupies: word elements take 4 bytes each,
   byte elements pack 4 per word (padded to a word boundary). *)
let byte_extent g =
  match g.gty with
  | Ty.I8 -> 4 * ((g.size + 3) / 4)
  | Ty.I32 | Ty.F64 -> 4 * g.size

(* Byte address of each global and total memory size in bytes. *)
let layout t =
  let addr = ref 4 in
  let entries =
    List.map
      (fun g ->
        let a = !addr in
        addr := !addr + byte_extent g;
        (g.gname, a, g.size))
      t.globals
  in
  (entries, !addr)

let global_addr t name =
  let entries, _ = layout t in
  match List.find_opt (fun (n, _, _) -> n = name) entries with
  | Some (_, a, _) -> a
  | None -> invalidf "unknown global %s" name

let static_instruction_count t =
  List.fold_left (fun acc f -> acc + Func.length f) 0 (funcs t)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun g ->
      Format.fprintf fmt "global %s : %a[%d]@," g.gname Ty.pp g.gty g.size)
    t.globals;
  List.iter (fun f -> Format.fprintf fmt "@,%a" Func.pp f) (funcs t);
  Format.fprintf fmt "@]"
