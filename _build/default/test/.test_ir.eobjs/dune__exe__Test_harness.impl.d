test/test_harness.ml: Alcotest Apps Core Harness Lazy List Option Sim String
