test/test_core.ml: Alcotest Array Core Fun Func Hashtbl Instr Ir List Mlang Option Printf Prog QCheck QCheck_alcotest Random Reg Sim Ty
