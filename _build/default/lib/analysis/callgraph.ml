(* Static call graph of a program. All calls in the IR are direct, so
   the graph is exact. Used by the interprocedural tagging fixpoint. *)

module SM = Map.Make (String)
module SS = Set.Make (String)

type t = {
  prog : Ir.Prog.t;
  callees : SS.t SM.t;
  callers : SS.t SM.t;
}

let compute (prog : Ir.Prog.t) =
  let add key v m =
    let prev = Option.value ~default:SS.empty (SM.find_opt key m) in
    SM.add key (SS.add v prev) m
  in
  let callees, callers =
    List.fold_left
      (fun (ces, crs) (f : Ir.Func.t) ->
        Array.fold_left
          (fun (ces, crs) instr ->
            match instr with
            | Ir.Instr.Call { func; _ } ->
              (add f.Ir.Func.name func ces, add func f.Ir.Func.name crs)
            | _ -> (ces, crs))
          (ces, crs) f.Ir.Func.body)
      (SM.empty, SM.empty) (Ir.Prog.funcs prog)
  in
  { prog; callees; callers }

let callees t f = Option.value ~default:SS.empty (SM.find_opt f t.callees)
let callers t f = Option.value ~default:SS.empty (SM.find_opt f t.callers)

(* Functions reachable from the entry point, including the entry. *)
let reachable t =
  let rec go seen f =
    if SS.mem f seen then seen
    else SS.fold (fun g acc -> go acc g) (callees t f) (SS.add f seen)
  in
  go SS.empty t.prog.Ir.Prog.entry

(* True if [f] (transitively) may call itself. *)
let is_recursive t f =
  let rec go seen g =
    SS.exists
      (fun h -> h = f || ((not (SS.mem h seen)) && go (SS.add h seen) h))
      (callees t g)
  in
  go SS.empty f
