(* Flat data memory.

   One 4-byte-addressed cell per program word. A cell holds either a
   32-bit integer or a double; the per-cell kind tag reproduces the
   segmentation behaviour relevant to the paper: a corrupted address
   that stays inside memory silently corrupts *other program data*
   (like a wild store inside a process image).

   Two models for accesses that leave the image, selectable per
   machine:

   - strict (default): out-of-range, null, misaligned or kind-confused
     accesses trap — a conventional MMU/segfault model;
   - lenient: the SimpleScalar sim-safe model the paper ran on: the
     sparse memory transparently allocates zero-filled pages (wild
     loads return 0, wild stores vanish, kind confusion reads as 0)
     and word accesses are not alignment-checked — an unaligned
     address is truncated to its word, as the PISA accessors do.

   Cells are split across two unboxed arrays for speed; [kind] says
   which array holds the live value. *)

type t = {
  ints : int array;      (* integer image of each cell *)
  flts : float array;    (* float image of each cell *)
  kind : Bytes.t;        (* '\000' = int cell, '\001' = float cell *)
  size_bytes : int;
  lenient : bool;
}

let int_kind = '\000'
let flt_kind = '\001'

let create ?(lenient = false) ~cells () =
  {
    ints = Array.make cells 0;
    flts = Array.make cells 0.0;
    kind = Bytes.make cells int_kind;
    size_bytes = cells * 4;
    lenient;
  }

(* Deep copy: fresh cell arrays, same model. This is the restore
   primitive of checkpointed execution — a snapshot keeps one immutable
   image and every trial that resumes from it blit-copies the whole
   thing, which is a handful of memcpys instead of replaying the
   global-initialization walk of [of_prog]. *)
let copy t =
  {
    t with
    ints = Array.copy t.ints;
    flts = Array.copy t.flts;
    kind = Bytes.copy t.kind;
  }

let size_bytes t = t.size_bytes
let is_lenient t = t.lenient

(* Address checks are split so the interpreter reports the most precise
   trap: the null guard occupies bytes 0..3. Returns the cell index, or
   -1 when a lenient machine should treat the access as hitting a
   zero page. *)
let cell t addr =
  let addr =
    if addr land 3 = 0 then addr
    else if t.lenient then addr land lnot 3
    else raise (Trap.Error (Trap.Unaligned addr))
  in
  if addr < 4 || addr >= t.size_bytes then begin
    if t.lenient then -1
    else if addr >= 0 && addr < 4 then raise (Trap.Error Trap.Null_access)
    else raise (Trap.Error (Trap.Out_of_bounds addr))
  end
  else addr lsr 2

(* The split into an [@inline] fast path (aligned, in-range, expected
   cell kind — the overwhelmingly common case in a healthy program) and
   an [@inline never] slow path keeps the hot-loop cost of a memory
   access at a few inlined compares in the interpreter engines; the
   slow path re-runs the full model (alignment, bounds, kind, lenient
   zero pages) from scratch. *)

let[@inline never] load_int_slow t addr =
  let c = cell t addr in
  if c < 0 then 0
  else if Bytes.unsafe_get t.kind c <> int_kind then
    if t.lenient then 0 else raise (Trap.Error (Trap.Type_confusion addr))
  else Array.unsafe_get t.ints c

let[@inline] load_int t addr =
  let c = addr lsr 2 in
  if
    addr land 3 = 0
    && addr >= 4
    && addr < t.size_bytes
    && Bytes.unsafe_get t.kind c = int_kind
  then Array.unsafe_get t.ints c
  else load_int_slow t addr

let[@inline never] load_flt_slow t addr =
  let c = cell t addr in
  if c < 0 then 0.0
  else if Bytes.unsafe_get t.kind c <> flt_kind then
    if t.lenient then 0.0 else raise (Trap.Error (Trap.Type_confusion addr))
  else Array.unsafe_get t.flts c

let[@inline] load_flt t addr =
  let c = addr lsr 2 in
  if
    addr land 3 = 0
    && addr >= 4
    && addr < t.size_bytes
    && Bytes.unsafe_get t.kind c = flt_kind
  then Array.unsafe_get t.flts c
  else load_flt_slow t addr

(* Stores overwrite the cell kind: a wild integer store into a float
   region corrupts it silently, as on real hardware. *)
let[@inline never] store_int_slow t addr v =
  let c = cell t addr in
  if c >= 0 then begin
    Bytes.unsafe_set t.kind c int_kind;
    Array.unsafe_set t.ints c v
  end

let[@inline] store_int t addr v =
  if addr land 3 = 0 && addr >= 4 && addr < t.size_bytes then begin
    let c = addr lsr 2 in
    Bytes.unsafe_set t.kind c int_kind;
    Array.unsafe_set t.ints c v
  end
  else store_int_slow t addr v

let[@inline never] store_flt_slow t addr x =
  let c = cell t addr in
  if c >= 0 then begin
    Bytes.unsafe_set t.kind c flt_kind;
    Array.unsafe_set t.flts c x
  end

let[@inline] store_flt t addr x =
  if addr land 3 = 0 && addr >= 4 && addr < t.size_bytes then begin
    let c = addr lsr 2 in
    Bytes.unsafe_set t.kind c flt_kind;
    Array.unsafe_set t.flts c x
  end
  else store_flt_slow t addr x

(* Byte accesses: little-endian lanes within a word cell. Never
   alignment-trap (as on MIPS lbu/sb). *)
let byte_cell t addr =
  if addr < 4 || addr >= t.size_bytes then begin
    if t.lenient then -1
    else if addr >= 0 && addr < 4 then raise (Trap.Error Trap.Null_access)
    else raise (Trap.Error (Trap.Out_of_bounds addr))
  end
  else addr lsr 2

let[@inline never] load_byte_slow t addr =
  let c = byte_cell t addr in
  if c < 0 then 0
  else if Bytes.unsafe_get t.kind c <> int_kind then
    if t.lenient then 0 else raise (Trap.Error (Trap.Type_confusion addr))
  else ((Array.unsafe_get t.ints c land 0xFFFFFFFF) lsr (8 * (addr land 3))) land 0xFF

let[@inline] load_byte t addr =
  let c = addr lsr 2 in
  if addr >= 4 && addr < t.size_bytes && Bytes.unsafe_get t.kind c = int_kind
  then ((Array.unsafe_get t.ints c land 0xFFFFFFFF) lsr (8 * (addr land 3))) land 0xFF
  else load_byte_slow t addr

let store_byte t addr v =
  let c = byte_cell t addr in
  if c >= 0 then begin
    if Bytes.unsafe_get t.kind c <> int_kind then
      if t.lenient then ()
      else raise (Trap.Error (Trap.Type_confusion addr))
    else begin
      let sh = 8 * (addr land 3) in
      let u = Array.unsafe_get t.ints c land 0xFFFFFFFF in
      let u = u land lnot (0xFF lsl sh) lor ((v land 0xFF) lsl sh) in
      Array.unsafe_set t.ints c (Value.sx32 u)
    end
  end

(* Non-trapping address->cell resolution for the taint interpreter: the
   cell a word access at [addr] touches under this machine's model, or
   -1 when the access misses the image (lenient zero page) or would
   trap. Callers resolve only after the real access succeeded, so -1
   here means "no cell to shadow", never a swallowed trap. *)
let cell_index t addr =
  let addr =
    if addr land 3 = 0 then addr
    else if t.lenient then addr land lnot 3
    else -1
  in
  if addr < 4 || addr >= t.size_bytes then -1 else addr lsr 2

let byte_cell_index t addr =
  if addr < 4 || addr >= t.size_bytes then -1 else addr lsr 2

(* Non-trapping inspection, for harness output extraction and tests. *)
let peek t addr : Value.t option =
  if addr land 3 <> 0 || addr < 0 || addr >= t.size_bytes then None
  else
    let c = addr lsr 2 in
    if Bytes.get t.kind c = int_kind then Some (Value.I t.ints.(c))
    else Some (Value.F t.flts.(c))

let of_prog ?lenient (prog : Ir.Prog.t) =
  let entries, total_bytes = Ir.Prog.layout prog in
  (* Name -> address table: one pass over the layout instead of a
     [List.find_opt] per global (quadratic in the global count, and
     [of_prog] used to run once per trial before prototype images). *)
  let addr_of = Hashtbl.create (List.length entries) in
  List.iter (fun (n, a, _) -> Hashtbl.replace addr_of n a) entries;
  let t = create ?lenient ~cells:(total_bytes / 4) () in
  List.iter
    (fun (g : Ir.Prog.global) ->
      let addr =
        match Hashtbl.find_opt addr_of g.Ir.Prog.gname with
        | Some a -> a
        | None -> assert false
      in
      let base_cell = addr / 4 in
      (match g.Ir.Prog.gty with
       | Ir.Ty.F64 ->
         for i = 0 to g.Ir.Prog.size - 1 do
           Bytes.set t.kind (base_cell + i) flt_kind
         done
       | Ir.Ty.I32 | Ir.Ty.I8 -> ());
      match (g.Ir.Prog.gty, g.Ir.Prog.init) with
      | _, Ir.Prog.Zero -> ()
      | Ir.Ty.I8, Ir.Prog.Int_data a ->
        Array.iteri
          (fun i v -> store_byte t (addr + i) (Int32.to_int v land 0xFF))
          a
      | _, Ir.Prog.Int_data a ->
        Array.iteri (fun i v -> t.ints.(base_cell + i) <- Value.of_int32 v) a
      | _, Ir.Prog.Flt_data a ->
        Array.iteri (fun i x -> t.flts.(base_cell + i) <- x) a)
    prog.Ir.Prog.globals;
  t

(* Read a whole global back out as values, in element order. *)
let read_global t (prog : Ir.Prog.t) name : Value.t array =
  match Ir.Prog.find_global prog name with
  | None -> invalid_arg ("read_global: unknown global " ^ name)
  | Some g ->
    let addr = Ir.Prog.global_addr prog name in
    let base_cell = addr / 4 in
    (match g.Ir.Prog.gty with
     | Ir.Ty.I8 ->
       Array.init g.Ir.Prog.size (fun i -> Value.I (load_byte t (addr + i)))
     | Ir.Ty.I32 | Ir.Ty.F64 ->
       Array.init g.Ir.Prog.size (fun i ->
           if Bytes.get t.kind (base_cell + i) = int_kind then
             Value.I t.ints.(base_cell + i)
           else Value.F t.flts.(base_cell + i)))

(* [int_of_float] has an unspecified result for nan/inf and values
   outside the int range — all reachable in a cell after a float-bank
   injection (a flipped exponent bit turns a finite double into inf).
   Clamp those to 0 so output extraction (and the byte-match fidelity
   built on it) stays deterministic instead of poisoned by whatever the
   platform's conversion returns. *)
let int_of_float_total x =
  if Float.is_finite x && x >= -2147483648.0 && x < 2147483648.0 then
    int_of_float x
  else 0

let read_global_ints t prog name =
  Array.map
    (function Value.I v -> v | Value.F x -> int_of_float_total x)
    (read_global t prog name)

let read_global_flts t prog name =
  Array.map
    (function Value.F x -> x | Value.I v -> float_of_int v)
    (read_global t prog name)

(* Content digest of the full image — cell values, kind tags and the
   access model. The raw material of cache keys in compositional
   campaigns: two memories with equal digests are observably identical
   to the interpreter. Values are packed as fixed-width little-endian
   words (no decimal formatting) so digesting stays cheap even for the
   largest app images. *)
let digest t : string =
  let n = Array.length t.ints in
  let b = Buffer.create (16 + (n * 17)) in
  Buffer.add_string b (if t.lenient then "L" else "S");
  Buffer.add_int64_le b (Int64.of_int t.size_bytes);
  for i = 0 to n - 1 do
    Buffer.add_char b (Bytes.get t.kind i);
    Buffer.add_int64_le b (Int64.of_int (Array.unsafe_get t.ints i));
    Buffer.add_int64_le b (Int64.bits_of_float (Array.unsafe_get t.flts i))
  done;
  Digest.to_hex (Digest.string (Buffer.contents b))
