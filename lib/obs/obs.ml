(* Campaign telemetry sink (DESIGN.md §13).

   The ambient sink is an atomic ref; [disabled] is a distinguished
   value recognised by physical equality, so every recording entry
   point costs one load and one compare when telemetry is off — no
   allocation, no branch in the caller beyond its own [enabled ()]
   guard.

   An enabled sink is a registry of per-domain buffers. A domain
   acquires its buffer once (domain-local storage keyed by the sink's
   id, registered under the sink's mutex) and then writes without any
   synchronisation: buffers are never shared between domains, and
   [view] runs after the writing domains have been joined (Pool joins
   every worker before returning), so the merge reads quiescent
   buffers. All merge operations are commutative and associative —
   counter sums, histogram bucket sums, site-tally sums — which is what
   makes the merged totals independent of the domain fan-out and of
   buffer registration order. *)

(* ------------------------------------------------------------------ *)
(* Histogram.                                                          *)

module IntMap = Map.Make (Int)

module Hist = struct
  type t = {
    n : int;
    bkts : int IntMap.t;
  }

  let empty = { n = 0; bkts = IntMap.empty }

  (* 8 sub-buckets per octave. Indices are clamped to the largest
     finite power [2^1023], so [bucket_value] is always finite;
     non-positive and NaN samples use the underflow sentinel. *)
  let sub_per_octave = 8.0
  let max_index = 8 * 1023
  let underflow = -max_index - 8

  let bucket_of x =
    if Float.is_nan x || x <= 0.0 then underflow
    else begin
      let i = Float.round (sub_per_octave *. Float.log2 x) in
      if i >= float_of_int max_index then max_index
      else if i <= float_of_int (-max_index) then -max_index
      else int_of_float i
    end

  let bucket_value i =
    if i <= underflow then 0.0 else 2.0 ** (float_of_int i /. sub_per_octave)

  let add h x =
    let b = bucket_of x in
    {
      n = h.n + 1;
      bkts =
        IntMap.update b
          (function None -> Some 1 | Some c -> Some (c + 1))
          h.bkts;
    }

  let merge a b =
    if a.n = 0 then b
    else if b.n = 0 then a
    else
      {
        n = a.n + b.n;
        bkts = IntMap.union (fun _ x y -> Some (x + y)) a.bkts b.bkts;
      }

  let count h = h.n
  let buckets h = IntMap.bindings h.bkts

  let quantile h q =
    if h.n = 0 then None
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.n))) in
      let rank = min rank h.n in
      let rec walk seen = function
        | [] -> assert false (* counts sum to n >= rank *)
        | (b, c) :: rest ->
          if seen + c >= rank then Some (bucket_value b)
          else walk (seen + c) rest
      in
      walk 0 (IntMap.bindings h.bkts)
    end
end

(* ------------------------------------------------------------------ *)
(* Sinks and per-domain buffers.                                       *)

type cls =
  | Crash
  | Infinite
  | Completed

let cls_index = function Crash -> 0 | Infinite -> 1 | Completed -> 2

type span_ev = {
  sp_name : string;
  sp_cat : string;
  sp_ts_us : float;
  sp_dur_us : float;
  sp_tid : int;
  sp_args : (string * string) list;
}

type buf = {
  b_tid : int;
  b_counters : (string, int ref) Hashtbl.t;
  b_hists : (string, Hist.t ref) Hashtbl.t;
  b_sites : (string * int, int array) Hashtbl.t;
  mutable b_spans : span_ev list;  (* reversed *)
}

type sink = {
  id : int;  (* 0 iff disabled *)
  mu : Mutex.t;
  mutable bufs : buf list;
}

let disabled = { id = 0; mu = Mutex.create (); bufs = [] }
let next_id = Atomic.make 1
let make () = { id = Atomic.fetch_and_add next_id 1; mu = Mutex.create (); bufs = [] }

let ambient : sink Atomic.t = Atomic.make disabled
let install s = Atomic.set ambient s
let installed () = Atomic.get ambient
let enabled () = (Atomic.get ambient).id <> 0

let with_sink s f =
  let prev = installed () in
  install s;
  Fun.protect ~finally:(fun () -> install prev) f

(* The per-domain buffer of the ambient sink, created and registered on
   a domain's first write to that sink. The key caches (sink id, buf):
   a stale pair from a previously installed sink fails the id check and
   is replaced. *)
let dls_buf : (int * buf) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let buf_for (s : sink) : buf =
  match Domain.DLS.get dls_buf with
  | Some (id, b) when id = s.id -> b
  | _ ->
    let b =
      {
        b_tid = (Domain.self () :> int);
        b_counters = Hashtbl.create 32;
        b_hists = Hashtbl.create 8;
        b_sites = Hashtbl.create 32;
        b_spans = [];
      }
    in
    Mutex.lock s.mu;
    s.bufs <- b :: s.bufs;
    Mutex.unlock s.mu;
    Domain.DLS.set dls_buf (Some (s.id, b));
    b

(* ------------------------------------------------------------------ *)
(* Recording.                                                          *)

let count name v =
  let s = Atomic.get ambient in
  if s.id <> 0 then begin
    let b = buf_for s in
    match Hashtbl.find_opt b.b_counters name with
    | Some r -> r := !r + v
    | None -> Hashtbl.replace b.b_counters name (ref v)
  end

let observe name x =
  let s = Atomic.get ambient in
  if s.id <> 0 then begin
    let b = buf_for s in
    match Hashtbl.find_opt b.b_hists name with
    | Some r -> r := Hist.add !r x
    | None -> Hashtbl.replace b.b_hists name (ref (Hist.add Hist.empty x))
  end

let site ~func ~pc cls =
  let s = Atomic.get ambient in
  if s.id <> 0 then begin
    let b = buf_for s in
    let key = (func, pc) in
    let cell =
      match Hashtbl.find_opt b.b_sites key with
      | Some c -> c
      | None ->
        let c = Array.make 3 0 in
        Hashtbl.replace b.b_sites key c;
        c
    in
    let i = cls_index cls in
    cell.(i) <- cell.(i) + 1
  end

let now_us () = Unix.gettimeofday () *. 1e6
let span_begin () = if enabled () then now_us () else 0.0
let elapsed_us t0 = now_us () -. t0

let span_end ~name ?(cat = "etap") ?(args = []) t0 =
  let s = Atomic.get ambient in
  if s.id <> 0 && t0 > 0.0 then begin
    let b = buf_for s in
    b.b_spans <-
      {
        sp_name = name;
        sp_cat = cat;
        sp_ts_us = t0;
        sp_dur_us = now_us () -. t0;
        sp_tid = b.b_tid;
        sp_args = args;
      }
      :: b.b_spans
  end

let span ~name ?cat f =
  let t0 = span_begin () in
  Fun.protect ~finally:(fun () -> span_end ~name ?cat t0) f

(* ------------------------------------------------------------------ *)
(* Merged views.                                                       *)

type view = {
  counters : (string * int) list;
  hists : (string * Hist.t) list;
  sites : ((string * int) * int array) list;
  spans : span_ev list;
}

let view (s : sink) : view =
  Mutex.lock s.mu;
  let bufs = s.bufs in
  Mutex.unlock s.mu;
  let counters = Hashtbl.create 64 in
  let hists = Hashtbl.create 16 in
  let sites = Hashtbl.create 64 in
  let spans = ref [] in
  List.iter
    (fun b ->
      Hashtbl.iter
        (fun k r ->
          match Hashtbl.find_opt counters k with
          | Some acc -> Hashtbl.replace counters k (acc + !r)
          | None -> Hashtbl.replace counters k !r)
        b.b_counters;
      Hashtbl.iter
        (fun k r ->
          match Hashtbl.find_opt hists k with
          | Some acc -> Hashtbl.replace hists k (Hist.merge acc !r)
          | None -> Hashtbl.replace hists k !r)
        b.b_hists;
      Hashtbl.iter
        (fun k c ->
          match Hashtbl.find_opt sites k with
          | Some acc -> Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) c
          | None -> Hashtbl.replace sites k (Array.copy c))
        b.b_sites;
      spans := List.rev_append b.b_spans !spans)
    bufs;
  let sorted_assoc tbl cmp =
    List.sort (fun (a, _) (b, _) -> cmp a b) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  {
    counters = sorted_assoc counters String.compare;
    hists = sorted_assoc hists String.compare;
    sites = sorted_assoc sites compare;
    spans =
      List.sort
        (fun a b ->
          match Float.compare a.sp_ts_us b.sp_ts_us with
          | 0 -> (
            match Int.compare a.sp_tid b.sp_tid with
            | 0 -> String.compare a.sp_name b.sp_name
            | c -> c)
          | c -> c)
        !spans;
  }

(* ------------------------------------------------------------------ *)
(* Exporters.                                                          *)

module Json = Report.Json

let trace_schema_version = "etap-trace/1"
let metrics_schema_version = "etap-metrics/1"

(* Chrome trace-event format: "X" (complete) events with microsecond
   [ts]/[dur], one pid, one tid per recording domain, plus "M"
   metadata events naming the threads. Perfetto and chrome://tracing
   both ignore unknown top-level keys, so the document also carries the
   [schema] marker the CI validation step dispatches on. *)
let trace_json (v : view) : Json.t =
  let tids =
    List.sort_uniq Int.compare (List.map (fun e -> e.sp_tid) v.spans)
  in
  (* Rebase timestamps to the earliest span: viewers only care about
     relative time, and epoch-microsecond magnitudes (~1.8e15) would
     lose sub-10ms precision to the 12-significant-digit float
     printer. *)
  let t_base =
    List.fold_left (fun m e -> Float.min m e.sp_ts_us) infinity v.spans
  in
  let thread_meta =
    List.map
      (fun tid ->
        Json.Obj
          [
            ("ph", Json.Str "M");
            ("name", Json.Str "thread_name");
            ("pid", Json.Int 1);
            ("tid", Json.Int tid);
            ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "domain-%d" tid)) ]);
          ])
      tids
  in
  let events =
    List.map
      (fun e ->
        Json.Obj
          [
            ("name", Json.Str e.sp_name);
            ("cat", Json.Str e.sp_cat);
            ("ph", Json.Str "X");
            ("ts", Json.Float (e.sp_ts_us -. t_base));
            ("dur", Json.Float e.sp_dur_us);
            ("pid", Json.Int 1);
            ("tid", Json.Int e.sp_tid);
            ("args", Json.Obj (List.map (fun (k, s) -> (k, Json.Str s)) e.sp_args));
          ])
      v.spans
  in
  Json.Obj
    [
      ("schema", Json.Str trace_schema_version);
      ("displayTimeUnit", Json.Str "ms");
      ("traceEvents", Json.Arr (thread_meta @ events));
    ]

let write_trace ~path v = Json.to_file path (trace_json v)

let quantile_json h q =
  match Hist.quantile h q with None -> Json.Null | Some x -> Json.Float x

let metrics_lines ?(redact_volatile = false) ~command ~meta (v : view) :
    string list =
  let header =
    Json.Obj
      [
        ("schema", Json.Str metrics_schema_version);
        ("command", Json.Str command);
        ("meta", Json.Obj meta);
        ( "host",
          if redact_volatile then Json.Null else Json.Str (Unix.gethostname ())
        );
        ( "generated_at_us",
          if redact_volatile then Json.Null
          else Json.Int (int_of_float (now_us ())) );
      ]
  in
  let counter_line (name, value) =
    Json.Obj
      [
        ("type", Json.Str "counter");
        ("name", Json.Str name);
        ("value", Json.Int value);
      ]
  in
  let hist_line (name, h) =
    (* Sample counts are deterministic (one per observation site hit);
       the sampled values are wall-clock latencies, so quantiles and
       buckets are the volatile part. *)
    Json.Obj
      ([
         ("type", Json.Str "histogram");
         ("name", Json.Str name);
         ("count", Json.Int (Hist.count h));
         ("p50", if redact_volatile then Json.Null else quantile_json h 0.50);
         ("p90", if redact_volatile then Json.Null else quantile_json h 0.90);
         ("p99", if redact_volatile then Json.Null else quantile_json h 0.99);
       ]
      @
      if redact_volatile then []
      else
        [
          ( "buckets",
            Json.Arr
              (List.map
                 (fun (b, c) -> Json.Arr [ Json.Int b; Json.Int c ])
                 (Hist.buckets h)) );
        ])
  in
  let site_line ((func, pc), c) =
    Json.Obj
      [
        ("type", Json.Str "fault_site");
        ("func", Json.Str func);
        ("pc", Json.Int pc);
        ("crash", Json.Int c.(0));
        ("infinite", Json.Int c.(1));
        ("completed", Json.Int c.(2));
        ("total", Json.Int (c.(0) + c.(1) + c.(2)));
      ]
  in
  List.map Json.to_compact_string
    ((header :: List.map counter_line v.counters)
    @ List.map hist_line v.hists
    @ List.map site_line v.sites)

let write_metrics ~path ~command ~meta v =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun line ->
          Out_channel.output_string oc line;
          Out_channel.output_char oc '\n')
        (metrics_lines ~command ~meta v))
