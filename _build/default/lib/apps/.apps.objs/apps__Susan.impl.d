lib/apps/susan.ml: App Array Fidelity Float List Mlang Sim Workloads
