(* Threaded-closure execution engine — the "fast" engine.

   [compile] lowers each decoded function body into a flat array of
   specialized closures, one per instruction. Operand bank indices,
   immediates, branch targets and the per-instruction injectability tag
   are all resolved at compile time and captured in the closure, so the
   hot path never re-matches a boxed [Code.d] variant, never consults
   the tag mask, and touches the register banks only through
   [Array.unsafe_get]/[unsafe_set] (indices were validated at decode).
   Control transfer is direct threading: every closure fetches its
   successor from the shared [ops] array and tail-calls it, so a whole
   basic-block chain runs without returning to a driver; the driver
   loop below re-enters only when the head frame changes (call or
   return) or the machine halts.

   Ops are *unary* closures over the machine; the head frame rides in
   [m.run_fr]. A unary unknown application compiles to a bare
   code-pointer load and jump in ocamlopt — no caml_apply arity check —
   and gives each instruction-class body its own indirect branch site,
   so the BTB sees one dispatch point per opcode instead of a single
   mega-morphic one.

   Equivalence contract with the reference loop (see Interp.exec; the
   differential suite in test_engine pins all of it):
   - dyn/budget: every non-DNop closure counts [dyn] against the budget
     before executing, so a timeout fires with [dyn = budget + 1] in
     both engines.
   - ordinals: [inj_seen] advances exactly on tagged write-backs (and
     call-return write-back via Machine.return), compiled statically
     into the closures from the same tag mask the reference engine
     reads dynamically.
   - pause: the reference engine checks [inj_seen >= pause_at] before
     every dispatch, but ordinals only move on tagged write-backs and
     frame switches — so checking right after each tagged write-back
     (here) and at each driver re-entry is state-identical: the pause
     lands at the same pc, dyn and ordinal.
   - trap provenance: closures park [fr.pc] before any operation that
     can raise [Trap.Error] (division, float-to-int, memory access,
     call-depth check), so Interp.advance attributes the trap to the
     same (fid, pc) site as the reference engine.

   OCaml guarantees tail calls for exact-arity applications in native
   code, so closure-to-closure chaining runs in constant stack. *)

open Machine

let[@inline] ig (r : int array) i = Array.unsafe_get r i
let[@inline] is_ (r : int array) i v = Array.unsafe_set r i v
let[@inline] fg (r : float array) i : float = Array.unsafe_get r i
let[@inline] fs (r : float array) i (x : float) = Array.unsafe_set r i x

(* Bind the incremented count before storing it so the budget compare
   uses the register value — re-reading [m.dyn] after the store would
   put a store-to-load forward on the critical path of every single
   instruction. *)
let[@inline] bump m =
  let d = m.dyn + 1 in
  m.dyn <- d;
  if d > m.budget then raise Timeout_exn

let[@inline] next (ops : op array) pc m = (Array.unsafe_get ops (pc + 1)) m

(* Planned-fault landing: cold path, one call per plan entry. *)
let land_i m pc v =
  let bit = advance_plan m in
  record_land m pc;
  Value.flip_int ~bit:(bit land 31) v

let land_f m pc x =
  let bit = advance_plan m in
  record_land m pc;
  Value.flip_float ~bit:(bit land 63) x

(* Write-back for a tagged (injectable) destination: advance the
   ordinal, apply a planned flip, then honor a pending pause exactly
   where the reference engine would — at the next dispatch boundary,
   with [fr.pc] on the successor instruction. *)
let wbi (ops : op array) pc d m (fr : frame) v =
  let ord = m.inj_seen in
  m.inj_seen <- ord + 1;
  let v = if ord = m.next_planned then land_i m pc v else v in
  is_ fr.iregs d v;
  if ord + 1 >= m.pause_at then begin
    fr.pc <- pc + 1;
    raise Pause_exn
  end;
  next ops pc m

let wbf (ops : op array) pc d m (fr : frame) x =
  let ord = m.inj_seen in
  m.inj_seen <- ord + 1;
  let x = if ord = m.next_planned then land_f m pc x else x in
  fs fr.fregs d x;
  if ord + 1 >= m.pause_at then begin
    fr.pc <- pc + 1;
    raise Pause_exn
  end;
  next ops pc m

(* Specialized write-back dispatch: [tg] is the instruction's
   compile-time injectability. The untagged branch is a register store
   plus the threaded jump; the predictable [if tg] costs nothing
   against eliminating the tag-row load and hook call of the reference
   engine. *)
let[@inline] seti (ops : op array) tg pc d m (fr : frame) v =
  if tg then wbi ops pc d m fr v
  else begin
    is_ fr.iregs d v;
    next ops pc m
  end

let[@inline] setf (ops : op array) tg pc d m (fr : frame) x =
  if tg then wbf ops pc d m fr x
  else begin
    fs fr.fregs d x;
    next ops pc m
  end

let div_by_zero (fr : frame) pc =
  fr.pc <- pc;
  raise (Trap.Error Trap.Division_by_zero)

let compile_instr (code : Code.t) (ops : op array) tg pc (ins : Code.d) : op =
  match ins with
  | Code.DNop -> fun m -> next ops pc m
  | Code.DLi (d, v) ->
    fun m ->
      bump m;
      seti ops tg pc d m m.run_fr v
  | Code.DLf (d, x) ->
    fun m ->
      bump m;
      setf ops tg pc d m m.run_fr x
  | Code.DLa (d, addr) ->
    fun m ->
      bump m;
      seti ops tg pc d m m.run_fr addr
  | Code.DMovI (d, s) ->
    fun m ->
      bump m;
      let fr = m.run_fr in
      seti ops tg pc d m fr (ig fr.iregs s)
  | Code.DMovF (d, s) ->
    fun m ->
      bump m;
      let fr = m.run_fr in
      setf ops tg pc d m fr (fg fr.fregs s)
  | Code.DBin (op, d, a, b) -> (
    match op with
    | Ir.Instr.Add ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (sx32 (ig r a + ig r b))
    | Ir.Instr.Sub ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (sx32 (ig r a - ig r b))
    | Ir.Instr.Mul ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (sx32 (ig r a * ig r b))
    | Ir.Instr.Div ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        let bv = ig r b in
        if bv = 0 then div_by_zero fr pc;
        seti ops tg pc d m fr (sx32 (ig r a / bv))
    | Ir.Instr.Rem ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        let bv = ig r b in
        if bv = 0 then div_by_zero fr pc;
        seti ops tg pc d m fr (sx32 (ig r a mod bv))
    | Ir.Instr.And ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (ig r a land ig r b)
    | Ir.Instr.Or ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (ig r a lor ig r b)
    | Ir.Instr.Xor ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (ig r a lxor ig r b)
    | Ir.Instr.Sll ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (sx32 (ig r a lsl (ig r b land 31)))
    | Ir.Instr.Srl ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr
          (sx32 ((ig r a land 0xFFFFFFFF) lsr (ig r b land 31)))
    | Ir.Instr.Sra ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (ig r a asr (ig r b land 31)))
  | Code.DBini (op, d, a, n) -> (
    match op with
    | Ir.Instr.Add ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        seti ops tg pc d m fr (sx32 (ig fr.iregs a + n))
    | Ir.Instr.Sub ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        seti ops tg pc d m fr (sx32 (ig fr.iregs a - n))
    | Ir.Instr.Mul ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        seti ops tg pc d m fr (sx32 (ig fr.iregs a * n))
    | Ir.Instr.Div ->
      (* The divisor is a compile-time immediate, so the zero check
         resolves now: either every execution traps or none does. The
         trapping closure still counts the instruction first, like the
         reference loop. *)
      if n = 0 then
        fun m ->
          bump m;
          div_by_zero m.run_fr pc
      else
        fun m ->
          bump m;
          let fr = m.run_fr in
          seti ops tg pc d m fr (sx32 (ig fr.iregs a / n))
    | Ir.Instr.Rem ->
      if n = 0 then
        fun m ->
          bump m;
          div_by_zero m.run_fr pc
      else
        fun m ->
          bump m;
          let fr = m.run_fr in
          seti ops tg pc d m fr (sx32 (ig fr.iregs a mod n))
    | Ir.Instr.And ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        seti ops tg pc d m fr (ig fr.iregs a land n)
    | Ir.Instr.Or ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        seti ops tg pc d m fr (ig fr.iregs a lor n)
    | Ir.Instr.Xor ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        seti ops tg pc d m fr (ig fr.iregs a lxor n)
    | Ir.Instr.Sll ->
      let sh = n land 31 in
      fun m ->
        bump m;
        let fr = m.run_fr in
        seti ops tg pc d m fr (sx32 (ig fr.iregs a lsl sh))
    | Ir.Instr.Srl ->
      let sh = n land 31 in
      fun m ->
        bump m;
        let fr = m.run_fr in
        seti ops tg pc d m fr (sx32 ((ig fr.iregs a land 0xFFFFFFFF) lsr sh))
    | Ir.Instr.Sra ->
      let sh = n land 31 in
      fun m ->
        bump m;
        let fr = m.run_fr in
        seti ops tg pc d m fr (ig fr.iregs a asr sh))
  | Code.DCmp (op, d, a, b) -> (
    match op with
    | Ir.Instr.Eq ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (if ig r a = ig r b then 1 else 0)
    | Ir.Instr.Ne ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (if ig r a <> ig r b then 1 else 0)
    | Ir.Instr.Lt ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (if ig r a < ig r b then 1 else 0)
    | Ir.Instr.Le ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (if ig r a <= ig r b then 1 else 0)
    | Ir.Instr.Gt ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (if ig r a > ig r b then 1 else 0)
    | Ir.Instr.Ge ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.iregs in
        seti ops tg pc d m fr (if ig r a >= ig r b then 1 else 0))
  | Code.DFbin (op, d, a, b) -> (
    match op with
    | Ir.Instr.Fadd ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.fregs in
        setf ops tg pc d m fr (fg r a +. fg r b)
    | Ir.Instr.Fsub ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.fregs in
        setf ops tg pc d m fr (fg r a -. fg r b)
    | Ir.Instr.Fmul ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.fregs in
        setf ops tg pc d m fr (fg r a *. fg r b)
    | Ir.Instr.Fdiv ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.fregs in
        setf ops tg pc d m fr (fg r a /. fg r b))
  | Code.DFun (op, d, s) -> (
    match op with
    | Ir.Instr.Fneg ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        setf ops tg pc d m fr (-.fg fr.fregs s)
    | Ir.Instr.Fabs ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        setf ops tg pc d m fr (Float.abs (fg fr.fregs s))
    | Ir.Instr.Fsqrt ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        setf ops tg pc d m fr (Float.sqrt (fg fr.fregs s)))
  | Code.DFcmp (op, d, a, b) -> (
    match op with
    | Ir.Instr.Eq ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.fregs in
        seti ops tg pc d m fr (if fg r a = fg r b then 1 else 0)
    | Ir.Instr.Ne ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.fregs in
        seti ops tg pc d m fr (if fg r a <> fg r b then 1 else 0)
    | Ir.Instr.Lt ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.fregs in
        seti ops tg pc d m fr (if fg r a < fg r b then 1 else 0)
    | Ir.Instr.Le ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.fregs in
        seti ops tg pc d m fr (if fg r a <= fg r b then 1 else 0)
    | Ir.Instr.Gt ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.fregs in
        seti ops tg pc d m fr (if fg r a > fg r b then 1 else 0)
    | Ir.Instr.Ge ->
      fun m ->
        bump m;
        let fr = m.run_fr in
        let r = fr.fregs in
        seti ops tg pc d m fr (if fg r a >= fg r b then 1 else 0))
  | Code.DI2f (d, s) ->
    fun m ->
      bump m;
      let fr = m.run_fr in
      setf ops tg pc d m fr (float_of_int (ig fr.iregs s))
  | Code.DF2i (d, s) ->
    fun m ->
      bump m;
      let fr = m.run_fr in
      fr.pc <- pc;
      seti ops tg pc d m fr (f2i (fg fr.fregs s))
  | Code.DLw (d, b, o) ->
    fun m ->
      bump m;
      let fr = m.run_fr in
      (* park pc for strict-model trap provenance; one image serves
         both memory models, so the store is unconditional *)
      fr.pc <- pc;
      seti ops tg pc d m fr (Memory.load_int m.memory (ig fr.iregs b + o))
  | Code.DSw (v, b, o) ->
    fun m ->
      bump m;
      let fr = m.run_fr in
      fr.pc <- pc;
      let r = fr.iregs in
      Memory.store_int m.memory (ig r b + o) (ig r v);
      next ops pc m
  | Code.DLb (d, b, o) ->
    fun m ->
      bump m;
      let fr = m.run_fr in
      fr.pc <- pc;
      seti ops tg pc d m fr (Memory.load_byte m.memory (ig fr.iregs b + o))
  | Code.DSb (v, b, o) ->
    fun m ->
      bump m;
      let fr = m.run_fr in
      fr.pc <- pc;
      let r = fr.iregs in
      Memory.store_byte m.memory (ig r b + o) (ig r v);
      next ops pc m
  | Code.DLwf (d, b, o) ->
    fun m ->
      bump m;
      let fr = m.run_fr in
      fr.pc <- pc;
      setf ops tg pc d m fr (Memory.load_flt m.memory (ig fr.iregs b + o))
  | Code.DSwf (v, b, o) ->
    fun m ->
      bump m;
      let fr = m.run_fr in
      fr.pc <- pc;
      Memory.store_flt m.memory (ig fr.iregs b + o) (fg fr.fregs v);
      next ops pc m
  | Code.DBr (op, a, b, t) -> (
    match op with
    | Ir.Instr.Eq ->
      fun m ->
        bump m;
        let r = m.run_fr.iregs in
        (Array.unsafe_get ops (if ig r a = ig r b then t else pc + 1)) m
    | Ir.Instr.Ne ->
      fun m ->
        bump m;
        let r = m.run_fr.iregs in
        (Array.unsafe_get ops (if ig r a <> ig r b then t else pc + 1)) m
    | Ir.Instr.Lt ->
      fun m ->
        bump m;
        let r = m.run_fr.iregs in
        (Array.unsafe_get ops (if ig r a < ig r b then t else pc + 1)) m
    | Ir.Instr.Le ->
      fun m ->
        bump m;
        let r = m.run_fr.iregs in
        (Array.unsafe_get ops (if ig r a <= ig r b then t else pc + 1)) m
    | Ir.Instr.Gt ->
      fun m ->
        bump m;
        let r = m.run_fr.iregs in
        (Array.unsafe_get ops (if ig r a > ig r b then t else pc + 1)) m
    | Ir.Instr.Ge ->
      fun m ->
        bump m;
        let r = m.run_fr.iregs in
        (Array.unsafe_get ops (if ig r a >= ig r b then t else pc + 1)) m)
  | Code.DBrz (op, a, t) -> (
    match op with
    | Ir.Instr.Eq ->
      fun m ->
        bump m;
        (Array.unsafe_get ops (if ig m.run_fr.iregs a = 0 then t else pc + 1)) m
    | Ir.Instr.Ne ->
      fun m ->
        bump m;
        (Array.unsafe_get ops (if ig m.run_fr.iregs a <> 0 then t else pc + 1))
          m
    | Ir.Instr.Lt ->
      fun m ->
        bump m;
        (Array.unsafe_get ops (if ig m.run_fr.iregs a < 0 then t else pc + 1)) m
    | Ir.Instr.Le ->
      fun m ->
        bump m;
        (Array.unsafe_get ops (if ig m.run_fr.iregs a <= 0 then t else pc + 1))
          m
    | Ir.Instr.Gt ->
      fun m ->
        bump m;
        (Array.unsafe_get ops (if ig m.run_fr.iregs a > 0 then t else pc + 1)) m
    | Ir.Instr.Ge ->
      fun m ->
        bump m;
        (Array.unsafe_get ops (if ig m.run_fr.iregs a >= 0 then t else pc + 1))
          m)
  | Code.DJmp t ->
    fun m ->
      bump m;
      (Array.unsafe_get ops t) m
  | Code.DCall c ->
    let callee = code.Code.funcs.(c.Code.fid) in
    let ni = max callee.Code.n_int 1 and nf = max callee.Code.n_flt 1 in
    let iargs = c.Code.iargs and fargs = c.Code.fargs in
    let cfid = c.Code.fid in
    fun m ->
      bump m;
      let fr = m.run_fr in
      (* park pc: the caller resumes past this DCall, the overflow trap
         is attributed here, and return write-back reads it *)
      fr.pc <- pc;
      let callee_depth = m.depth + 1 in
      if callee_depth > max_call_depth then
        raise (Trap.Error (Trap.Call_stack_overflow callee_depth));
      let iregs = Array.make ni 0 and fregs = Array.make nf 0.0 in
      let src_i = fr.iregs in
      for k = 0 to Array.length iargs - 1 do
        let src, dst = Array.unsafe_get iargs k in
        iregs.(dst) <- src_i.(src)
      done;
      let src_f = fr.fregs in
      for k = 0 to Array.length fargs - 1 do
        let src, dst = Array.unsafe_get fargs k in
        fregs.(dst) <- src_f.(src)
      done;
      m.depth <- callee_depth;
      m.stack <- { fid = cfid; pc = 0; iregs; fregs } :: m.stack
      (* head frame changed: return to the driver *)
  | Code.DRetI r ->
    fun m ->
      bump m;
      return m (Some (Value.I (ig m.run_fr.iregs r)))
  | Code.DRetF r ->
    fun m ->
      bump m;
      return m (Some (Value.F (fg m.run_fr.fregs r)))
  | Code.DRetV ->
    fun m ->
      bump m;
      return m None

(* ------------------------------------------------------------------ *)
(* Trace fusion.

   A per-instruction closure chain still pays a fixed toll per simulated
   instruction: GC poll, dyn load/store, budget compare, closure-env
   loads and an indirect jump. On a ~2 GHz core that floor is ~10
   cycles, which caps the whole engine at ~5 ns/instr no matter how
   tight the arms are. To go materially faster we amortize that toll:
   [build_trace] walks the decoded body from a pc, following fall-
   through, unconditional jumps and the *predicted* direction of
   conditional branches (backward = loop = taken), and flattens up to
   [trace_cap] instructions into parallel int arrays of micro-ops. A
   single closure then interprets the whole trace with [dyn] carried in
   a register, one budget pre-check for the worst case, and no closure
   dispatch between micro-ops — the micro loop is a tail-recursive
   top-level function whose match compiles to one jump table.

   Equivalence with the per-instruction engines:
   - Traces stop before tagged (injectable) instructions, calls,
     returns and always-trapping immediates, so no ordinal moves and no
     pause can fire inside a trace; the classic closure at the stop pc
     handles those exactly as before.
   - [m.dyn] is committed at every exit (deviated branch, trace end)
     and before any micro-op that can trap, after adding the trapping
     instruction itself — matching the reference loop's bump-then-
     execute order, so trap provenance and dyn counts are identical.
   - The budget pre-check [dyn + klen > budget] falls back to the
     classic closure chain when a timeout *could* occur inside the
     trace; the classic chain then steps one instruction at a time (re-
     checking at each trace head it meets) so the timeout fires at
     exactly [dyn = budget + 1], like the reference engine.
   - A conditional branch whose actual direction differs from the
     trace's assumption commits and dispatches the target's closure;
     branch targets always re-enter through the shared ops table, so a
     deviation costs one extra dispatch, never wrong state.

   Loops shorter than the cap unroll inside a single trace (the walk
   may revisit a pc), so a hot loop executes dozens of iterations per
   closure entry. *)

(* Micro-op words pack [code lsl 40 lor (a lsl 20) lor b] — register
   indices are far below 2^20 and codes below 2^12 — so the hot loop
   reads one int per micro-op plus, when present, the full-width third
   operand (immediate / offset / branch target) from [tc]. The arrays
   ride in parameters of the tail recursion, keeping their base
   pointers in registers; rarely-touched data (parked pcs, the float
   pool) hides behind one [aux] record so it costs nothing per step. *)

type aux = {
  xpc : int array;  (* original pc per micro-op, for parking *)
  xfp : float array;  (* float-immediate pool *)
}

type trace = {
  tcab : int array;  (* packed code/a/b micro-op words, see [go] *)
  ttc : int array;  (* third operand: src2 / imm / offset / target *)
  taux : aux;  (* cold per-trace data: parked pcs, float pool *)
  tklen : int;  (* worst-case dyn contribution (= micro count) *)
}

(* Micro opcode map (keep [go], [build_trace] and this table in sync;
   the cross-engine differential suite exercises every row):
     0  end          a=dispatch pc
     1  jmp          (dyn bump only; control folded into the walk)
     2  li    a=d c=imm          3  la   a=d c=addr
     4  lf    a=d b=fpool        5  movi a=d b=s       6  movf a=d b=s
     7  i2f   a=d b=s            8  f2i  a=d b=s         (parks)
     9  lw   10 lb   11 lwf      a=d b=base c=off        (park)
    12  sw   13 sb   14 swf      a=v b=base c=off        (park)
    15..25  bin  Add..Sra        a=d b=ra c=rb   (Div/Rem park on 0)
    26..36  bini Add..Sra        a=d b=ra c=imm  (shift counts masked)
    37..42  cmp  Eq..Ge          a=d b=ra c=rb
    43..48  fcmp Eq..Ge          a=d b=ra c=rb
    49..52  fbin Fadd..Fdiv      a=d b=ra c=rb
    53..55  fun  Fneg/Fabs/Fsqrt a=d b=s
    56..61  br  assume-fallthrough  a=ra b=rb c=taken target
    62..67  br  assume-taken        a=ra b=rb c=fallthrough pc
    68..73  brz assume-fallthrough  a=ra c=taken target
    74..79  brz assume-taken        a=ra c=fallthrough pc *)

let ibin : Ir.Instr.binop -> int = function
  | Ir.Instr.Add -> 0
  | Ir.Instr.Sub -> 1
  | Ir.Instr.Mul -> 2
  | Ir.Instr.Div -> 3
  | Ir.Instr.Rem -> 4
  | Ir.Instr.And -> 5
  | Ir.Instr.Or -> 6
  | Ir.Instr.Xor -> 7
  | Ir.Instr.Sll -> 8
  | Ir.Instr.Srl -> 9
  | Ir.Instr.Sra -> 10

let icmp : Ir.Instr.cmpop -> int = function
  | Ir.Instr.Eq -> 0
  | Ir.Instr.Ne -> 1
  | Ir.Instr.Lt -> 2
  | Ir.Instr.Le -> 3
  | Ir.Instr.Gt -> 4
  | Ir.Instr.Ge -> 5

let ifbin : Ir.Instr.fbinop -> int = function
  | Ir.Instr.Fadd -> 0
  | Ir.Instr.Fsub -> 1
  | Ir.Instr.Fmul -> 2
  | Ir.Instr.Fdiv -> 3

let ifun : Ir.Instr.funop -> int = function
  | Ir.Instr.Fneg -> 0
  | Ir.Instr.Fabs -> 1
  | Ir.Instr.Fsqrt -> 2

let[@inline] pA v = (v lsr 20) land 0xFFFFF
let[@inline] pB v = v land 0xFFFFF

(* Run one trace to its exit and return the pc to dispatch next. The
   micro loop keeps its cursor [j], the running dyn count [d] and the
   exit pc [t] in local refs that ocamlopt unboxes into registers — a
   tail-recursive formulation re-enters the function per micro-op and
   respills every parameter. [d] is committed to [m.dyn] only at exits
   and trap points; the budget was pre-checked for the whole trace, so
   no timeout test is needed per micro-op. The caller tail-dispatches
   the returned pc, keeping the dispatch chain's stack constant. *)
let run_trace (m : t) (fr : frame) (r : int array) (f : float array)
    (cab : int array) (tc : int array) (aux : aux) : int =
  let j = ref 0 in
  let d = ref m.dyn in
  let t = ref (-1) in
  while !t < 0 do
    let j0 = !j in
    let v = Array.unsafe_get cab j0 in
    match v lsr 40 with
  | 0 ->
    m.dyn <- !d;
    t := pA v
  | 1 ->
    incr d;
    j := j0 + 1
  | 2 ->
    is_ r (pA v) (Array.unsafe_get tc j0);
    incr d;
    j := j0 + 1
  | 3 ->
    is_ r (pA v) (Array.unsafe_get tc j0);
    incr d;
    j := j0 + 1
  | 4 ->
    fs f (pA v) (Array.unsafe_get aux.xfp (pB v));
    incr d;
    j := j0 + 1
  | 5 ->
    is_ r (pA v) (ig r (pB v));
    incr d;
    j := j0 + 1
  | 6 ->
    fs f (pA v) (fg f (pB v));
    incr d;
    j := j0 + 1
  | 7 ->
    fs f (pA v) (float_of_int (ig r (pB v)));
    incr d;
    j := j0 + 1
  | 8 ->
    let dd = !d + 1 in
    fr.pc <- Array.unsafe_get aux.xpc j0;
    m.dyn <- dd;
    is_ r (pA v) (f2i (fg f (pB v)));
    d := dd;
    j := j0 + 1
  | 9 ->
    let dd = !d + 1 in
    fr.pc <- Array.unsafe_get aux.xpc j0;
    m.dyn <- dd;
    is_ r (pA v) (Memory.load_int m.memory (ig r (pB v) + Array.unsafe_get tc j0));
    d := dd;
    j := j0 + 1
  | 10 ->
    let dd = !d + 1 in
    fr.pc <- Array.unsafe_get aux.xpc j0;
    m.dyn <- dd;
    is_ r (pA v) (Memory.load_byte m.memory (ig r (pB v) + Array.unsafe_get tc j0));
    d := dd;
    j := j0 + 1
  | 11 ->
    let dd = !d + 1 in
    fr.pc <- Array.unsafe_get aux.xpc j0;
    m.dyn <- dd;
    fs f (pA v) (Memory.load_flt m.memory (ig r (pB v) + Array.unsafe_get tc j0));
    d := dd;
    j := j0 + 1
  | 12 ->
    let dd = !d + 1 in
    fr.pc <- Array.unsafe_get aux.xpc j0;
    m.dyn <- dd;
    Memory.store_int m.memory (ig r (pB v) + Array.unsafe_get tc j0) (ig r (pA v));
    d := dd;
    j := j0 + 1
  | 13 ->
    let dd = !d + 1 in
    fr.pc <- Array.unsafe_get aux.xpc j0;
    m.dyn <- dd;
    Memory.store_byte m.memory (ig r (pB v) + Array.unsafe_get tc j0) (ig r (pA v));
    d := dd;
    j := j0 + 1
  | 14 ->
    let dd = !d + 1 in
    fr.pc <- Array.unsafe_get aux.xpc j0;
    m.dyn <- dd;
    Memory.store_flt m.memory (ig r (pB v) + Array.unsafe_get tc j0) (fg f (pA v));
    d := dd;
    j := j0 + 1
  | 15 ->
    is_ r (pA v) (sx32 (ig r (pB v) + ig r (Array.unsafe_get tc j0)));
    incr d;
    j := j0 + 1
  | 16 ->
    is_ r (pA v) (sx32 (ig r (pB v) - ig r (Array.unsafe_get tc j0)));
    incr d;
    j := j0 + 1
  | 17 ->
    is_ r (pA v) (sx32 (ig r (pB v) * ig r (Array.unsafe_get tc j0)));
    incr d;
    j := j0 + 1
  | 18 ->
    let dd = !d + 1 in
    let bv = ig r (Array.unsafe_get tc j0) in
    if bv = 0 then begin
      m.dyn <- dd;
      div_by_zero fr (Array.unsafe_get aux.xpc j0)
    end;
    is_ r (pA v) (sx32 (ig r (pB v) / bv));
    d := dd;
    j := j0 + 1
  | 19 ->
    let dd = !d + 1 in
    let bv = ig r (Array.unsafe_get tc j0) in
    if bv = 0 then begin
      m.dyn <- dd;
      div_by_zero fr (Array.unsafe_get aux.xpc j0)
    end;
    is_ r (pA v) (sx32 (ig r (pB v) mod bv));
    d := dd;
    j := j0 + 1
  | 20 ->
    is_ r (pA v) (ig r (pB v) land ig r (Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 21 ->
    is_ r (pA v) (ig r (pB v) lor ig r (Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 22 ->
    is_ r (pA v) (ig r (pB v) lxor ig r (Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 23 ->
    is_ r (pA v) (sx32 (ig r (pB v) lsl (ig r (Array.unsafe_get tc j0) land 31)));
    incr d;
    j := j0 + 1
  | 24 ->
    is_ r (pA v)
      (sx32 ((ig r (pB v) land 0xFFFFFFFF) lsr (ig r (Array.unsafe_get tc j0) land 31)));
    incr d;
    j := j0 + 1
  | 25 ->
    is_ r (pA v) (ig r (pB v) asr (ig r (Array.unsafe_get tc j0) land 31));
    incr d;
    j := j0 + 1
  | 26 ->
    is_ r (pA v) (sx32 (ig r (pB v) + Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 27 ->
    is_ r (pA v) (sx32 (ig r (pB v) - Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 28 ->
    is_ r (pA v) (sx32 (ig r (pB v) * Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 29 ->
    (* imm divisor, nonzero by construction (zero stops the trace) *)
    is_ r (pA v) (sx32 (ig r (pB v) / Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 30 ->
    is_ r (pA v) (sx32 (ig r (pB v) mod Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 31 ->
    is_ r (pA v) (ig r (pB v) land Array.unsafe_get tc j0);
    incr d;
    j := j0 + 1
  | 32 ->
    is_ r (pA v) (ig r (pB v) lor Array.unsafe_get tc j0);
    incr d;
    j := j0 + 1
  | 33 ->
    is_ r (pA v) (ig r (pB v) lxor Array.unsafe_get tc j0);
    incr d;
    j := j0 + 1
  | 34 ->
    is_ r (pA v) (sx32 (ig r (pB v) lsl Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 35 ->
    is_ r (pA v) (sx32 ((ig r (pB v) land 0xFFFFFFFF) lsr Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 36 ->
    is_ r (pA v) (ig r (pB v) asr Array.unsafe_get tc j0);
    incr d;
    j := j0 + 1
  | 37 ->
    is_ r (pA v) (if ig r (pB v) = ig r (Array.unsafe_get tc j0) then 1 else 0);
    incr d;
    j := j0 + 1
  | 38 ->
    is_ r (pA v) (if ig r (pB v) <> ig r (Array.unsafe_get tc j0) then 1 else 0);
    incr d;
    j := j0 + 1
  | 39 ->
    is_ r (pA v) (if ig r (pB v) < ig r (Array.unsafe_get tc j0) then 1 else 0);
    incr d;
    j := j0 + 1
  | 40 ->
    is_ r (pA v) (if ig r (pB v) <= ig r (Array.unsafe_get tc j0) then 1 else 0);
    incr d;
    j := j0 + 1
  | 41 ->
    is_ r (pA v) (if ig r (pB v) > ig r (Array.unsafe_get tc j0) then 1 else 0);
    incr d;
    j := j0 + 1
  | 42 ->
    is_ r (pA v) (if ig r (pB v) >= ig r (Array.unsafe_get tc j0) then 1 else 0);
    incr d;
    j := j0 + 1
  | 43 ->
    is_ r (pA v) (if fg f (pB v) = fg f (Array.unsafe_get tc j0) then 1 else 0);
    incr d;
    j := j0 + 1
  | 44 ->
    is_ r (pA v) (if fg f (pB v) <> fg f (Array.unsafe_get tc j0) then 1 else 0);
    incr d;
    j := j0 + 1
  | 45 ->
    is_ r (pA v) (if fg f (pB v) < fg f (Array.unsafe_get tc j0) then 1 else 0);
    incr d;
    j := j0 + 1
  | 46 ->
    is_ r (pA v) (if fg f (pB v) <= fg f (Array.unsafe_get tc j0) then 1 else 0);
    incr d;
    j := j0 + 1
  | 47 ->
    is_ r (pA v) (if fg f (pB v) > fg f (Array.unsafe_get tc j0) then 1 else 0);
    incr d;
    j := j0 + 1
  | 48 ->
    is_ r (pA v) (if fg f (pB v) >= fg f (Array.unsafe_get tc j0) then 1 else 0);
    incr d;
    j := j0 + 1
  | 49 ->
    fs f (pA v) (fg f (pB v) +. fg f (Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 50 ->
    fs f (pA v) (fg f (pB v) -. fg f (Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 51 ->
    fs f (pA v) (fg f (pB v) *. fg f (Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 52 ->
    fs f (pA v) (fg f (pB v) /. fg f (Array.unsafe_get tc j0));
    incr d;
    j := j0 + 1
  | 53 ->
    fs f (pA v) (-.fg f (pB v));
    incr d;
    j := j0 + 1
  | 54 ->
    fs f (pA v) (Float.abs (fg f (pB v)));
    incr d;
    j := j0 + 1
  | 55 ->
    fs f (pA v) (Float.sqrt (fg f (pB v)));
    incr d;
    j := j0 + 1
  | 56 ->
    let dd = !d + 1 in
    if ig r (pA v) = ig r (pB v) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
    else begin
      d := dd;
      j := j0 + 1
    end
  | 57 ->
    let dd = !d + 1 in
    if ig r (pA v) <> ig r (pB v) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
    else begin
      d := dd;
      j := j0 + 1
    end
  | 58 ->
    let dd = !d + 1 in
    if ig r (pA v) < ig r (pB v) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
    else begin
      d := dd;
      j := j0 + 1
    end
  | 59 ->
    let dd = !d + 1 in
    if ig r (pA v) <= ig r (pB v) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
    else begin
      d := dd;
      j := j0 + 1
    end
  | 60 ->
    let dd = !d + 1 in
    if ig r (pA v) > ig r (pB v) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
    else begin
      d := dd;
      j := j0 + 1
    end
  | 61 ->
    let dd = !d + 1 in
    if ig r (pA v) >= ig r (pB v) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
    else begin
      d := dd;
      j := j0 + 1
    end
  | 62 ->
    let dd = !d + 1 in
    if ig r (pA v) = ig r (pB v) then begin
      d := dd;
      j := j0 + 1
    end
    else begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
  | 63 ->
    let dd = !d + 1 in
    if ig r (pA v) <> ig r (pB v) then begin
      d := dd;
      j := j0 + 1
    end
    else begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
  | 64 ->
    let dd = !d + 1 in
    if ig r (pA v) < ig r (pB v) then begin
      d := dd;
      j := j0 + 1
    end
    else begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
  | 65 ->
    let dd = !d + 1 in
    if ig r (pA v) <= ig r (pB v) then begin
      d := dd;
      j := j0 + 1
    end
    else begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
  | 66 ->
    let dd = !d + 1 in
    if ig r (pA v) > ig r (pB v) then begin
      d := dd;
      j := j0 + 1
    end
    else begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
  | 67 ->
    let dd = !d + 1 in
    if ig r (pA v) >= ig r (pB v) then begin
      d := dd;
      j := j0 + 1
    end
    else begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
  | 68 ->
    let dd = !d + 1 in
    if ig r (pA v) = 0 then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
    else begin
      d := dd;
      j := j0 + 1
    end
  | 69 ->
    let dd = !d + 1 in
    if ig r (pA v) <> 0 then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
    else begin
      d := dd;
      j := j0 + 1
    end
  | 70 ->
    let dd = !d + 1 in
    if ig r (pA v) < 0 then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
    else begin
      d := dd;
      j := j0 + 1
    end
  | 71 ->
    let dd = !d + 1 in
    if ig r (pA v) <= 0 then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
    else begin
      d := dd;
      j := j0 + 1
    end
  | 72 ->
    let dd = !d + 1 in
    if ig r (pA v) > 0 then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
    else begin
      d := dd;
      j := j0 + 1
    end
  | 73 ->
    let dd = !d + 1 in
    if ig r (pA v) >= 0 then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
    else begin
      d := dd;
      j := j0 + 1
    end
  | 74 ->
    let dd = !d + 1 in
    if ig r (pA v) = 0 then begin
      d := dd;
      j := j0 + 1
    end
    else begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
  | 75 ->
    let dd = !d + 1 in
    if ig r (pA v) <> 0 then begin
      d := dd;
      j := j0 + 1
    end
    else begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
  | 76 ->
    let dd = !d + 1 in
    if ig r (pA v) < 0 then begin
      d := dd;
      j := j0 + 1
    end
    else begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
  | 77 ->
    let dd = !d + 1 in
    if ig r (pA v) <= 0 then begin
      d := dd;
      j := j0 + 1
    end
    else begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
  | 78 ->
    let dd = !d + 1 in
    if ig r (pA v) > 0 then begin
      d := dd;
      j := j0 + 1
    end
    else begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
  | 79 ->
    let dd = !d + 1 in
    if ig r (pA v) >= 0 then begin
      d := dd;
      j := j0 + 1
    end
    else begin
      m.dyn <- dd;
      t := Array.unsafe_get tc j0
    end
  (* Superinstructions: one dispatch executes the micro at [j0] and the
     one at [j0 + 1]. Operand fields stay in each member's own word, so
     pairing is purely positional (trace-adjacent, not pc-adjacent) —
     see [fuse_code] for the pair table. dyn accounting and trap parking
     follow the same bump-then-execute order as the unfused arms. *)
  | 80 ->
    (* add+add *)
    is_ r (pA v) (sx32 (ig r (pB v) + ig r (Array.unsafe_get tc j0)));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) + ig r (Array.unsafe_get tc (j0 + 1))));
    d := !d + 2;
    j := j0 + 2
  | 81 ->
    (* add+li *)
    is_ r (pA v) (sx32 (ig r (pB v) + ig r (Array.unsafe_get tc j0)));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (Array.unsafe_get tc (j0 + 1));
    d := !d + 2;
    j := j0 + 2
  | 82 ->
    (* mul+mul *)
    is_ r (pA v) (sx32 (ig r (pB v) * ig r (Array.unsafe_get tc j0)));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) * ig r (Array.unsafe_get tc (j0 + 1))));
    d := !d + 2;
    j := j0 + 2
  | 83 ->
    (* mul+add *)
    is_ r (pA v) (sx32 (ig r (pB v) * ig r (Array.unsafe_get tc j0)));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) + ig r (Array.unsafe_get tc (j0 + 1))));
    d := !d + 2;
    j := j0 + 2
  | 84 ->
    (* muli+add *)
    is_ r (pA v) (sx32 (ig r (pB v) * Array.unsafe_get tc j0));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) + ig r (Array.unsafe_get tc (j0 + 1))));
    d := !d + 2;
    j := j0 + 2
  | 85 ->
    (* la+muli *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) * Array.unsafe_get tc (j0 + 1)));
    d := !d + 2;
    j := j0 + 2
  | 86 ->
    (* la+addi *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) + Array.unsafe_get tc (j0 + 1)));
    d := !d + 2;
    j := j0 + 2
  | 87 ->
    (* andi+add *)
    is_ r (pA v) (ig r (pB v) land Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) + ig r (Array.unsafe_get tc (j0 + 1))));
    d := !d + 2;
    j := j0 + 2
  | 88 ->
    (* addi+andi *)
    is_ r (pA v) (sx32 (ig r (pB v) + Array.unsafe_get tc j0));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (ig r (pB v2) land Array.unsafe_get tc (j0 + 1));
    d := !d + 2;
    j := j0 + 2
  | 89 ->
    (* sub+la *)
    is_ r (pA v) (sx32 (ig r (pB v) - ig r (Array.unsafe_get tc j0)));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (Array.unsafe_get tc (j0 + 1));
    d := !d + 2;
    j := j0 + 2
  | 90 ->
    (* slli+add *)
    is_ r (pA v) (sx32 (ig r (pB v) lsl Array.unsafe_get tc j0));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) + ig r (Array.unsafe_get tc (j0 + 1))));
    d := !d + 2;
    j := j0 + 2
  | 91 ->
    (* la+slli *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    d := !d + 2;
    j := j0 + 2
  | 92 ->
    (* addi+jmp: the jmp member has no work of its own *)
    is_ r (pA v) (sx32 (ig r (pB v) + Array.unsafe_get tc j0));
    d := !d + 2;
    j := j0 + 2
  | 93 ->
    (* add+la *)
    is_ r (pA v) (sx32 (ig r (pB v) + ig r (Array.unsafe_get tc j0)));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (Array.unsafe_get tc (j0 + 1));
    d := !d + 2;
    j := j0 + 2
  | 96 ->
    (* add+lb *)
    is_ r (pA v) (sx32 (ig r (pB v) + ig r (Array.unsafe_get tc j0)));
    let dd = !d + 2 in
    let v2 = Array.unsafe_get cab (j0 + 1) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 1);
    m.dyn <- dd;
    is_ r (pA v2)
      (Memory.load_byte m.memory (ig r (pB v2) + Array.unsafe_get tc (j0 + 1)));
    d := dd;
    j := j0 + 2
  | 97 ->
    (* add+lw *)
    is_ r (pA v) (sx32 (ig r (pB v) + ig r (Array.unsafe_get tc j0)));
    let dd = !d + 2 in
    let v2 = Array.unsafe_get cab (j0 + 1) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 1);
    m.dyn <- dd;
    is_ r (pA v2)
      (Memory.load_int m.memory (ig r (pB v2) + Array.unsafe_get tc (j0 + 1)));
    d := dd;
    j := j0 + 2
  | 98 ->
    (* add+sw *)
    is_ r (pA v) (sx32 (ig r (pB v) + ig r (Array.unsafe_get tc j0)));
    let dd = !d + 2 in
    let v2 = Array.unsafe_get cab (j0 + 1) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 1);
    m.dyn <- dd;
    Memory.store_int m.memory
      (ig r (pB v2) + Array.unsafe_get tc (j0 + 1))
      (ig r (pA v2));
    d := dd;
    j := j0 + 2
  | 99 ->
    (* lb+add *)
    let dd = !d + 1 in
    fr.pc <- Array.unsafe_get aux.xpc j0;
    m.dyn <- dd;
    is_ r (pA v) (Memory.load_byte m.memory (ig r (pB v) + Array.unsafe_get tc j0));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) + ig r (Array.unsafe_get tc (j0 + 1))));
    d := dd + 1;
    j := j0 + 2
  | 100 ->
    (* lb+sub *)
    let dd = !d + 1 in
    fr.pc <- Array.unsafe_get aux.xpc j0;
    m.dyn <- dd;
    is_ r (pA v) (Memory.load_byte m.memory (ig r (pB v) + Array.unsafe_get tc j0));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) - ig r (Array.unsafe_get tc (j0 + 1))));
    d := dd + 1;
    j := j0 + 2
  | 101 ->
    (* lw+la *)
    let dd = !d + 1 in
    fr.pc <- Array.unsafe_get aux.xpc j0;
    m.dyn <- dd;
    is_ r (pA v) (Memory.load_int m.memory (ig r (pB v) + Array.unsafe_get tc j0));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (Array.unsafe_get tc (j0 + 1));
    d := dd + 1;
    j := j0 + 2
  | 102 ->
    (* lw+li *)
    let dd = !d + 1 in
    fr.pc <- Array.unsafe_get aux.xpc j0;
    m.dyn <- dd;
    is_ r (pA v) (Memory.load_int m.memory (ig r (pB v) + Array.unsafe_get tc j0));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (Array.unsafe_get tc (j0 + 1));
    d := dd + 1;
    j := j0 + 2
  | 103 ->
    (* lw+add *)
    let dd = !d + 1 in
    fr.pc <- Array.unsafe_get aux.xpc j0;
    m.dyn <- dd;
    is_ r (pA v) (Memory.load_int m.memory (ig r (pB v) + Array.unsafe_get tc j0));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) + ig r (Array.unsafe_get tc (j0 + 1))));
    d := dd + 1;
    j := j0 + 2
  | 104 ->
    (* lw+jmp: the jmp member has no work of its own *)
    let dd = !d + 1 in
    fr.pc <- Array.unsafe_get aux.xpc j0;
    m.dyn <- dd;
    is_ r (pA v) (Memory.load_int m.memory (ig r (pB v) + Array.unsafe_get tc j0));
    d := dd + 1;
    j := j0 + 2
  (* Fused quads: one dispatch for four micros. Same field layout as
     pairs — each member keeps its own word. These carve the dominant
     loop bodies of the app suite (indexed load/store chains and the
     2-D pixel address computation). *)
  | 105 ->
    (* la+slli+add+lw *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_int m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    d := dd;
    j := j0 + 4
  | 106 ->
    (* la+slli+add+sw *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    Memory.store_int m.memory
      (ig r (pB v4) + Array.unsafe_get tc (j0 + 3))
      (ig r (pA v4));
    d := dd;
    j := j0 + 4
  | 107 ->
    (* mul+mul+add+li *)
    is_ r (pA v) (sx32 (ig r (pB v) * ig r (Array.unsafe_get tc j0)));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) * ig r (Array.unsafe_get tc (j0 + 1))));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let v4 = Array.unsafe_get cab (j0 + 3) in
    is_ r (pA v4) (Array.unsafe_get tc (j0 + 3));
    d := !d + 4;
    j := j0 + 4
  | 108 ->
    (* add+lb+sub+la *)
    is_ r (pA v) (sx32 (ig r (pB v) + ig r (Array.unsafe_get tc j0)));
    let dd = !d + 2 in
    let v2 = Array.unsafe_get cab (j0 + 1) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 1);
    m.dyn <- dd;
    is_ r (pA v2)
      (Memory.load_byte m.memory (ig r (pB v2) + Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) - ig r (Array.unsafe_get tc (j0 + 2))));
    let v4 = Array.unsafe_get cab (j0 + 3) in
    is_ r (pA v4) (Array.unsafe_get tc (j0 + 3));
    d := dd + 2;
    j := j0 + 4
  | 109 ->
    (* add+lb+add+addi *)
    is_ r (pA v) (sx32 (ig r (pB v) + ig r (Array.unsafe_get tc j0)));
    let dd = !d + 2 in
    let v2 = Array.unsafe_get cab (j0 + 1) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 1);
    m.dyn <- dd;
    is_ r (pA v2)
      (Memory.load_byte m.memory (ig r (pB v2) + Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let v4 = Array.unsafe_get cab (j0 + 3) in
    is_ r (pA v4) (sx32 (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    d := dd + 2;
    j := j0 + 4
  | 110 ->
    (* la+addi+andi+add *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) + Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (ig r (pB v3) land Array.unsafe_get tc (j0 + 2));
    let v4 = Array.unsafe_get cab (j0 + 3) in
    is_ r (pA v4) (sx32 (ig r (pB v4) + ig r (Array.unsafe_get tc (j0 + 3))));
    d := !d + 4;
    j := j0 + 4
  | 111 ->
    (* muli+add+add+add *)
    is_ r (pA v) (sx32 (ig r (pB v) * Array.unsafe_get tc j0));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) + ig r (Array.unsafe_get tc (j0 + 1))));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let v4 = Array.unsafe_get cab (j0 + 3) in
    is_ r (pA v4) (sx32 (ig r (pB v4) + ig r (Array.unsafe_get tc (j0 + 3))));
    d := !d + 4;
    j := j0 + 4
  | 112 ->
    (* la+muli+add+add *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) * Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let v4 = Array.unsafe_get cab (j0 + 3) in
    is_ r (pA v4) (sx32 (ig r (pB v4) + ig r (Array.unsafe_get tc (j0 + 3))));
    d := !d + 4;
    j := j0 + 4
  | 113 ->
    (* la+muli+add+add+add+lb+sub+la: one full 8-wide run of the susan
       pixel loop prefix; the lb is the 6th member *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) * Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let v4 = Array.unsafe_get cab (j0 + 3) in
    is_ r (pA v4) (sx32 (ig r (pB v4) + ig r (Array.unsafe_get tc (j0 + 3))));
    let v5 = Array.unsafe_get cab (j0 + 4) in
    is_ r (pA v5) (sx32 (ig r (pB v5) + ig r (Array.unsafe_get tc (j0 + 4))));
    let dd = !d + 6 in
    let v6 = Array.unsafe_get cab (j0 + 5) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 5);
    m.dyn <- dd;
    is_ r (pA v6)
      (Memory.load_byte m.memory (ig r (pB v6) + Array.unsafe_get tc (j0 + 5)));
    let v7 = Array.unsafe_get cab (j0 + 6) in
    is_ r (pA v7) (sx32 (ig r (pB v7) - ig r (Array.unsafe_get tc (j0 + 6))));
    let v8 = Array.unsafe_get cab (j0 + 7) in
    is_ r (pA v8) (Array.unsafe_get tc (j0 + 7));
    d := dd + 2;
    j := j0 + 8
  | 114 ->
    (* addi+andi+add+lb+add+addi: the susan pixel loop suffix; the lb
       is the 4th member *)
    is_ r (pA v) (sx32 (ig r (pB v) + Array.unsafe_get tc j0));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (ig r (pB v2) land Array.unsafe_get tc (j0 + 1));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_byte m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    let v5 = Array.unsafe_get cab (j0 + 4) in
    is_ r (pA v5) (sx32 (ig r (pB v5) + ig r (Array.unsafe_get tc (j0 + 4))));
    let v6 = Array.unsafe_get cab (j0 + 5) in
    is_ r (pA v6) (sx32 (ig r (pB v6) + Array.unsafe_get tc (j0 + 5)));
    d := dd + 2;
    j := j0 + 6
  | 115 ->
    (* mul+mul+add+li+br(Gt,fwd): the branch member deviates when its
       condition holds, like the standalone assume-fallthrough arm 60 *)
    is_ r (pA v) (sx32 (ig r (pB v) * ig r (Array.unsafe_get tc j0)));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) * ig r (Array.unsafe_get tc (j0 + 1))));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let v4 = Array.unsafe_get cab (j0 + 3) in
    is_ r (pA v4) (Array.unsafe_get tc (j0 + 3));
    let dd = !d + 5 in
    let v5 = Array.unsafe_get cab (j0 + 4) in
    if ig r (pA v5) > ig r (pB v5) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc (j0 + 4)
    end
    else begin
      d := dd;
      j := j0 + 5
    end
  | 116 ->
    (* addi+andi+add+lb+add+addi+jmp: arm 114 plus the loop backedge
       jmp consumed for free *)
    is_ r (pA v) (sx32 (ig r (pB v) + Array.unsafe_get tc j0));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (ig r (pB v2) land Array.unsafe_get tc (j0 + 1));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_byte m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    let v5 = Array.unsafe_get cab (j0 + 4) in
    is_ r (pA v5) (sx32 (ig r (pB v5) + ig r (Array.unsafe_get tc (j0 + 4))));
    let v6 = Array.unsafe_get cab (j0 + 5) in
    is_ r (pA v6) (sx32 (ig r (pB v6) + Array.unsafe_get tc (j0 + 5)));
    d := dd + 3;
    j := j0 + 7
  | 117 ->
    (* la+slli+add+lw twice: back-to-back indexed loads (the mcf arc
       scan); each lw parks its own pc *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_int m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    let v5 = Array.unsafe_get cab (j0 + 4) in
    is_ r (pA v5) (Array.unsafe_get tc (j0 + 4));
    let v6 = Array.unsafe_get cab (j0 + 5) in
    is_ r (pA v6) (sx32 (ig r (pB v6) lsl Array.unsafe_get tc (j0 + 5)));
    let v7 = Array.unsafe_get cab (j0 + 6) in
    is_ r (pA v7) (sx32 (ig r (pB v7) + ig r (Array.unsafe_get tc (j0 + 6))));
    let dd2 = dd + 4 in
    let v8 = Array.unsafe_get cab (j0 + 7) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 7);
    m.dyn <- dd2;
    is_ r (pA v8)
      (Memory.load_int m.memory (ig r (pB v8) + Array.unsafe_get tc (j0 + 7)));
    d := dd2;
    j := j0 + 8
  | 118 ->
    (* la+slli+add+lw+li *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_int m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    let v5 = Array.unsafe_get cab (j0 + 4) in
    is_ r (pA v5) (Array.unsafe_get tc (j0 + 4));
    d := dd + 1;
    j := j0 + 5
  | 119 ->
    (* la+slli+add+lw+add *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_int m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    let v5 = Array.unsafe_get cab (j0 + 4) in
    is_ r (pA v5) (sx32 (ig r (pB v5) + ig r (Array.unsafe_get tc (j0 + 4))));
    d := dd + 1;
    j := j0 + 5
  | 120 ->
    (* arm 116 plus the loop-header br(Ge,fwd) reached through the
       backedge jmp: a whole pixel-loop iteration's tail in one
       dispatch, branch member last *)
    is_ r (pA v) (sx32 (ig r (pB v) + Array.unsafe_get tc j0));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (ig r (pB v2) land Array.unsafe_get tc (j0 + 1));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_byte m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    let v5 = Array.unsafe_get cab (j0 + 4) in
    is_ r (pA v5) (sx32 (ig r (pB v5) + ig r (Array.unsafe_get tc (j0 + 4))));
    let v6 = Array.unsafe_get cab (j0 + 5) in
    is_ r (pA v6) (sx32 (ig r (pB v6) + Array.unsafe_get tc (j0 + 5)));
    let dd = dd + 4 in
    let v8 = Array.unsafe_get cab (j0 + 7) in
    if ig r (pA v8) >= ig r (pB v8) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc (j0 + 7)
    end
    else begin
      d := dd;
      j := j0 + 8
    end
  | 121 ->
    (* li+addi+jmp+br(Ge,fwd): counter-bump loop tail *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) + Array.unsafe_get tc (j0 + 1)));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    if ig r (pA v4) >= ig r (pB v4) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc (j0 + 3)
    end
    else begin
      d := dd;
      j := j0 + 4
    end
  | 122 ->
    (* cmp(Lt)+and+brz(Eq,fwd): short-circuit condition chain *)
    is_ r (pA v) (if ig r (pB v) < ig r (Array.unsafe_get tc j0) then 1 else 0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (ig r (pB v2) land ig r (Array.unsafe_get tc (j0 + 1)));
    let dd = !d + 3 in
    let v3 = Array.unsafe_get cab (j0 + 2) in
    if ig r (pA v3) = 0 then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc (j0 + 2)
    end
    else begin
      d := dd;
      j := j0 + 3
    end
  | 123 ->
    (* la+slli+add+sw+jmp: arm 106 plus a free backedge jmp *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    Memory.store_int m.memory
      (ig r (pB v4) + Array.unsafe_get tc (j0 + 3))
      (ig r (pA v4));
    d := dd + 1;
    j := j0 + 5
  | 124 ->
    (* la+slli+add+lw+br(Lt,fwd) *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_int m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    let dd = dd + 1 in
    let v5 = Array.unsafe_get cab (j0 + 4) in
    if ig r (pA v5) < ig r (pB v5) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc (j0 + 4)
    end
    else begin
      d := dd;
      j := j0 + 5
    end
  | 125 ->
    (* arm 115 with its fallthrough tail absorbed: addi+jmp+br(Ge,fwd),
       so the non-exiting path of the inner loop is one dispatch *)
    is_ r (pA v) (sx32 (ig r (pB v) * ig r (Array.unsafe_get tc j0)));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) * ig r (Array.unsafe_get tc (j0 + 1))));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let v4 = Array.unsafe_get cab (j0 + 3) in
    is_ r (pA v4) (Array.unsafe_get tc (j0 + 3));
    let dd = !d + 5 in
    let v5 = Array.unsafe_get cab (j0 + 4) in
    if ig r (pA v5) > ig r (pB v5) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc (j0 + 4)
    end
    else begin
      let v6 = Array.unsafe_get cab (j0 + 5) in
      is_ r (pA v6) (sx32 (ig r (pB v6) + Array.unsafe_get tc (j0 + 5)));
      let dd = dd + 3 in
      let v8 = Array.unsafe_get cab (j0 + 7) in
      if ig r (pA v8) >= ig r (pB v8) then begin
        m.dyn <- dd;
        t := Array.unsafe_get tc (j0 + 7)
      end
      else begin
        d := dd;
        j := j0 + 8
      end
    end
  | 126 ->
    (* addi+jmp+br(Ge,fwd): counter-bump backedge into the loop test *)
    is_ r (pA v) (sx32 (ig r (pB v) + Array.unsafe_get tc j0));
    let dd = !d + 3 in
    let v3 = Array.unsafe_get cab (j0 + 2) in
    if ig r (pA v3) >= ig r (pB v3) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc (j0 + 2)
    end
    else begin
      d := dd;
      j := j0 + 3
    end
  | 127 ->
    (* li+li+br(Ge,fwd): constant-reset loop header *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (Array.unsafe_get tc (j0 + 1));
    let dd = !d + 3 in
    let v3 = Array.unsafe_get cab (j0 + 2) in
    if ig r (pA v3) >= ig r (pB v3) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc (j0 + 2)
    end
    else begin
      d := dd;
      j := j0 + 3
    end
  | 128 ->
    (* la+slli+add+lw+jmp+li+br(Lt,fwd): indexed load, backedge jmp
       free, constant, loop test *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_int m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    let v6 = Array.unsafe_get cab (j0 + 5) in
    is_ r (pA v6) (Array.unsafe_get tc (j0 + 5));
    let dd = dd + 3 in
    let v7 = Array.unsafe_get cab (j0 + 6) in
    if ig r (pA v7) < ig r (pB v7) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc (j0 + 6)
    end
    else begin
      d := dd;
      j := j0 + 7
    end
  | 129 ->
    (* la+slli+add+lw+li+cmp(Gt): arm 118 plus the comparison *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_int m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    let v5 = Array.unsafe_get cab (j0 + 4) in
    is_ r (pA v5) (Array.unsafe_get tc (j0 + 4));
    let v6 = Array.unsafe_get cab (j0 + 5) in
    is_ r (pA v6)
      (if ig r (pB v6) > ig r (Array.unsafe_get tc (j0 + 5)) then 1 else 0);
    d := dd + 2;
    j := j0 + 6
  | 130 ->
    (* One full pixel-loop iteration (arms 115+113+120 contiguous in
       the unrolled trace): 21 micros, two parked byte loads, brGt exit
       early out, brGe loop test last *)
    is_ r (pA v) (sx32 (ig r (pB v) * ig r (Array.unsafe_get tc j0)));
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) * ig r (Array.unsafe_get tc (j0 + 1))));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let v4 = Array.unsafe_get cab (j0 + 3) in
    is_ r (pA v4) (Array.unsafe_get tc (j0 + 3));
    let dd = !d + 5 in
    let v5 = Array.unsafe_get cab (j0 + 4) in
    if ig r (pA v5) > ig r (pB v5) then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc (j0 + 4)
    end
    else begin
      let v6 = Array.unsafe_get cab (j0 + 5) in
      is_ r (pA v6) (Array.unsafe_get tc (j0 + 5));
      let v7 = Array.unsafe_get cab (j0 + 6) in
      is_ r (pA v7) (sx32 (ig r (pB v7) * Array.unsafe_get tc (j0 + 6)));
      let v8 = Array.unsafe_get cab (j0 + 7) in
      is_ r (pA v8) (sx32 (ig r (pB v8) + ig r (Array.unsafe_get tc (j0 + 7))));
      let v9 = Array.unsafe_get cab (j0 + 8) in
      is_ r (pA v9) (sx32 (ig r (pB v9) + ig r (Array.unsafe_get tc (j0 + 8))));
      let v10 = Array.unsafe_get cab (j0 + 9) in
      is_ r (pA v10) (sx32 (ig r (pB v10) + ig r (Array.unsafe_get tc (j0 + 9))));
      let dd = dd + 6 in
      let v11 = Array.unsafe_get cab (j0 + 10) in
      fr.pc <- Array.unsafe_get aux.xpc (j0 + 10);
      m.dyn <- dd;
      is_ r (pA v11)
        (Memory.load_byte m.memory
           (ig r (pB v11) + Array.unsafe_get tc (j0 + 10)));
      let v12 = Array.unsafe_get cab (j0 + 11) in
      is_ r (pA v12) (sx32 (ig r (pB v12) - ig r (Array.unsafe_get tc (j0 + 11))));
      let v13 = Array.unsafe_get cab (j0 + 12) in
      is_ r (pA v13) (Array.unsafe_get tc (j0 + 12));
      let v14 = Array.unsafe_get cab (j0 + 13) in
      is_ r (pA v14) (sx32 (ig r (pB v14) + Array.unsafe_get tc (j0 + 13)));
      let v15 = Array.unsafe_get cab (j0 + 14) in
      is_ r (pA v15) (ig r (pB v15) land Array.unsafe_get tc (j0 + 14));
      let v16 = Array.unsafe_get cab (j0 + 15) in
      is_ r (pA v16) (sx32 (ig r (pB v16) + ig r (Array.unsafe_get tc (j0 + 15))));
      let dd = dd + 6 in
      let v17 = Array.unsafe_get cab (j0 + 16) in
      fr.pc <- Array.unsafe_get aux.xpc (j0 + 16);
      m.dyn <- dd;
      is_ r (pA v17)
        (Memory.load_byte m.memory
           (ig r (pB v17) + Array.unsafe_get tc (j0 + 16)));
      let v18 = Array.unsafe_get cab (j0 + 17) in
      is_ r (pA v18) (sx32 (ig r (pB v18) + ig r (Array.unsafe_get tc (j0 + 17))));
      let v19 = Array.unsafe_get cab (j0 + 18) in
      is_ r (pA v19) (sx32 (ig r (pB v19) + Array.unsafe_get tc (j0 + 18)));
      let dd = dd + 4 in
      let v21 = Array.unsafe_get cab (j0 + 20) in
      if ig r (pA v21) >= ig r (pB v21) then begin
        m.dyn <- dd;
        t := Array.unsafe_get tc (j0 + 20)
      end
      else begin
        d := dd;
        j := j0 + 21
      end
    end
  | 131 ->
    (* Three la+slli+add+lw indexed loads then an add: arms 117+119
       contiguous (the mcf arc-scan gather); each lw parks its own pc *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_int m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    let v5 = Array.unsafe_get cab (j0 + 4) in
    is_ r (pA v5) (Array.unsafe_get tc (j0 + 4));
    let v6 = Array.unsafe_get cab (j0 + 5) in
    is_ r (pA v6) (sx32 (ig r (pB v6) lsl Array.unsafe_get tc (j0 + 5)));
    let v7 = Array.unsafe_get cab (j0 + 6) in
    is_ r (pA v7) (sx32 (ig r (pB v7) + ig r (Array.unsafe_get tc (j0 + 6))));
    let dd = dd + 4 in
    let v8 = Array.unsafe_get cab (j0 + 7) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 7);
    m.dyn <- dd;
    is_ r (pA v8)
      (Memory.load_int m.memory (ig r (pB v8) + Array.unsafe_get tc (j0 + 7)));
    let v9 = Array.unsafe_get cab (j0 + 8) in
    is_ r (pA v9) (Array.unsafe_get tc (j0 + 8));
    let v10 = Array.unsafe_get cab (j0 + 9) in
    is_ r (pA v10) (sx32 (ig r (pB v10) lsl Array.unsafe_get tc (j0 + 9)));
    let v11 = Array.unsafe_get cab (j0 + 10) in
    is_ r (pA v11) (sx32 (ig r (pB v11) + ig r (Array.unsafe_get tc (j0 + 10))));
    let dd = dd + 4 in
    let v12 = Array.unsafe_get cab (j0 + 11) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 11);
    m.dyn <- dd;
    is_ r (pA v12)
      (Memory.load_int m.memory (ig r (pB v12) + Array.unsafe_get tc (j0 + 11)));
    let v13 = Array.unsafe_get cab (j0 + 12) in
    is_ r (pA v13) (sx32 (ig r (pB v13) + ig r (Array.unsafe_get tc (j0 + 12))));
    d := dd + 1;
    j := j0 + 13
  | 132 ->
    (* la+slli+add+lw then cmp(Lt)+and+brz(Eq,fwd): arms 105+122, the
       arc-scan bound check *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_int m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    let v5 = Array.unsafe_get cab (j0 + 4) in
    is_ r (pA v5)
      (if ig r (pB v5) < ig r (Array.unsafe_get tc (j0 + 4)) then 1 else 0);
    let v6 = Array.unsafe_get cab (j0 + 5) in
    is_ r (pA v6) (ig r (pB v6) land ig r (Array.unsafe_get tc (j0 + 5)));
    let dd = dd + 3 in
    let v7 = Array.unsafe_get cab (j0 + 6) in
    if ig r (pA v7) = 0 then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc (j0 + 6)
    end
    else begin
      d := dd;
      j := j0 + 7
    end
  | 133 ->
    (* One full arc-scan iteration (arms 131+129+132+128 contiguous in
       the trace): 33 micros, six parked word loads, brz(Eq) bound
       check and brLt loop test as the two exits *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let v4 = Array.unsafe_get cab (j0 + 3) in
    let dd = !d + 4 in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_int m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    let v5 = Array.unsafe_get cab (j0 + 4) in
    is_ r (pA v5) (Array.unsafe_get tc (j0 + 4));
    let v6 = Array.unsafe_get cab (j0 + 5) in
    is_ r (pA v6) (sx32 (ig r (pB v6) lsl Array.unsafe_get tc (j0 + 5)));
    let v7 = Array.unsafe_get cab (j0 + 6) in
    is_ r (pA v7) (sx32 (ig r (pB v7) + ig r (Array.unsafe_get tc (j0 + 6))));
    let v8 = Array.unsafe_get cab (j0 + 7) in
    let dd = dd + 4 in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 7);
    m.dyn <- dd;
    is_ r (pA v8)
      (Memory.load_int m.memory (ig r (pB v8) + Array.unsafe_get tc (j0 + 7)));
    let v9 = Array.unsafe_get cab (j0 + 8) in
    is_ r (pA v9) (Array.unsafe_get tc (j0 + 8));
    let v10 = Array.unsafe_get cab (j0 + 9) in
    is_ r (pA v10) (sx32 (ig r (pB v10) lsl Array.unsafe_get tc (j0 + 9)));
    let v11 = Array.unsafe_get cab (j0 + 10) in
    is_ r (pA v11) (sx32 (ig r (pB v11) + ig r (Array.unsafe_get tc (j0 + 10))));
    let v12 = Array.unsafe_get cab (j0 + 11) in
    let dd = dd + 4 in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 11);
    m.dyn <- dd;
    is_ r (pA v12)
      (Memory.load_int m.memory (ig r (pB v12) + Array.unsafe_get tc (j0 + 11)));
    let v13 = Array.unsafe_get cab (j0 + 12) in
    is_ r (pA v13) (sx32 (ig r (pB v13) + ig r (Array.unsafe_get tc (j0 + 12))));
    let v14 = Array.unsafe_get cab (j0 + 13) in
    is_ r (pA v14) (Array.unsafe_get tc (j0 + 13));
    let v15 = Array.unsafe_get cab (j0 + 14) in
    is_ r (pA v15) (sx32 (ig r (pB v15) lsl Array.unsafe_get tc (j0 + 14)));
    let v16 = Array.unsafe_get cab (j0 + 15) in
    is_ r (pA v16) (sx32 (ig r (pB v16) + ig r (Array.unsafe_get tc (j0 + 15))));
    let v17 = Array.unsafe_get cab (j0 + 16) in
    let dd = dd + 5 in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 16);
    m.dyn <- dd;
    is_ r (pA v17)
      (Memory.load_int m.memory (ig r (pB v17) + Array.unsafe_get tc (j0 + 16)));
    let v18 = Array.unsafe_get cab (j0 + 17) in
    is_ r (pA v18) (Array.unsafe_get tc (j0 + 17));
    let v19 = Array.unsafe_get cab (j0 + 18) in
    is_ r (pA v19)
      (if ig r (pB v19) > ig r (Array.unsafe_get tc (j0 + 18)) then 1 else 0);
    let v20 = Array.unsafe_get cab (j0 + 19) in
    is_ r (pA v20) (Array.unsafe_get tc (j0 + 19));
    let v21 = Array.unsafe_get cab (j0 + 20) in
    is_ r (pA v21) (sx32 (ig r (pB v21) lsl Array.unsafe_get tc (j0 + 20)));
    let v22 = Array.unsafe_get cab (j0 + 21) in
    is_ r (pA v22) (sx32 (ig r (pB v22) + ig r (Array.unsafe_get tc (j0 + 21))));
    let v23 = Array.unsafe_get cab (j0 + 22) in
    let dd = dd + 6 in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 22);
    m.dyn <- dd;
    is_ r (pA v23)
      (Memory.load_int m.memory (ig r (pB v23) + Array.unsafe_get tc (j0 + 22)));
    let v24 = Array.unsafe_get cab (j0 + 23) in
    is_ r (pA v24)
      (if ig r (pB v24) < ig r (Array.unsafe_get tc (j0 + 23)) then 1 else 0);
    let v25 = Array.unsafe_get cab (j0 + 24) in
    is_ r (pA v25) (ig r (pB v25) land ig r (Array.unsafe_get tc (j0 + 24)));
    let dd = dd + 3 in
    let v26 = Array.unsafe_get cab (j0 + 25) in
    if ig r (pA v26) = 0 then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc (j0 + 25)
    end
    else begin
      let v27 = Array.unsafe_get cab (j0 + 26) in
      is_ r (pA v27) (Array.unsafe_get tc (j0 + 26));
      let v28 = Array.unsafe_get cab (j0 + 27) in
      is_ r (pA v28) (sx32 (ig r (pB v28) lsl Array.unsafe_get tc (j0 + 27)));
      let v29 = Array.unsafe_get cab (j0 + 28) in
      is_ r (pA v29) (sx32 (ig r (pB v29) + ig r (Array.unsafe_get tc (j0 + 28))));
      let v30 = Array.unsafe_get cab (j0 + 29) in
      let dd = dd + 4 in
      fr.pc <- Array.unsafe_get aux.xpc (j0 + 29);
      m.dyn <- dd;
      is_ r (pA v30)
        (Memory.load_int m.memory (ig r (pB v30) + Array.unsafe_get tc (j0 + 29)));
      let v32 = Array.unsafe_get cab (j0 + 31) in
      is_ r (pA v32) (Array.unsafe_get tc (j0 + 31));
      let dd = dd + 3 in
      let v33 = Array.unsafe_get cab (j0 + 32) in
      if ig r (pA v33) < ig r (pB v33) then begin
        m.dyn <- dd;
        t := Array.unsafe_get tc (j0 + 32)
      end
      else begin
        d := dd;
        j := j0 + 33
      end
    end
  | 134 ->
    (* One full mcf write-back iteration, 58 micros: the arc-scan
       gather (arm 133's prefix) then two conditional exits and the
       store-side scatter; every load/store parks its own pc *)
    is_ r (pA v) (Array.unsafe_get tc j0);
    let v2 = Array.unsafe_get cab (j0 + 1) in
    is_ r (pA v2) (sx32 (ig r (pB v2) lsl Array.unsafe_get tc (j0 + 1)));
    let v3 = Array.unsafe_get cab (j0 + 2) in
    is_ r (pA v3) (sx32 (ig r (pB v3) + ig r (Array.unsafe_get tc (j0 + 2))));
    let dd = !d + 4 in
    let v4 = Array.unsafe_get cab (j0 + 3) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 3);
    m.dyn <- dd;
    is_ r (pA v4)
      (Memory.load_int m.memory (ig r (pB v4) + Array.unsafe_get tc (j0 + 3)));
    let v5 = Array.unsafe_get cab (j0 + 4) in
    is_ r (pA v5) (Array.unsafe_get tc (j0 + 4));
    let v6 = Array.unsafe_get cab (j0 + 5) in
    is_ r (pA v6) (sx32 (ig r (pB v6) lsl Array.unsafe_get tc (j0 + 5)));
    let v7 = Array.unsafe_get cab (j0 + 6) in
    is_ r (pA v7) (sx32 (ig r (pB v7) + ig r (Array.unsafe_get tc (j0 + 6))));
    let dd = dd + 4 in
    let v8 = Array.unsafe_get cab (j0 + 7) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 7);
    m.dyn <- dd;
    is_ r (pA v8)
      (Memory.load_int m.memory (ig r (pB v8) + Array.unsafe_get tc (j0 + 7)));
    let v9 = Array.unsafe_get cab (j0 + 8) in
    is_ r (pA v9) (Array.unsafe_get tc (j0 + 8));
    let v10 = Array.unsafe_get cab (j0 + 9) in
    is_ r (pA v10) (sx32 (ig r (pB v10) lsl Array.unsafe_get tc (j0 + 9)));
    let v11 = Array.unsafe_get cab (j0 + 10) in
    is_ r (pA v11) (sx32 (ig r (pB v11) + ig r (Array.unsafe_get tc (j0 + 10))));
    let dd = dd + 4 in
    let v12 = Array.unsafe_get cab (j0 + 11) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 11);
    m.dyn <- dd;
    is_ r (pA v12)
      (Memory.load_int m.memory (ig r (pB v12) + Array.unsafe_get tc (j0 + 11)));
    let v13 = Array.unsafe_get cab (j0 + 12) in
    is_ r (pA v13) (sx32 (ig r (pB v13) + ig r (Array.unsafe_get tc (j0 + 12))));
    let v14 = Array.unsafe_get cab (j0 + 13) in
    is_ r (pA v14) (Array.unsafe_get tc (j0 + 13));
    let v15 = Array.unsafe_get cab (j0 + 14) in
    is_ r (pA v15) (sx32 (ig r (pB v15) lsl Array.unsafe_get tc (j0 + 14)));
    let v16 = Array.unsafe_get cab (j0 + 15) in
    is_ r (pA v16) (sx32 (ig r (pB v16) + ig r (Array.unsafe_get tc (j0 + 15))));
    let dd = dd + 5 in
    let v17 = Array.unsafe_get cab (j0 + 16) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 16);
    m.dyn <- dd;
    is_ r (pA v17)
      (Memory.load_int m.memory (ig r (pB v17) + Array.unsafe_get tc (j0 + 16)));
    let v18 = Array.unsafe_get cab (j0 + 17) in
    is_ r (pA v18) (Array.unsafe_get tc (j0 + 17));
    let v19 = Array.unsafe_get cab (j0 + 18) in
    is_ r (pA v19)
      (if ig r (pB v19) > ig r (Array.unsafe_get tc (j0 + 18)) then 1 else 0);
    let v20 = Array.unsafe_get cab (j0 + 19) in
    is_ r (pA v20) (Array.unsafe_get tc (j0 + 19));
    let v21 = Array.unsafe_get cab (j0 + 20) in
    is_ r (pA v21) (sx32 (ig r (pB v21) lsl Array.unsafe_get tc (j0 + 20)));
    let v22 = Array.unsafe_get cab (j0 + 21) in
    is_ r (pA v22) (sx32 (ig r (pB v22) + ig r (Array.unsafe_get tc (j0 + 21))));
    let dd = dd + 6 in
    let v23 = Array.unsafe_get cab (j0 + 22) in
    fr.pc <- Array.unsafe_get aux.xpc (j0 + 22);
    m.dyn <- dd;
    is_ r (pA v23)
      (Memory.load_int m.memory (ig r (pB v23) + Array.unsafe_get tc (j0 + 22)));
    let v24 = Array.unsafe_get cab (j0 + 23) in
    is_ r (pA v24)
      (if ig r (pB v24) < ig r (Array.unsafe_get tc (j0 + 23)) then 1 else 0);
    let v25 = Array.unsafe_get cab (j0 + 24) in
    is_ r (pA v25) (ig r (pB v25) land ig r (Array.unsafe_get tc (j0 + 24)));
    let dd = dd + 3 in
    let v26 = Array.unsafe_get cab (j0 + 25) in
    if ig r (pA v26) = 0 then begin
      m.dyn <- dd;
      t := Array.unsafe_get tc (j0 + 25)
    end
    else begin
      let v27 = Array.unsafe_get cab (j0 + 26) in
      is_ r (pA v27) (Array.unsafe_get tc (j0 + 26));
      let v28 = Array.unsafe_get cab (j0 + 27) in
      is_ r (pA v28) (sx32 (ig r (pB v28) lsl Array.unsafe_get tc (j0 + 27)));
      let v29 = Array.unsafe_get cab (j0 + 28) in
      is_ r (pA v29) (sx32 (ig r (pB v29) + ig r (Array.unsafe_get tc (j0 + 28))));
      let dd = dd + 4 in
      let v30 = Array.unsafe_get cab (j0 + 29) in
      fr.pc <- Array.unsafe_get aux.xpc (j0 + 29);
      m.dyn <- dd;
      Memory.store_int m.memory
        (ig r (pB v30) + Array.unsafe_get tc (j0 + 29))
        (ig r (pA v30));
      let v31 = Array.unsafe_get cab (j0 + 30) in
      is_ r (pA v31) (Array.unsafe_get tc (j0 + 30));
      let v32 = Array.unsafe_get cab (j0 + 31) in
      is_ r (pA v32) (sx32 (ig r (pB v32) lsl Array.unsafe_get tc (j0 + 31)));
      let v33 = Array.unsafe_get cab (j0 + 32) in
      is_ r (pA v33) (sx32 (ig r (pB v33) + ig r (Array.unsafe_get tc (j0 + 32))));
      let dd = dd + 4 in
      let v34 = Array.unsafe_get cab (j0 + 33) in
      fr.pc <- Array.unsafe_get aux.xpc (j0 + 33);
      m.dyn <- dd;
      Memory.store_int m.memory
        (ig r (pB v34) + Array.unsafe_get tc (j0 + 33))
        (ig r (pA v34));
      let v35 = Array.unsafe_get cab (j0 + 34) in
      is_ r (pA v35) (Array.unsafe_get tc (j0 + 34));
      let v36 = Array.unsafe_get cab (j0 + 35) in
      is_ r (pA v36) (sx32 (ig r (pB v36) lsl Array.unsafe_get tc (j0 + 35)));
      let v37 = Array.unsafe_get cab (j0 + 36) in
      is_ r (pA v37) (sx32 (ig r (pB v37) + ig r (Array.unsafe_get tc (j0 + 36))));
      let dd = dd + 4 in
      let v38 = Array.unsafe_get cab (j0 + 37) in
      fr.pc <- Array.unsafe_get aux.xpc (j0 + 37);
      m.dyn <- dd;
      is_ r (pA v38)
        (Memory.load_int m.memory (ig r (pB v38) + Array.unsafe_get tc (j0 + 37)));
      let v39 = Array.unsafe_get cab (j0 + 38) in
      is_ r (pA v39) (Array.unsafe_get tc (j0 + 38));
      let dd = dd + 2 in
      let v40 = Array.unsafe_get cab (j0 + 39) in
      if ig r (pA v40) <> ig r (pB v40) then begin
        m.dyn <- dd;
        t := Array.unsafe_get tc (j0 + 39)
      end
      else begin
        let v41 = Array.unsafe_get cab (j0 + 40) in
        is_ r (pA v41) (Array.unsafe_get tc (j0 + 40));
        let v42 = Array.unsafe_get cab (j0 + 41) in
        is_ r (pA v42) (sx32 (ig r (pB v42) lsl Array.unsafe_get tc (j0 + 41)));
        let v43 = Array.unsafe_get cab (j0 + 42) in
        is_ r (pA v43) (sx32 (ig r (pB v43) + ig r (Array.unsafe_get tc (j0 + 42))));
        let dd = dd + 4 in
        let v44 = Array.unsafe_get cab (j0 + 43) in
        fr.pc <- Array.unsafe_get aux.xpc (j0 + 43);
        m.dyn <- dd;
        Memory.store_int m.memory
          (ig r (pB v44) + Array.unsafe_get tc (j0 + 43))
          (ig r (pA v44));
        let v45 = Array.unsafe_get cab (j0 + 44) in
        is_ r (pA v45) (sx32 (ig r (pB v45) + Array.unsafe_get tc (j0 + 44)));
        let v46 = Array.unsafe_get cab (j0 + 45) in
        is_ r (pA v46) (sx32 (ig r (pB v46) mod Array.unsafe_get tc (j0 + 45)));
        let v47 = Array.unsafe_get cab (j0 + 46) in
        is_ r (pA v47) (Array.unsafe_get tc (j0 + 46));
        let v48 = Array.unsafe_get cab (j0 + 47) in
        is_ r (pA v48) (Array.unsafe_get tc (j0 + 47));
        let v49 = Array.unsafe_get cab (j0 + 48) in
        is_ r (pA v49) (sx32 (ig r (pB v49) lsl Array.unsafe_get tc (j0 + 48)));
        let v50 = Array.unsafe_get cab (j0 + 49) in
        is_ r (pA v50) (sx32 (ig r (pB v50) + ig r (Array.unsafe_get tc (j0 + 49))));
        let dd = dd + 7 in
        let v51 = Array.unsafe_get cab (j0 + 50) in
        fr.pc <- Array.unsafe_get aux.xpc (j0 + 50);
        m.dyn <- dd;
        Memory.store_int m.memory
          (ig r (pB v51) + Array.unsafe_get tc (j0 + 50))
          (ig r (pA v51));
        let v52 = Array.unsafe_get cab (j0 + 51) in
        is_ r (pA v52) (Array.unsafe_get tc (j0 + 51));
        let v53 = Array.unsafe_get cab (j0 + 52) in
        is_ r (pA v53) (sx32 (ig r (pB v53) lsl Array.unsafe_get tc (j0 + 52)));
        let v54 = Array.unsafe_get cab (j0 + 53) in
        is_ r (pA v54) (sx32 (ig r (pB v54) + ig r (Array.unsafe_get tc (j0 + 53))));
        let dd = dd + 4 in
        let v55 = Array.unsafe_get cab (j0 + 54) in
        fr.pc <- Array.unsafe_get aux.xpc (j0 + 54);
        m.dyn <- dd;
        is_ r (pA v55)
          (Memory.load_int m.memory (ig r (pB v55) + Array.unsafe_get tc (j0 + 54)));
        let v57 = Array.unsafe_get cab (j0 + 56) in
        is_ r (pA v57) (Array.unsafe_get tc (j0 + 56));
        let dd = dd + 3 in
        let v58 = Array.unsafe_get cab (j0 + 57) in
        if ig r (pA v58) < ig r (pB v58) then begin
          m.dyn <- dd;
          t := Array.unsafe_get tc (j0 + 57)
        end
        else begin
          d := dd;
          j := j0 + 58
        end
    end
  end
  | _ -> assert false
  done;
  !t

(* Multi-wide superinstruction patterns, longest first: the greedy
   pass rewrites the first (longest) pattern whose member opcodes match
   at the scan point. *)
let fuse_patterns =
  [|
    ( [| 17; 17; 15; 2; 60; 3; 28; 15; 15; 15; 10; 16; 3; 26; 31; 15; 10; 15;
         26; 1; 61 |],
      130 );
    ( [| 3; 34; 15; 9; 3; 34; 15; 9; 3; 34; 15; 9; 15; 3; 34; 15; 9; 2; 41; 3;
         34; 15; 9; 39; 20; 68; 3; 34; 15; 12; 3; 34; 15; 12; 3; 34; 15; 9; 2; 57;
         3; 34; 15; 12; 26; 30; 2; 3; 34; 15; 12; 3; 34; 15; 9; 1; 2; 58 |],
      134 );
    ( [| 3; 34; 15; 9; 3; 34; 15; 9; 3; 34; 15; 9; 15; 3; 34; 15; 9; 2; 41; 3;
         34; 15; 9; 39; 20; 68; 3; 34; 15; 9; 1; 2; 58 |],
      133 );
    ([| 3; 34; 15; 9; 3; 34; 15; 9; 3; 34; 15; 9; 15 |], 131);
    ([| 3; 28; 15; 15; 15; 10; 16; 3 |], 113);
    ([| 3; 34; 15; 9; 3; 34; 15; 9 |], 117);
    ([| 3; 34; 15; 9; 39; 20; 68 |], 132);
    ([| 26; 31; 15; 10; 15; 26; 1; 61 |], 120);
    ([| 17; 17; 15; 2; 60; 26; 1; 61 |], 125);
    ([| 3; 34; 15; 9; 1; 2; 58 |], 128);
    ([| 26; 31; 15; 10; 15; 26; 1 |], 116);
    ([| 26; 31; 15; 10; 15; 26 |], 114);
    ([| 3; 34; 15; 9; 2; 41 |], 129);
    ([| 17; 17; 15; 2; 60 |], 115);
    ([| 3; 34; 15; 9; 2 |], 118);
    ([| 3; 34; 15; 9; 15 |], 119);
    ([| 3; 34; 15; 12; 1 |], 123);
    ([| 3; 34; 15; 9; 58 |], 124);
    ([| 3; 34; 15; 9 |], 105);
    ([| 3; 34; 15; 12 |], 106);
    ([| 17; 17; 15; 2 |], 107);
    ([| 15; 10; 16; 3 |], 108);
    ([| 15; 10; 15; 26 |], 109);
    ([| 3; 26; 31; 15 |], 110);
    ([| 28; 15; 15; 15 |], 111);
    ([| 3; 28; 15; 15 |], 112);
    ([| 2; 26; 1; 61 |], 121);
    ([| 2; 2; 61 |], 127);
    ([| 26; 1; 61 |], 126);
    ([| 39; 20; 68 |], 122);
  |]

(* The superinstruction pair table: hot micro bigrams (profiled on the
   mlang app suite — array-indexing chains la/slli/add around loads
   dominate) fused into the 80+ opcode range. -1 = not fusable. *)
let fuse_code c1 c2 =
  match (c1, c2) with
  | 15, 15 -> 80
  | 15, 2 -> 81
  | 17, 17 -> 82
  | 17, 15 -> 83
  | 28, 15 -> 84
  | 3, 28 -> 85
  | 3, 26 -> 86
  | 31, 15 -> 87
  | 26, 31 -> 88
  | 16, 3 -> 89
  | 34, 15 -> 90
  | 3, 34 -> 91
  | 26, 1 -> 92
  | 15, 3 -> 93
  | 15, 10 -> 96
  | 15, 9 -> 97
  | 15, 12 -> 98
  | 10, 15 -> 99
  | 10, 16 -> 100
  | 9, 3 -> 101
  | 9, 2 -> 102
  | 9, 15 -> 103
  | 9, 1 -> 104
  | _ -> -1

let trace_cap = 256
let trace_min = 3

(* Flatten a straight-line trace starting at [start]. Returns [None]
   when fewer than [trace_min] instructions fuse (the classic closure
   is at least as good then). *)
let build_trace (body : Code.d array) (ftags : bool array) start : trace option
    =
  let len = Array.length body in
  let cab = Array.make (trace_cap + 1) 0 in
  let c = Array.make (trace_cap + 1) 0 in
  let pcs = Array.make (trace_cap + 1) 0 in
  let fp = ref [] in
  let nfp = ref 0 in
  let n = ref 0 in
  let tagged pc = Array.length ftags > 0 && Array.unsafe_get ftags pc in
  let emit ?(a1 = 0) ?(b1 = 0) ?(c1 = 0) co pc =
    cab.(!n) <- (co lsl 40) lor (a1 lsl 20) lor b1;
    c.(!n) <- c1;
    pcs.(!n) <- pc;
    incr n
  in
  let rec walk pc =
    if !n >= trace_cap || pc >= len || tagged pc then pc
    else
      match body.(pc) with
      | Code.DCall _ | Code.DRetI _ | Code.DRetF _ | Code.DRetV -> pc
      | Code.DBini ((Ir.Instr.Div | Ir.Instr.Rem), _, _, 0) ->
        (* always traps: leave it to the classic closure *)
        pc
      | Code.DNop -> walk (pc + 1)
      | Code.DJmp t ->
        emit 1 pc;
        walk t
      | Code.DBr (op, ra, rb, t) ->
        if t <= pc then begin
          (* backward branch: assume taken (loop continues) *)
          emit (62 + icmp op) ~a1:ra ~b1:rb ~c1:(pc + 1) pc;
          walk t
        end
        else begin
          emit (56 + icmp op) ~a1:ra ~b1:rb ~c1:t pc;
          walk (pc + 1)
        end
      | Code.DBrz (op, ra, t) ->
        if t <= pc then begin
          emit (74 + icmp op) ~a1:ra ~c1:(pc + 1) pc;
          walk t
        end
        else begin
          emit (68 + icmp op) ~a1:ra ~c1:t pc;
          walk (pc + 1)
        end
      | Code.DLi (d, v) ->
        emit 2 ~a1:d ~c1:v pc;
        walk (pc + 1)
      | Code.DLa (d, addr) ->
        emit 3 ~a1:d ~c1:addr pc;
        walk (pc + 1)
      | Code.DLf (d, x) ->
        emit 4 ~a1:d ~b1:!nfp pc;
        fp := x :: !fp;
        incr nfp;
        walk (pc + 1)
      | Code.DMovI (d, s) ->
        emit 5 ~a1:d ~b1:s pc;
        walk (pc + 1)
      | Code.DMovF (d, s) ->
        emit 6 ~a1:d ~b1:s pc;
        walk (pc + 1)
      | Code.DI2f (d, s) ->
        emit 7 ~a1:d ~b1:s pc;
        walk (pc + 1)
      | Code.DF2i (d, s) ->
        emit 8 ~a1:d ~b1:s pc;
        walk (pc + 1)
      | Code.DLw (d, base, off) ->
        emit 9 ~a1:d ~b1:base ~c1:off pc;
        walk (pc + 1)
      | Code.DLb (d, base, off) ->
        emit 10 ~a1:d ~b1:base ~c1:off pc;
        walk (pc + 1)
      | Code.DLwf (d, base, off) ->
        emit 11 ~a1:d ~b1:base ~c1:off pc;
        walk (pc + 1)
      | Code.DSw (v, base, off) ->
        emit 12 ~a1:v ~b1:base ~c1:off pc;
        walk (pc + 1)
      | Code.DSb (v, base, off) ->
        emit 13 ~a1:v ~b1:base ~c1:off pc;
        walk (pc + 1)
      | Code.DSwf (v, base, off) ->
        emit 14 ~a1:v ~b1:base ~c1:off pc;
        walk (pc + 1)
      | Code.DBin (op, d, ra, rb) ->
        emit (15 + ibin op) ~a1:d ~b1:ra ~c1:rb pc;
        walk (pc + 1)
      | Code.DBini (op, d, ra, imm) ->
        let imm =
          match op with
          | Ir.Instr.Sll | Ir.Instr.Srl | Ir.Instr.Sra -> imm land 31
          | _ -> imm
        in
        emit (26 + ibin op) ~a1:d ~b1:ra ~c1:imm pc;
        walk (pc + 1)
      | Code.DCmp (op, d, ra, rb) ->
        emit (37 + icmp op) ~a1:d ~b1:ra ~c1:rb pc;
        walk (pc + 1)
      | Code.DFcmp (op, d, ra, rb) ->
        emit (43 + icmp op) ~a1:d ~b1:ra ~c1:rb pc;
        walk (pc + 1)
      | Code.DFbin (op, d, ra, rb) ->
        emit (49 + ifbin op) ~a1:d ~b1:ra ~c1:rb pc;
        walk (pc + 1)
      | Code.DFun (op, d, s) ->
        emit (53 + ifun op) ~a1:d ~b1:s pc;
        walk (pc + 1)
  in
  let end_pc = walk start in
  if !n < trace_min then None
  else begin
    let klen = !n in
    emit 0 ~a1:end_pc end_pc;
    (* Greedy superinstruction pairing over the finished sequence. The
       end micro (code 0) is never in the pair table, so it cannot be
       consumed as a second member. *)
    let fj = ref 0 in
    let match_at j (pat : int array) =
      let w = Array.length pat in
      j + w <= klen
      &&
      let ok = ref true in
      for k = 0 to w - 1 do
        if cab.(j + k) lsr 40 <> pat.(k) then ok := false
      done;
      !ok
    in
    while !fj < klen - 1 do
      let fc = ref (-1) and fw = ref 0 in
      let k = ref 0 in
      while !fc < 0 && !k < Array.length fuse_patterns do
        let pat, code = fuse_patterns.(!k) in
        if match_at !fj pat then begin
          fc := code;
          fw := Array.length pat
        end;
        incr k
      done;
      if !fc < 0 then begin
        let p = fuse_code (cab.(!fj) lsr 40) (cab.(!fj + 1) lsr 40) in
        if p >= 0 then begin
          fc := p;
          fw := 2
        end
      end;
      if !fc >= 0 then begin
        cab.(!fj) <- (cab.(!fj) land ((1 lsl 40) - 1)) lor (!fc lsl 40);
        fj := !fj + !fw
      end
      else incr fj
    done;
    Some
      {
        tcab = Array.sub cab 0 !n;
        ttc = Array.sub c 0 !n;
        taux =
          { xpc = Array.sub pcs 0 !n; xfp = Array.of_list (List.rev !fp) };
        tklen = klen;
      }
  end

(* [slow] is the classic per-instruction closure for the same pc: the
   stepwise path that makes timeouts land at exactly dyn = budget + 1
   when the trace's worst case could overrun the budget. *)
let mk_trace (tr : trace) (tbl : op array) (slow : op) : op =
  let cab = tr.tcab and tc = tr.ttc and aux = tr.taux and klen = tr.tklen in
 fun m ->
  if m.dyn + klen > m.budget then slow m
  else begin
    let fr = m.run_fr in
    (Array.unsafe_get tbl (run_trace m fr fr.iregs fr.fregs cab tc aux)) m
  end

let compile_func (code : Code.t) (tags : bool array array) fid
    (df : Code.dfunc) : op array =
  let body = df.Code.dbody in
  let len = Array.length body in
  let ftags = if Array.length tags > 0 then tags.(fid) else no_tags in
  let name = df.Code.name in
  (* Guard slot at index [len]: the validator guarantees terminators so
     it is unreachable, but a threaded chain must never fetch past the
     table. Same failure message as the reference loop. *)
  let guard : op =
   fun _ -> invalid_arg (Printf.sprintf "pc past end of %s" name)
  in
  let ops = Array.make (len + 1) guard in
  for pc = 0 to len - 1 do
    let tg = Array.length ftags > 0 && Array.unsafe_get ftags pc in
    ops.(pc) <- compile_instr code ops tg pc body.(pc)
  done;
  (* Overlay trace closures wherever a fusable run starts. Classic
     closures captured the [ops] array itself, so their successor
     dispatch — and every branch target — picks up the trace version
     automatically; the pre-overlay copy keeps the pure classic closure
     reachable for the near-budget fallback. *)
  let classic = Array.copy ops in
  for pc = 0 to len - 1 do
    match build_trace body ftags pc with
    | Some tr -> ops.(pc) <- mk_trace tr ops classic.(pc)
    | None -> ()
  done;
  ops

let compile ?(tags = ([||] : bool array array)) (code : Code.t) : image =
  {
    icode = code;
    itags = tags;
    iops =
      Array.mapi (fun fid df -> compile_func code tags fid df) code.Code.funcs;
    imem_strict = Memory.of_prog ~lenient:false code.Code.prog;
    imem_lenient = Memory.of_prog ~lenient:true code.Code.prog;
  }

(* The driver: re-entered once per frame switch (and once at start /
   after a resume). Mirrors the reference loop's per-dispatch pause
   check at each re-entry; within a frame the compiled chain handles
   pausing itself (see wbi/wbf). *)
let exec (m : Machine.t) =
  let fast = m.fast in
  while is_running m do
    match m.stack with
    | fr :: _ ->
      m.cur_fid <- fr.fid;
      m.run_fr <- fr;
      if m.inj_seen >= m.pause_at then raise Pause_exn;
      (Array.unsafe_get (Array.unsafe_get fast fr.fid) fr.pc) m
    | [] -> assert false
  done
