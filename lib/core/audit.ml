(* Dynamic taint audit of the tagging analysis (DESIGN §11).

   The tagging analysis promises: under [Protect_control], no injected
   fault can reach a branch operand along a memory-free def-use chain —
   every register chain that feeds control is in CVar and therefore
   protected. The analysis deliberately does NOT track values through
   memory (no disambiguation), so chains that round-trip through a
   store/load, or pass through a load with a corrupted base, are the
   documented residual, not violations.

   The audit checks the promise empirically: run a campaign with the
   shadow-taint interpreter and assert that no trial observed a
   memory-free control contamination ([Taint.summary.control_free]).
   Under [Protect_all] nothing is injectable at all, so the stronger
   assertion is that taint never even propagates. [Protect_nothing]
   promises nothing — its (expected, non-zero) control contamination is
   reported as the positive control of the experiment. *)

type violation = {
  trial : int;
  site : (string * int) option;
      (* (function, body index) of the first memory-free branch whose
         operand was tainted, from the trial's [Taint.summary] *)
}

type report = {
  policy : Policy.t;
  errors : int;            (* per-trial faults requested *)
  errors_planned : int;    (* after the injectable-pool cap *)
  trials : int;
  seed : int;
  injectable_total : int;
  stats : Stats.t;         (* includes the fault-flow class counters *)
  control_free : int;      (* memory-free control contaminations, summed *)
  control_via_memory : int;(* through-memory residual, summed *)
  address_hits : int;
  trap_operand_hits : int;
  memory_hits : int;
  violations : violation list;  (* trials breaking the policy's promise *)
}

let run ?jobs (p : Campaign.prepared) ~errors ~trials ~seed : report =
  let s = Campaign.run ?jobs ~taint:true p ~errors ~trials ~seed in
  let control_free = ref 0
  and control_via_memory = ref 0
  and address_hits = ref 0
  and trap_operand_hits = ref 0
  and memory_hits = ref 0 in
  let violations = ref [] in
  List.iter
    (fun (t : Campaign.trial) ->
      match t.Campaign.fault_flow with
      | None -> ()
      | Some f ->
        control_free := !control_free + f.Sim.Taint.control_free;
        control_via_memory := !control_via_memory + f.Sim.Taint.control_via_memory;
        address_hits := !address_hits + f.Sim.Taint.address_hits;
        trap_operand_hits := !trap_operand_hits + f.Sim.Taint.trap_operand_hits;
        memory_hits := !memory_hits + f.Sim.Taint.memory_hits;
        let broken =
          match p.Campaign.policy with
          | Policy.Protect_control -> f.Sim.Taint.control_free > 0
          | Policy.Protect_all ->
            (* nothing is injectable: any propagation is a violation *)
            f.Sim.Taint.flow <> Sim.Taint.Vanished
          | Policy.Protect_nothing -> false
        in
        if broken then
          violations :=
            { trial = t.Campaign.index; site = f.Sim.Taint.first_control }
            :: !violations)
    s.Campaign.trials;
  {
    policy = p.Campaign.policy;
    errors;
    errors_planned = s.Campaign.errors_planned;
    trials;
    seed;
    injectable_total = p.Campaign.injectable_total;
    stats = s.Campaign.stats;
    control_free = !control_free;
    control_via_memory = !control_via_memory;
    address_hits = !address_hits;
    trap_operand_hits = !trap_operand_hits;
    memory_hits = !memory_hits;
    violations = List.rev !violations;
  }

let sound (r : report) = r.violations = []

let describe (r : report) =
  match r.violations with
  | [] ->
    Printf.sprintf "%s: sound (%d trials, ctl-free=0, ctl-via-mem=%d)"
      (Policy.to_string r.policy) r.trials r.control_via_memory
  | v :: _ ->
    Printf.sprintf "%s: VIOLATED in %d/%d trials (first: trial %d%s)"
      (Policy.to_string r.policy)
      (List.length r.violations)
      r.trials v.trial
      (match v.site with
       | Some (f, pc) -> Printf.sprintf " at %s[%d]" f pc
       | None -> "")

let check (r : report) =
  if not (sound r) then failwith ("Audit.check: " ^ describe r)
