(** Fault-injection campaigns: the experimental loop of the paper.

    Typical use:
    {[
      let target = Campaign.of_prog prog in
      let prepared = Campaign.prepare target Policy.Protect_control in
      let summary =
        Campaign.run prepared ~score ~errors:20 ~trials:40 ~seed:7
      in
      Campaign.pct_catastrophic summary
    ]}

    Trials are scored at the source: [score] runs inside the trial, on
    the worker domain, and only its [float] survives. A {!summary}
    never retains a simulator result (in particular no [Memory.t]), so
    campaigns cost O(1) memory per trial and nothing heavy crosses
    domains. {!run_trial_result} is the escape hatch for callers that
    need a trial's final memory image. *)

type target = {
  code : Sim.Code.t;
  tagging : Tagging.t;
  baseline : Sim.Interp.result;  (** fault-free run, with exec counts *)
  lenient : bool;  (** sim-safe sparse-memory model for injected runs *)
  proto : Sim.Memory.t;
      (** prototype trial image: globals laid out once, per-trial
          memories are blit-copies *)
  engine : Sim.Interp.engine;
      (** which interpreter executes trials (default [Fast]); the
          baseline and taint trials always use the reference loop *)
  baseline_digest : string;
      (** {!Sim.Memory.digest} of the baseline's final image, computed
          once per target so batch consumers (the result cache, the
          matrix sweep runner) key many cells without re-digesting *)
}

type prepared = {
  target : target;
  policy : Policy.t;
  tags : bool array array;
  injectable_total : int;
      (** dynamic executions of injectable instructions — the sum of
          the baseline's exec counts over tagged slots *)
  budget : int;  (** timeout bound: 10x the fault-free dynamic count *)
  snapshots : Sim.Snapshot.t option;
      (** golden checkpoints for fork-from-prefix trials; [None] iff
          checkpointing was disabled *)
  image : Sim.Interp.image option;
      (** threaded-closure compilation of (code, tags) for the fast
          engine; [None] iff the target runs the reference engine *)
}

type trial = {
  index : int;
  outcome : Outcome.t;  (** compact classification with crash site *)
  dyn_count : int;  (** dynamic instructions the trial executed *)
  faults_planned : int;
      (** the plan's actual size — the request capped at the injectable
          pool ({!Fault_model.planned}), not the raw [errors] argument *)
  faults_landed : int;
  fidelity : float option;
      (** [Some] iff the trial completed and a scorer was supplied *)
  fault_flow : Sim.Taint.summary option;
      (** [Some] iff the trial ran with taint on *)
}

type summary = {
  trials : trial list;
  stats : Stats.t;
  errors_requested : int;  (** the [errors] argument *)
  errors_planned : int;  (** per-trial plan size after the pool cap *)
  resumed_trials : int;
      (** trials that fast-forwarded past a non-empty prefix by
          restoring a checkpoint (the checkpoint hit count) *)
  skipped_dyn : int;
      (** dynamic instructions those restores avoided re-executing *)
}

val timeout_factor : int

val of_prog :
  ?protect_addresses:bool ->
  ?lenient:bool ->
  ?engine:Sim.Interp.engine ->
  Ir.Prog.t ->
  target
(** Compile, tag and run the fault-free baseline. [lenient] defaults to
    [true] — the SimpleScalar sim-safe memory model the paper used.
    [engine] (default [Fast]) selects the trial interpreter; both
    engines produce bit-identical summaries (the differential suite in
    [test_engine] pins this). *)

val injectable_pool : target -> bool array array -> int
(** Size of the injectable pool under a tag mask: the sum of the
    baseline's exec counts over tagged slots. What {!prepare} computes,
    exposed separately so batch callers (the matrix sweep runner) can
    detect an empty pool — and skip the cell — without paying for the
    checkpointing pass and engine compilation a full prepare implies. *)

val prepare : ?checkpoint_stride:int -> target -> Policy.t -> prepared
(** Size the injectable pool (arithmetically, from the baseline's exec
    counts over the policy's tag mask — no profiling interpretation)
    and run the golden checkpointing pass: one fault-free execution
    recording immutable snapshots every [checkpoint_stride] injectable
    ordinals. Trials in {!run} then resume from the nearest checkpoint
    at or before their first planned fault instead of re-executing the
    fault-free prefix — bit-exact for any stride and any [jobs].

    [checkpoint_stride] defaults to {!Sim.Snapshot.auto_stride}; [0]
    disables checkpointing (trials run from scratch); negative values
    raise [Invalid_argument]. Taint trials ({!run} with [~taint:true])
    always run from scratch — the shadow-taint twin is not
    snapshotable. *)

val run_trial_result :
  ?taint:bool ->
  prepared ->
  errors:int ->
  rng:Random.State.t ->
  Sim.Interp.result
(** Escape hatch: one trial's raw simulator result, memory image
    included — for output rendering and debugging. Use {!trial_rng} to
    reproduce the RNG of a {!run} trial. [taint] runs the shadow-taint
    interpreter (identical behaviour and fault landings, plus a
    fault-flow summary). *)

val run_trial :
  ?score:(Sim.Interp.result -> float) ->
  ?taint:bool ->
  prepared ->
  errors:int ->
  rng:Random.State.t ->
  index:int ->
  trial

val run_trial_skip :
  ?score:(Sim.Interp.result -> float) ->
  ?taint:bool ->
  prepared ->
  errors:int ->
  rng:Random.State.t ->
  index:int ->
  trial * int
(** {!run_trial} plus the dynamic instructions a checkpoint restore let
    the trial skip (0 when it ran from scratch) — the exact per-trial
    unit {!run} aggregates into [resumed_trials]/[skipped_dyn].
    {!Memo.run} executes its cache misses through this so incremental
    and monolithic campaigns produce bit-identical trial records. *)

val trial_rng :
  seed:int -> errors:int -> policy:Policy.t -> int -> Random.State.t
(** The RNG {!run} derives for trial [i]: a function of
    [(seed, i, errors, policy)] only, via {!Policy.seed_tag}. *)

val run :
  ?jobs:int ->
  ?score:(Sim.Interp.result -> float) ->
  ?taint:bool ->
  prepared ->
  errors:int ->
  trials:int ->
  seed:int ->
  summary
(** Deterministic: trial [i] uses {!trial_rng}, so trials are
    order-independent. [jobs] fans the trials out over that many
    domains (default [Domain.recommended_domain_count () - 1], clamped
    to [\[1, trials\]]); the summary is identical for every [jobs]
    value, assembled in trial-index order. [score] is applied on the
    worker domain to each completed trial. [taint] runs every trial
    under the shadow-taint interpreter and feeds the fault-flow
    counters in [stats]. *)

val errors_capped : summary -> bool
(** True when the injectable pool was smaller than the request, so each
    plan holds [errors_planned] < [errors_requested] faults. *)

val n : summary -> int
val crashes : summary -> int
val infinite : summary -> int
val completed : summary -> int
val pct_catastrophic : summary -> float

val mean_fidelity : summary -> float option
(** [None] when no completed trial was scored — never [nan]. *)

val fidelities : summary -> float list
(** Fidelities of the scored completed trials, in trial order. *)
