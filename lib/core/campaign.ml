(* Fault-injection campaigns: the experimental loop of the paper.

   A [target] bundles a compiled program with its tagging analysis and
   a fault-free baseline run per policy. Each trial draws a fresh plan
   (deterministically from [seed] and the trial number), executes, and
   classifies the outcome. "Infinite execution" is a dynamic count
   above [timeout_factor] x the fault-free count.

   Trials are scored at the source: the optional [score] callback is
   applied to the raw simulator result inside the trial, and only the
   resulting [fidelity : float option] is retained. A summary therefore
   never holds a live [Memory.t] — campaign memory is O(1) per trial
   instead of O(memory image), and nothing heavy crosses domains in
   [Pool.map_n]. Callers that genuinely need the final memory image
   (output rendering, debugging) use the {!run_trial_result} escape
   hatch, which returns the raw [Sim.Interp.result] for one trial. *)

type target = {
  code : Sim.Code.t;
  tagging : Tagging.t;
  baseline : Sim.Interp.result;  (* fault-free reference run *)
  lenient : bool;                (* sim-safe sparse-memory model *)
  profile_memo : (bool array array, int) Hashtbl.t;
      (* policy mask -> injectable_total: policies with identical masks
         share one profiling run *)
}

type prepared = {
  target : target;
  policy : Policy.t;
  tags : bool array array;
  injectable_total : int;  (* dynamic injectable instructions under policy *)
  budget : int;
}

type trial = {
  index : int;
  outcome : Outcome.t;
  dyn_count : int;
  faults_planned : int;
      (* the plan's actual size: the request capped at the injectable
         pool ([Fault_model.planned]), not the raw [errors] argument *)
  faults_landed : int;
  fidelity : float option;
      (* [Some] iff the trial completed and a scorer was supplied *)
  fault_flow : Sim.Taint.summary option;
      (* [Some] iff the trial ran with taint on *)
}

type summary = {
  trials : trial list;
  stats : Stats.t;
  errors_requested : int;  (* the [errors] argument *)
  errors_planned : int;    (* per-trial plan size after the pool cap *)
}

let timeout_factor = 10

(* [lenient] defaults to true: the paper ran on SimpleScalar sim-safe,
   whose sparse memory does not fault wild accesses. *)
let of_prog ?protect_addresses ?(lenient = true) (prog : Ir.Prog.t) =
  let code = Sim.Code.of_prog prog in
  let tagging = Tagging.compute ?protect_addresses prog in
  let baseline = Sim.Interp.run_exn ~count_exec:true code in
  { code; tagging; baseline; lenient; profile_memo = Hashtbl.create 4 }

let prepare (t : target) (policy : Policy.t) =
  let tags = Tagging.mask t.tagging policy in
  (* Profiling pass: count dynamic injectable instructions. Memoized on
     the policy mask — distinct policies with the same mask (and
     repeated [prepare] calls) share one profiling interpretation. *)
  let injectable_total =
    match Hashtbl.find_opt t.profile_memo tags with
    | Some n -> n
    | None ->
      let injection = Fault_model.profiling_injection ~tags in
      let r = Sim.Interp.run ~injection t.code in
      let n =
        match r.Sim.Interp.outcome with
        | Sim.Interp.Done _ -> r.Sim.Interp.injectable_seen
        | _ -> failwith "profiling run failed"
      in
      Hashtbl.replace t.profile_memo tags n;
      n
  in
  {
    target = t;
    policy;
    tags;
    injectable_total;
    budget = timeout_factor * t.baseline.Sim.Interp.dyn_count;
  }

(* Escape hatch: the raw simulator result of one trial, memory image
   included. Everything else should go through {!run_trial}/{!run},
   which discard the image after scoring. *)
let run_trial_result ?(taint = false) (p : prepared) ~errors ~rng :
    Sim.Interp.result =
  let plan =
    Fault_model.make_plan ~rng ~injectable_total:p.injectable_total ~errors
  in
  let injection = Fault_model.injection ~tags:p.tags ~plan in
  Sim.Interp.run ~injection ~lenient:p.target.lenient ~budget:p.budget ~taint
    p.target.code

let run_trial ?score ?taint (p : prepared) ~errors ~rng ~index : trial =
  let r = run_trial_result ?taint p ~errors ~rng in
  let outcome = Outcome.of_result r in
  let fidelity =
    match (outcome, score) with
    | Outcome.Completed, Some score -> Some (score r)
    | _ -> None
  in
  {
    index;
    outcome;
    dyn_count = r.Sim.Interp.dyn_count;
    faults_planned =
      Fault_model.planned ~injectable_total:p.injectable_total ~errors;
    faults_landed = r.Sim.Interp.faults_landed;
    fidelity;
    fault_flow = r.Sim.Interp.fault_flow;
  }

(* Trial [i]'s RNG depends only on [(seed, i, errors, policy)] — not on
   any other trial — so trials may run in any order, on any domain, and
   still produce bit-exact results. [Policy.seed_tag] replaces the old
   [Hashtbl.hash policy] component with a stable explicit encoding
   (frozen to the same values, so historic outputs are unchanged). *)
let trial_rng ~seed ~errors ~policy index =
  Random.State.make [| seed; index; errors; Policy.seed_tag policy |]

let run ?jobs ?score ?taint (p : prepared) ~errors ~trials ~seed : summary =
  let results =
    Pool.map_n ?jobs trials (fun i ->
        let rng = trial_rng ~seed ~errors ~policy:p.policy i in
        run_trial ?score ?taint p ~errors ~rng ~index:i)
  in
  let stats =
    Array.fold_left
      (fun acc t ->
        let flow =
          Option.map (fun (s : Sim.Taint.summary) -> s.Sim.Taint.flow)
            t.fault_flow
        in
        Stats.observe ?flow acc t.outcome ~fidelity:t.fidelity)
      Stats.empty results
  in
  {
    trials = Array.to_list results;
    stats;
    errors_requested = errors;
    errors_planned =
      Fault_model.planned ~injectable_total:p.injectable_total ~errors;
  }

(* True when the pool was too small for the request, so each plan holds
   fewer faults than asked — surfaced by the CLI next to the summary. *)
let errors_capped (s : summary) = s.errors_planned < s.errors_requested

let n (s : summary) = s.stats.Stats.n
let crashes (s : summary) = s.stats.Stats.crashes
let infinite (s : summary) = s.stats.Stats.infinite
let completed (s : summary) = s.stats.Stats.completed
let pct_catastrophic (s : summary) = Stats.pct_catastrophic s.stats
let mean_fidelity (s : summary) = Stats.mean_fidelity s.stats

(* Fidelities of the scored completed trials, in trial order. *)
let fidelities (s : summary) = List.filter_map (fun t -> t.fidelity) s.trials
