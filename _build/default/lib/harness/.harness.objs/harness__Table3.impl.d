lib/harness/table3.ml: Apps Core Experiment List Sim Tablefmt
