(* Synthetic greyscale imagery.

   Stand-in for the MiBench/SPEC image inputs: what matters to the
   paper's fidelity trends is structural content (edges for Susan,
   temporal correlation for MPEG, embedded objects for ART), which
   these generators provide deterministically from a seed. Pixels are
   0..255 ints in row-major order. *)

type t = {
  width : int;
  height : int;
  pixels : int array;
}

let create width height = { width; height; pixels = Array.make (width * height) 0 }

let get img x y = img.pixels.((y * img.width) + x)

let set img x y v =
  img.pixels.((y * img.width) + x) <- max 0 (min 255 v)

let fill_gradient img ~dx ~dy =
  for y = 0 to img.height - 1 do
    for x = 0 to img.width - 1 do
      set img x y (((x * dx) + (y * dy)) land 255)
    done
  done

let draw_rect img ~x0 ~y0 ~w ~h ~level =
  for y = y0 to min (img.height - 1) (y0 + h - 1) do
    for x = x0 to min (img.width - 1) (x0 + w - 1) do
      if x >= 0 && y >= 0 then set img x y level
    done
  done

let draw_disc img ~cx ~cy ~r ~level =
  for y = max 0 (cy - r) to min (img.height - 1) (cy + r) do
    for x = max 0 (cx - r) to min (img.width - 1) (cx + r) do
      let dx = x - cx and dy = y - cy in
      if (dx * dx) + (dy * dy) <= r * r then set img x y level
    done
  done

let add_noise img rng ~amplitude =
  for i = 0 to Array.length img.pixels - 1 do
    let n = Rng.range rng (-amplitude) (amplitude + 1) in
    img.pixels.(i) <- max 0 (min 255 (img.pixels.(i) + n))
  done

(* A structured test scene: gradient background, a bright rectangle, a
   dark disc and mild sensor noise — enough edges for Susan to have
   meaningful output. *)
let scene ~seed ~width ~height =
  let rng = Rng.make seed in
  let img = create width height in
  fill_gradient img ~dx:3 ~dy:2;
  draw_rect img
    ~x0:(width / 6)
    ~y0:(height / 6)
    ~w:(width / 3)
    ~h:(height / 3)
    ~level:220;
  draw_disc img
    ~cx:(2 * width / 3)
    ~cy:(2 * height / 3)
    ~r:(width / 6)
    ~level:40;
  add_noise img rng ~amplitude:4;
  img

(* A short video: the rectangle slides one pixel per frame, giving the
   P/B-frame encoder real temporal redundancy. *)
let video ~seed ~width ~height ~frames =
  let rng = Rng.make seed in
  List.init frames (fun t ->
      let img = create width height in
      fill_gradient img ~dx:2 ~dy:1;
      draw_rect img
        ~x0:((width / 6) + t)
        ~y0:(height / 4)
        ~w:(width / 3)
        ~h:(height / 3)
        ~level:210;
      draw_disc img
        ~cx:((2 * width / 3) - t)
        ~cy:(2 * height / 3)
        ~r:(width / 7)
        ~level:60;
      add_noise img rng ~amplitude:3;
      img)

(* A "thermal image" with a known object stamped at a known window,
   for the ART recognition scan. [object_pixels] is pasted at
   [(ox, oy)] over a dim noisy background. *)
let thermal ~seed ~width ~height ~obj ~ox ~oy =
  let rng = Rng.make seed in
  let img = create width height in
  for i = 0 to Array.length img.pixels - 1 do
    img.pixels.(i) <- 20 + Rng.int rng 25
  done;
  let ow = obj.width and oh = obj.height in
  for y = 0 to oh - 1 do
    for x = 0 to ow - 1 do
      if ox + x < width && oy + y < height then
        set img (ox + x) (oy + y) (get obj x y)
    done
  done;
  img
