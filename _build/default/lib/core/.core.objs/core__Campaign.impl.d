lib/core/campaign.ml: Fault_model Hashtbl Ir List Outcome Policy Random Sim Tagging
