(** Single-bit-upset fault model (paper Section 4): a fixed number of
    bit flips placed uniformly at random, without replacement, over the
    dynamic executions of injectable instructions. *)

type plan = (int, int) Hashtbl.t
(** injectable-instruction ordinal -> bit position (0..63; folded onto
    0..31 for integer destinations by the interpreter) *)

val planned : injectable_total:int -> errors:int -> int
(** How many faults a plan will actually hold:
    [min errors injectable_total], and [0] for an empty population —
    the cap campaigns must report instead of the raw request. *)

val make_plan :
  rng:Random.State.t -> injectable_total:int -> errors:int -> plan
(** Draws {!planned} distinct ordinals uniformly without replacement.
    Sparse requests (≤ half the population) use rejection sampling with
    the historical RNG stream — seeds reproduce published goldens;
    denser requests switch to a partial Fisher–Yates shuffle, which
    stays O(wanted) where rejection sampling degenerates near
    saturation. *)

val injection : tags:bool array array -> plan:plan -> Sim.Interp.injection

val profiling_injection : tags:bool array array -> Sim.Interp.injection
(** Empty plan under real tags: counts injectable dynamic instructions
    without perturbing anything. *)
