(* All benchmark applications, in the paper's Table 1 order. *)

let all : App.t list =
  [
    Susan.app;
    Mpeg.app;
    Mcf.app;
    Blowfish.app;
    Adpcm.app;
    Gsm.app;
    Art.app;
  ]

let find name = List.find_opt (fun (a : App.t) -> a.App.name = name) all

let names = List.map (fun (a : App.t) -> a.App.name) all
