test/test_parser.ml: Alcotest Array Core Ir Mlang Sim
