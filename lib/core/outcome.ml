(* Classification of an injected run (paper Section 5: "catastrophic
   failures (infinite runs or crashes)" versus completed runs, which
   are then scored by the application's fidelity measure).

   The classification is compact: it never retains the simulator
   result it was derived from (in particular no [Memory.t] image), so
   campaigns can hold thousands of classified trials in O(1) memory
   per trial. Crashes carry structured provenance — the trap and the
   site (function, pc) the interpreter attributed it to. *)

type site = {
  func : string;  (* function containing the trapping instruction *)
  pc : int;       (* body index of that instruction *)
}

type t =
  | Crash of Sim.Trap.t * site option
  | Infinite  (* exceeded the dynamic-instruction budget *)
  | Completed

let of_result (r : Sim.Interp.result) =
  match r.Sim.Interp.outcome with
  | Sim.Interp.Trapped t ->
    let site =
      Option.map (fun (func, pc) -> { func; pc }) r.Sim.Interp.trap_site
    in
    Crash (t, site)
  | Sim.Interp.Timeout -> Infinite
  | Sim.Interp.Done _ -> Completed

let is_catastrophic = function
  | Crash _ | Infinite -> true
  | Completed -> false

let site_to_string { func; pc } = Printf.sprintf "%s+%d" func pc

(* Frozen wording: campaign text outputs and golden fingerprints use
   these strings. Site provenance is [describe]'s business. *)
let to_string = function
  | Crash (t, _) -> "crash: " ^ Sim.Trap.to_string t
  | Infinite -> "infinite execution"
  | Completed -> "completed"

let describe = function
  | Crash (t, Some s) ->
    Printf.sprintf "crash: %s at %s" (Sim.Trap.to_string t) (site_to_string s)
  | (Crash (_, None) | Infinite | Completed) as o -> to_string o

let pp fmt t = Format.pp_print_string fmt (to_string t)
