lib/ir/ty.ml: Format Reg
