lib/workloads/network_gen.ml: Array Fidelity List Rng
