(* Instruction set of the MIPS-like IR.

   The vocabulary matches what the paper's static analysis needs:
   register-to-register ALU/FPU arithmetic, immediate forms, loads and
   stores through a base register + byte offset, conditional branches,
   unconditional jumps, direct calls and returns. Labels are pseudo
   instructions resolved by the assembler in [Func]. *)

type label = string

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra

type cmpop =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type fbinop =
  | Fadd
  | Fsub
  | Fmul
  | Fdiv

type funop =
  | Fneg
  | Fabs
  | Fsqrt

type t =
  | Li of Reg.t * int32                      (* load integer immediate *)
  | Lf of Reg.t * float                      (* load float immediate *)
  | La of Reg.t * string                     (* load address of global *)
  | Mov of Reg.t * Reg.t                     (* move, same bank *)
  | Bin of binop * Reg.t * Reg.t * Reg.t     (* dst, src1, src2 *)
  | Bini of binop * Reg.t * Reg.t * int32    (* dst, src, imm *)
  | Cmp of cmpop * Reg.t * Reg.t * Reg.t     (* int compare, dst gets 0/1 *)
  | Fbin of fbinop * Reg.t * Reg.t * Reg.t
  | Fun_ of funop * Reg.t * Reg.t
  | Fcmp of cmpop * Reg.t * Reg.t * Reg.t    (* float compare, int dst *)
  | I2f of Reg.t * Reg.t                     (* float dst, int src *)
  | F2i of Reg.t * Reg.t                     (* int dst, float src; truncates *)
  | Lw of Reg.t * Reg.t * int                (* int dst, base, byte offset *)
  | Sw of Reg.t * Reg.t * int                (* int src, base, byte offset *)
  | Lb of Reg.t * Reg.t * int                (* byte load, zero-extended *)
  | Sb of Reg.t * Reg.t * int                (* byte store, low 8 bits *)
  | Lwf of Reg.t * Reg.t * int               (* float dst, base, offset *)
  | Swf of Reg.t * Reg.t * int               (* float src, base, offset *)
  | Br of cmpop * Reg.t * Reg.t * label      (* branch if cmp holds *)
  | Brz of cmpop * Reg.t * label             (* branch if (r cmp 0) holds *)
  | Jmp of label
  | Call of { dst : Reg.t option; func : string; args : Reg.t list }
  | Ret of Reg.t option
  | Label of label
  | Nop

(* ------------------------------------------------------------------ *)
(* Def/use structure, the raw material of every analysis.              *)

let def = function
  | Li (d, _)
  | Lf (d, _)
  | La (d, _)
  | Mov (d, _)
  | Bin (_, d, _, _)
  | Bini (_, d, _, _)
  | Cmp (_, d, _, _)
  | Fbin (_, d, _, _)
  | Fun_ (_, d, _)
  | Fcmp (_, d, _, _)
  | I2f (d, _)
  | F2i (d, _)
  | Lw (d, _, _)
  | Lb (d, _, _)
  | Lwf (d, _, _) ->
    Some d
  | Call { dst; _ } -> dst
  | Sw _ | Sb _ | Swf _ | Br _ | Brz _ | Jmp _ | Ret _ | Label _ | Nop -> None

let uses = function
  | Li _ | Lf _ | La _ | Jmp _ | Label _ | Nop -> []
  | Mov (_, s) | Bini (_, _, s, _) | Fun_ (_, _, s) | I2f (_, s) | F2i (_, s)
    ->
    [ s ]
  | Bin (_, _, a, b) | Cmp (_, _, a, b) | Fbin (_, _, a, b) | Fcmp (_, _, a, b)
    ->
    [ a; b ]
  | Lw (_, base, _) | Lb (_, base, _) | Lwf (_, base, _) -> [ base ]
  | Sw (v, base, _) | Sb (v, base, _) | Swf (v, base, _) -> [ v; base ]
  | Br (_, a, b, _) -> [ a; b ]
  | Brz (_, a, _) -> [ a ]
  | Call { args; _ } -> args
  | Ret (Some r) -> [ r ]
  | Ret None -> []

(* Registers used to form a memory address. Corrupting these produces a
   wild access, so the protection analysis treats them like control. *)
let addr_uses = function
  | Lw (_, base, _) | Lb (_, base, _) | Lwf (_, base, _)
  | Sw (_, base, _) | Sb (_, base, _) | Swf (_, base, _) ->
    [ base ]
  | _ -> []

(* The value operand of a store: written to memory and not tracked
   further by the static analysis (no memory disambiguation). *)
let stored_value = function
  | Sw (v, _, _) | Sb (v, _, _) | Swf (v, _, _) -> Some v
  | _ -> None

let is_control = function
  | Br _ | Brz _ | Jmp _ | Ret _ -> true
  | _ -> false

let is_branch = function Br _ | Brz _ -> true | _ -> false

let branch_target = function
  | Br (_, _, _, l) | Brz (_, _, l) | Jmp l -> Some l
  | _ -> None

let is_terminator = function
  | Br _ | Brz _ | Jmp _ | Ret _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Printing. *)

let string_of_binop = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"

let string_of_cmpop = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let string_of_fbinop = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let string_of_funop = function
  | Fneg -> "fneg"
  | Fabs -> "fabs"
  | Fsqrt -> "fsqrt"

let to_string i =
  let r = Reg.to_string in
  match i with
  | Li (d, n) -> Printf.sprintf "li    %s, %ld" (r d) n
  | Lf (d, x) -> Printf.sprintf "lf    %s, %h" (r d) x
  | La (d, g) -> Printf.sprintf "la    %s, %s" (r d) g
  | Mov (d, s) -> Printf.sprintf "mov   %s, %s" (r d) (r s)
  | Bin (op, d, a, b) ->
    Printf.sprintf "%-5s %s, %s, %s" (string_of_binop op) (r d) (r a) (r b)
  | Bini (op, d, a, n) ->
    Printf.sprintf "%-5s %s, %s, %ld" (string_of_binop op ^ "i") (r d) (r a) n
  | Cmp (op, d, a, b) ->
    Printf.sprintf "s%-4s %s, %s, %s" (string_of_cmpop op) (r d) (r a) (r b)
  | Fbin (op, d, a, b) ->
    Printf.sprintf "%-5s %s, %s, %s" (string_of_fbinop op) (r d) (r a) (r b)
  | Fun_ (op, d, s) ->
    Printf.sprintf "%-5s %s, %s" (string_of_funop op) (r d) (r s)
  | Fcmp (op, d, a, b) ->
    Printf.sprintf "fs%-3s %s, %s, %s" (string_of_cmpop op) (r d) (r a) (r b)
  | I2f (d, s) -> Printf.sprintf "i2f   %s, %s" (r d) (r s)
  | F2i (d, s) -> Printf.sprintf "f2i   %s, %s" (r d) (r s)
  | Lw (d, b, o) -> Printf.sprintf "lw    %s, %d(%s)" (r d) o (r b)
  | Sw (v, b, o) -> Printf.sprintf "sw    %s, %d(%s)" (r v) o (r b)
  | Lb (d, b, o) -> Printf.sprintf "lbu   %s, %d(%s)" (r d) o (r b)
  | Sb (v, b, o) -> Printf.sprintf "sb    %s, %d(%s)" (r v) o (r b)
  | Lwf (d, b, o) -> Printf.sprintf "lwf   %s, %d(%s)" (r d) o (r b)
  | Swf (v, b, o) -> Printf.sprintf "swf   %s, %d(%s)" (r v) o (r b)
  | Br (op, a, b, l) ->
    Printf.sprintf "b%-4s %s, %s, %s" (string_of_cmpop op) (r a) (r b) l
  | Brz (op, a, l) ->
    Printf.sprintf "b%sz  %s, %s" (string_of_cmpop op) (r a) l
  | Jmp l -> Printf.sprintf "j     %s" l
  | Call { dst; func; args } ->
    let args = String.concat ", " (List.map r args) in
    let dst = match dst with None -> "" | Some d -> r d ^ " = " in
    Printf.sprintf "%scall  %s(%s)" dst func args
  | Ret None -> "ret"
  | Ret (Some v) -> Printf.sprintf "ret   %s" (r v)
  | Label l -> l ^ ":"
  | Nop -> "nop"

let pp fmt i = Format.pp_print_string fmt (to_string i)
