examples/protection_tradeoff.ml: Apps Core List Printf Sim String
