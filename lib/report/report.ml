(* Unified typed report layer.

   Every experiment produces a [table] of typed [cell]s instead of
   pre-formatted strings; one value then renders both ways:

   - [to_text] — the plain-text table the harness has always printed
     (byte-identical to the old [Tablefmt.render] output);
   - [to_json] — a machine-readable document under the versioned
     schema [etap-report/1], shared by every [etap --json] subcommand
     and the bench harness.

   Cells keep the numeric value and the display text separately, so
   the JSON side always emits real numbers (or [null] — never a bare
   [nan]/[inf] token) while the text side reproduces the exact
   historical formatting. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON values and printer, shared by the [etap-report/1],
   [etap-trace/1] and [etap-metrics/1] emitters. No external
   dependency.                                                         *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (* non-finite values print as null *)
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* Shortest decimal form that still reads back as the same double for
     the magnitudes reports contain; integral floats print without an
     exponent so the document stays human-scannable. *)
  let float_repr x =
    if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.1f" x
    else Printf.sprintf "%.12g" x

  let rec write buf ~indent t =
    let pad n = String.make n ' ' in
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x ->
      Buffer.add_string buf
        (if Float.is_finite x then float_repr x else "null")
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          write buf ~indent:(indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write buf ~indent:(indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 1024 in
    write buf ~indent:0 t;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  (* Single-line form, for JSONL streams (one document per line) and
     large machine-only payloads like trace events. Same value
     rendering as [write] — in particular non-finite floats still print
     as null. *)
  let rec write_compact buf t =
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x ->
      Buffer.add_string buf (if Float.is_finite x then float_repr x else "null")
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write_compact buf item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write_compact buf v)
        fields;
      Buffer.add_char buf '}'

  let to_compact_string t =
    let buf = Buffer.create 256 in
    write_compact buf t;
    Buffer.contents buf

  let of_int_opt = function None -> Null | Some i -> Int i

  let to_file path t =
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (to_string t))
end

(* ------------------------------------------------------------------ *)
(* Cells, columns, tables.                                             *)

type cell =
  | Text of string          (* JSON string *)
  | Int of int              (* JSON integer *)
  | Num of float * string   (* JSON number, custom display text *)
  | Missing of string       (* JSON null, display placeholder *)

let text s = Text s
let int n = Int n
let num ~text v = Num (v, text)

(* Frozen display formats (formerly Tablefmt.{pct,db,count}). *)
let pct x = Num (x, Printf.sprintf "%.1f%%" x)
let db x = Num (x, Printf.sprintf "%.1f dB" x)
let count n = Int n

let opt ~missing some = function Some v -> some v | None -> Missing missing

let cell_text = function
  | Text s -> s
  | Int n -> string_of_int n
  | Num (_, s) -> s
  | Missing s -> s

let cell_json = function
  | Text s -> Json.Str s
  | Int n -> Json.Int n
  | Num (v, _) -> Json.Float v  (* nan/inf -> null at print time *)
  | Missing _ -> Json.Null

type column = {
  key : string;    (* JSON field name *)
  label : string;  (* text-rendering header *)
}

let column ?key label =
  let key =
    match key with
    | Some k -> k
    | None ->
      (* slug of the label: lowercase alphanumerics joined by '_' *)
      let b = Buffer.create (String.length label) in
      let pending = ref false in
      String.iter
        (fun c ->
          match Char.lowercase_ascii c with
          | ('a' .. 'z' | '0' .. '9') as c ->
            if !pending && Buffer.length b > 0 then Buffer.add_char b '_';
            pending := false;
            Buffer.add_char b c
          | _ -> pending := true)
        label;
      Buffer.contents b
  in
  { key; label }

type table = {
  id : string;
  title : string;
  columns : column list;
  rows : cell list list;
}

let table ~id ~title ~columns rows = { id; title; columns; rows }

(* ------------------------------------------------------------------ *)
(* Text rendering — byte-identical to the historical Tablefmt output.
   Array-based: column widths and row formatting are O(rows x cols)
   instead of the old List.nth-based O(rows x cols^2).                 *)

let to_text (t : table) : string =
  let headers = Array.of_list (List.map (fun c -> c.label) t.columns) in
  let ncols = Array.length headers in
  let rows =
    List.map
      (fun row ->
        let a = Array.make ncols "" in
        List.iteri (fun i c -> if i < ncols then a.(i) <- cell_text c) row;
        a)
      t.rows
  in
  let widths = Array.map String.length headers in
  List.iter
    (fun row ->
      Array.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row)
    rows;
  let buf = Buffer.create 256 in
  let line ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths
  in
  let fmt_row row =
    Buffer.add_char buf '|';
    Array.iteri
      (fun i cell ->
        Buffer.add_string buf (Printf.sprintf " %-*s " widths.(i) cell);
        Buffer.add_char buf '|')
      row
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  line '-';
  Buffer.add_char buf '\n';
  fmt_row headers;
  Buffer.add_char buf '\n';
  line '=';
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      fmt_row r;
      Buffer.add_char buf '\n')
    rows;
  line '-';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reports and the etap-report/1 JSON document.                        *)

type t = {
  command : string;             (* producing subcommand, e.g. "table2" *)
  meta : (string * Json.t) list;  (* invocation parameters *)
  tables : table list;
}

let schema_version = "etap-report/1"

let make ~command ?(meta = []) tables = { command; meta; tables }

let table_json (t : table) =
  Json.Obj
    [
      ("id", Json.Str t.id);
      ("title", Json.Str t.title);
      ( "columns",
        Json.Arr
          (List.map
             (fun c ->
               Json.Obj
                 [ ("key", Json.Str c.key); ("label", Json.Str c.label) ])
             t.columns) );
      ( "rows",
        Json.Arr
          (List.map
             (fun row ->
               (* Short rows pad with null, mirroring the text
                  renderer's empty cells; extra cells are dropped. *)
               let rec zip cols cells =
                 match (cols, cells) with
                 | [], _ -> []
                 | c :: cols, [] -> (c.key, Json.Null) :: zip cols []
                 | c :: cols, cell :: cells ->
                   (c.key, cell_json cell) :: zip cols cells
               in
               Json.Obj (zip t.columns row))
             t.rows) );
    ]

let to_json (r : t) =
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("command", Json.Str r.command);
      ("meta", Json.Obj r.meta);
      ("tables", Json.Arr (List.map table_json r.tables));
    ]

let write_json ~path (r : t) = Json.to_file path (to_json r)
