(** Streaming statistics for campaign results.

    {!acc} is a single-pass accumulator over floats (Welford
    mean/variance, running min/max); {!t} adds the campaign outcome
    breakdown (crashes / infinite / completed) with a fidelity
    accumulator over the scored completed trials. Both are immutable
    and merge associatively, so per-domain partial statistics combine
    without revisiting trials. *)

type acc

val acc_empty : acc
val acc_add : acc -> float -> acc

val acc_merge : acc -> acc -> acc
(** [acc_merge a b] equals (up to floating-point rounding) the
    accumulator built by adding [a]'s and [b]'s observations to one
    accumulator. *)

val acc_count : acc -> int

val acc_mean : acc -> float option
(** [None] when empty — never [nan]. *)

val acc_variance : acc -> float option
(** Population variance (divide by [n]). *)

val acc_stddev : acc -> float option
val acc_min : acc -> float option
val acc_max : acc -> float option

type t = {
  n : int;  (** trials observed *)
  crashes : int;
  infinite : int;
  completed : int;
  fidelity : acc;  (** over completed trials that were scored *)
}

val empty : t

val observe : t -> Outcome.t -> fidelity:float option -> t
(** Count one classified trial; a [Some] fidelity on a completed trial
    also feeds the fidelity accumulator. *)

val merge : t -> t -> t
val catastrophic : t -> int

val pct_catastrophic : t -> float
(** [0.0] on the empty summary. *)

val mean_fidelity : t -> float option
(** [None] when no completed trial was scored — never [nan]. *)
