lib/harness/experiment.ml: Apps Core Hashtbl List Sim
