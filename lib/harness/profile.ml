(* Fault-site attribution profile.

   Runs one injection campaign with telemetry on and renders where the
   injected faults landed: per (function, body index) counts,
   cross-tabbed by outcome class. This is the analysis companion to the
   paper's failure-rate tables — instead of asking "how often does the
   app fail", it asks "which instructions, when corrupted, make it
   fail", which is exactly the ranking a selective-protection policy
   would consult.

   The tally comes from the obs sink, not from re-deriving landings
   here: Campaign already attributes every landed fault to its site
   (Interp.landed_sites) and classifies the trial, so the profile is a
   pure read of the merged view. When the caller has a sink installed
   (e.g. `etap profile --trace`), the campaign records into it and the
   profile shares it — one campaign, one set of events, consumed by
   both the profile table and the exporters. Otherwise a private sink
   is installed for the duration of the run. *)

type row = {
  func : string;
  pc : int;  (* body index within [func] *)
  crash : int;
  infinite : int;
  completed : int;
  total : int;  (* landed faults attributed to this site *)
}

type t = {
  app_name : string;
  mode : Experiment.mode;
  policy : Core.Policy.t;
  errors : int;
  trials : int;
  seed : int;
  rows : row list;  (* descending by [total], then by (func, pc) *)
  faults_total : int;  (* sum over rows = campaign faults landed *)
  summary : Core.Campaign.summary;
}

let row_of_site ((func, pc), counts) =
  let crash = counts.(Obs.cls_index Obs.Crash) in
  let infinite = counts.(Obs.cls_index Obs.Infinite) in
  let completed = counts.(Obs.cls_index Obs.Completed) in
  { func; pc; crash; infinite; completed; total = crash + infinite + completed }

let run ?(errors = 10) ?(trials = 20) ?(seed = 41) ?jobs ?checkpoint_stride
    ?(policy = Core.Policy.Protect_nothing) ~mode (l : Experiment.loaded) : t =
  let campaign sink =
    let p =
      Core.Campaign.prepare ?checkpoint_stride
        (l.Experiment.target mode)
        policy
    in
    let score r = l.Experiment.built.Apps.App.score ~golden:l.Experiment.golden r in
    let summary = Core.Campaign.run ?jobs ~score p ~errors ~trials ~seed in
    (summary, Obs.view sink)
  in
  let summary, view =
    if Obs.enabled () then campaign (Obs.installed ())
    else begin
      let sink = Obs.make () in
      Obs.with_sink sink (fun () -> campaign sink)
    end
  in
  let rows =
    List.sort
      (fun a b ->
        match Int.compare b.total a.total with
        | 0 -> compare (a.func, a.pc) (b.func, b.pc)
        | c -> c)
      (List.map row_of_site view.Obs.sites)
  in
  let faults_total = List.fold_left (fun n r -> n + r.total) 0 rows in
  {
    app_name = l.Experiment.built.Apps.App.app_name;
    mode;
    policy;
    errors;
    trials;
    seed;
    rows;
    faults_total;
    summary;
  }

(* Rows beyond [top] collapse into one "(other)" aggregate so column
   sums stay equal to the campaign's landed-fault totals whatever the
   cutoff. *)
let to_table ?top (p : t) : Report.table =
  let shown, rest =
    match top with
    | Some k when k >= 0 && List.length p.rows > k ->
      (List.filteri (fun i _ -> i < k) p.rows,
       List.filteri (fun i _ -> i >= k) p.rows)
    | _ -> (p.rows, [])
  in
  let cells r site =
    Report.
      [
        text site;
        int r.pc;
        count r.total;
        count r.crash;
        count r.infinite;
        count r.completed;
      ]
  in
  let rows =
    List.map (fun r -> cells r r.func) shown
    @
    match rest with
    | [] -> []
    | _ ->
      let sum f = List.fold_left (fun n r -> n + f r) 0 rest in
      [
        Report.
          [
            text (Printf.sprintf "(other: %d sites)" (List.length rest));
            Missing "-";
            count (sum (fun r -> r.total));
            count (sum (fun r -> r.crash));
            count (sum (fun r -> r.infinite));
            count (sum (fun r -> r.completed));
          ];
      ]
  in
  Report.table ~id:"profile"
    ~title:
      (Printf.sprintf "Fault-site profile: %s (%s, %s, e=%d, %d trials)"
         p.app_name
         (Experiment.mode_name p.mode)
         (Core.Policy.to_string p.policy)
         p.errors p.trials)
    ~columns:
      (List.map Report.column
         [ "function"; "pc"; "faults"; "crash"; "infinite"; "completed" ])
    rows

let footer (p : t) =
  Printf.sprintf "total injected faults: %d across %d sites" p.faults_total
    (List.length p.rows)

let render ?top (p : t) =
  Report.to_text (to_table ?top p) ^ "\n" ^ footer p

let report ?top (p : t) : Report.t =
  Report.make ~command:"profile"
    ~meta:
      [
        ("app", Report.Json.Str p.app_name);
        ("mode", Report.Json.Str (Experiment.mode_name p.mode));
        ("policy", Report.Json.Str (Core.Policy.to_string p.policy));
        ("errors", Report.Json.Int p.errors);
        ("trials", Report.Json.Int p.trials);
        ("seed", Report.Json.Int p.seed);
        ("faults_total", Report.Json.Int p.faults_total);
        ("sites", Report.Json.Int (List.length p.rows));
      ]
    [ to_table ?top p ]
