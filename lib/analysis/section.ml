(* Program sectioning for compositional fault injection.

   FastFlip-style composition needs a stable identity for "the part of
   the program a fault lands in": the program is partitioned at
   function boundaries into sections, and each section gets a canonical
   content hash over its instructions, its per-slot injectability tags
   and (transitively) the hashes of its callees. Campaign results keyed
   by that hash survive any edit that does not change the section's
   own content or anything it can call — in particular renames of
   functions, labels and globals-by-name, and reordering of function
   declarations, are all hash-invariant.

   Two hashes per section:

   - [local_hash] covers only the section's own body (callee references
     replaced by a placeholder). It identifies the code of a stack
     frame without pulling in the whole call subtree — entry-state
     digests use it, because composing there would make every cached
     result depend transitively on [main] (i.e. on the entire program).
   - [section_hash] is the composed hash: callee references resolve to
     the callees' iterated hashes, computed as an n-round fixpoint over
     the call graph so mutual recursion and call chains of any depth
     are covered. An edit anywhere in a section's call subtree changes
     its [section_hash]; an edit outside it cannot.

   The canonical serialization is deliberately positional: labels
   encode as their body index, globals as their resolved byte address,
   registers by bank-local index, callees by hash. Nothing textual from
   the source program survives except what changes semantics. *)

type info = {
  fid : int;  (* index in [Ir.Prog.funcs] order — the simulator's fid *)
  name : string;
  local_hash : string;  (* hex MD5 of the body alone *)
  section_hash : string;  (* hex MD5 composed over the call subtree *)
  callees : string list;  (* distinct direct callees, first-call order *)
  static_slots : int;  (* body length, label slots included *)
  tagged_slots : int;  (* injectable slots under the supplied mask *)
}

type t = {
  prog : Ir.Prog.t;
  infos : info array;  (* indexed by fid *)
  by_name : (string, int) Hashtbl.t;
  entry_fid : int;
}

let info t ~fid = t.infos.(fid)
let find t name = Option.map (fun fid -> t.infos.(fid)) (Hashtbl.find_opt t.by_name name)
let entry t = t.infos.(t.entry_fid)

(* Canonical body serialization. [callee_ref] maps a callee name to its
   representation in this round ("@" for the local hash, the callee's
   previous-round hash for composition). Every instruction lands on its
   own line so the per-slot tag bit can ride along; [Label] keeps its
   slot (as a bare position marker) to preserve index alignment with
   the tag mask. *)
let canon_func ~global_addr ~(tag_row : bool array) ~callee_ref
    (f : Ir.Func.t) : string =
  let b = Buffer.create 2048 in
  let adds = Buffer.add_string b in
  let reg r = Ir.Reg.to_string r in
  let lbl l = "#" ^ string_of_int (Ir.Func.label_index f l) in
  (* Signature and eligibility are part of the identity: they change
     calling convention and what the tagging analysis may mark. *)
  adds "sig";
  List.iter (fun r -> adds " "; adds (reg r)) f.Ir.Func.params;
  adds " -> ";
  adds (match f.Ir.Func.ret with None -> "void" | Some ty -> Ir.Ty.to_string ty);
  adds (if f.Ir.Func.eligible then " eligible" else " protected");
  Array.iteri
    (fun idx (i : Ir.Instr.t) ->
      Buffer.add_char b '\n';
      (match i with
       | Ir.Instr.Li (d, n) -> adds (Printf.sprintf "li %s %ld" (reg d) n)
       | Ir.Instr.Lf (d, x) -> adds (Printf.sprintf "lf %s %h" (reg d) x)
       | Ir.Instr.La (d, g) ->
         adds (Printf.sprintf "la %s @%d" (reg d) (global_addr g))
       | Ir.Instr.Mov (d, s) -> adds (Printf.sprintf "mov %s %s" (reg d) (reg s))
       | Ir.Instr.Bin (op, d, a, c) ->
         adds
           (Printf.sprintf "%s %s %s %s" (Ir.Instr.string_of_binop op) (reg d)
              (reg a) (reg c))
       | Ir.Instr.Bini (op, d, a, n) ->
         adds
           (Printf.sprintf "%si %s %s %ld" (Ir.Instr.string_of_binop op) (reg d)
              (reg a) n)
       | Ir.Instr.Cmp (op, d, a, c) ->
         adds
           (Printf.sprintf "cmp.%s %s %s %s" (Ir.Instr.string_of_cmpop op)
              (reg d) (reg a) (reg c))
       | Ir.Instr.Fbin (op, d, a, c) ->
         adds
           (Printf.sprintf "%s %s %s %s" (Ir.Instr.string_of_fbinop op) (reg d)
              (reg a) (reg c))
       | Ir.Instr.Fun_ (op, d, s) ->
         adds
           (Printf.sprintf "%s %s %s" (Ir.Instr.string_of_funop op) (reg d)
              (reg s))
       | Ir.Instr.Fcmp (op, d, a, c) ->
         adds
           (Printf.sprintf "fcmp.%s %s %s %s" (Ir.Instr.string_of_cmpop op)
              (reg d) (reg a) (reg c))
       | Ir.Instr.I2f (d, s) -> adds (Printf.sprintf "i2f %s %s" (reg d) (reg s))
       | Ir.Instr.F2i (d, s) -> adds (Printf.sprintf "f2i %s %s" (reg d) (reg s))
       | Ir.Instr.Lw (d, a, o) ->
         adds (Printf.sprintf "lw %s %s %d" (reg d) (reg a) o)
       | Ir.Instr.Sw (s, a, o) ->
         adds (Printf.sprintf "sw %s %s %d" (reg s) (reg a) o)
       | Ir.Instr.Lb (d, a, o) ->
         adds (Printf.sprintf "lb %s %s %d" (reg d) (reg a) o)
       | Ir.Instr.Sb (s, a, o) ->
         adds (Printf.sprintf "sb %s %s %d" (reg s) (reg a) o)
       | Ir.Instr.Lwf (d, a, o) ->
         adds (Printf.sprintf "lwf %s %s %d" (reg d) (reg a) o)
       | Ir.Instr.Swf (s, a, o) ->
         adds (Printf.sprintf "swf %s %s %d" (reg s) (reg a) o)
       | Ir.Instr.Br (op, a, c, l) ->
         adds
           (Printf.sprintf "br.%s %s %s %s" (Ir.Instr.string_of_cmpop op)
              (reg a) (reg c) (lbl l))
       | Ir.Instr.Brz (op, a, l) ->
         adds
           (Printf.sprintf "brz.%s %s %s" (Ir.Instr.string_of_cmpop op) (reg a)
              (lbl l))
       | Ir.Instr.Jmp l -> adds ("jmp " ^ lbl l)
       | Ir.Instr.Call { dst; func; args } ->
         adds "call ";
         adds (callee_ref func);
         (match dst with None -> adds " _" | Some d -> adds (" " ^ reg d));
         List.iter (fun a -> adds (" " ^ reg a)) args
       | Ir.Instr.Ret None -> adds "ret"
       | Ir.Instr.Ret (Some r) -> adds ("ret " ^ reg r)
       | Ir.Instr.Label _ -> adds "#"
       | Ir.Instr.Nop -> adds "nop");
      if Array.length tag_row > 0 && tag_row.(idx) then adds " !")
    f.Ir.Func.body;
  Buffer.contents b

let md5 s = Digest.to_hex (Digest.string s)

let compute ?tags (prog : Ir.Prog.t) : t =
  let funcs = Array.of_list (Ir.Prog.funcs prog) in
  let n = Array.length funcs in
  let by_name = Hashtbl.create (2 * n) in
  Array.iteri
    (fun fid (f : Ir.Func.t) -> Hashtbl.replace by_name f.Ir.Func.name fid)
    funcs;
  let global_addr g = Ir.Prog.global_addr prog g in
  let tag_row fid =
    match tags with
    | None -> [||]
    | Some t when fid < Array.length t -> t.(fid)
    | Some _ -> [||]
  in
  let hash ~callee_ref fid =
    md5
      (canon_func ~global_addr ~tag_row:(tag_row fid) ~callee_ref funcs.(fid))
  in
  let local = Array.init n (fun fid -> hash ~callee_ref:(fun _ -> "@") fid) in
  (* Composed hashes: iterate callee substitution [n] rounds. Round k
     propagates an edit to callers at call-graph distance k, so [n]
     rounds cover the longest acyclic call chain; recursive cycles
     reach a stable (mutually dependent) encoding the same way. The
     result depends only on per-name content, never on declaration
     order or on the names themselves. *)
  let cur = ref local in
  for _round = 1 to n do
    let prev = !cur in
    let callee_ref name =
      match Hashtbl.find_opt by_name name with
      | Some fid -> prev.(fid)
      | None -> "?extern"
    in
    cur := Array.init n (fun fid -> hash ~callee_ref fid)
  done;
  let composed = !cur in
  let infos =
    Array.init n (fun fid ->
        let f = funcs.(fid) in
        let callees =
          let seen = Hashtbl.create 8 in
          Array.fold_left
            (fun acc (i : Ir.Instr.t) ->
              match i with
              | Ir.Instr.Call { func; _ } when not (Hashtbl.mem seen func) ->
                Hashtbl.replace seen func ();
                func :: acc
              | _ -> acc)
            [] f.Ir.Func.body
          |> List.rev
        in
        let row = tag_row fid in
        {
          fid;
          name = f.Ir.Func.name;
          local_hash = local.(fid);
          section_hash = composed.(fid);
          callees;
          static_slots = Array.length f.Ir.Func.body;
          tagged_slots =
            Array.fold_left (fun a t -> if t then a + 1 else a) 0 row;
        })
  in
  let entry_fid =
    match Hashtbl.find_opt by_name prog.Ir.Prog.entry with
    | Some fid -> fid
    | None -> invalid_arg "Section.compute: program has no entry function"
  in
  { prog; infos; by_name; entry_fid }

(* Synthetic semantics-preserving, hash-visible edit: append an
   unreachable self-loop at the end of [func]'s body. The pad uses no
   registers, is never executed (nothing jumps to it and the preceding
   body never falls off its end — the validator's no-fall-through rule)
   and ends in a terminator, so the edited program has bit-identical
   golden behaviour, dynamic counts, frame shapes and memory layout —
   but [func]'s local hash and every caller's composed hash change.
   This is the benchmark's and the equivalence suite's model of a
   "one-function edit". *)
let dead_pad ~func (prog : Ir.Prog.t) : Ir.Prog.t =
  let f =
    match Ir.Prog.find_func prog func with
    | Some f -> f
    | None -> invalid_arg ("Section.dead_pad: unknown function " ^ func)
  in
  let fresh =
    let rec go i =
      let cand =
        if i = 0 then "__memo_pad" else Printf.sprintf "__memo_pad%d" i
      in
      if Hashtbl.mem f.Ir.Func.labels cand then go (i + 1) else cand
    in
    go 0
  in
  let body =
    Array.to_list f.Ir.Func.body
    @ [ Ir.Instr.Label fresh; Ir.Instr.Jmp fresh ]
  in
  let f' =
    Ir.Func.make ~eligible:f.Ir.Func.eligible ~name:f.Ir.Func.name
      ~params:f.Ir.Func.params ~ret:f.Ir.Func.ret body
  in
  let funcs =
    List.map
      (fun (g : Ir.Func.t) -> if g.Ir.Func.name = func then f' else g)
      (Ir.Prog.funcs prog)
  in
  Ir.Prog.make ~entry:prog.Ir.Prog.entry ~globals:prog.Ir.Prog.globals funcs
