(* IR well-formedness checker: register-bank typing of every
   instruction, call-site arity/typing against callee signatures,
   global references, returns against the function signature, and
   structural rules (no fall-through off the end of a function). *)

type error = {
  func : string;
  index : int;  (* body index, or -1 for signature-level errors *)
  message : string;
}

let errorf func index fmt =
  Printf.ksprintf (fun message -> { func; index; message }) fmt

let pp_error fmt e =
  Format.fprintf fmt "%s[%d]: %s" e.func e.index e.message

let check_func (prog : Prog.t) (f : Func.t) : error list =
  let errs = ref [] in
  let err i fmt = Printf.ksprintf (fun m -> errs := { func = f.Func.name; index = i; message = m } :: !errs) fmt in
  let want_int i what r =
    if not (Reg.is_int r) then err i "%s must be an integer register, got %s" what (Reg.to_string r)
  and want_flt i what r =
    if not (Reg.is_flt r) then err i "%s must be a float register, got %s" what (Reg.to_string r)
  in
  let same_bank i a b =
    if Reg.is_int a <> Reg.is_int b then err i "operands in different banks"
  in
  Array.iteri
    (fun i (instr : Instr.t) ->
      match instr with
      | Li (d, _) -> want_int i "li dst" d
      | Lf (d, _) -> want_flt i "lf dst" d
      | La (d, g) ->
        want_int i "la dst" d;
        if Prog.find_global prog g = None then err i "unknown global %s" g
      | Mov (d, s) -> same_bank i d s
      | Bin (_, d, a, b) ->
        want_int i "alu dst" d;
        want_int i "alu src1" a;
        want_int i "alu src2" b
      | Bini (_, d, a, _) ->
        want_int i "alui dst" d;
        want_int i "alui src" a
      | Cmp (_, d, a, b) ->
        want_int i "cmp dst" d;
        want_int i "cmp src1" a;
        want_int i "cmp src2" b
      | Fbin (_, d, a, b) ->
        want_flt i "fpu dst" d;
        want_flt i "fpu src1" a;
        want_flt i "fpu src2" b
      | Fun_ (_, d, s) ->
        want_flt i "fpu dst" d;
        want_flt i "fpu src" s
      | Fcmp (_, d, a, b) ->
        want_int i "fcmp dst" d;
        want_flt i "fcmp src1" a;
        want_flt i "fcmp src2" b
      | I2f (d, s) ->
        want_flt i "i2f dst" d;
        want_int i "i2f src" s
      | F2i (d, s) ->
        want_int i "f2i dst" d;
        want_flt i "f2i src" s
      | Lw (d, b, o) ->
        want_int i "lw dst" d;
        want_int i "lw base" b;
        if o mod 4 <> 0 then err i "unaligned constant offset %d" o
      | Sw (v, b, o) ->
        want_int i "sw src" v;
        want_int i "sw base" b;
        if o mod 4 <> 0 then err i "unaligned constant offset %d" o
      | Lb (d, b, _) ->
        want_int i "lbu dst" d;
        want_int i "lbu base" b
      | Sb (v, b, _) ->
        want_int i "sb src" v;
        want_int i "sb base" b
      | Lwf (d, b, o) ->
        want_flt i "lwf dst" d;
        want_int i "lwf base" b;
        if o mod 4 <> 0 then err i "unaligned constant offset %d" o
      | Swf (v, b, o) ->
        want_flt i "swf src" v;
        want_int i "swf base" b;
        if o mod 4 <> 0 then err i "unaligned constant offset %d" o
      | Br (_, a, b, _) ->
        want_int i "branch src1" a;
        want_int i "branch src2" b
      | Brz (_, a, _) -> want_int i "branch src" a
      | Jmp _ | Label _ | Nop -> ()
      | Call { dst; func; args } -> begin
        match Prog.find_func prog func with
        | None -> err i "call to unknown function %s" func
        | Some callee ->
          let formals = callee.Func.params in
          if List.length formals <> List.length args then
            err i "call to %s: arity mismatch (%d formals, %d actuals)" func
              (List.length formals) (List.length args)
          else
            List.iter2
              (fun formal actual ->
                if Reg.is_int formal <> Reg.is_int actual then
                  err i "call to %s: argument bank mismatch" func)
              formals args;
          match (dst, callee.Func.ret) with
          | None, _ -> ()
          | Some _, None -> err i "call to %s: no return value" func
          | Some d, Some ty ->
            if not (Ty.equal (Ty.of_reg d) ty) then
              err i "call to %s: return bank mismatch" func
      end
      | Ret v -> begin
        match (v, f.Func.ret) with
        | None, None -> ()
        | None, Some _ -> err i "ret without value in non-void function"
        | Some _, None -> err i "ret with value in void function"
        | Some r, Some ty ->
          if not (Ty.equal (Ty.of_reg r) ty) then err i "ret bank mismatch"
      end)
    f.Func.body;
  let n = Array.length f.Func.body in
  (if n = 0 then errs := errorf f.Func.name (-1) "empty body" :: !errs
   else
     match f.Func.body.(n - 1) with
     | Instr.Ret _ | Instr.Jmp _ -> ()
     | _ -> errs := errorf f.Func.name (n - 1) "control falls off function end" :: !errs);
  List.rev !errs

let check (prog : Prog.t) : error list =
  List.concat_map (check_func prog) (Prog.funcs prog)

exception Invalid of error list

let check_exn prog =
  match check prog with
  | [] -> ()
  | errs -> raise (Invalid errs)
