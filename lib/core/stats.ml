(* Streaming statistics for campaign results.

   Two layers: [acc] is a general single-pass accumulator over floats
   (Welford's algorithm for mean/variance plus running min/max), and
   [t] is the campaign-level summary — the catastrophic breakdown
   counters together with a fidelity accumulator over the scored
   completed trials. Both are immutable and mergeable, so partial
   statistics computed on different domains (or different sweeps)
   combine associatively without revisiting the trials. *)

type acc = {
  count : int;
  mean : float;   (* running mean; 0.0 when empty *)
  m2 : float;     (* sum of squared deviations from the running mean *)
  min : float;    (* +inf when empty *)
  max : float;    (* -inf when empty *)
}

let acc_empty =
  { count = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let acc_add (a : acc) x =
  let count = a.count + 1 in
  let delta = x -. a.mean in
  let mean = a.mean +. (delta /. float_of_int count) in
  let m2 = a.m2 +. (delta *. (x -. mean)) in
  { count; mean; m2; min = Float.min a.min x; max = Float.max a.max x }

(* Chan et al.'s pairwise-combination update. *)
let acc_merge (a : acc) (b : acc) =
  if a.count = 0 then b
  else if b.count = 0 then a
  else begin
    let count = a.count + b.count in
    let na = float_of_int a.count and nb = float_of_int b.count in
    let n = float_of_int count in
    let delta = b.mean -. a.mean in
    {
      count;
      mean = a.mean +. (delta *. nb /. n);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. n);
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
    }
  end

let acc_count (a : acc) = a.count
let acc_mean (a : acc) = if a.count = 0 then None else Some a.mean

(* Population variance (divide by n): the trials are the whole
   population of the campaign, not a sample from a larger one. *)
let acc_variance (a : acc) =
  if a.count = 0 then None else Some (a.m2 /. float_of_int a.count)

let acc_stddev (a : acc) = Option.map Float.sqrt (acc_variance a)
let acc_min (a : acc) = if a.count = 0 then None else Some a.min
let acc_max (a : acc) = if a.count = 0 then None else Some a.max

(* ------------------------------------------------------------------ *)

(* Fault-flow class counters (shadow-taint taxonomy, DESIGN §11).
   Plain additive counters, so they merge like everything else; only
   trials run with taint on feed them, so [flows_total] can be below
   [n] for untainted campaigns (and is 0 for all of them today). *)
type flows = {
  vanished : int;
  data_only : int;
  reached_memory : int;
  reached_address : int;
  reached_control : int;
}

let flows_empty =
  {
    vanished = 0;
    data_only = 0;
    reached_memory = 0;
    reached_address = 0;
    reached_control = 0;
  }

let flows_add (f : flows) (c : Sim.Taint.flow) =
  match c with
  | Sim.Taint.Vanished -> { f with vanished = f.vanished + 1 }
  | Sim.Taint.Data_only -> { f with data_only = f.data_only + 1 }
  | Sim.Taint.Reached_memory -> { f with reached_memory = f.reached_memory + 1 }
  | Sim.Taint.Reached_address ->
    { f with reached_address = f.reached_address + 1 }
  | Sim.Taint.Reached_control ->
    { f with reached_control = f.reached_control + 1 }

let flows_merge (a : flows) (b : flows) =
  {
    vanished = a.vanished + b.vanished;
    data_only = a.data_only + b.data_only;
    reached_memory = a.reached_memory + b.reached_memory;
    reached_address = a.reached_address + b.reached_address;
    reached_control = a.reached_control + b.reached_control;
  }

let flows_total (f : flows) =
  f.vanished + f.data_only + f.reached_memory + f.reached_address
  + f.reached_control

let flows_get (f : flows) (c : Sim.Taint.flow) =
  match c with
  | Sim.Taint.Vanished -> f.vanished
  | Sim.Taint.Data_only -> f.data_only
  | Sim.Taint.Reached_memory -> f.reached_memory
  | Sim.Taint.Reached_address -> f.reached_address
  | Sim.Taint.Reached_control -> f.reached_control

type t = {
  n : int;          (* trials observed *)
  crashes : int;
  infinite : int;
  completed : int;
  fidelity : acc;   (* over completed trials that were scored *)
  flows : flows;    (* taint-mode trials only *)
}

let empty =
  {
    n = 0;
    crashes = 0;
    infinite = 0;
    completed = 0;
    fidelity = acc_empty;
    flows = flows_empty;
  }

let observe ?flow (s : t) (outcome : Outcome.t) ~(fidelity : float option) =
  let s = { s with n = s.n + 1 } in
  let s =
    match flow with None -> s | Some c -> { s with flows = flows_add s.flows c }
  in
  match outcome with
  | Outcome.Crash _ -> { s with crashes = s.crashes + 1 }
  | Outcome.Infinite -> { s with infinite = s.infinite + 1 }
  | Outcome.Completed ->
    {
      s with
      completed = s.completed + 1;
      fidelity =
        (match fidelity with
         | None -> s.fidelity
         | Some f -> acc_add s.fidelity f);
    }

let merge (a : t) (b : t) =
  {
    n = a.n + b.n;
    crashes = a.crashes + b.crashes;
    infinite = a.infinite + b.infinite;
    completed = a.completed + b.completed;
    fidelity = acc_merge a.fidelity b.fidelity;
    flows = flows_merge a.flows b.flows;
  }

let catastrophic (s : t) = s.crashes + s.infinite

let pct_catastrophic (s : t) =
  if s.n = 0 then 0.0
  else 100.0 *. float_of_int (catastrophic s) /. float_of_int s.n

let mean_fidelity (s : t) = acc_mean s.fidelity

(* ------------------------------------------------------------------ *)

(* Mergeable log-bucketed histogram, for latency-style quantities whose
   distribution matters more than its moments (trial wall-times in
   bench summaries). The primitive lives in [Obs.Hist] — the telemetry
   layer sits below sim, so sharing one implementation keeps bench
   summaries and obs metrics in the same buckets — and is re-exported
   here so core-level consumers need not depend on obs directly. Like
   [acc], merging is exact and associative (bucket counts add). *)
type hist = Obs.Hist.t

let hist_empty = Obs.Hist.empty
let hist_add = Obs.Hist.add
let hist_merge = Obs.Hist.merge
let hist_count = Obs.Hist.count
let hist_quantile = Obs.Hist.quantile
