(* Benchmark harness: regenerates every table and figure of the paper
   (printed as text tables with the paper's own numbers alongside),
   runs the ablations from DESIGN.md, and finishes with Bechamel
   micro-benchmarks of the toolchain itself.

   Usage:
     dune exec bench/main.exe                 # everything, default size
     dune exec bench/main.exe -- table2 fig4  # selected experiments
     dune exec bench/main.exe -- --quick      # reduced trial counts
     dune exec bench/main.exe -- micro        # only the micro-benchmarks

   All campaigns are deterministic for a fixed seed. *)

let say fmt = Printf.printf (fmt ^^ "\n%!")

let section title =
  say "";
  say "%s" (String.make 72 '=');
  say "%s" title;
  say "%s" (String.make 72 '=')

(* ------------------------------------------------------------------ *)
(* Experiments.                                                        *)

let run_table2 ~trials loaded =
  section "Table 2 — catastrophic failures with/without control protection";
  let rows = Harness.Table2.run ~trials loaded in
  say "%s" (Harness.Table2.render rows)

let run_table3 loaded =
  section "Table 3 — % of dynamic instructions tagged low-reliability";
  let rows = Harness.Table3.run loaded in
  say "%s" (Harness.Table3.render rows)

let figures :
    (string
    * (?trials:int ->
       ?seed:int ->
       Harness.Experiment.loaded list ->
       Harness.Figures.result))
    list =
  [
    ("fig1", Harness.Figures.fig1);
    ("fig2", Harness.Figures.fig2);
    ("fig3", Harness.Figures.fig3);
    ("fig4", Harness.Figures.fig4);
    ("fig5", Harness.Figures.fig5);
    ("fig6", Harness.Figures.fig6);
  ]

let run_figures ~trials ~which loaded =
  List.iter
    (fun (id, f) ->
      if which id then begin
        section (String.uppercase_ascii id);
        say "%s" (Harness.Figures.render (f ?trials:(Some trials) ?seed:None loaded))
      end)
    figures

let run_extensions ~trials loaded =
  section "Cost model — selective vs uniform protection (paper Sec. 5.3)";
  say "%s"
    (Harness.Cost_model.render ~mode:Harness.Experiment.Literal
       (Harness.Cost_model.run ~mode:Harness.Experiment.Literal loaded));
  section "Fault outcome taxonomy (benign / degraded / catastrophic)";
  say "%s"
    (Harness.Taxonomy.render ~mode:Harness.Experiment.Literal
       (Harness.Taxonomy.run ~trials ~mode:Harness.Experiment.Literal loaded))

let run_ablations ~trials loaded =
  section "Ablation A — address protection";
  say "%s"
    (Harness.Ablation.render_address (Harness.Ablation.address ~trials loaded));
  section "Ablation B — programmer eligibility marking";
  say "%s"
    (Harness.Ablation.render_eligibility
       (Harness.Ablation.eligibility ~trials ()))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the platform itself.                   *)

let micro () =
  section "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let susan = (Apps.Susan.app.Apps.App.build ~seed:1).Apps.App.prog in
  let code = Sim.Code.of_prog susan in
  let mcf = (Apps.Mcf.app.Apps.App.build ~seed:1).Apps.App.prog in
  let mcf_code = Sim.Code.of_prog mcf in
  let gcd_src =
    let open Mlang.Dsl in
    program []
      [
        fn "main" [] ~ret:(Some Mlang.Ast.TInt)
          [
            let_ "a" (i 1071);
            let_ "b" (i 462);
            while_ (v "b" <>! i 0)
              [ let_ "t" (v "b"); set "b" (v "a" %! v "b"); set "a" (v "t") ];
            ret (v "a");
          ];
      ]
  in
  let tests =
    [
      Test.make ~name:"interp: susan (630k instrs)"
        (Staged.stage (fun () -> ignore (Sim.Interp.run_exn code)));
      Test.make ~name:"interp: mcf (100k instrs)"
        (Staged.stage (fun () -> ignore (Sim.Interp.run_exn mcf_code)));
      Test.make ~name:"tagging: susan (full)"
        (Staged.stage (fun () ->
             ignore (Core.Tagging.compute ~protect_addresses:true susan)));
      Test.make ~name:"tagging: susan (literal)"
        (Staged.stage (fun () ->
             ignore (Core.Tagging.compute ~protect_addresses:false susan)));
      Test.make ~name:"compile: mlang gcd"
        (Staged.stage (fun () -> ignore (Mlang.Compile.to_ir gcd_src)));
      Test.make ~name:"decode: susan"
        (Staged.stage (fun () -> ignore (Sim.Code.of_prog susan)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 10) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ instance ] elt in
          let est = Analyze.one ols instance raw in
          let ns =
            match Analyze.OLS.estimates est with
            | Some [ t ] -> t
            | Some _ | None -> nan
          in
          say "  %-32s %14.1f ns/run  (%.3f ms)" (Test.Elt.name elt) ns
            (ns /. 1e6))
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let quick = List.mem "--quick" args in
  let args = List.filter (fun a -> a <> "--quick") args in
  let trials = if quick then 8 else 20 in
  let t2_trials = if quick then 10 else 25 in
  let want name =
    args = [] || List.mem name args
    || (String.length name > 3
       && String.sub name 0 3 = "fig"
       && List.mem "figures" args)
  in
  let needs_apps =
    args = []
    || List.exists
         (fun a -> a <> "micro")
         args
  in
  let t0 = Unix.gettimeofday () in
  let loaded =
    if needs_apps then begin
      say "building applications and baselines...";
      Harness.Experiment.load_all ()
    end
    else []
  in
  if want "table2" then run_table2 ~trials:t2_trials loaded;
  if want "table3" then run_table3 loaded;
  run_figures ~trials ~which:want loaded;
  if want "ablation" then run_ablations ~trials loaded;
  if want "extensions" then run_extensions ~trials loaded;
  if want "micro" then micro ();
  say "";
  say "total wall time: %.1f s" (Unix.gettimeofday () -. t0)
