(* Tests for the seven benchmark applications: every compiled program
   must agree bit-for-bit with its pure-OCaml host reference, plus
   per-application algorithmic invariants and property tests. *)

let golden (b : Apps.App.built) =
  Sim.Interp.run_exn (Sim.Code.of_prog b.Apps.App.prog)

let check_host name (b : Apps.App.built) =
  match b.Apps.App.host_check (golden b) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" name m

(* Host agreement across several workload seeds, for every app. *)
let test_host_agreement (app : Apps.App.t) () =
  List.iter
    (fun seed -> check_host app.Apps.App.name (app.Apps.App.build ~seed))
    [ 1; 2; 5 ]

let test_self_score (app : Apps.App.t) () =
  let b = app.Apps.App.build ~seed:1 in
  let g = golden b in
  let s = b.Apps.App.score ~golden:g g in
  Alcotest.(check bool)
    (app.Apps.App.name ^ " self-score meets threshold")
    true (Apps.App.meets b s)

(* ------------------------------------------------------------------ *)
(* Blowfish invariants.                                                *)

let test_blowfish_pi_constants () =
  let w = Apps.Pi_digits.words 6 in
  (* the published Blowfish P-array head *)
  Alcotest.(check (list int)) "P[0..5]"
    [ 0x243F6A88; 0x85A308D3; 0x13198A2E; 0x03707344; 0xA4093822; 0x299F31D0 ]
    (Array.to_list w)

let test_blowfish_roundtrip_host () =
  (* host encrypt/decrypt is an identity on words, for several texts *)
  List.iter
    (fun seed ->
      let text = Workloads.Text_gen.generate ~seed ~bytes:64 in
      let words =
        Array.map
          (fun w -> Int32.to_int w land 0xFFFFFFFF)
          (Workloads.Text_gen.to_words text)
      in
      let enc, dec = Apps.Blowfish.host_roundtrip words in
      Alcotest.(check bool) "ciphertext differs" true (enc <> words);
      Alcotest.(check bool) "roundtrip identity" true
        (Array.map Apps.Blowfish.sx32 dec
        = Array.map Apps.Blowfish.sx32 words))
    [ 10; 11; 12 ]

let test_blowfish_avalanche () =
  (* flipping one plaintext bit changes many ciphertext bits *)
  let words = Array.make 2 0 in
  let enc1, _ = Apps.Blowfish.host_roundtrip words in
  let words2 = [| 1; 0 |] in
  let enc2, _ = Apps.Blowfish.host_roundtrip words2 in
  let popcount x =
    let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
    go x 0
  in
  let flipped =
    popcount ((enc1.(0) lxor enc2.(0)) land 0xFFFFFFFF)
    + popcount ((enc1.(1) lxor enc2.(1)) land 0xFFFFFFFF)
  in
  Alcotest.(check bool) "avalanche" true (flipped > 16)

(* ------------------------------------------------------------------ *)
(* ADPCM invariants.                                                   *)

let test_adpcm_reconstruction_quality () =
  let pcm = Workloads.Audio_gen.speech ~seed:9 ~samples:800 in
  let dec = Apps.Adpcm.host_decode (Apps.Adpcm.host_encode pcm) in
  let snr = Fidelity.Snr.snr_db pcm dec in
  Alcotest.(check bool) "codec reconstructs speech (> 8 dB)" true (snr > 8.0)

let adpcm_codes_in_range_prop =
  QCheck.Test.make ~name:"adpcm codes are 4-bit" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let pcm = Workloads.Audio_gen.speech ~seed ~samples:200 in
      Array.for_all (fun c -> c >= 0 && c <= 15) (Apps.Adpcm.host_encode pcm))

let adpcm_output_16bit_prop =
  QCheck.Test.make ~name:"adpcm decode stays 16-bit" ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let pcm = Workloads.Audio_gen.speech ~seed ~samples:200 in
      Array.for_all
        (fun x -> x >= -32768 && x <= 32767)
        (Apps.Adpcm.host_decode (Apps.Adpcm.host_encode pcm)))

(* ------------------------------------------------------------------ *)
(* Susan invariants.                                                   *)

let test_susan_finds_edges () =
  let img = Workloads.Image_gen.scene ~seed:1 ~width:32 ~height:32 in
  let resp = Apps.Susan.host_edges img.Workloads.Image_gen.pixels in
  let edge_pixels = Array.fold_left (fun n r -> if r > 0 then n + 1 else n) 0 resp in
  Alcotest.(check bool) "finds edges" true (edge_pixels > 20);
  Alcotest.(check bool) "not everything is an edge" true
    (edge_pixels < Array.length resp / 2)

let test_susan_flat_image_no_edges () =
  let flat = Array.make (32 * 32) 128 in
  let resp = Apps.Susan.host_edges flat in
  Alcotest.(check bool) "no edges on flat image" true
    (Array.for_all (fun r -> r = 0) resp)

let test_susan_mask_is_37_points () =
  Alcotest.(check int) "SUSAN circular mask" 37
    (List.length Apps.Susan.mask_offsets)

(* ------------------------------------------------------------------ *)
(* MPEG invariants.                                                    *)

let test_mpeg_dct_roundtrip () =
  (* inv_dct (fwd_dct x) ~ x within quantization-free rounding error *)
  let rng = Workloads.Rng.make 13 in
  let blk = Array.init 64 (fun _ -> Workloads.Rng.range rng (-128) 128) in
  let back = Apps.Mpeg.inv_dct (Apps.Mpeg.fwd_dct blk) in
  Array.iteri
    (fun k x ->
      if abs (x - back.(k)) > 6 then
        Alcotest.failf "dct roundtrip error at %d: %d vs %d" k x back.(k))
    blk

let test_mpeg_decoder_matches_encoder_recon () =
  let video = Workloads.Image_gen.video ~seed:4 ~width:16 ~height:16 ~frames:7 in
  let frames =
    Array.concat (List.map (fun im -> im.Workloads.Image_gen.pixels) video)
  in
  let _, recon, decoded = Apps.Mpeg.host_codec frames in
  Alcotest.(check bool) "closed loop" true (recon = decoded)

let test_mpeg_reconstruction_quality () =
  let video = Workloads.Image_gen.video ~seed:4 ~width:16 ~height:16 ~frames:7 in
  let frames =
    Array.concat (List.map (fun im -> im.Workloads.Image_gen.pixels) video)
  in
  let _, _, decoded = Apps.Mpeg.host_codec frames in
  let snr = Fidelity.Snr.snr_db frames decoded in
  Alcotest.(check bool) "codec useful (> 15 dB)" true (snr > 15.0)

(* ------------------------------------------------------------------ *)
(* MCF invariants.                                                     *)

let test_mcf_host_optimal_and_feasible () =
  List.iter
    (fun seed ->
      let inst = Apps.Mcf.instance ~seed in
      let flows, cost, shipped = Apps.Mcf.host_solve inst in
      Alcotest.(check int) "ships full supply"
        inst.Workloads.Network_gen.supply shipped;
      match
        Fidelity.Schedule.check
          (Workloads.Network_gen.to_fidelity_instance inst)
          ~optimal_cost:cost ~flows ~reported_cost:cost
      with
      | Fidelity.Schedule.Optimal -> ()
      | _ -> Alcotest.fail "host solution must be feasible and optimal")
    [ 1; 2; 3; 4 ]

let test_mcf_ssp_is_optimal_vs_bruteforce () =
  (* tiny instance where min cost is computable by hand:
     s->a (2, cost 1), s->b (2, cost 2), a->t (1, cost 1), a->b (2, cost 1),
     b->t (3, cost 1); supply 3.
     Cheapest: s-a-t (1 unit, cost 2); s-a-b-t (1 unit, cost 3);
     s-b-t (1 unit, cost 3) -> total 8. *)
  let inst =
    {
      Workloads.Network_gen.n_nodes = 4;
      arcs = [| (0, 1, 2, 1); (0, 2, 2, 2); (1, 3, 1, 1); (1, 2, 2, 1); (2, 3, 3, 1) |];
      source = 0;
      sink = 3;
      supply = 3;
    }
  in
  let _, cost, shipped = Apps.Mcf.host_solve inst in
  Alcotest.(check int) "ships 3" 3 shipped;
  Alcotest.(check int) "min cost 8" 8 cost

(* ------------------------------------------------------------------ *)
(* GSM invariants.                                                     *)

let test_gsm_codec_quality () =
  let speech = Workloads.Audio_gen.speech ~seed:21 ~samples:640 in
  let _, recon, dec = Apps.Gsm.host_codec speech in
  Alcotest.(check bool) "decoder mirrors encoder" true (recon = dec);
  let snr = Fidelity.Snr.snr_db speech dec in
  Alcotest.(check bool) "codec useful (> 3 dB)" true (snr > 3.0)

let test_gsm_lags_in_range () =
  let speech = Workloads.Audio_gen.speech ~seed:22 ~samples:640 in
  let coded, _, _ = Apps.Gsm.host_codec speech in
  Alcotest.(check bool) "lags in [40,120]" true
    (Array.for_all (fun l -> l >= 40 && l <= 120) coded.Apps.Gsm.lags);
  Alcotest.(check bool) "gains 2-bit" true
    (Array.for_all (fun g -> g >= 0 && g <= 3) coded.Apps.Gsm.gains);
  Alcotest.(check bool) "pulses 4-bit signed" true
    (Array.for_all (fun q -> q >= -7 && q <= 7) coded.Apps.Gsm.pulses)

(* ------------------------------------------------------------------ *)
(* ART invariants.                                                     *)

let test_art_recognizes_trained_patterns () =
  let net = Apps.Art.make_net () in
  Apps.Art.train net;
  (* after training, each pattern matches its best category above the
     vigilance level *)
  Array.iter
    (fun p ->
      let best = ref 0 and bestv = ref (-1.0) in
      for c = 0 to Apps.Art.n_categories - 1 do
        let t = Apps.Art.choice net c p in
        if t > !bestv then begin
          bestv := t;
          best := c
        end
      done;
      Alcotest.(check bool) "match above vigilance" true
        (Apps.Art.match_ratio net !best p >= Apps.Art.vigilance))
    Apps.Art.patterns

let test_art_distinct_categories () =
  let net = Apps.Art.make_net () in
  Apps.Art.train net;
  let cat_of p =
    let best = ref 0 and bestv = ref (-1.0) in
    for c = 0 to Apps.Art.n_categories - 1 do
      let t = Apps.Art.choice net c p in
      if t > !bestv then begin
        bestv := t;
        best := c
      end
    done;
    !best
  in
  let cats = Array.to_list (Array.map cat_of Apps.Art.patterns) in
  Alcotest.(check int) "four distinct categories" 4
    (List.length (List.sort_uniq compare cats))

let test_art_scan_finds_object () =
  (* the golden scan should pick the window where the object was
     embedded; verify via the host for a few seeds *)
  List.iter
    (fun seed ->
      let b = Apps.Art.build ~seed in
      let g = golden b in
      let scan = Apps.Art.scan_of_run b.Apps.App.prog g in
      Alcotest.(check bool) "confident match" true
        (scan.Fidelity.Confidence.confidence > 0.5))
    [ 1; 3; 8 ]

(* ------------------------------------------------------------------ *)
(* Registry.                                                           *)

let test_registry () =
  Alcotest.(check int) "seven apps" 7 (List.length Apps.Registry.all);
  Alcotest.(check (list string)) "names"
    [ "susan"; "mpeg"; "mcf"; "blowfish"; "adpcm"; "gsm"; "art" ]
    Apps.Registry.names;
  Alcotest.(check bool) "find" true (Apps.Registry.find "gsm" <> None);
  Alcotest.(check bool) "find missing" true (Apps.Registry.find "nope" = None)

(* ------------------------------------------------------------------ *)

let () =
  let host_cases =
    List.map
      (fun (app : Apps.App.t) ->
        Alcotest.test_case (app.Apps.App.name ^ " host agreement") `Slow
          (test_host_agreement app))
      Apps.Registry.all
  in
  let self_cases =
    List.map
      (fun (app : Apps.App.t) ->
        Alcotest.test_case (app.Apps.App.name ^ " self-score") `Quick
          (test_self_score app))
      Apps.Registry.all
  in
  Alcotest.run "apps"
    [
      ("host agreement", host_cases);
      ("fidelity self-score", self_cases);
      ( "blowfish",
        [
          Alcotest.test_case "pi constants" `Quick test_blowfish_pi_constants;
          Alcotest.test_case "roundtrip" `Quick test_blowfish_roundtrip_host;
          Alcotest.test_case "avalanche" `Quick test_blowfish_avalanche;
        ] );
      ( "adpcm",
        [
          Alcotest.test_case "reconstruction quality" `Quick
            test_adpcm_reconstruction_quality;
          QCheck_alcotest.to_alcotest adpcm_codes_in_range_prop;
          QCheck_alcotest.to_alcotest adpcm_output_16bit_prop;
        ] );
      ( "susan",
        [
          Alcotest.test_case "finds edges" `Quick test_susan_finds_edges;
          Alcotest.test_case "flat image" `Quick test_susan_flat_image_no_edges;
          Alcotest.test_case "37-point mask" `Quick test_susan_mask_is_37_points;
        ] );
      ( "mpeg",
        [
          Alcotest.test_case "dct roundtrip" `Quick test_mpeg_dct_roundtrip;
          Alcotest.test_case "closed loop" `Quick
            test_mpeg_decoder_matches_encoder_recon;
          Alcotest.test_case "quality" `Quick test_mpeg_reconstruction_quality;
        ] );
      ( "mcf",
        [
          Alcotest.test_case "optimal and feasible" `Quick
            test_mcf_host_optimal_and_feasible;
          Alcotest.test_case "known optimum" `Quick
            test_mcf_ssp_is_optimal_vs_bruteforce;
        ] );
      ( "gsm",
        [
          Alcotest.test_case "codec quality" `Quick test_gsm_codec_quality;
          Alcotest.test_case "field ranges" `Quick test_gsm_lags_in_range;
        ] );
      ( "art",
        [
          Alcotest.test_case "recognizes patterns" `Quick
            test_art_recognizes_trained_patterns;
          Alcotest.test_case "distinct categories" `Quick
            test_art_distinct_categories;
          Alcotest.test_case "scan confidence" `Quick test_art_scan_finds_object;
        ] );
      ("registry", [ Alcotest.test_case "contents" `Quick test_registry ]);
    ]
