lib/ir/func.ml: Array Format Hashtbl Instr List Printf Reg Ty
