(* Dominator tree by the classic Cooper–Harvey–Kennedy iterative
   algorithm over reverse postorder. Exposed for loop detection and as
   a structural invariant target for property tests. *)

type t = {
  cfg : Ir.Cfg.t;
  idom : int array;  (* immediate dominator of each block; idom.(0) = 0 *)
  rpo_index : int array;
}

let compute (cfg : Ir.Cfg.t) =
  let n = Ir.Cfg.n_blocks cfg in
  let order = Ir.Cfg.reverse_postorder cfg in
  let rpo_index = Array.make n max_int in
  List.iteri (fun i b -> rpo_index.(b) <- i) order;
  let idom = Array.make n (-1) in
  if n > 0 then idom.(0) <- 0;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_index.(!a) > rpo_index.(!b) do
        a := idom.(!a)
      done;
      while rpo_index.(!b) > rpo_index.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> 0 then begin
          let preds =
            List.filter (fun p -> idom.(p) >= 0) (Ir.Cfg.block cfg b).Ir.Cfg.preds
          in
          match preds with
          | [] -> ()  (* unreachable *)
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(b) <> new_idom then begin
              idom.(b) <- new_idom;
              changed := true
            end
        end)
      order
  done;
  { cfg; idom; rpo_index }

let idom t b = if t.idom.(b) < 0 then None else Some t.idom.(b)

let dominates t a b =
  (* Walk idom chain from [b] up to the entry. *)
  let rec up x = if x = a then true else if x = 0 then a = 0 else up t.idom.(x) in
  if t.idom.(b) < 0 then false else up b

(* Back edges (src, dst) where dst dominates src: natural-loop headers. *)
let back_edges t =
  let edges = ref [] in
  Array.iter
    (fun blk ->
      List.iter
        (fun s ->
          if t.idom.(blk.Ir.Cfg.id) >= 0 && dominates t s blk.Ir.Cfg.id then
            edges := (blk.Ir.Cfg.id, s) :: !edges)
        blk.Ir.Cfg.succs)
    t.cfg.Ir.Cfg.blocks;
  !edges
