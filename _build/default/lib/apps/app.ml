(* Common shape of a benchmark application.

   [build ~seed] generates a deterministic workload, bakes it into the
   program's initialized globals, and returns the compiled program
   together with its fidelity scorer. Scores always compare an injected
   run against the fault-free golden run of the *same* built instance,
   exactly as the paper compares corrupted output against correct
   output. *)

type built = {
  app_name : string;
  prog : Ir.Prog.t;
  fidelity_name : string;      (* e.g. "PSNR", "% bytes correct" *)
  fidelity_units : string;     (* "dB", "%", ... *)
  higher_is_better : bool;
  threshold : float option;    (* paper's subjective acceptability bound *)
  (* Fidelity of an injected run against the golden run. Both arguments
     must be Completed results of the same built program. *)
  score : golden:Sim.Interp.result -> Sim.Interp.result -> float;
  (* Does the golden (fault-free) run agree with the pure-OCaml host
     reference implementation? Used as an integration oracle. *)
  host_check : Sim.Interp.result -> (unit, string) result;
}

type t = {
  name : string;
  description : string;
  source : string;  (* which suite the paper took it from *)
  build : seed:int -> built;
}

let meets (b : built) value =
  match b.threshold with
  | None -> true
  | Some thr -> if b.higher_is_better then value >= thr else value <= thr

(* Shared helpers for app implementations. *)

let clamp lo hi v = max lo (min hi v)

let ints_of_array (a : int array) = Array.map Int32.of_int a

(* Extract an int global from a finished run. *)
let out_ints (r : Sim.Interp.result) prog name =
  Sim.Memory.read_global_ints r.Sim.Interp.memory prog name

let out_flts (r : Sim.Interp.result) prog name =
  Sim.Memory.read_global_flts r.Sim.Interp.memory prog name
