(* Fault-injection campaigns: the experimental loop of the paper.

   A [target] bundles a compiled program with its tagging analysis and
   a fault-free baseline run per policy. Each trial draws a fresh plan
   (deterministically from [seed] and the trial number), executes, and
   classifies the outcome. "Infinite execution" is a dynamic count
   above [timeout_factor] x the fault-free count. *)

type target = {
  code : Sim.Code.t;
  tagging : Tagging.t;
  baseline : Sim.Interp.result;  (* fault-free reference run *)
  lenient : bool;                (* sim-safe sparse-memory model *)
  profile_memo : (bool array array, int) Hashtbl.t;
      (* policy mask -> injectable_total: policies with identical masks
         share one profiling run *)
}

type prepared = {
  target : target;
  policy : Policy.t;
  tags : bool array array;
  injectable_total : int;  (* dynamic injectable instructions under policy *)
  budget : int;
}

type trial = {
  index : int;
  outcome : Outcome.t;
  faults_requested : int;
  faults_landed : int;
}

type summary = {
  trials : trial list;
  n : int;
  crashes : int;
  infinite : int;
  completed : int;
}

let timeout_factor = 10

(* [lenient] defaults to true: the paper ran on SimpleScalar sim-safe,
   whose sparse memory does not fault wild accesses. *)
let of_prog ?protect_addresses ?(lenient = true) (prog : Ir.Prog.t) =
  let code = Sim.Code.of_prog prog in
  let tagging = Tagging.compute ?protect_addresses prog in
  let baseline = Sim.Interp.run_exn ~count_exec:true code in
  { code; tagging; baseline; lenient; profile_memo = Hashtbl.create 4 }

let prepare (t : target) (policy : Policy.t) =
  let tags = Tagging.mask t.tagging policy in
  (* Profiling pass: count dynamic injectable instructions. Memoized on
     the policy mask — distinct policies with the same mask (and
     repeated [prepare] calls) share one profiling interpretation. *)
  let injectable_total =
    match Hashtbl.find_opt t.profile_memo tags with
    | Some n -> n
    | None ->
      let injection = Fault_model.profiling_injection ~tags in
      let r = Sim.Interp.run ~injection t.code in
      let n =
        match r.Sim.Interp.outcome with
        | Sim.Interp.Done _ -> r.Sim.Interp.injectable_seen
        | _ -> failwith "profiling run failed"
      in
      Hashtbl.replace t.profile_memo tags n;
      n
  in
  {
    target = t;
    policy;
    tags;
    injectable_total;
    budget = timeout_factor * t.baseline.Sim.Interp.dyn_count;
  }

let run_trial (p : prepared) ~errors ~rng ~index : trial =
  let plan =
    Fault_model.make_plan ~rng ~injectable_total:p.injectable_total ~errors
  in
  let injection = Fault_model.injection ~tags:p.tags ~plan in
  let r =
    Sim.Interp.run ~injection ~lenient:p.target.lenient ~budget:p.budget
      p.target.code
  in
  {
    index;
    outcome = Outcome.of_result r;
    faults_requested = errors;
    faults_landed = r.Sim.Interp.faults_landed;
  }

(* Trial [i]'s RNG depends only on [(seed, i, errors, policy)] — not on
   any other trial — so trials may run in any order, on any domain, and
   still produce bit-exact results. [Policy.seed_tag] replaces the old
   [Hashtbl.hash policy] component with a stable explicit encoding
   (frozen to the same values, so historic outputs are unchanged). *)
let trial_rng ~seed ~errors ~policy index =
  Random.State.make [| seed; index; errors; Policy.seed_tag policy |]

let run ?jobs (p : prepared) ~errors ~trials ~seed : summary =
  let results =
    Pool.map_n ?jobs trials (fun i ->
        let rng = trial_rng ~seed ~errors ~policy:p.policy i in
        run_trial p ~errors ~rng ~index:i)
  in
  let trials_list = Array.to_list results in
  let count f = List.length (List.filter f trials_list) in
  {
    trials = trials_list;
    n = List.length trials_list;
    crashes =
      count (fun t -> match t.outcome with Outcome.Crash _ -> true | _ -> false);
    infinite = count (fun t -> t.outcome = Outcome.Infinite);
    completed =
      count (fun t ->
          match t.outcome with Outcome.Completed _ -> true | _ -> false);
  }

let pct_catastrophic (s : summary) =
  if s.n = 0 then 0.0
  else 100.0 *. float_of_int (s.crashes + s.infinite) /. float_of_int s.n

(* Fidelity of completed trials, via an application-supplied scorer on
   the final memory image. *)
let fidelities (s : summary) ~(score : Sim.Interp.result -> float) =
  List.filter_map
    (fun t ->
      match t.outcome with
      | Outcome.Completed r -> Some (score r)
      | Outcome.Crash _ | Outcome.Infinite -> None)
    s.trials

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
