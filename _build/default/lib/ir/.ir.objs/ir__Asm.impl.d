lib/ir/asm.ml: Buffer Format Func Instr Int32 List Option Printf Prog Reg String Ty
