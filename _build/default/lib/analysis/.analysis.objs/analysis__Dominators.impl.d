lib/analysis/dominators.ml: Array Ir List
