lib/analysis/reaching.ml: Array Dataflow Hashtbl Ir List Option
