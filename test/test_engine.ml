(* Cross-engine differential suite: the threaded-closure fast engine
   (Sim.Interp.compile + image machines) versus the reference
   match-dispatch loop must be bit-identical on every observable —
   outcome, dynamic and injectable counters, trap provenance,
   landed-site attribution, the full memory image, campaign records
   and fault flows — over random Mlang programs, random fault plans,
   and pause/capture/resume at random ordinal boundaries.

   The generator exercises every instruction class the compiler emits:
   integer arithmetic and logic (including div/rem made golden-safe by
   [|! 1] but fault-fragile), shifts, comparisons, if/while/for
   control, word and byte loads/stores, float arithmetic with both
   conversions, calls and recursion. Traps, timeouts and stack
   overflow are reachable under injection (and directly, in the
   directed cases below). *)

open Mlang.Dsl

(* ------------------------------------------------------------------ *)
(* Random program generator.                                           *)

let pick rng l = List.nth l (Random.State.int rng (List.length l))

let rec gen_expr rng vars depth =
  if depth = 0 then
    match Random.State.int rng 4 with
    | 0 -> i (Random.State.int rng 201 - 100)
    | 1 | 2 -> v (pick rng vars)
    | _ -> "buf".%(v (pick rng vars) &! i 7)
  else
    let a = gen_expr rng vars (depth - 1)
    and b = gen_expr rng vars (depth - 1) in
    match Random.State.int rng 12 with
    | 0 -> a +! b
    | 1 -> a -! b
    | 2 -> a *! b
    | 3 -> a /! (b |! i 1) (* odd divisor: golden-safe, fault-fragile *)
    | 4 -> a %! (b |! i 1)
    | 5 -> a &! b
    | 6 -> a |! b
    | 7 -> a ^! b
    | 8 -> a <<! i (Random.State.int rng 8)
    | 9 -> a >>>! i (Random.State.int rng 8)
    | 10 -> a <! b
    | _ -> neg a

let gen_prog seed =
  let rng = Random.State.make [| 0x9e3; seed |] in
  let e vars d = gen_expr rng vars d in
  let iters = 3 + Random.State.int rng 6 in
  program
    [
      garray "out" 4;
      garray "buf" 8;
      garray_b "bytes" 8;
      garray_f "fout" 2;
    ]
    [
      fn "mix" [ p_int "a"; p_int "b" ] ~ret:(Some Mlang.Ast.TInt)
        [
          let_ "t0" (e [ "a"; "b" ] 2);
          let_ "t1" (e [ "a"; "b"; "t0" ] 2);
          when_ (v "t1" >! v "t0") [ sto "buf" (v "t0" &! i 7) (v "t1") ];
          if_
            (v "t0" <>! i 0)
            [ ret (v "t1" %! v "t0") ]
            [ ret (v "t1" +! v "a") ];
        ];
      fn "rdown" [ p_int "n" ] ~ret:(Some Mlang.Ast.TInt)
        [
          if_
            (v "n" <=! i 0)
            [ ret (i 0) ]
            [ ret (i 1 +! call "rdown" [ v "n" -! i 1 ]) ];
        ];
      fn "main" [] ~ret:(Some Mlang.Ast.TInt)
        [
          let_ "x" (i (1 + Random.State.int rng 50));
          let_ "y" (i (1 + Random.State.int rng 50));
          for_ "k" (i 0) (i iters)
            [
              set "x" (call "mix" [ v "x" +! v "k"; v "y" ]);
              sto "buf" (v "k" &! i 7) (v "x" ^! v "k");
              sto "bytes" (v "k" &! i 7) (v "x");
              set "y" (v "y" +! "bytes".%(v "k" &! i 7));
            ];
          let_ "n" (i (2 + Random.State.int rng 5));
          while_ (v "n" >! i 0)
            [
              set "y" (e [ "x"; "y"; "n" ] 2);
              set "n" (v "n" -! i 1);
            ];
          let_ "fx" (i2f (v "x") /!. f 3.5);
          let_ "fy" ((v "fx" *!. f 0.25) -!. i2f (v "n"));
          sto "fout" (i 0) (v "fx" +!. v "fy");
          sto "fout" (i 1) (v "fy" *!. f 4.0);
          set "y" (v "y" +! f2i (v "fx") +! (v "fy" <! f 1000.0));
          let_ "r" (call "rdown" [ i (3 + Random.State.int rng 5) ]);
          sto "out" (i 0) (v "x");
          sto "out" (i 1) (v "y");
          sto "out" (i 2) (v "r");
          sto "out" (i 3) ("buf".%(i 3) +! "buf".%(i 5));
          ret (v "x" +! v "y");
        ];
    ]

(* ------------------------------------------------------------------ *)
(* Per-program context: compiled code, densest tag mask, fast-engine
   image, fault-free baseline (reference loop) and the campaign's
   timeout budget. Cached per generator seed so the qcheck properties
   do not recompile on every case. *)

type ctx = {
  prog : Ir.Prog.t;
  code : Sim.Code.t;
  tags : bool array array;
  image : Sim.Interp.image;
  total : int;  (* injectable pool size *)
  budget : int;
}

let ctx_cache : (int, ctx) Hashtbl.t = Hashtbl.create 16

let ctx_of_seed seed =
  match Hashtbl.find_opt ctx_cache seed with
  | Some c -> c
  | None ->
    let prog = Mlang.Compile.to_ir (gen_prog seed) in
    let code = Sim.Code.of_prog prog in
    let tagging = Core.Tagging.compute prog in
    let tags = Core.Tagging.mask tagging Core.Policy.Protect_nothing in
    let image = Sim.Interp.compile ~tags code in
    let baseline =
      Sim.Interp.run
        ~injection:(Core.Fault_model.profiling_injection ~tags)
        ~lenient:true code
    in
    let c =
      {
        prog;
        code;
        tags;
        image;
        total = baseline.Sim.Interp.injectable_seen;
        budget =
          Core.Campaign.timeout_factor * baseline.Sim.Interp.dyn_count;
      }
    in
    Hashtbl.replace ctx_cache seed c;
    c

let outcome_str (r : Sim.Interp.result) =
  match r.Sim.Interp.outcome with
  | Sim.Interp.Done x ->
    "done:" ^ Option.fold ~none:"()" ~some:Sim.Value.to_string x
  | Sim.Interp.Trapped t ->
    "trap:" ^ Sim.Trap.to_string t
    ^ (match r.Sim.Interp.trap_site with
       | Some (fname, pc) -> Printf.sprintf "@%s+%d" fname pc
       | None -> "@?")
  | Sim.Interp.Timeout -> "timeout"

(* Full-result fingerprint: every observable the engines must agree
   on, the memory image (word, byte and float globals) included. *)
let fingerprint ctx (r : Sim.Interp.result) =
  let ints name =
    String.concat ","
      (Array.to_list
         (Array.map string_of_int
            (Sim.Memory.read_global_ints r.Sim.Interp.memory ctx.prog name)))
  in
  let flts name =
    String.concat ","
      (Array.to_list
         (Array.map (Printf.sprintf "%h")
            (Sim.Memory.read_global_flts r.Sim.Interp.memory ctx.prog name)))
  in
  Printf.sprintf "%s/%d/%d/%d/[%s]/out=%s/buf=%s/bytes=%s/fout=%s"
    (outcome_str r) r.Sim.Interp.dyn_count r.Sim.Interp.injectable_seen
    r.Sim.Interp.faults_landed
    (String.concat ";"
       (Array.to_list
          (Array.map
             (fun (fname, pc) -> Printf.sprintf "%s+%d" fname pc)
             r.Sim.Interp.landed_sites)))
    (ints "out") (ints "buf") (ints "bytes") (flts "fout")

let run_engine ctx ~engine plan =
  let injection = Sim.Interp.injection ~tags:ctx.tags ~plan in
  let image =
    match engine with Sim.Interp.Fast -> Some ctx.image | Sim.Interp.Ref -> None
  in
  Sim.Interp.run ?image ~injection ~lenient:true ~budget:ctx.budget ctx.code

let plan_of ctx ~seed ~errors =
  let rng = Random.State.make [| 0x51de; seed; errors |] in
  Hashtbl.fold
    (fun o b acc -> (o, b) :: acc)
    (Core.Fault_model.make_plan ~rng ~injectable_total:ctx.total ~errors)
    []

(* ------------------------------------------------------------------ *)
(* Property: raw runs agree on random programs x random plans.         *)

let run_differential =
  QCheck.Test.make ~name:"fast == ref on random programs x random plans"
    ~count:120
    QCheck.(triple (int_bound 15) (int_bound 10_000) (int_range 0 12))
    (fun (pseed, fseed, errors) ->
      let ctx = ctx_of_seed pseed in
      let plan = plan_of ctx ~seed:fseed ~errors in
      fingerprint ctx (run_engine ctx ~engine:Sim.Interp.Ref plan)
      = fingerprint ctx (run_engine ctx ~engine:Sim.Interp.Fast plan))

(* Property: pause/capture/resume at a random ordinal boundary, in all
   four engine pairings (snapshots carry no engine state, so a capture
   under one engine resumes under the other). The plan is restricted
   to ordinals at or past the pause point — capture is only legal on a
   fault-free prefix. *)

let pause_resume_cross =
  QCheck.Test.make
    ~name:"capture/resume at random boundaries, all engine pairings"
    ~count:60
    QCheck.(triple (int_bound 15) (int_bound 10_000) (int_range 0 8))
    (fun (pseed, fseed, errors) ->
      let ctx = ctx_of_seed pseed in
      let p = Random.State.int (Random.State.make [| fseed |]) (ctx.total + 1) in
      let plan =
        List.filter (fun (o, _) -> o >= p) (plan_of ctx ~seed:fseed ~errors)
      in
      let injection = Sim.Interp.injection ~tags:ctx.tags ~plan in
      let golden = fingerprint ctx (run_engine ctx ~engine:Sim.Interp.Ref plan) in
      let image_of = function
        | Sim.Interp.Fast -> Some ctx.image
        | Sim.Interp.Ref -> None
      in
      List.for_all
        (fun (cap_e, res_e) ->
          let m =
            Sim.Interp.machine ?image:(image_of cap_e) ~injection
              ~lenient:true ~budget:ctx.budget ctx.code
          in
          let r =
            match Sim.Interp.advance m ~pause_at:p with
            | `Halted -> Sim.Interp.finish m
            | `Paused ->
              let s = Sim.Interp.capture m in
              assert (Sim.Interp.snapshot_ordinal s = p);
              Sim.Interp.finish
                (Sim.Interp.resume ?image:(image_of res_e) ~injection s)
          in
          fingerprint ctx r = golden)
        Sim.Interp.
          [ (Ref, Ref); (Ref, Fast); (Fast, Ref); (Fast, Fast) ])

(* ------------------------------------------------------------------ *)
(* Campaign level: trial records — outcome, counters, landed faults,
   fidelity, fault flow — identical between engine targets, for every
   jobs x checkpoint-stride combination. *)

let flow_str = function
  | None -> "-"
  | Some (s : Sim.Taint.summary) ->
    Printf.sprintf "%s:%d:%d:%d:%d:%d:%s"
      (Sim.Taint.flow_to_string s.Sim.Taint.flow)
      s.Sim.Taint.control_free s.Sim.Taint.control_via_memory
      s.Sim.Taint.address_hits s.Sim.Taint.trap_operand_hits
      s.Sim.Taint.memory_hits
      (match s.Sim.Taint.first_control with
       | None -> "-"
       | Some (fname, pc) -> Printf.sprintf "%s+%d" fname pc)

let record_str (t : Core.Campaign.trial) =
  Printf.sprintf "%d/%s/%d/%d/%d/%s/%s" t.Core.Campaign.index
    (Core.Outcome.describe t.Core.Campaign.outcome)
    t.Core.Campaign.dyn_count t.Core.Campaign.faults_planned
    t.Core.Campaign.faults_landed
    (match t.Core.Campaign.fidelity with
     | None -> "-"
     | Some x -> Printf.sprintf "%h" x)
    (flow_str t.Core.Campaign.fault_flow)

let campaign_records ?taint target ~stride ~jobs =
  let p =
    Core.Campaign.prepare ~checkpoint_stride:stride target
      Core.Policy.Protect_nothing
  in
  let s = Core.Campaign.run ?taint ~jobs p ~errors:3 ~trials:8 ~seed:11 in
  String.concat "|" (List.map record_str s.Core.Campaign.trials)

let test_campaign_grid () =
  let prog = (ctx_of_seed 3).prog in
  let fast = Core.Campaign.of_prog ~engine:Sim.Interp.Fast prog in
  let ref_ = Core.Campaign.of_prog ~engine:Sim.Interp.Ref prog in
  let canonical = campaign_records ref_ ~stride:0 ~jobs:1 in
  List.iter
    (fun jobs ->
      List.iter
        (fun stride ->
          Alcotest.(check string)
            (Printf.sprintf "ref jobs=%d stride=%d" jobs stride)
            canonical
            (campaign_records ref_ ~stride ~jobs);
          Alcotest.(check string)
            (Printf.sprintf "fast jobs=%d stride=%d" jobs stride)
            canonical
            (campaign_records fast ~stride ~jobs))
        [ 0; 1; 3; 5 ])
    [ 1; 2; 4 ]

(* Taint trials always execute on the reference loop (the shadow twin
   is not compiled), but a fast-engine target must still produce the
   identical records and fault flows. *)
let test_campaign_taint_flows () =
  let prog = (ctx_of_seed 5).prog in
  let fast = Core.Campaign.of_prog ~engine:Sim.Interp.Fast prog in
  let ref_ = Core.Campaign.of_prog ~engine:Sim.Interp.Ref prog in
  Alcotest.(check string)
    "taint records agree across engine targets"
    (campaign_records ~taint:true ref_ ~stride:0 ~jobs:2)
    (campaign_records ~taint:true fast ~stride:0 ~jobs:2)

(* ------------------------------------------------------------------ *)
(* Directed trap/timeout parity: each abnormal-outcome class, with its
   provenance, agrees between engines without any injection.           *)

let check_parity name prog =
  let code = Sim.Code.of_prog (Mlang.Compile.to_ir prog) in
  let image = Sim.Interp.compile code in
  let ctx_like r = (outcome_str r, r.Sim.Interp.dyn_count) in
  let run image = Sim.Interp.run ?image ~lenient:true ~budget:2_000 code in
  Alcotest.(check (pair string int))
    name
    (ctx_like (run None))
    (ctx_like (run (Some image)))

let test_abnormal_parity () =
  check_parity "div by zero"
    (program
       [ garray "out" 1 ]
       [
         fn "main" [] ~ret:(Some Mlang.Ast.TInt)
           [ let_ "z" (i 0); ret (i 7 /! v "z") ];
       ]);
  check_parity "out-of-bounds store"
    (program
       [ garray "out" 2 ]
       [
         fn "main" [] ~ret:(Some Mlang.Ast.TInt)
           [ let_ "k" (i 9); sto "out" (v "k") (i 1); ret (i 0) ];
       ]);
  check_parity "timeout"
    (program
       [ garray "out" 1 ]
       [
         fn "main" [] ~ret:(Some Mlang.Ast.TInt)
           [
             let_ "x" (i 1);
             while_ (v "x" >! i 0) [ set "x" (v "x" +! i 1) ];
             ret (i 0);
           ];
       ]);
  check_parity "stack overflow"
    (program
       [ garray "out" 1 ]
       [
         fn "deep" [ p_int "n" ] ~ret:(Some Mlang.Ast.TInt)
           [ ret (call "deep" [ v "n" +! i 1 ]) ];
         fn "main" [] ~ret:(Some Mlang.Ast.TInt)
           [ ret (call "deep" [ i 0 ]) ];
       ])

(* ------------------------------------------------------------------ *)
(* Guards: the fast engine's compile-time binding is enforced.         *)

let test_engine_guards () =
  let ctx = ctx_of_seed 0 in
  Alcotest.(check string) "engine names" "fast,ref"
    (String.concat ","
       (List.map Sim.Interp.engine_name [ Sim.Interp.Fast; Sim.Interp.Ref ]));
  (* The injection's tag mask must be the compiled one (physical
     equality): a structurally equal copy is rejected. *)
  let copy = Array.map Array.copy ctx.tags in
  Alcotest.(check bool) "foreign tag mask rejected" true
    (try
       ignore
         (Sim.Interp.machine ~image:ctx.image
            ~injection:(Sim.Interp.injection ~tags:copy ~plan:[])
            ~lenient:true ctx.code);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "count_exec stays on the reference loop" true
    (try
       ignore
         (Sim.Interp.machine ~image:ctx.image ~count_exec:true ~lenient:true
            ctx.code);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "taint stays on the reference loop" true
    (try
       ignore (Sim.Interp.run ~image:ctx.image ~taint:true ctx.code);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "engine"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest run_differential;
          QCheck_alcotest.to_alcotest pause_resume_cross;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "records over jobs x strides" `Quick
            test_campaign_grid;
          Alcotest.test_case "taint fault flows" `Quick
            test_campaign_taint_flows;
        ] );
      ( "directed",
        [
          Alcotest.test_case "abnormal outcome parity" `Quick
            test_abnormal_parity;
          Alcotest.test_case "engine guards" `Quick test_engine_guards;
        ] );
    ]
