(* Compositional campaign memoization — ROADMAP item 2, the
   FastFlip-style decomposition.

   A monolithic campaign is an opaque loop: trials × policy × app, all
   re-run on any change. This module splits it along the program's
   sections (Analysis.Section — functions, with composed content
   hashes): each trial is attributed to the section that *owns* its
   first planned fault ordinal, trials group by owning section, and
   each group's records are stored in a content-addressed on-disk cache
   keyed by everything that determines them:

     key = H( etap-cache/1,
              section_hash,                 composed over the call subtree
              policy, errors, seed,         the fault model coordinates
              injectable_total, budget,     pool geometry (plans + timeout)
              lenient, scored, salt,        memory model / scorer / workload id
              golden digest + dyn count,    baseline behaviour of the program
              per-trial (index, first ordinal, entry-state digest) )

   The entry-state digest is the full architectural state (frames keyed
   by *local* section hashes, registers, counters, memory image) of the
   checkpoint the trial resumes from. After an edit, a group whose
   owning section's call subtree, entry state and plan geometry are all
   unchanged re-reads its records from the cache; only dirty groups
   re-execute — through the exact same [Campaign.run_trial_skip] path a
   monolithic run uses, so composed summaries are bit-identical to
   monolithic ones whenever every group is either clean-by-key or
   re-run (see DESIGN.md §15 for the exactness envelope).

   Everything here is deterministic: group membership, keys and record
   assembly depend only on (prepared, errors, trials, seed, salt,
   scorer presence), never on jobs, wall-clock or cache state. *)

module J = Report.Json

type stats = {
  sections : int;  (* section groups = sections owning >= 1 trial *)
  hits : int;  (* groups served entirely from the cache *)
  misses : int;  (* groups executed and stored *)
  trials_reused : int;
  trials_run : int;
}

let zero_stats =
  { sections = 0; hits = 0; misses = 0; trials_reused = 0; trials_run = 0 }

(* ------------------------------ store ------------------------------ *)

module Store = struct
  let schema = "etap-cache/1"

  type t = { root : string }

  let rec mkdir_p dir =
    if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
    then begin
      mkdir_p (Filename.dirname dir);
      try Sys.mkdir dir 0o755 with Sys_error _ -> ()
    end

  let open_ root =
    mkdir_p root;
    { root }

  let root t = t.root

  (* Two-level fan-out by key prefix, one JSON document per entry —
     the usual content-addressed layout (git-object style), so the
     root directory stays listable at any campaign size. *)
  let path t ~key =
    Filename.concat
      (Filename.concat t.root (String.sub key 0 2))
      (String.sub key 2 (String.length key - 2) ^ ".json")

  (* Successful loads touch the entry's mtime, making mtime a
     last-use stamp — the recency order [gc] evicts by. Failure to
     touch (read-only store, concurrent eviction) is harmless: the
     entry just keeps its older stamp. *)
  let touch p = try Unix.utimes p 0.0 0.0 with Unix.Unix_error _ -> ()

  let load t ~key : J.t option =
    let p = path t ~key in
    if not (Sys.file_exists p) then None
    else
      match
        In_channel.with_open_bin p In_channel.input_all |> J.of_string
      with
      | Ok v when J.member "schema" v = Some (J.Str schema) ->
        touch p;
        Some v
      | Ok _ | Error _ -> None  (* foreign schema / corrupt: treat as miss *)
      | exception Sys_error _ -> None

  (* Atomic publish: write to a temp file in the same directory, then
     rename over the final path. A concurrent reader sees either the
     old entry or the new one, never a torn write. The temp name is
     unique per (process, domain, save) — a shared [p ^ ".tmp"] would
     let two concurrent writers of the same group key truncate each
     other's half-written file and rename torn JSON into place, voiding
     the atomic-rename contract the loaders rely on. Concurrent saves
     of the same key are idempotent (keys are content addresses), so
     whichever rename lands last wins harmlessly. *)
  let tmp_counter = Atomic.make 0

  let save t ~key (v : J.t) =
    let p = path t ~key in
    mkdir_p (Filename.dirname p);
    let tmp =
      Printf.sprintf "%s.%d.%d.%d.tmp" p (Unix.getpid ())
        (Domain.self () :> int)
        (Atomic.fetch_and_add tmp_counter 1)
    in
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc (J.to_string v));
    Sys.rename tmp p

  (* ------------------------------ gc ------------------------------- *)

  type gc_stats = {
    gc_scanned : int;
    gc_evicted : int;
    gc_kept : int;
    gc_bytes_before : int;
    gc_bytes_after : int;
  }

  (* LRU-by-mtime eviction. Two independent bounds, both optional:
     entries older than [max_age_days] go first, then oldest-first
     until the store fits under [max_bytes]. [load] touches entries on
     every hit, so mtime order is recency-of-use order. Stale temp
     files (crashed writers) older than an hour are reaped on the way;
     younger ones may belong to an in-flight [save] and are left
     alone. Everything here tolerates concurrent mutation of the
     store — an entry vanishing mid-scan is simply not counted. *)
  let tmp_grace_s = 3600.0

  (* One pass over the two-level prefix tree: every [.json] entry as
     [(path, bytes, mtime)], unsorted. [reap_tmp] (the gc pass)
     additionally removes stale temp files from crashed writers on the
     way. Shared by [gc] and the offline store summary ([etap cache
     stats], the daemon's [stats] store section) so every consumer
     counts exactly what eviction would see. *)
  let scan_entries ?(reap_tmp = false) t : (string * int * float) list =
    let now = Unix.gettimeofday () in
    let entries = ref [] in
    let scan_dir dir =
      match Sys.readdir dir with
      | names ->
        Array.iter
          (fun name ->
            let p = Filename.concat dir name in
            match Unix.stat p with
            | { Unix.st_kind = Unix.S_REG; st_size; st_mtime; _ } ->
              if Filename.check_suffix name ".json" then
                entries := (p, st_size, st_mtime) :: !entries
              else if
                reap_tmp
                && Filename.check_suffix name ".tmp"
                && now -. st_mtime > tmp_grace_s
              then (try Sys.remove p with Sys_error _ -> ())
            | _ | (exception Unix.Unix_error _) -> ())
          names
      | exception Sys_error _ -> ()
    in
    (match Sys.readdir t.root with
     | prefixes ->
       Array.iter
         (fun d ->
           let p = Filename.concat t.root d in
           if try Sys.is_directory p with Sys_error _ -> false then
             scan_dir p)
         prefixes
     | exception Sys_error _ -> ());
    !entries

  let scan t = scan_entries t

  let gc ?max_bytes ?max_age_days t : gc_stats =
    let now = Unix.gettimeofday () in
    (* Oldest first; ties break on path so the order is stable. *)
    let by_age =
      List.sort
        (fun (pa, _, ma) (pb, _, mb) ->
          match Float.compare ma mb with 0 -> String.compare pa pb | c -> c)
        (scan_entries ~reap_tmp:true t)
    in
    let bytes_before =
      List.fold_left (fun a (_, sz, _) -> a + sz) 0 by_age
    in
    let cutoff =
      match max_age_days with
      | None -> Float.neg_infinity
      | Some d -> now -. (d *. 86400.0)
    in
    let evicted = ref 0 in
    let live = ref bytes_before in
    let over_budget () =
      match max_bytes with None -> false | Some b -> !live > b
    in
    List.iter
      (fun (p, sz, mtime) ->
        if mtime < cutoff || over_budget () then begin
          (try Sys.remove p with Sys_error _ -> ());
          incr evicted;
          live := !live - sz
        end)
      by_age;
    (* Prefix directories drained by eviction fold away. *)
    (match Sys.readdir t.root with
     | prefixes ->
       Array.iter
         (fun d ->
           let p = Filename.concat t.root d in
           if
             (try Sys.is_directory p && Sys.readdir p = [||]
              with Sys_error _ -> false)
           then try Unix.rmdir p with Unix.Unix_error _ -> ())
         prefixes
     | exception Sys_error _ -> ());
    let scanned = List.length by_age in
    {
      gc_scanned = scanned;
      gc_evicted = !evicted;
      gc_kept = scanned - !evicted;
      gc_bytes_before = bytes_before;
      gc_bytes_after = !live;
    }
end

(* ----------------------- record serialization --------------------- *)

exception Bad_entry

(* Trial records must roundtrip bit-exactly — the composed-vs-monolithic
   equivalence suite compares them field by field. Floats therefore
   serialize as hexfloat strings ("%h"), which [float_of_string] reads
   back to the identical bits (including nan and infinities), never
   through decimal shortening. *)
let hexfloat x = Printf.sprintf "%h" x

let json_of_trap (t : Sim.Trap.t) : (string * J.t) list =
  let arg =
    match t with
    | Sim.Trap.Out_of_bounds a | Sim.Trap.Unaligned a
    | Sim.Trap.Type_confusion a | Sim.Trap.Call_stack_overflow a ->
      J.Int a
    | Sim.Trap.Float_to_int_overflow x -> J.Str (hexfloat x)
    | Sim.Trap.Division_by_zero | Sim.Trap.Null_access -> J.Null
  in
  [ ("trap", J.Str (Sim.Trap.kind t)); ("arg", arg) ]

let trap_of_json ~kind ~arg : Sim.Trap.t =
  let int_arg () = match arg with J.Int a -> a | _ -> raise Bad_entry in
  match kind with
  | "out_of_bounds" -> Sim.Trap.Out_of_bounds (int_arg ())
  | "unaligned" -> Sim.Trap.Unaligned (int_arg ())
  | "div_by_zero" -> Sim.Trap.Division_by_zero
  | "type_confusion" -> Sim.Trap.Type_confusion (int_arg ())
  | "f2i_overflow" -> (
    match arg with
    | J.Str s -> Sim.Trap.Float_to_int_overflow (float_of_string s)
    | _ -> raise Bad_entry)
  | "stack_overflow" -> Sim.Trap.Call_stack_overflow (int_arg ())
  | "null_access" -> Sim.Trap.Null_access
  | _ -> raise Bad_entry

let json_of_outcome (o : Outcome.t) : J.t =
  match o with
  | Outcome.Completed -> J.Str "completed"
  | Outcome.Infinite -> J.Str "infinite"
  | Outcome.Crash (trap, site) ->
    let site_json =
      match site with
      | None -> J.Null
      | Some s ->
        J.Obj
          [ ("func", J.Str s.Outcome.func); ("pc", J.Int s.Outcome.pc) ]
    in
    J.Obj (json_of_trap trap @ [ ("site", site_json) ])

let outcome_of_json (v : J.t) : Outcome.t =
  match v with
  | J.Str "completed" -> Outcome.Completed
  | J.Str "infinite" -> Outcome.Infinite
  | J.Obj _ ->
    let kind =
      match J.member "trap" v with Some (J.Str k) -> k | _ -> raise Bad_entry
    in
    let arg = Option.value ~default:J.Null (J.member "arg" v) in
    let site =
      match J.member "site" v with
      | Some (J.Obj _ as s) -> (
        match (J.member "func" s, J.member "pc" s) with
        | Some (J.Str func), Some (J.Int pc) -> Some { Outcome.func; pc }
        | _ -> raise Bad_entry)
      | Some J.Null | None -> None
      | Some _ -> raise Bad_entry
    in
    Outcome.Crash (trap_of_json ~kind ~arg, site)
  | _ -> raise Bad_entry

let trial_to_json (t : Campaign.trial) : J.t =
  (* [fault_flow] is deliberately absent: incremental campaigns never
     run under taint (audits are monolithic by design — DESIGN.md §15),
     so cached trials always carry [None] there. *)
  J.Obj
    [
      ("index", J.Int t.Campaign.index);
      ("outcome", json_of_outcome t.Campaign.outcome);
      ("dyn", J.Int t.Campaign.dyn_count);
      ("planned", J.Int t.Campaign.faults_planned);
      ("landed", J.Int t.Campaign.faults_landed);
      ( "fidelity",
        match t.Campaign.fidelity with
        | None -> J.Null
        | Some f -> J.Str (hexfloat f) );
    ]

let trial_of_json (v : J.t) : Campaign.trial =
  let geti k =
    match J.member k v with Some (J.Int i) -> i | _ -> raise Bad_entry
  in
  let outcome =
    match J.member "outcome" v with
    | Some o -> outcome_of_json o
    | None -> raise Bad_entry
  in
  let fidelity =
    match J.member "fidelity" v with
    | Some (J.Str s) -> Some (float_of_string s)
    | Some J.Null | None -> None
    | Some _ -> raise Bad_entry
  in
  {
    Campaign.index = geti "index";
    outcome;
    dyn_count = geti "dyn";
    faults_planned = geti "planned";
    faults_landed = geti "landed";
    fidelity;
    fault_flow = None;
  }

(* --------------------- sectioning + attribution -------------------- *)

let sections_of (p : Campaign.prepared) : Analysis.Section.t =
  Analysis.Section.compute ~tags:p.Campaign.tags
    p.Campaign.target.Campaign.code.Sim.Code.prog

(* First planned ordinal of trial [i] — [max_int] for an empty plan.
   Recomputed from the same derived RNG [Campaign.run] uses, so this
   costs one plan draw per trial and agrees with the plan the trial
   will execute. *)
let first_ordinal (p : Campaign.prepared) ~errors ~seed i =
  let rng = Campaign.trial_rng ~seed ~errors ~policy:p.Campaign.policy i in
  let plan =
    Fault_model.make_plan ~rng ~injectable_total:p.Campaign.injectable_total
      ~errors
  in
  Hashtbl.fold (fun o _ acc -> min o acc) plan max_int

(* Owner of each requested ordinal: one golden walk on the reference
   engine, pausing at [o + 1] for each (ascending) ordinal [o]. The
   pause check precedes dispatch and [cur_fid] is re-synced before the
   call-return write-back hook, so the fid read at ordinal [o + 1] is
   exactly the frame that consumed ordinal [o]. If the machine halts
   before a pause (only possible after the last injectable consumption)
   the remaining ordinals attribute to the entry section — the
   conservative bucket, since the entry's composed hash covers the
   whole program. *)
let owners_of (p : Campaign.prepared) ~(ordinals : int list) :
    (int, int) Hashtbl.t =
  let tbl = Hashtbl.create (2 * List.length ordinals) in
  (match ordinals with
   | [] -> ()
   | _ ->
     let t = p.Campaign.target in
     let entry_fid = t.Campaign.code.Sim.Code.entry_fid in
     let injection = Fault_model.profiling_injection ~tags:p.Campaign.tags in
     let m =
       Sim.Interp.machine ~injection ~budget:p.Campaign.budget
         ~memory:(Sim.Memory.copy t.Campaign.proto)
         t.Campaign.code
     in
     let halted = ref false in
     List.iter
       (fun o ->
         if !halted then Hashtbl.replace tbl o entry_fid
         else
           match Sim.Interp.advance m ~pause_at:(o + 1) with
           | `Paused -> Hashtbl.replace tbl o (Sim.Interp.machine_fid m)
           | `Halted ->
             halted := true;
             Hashtbl.replace tbl o entry_fid)
       ordinals);
  tbl

(* Entry-state class of each trial: digest of the checkpoint it resumes
   from. Frames are keyed by *local* section hashes — composing there
   would put [main]'s (whole-program) hash into every digest and defeat
   reuse. With checkpointing disabled every trial starts from the
   pristine prototype image. *)
let entry_digests (sections : Analysis.Section.t) (p : Campaign.prepared)
    (firsts : int array) : string array =
  let fid_key fid =
    (Analysis.Section.info sections ~fid).Analysis.Section.local_hash
  in
  match p.Campaign.snapshots with
  | None ->
    let d =
      "scratch:" ^ Sim.Memory.digest p.Campaign.target.Campaign.proto
    in
    Array.map (fun _ -> d) firsts
  | Some snaps ->
    let memo = Hashtbl.create 64 in
    Array.map
      (fun first ->
        let snap = Sim.Snapshot.nearest snaps ~ordinal:(max first 0) in
        let o = Sim.Interp.snapshot_ordinal snap in
        match Hashtbl.find_opt memo o with
        | Some d -> d
        | None ->
          let d = Sim.Interp.snapshot_digest ~fid_key snap in
          Hashtbl.replace memo o d;
          d)
      firsts

(* ------------------------------ keys ------------------------------- *)

let group_key (p : Campaign.prepared) ~section_hash ~salt ~scored ~errors
    ~seed ~(members : (int * int * string) list) : string =
  let t = p.Campaign.target in
  let b = Buffer.create 1024 in
  Buffer.add_string b Store.schema;
  Buffer.add_char b '\n';
  Buffer.add_string b section_hash;
  Buffer.add_string b
    (Printf.sprintf "\npolicy=%d errors=%d seed=%d pool=%d budget=%d"
       (Policy.seed_tag p.Campaign.policy)
       errors seed p.Campaign.injectable_total p.Campaign.budget);
  Buffer.add_string b
    (Printf.sprintf " lenient=%b scored=%b salt=%s" t.Campaign.lenient scored
       salt);
  Buffer.add_string b
    (Printf.sprintf "\ngolden=%s dyn=%d" t.Campaign.baseline_digest
       t.Campaign.baseline.Sim.Interp.dyn_count);
  List.iter
    (fun (i, first, entry) ->
      Buffer.add_string b (Printf.sprintf "\n%d:%d:%s" i first entry))
    members;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------- run ------------------------------- *)

let entry_json ~key ~(sec : Analysis.Section.info) ~context ~trials : J.t =
  J.Obj
    [
      ("schema", J.Str Store.schema);
      ("key", J.Str key);
      ( "section",
        J.Obj
          [
            ("name", J.Str sec.Analysis.Section.name);
            ("hash", J.Str sec.Analysis.Section.section_hash);
          ] );
      ("context", context);
      ("trials", J.Arr (List.map trial_to_json trials));
    ]

let cached_trials (v : J.t) ~(expect : int list) : Campaign.trial list option
    =
  match J.member "trials" v with
  | Some (J.Arr items) -> (
    match List.map trial_of_json items with
    | ts ->
      if List.map (fun t -> t.Campaign.index) ts = expect then Some ts
      else None  (* stale membership: different grouping wrote this key *)
    | exception (Bad_entry | Failure _) -> None)
  | _ -> None

let run ?jobs ?fanout ?score ?(salt = "") ?sections ~(store : Store.t)
    (p : Campaign.prepared) ~errors ~trials ~seed : Campaign.summary * stats =
  let t0 = Obs.span_begin () in
  (* Batch callers (the matrix sweep runner) compute the partition once
     per prepared target and pass it to every cell that shares the
     target; one-shot callers let each run derive it. *)
  let sections =
    match sections with Some s -> s | None -> sections_of p
  in
  let entry_fid = p.Campaign.target.Campaign.code.Sim.Code.entry_fid in
  let firsts = Array.init trials (first_ordinal p ~errors ~seed) in
  let needed =
    Array.to_list firsts
    |> List.filter (fun o -> o <> max_int)
    |> List.sort_uniq Int.compare
  in
  let owners = owners_of p ~ordinals:needed in
  let owner_of i =
    if firsts.(i) = max_int then entry_fid
    else
      match Hashtbl.find_opt owners firsts.(i) with
      | Some fid -> fid
      | None -> entry_fid
  in
  let digests = entry_digests sections p firsts in
  (* Group trial indices by owning section, members ascending. *)
  let groups = Hashtbl.create 16 in
  for i = trials - 1 downto 0 do
    let fid = owner_of i in
    let prev = Option.value ~default:[] (Hashtbl.find_opt groups fid) in
    Hashtbl.replace groups fid (i :: prev)
  done;
  let group_list =
    Hashtbl.fold (fun fid idxs acc -> (fid, idxs) :: acc) groups []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let scored = Option.is_some score in
  let decided =
    List.map
      (fun (fid, idxs) ->
        let sec = Analysis.Section.info sections ~fid in
        let members =
          List.map (fun i -> (i, firsts.(i), digests.(i))) idxs
        in
        let key =
          group_key p
            ~section_hash:sec.Analysis.Section.section_hash
            ~salt ~scored ~errors ~seed ~members
        in
        match Store.load store ~key with
        | Some v -> (
          match cached_trials v ~expect:idxs with
          | Some cached -> `Hit (sec, key, idxs, cached)
          | None -> `Miss (sec, key, idxs))
        | None -> `Miss (sec, key, idxs))
      group_list
  in
  (* All cache misses fan out over the pool in one flat batch — the
     same per-trial path as [Campaign.run], so records are
     bit-identical to a monolithic campaign's. *)
  let missing =
    List.concat_map
      (function `Miss (_, _, idxs) -> idxs | `Hit _ -> [])
      decided
    |> List.sort Int.compare
  in
  let ran = Hashtbl.create (2 * List.length missing + 1) in
  (match missing with
   | [] -> ()
   | _ ->
     let exec i =
       let rng =
         Campaign.trial_rng ~seed ~errors ~policy:p.Campaign.policy i
       in
       Campaign.run_trial_skip ?score p ~errors ~rng ~index:i
     in
     (* [fanout] lets an external scheduler (the serve daemon's shared
        executor) own the trial fan-out: no domains are spawned here,
        and results come back in request order. Absent, the pool path
        is unchanged. Either way the per-trial computation is [exec] —
        results cannot depend on who scheduled them. *)
     let results =
       match fanout with
       | Some f -> List.combine missing (f exec missing)
       | None -> Pool.map_list ?jobs (fun i -> (i, exec i)) missing
     in
     List.iter (fun (i, r) -> Hashtbl.replace ran i r) results);
  (* Publish each missed group, then assemble the composed summary. *)
  let context =
    J.Obj
      [
        ("policy", J.Str (Policy.to_string p.Campaign.policy));
        ("errors", J.Int errors);
        ("seed", J.Int seed);
        ("injectable_total", J.Int p.Campaign.injectable_total);
        ("budget", J.Int p.Campaign.budget);
        ("lenient", J.Bool p.Campaign.target.Campaign.lenient);
        ("scored", J.Bool scored);
        ("salt", J.Str salt);
      ]
  in
  let st = ref zero_stats in
  let collected =
    List.concat_map
      (function
        | `Hit (_, _, idxs, cached) ->
          st :=
            {
              !st with
              sections = !st.sections + 1;
              hits = !st.hits + 1;
              trials_reused = !st.trials_reused + List.length idxs;
            };
          List.map (fun t -> (t, 0)) cached
        | `Miss (sec, key, idxs) ->
          let group = List.map (fun i -> Hashtbl.find ran i) idxs in
          st :=
            {
              !st with
              sections = !st.sections + 1;
              misses = !st.misses + 1;
              trials_run = !st.trials_run + List.length idxs;
            };
          Store.save store ~key
            (entry_json ~key ~sec ~context ~trials:(List.map fst group));
          group)
      decided
  in
  let all =
    List.sort
      (fun (a, _) (b, _) -> Int.compare a.Campaign.index b.Campaign.index)
      collected
  in
  let stats_acc =
    List.fold_left
      (fun acc (t, _) ->
        Stats.observe acc t.Campaign.outcome ~fidelity:t.Campaign.fidelity)
      Stats.empty all
  in
  let summary =
    {
      Campaign.trials = List.map fst all;
      stats = stats_acc;
      errors_requested = errors;
      errors_planned =
        Fault_model.planned ~injectable_total:p.Campaign.injectable_total
          ~errors;
      (* Resume accounting covers executed trials only: reused trials
         ran nothing, so they neither resumed nor skipped anything in
         this run. *)
      resumed_trials =
        List.fold_left
          (fun n (_, sk) -> if sk > 0 then n + 1 else n)
          0 collected;
      skipped_dyn = List.fold_left (fun n (_, sk) -> n + sk) 0 collected;
    }
  in
  if Obs.enabled () then begin
    (* All jobs-invariant: pure functions of the request + cache
       state, never of scheduling. *)
    Obs.count "memo.sections" !st.sections;
    Obs.count "memo.hits" !st.hits;
    Obs.count "memo.misses" !st.misses;
    Obs.count "memo.trials_reused" !st.trials_reused;
    Obs.count "memo.trials_run" !st.trials_run;
    Obs.span_end ~name:"memo.run" ~cat:"campaign"
      ~args:
        [
          ("policy", Policy.to_string p.Campaign.policy);
          ("hits", string_of_int !st.hits);
          ("misses", string_of_int !st.misses);
        ]
      t0
  end;
  (summary, !st)
