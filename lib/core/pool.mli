(** Deterministic fan-out over OCaml 5 domains.

    Static striping, no work stealing: stripe [k] of [jobs] computes
    indices [k, k+jobs, k+2*jobs, ...]. Results come back in index
    order, so for any order-independent [f] the output is bit-exact
    with a sequential run regardless of [jobs].

    [f] must not touch shared mutable state (campaign trials qualify:
    each builds its own RNG, plan and memory image from the index). *)

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core
    for the orchestrating domain. *)

val map_n : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [map_n ?jobs n f] is [[| f 0; ...; f (n-1) |]], computed on
    [min jobs n] domains (the caller's included). [jobs] defaults to
    {!default_jobs}[ ()] and is clamped to [\[1, n\]]. Exceptions from
    any stripe are re-raised after every domain is joined. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_n] over a list, preserving order. *)
