(* Decoded executable image.

   The interpreter does not execute [Ir.Instr.t] directly: labels,
   global names and callee names would force hashtable lookups in the
   hot loop. Decoding resolves every label to a body index, every
   global to its absolute byte address, every call to a function id and
   explicit argument-copy plans, and every register to its bank-local
   index. The decoded body is index-aligned with the IR body ([Label]
   becomes [DNop]), so per-instruction metadata (tags, profiles)
   indexes both forms identically. *)

type call = {
  fid : int;
  dst : int;        (* destination register index, or -1 for none *)
  dst_flt : bool;
  iargs : (int * int) array;  (* (caller int reg, callee int param reg) *)
  fargs : (int * int) array;  (* (caller flt reg, callee flt param reg) *)
}

type d =
  | DNop
  | DLi of int * int
  | DLf of int * float
  | DLa of int * int
  | DMovI of int * int
  | DMovF of int * int
  | DBin of Ir.Instr.binop * int * int * int
  | DBini of Ir.Instr.binop * int * int * int
  | DCmp of Ir.Instr.cmpop * int * int * int
  | DFbin of Ir.Instr.fbinop * int * int * int
  | DFun of Ir.Instr.funop * int * int
  | DFcmp of Ir.Instr.cmpop * int * int * int
  | DI2f of int * int
  | DF2i of int * int
  | DLw of int * int * int
  | DSw of int * int * int
  | DLb of int * int * int
  | DSb of int * int * int
  | DLwf of int * int * int
  | DSwf of int * int * int
  | DBr of Ir.Instr.cmpop * int * int * int
  | DBrz of Ir.Instr.cmpop * int * int
  | DJmp of int
  | DCall of call
  | DRetI of int
  | DRetF of int
  | DRetV

type dfunc = {
  name : string;
  src : Ir.Func.t;
  dbody : d array;
  n_int : int;
  n_flt : int;
}

type t = {
  prog : Ir.Prog.t;
  funcs : dfunc array;
  fid_of_name : (string, int) Hashtbl.t;
  entry_fid : int;
}

let ridx = Ir.Reg.index

let decode_func prog fid_of_name (f : Ir.Func.t) =
  let target l = Ir.Func.label_index f l in
  let decode (i : Ir.Instr.t) : d =
    match i with
    | Label _ | Nop -> DNop
    | Li (d, n) -> DLi (ridx d, Value.of_int32 n)
    | Lf (d, x) -> DLf (ridx d, x)
    | La (d, g) -> DLa (ridx d, Ir.Prog.global_addr prog g)
    | Mov (d, s) ->
      if Ir.Reg.is_int d then DMovI (ridx d, ridx s) else DMovF (ridx d, ridx s)
    | Bin (op, d, a, b) -> DBin (op, ridx d, ridx a, ridx b)
    | Bini (op, d, a, n) -> DBini (op, ridx d, ridx a, Value.of_int32 n)
    | Cmp (op, d, a, b) -> DCmp (op, ridx d, ridx a, ridx b)
    | Fbin (op, d, a, b) -> DFbin (op, ridx d, ridx a, ridx b)
    | Fun_ (op, d, s) -> DFun (op, ridx d, ridx s)
    | Fcmp (op, d, a, b) -> DFcmp (op, ridx d, ridx a, ridx b)
    | I2f (d, s) -> DI2f (ridx d, ridx s)
    | F2i (d, s) -> DF2i (ridx d, ridx s)
    | Lw (d, b, o) -> DLw (ridx d, ridx b, o)
    | Sw (v, b, o) -> DSw (ridx v, ridx b, o)
    | Lb (d, b, o) -> DLb (ridx d, ridx b, o)
    | Sb (v, b, o) -> DSb (ridx v, ridx b, o)
    | Lwf (d, b, o) -> DLwf (ridx d, ridx b, o)
    | Swf (v, b, o) -> DSwf (ridx v, ridx b, o)
    | Br (op, a, b, l) -> DBr (op, ridx a, ridx b, target l)
    | Brz (op, a, l) -> DBrz (op, ridx a, target l)
    | Jmp l -> DJmp (target l)
    | Call { dst; func; args } ->
      let callee = Ir.Prog.get_func prog func in
      let iargs = ref [] and fargs = ref [] in
      List.iter2
        (fun formal actual ->
          if Ir.Reg.is_int formal then
            iargs := (ridx actual, ridx formal) :: !iargs
          else fargs := (ridx actual, ridx formal) :: !fargs)
        callee.Ir.Func.params args;
      DCall
        {
          fid = Hashtbl.find fid_of_name func;
          dst = (match dst with None -> -1 | Some d -> ridx d);
          dst_flt = (match dst with Some d -> Ir.Reg.is_flt d | None -> false);
          iargs = Array.of_list (List.rev !iargs);
          fargs = Array.of_list (List.rev !fargs);
        }
    | Ret None -> DRetV
    | Ret (Some r) -> if Ir.Reg.is_int r then DRetI (ridx r) else DRetF (ridx r)
  in
  {
    name = f.Ir.Func.name;
    src = f;
    dbody = Array.map decode f.Ir.Func.body;
    n_int = f.Ir.Func.n_int_regs;
    n_flt = f.Ir.Func.n_flt_regs;
  }

let of_prog (prog : Ir.Prog.t) =
  Ir.Validate.check_exn prog;
  let funcs_list = Ir.Prog.funcs prog in
  let fid_of_name = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Ir.Func.t) -> Hashtbl.replace fid_of_name f.Ir.Func.name i)
    funcs_list;
  let funcs =
    Array.of_list (List.map (decode_func prog fid_of_name) funcs_list)
  in
  { prog; funcs; fid_of_name; entry_fid = Hashtbl.find fid_of_name prog.Ir.Prog.entry }

let n_funcs t = Array.length t.funcs
let func t fid = t.funcs.(fid)
let fid t name = Hashtbl.find_opt t.fid_of_name name
