lib/analysis/callgraph.ml: Array Ir List Map Option Set String
