(* Plain-text table rendering for experiment output. *)

let render ~title ~headers (rows : string list list) : string =
  let all = headers :: rows in
  let ncols = List.length headers in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let line ch =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) ch) widths)
    ^ "+"
  in
  let fmt_row row =
    "|"
    ^ String.concat "|"
        (List.mapi
           (fun c cell ->
             let w = List.nth widths c in
             Printf.sprintf " %-*s " w cell)
           (List.init ncols (fun c ->
                Option.value ~default:"" (List.nth_opt row c))))
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (line '-' ^ "\n");
  Buffer.add_string buf (fmt_row headers ^ "\n");
  Buffer.add_string buf (line '=' ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (fmt_row r ^ "\n")) rows;
  Buffer.add_string buf (line '-');
  Buffer.contents buf

let pct x = Printf.sprintf "%.1f%%" x
let db x = Printf.sprintf "%.1f dB" x
let count n = string_of_int n
