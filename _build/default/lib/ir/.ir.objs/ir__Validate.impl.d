lib/ir/validate.ml: Array Format Func Instr List Printf Prog Reg Ty
