lib/mlang/opt.ml: Analysis Array Fun Ir List
