(* Checkpointed execution: the explicit-machine pause/capture/resume
   API, the golden Snapshot sequence, and the campaign fast-forward
   path. The load-bearing property throughout: resuming from any
   checkpoint is bit-exact versus from-scratch execution — same
   outcome, dynamic count, landings, memory image — for any stride,
   any plan, and any jobs fan-out. *)

let gcd_mlang =
  let open Mlang.Dsl in
  program
    [ garray "out" 2 ]
    [
      fn "gcd" [ p_int "a"; p_int "b" ] ~ret:(Some Mlang.Ast.TInt)
        [
          while_ (v "b" <>! i 0)
            [ let_ "t" (v "b"); set "b" (v "a" %! v "b"); set "a" (v "t") ];
          ret (v "a");
        ];
      fn "main" [] ~ret:(Some Mlang.Ast.TInt)
        [
          let_ "g" (call "gcd" [ i 252; i 105 ]);
          let_ "scaled" (v "g" *! i 3);
          sto "out" (i 0) (v "scaled");
          ret (i 0);
        ];
    ]

(* Shared fixture: program, code, protect-nothing tags (the densest
   pool), fault-free baseline. *)
let fixture =
  lazy
    (let prog = Mlang.Compile.to_ir gcd_mlang in
     let code = Sim.Code.of_prog prog in
     let tagging = Core.Tagging.compute prog in
     let tags = Core.Tagging.mask tagging Core.Policy.Protect_nothing in
     let injection = Core.Fault_model.profiling_injection ~tags in
     let baseline = Sim.Interp.run ~injection ~lenient:true code in
     (prog, code, tags, baseline))

let campaign_target =
  lazy
    (let prog, _, _, _ = Lazy.force fixture in
     Core.Campaign.of_prog prog)

let budget () =
  let _, _, _, baseline = Lazy.force fixture in
  Core.Campaign.timeout_factor * baseline.Sim.Interp.dyn_count

let outcome_str (r : Sim.Interp.result) =
  match r.Sim.Interp.outcome with
  | Sim.Interp.Done v ->
    "done:" ^ Option.fold ~none:"()" ~some:Sim.Value.to_string v
  | Sim.Interp.Trapped t ->
    "trap:" ^ Sim.Trap.to_string t
    ^ (match r.Sim.Interp.trap_site with
       | Some (f, pc) -> Printf.sprintf "@%s+%d" f pc
       | None -> "@?")
  | Sim.Interp.Timeout -> "timeout"

(* Full-result fingerprint, memory image included. *)
let fingerprint (r : Sim.Interp.result) =
  let prog, _, _, _ = Lazy.force fixture in
  Printf.sprintf "%s/%d/%d/%d/%s" (outcome_str r) r.Sim.Interp.dyn_count
    r.Sim.Interp.injectable_seen r.Sim.Interp.faults_landed
    (String.concat ","
       (Array.to_list
          (Array.map string_of_int
             (Sim.Memory.read_global_ints r.Sim.Interp.memory prog "out"))))

let run_scratch plan =
  let _, code, tags, _ = Lazy.force fixture in
  let injection = Sim.Interp.injection ~tags ~plan in
  Sim.Interp.run ~injection ~lenient:true ~budget:(budget ()) code

let snapshots stride =
  let _, code, tags, _ = Lazy.force fixture in
  Sim.Snapshot.build ~stride ~tags ~lenient:true ~budget:(budget ()) code

let run_resumed snaps plan =
  let _, _, tags, _ = Lazy.force fixture in
  let injection = Sim.Interp.injection ~tags ~plan in
  let first = List.fold_left (fun acc (o, _) -> min acc o) max_int plan in
  let snap = Sim.Snapshot.nearest snaps ~ordinal:first in
  (Sim.Interp.finish (Sim.Interp.resume ~injection snap), snap)

let check_equiv ~stride msg plan =
  let a = run_scratch plan in
  let b, _ = run_resumed (snapshots stride) plan in
  Alcotest.(check string) msg (fingerprint a) (fingerprint b)

(* ------------------------------------------------------------------ *)
(* Machine API basics.                                                 *)

let test_pause_points () =
  let _, code, tags, baseline = Lazy.force fixture in
  let total = baseline.Sim.Interp.injectable_seen in
  Alcotest.(check bool) "pool non-trivial" true (total > 10);
  let injection = Sim.Interp.injection ~tags ~plan:[] in
  let m = Sim.Interp.machine ~injection ~lenient:true code in
  (* Pause at 0 = initial state; then walk forward and capture; every
     capture sits exactly on its requested ordinal. *)
  Alcotest.(check bool) "pause at 0" true
    (Sim.Interp.advance m ~pause_at:0 = `Paused);
  let s0 = Sim.Interp.capture m in
  Alcotest.(check int) "ordinal 0" 0 (Sim.Interp.snapshot_ordinal s0);
  Alcotest.(check int) "dyn 0" 0 (Sim.Interp.snapshot_dyn s0);
  let mid = total / 2 in
  Alcotest.(check bool) "pause mid" true
    (Sim.Interp.advance m ~pause_at:mid = `Paused);
  let s1 = Sim.Interp.capture m in
  Alcotest.(check int) "ordinal mid" mid (Sim.Interp.snapshot_ordinal s1);
  Alcotest.(check bool) "dyn advanced" true (Sim.Interp.snapshot_dyn s1 > 0);
  Alcotest.(check bool) "halts" true
    (Sim.Interp.advance m ~pause_at:max_int = `Halted);
  let r = Sim.Interp.finish m in
  Alcotest.(check string) "paused-and-finished == straight run"
    (fingerprint (run_scratch []))
    (fingerprint r);
  (* Resuming the mid snapshot with an empty plan replays the tail
     exactly (the mask keeps counting ordinals; nothing fires). *)
  let r' = Sim.Interp.finish (Sim.Interp.resume ~injection s1) in
  Alcotest.(check string) "resume tail == straight run"
    (fingerprint (run_scratch []))
    (fingerprint r')

let test_capture_guards () =
  let _, code, tags, _ = Lazy.force fixture in
  let injection = Sim.Interp.injection ~tags ~plan:[] in
  let m = Sim.Interp.machine ~injection ~lenient:true code in
  ignore (Sim.Interp.advance m ~pause_at:max_int);
  Alcotest.check_raises "capture after halt"
    (Invalid_argument "Interp.capture: machine has halted") (fun () ->
      ignore (Sim.Interp.capture m));
  let mp = Sim.Interp.machine ~count_exec:true ~lenient:true code in
  ignore (Sim.Interp.advance mp ~pause_at:0);
  Alcotest.check_raises "capture under count_exec"
    (Invalid_argument "Interp.capture: profiling machines are not snapshotable")
    (fun () -> ignore (Sim.Interp.capture mp));
  (* A plan ordinal before the snapshot could never land: rejected. *)
  let m2 = Sim.Interp.machine ~injection ~lenient:true code in
  ignore (Sim.Interp.advance m2 ~pause_at:5);
  let s = Sim.Interp.capture m2 in
  Alcotest.check_raises "plan precedes snapshot"
    (Invalid_argument "Interp.resume: plan ordinal precedes snapshot")
    (fun () ->
      ignore
        (Sim.Interp.resume
           ~injection:(Sim.Interp.injection ~tags ~plan:[ (2, 0) ])
           s))

let test_snapshot_build_shape () =
  let _, _, _, baseline = Lazy.force fixture in
  let total = baseline.Sim.Interp.injectable_seen in
  let stride = 5 in
  let snaps = snapshots stride in
  Alcotest.(check int) "stride recorded" stride (Sim.Snapshot.stride snaps);
  Alcotest.(check int) "checkpoint count" ((total / stride) + 1)
    (Sim.Snapshot.count snaps);
  Alcotest.(check int) "nearest rounds down" 10
    (Sim.Interp.snapshot_ordinal (Sim.Snapshot.nearest snaps ~ordinal:14));
  Alcotest.(check int) "nearest clamps" (total / stride * stride)
    (Sim.Interp.snapshot_ordinal (Sim.Snapshot.nearest snaps ~ordinal:max_int));
  Alcotest.check_raises "stride must be positive"
    (Invalid_argument "Snapshot.build: stride must be positive") (fun () ->
      ignore (snapshots 0))

let test_auto_stride_bounds () =
  (* Small pool, small image: one ordinal per checkpoint. *)
  Alcotest.(check int) "tiny" 1
    (Sim.Snapshot.auto_stride ~injectable_total:10 ~image_bytes:100);
  (* 64-checkpoint cap: stride = ceil(total / 64). *)
  Alcotest.(check int) "dense" (1_000_000 / 64)
    (Sim.Snapshot.auto_stride ~injectable_total:1_000_000 ~image_bytes:100);
  (* Memory budget backs off the checkpoint count: a 32 MiB image keeps
     only 2 checkpoints. *)
  Alcotest.(check int) "huge image" 500_000
    (Sim.Snapshot.auto_stride ~injectable_total:1_000_000
       ~image_bytes:(32 * 1024 * 1024));
  Alcotest.(check bool) "never zero" true
    (Sim.Snapshot.auto_stride ~injectable_total:0 ~image_bytes:0 >= 1)

(* ------------------------------------------------------------------ *)
(* Directed edge cases.                                                *)

let test_fault_at_ordinal_zero () =
  check_equiv ~stride:4 "ordinal 0" [ (0, 3) ]

let test_fault_past_last_checkpoint () =
  let _, _, _, baseline = Lazy.force fixture in
  let total = baseline.Sim.Interp.injectable_seen in
  let stride = 7 in
  let plan = [ (total - 1, 5) ] in
  check_equiv ~stride "last ordinal" plan;
  (* And confirm that trial really fast-forwarded past a prefix. *)
  let _, snap = run_resumed (snapshots stride) plan in
  Alcotest.(check int) "resumed from last checkpoint" (total / stride * stride)
    (Sim.Interp.snapshot_ordinal snap);
  Alcotest.(check bool) "skipped a prefix" true
    (Sim.Interp.snapshot_dyn snap > 0)

let test_empty_plan () = check_equiv ~stride:3 "empty plan" []

(* Scan for a single-fault plan that crashes (flipping gcd's exit
   condition when [b] has reached 0 sends the loop into [a % 0]), then
   check the crash — outcome, dynamic count and trap site — reproduces
   identically from a checkpoint resume in the suffix. *)
let test_crash_in_resumed_suffix () =
  let _, _, _, baseline = Lazy.force fixture in
  let total = baseline.Sim.Interp.injectable_seen in
  let stride = 3 in
  let crash =
    let rec scan ord bit =
      if ord >= total then None
      else if bit > 31 then scan (ord + 1) 0
      else
        let r = run_scratch [ (ord, bit) ] in
        match r.Sim.Interp.outcome with
        | Sim.Interp.Trapped _ when ord >= stride -> Some (ord, bit)
        | _ -> scan ord (bit + 1)
    in
    scan stride 0
  in
  match crash with
  | None -> Alcotest.fail "no crashing single fault found past first stride"
  | Some (ord, bit) ->
    let _, snap = run_resumed (snapshots stride) [ (ord, bit) ] in
    Alcotest.(check bool) "crash is in a resumed suffix" true
      (Sim.Interp.snapshot_ordinal snap > 0);
    check_equiv ~stride
      (Printf.sprintf "crash at ordinal %d bit %d" ord bit)
      [ (ord, bit) ]

(* ------------------------------------------------------------------ *)
(* Properties: random plans, strides, jobs.                            *)

let resume_equals_scratch =
  QCheck.Test.make ~name:"checkpoint-resume == from-scratch (random plans)"
    ~count:150
    QCheck.(triple (int_bound 100_000) (int_range 1 20) (int_range 1 25))
    (fun (seed, errors, stride) ->
      let _, _, _, baseline = Lazy.force fixture in
      let total = baseline.Sim.Interp.injectable_seen in
      let rng = Random.State.make [| seed; errors; stride |] in
      let plan =
        Hashtbl.fold
          (fun o b acc -> (o, b) :: acc)
          (Core.Fault_model.make_plan ~rng ~injectable_total:total ~errors)
          []
      in
      let a = run_scratch plan in
      let b, _ = run_resumed (snapshots stride) plan in
      fingerprint a = fingerprint b)

(* Campaign level: the prepared target's stride (or disabling
   checkpointing entirely) and the jobs fan-out are both invisible in
   the per-trial records, fidelities included. *)
let campaign_stride_jobs_invariant =
  QCheck.Test.make ~name:"campaign records invariant under stride x jobs"
    ~count:12
    QCheck.(triple (int_bound 1_000) (int_range 1 8) (int_range 1 4))
    (fun (seed, stride, jobs) ->
      let prog, _, _, _ = Lazy.force fixture in
      let target = Lazy.force campaign_target in
      let score (r : Sim.Interp.result) =
        let out = Sim.Memory.read_global_ints r.Sim.Interp.memory prog "out" in
        float_of_int out.(0)
      in
      let records checkpoint_stride jobs =
        let p =
          Core.Campaign.prepare ~checkpoint_stride target
            Core.Policy.Protect_nothing
        in
        let s = Core.Campaign.run ~jobs ~score p ~errors:2 ~trials:9 ~seed in
        List.map
          (fun (t : Core.Campaign.trial) ->
            Printf.sprintf "%d/%s/%d/%d/%d/%s" t.Core.Campaign.index
              (Core.Outcome.describe t.Core.Campaign.outcome)
              t.Core.Campaign.dyn_count t.Core.Campaign.faults_planned
              t.Core.Campaign.faults_landed
              (match t.Core.Campaign.fidelity with
               | None -> "-"
               | Some f -> Printf.sprintf "%h" f))
          s.Core.Campaign.trials
      in
      records 0 1 = records stride jobs)

(* ------------------------------------------------------------------ *)
(* Campaign plumbing.                                                  *)

let test_prepare_snapshot_modes () =
  let target = Lazy.force campaign_target in
  let p_off =
    Core.Campaign.prepare ~checkpoint_stride:0 target Core.Policy.Protect_nothing
  in
  Alcotest.(check bool) "stride 0 disables" true
    (p_off.Core.Campaign.snapshots = None);
  let p_on = Core.Campaign.prepare target Core.Policy.Protect_nothing in
  Alcotest.(check bool) "default stride checkpoints" true
    (p_on.Core.Campaign.snapshots <> None);
  Alcotest.check_raises "negative stride"
    (Invalid_argument "Campaign.prepare: negative checkpoint stride") (fun () ->
      ignore
        (Core.Campaign.prepare ~checkpoint_stride:(-1) target
           Core.Policy.Protect_nothing))

let test_summary_resume_counters () =
  let target = Lazy.force campaign_target in
  let run p = Core.Campaign.run ~jobs:1 p ~errors:1 ~trials:16 ~seed:3 in
  let off =
    run
      (Core.Campaign.prepare ~checkpoint_stride:0 target
         Core.Policy.Protect_nothing)
  in
  Alcotest.(check int) "scratch: no resumes" 0 off.Core.Campaign.resumed_trials;
  Alcotest.(check int) "scratch: no skips" 0 off.Core.Campaign.skipped_dyn;
  let on =
    run
      (Core.Campaign.prepare ~checkpoint_stride:1 target
         Core.Policy.Protect_nothing)
  in
  Alcotest.(check bool) "stride 1: some trials fast-forward" true
    (on.Core.Campaign.resumed_trials > 0);
  Alcotest.(check bool) "stride 1: work skipped" true
    (on.Core.Campaign.skipped_dyn > 0);
  Alcotest.(check bool) "hits bounded by trials" true
    (on.Core.Campaign.resumed_trials <= 16)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "snapshot"
    [
      ( "machine",
        [
          Alcotest.test_case "pause points and tails" `Quick test_pause_points;
          Alcotest.test_case "capture/resume guards" `Quick test_capture_guards;
          Alcotest.test_case "snapshot build shape" `Quick
            test_snapshot_build_shape;
          Alcotest.test_case "auto stride bounds" `Quick test_auto_stride_bounds;
        ] );
      ( "edges",
        [
          Alcotest.test_case "fault at ordinal 0" `Quick
            test_fault_at_ordinal_zero;
          Alcotest.test_case "fault past last checkpoint" `Quick
            test_fault_past_last_checkpoint;
          Alcotest.test_case "empty plan" `Quick test_empty_plan;
          Alcotest.test_case "crash in resumed suffix" `Quick
            test_crash_in_resumed_suffix;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest resume_equals_scratch;
          QCheck_alcotest.to_alcotest campaign_stride_jobs_invariant;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "prepare snapshot modes" `Quick
            test_prepare_snapshot_modes;
          Alcotest.test_case "summary resume counters" `Quick
            test_summary_resume_counters;
        ] );
    ]
