(* etap — Error-Tolerance Analysis Platform command-line interface.

   Subcommands:
     list                      enumerate benchmark applications
     run APP                   fault-free run + fidelity self-check
     tag APP                   tagging analysis summary (both modes)
     sections APP              section partition + content hashes
     disasm APP [FUNC]         print the compiled IR
     inject APP -e N [-t T]    fault-injection campaign
     matrix [--apps ...]       cached sweep over apps x policies x errors
     audit [APP]               dynamic taint audit of the tagging analysis
     profile APP               fault-site attribution profile
     table2 | table3           reproduce the paper's tables
     figure N                  reproduce one figure
     ablation                  run the ablation studies *)

open Cmdliner

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* Shared arguments.                                                   *)

let app_arg =
  let doc = "Benchmark application name (see `etap list`)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let seed_arg =
  let doc = "Workload generation seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~doc)

let trials_arg =
  let doc = "Trials per campaign cell." in
  Arg.(value & opt int 20 & info [ "t"; "trials" ] ~doc)

let errors_arg =
  let doc = "Number of single-bit errors to insert per run." in
  Arg.(value & opt int 10 & info [ "e"; "errors" ] ~doc)

let jobs_arg =
  let doc =
    "Domains to fan campaign trials (and per-app analyses) over. \
     Defaults to the machine's core count minus one. Results are \
     bit-identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let engine_arg =
  let e = Arg.enum [ ("fast", Sim.Interp.Fast); ("ref", Sim.Interp.Ref) ] in
  let doc =
    "Interpreter engine for trial execution: $(b,fast) (threaded-closure \
     compilation, the default) or $(b,ref) (the reference match-dispatch \
     loop). Both engines produce bit-identical campaign results."
  in
  Arg.(value & opt e Sim.Interp.Fast & info [ "engine" ] ~docv:"ENGINE" ~doc)

let literal_arg =
  let doc =
    "Use the paper's literal Section-3 tagging rules (addresses \
     unprotected) instead of control+address protection."
  in
  Arg.(value & flag & info [ "literal" ] ~doc)

let json_arg =
  let doc =
    "Also write the result as a machine-readable etap-report/1 JSON \
     document to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH" ~doc)

let stride_arg =
  let doc =
    "Golden checkpoint spacing in injectable ordinals. Trials \
     fast-forward from the nearest checkpoint at or before their first \
     planned fault; results are bit-identical for every value. Defaults \
     to an automatic stride (up to 64 checkpoints within a memory \
     budget); $(docv)=0 disables checkpointing and runs every trial \
     from scratch."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-stride" ] ~docv:"N" ~doc)

let incremental_arg =
  let doc =
    "Memoize per-section campaign results in a content-addressed on-disk \
     cache and compose re-runs from it: only sections whose composed \
     content hash (or fault-model coordinates) changed re-execute. \
     Summaries are bit-identical to a non-incremental run."
  in
  Arg.(value & flag & info [ "incremental" ] ~doc)

let cache_dir_arg =
  let doc =
    "Result-cache root for $(b,--incremental) (created on demand; safe \
     to delete at any time)."
  in
  Arg.(
    value & opt string "_etap_cache" & info [ "cache-dir" ] ~docv:"DIR" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace-event file (etap-trace/1, loadable in \
     Perfetto or chrome://tracing) of the command's spans — per-trial, \
     per-stripe, snapshot builds — to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"PATH" ~doc)

let metrics_arg =
  let doc =
    "Write a JSONL metrics stream (etap-metrics/1) — one line per \
     counter, latency histogram and fault site — to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"PATH" ~doc)

(* Telemetry scope of one command invocation: when [--trace] or
   [--metrics] was given, install a fresh collecting sink for the
   duration of [f] (one top-level span around the whole command) and
   export on the way out — also when [f] raises or returns [Error], so
   a failing campaign still leaves its partial trace behind. With
   neither flag the ambient sink stays [Obs.disabled] and the
   instrumentation throughout the stack stays a no-op. *)
let with_obs ~trace ~metrics ~command ~meta f =
  match (trace, metrics) with
  | None, None -> f ()
  | _ ->
    let sink = Obs.make () in
    Obs.with_sink sink (fun () ->
        Fun.protect
          ~finally:(fun () ->
            let v = Obs.view sink in
            (match trace with
             | None -> ()
             | Some path ->
               Obs.write_trace ~path v;
               say "wrote %s" path);
            match metrics with
            | None -> ()
            | Some path ->
              Obs.write_metrics ~path ~command ~meta v;
              say "wrote %s" path)
          (fun () -> Obs.span ~name:command ~cat:"cli" f))

(* One emitter for every subcommand: the text table(s) go to stdout
   unchanged; [--json PATH] additionally writes the same tables as an
   etap-report/1 document. *)
let emit ?json ~command ~meta tables =
  List.iter (fun t -> say "%s" (Report.to_text t)) tables;
  match json with
  | None -> ()
  | Some path ->
    Report.write_json ~path (Report.make ~command ~meta tables);
    say "wrote %s" path

let meta_int k v = (k, Report.Json.Int v)
let meta_jobs jobs = ("jobs", Report.Json.of_int_opt jobs)

let find_app name =
  match Apps.Registry.find name with
  | Some app -> Ok app
  | None ->
    Error
      (`Msg
        (Printf.sprintf "unknown application %S (known: %s)" name
           (String.concat ", " Apps.Registry.names)))

(* ------------------------------------------------------------------ *)
(* Commands.                                                           *)

let list_cmd =
  let action () =
    List.iter
      (fun (a : Apps.App.t) ->
        say "%-10s [%s]" a.Apps.App.name a.Apps.App.source;
        say "    %s" a.Apps.App.description)
      Apps.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmark applications")
    Term.(const action $ const ())

let run_cmd =
  let action name seed =
    Result.map
      (fun (app : Apps.App.t) ->
        let b = app.Apps.App.build ~seed in
        let code = Sim.Code.of_prog b.Apps.App.prog in
        let r = Sim.Interp.run_exn code in
        say "%s: %d dynamic instructions, fault-free" name
          r.Sim.Interp.dyn_count;
        (match b.Apps.App.host_check r with
         | Ok () -> say "host reference check: OK"
         | Error m -> say "host reference check: FAILED (%s)" m);
        say "fidelity vs self: %.1f %s"
          (b.Apps.App.score ~golden:r r)
          b.Apps.App.fidelity_units)
      (find_app name)
  in
  Cmd.v (Cmd.info "run" ~doc:"Fault-free run with host-reference check")
    Term.(term_result (const action $ app_arg $ seed_arg))

let tag_cmd =
  let action name seed =
    Result.map
      (fun (app : Apps.App.t) ->
        let b = app.Apps.App.build ~seed in
        let code = Sim.Code.of_prog b.Apps.App.prog in
        let baseline = Sim.Interp.run_exn ~count_exec:true code in
        say "%-28s %10s %10s" "" "ctrl+addr" "literal";
        let line label f = say "%-28s %10s %10s" label (f true) (f false) in
        let tagging pa = Core.Tagging.compute ~protect_addresses:pa b.Apps.App.prog in
        let t_full = tagging true and t_lit = tagging false in
        let t_of pa = if pa then t_full else t_lit in
        line "static tagged / producing" (fun pa ->
            let `Tagged tg, `Producing pr, `Total _ =
              Core.Tagging.static_stats (t_of pa)
            in
            Printf.sprintf "%d/%d" tg pr);
        line "dynamic low-reliability %" (fun pa ->
            Printf.sprintf "%.1f%%"
              (100.0
              *. Core.Tagging.dynamic_low_fraction (t_of pa)
                   baseline.Sim.Interp.exec_counts));
        say "dynamic instructions: %d" baseline.Sim.Interp.dyn_count;
        List.iter
          (fun (f : Ir.Func.t) ->
            match Core.Tagging.low_reliability t_full f.Ir.Func.name with
            | None -> ()
            | Some low ->
              let n = Array.fold_left (fun a b -> if b then a + 1 else a) 0 low in
              say "  %-20s %4d/%4d static instrs tagged (ctrl+addr)%s"
                f.Ir.Func.name n (Array.length low)
                (if f.Ir.Func.eligible then "" else "  [ineligible]"))
          (Ir.Prog.funcs b.Apps.App.prog))
      (find_app name)
  in
  Cmd.v (Cmd.info "tag" ~doc:"Show the control-protection tagging analysis")
    Term.(term_result (const action $ app_arg $ seed_arg))

let sections_cmd =
  let policy_arg =
    let p =
      Arg.enum
        [
          ("control", Core.Policy.Protect_control);
          ("nothing", Core.Policy.Protect_nothing);
        ]
    in
    let doc =
      "Protection policy whose tag mask is folded into the hashes \
       ($(b,control) or $(b,nothing)) — the same hashes `inject \
       --incremental` keys its cache by."
    in
    Arg.(
      value & opt p Core.Policy.Protect_control
      & info [ "policy" ] ~docv:"POLICY" ~doc)
  in
  let action name seed literal policy json =
    Result.map
      (fun (app : Apps.App.t) ->
        let b = app.Apps.App.build ~seed in
        let prog = b.Apps.App.prog in
        let tagging =
          Core.Tagging.compute ~protect_addresses:(not literal) prog
        in
        let tags = Core.Tagging.mask tagging policy in
        let sections = Analysis.Section.compute ~tags prog in
        let short h = String.sub h 0 12 in
        let meta =
          [
            ("app", Report.Json.Str name);
            meta_int "seed" seed;
            ("literal", Report.Json.Bool literal);
            ("policy", Report.Json.Str (Core.Policy.to_string policy));
          ]
        in
        let table =
          Report.table ~id:"sections"
            ~title:
              (Printf.sprintf "Section partition: %s (%s)" name
                 (Core.Policy.to_string policy))
            ~columns:
              [
                Report.column ~key:"section" "section";
                Report.column ~key:"static_slots" "static";
                Report.column ~key:"tagged_slots" "tagged";
                Report.column ~key:"callees" "callees";
                Report.column ~key:"local_hash" "local hash";
                Report.column ~key:"section_hash" "section hash";
              ]
            (Array.to_list
               (Array.map
                  (fun (i : Analysis.Section.info) ->
                    [
                      Report.text
                        (if i.Analysis.Section.fid
                            = (Analysis.Section.entry sections)
                                .Analysis.Section.fid
                         then i.Analysis.Section.name ^ " (entry)"
                         else i.Analysis.Section.name);
                      Report.int i.Analysis.Section.static_slots;
                      Report.int i.Analysis.Section.tagged_slots;
                      Report.text
                        (String.concat "," i.Analysis.Section.callees);
                      Report.text (short i.Analysis.Section.local_hash);
                      Report.text (short i.Analysis.Section.section_hash);
                    ])
                  sections.Analysis.Section.infos))
        in
        emit ?json ~command:"sections" ~meta [ table ])
      (find_app name)
  in
  Cmd.v
    (Cmd.info "sections"
       ~doc:
         "Show the program's section partition: per-function canonical \
          content hashes (local and composed over the call subtree) that \
          key the incremental-injection result cache")
    Term.(
      term_result
        (const action $ app_arg $ seed_arg $ literal_arg $ policy_arg
       $ json_arg))

let disasm_cmd =
  let func_arg =
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FUNC")
  in
  let action name func seed =
    Result.map
      (fun (app : Apps.App.t) ->
        let b = app.Apps.App.build ~seed in
        match func with
        | None -> say "%s" (Format.asprintf "%a" Ir.Prog.pp b.Apps.App.prog)
        | Some f ->
          (match Ir.Prog.find_func b.Apps.App.prog f with
           | Some fn -> say "%s" (Format.asprintf "%a" Ir.Func.pp fn)
           | None -> say "no function %s" f))
      (find_app name)
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Print compiled IR")
    Term.(term_result (const action $ app_arg $ func_arg $ seed_arg))

let inject_cmd =
  let action name seed errors trials literal engine jobs checkpoint_stride
      incremental cache_dir json trace metrics =
    Result.map
      (fun (app : Apps.App.t) ->
        let meta =
          [
            ("app", Report.Json.Str name);
            meta_int "errors" errors;
            meta_int "trials" trials;
            meta_int "seed" seed;
            ("literal", Report.Json.Bool literal);
            ("engine", Report.Json.Str (Sim.Interp.engine_name engine));
            meta_jobs jobs;
            ("checkpoint_stride", Report.Json.of_int_opt checkpoint_stride);
            ("incremental", Report.Json.Bool incremental);
            ( "cache_dir",
              if incremental then Report.Json.Str cache_dir
              else Report.Json.Null );
          ]
        in
        with_obs ~trace ~metrics ~command:"inject" ~meta @@ fun () ->
        let l =
          Harness.Experiment.load ~seed ?jobs ~engine ?checkpoint_stride app
        in
        let mode =
          if literal then Harness.Experiment.Literal
          else Harness.Experiment.Full
        in
        let b = l.Harness.Experiment.built in
        let target = l.Harness.Experiment.target mode in
        let golden = target.Core.Campaign.baseline in
        let score r = b.Apps.App.score ~golden r in
        let store =
          if incremental then Some (Core.Memo.Store.open_ cache_dir)
          else None
        in
        let cache_total = ref Core.Memo.zero_stats in
        let summaries =
          List.map
            (fun policy ->
              let p = l.Harness.Experiment.prepared mode policy in
              let s =
                match store with
                | None ->
                  Core.Campaign.run ?jobs ~score p ~errors ~trials
                    ~seed:(seed + 100)
                | Some store ->
                  let s, (st : Core.Memo.stats) =
                    Core.Memo.run ?jobs ~score ~salt:name ~store p ~errors
                      ~trials ~seed:(seed + 100)
                  in
                  (cache_total :=
                     Core.Memo.
                       {
                         sections = !cache_total.sections + st.sections;
                         hits = !cache_total.hits + st.hits;
                         misses = !cache_total.misses + st.misses;
                         trials_reused =
                           !cache_total.trials_reused + st.trials_reused;
                         trials_run = !cache_total.trials_run + st.trials_run;
                       });
                  say
                    "%-18s cache: %d/%d section groups hit — %d trial(s) \
                     reused, %d run"
                    (Core.Policy.to_string policy)
                    st.Core.Memo.hits st.Core.Memo.sections
                    st.Core.Memo.trials_reused st.Core.Memo.trials_run;
                  s
              in
              say
                "%-18s errors=%-4d trials=%-3d catastrophic=%5.1f%% (%d \
                 crash, %d infinite)  mean fidelity=%s"
                (Core.Policy.to_string policy)
                errors (Core.Campaign.n s)
                (Core.Campaign.pct_catastrophic s)
                (Core.Campaign.crashes s)
                (Core.Campaign.infinite s)
                (match Core.Campaign.mean_fidelity s with
                 | None -> "n/a"
                 | Some m ->
                   Printf.sprintf "%.1f %s" m b.Apps.App.fidelity_units);
              if Core.Campaign.errors_capped s then
                say
                  "  note: injectable pool (%d) smaller than request — \
                   each plan holds %d fault(s), not %d"
                  p.Core.Campaign.injectable_total
                  s.Core.Campaign.errors_planned errors;
              (policy, s))
            [ Core.Policy.Protect_control; Core.Policy.Protect_nothing ]
        in
        match json with
        | None -> ()
        | Some path ->
          (* The document itself comes from the builder the serve
             daemon uses, so the two surfaces cannot drift apart. *)
          Report.write_json ~path
            (Harness.Serve.inject_report ~app:name ~errors ~trials ~seed
               ~literal ~engine ~jobs ~checkpoint_stride
               ~fidelity_units:b.Apps.App.fidelity_units
               ~cache:
                 (if incremental then Some (cache_dir, !cache_total)
                  else None)
               summaries);
          say "wrote %s" path)
      (find_app name)
  in
  Cmd.v
    (Cmd.info "inject" ~doc:"Run a fault-injection campaign on one app")
    Term.(
      term_result
        (const action $ app_arg $ seed_arg $ errors_arg $ trials_arg
       $ literal_arg $ engine_arg $ jobs_arg $ stride_arg $ incremental_arg
       $ cache_dir_arg $ json_arg $ trace_arg $ metrics_arg))

let matrix_cmd =
  let split_commas s =
    List.filter
      (fun x -> x <> "")
      (List.map String.trim (String.split_on_char ',' s))
  in
  let apps_arg =
    let doc =
      "Comma-separated application names to sweep (default: every \
       registered app). Unknown names become $(b,failed) cells."
    in
    Arg.(
      value & opt (some string) None & info [ "apps" ] ~docv:"A,B,..." ~doc)
  in
  let policies_arg =
    let doc =
      "Comma-separated protection policies per app: $(b,control), \
       $(b,nothing), $(b,all)."
    in
    Arg.(
      value
      & opt string "control,nothing"
      & info [ "policies" ] ~docv:"P,..." ~doc)
  in
  let errors_list_arg =
    let doc = "Comma-separated error counts — one campaign cell each." in
    Arg.(value & opt string "1,5,20" & info [ "e"; "errors" ] ~docv:"N,..." ~doc)
  in
  let spec_arg =
    let doc =
      "JSON spec file. Present fields ($(b,apps), $(b,policies), \
       $(b,errors), $(b,trials), $(b,seed), $(b,literal)) override the \
       corresponding flags."
    in
    Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"FILE" ~doc)
  in
  let matrix_cache_dir_arg =
    let doc =
      "Result-cache root (created on demand; safe to delete at any \
       time). Every cell routes through the cache, so re-running an \
       unchanged spec — or overlapping a previous `inject \
       --incremental` run — reuses stored trial records."
    in
    Arg.(
      value & opt string "_etap_cache" & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let action apps policies errors_s trials seed literal spec engine jobs
      checkpoint_stride cache_dir json trace metrics =
    let ( let* ) = Result.bind in
    let* policies =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          match Harness.Matrix.policy_of_string s with
          | Ok p -> Ok (acc @ [ p ])
          | Error m -> Error (`Msg m))
        (Ok []) (split_commas policies)
    in
    let* errors =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          match int_of_string_opt s with
          | Some n when n > 0 -> Ok (acc @ [ n ])
          | _ -> Error (`Msg (Printf.sprintf "bad error count %S" s)))
        (Ok []) (split_commas errors_s)
    in
    let base =
      {
        Harness.Matrix.apps =
          (match apps with
           | None -> Harness.Matrix.default_spec.Harness.Matrix.apps
           | Some s -> split_commas s);
        mode =
          (if literal then Harness.Experiment.Literal
           else Harness.Experiment.Full);
        policies;
        errors;
        trials;
        seed;
      }
    in
    let* s =
      match spec with
      | None -> Ok base
      | Some path -> (
        match
          Report.Json.of_string
            (In_channel.with_open_bin path In_channel.input_all)
        with
        | Error m -> Error (`Msg (Printf.sprintf "%s: %s" path m))
        | Ok j -> (
          match Harness.Matrix.spec_of_json ~base j with
          | Ok s -> Ok s
          | Error m -> Error (`Msg (Printf.sprintf "%s: %s" path m))))
    in
    let spec_meta =
      Harness.Matrix.spec_meta ~engine ~jobs ~checkpoint_stride ~cache_dir s
    in
    with_obs ~trace ~metrics ~command:"matrix" ~meta:spec_meta @@ fun () ->
    let store = Core.Memo.Store.open_ cache_dir in
    let r =
      Harness.Matrix.run ?jobs ~engine ?checkpoint_stride ~store s
    in
    let t = Harness.Matrix.totals r in
    let meta =
      Harness.Matrix.report_meta ~engine ~jobs ~checkpoint_stride ~cache_dir r
    in
    emit ?json ~command:"matrix" ~meta
      [ Harness.Matrix.to_table r; Harness.Matrix.anomaly_table r ];
    say
      "cells: %d requested, %d ok (%d fully cached, %d executed), %d \
       skipped, %d failed | trials: %d reused, %d run | cache: %s"
      t.Harness.Matrix.requested t.Harness.Matrix.ok
      t.Harness.Matrix.cells_hit t.Harness.Matrix.cells_miss
      t.Harness.Matrix.skipped t.Harness.Matrix.failed
      t.Harness.Matrix.trials_reused t.Harness.Matrix.trials_run cache_dir;
    match Harness.Matrix.failures_message r with
    | None -> Ok ()
    | Some msg -> Error (`Msg msg)
  in
  Cmd.v
    (Cmd.info "matrix"
       ~doc:
         "Sweep apps x policies x error counts through the result cache: \
          every cell gets a typed status (ok/skipped/failed), anomalies \
          are clustered and ranked, and any failed cell exits non-zero")
    Term.(
      term_result
        (const action $ apps_arg $ policies_arg $ errors_list_arg
       $ trials_arg $ seed_arg $ literal_arg $ spec_arg $ engine_arg
       $ jobs_arg $ stride_arg $ matrix_cache_dir_arg $ json_arg $ trace_arg
       $ metrics_arg))

let asm_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Assembly source file (the syntax `etap disasm` prints).")
  in
  let action file =
    let source = In_channel.with_open_text file In_channel.input_all in
    match Ir.Asm.parse_program_res source with
    | Error m -> Error (`Msg m)
    | Ok prog ->
      (match Ir.Validate.check prog with
       | [] ->
         let r = Sim.Interp.run_exn (Sim.Code.of_prog prog) in
         say "ran %d dynamic instructions" r.Sim.Interp.dyn_count;
         (match r.Sim.Interp.outcome with
          | Sim.Interp.Done (Some v) ->
            say "main returned %s" (Sim.Value.to_string v)
          | Sim.Interp.Done None -> say "main returned (void)"
          | _ -> ());
         Ok ()
       | errs ->
         Error
           (`Msg
             (String.concat "\n"
                (List.map (Format.asprintf "%a" Ir.Validate.pp_error) errs))))
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble, validate and run a textual IR file")
    Term.(term_result (const action $ file_arg))

let compile_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Mlang source file (C-like surface syntax).")
  in
  let inject_arg =
    Arg.(value & opt (some int) None & info [ "inject" ]
           ~doc:"After compiling, run a fault campaign with this many errors.")
  in
  let show_arg =
    Arg.(value & flag & info [ "ir" ] ~doc:"Print the compiled IR.")
  in
  let action file inject show trials jobs =
    let source = In_channel.with_open_text file In_channel.input_all in
    match Mlang.Parser.parse_program_res source with
    | Error m -> Error (`Msg m)
    | Ok ast ->
      (match Mlang.Compile.to_ir ast with
       | exception Mlang.Ast.Type_error m -> Error (`Msg m)
       | prog ->
         if show then say "%s" (Format.asprintf "%a" Ir.Prog.pp prog);
         let code = Sim.Code.of_prog prog in
         let r = Sim.Interp.run_exn code in
         say "ran %d dynamic instructions%s" r.Sim.Interp.dyn_count
           (match r.Sim.Interp.outcome with
            | Sim.Interp.Done (Some v) ->
              Printf.sprintf ", main returned %s" (Sim.Value.to_string v)
            | _ -> "");
         (match inject with
          | None -> ()
          | Some errors ->
            let target = Core.Campaign.of_prog prog in
            List.iter
              (fun policy ->
                let p = Core.Campaign.prepare target policy in
                let s = Core.Campaign.run ?jobs p ~errors ~trials ~seed:1 in
                say "%-18s %d errors x %d: %4.1f%% catastrophic (pool %d)"
                  (Core.Policy.to_string policy)
                  errors (Core.Campaign.n s)
                  (Core.Campaign.pct_catastrophic s)
                  p.Core.Campaign.injectable_total)
              [ Core.Policy.Protect_control; Core.Policy.Protect_nothing ]);
         Ok ())
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile an Mlang source file; optionally print IR and campaign")
    Term.(
      term_result
        (const action $ file_arg $ inject_arg $ show_arg $ trials_arg
       $ jobs_arg))

let audit_cmd =
  let app_opt_arg =
    let doc =
      "Audit only this application (default: all registered apps)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)
  in
  let action app seed errors trials literal jobs json trace metrics =
    let mode =
      if literal then Harness.Experiment.Literal else Harness.Experiment.Full
    in
    let loaded_res =
      match app with
      | None -> Ok (Harness.Experiment.load_all ~seed ?jobs ())
      | Some name ->
        Result.map
          (fun a -> [ Harness.Experiment.load ~seed a ])
          (find_app name)
    in
    Result.bind loaded_res (fun loaded ->
        let obs_meta =
          [
            ( "app",
              match app with
              | None -> Report.Json.Null
              | Some a -> Report.Json.Str a );
            meta_int "errors" errors;
            meta_int "trials" trials;
            meta_int "seed" seed;
            ("literal", Report.Json.Bool literal);
            meta_jobs jobs;
          ]
        in
        with_obs ~trace ~metrics ~command:"audit" ~meta:obs_meta @@ fun () ->
        let rows =
          Harness.Taxonomy.audit ~errors ~trials ~seed:(seed + 100) ?jobs
            ~mode loaded
        in
        say "%s" (Harness.Taxonomy.render_audit ~mode rows);
        (match json with
         | None -> ()
         | Some path ->
           Report.write_json ~path
             (Report.make ~command:"audit"
                ~meta:
                  [
                    ( "app",
                      match app with
                      | None -> Report.Json.Null
                      | Some a -> Report.Json.Str a );
                    meta_int "errors" errors;
                    meta_int "trials" trials;
                    meta_int "seed" seed;
                    ("literal", Report.Json.Bool literal);
                    meta_jobs jobs;
                  ]
                [ Harness.Taxonomy.audit_table ~mode rows ]);
           say "wrote %s" path);
        match Harness.Taxonomy.audit_violations rows with
        | [] -> Ok ()
        | bad ->
          Error
            (`Msg
              (Printf.sprintf
                 "tagging soundness violated in %d audit cell(s) — see \
                  table above"
                 (List.length bad))))
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Dynamic taint audit: classify where injected faults flow and \
          verify the tagging soundness invariant (exit non-zero on \
          violation)")
    Term.(
      term_result
        (const action $ app_opt_arg $ seed_arg $ errors_arg $ trials_arg
       $ literal_arg $ jobs_arg $ json_arg $ trace_arg $ metrics_arg))

let profile_cmd =
  let top_arg =
    let doc = "Show at most $(docv) hottest sites (0 = all); sites past \
               the cutoff collapse into one aggregate row, so column \
               sums always equal the campaign totals." in
    Arg.(value & opt int 20 & info [ "top" ] ~docv:"N" ~doc)
  in
  let action name seed errors trials literal jobs checkpoint_stride top json
      trace metrics =
    Result.map
      (fun (app : Apps.App.t) ->
        let mode =
          if literal then Harness.Experiment.Literal
          else Harness.Experiment.Full
        in
        let meta =
          [
            ("app", Report.Json.Str name);
            meta_int "errors" errors;
            meta_int "trials" trials;
            meta_int "seed" seed;
            ("literal", Report.Json.Bool literal);
            meta_jobs jobs;
            ("checkpoint_stride", Report.Json.of_int_opt checkpoint_stride);
          ]
        in
        with_obs ~trace ~metrics ~command:"profile" ~meta @@ fun () ->
        let l = Harness.Experiment.load ~seed app in
        let p =
          Harness.Profile.run ~errors ~trials ~seed:(seed + 100) ?jobs
            ?checkpoint_stride ~mode l
        in
        let top = if top <= 0 then None else Some top in
        say "%s" (Harness.Profile.render ?top p);
        match json with
        | None -> ()
        | Some path ->
          Report.write_json ~path (Harness.Profile.report ?top p);
          say "wrote %s" path)
      (find_app name)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Fault-site attribution profile: run a campaign and rank the \
          (function, instruction) sites where injected faults landed by \
          how the trials ended")
    Term.(
      term_result
        (const action $ app_arg $ seed_arg $ errors_arg $ trials_arg
       $ literal_arg $ jobs_arg $ stride_arg $ top_arg $ json_arg
       $ trace_arg $ metrics_arg))

let table2_cmd =
  let action trials jobs json trace metrics =
    let meta = [ meta_int "trials" trials; meta_jobs jobs ] in
    with_obs ~trace ~metrics ~command:"table2" ~meta @@ fun () ->
    let loaded = Harness.Experiment.load_all ?jobs () in
    emit ?json ~command:"table2" ~meta
      [ Harness.Table2.to_table (Harness.Table2.run ~trials ?jobs loaded) ]
  in
  Cmd.v (Cmd.info "table2" ~doc:"Reproduce paper Table 2")
    Term.(const action $ trials_arg $ jobs_arg $ json_arg $ trace_arg
          $ metrics_arg)

let table3_cmd =
  let action jobs json trace metrics =
    let meta = [ meta_jobs jobs ] in
    with_obs ~trace ~metrics ~command:"table3" ~meta @@ fun () ->
    let loaded = Harness.Experiment.load_all ?jobs () in
    emit ?json ~command:"table3" ~meta
      [ Harness.Table3.to_table (Harness.Table3.run ?jobs loaded) ]
  in
  Cmd.v (Cmd.info "table3" ~doc:"Reproduce paper Table 3")
    Term.(const action $ jobs_arg $ json_arg $ trace_arg $ metrics_arg)

let figure_cmd =
  let n_arg =
    Arg.(required & pos 0 (some int) None & info [] ~docv:"N" ~doc:"1-6")
  in
  let action n trials jobs json trace metrics =
    if n < 1 || n > 6 then Error (`Msg "figure number must be 1-6")
    else begin
      let meta =
        [ meta_int "figure" n; meta_int "trials" trials; meta_jobs jobs ]
      in
      with_obs ~trace ~metrics ~command:"figure" ~meta @@ fun () ->
      let loaded = Harness.Experiment.load_all ?jobs () in
      let f =
        List.nth
          [
            Harness.Figures.fig1; Harness.Figures.fig2; Harness.Figures.fig3;
            Harness.Figures.fig4; Harness.Figures.fig5; Harness.Figures.fig6;
          ]
          (n - 1)
      in
      emit ?json ~command:"figure" ~meta
        [ Harness.Figures.to_table (f ~trials ?jobs loaded) ];
      Ok ()
    end
  in
  Cmd.v (Cmd.info "figure" ~doc:"Reproduce one paper figure")
    Term.(
      term_result
        (const action $ n_arg $ trials_arg $ jobs_arg $ json_arg $ trace_arg
       $ metrics_arg))

let ablation_cmd =
  let action trials jobs json trace metrics =
    let meta = [ meta_int "trials" trials; meta_jobs jobs ] in
    with_obs ~trace ~metrics ~command:"ablation" ~meta @@ fun () ->
    let loaded = Harness.Experiment.load_all ?jobs () in
    emit ?json ~command:"ablation" ~meta
      [
        Harness.Ablation.address_table
          (Harness.Ablation.address ~trials ?jobs loaded);
        Harness.Ablation.eligibility_table
          (Harness.Ablation.eligibility ~trials ?jobs ());
      ]
  in
  Cmd.v (Cmd.info "ablation" ~doc:"Run the ablation studies")
    Term.(const action $ trials_arg $ jobs_arg $ json_arg $ trace_arg
          $ metrics_arg)

let serve_cmd =
  let socket_arg =
    let doc =
      "Run the daemon on a Unix-domain socket at $(docv): one handler \
       per connection, all sharing the warm registry, result cache and \
       worker pool."
    in
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let stdio_arg =
    let doc =
      "Run the daemon over stdin/stdout: one connection, line-delimited \
       etap-serve/1 requests in, responses out."
    in
    Arg.(value & flag & info [ "stdio" ] ~doc)
  in
  let connect_arg =
    let doc =
      "Client mode: connect to a daemon at $(docv), forward request \
       lines from stdin, print each response line to stdout. Exits \
       non-zero if any response has status $(b,failed)."
    in
    Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"PATH" ~doc)
  in
  let gc_bytes_arg =
    let doc =
      "Between requests, evict least-recently-used cache entries until \
       the store fits under $(docv) bytes."
    in
    Arg.(
      value & opt (some int) None & info [ "gc-max-bytes" ] ~docv:"N" ~doc)
  in
  let gc_days_arg =
    let doc =
      "Between requests, evict cache entries not used for more than \
       $(docv) days."
    in
    Arg.(
      value
      & opt (some float) None
      & info [ "gc-max-age-days" ] ~docv:"D" ~doc)
  in
  let access_log_arg =
    let doc =
      "Append one etap-access/1 JSONL line per request to $(docv): id, \
       kind, group key, status, wall time, warm/cache/trial accounting \
       and the coalesced flag."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"PATH" ~doc)
  in
  let action socket stdio connect jobs engine checkpoint_stride cache_dir
      gc_max_bytes gc_max_age_days access_log trace metrics =
    let config =
      {
        Harness.Serve.jobs;
        engine;
        checkpoint_stride;
        cache_dir;
        gc_max_bytes;
        gc_max_age_days;
        access_log;
        gate = None;
      }
    in
    let daemon_exit t =
      match Harness.Serve.failed_requests t with
      | 0 -> Ok ()
      | n ->
        Error
          (`Msg (Printf.sprintf "%d request(s) answered with status failed" n))
    in
    let meta transport =
      [
        ("transport", Report.Json.Str transport);
        meta_jobs jobs;
        ("engine", Report.Json.Str (Sim.Interp.engine_name engine));
        ("checkpoint_stride", Report.Json.of_int_opt checkpoint_stride);
        ("cache_dir", Report.Json.Str cache_dir);
        ("gc_max_bytes", Report.Json.of_int_opt gc_max_bytes);
        ( "gc_max_age_days",
          match gc_max_age_days with
          | None -> Report.Json.Null
          | Some d -> Report.Json.Float d );
      ]
    in
    match (connect, socket, stdio) with
    | Some path, None, false ->
      (* Client: pipe stdin request lines to the daemon, echo response
         lines. The daemon does the work; no obs scope here. *)
      let ic, oc = Harness.Serve.connect ~path in
      let failed = ref 0 in
      (try
         while true do
           let line = input_line stdin in
           if String.trim line <> "" then begin
             output_string oc line;
             output_char oc '\n';
             flush oc;
             let resp = input_line ic in
             print_endline resp;
             match Harness.Proto.reply_of_line resp with
             | Ok r when r.Harness.Proto.ok -> ()
             | Ok _ | Error _ -> incr failed
           end
         done
       with End_of_file | Sys_error _ -> ());
      (try close_out oc with Sys_error _ -> ());
      if !failed = 0 then Ok ()
      else
        Error (`Msg (Printf.sprintf "%d request(s) failed" !failed))
    | None, Some path, false ->
      with_obs ~trace ~metrics ~command:"serve" ~meta:(meta "socket")
      @@ fun () ->
      let t = Harness.Serve.create ~config () in
      say "etap serve: listening on %s (cache: %s)" path cache_dir;
      Harness.Serve.run_socket t ~path;
      daemon_exit t
    | None, None, true ->
      (* stdout carries the protocol stream: no banner. *)
      with_obs ~trace ~metrics ~command:"serve" ~meta:(meta "stdio")
      @@ fun () ->
      let t = Harness.Serve.create ~config () in
      Harness.Serve.run_stdio t;
      daemon_exit t
    | _ ->
      Error (`Msg "pass exactly one of --socket PATH, --stdio, --connect PATH")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running campaign daemon: answers line-delimited \
          etap-serve/1 inject/matrix requests with the CLI's \
          etap-report/1 documents, keeping loaded apps, compiled \
          engines, prepared targets and section partitions warm across \
          requests, coalescing identical in-flight requests, and \
          scheduling all work through one shared worker pool")
    Term.(
      term_result
        (const action $ socket_arg $ stdio_arg $ connect_arg $ jobs_arg
       $ engine_arg $ stride_arg $ cache_dir_arg $ gc_bytes_arg $ gc_days_arg
       $ access_log_arg $ trace_arg $ metrics_arg))

let top_cmd =
  let connect_arg =
    let doc = "Socket path of the daemon to poll." in
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"PATH" ~doc)
  in
  let interval_arg =
    let doc = "Seconds between polls." in
    Arg.(value & opt float 2.0 & info [ "interval" ] ~docv:"S" ~doc)
  in
  let count_arg =
    let doc = "Stop after $(docv) polls (0 = run until the daemon goes away)." in
    Arg.(value & opt int 0 & info [ "count" ] ~docv:"N" ~doc)
  in
  let action path interval count =
    let ic, oc = Harness.Serve.connect ~path in
    (* Each poll sends one stats request; the daemon's interval section
       is exactly the window since our previous poll, so rates need no
       client-side bookkeeping. *)
    let poll i =
      output_string oc (Printf.sprintf {|{"id":%d,"cmd":"stats"}|} i);
      output_char oc '\n';
      flush oc;
      let line = input_line ic in
      match Harness.Proto.reply_of_line line with
      | Ok r when r.Harness.Proto.ok -> (
        match Report.Json.member "stats" r.Harness.Proto.body with
        | Some doc ->
          List.iter
            (fun t -> say "%s" (Report.to_text t))
            (Harness.Top.tables doc);
          Ok ()
        | None -> Error "response carried no stats document")
      | Ok r ->
        Error (Option.value ~default:"request failed" r.Harness.Proto.error)
      | Error e -> Error e
    in
    let rec go i =
      match poll i with
      | Error e -> Error (`Msg e)
      | Ok () ->
        if count > 0 && i >= count then Ok ()
        else begin
          Unix.sleepf interval;
          go (i + 1)
        end
    in
    let res = try go 1 with End_of_file | Sys_error _ -> Ok () in
    (try close_out oc with Sys_error _ -> ());
    res
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live daemon introspection: poll a running $(b,etap serve) \
          daemon's $(b,stats) verb and render uptime, request rates, \
          warm-registry and cache pressure, worker utilization and \
          per-kind latency tails")
    Term.(term_result (const action $ connect_arg $ interval_arg $ count_arg))

let bench_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD.json" ~doc:"Baseline bench report.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW.json" ~doc:"Candidate bench report.")
  in
  let fail_above_arg =
    let doc =
      "Exit non-zero if any cell regresses by more than $(docv) percent \
       (wall and ns/run up, Minstr/s down). Without this flag the diff \
       is warn-only and always exits zero."
    in
    Arg.(
      value & opt (some float) None & info [ "fail-above" ] ~docv:"PCT" ~doc)
  in
  let diff_action old_path new_path fail_above json =
    let read p =
      match
        Report.Json.of_string (In_channel.with_open_bin p In_channel.input_all)
      with
      | Ok j -> Ok j
      | Error e -> Error (`Msg (Printf.sprintf "%s: %s" p e))
    in
    let ( let* ) = Result.bind in
    let* old_doc = read old_path in
    let* new_doc = read new_path in
    match Harness.Bench_diff.diff ?fail_above ~old_doc ~new_doc () with
    | Error e -> Error (`Msg e)
    | Ok r ->
      let meta =
        [
          ("old", Report.Json.Str old_path);
          ("new", Report.Json.Str new_path);
          ( "fail_above",
            match fail_above with
            | None -> Report.Json.Null
            | Some f -> Report.Json.Float f );
          ("breaches", Report.Json.Int r.Harness.Bench_diff.breaches);
        ]
      in
      emit ?json ~command:"bench-diff" ~meta [ Harness.Bench_diff.table r ];
      if r.Harness.Bench_diff.breaches = 0 then Ok ()
      else
        Error
          (`Msg
            (Printf.sprintf "%d bench cell(s) regressed beyond %.1f%%"
               r.Harness.Bench_diff.breaches
               (Option.value ~default:0.0 fail_above)))
  in
  let diff_cmd =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Typed regression table over two bench reports: wall seconds \
            and ns/run (higher is worse) and Minstr/s (lower is worse) \
            per matching cell, with added/removed/skipped cells kept \
            visible. $(b,--fail-above) turns the table into a gate")
      Term.(
        term_result
          (const diff_action $ old_arg $ new_arg $ fail_above_arg $ json_arg))
  in
  Cmd.group
    (Cmd.info "bench" ~doc:"Compare bench trajectory artifacts")
    [ diff_cmd ]

let cache_cmd =
  let max_bytes_arg =
    let doc =
      "Evict least-recently-used entries until the store fits under \
       $(docv) bytes."
    in
    Arg.(value & opt (some int) None & info [ "max-bytes" ] ~docv:"N" ~doc)
  in
  let max_age_arg =
    let doc = "Evict entries not used for more than $(docv) days." in
    Arg.(
      value & opt (some float) None & info [ "max-age-days" ] ~docv:"D" ~doc)
  in
  let gc_action cache_dir max_bytes max_age_days json =
    let store = Core.Memo.Store.open_ cache_dir in
    let st = Core.Memo.Store.gc ?max_bytes ?max_age_days store in
    let meta =
      [
        ("cache_dir", Report.Json.Str cache_dir);
        ("max_bytes", Report.Json.of_int_opt max_bytes);
        ( "max_age_days",
          match max_age_days with
          | None -> Report.Json.Null
          | Some d -> Report.Json.Float d );
      ]
    in
    let table =
      Report.table ~id:"cache_gc"
        ~title:(Printf.sprintf "Cache GC: %s" cache_dir)
        ~columns:
          [
            Report.column ~key:"scanned" "scanned";
            Report.column ~key:"evicted" "evicted";
            Report.column ~key:"kept" "kept";
            Report.column ~key:"bytes_before" "bytes before";
            Report.column ~key:"bytes_after" "bytes after";
          ]
        [
          [
            Report.int st.Core.Memo.Store.gc_scanned;
            Report.int st.Core.Memo.Store.gc_evicted;
            Report.int st.Core.Memo.Store.gc_kept;
            Report.int st.Core.Memo.Store.gc_bytes_before;
            Report.int st.Core.Memo.Store.gc_bytes_after;
          ];
        ]
    in
    emit ?json ~command:"cache-gc" ~meta [ table ]
  in
  let gc_cmd =
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Evict result-cache entries, least-recently-used first: by \
            age ($(b,--max-age-days)), then oldest-first until under \
            $(b,--max-bytes). Loads refresh an entry's recency; with no \
            bound the pass only reports sizes and reaps stale temp \
            files")
      Term.(
        const gc_action $ cache_dir_arg $ max_bytes_arg $ max_age_arg
        $ json_arg)
  in
  let stats_action cache_dir json =
    let store = Core.Memo.Store.open_ cache_dir in
    let entries = Core.Memo.Store.scan store in
    let now = Unix.gettimeofday () in
    let n = List.length entries in
    let bytes = List.fold_left (fun acc (_, b, _) -> acc + b) 0 entries in
    let ages = List.map (fun (_, _, mtime) -> now -. mtime) entries in
    let in_bucket lo hi = List.length (List.filter (fun a -> a > lo && a <= hi) ages) in
    let hour = 3600.0 and day = 86400.0 in
    let le_1h = in_bucket neg_infinity hour in
    let le_1d = in_bucket hour day in
    let le_7d = in_bucket day (7.0 *. day) in
    let older = in_bucket (7.0 *. day) infinity in
    let age_extreme f = match ages with [] -> Report.text "-" | a :: tl ->
      let v = List.fold_left f a tl in
      Report.num ~text:(Printf.sprintf "%.1f" v) v
    in
    let meta = [ ("cache_dir", Report.Json.Str cache_dir) ] in
    let table =
      Report.table ~id:"cache_stats"
        ~title:(Printf.sprintf "Cache stats: %s" cache_dir)
        ~columns:
          [
            Report.column ~key:"entries" "entries";
            Report.column ~key:"bytes" "bytes";
            Report.column ~key:"age_le_1h" "age <=1h";
            Report.column ~key:"age_le_1d" "<=1d";
            Report.column ~key:"age_le_7d" "<=7d";
            Report.column ~key:"age_gt_7d" ">7d";
            Report.column ~key:"newest_age_s" "newest (s)";
            Report.column ~key:"oldest_age_s" "oldest (s)";
          ]
        [
          [
            Report.int n;
            Report.int bytes;
            Report.int le_1h;
            Report.int le_1d;
            Report.int le_7d;
            Report.int older;
            age_extreme min;
            age_extreme max;
          ];
        ]
    in
    emit ?json ~command:"cache-stats" ~meta [ table ]
  in
  let stats_cmd =
    Cmd.v
      (Cmd.info "stats"
         ~doc:
           "Report result-cache pressure without mutating it: entry \
            count, total bytes, and an age distribution over the same \
            store walk the GC pass uses")
      Term.(const stats_action $ cache_dir_arg $ json_arg)
  in
  Cmd.group
    (Cmd.info "cache" ~doc:"Maintain the campaign result cache")
    [ gc_cmd; stats_cmd ]

let () =
  let info =
    Cmd.info "etap" ~version:"1.0.0"
      ~doc:
        "Error-Tolerance Analysis Platform: control-data protection for \
         error-tolerant applications (IISWC 2006 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; tag_cmd; sections_cmd; disasm_cmd; asm_cmd;
            compile_cmd; inject_cmd; matrix_cmd; audit_cmd; profile_cmd; table2_cmd;
            table3_cmd; figure_cmd; ablation_cmd; serve_cmd; top_cmd; bench_cmd;
            cache_cmd;
          ]))
