lib/analysis/liveness.ml: Array Dataflow Ir List
