lib/sim/interp.ml: Array Code Float Hashtbl Ir Memory Printf Trap Value
