lib/ir/prog.ml: Array Format Func Hashtbl Int32 List Printf Ty
