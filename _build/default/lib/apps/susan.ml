(* Susan (MiBench): SUSAN-principle edge detection. Each pixel's USAN
   area is accumulated through a brightness-similarity LUT over a
   37-pixel circular mask; the edge response is g - n where g is the
   geometric threshold. Fidelity is PSNR between the corrupted and
   fault-free response maps (paper threshold: 10 dB).

   As in the original C (which indexes the LUT with unsigned chars),
   LUT indices are masked into range, so corrupted *data* cannot
   become a wild address — the property that makes Susan the paper's
   most error-tolerant benchmark. *)

let width = 32
let height = 32
let brightness_threshold = 20.0
let mask_count = 37
let g_threshold = 3 * mask_count * 100 / 4  (* 2775, as in SUSAN *)

(* 37-point circular mask (radius ~3.4), nucleus included: the offsets
   (dx, dy) with dx^2 + dy^2 <= 11 — exactly SUSAN's digital circle. *)
let mask_radius2 = 11

let mask_offsets =
  List.concat_map
    (fun dy ->
      List.filter_map
        (fun dx ->
          if (dx * dx) + (dy * dy) <= mask_radius2 then Some (dx, dy) else None)
        [ -3; -2; -1; 0; 1; 2; 3 ])
    [ -3; -2; -1; 0; 1; 2; 3 ]

let () = assert (List.length mask_offsets = mask_count)

(* Brightness-similarity LUT, c(diff) = 100 * exp(-(diff/t)^6),
   indexed by (diff + 256) & 511. *)
let similarity_lut =
  Array.init 512 (fun k ->
      let diff = float_of_int (k - 256) /. brightness_threshold in
      let c = 100.0 *. exp (-.(diff ** 6.0)) in
      int_of_float (Float.round c))

let flat_offsets =
  Array.of_list (List.map (fun (dx, dy) -> (dy * width) + dx) mask_offsets)

(* ------------------------------------------------------------------ *)
(* Host reference implementation.                                      *)

let host_edges (pixels : int array) : int array =
  let resp = Array.make (width * height) 0 in
  for y = 3 to height - 4 do
    for x = 3 to width - 4 do
      let p = (y * width) + x in
      let cen = pixels.(p) in
      let n = ref 0 in
      Array.iter
        (fun off ->
          let diff = pixels.(p + off) - cen in
          n := !n + similarity_lut.((diff + 256) land 511))
        flat_offsets;
      if !n < g_threshold then
        resp.(p) <- (g_threshold - !n) * 255 / g_threshold
    done
  done;
  resp

(* ------------------------------------------------------------------ *)
(* The Mlang program.                                                  *)

let mlang_program (pixels : int array) : Mlang.Ast.program =
  let open Mlang.Dsl in
  let g = g_threshold in
  program
    [
      garray_init_b "img" (App.ints_of_array pixels);
      garray_init_b "lut" (App.ints_of_array similarity_lut);
      garray_b "resp" (width * height);
    ]
    [
      proc "susan_edges" []
        [
          for_ "y" (i 3)
            (i (height - 3))
            [
              for_ "x" (i 3)
                (i (width - 3))
                [
                  let_ "p" ((v "y" *! i width) +! v "x");
                  let_ "cen" ("img".%(v "p"));
                  let_ "n" (i 0);
                  for_ "dy" (i (-3)) (i 4)
                    [
                      for_ "dx" (i (-3)) (i 4)
                        [
                          when_
                            (((v "dx" *! v "dx") +! (v "dy" *! v "dy"))
                            <=! i mask_radius2)
                            [
                              let_ "diff"
                                ("img".%(v "p" +! (v "dy" *! i width) +! v "dx")
                                -! v "cen");
                              set "n"
                                (v "n"
                                +! "lut".%((v "diff" +! i 256) &! i 511));
                            ];
                        ];
                    ];
                  when_
                    (v "n" <! i g)
                    [ sto "resp" (v "p") ((i g -! v "n") *! i 255 /! i g) ];
                ];
            ];
        ];
      fn ~eligible:false "main" [] ~ret:(Some Mlang.Ast.TInt)
        [ call_ "susan_edges" []; ret (i 0) ];
    ]

(* ------------------------------------------------------------------ *)

let build ~seed : App.built =
  let img = Workloads.Image_gen.scene ~seed ~width ~height in
  let prog = Mlang.Compile.to_ir (mlang_program img.Workloads.Image_gen.pixels) in
  let expected = host_edges img.Workloads.Image_gen.pixels in
  let score ~(golden : Sim.Interp.result) (r : Sim.Interp.result) =
    Fidelity.Psnr.psnr_db
      (App.out_ints golden prog "resp")
      (App.out_ints r prog "resp")
  in
  let host_check (r : Sim.Interp.result) =
    if App.out_ints r prog "resp" = expected then Ok ()
    else Error "susan: edge map differs from host reference"
  in
  {
    App.app_name = "susan";
    prog;
    fidelity_name = "PSNR";
    fidelity_units = "dB";
    higher_is_better = true;
    threshold = Some 10.0;
    score;
    host_check;
  }

let app : App.t =
  {
    App.name = "susan";
    description =
      "SUSAN-principle edge detection over a synthetic scene; fidelity = \
       PSNR of the edge-response map against the fault-free map (>= 10 dB \
       acceptable)";
    source = "MiBench";
    build;
  }
