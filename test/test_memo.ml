(* Compositional injection: section hashing and the content-addressed
   campaign cache (Core.Memo / Analysis.Section).

   The load-bearing properties:
   - section hashes are invariant under function/label renames and
     declaration reordering, and sensitive to exactly the edited
     function (local hash) and its call-graph ancestors (composed);
   - an incremental campaign composes, from cache + re-runs, trial
     records bit-identical to the monolithic [Campaign.run] — cold,
     warm, across jobs {1, 2, 4}, and after a one-function edit;
   - cache-entry records roundtrip bit-exactly through JSON;
   - a corrupted store degrades to misses, never to wrong results. *)

module SS = Set.Make (String)

let build_memo = Hashtbl.create 4

let built name =
  match Hashtbl.find_opt build_memo name with
  | Some b -> b
  | None ->
    let app =
      match Apps.Registry.find name with
      | Some a -> a
      | None -> Alcotest.failf "unknown app %s" name
    in
    let b = app.Apps.App.build ~seed:1 in
    Hashtbl.replace build_memo name b;
    b

(* Section tables under the Protect_nothing mask of the program's own
   tagging — the densest mask, so tag bits genuinely participate. *)
let sections_of_prog prog =
  let tagging = Core.Tagging.compute prog in
  let tags = Core.Tagging.mask tagging Core.Policy.Protect_nothing in
  Analysis.Section.compute ~tags prog

let hash_of sections name =
  match Analysis.Section.find sections name with
  | Some i -> (i.Analysis.Section.local_hash, i.Analysis.Section.section_hash)
  | None -> Alcotest.failf "no section for %s" name

(* ------------------- rename / reorder stability ------------------- *)

let rename_instr ren_f ren_l (i : Ir.Instr.t) : Ir.Instr.t =
  match i with
  | Ir.Instr.Call c -> Ir.Instr.Call { c with func = ren_f c.func }
  | Ir.Instr.Br (op, a, b, l) -> Ir.Instr.Br (op, a, b, ren_l l)
  | Ir.Instr.Brz (op, a, l) -> Ir.Instr.Brz (op, a, ren_l l)
  | Ir.Instr.Jmp l -> Ir.Instr.Jmp (ren_l l)
  | Ir.Instr.Label l -> Ir.Instr.Label (ren_l l)
  | i -> i

let rename_and_permute ~suffix ~perm_seed (prog : Ir.Prog.t) : Ir.Prog.t =
  let ren_f n = n ^ suffix in
  let ren_l n = "L" ^ suffix ^ n in
  let funcs =
    List.map
      (fun (f : Ir.Func.t) ->
        Ir.Func.make ~eligible:f.Ir.Func.eligible
          ~name:(ren_f f.Ir.Func.name) ~params:f.Ir.Func.params
          ~ret:f.Ir.Func.ret
          (Array.to_list (Array.map (rename_instr ren_f ren_l) f.Ir.Func.body)))
      (Ir.Prog.funcs prog)
  in
  let arr = Array.of_list funcs in
  let rng = Random.State.make [| perm_seed |] in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Ir.Prog.make
    ~entry:(ren_f prog.Ir.Prog.entry)
    ~globals:prog.Ir.Prog.globals (Array.to_list arr)

let hash_apps = [| "adpcm"; "mcf"; "gsm" |]

let stability_qcheck =
  QCheck.Test.make ~count:24
    ~name:"section hashes invariant under rename + reorder"
    QCheck.(
      triple (int_bound (Array.length hash_apps - 1)) small_nat
        (int_bound 2))
    (fun (app_i, perm_seed, sfx_i) ->
      let b = built hash_apps.(app_i) in
      let prog = b.Apps.App.prog in
      let suffix = [| "_x"; "_renamed"; "__2" |].(sfx_i) in
      let prog' = rename_and_permute ~suffix ~perm_seed prog in
      let s = sections_of_prog prog and s' = sections_of_prog prog' in
      List.for_all
        (fun (f : Ir.Func.t) ->
          hash_of s f.Ir.Func.name = hash_of s' (f.Ir.Func.name ^ suffix))
        (Ir.Prog.funcs prog))

(* --------------------- edit sensitivity ---------------------------- *)

(* Transitive callers of [f], plus [f] itself: the exact set whose
   composed hash must change under any edit confined to [f]. *)
let dirty_set prog f =
  let cg = Analysis.Callgraph.compute prog in
  let rec go acc frontier =
    match frontier with
    | [] -> acc
    | g :: rest ->
      let fresh =
        SS.diff (Analysis.Callgraph.callers cg g) acc |> SS.elements
      in
      go (List.fold_left (fun a x -> SS.add x a) acc fresh) (fresh @ rest)
  in
  go (SS.singleton f) [ f ]

let test_edit_sensitivity () =
  List.iter
    (fun app_name ->
      let prog = (built app_name).Apps.App.prog in
      let s = sections_of_prog prog in
      List.iter
        (fun (f : Ir.Func.t) ->
          let name = f.Ir.Func.name in
          let prog' = Analysis.Section.dead_pad ~func:name prog in
          let s' = sections_of_prog prog' in
          let dirty = dirty_set prog name in
          List.iter
            (fun (g : Ir.Func.t) ->
              let gname = g.Ir.Func.name in
              let l, c = hash_of s gname and l', c' = hash_of s' gname in
              Alcotest.(check bool)
                (Printf.sprintf "%s: local %s changed iff edited (%s)"
                   app_name gname name)
                (gname = name) (l <> l');
              Alcotest.(check bool)
                (Printf.sprintf "%s: composed %s changed iff ancestor of %s"
                   app_name gname name)
                (SS.mem gname dirty) (c <> c'))
            (Ir.Prog.funcs prog))
        (Ir.Prog.funcs prog))
    [ "adpcm"; "mcf" ]

let test_tag_sensitivity () =
  let prog = (built "adpcm").Apps.App.prog in
  let tagging = Core.Tagging.compute prog in
  let t_none = Core.Tagging.mask tagging Core.Policy.Protect_nothing in
  let t_ctrl = Core.Tagging.mask tagging Core.Policy.Protect_control in
  let s_none = Analysis.Section.compute ~tags:t_none prog in
  let s_ctrl = Analysis.Section.compute ~tags:t_ctrl prog in
  (* The masks genuinely differ on adpcm, so some section must hash
     differently — tag bits are part of the identity. *)
  Alcotest.(check bool) "masks differ" true (t_none <> t_ctrl);
  Alcotest.(check bool) "hashes see the mask" true
    (List.exists
       (fun (f : Ir.Func.t) ->
         hash_of s_none f.Ir.Func.name <> hash_of s_ctrl f.Ir.Func.name)
       (Ir.Prog.funcs prog))

(* ---------------------- record JSON roundtrip ---------------------- *)

let trial_gen : Core.Campaign.trial QCheck.Gen.t =
  let open QCheck.Gen in
  let site =
    oneof
      [
        return None;
        map2
          (fun func pc -> Some { Core.Outcome.func; pc })
          (oneofl [ "f"; "spfa"; "weird name\n\"x" ])
          small_nat;
      ]
  in
  let float_any =
    oneof
      [
        float;
        oneofl
          [ Float.nan; Float.infinity; Float.neg_infinity; -0.0; 1e-312 ];
      ]
  in
  let trap =
    oneof
      [
        map (fun a -> Sim.Trap.Out_of_bounds a) int;
        map (fun a -> Sim.Trap.Unaligned a) int;
        return Sim.Trap.Division_by_zero;
        map (fun a -> Sim.Trap.Type_confusion a) int;
        map (fun x -> Sim.Trap.Float_to_int_overflow x) float_any;
        map (fun d -> Sim.Trap.Call_stack_overflow d) small_nat;
        return Sim.Trap.Null_access;
      ]
  in
  let outcome =
    oneof
      [
        return Core.Outcome.Completed;
        return Core.Outcome.Infinite;
        map2 (fun t s -> Core.Outcome.Crash (t, s)) trap site;
      ]
  in
  map
    (fun (index, outcome, dyn_count, (planned, landed, fid)) ->
      {
        Core.Campaign.index;
        outcome;
        dyn_count;
        faults_planned = planned;
        faults_landed = landed;
        fidelity = fid;
        fault_flow = None;
      })
    (quad small_nat outcome small_nat
       (triple small_nat small_nat (option float_any)))

let roundtrip_qcheck =
  QCheck.Test.make ~count:500 ~name:"cache trial records roundtrip bit-exactly"
    (QCheck.make trial_gen)
    (fun t ->
      let t' = Core.Memo.trial_of_json (Core.Memo.trial_to_json t) in
      compare t t' = 0
      &&
      (* and through an actual serialized document, not just the tree *)
      match
        Report.Json.of_string
          (Report.Json.to_string (Core.Memo.trial_to_json t))
      with
      | Ok v -> compare (Core.Memo.trial_of_json v) t = 0
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e)

(* ------------------ composed vs monolithic equality ---------------- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let fresh_cache_dir () =
  incr dir_counter;
  let d = Printf.sprintf "_memo_test_cache_%d" !dir_counter in
  rm_rf d;
  d

let summary_core (s : Core.Campaign.summary) =
  ( s.Core.Campaign.trials,
    s.Core.Campaign.stats,
    s.Core.Campaign.errors_requested,
    s.Core.Campaign.errors_planned )

let check_same_records what (mono : Core.Campaign.summary)
    (inc : Core.Campaign.summary) =
  Alcotest.(check bool)
    (what ^ ": composed records bit-identical to monolithic")
    true
    (compare (summary_core mono) (summary_core inc) = 0)

(* Full cycle on one app: cold run == monolithic (and populates the
   store), warm run == monolithic with zero executed trials, and after
   a dead-pad edit of [edit_fn] the incremental run still matches the
   edited program's monolithic campaign while reusing clean sections. *)
let equivalence_cycle app_name edit_fn jobs () =
  let b = built app_name in
  let errors = 5 and trials = 12 and seed = 3 in
  let prep prog =
    let target = Core.Campaign.of_prog prog in
    let p = Core.Campaign.prepare target Core.Policy.Protect_nothing in
    let golden = target.Core.Campaign.baseline in
    (p, fun r -> b.Apps.App.score ~golden r)
  in
  let p, score = prep b.Apps.App.prog in
  let mono = Core.Campaign.run ~jobs ~score p ~errors ~trials ~seed in
  let dir = fresh_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let store = Core.Memo.Store.open_ dir in
      let cold, st =
        Core.Memo.run ~jobs ~score ~salt:app_name ~store p ~errors ~trials
          ~seed
      in
      check_same_records (app_name ^ " cold") mono cold;
      Alcotest.(check int) "cold: no hits" 0 st.Core.Memo.hits;
      Alcotest.(check int)
        "cold: all groups missed" st.Core.Memo.sections st.Core.Memo.misses;
      Alcotest.(check int) "cold: every trial ran" trials
        st.Core.Memo.trials_run;
      let warm, st2 =
        Core.Memo.run ~jobs ~score ~salt:app_name ~store p ~errors ~trials
          ~seed
      in
      check_same_records (app_name ^ " warm") mono warm;
      Alcotest.(check int)
        "warm: all groups hit" st2.Core.Memo.sections st2.Core.Memo.hits;
      Alcotest.(check int) "warm: nothing ran" 0 st2.Core.Memo.trials_run;
      Alcotest.(check int)
        "warm: nothing resumed" 0 warm.Core.Campaign.resumed_trials;
      (* One-function edit: dead code appended to [edit_fn]. Golden
         behaviour is unchanged, so the edited program's monolithic
         records equal the original's — and the incremental run must
         both match them and reuse the sections the edit left clean. *)
      let prog' = Analysis.Section.dead_pad ~func:edit_fn b.Apps.App.prog in
      let p', score' = prep prog' in
      let mono' = Core.Campaign.run ~jobs ~score:score' p' ~errors ~trials ~seed in
      let inc, st3 =
        Core.Memo.run ~jobs ~score:score' ~salt:app_name ~store p' ~errors
          ~trials ~seed
      in
      check_same_records (app_name ^ " edited") mono' inc;
      Alcotest.(check bool) "edit: some sections reused" true
        (st3.Core.Memo.hits > 0);
      Alcotest.(check bool) "edit: fewer trials executed" true
        (st3.Core.Memo.trials_run < trials);
      Alcotest.(check int) "edit: every trial accounted for" trials
        (st3.Core.Memo.trials_run + st3.Core.Memo.trials_reused))

(* Single-fault plans spread first ordinals uniformly over the pool, so
   with enough trials both phases of adpcm own some — after editing
   [decode], encode-owned groups must hit and decode-owned groups must
   miss and re-run, and the composed records still match monolithic. *)
let test_dirty_sections_rerun () =
  let b = built "adpcm" in
  let errors = 1 and trials = 16 and seed = 7 in
  let target = Core.Campaign.of_prog b.Apps.App.prog in
  let p = Core.Campaign.prepare target Core.Policy.Protect_nothing in
  let dir = fresh_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let store = Core.Memo.Store.open_ dir in
      let _ = Core.Memo.run ~jobs:2 ~store p ~errors ~trials ~seed in
      let prog' = Analysis.Section.dead_pad ~func:"decode" b.Apps.App.prog in
      let target' = Core.Campaign.of_prog prog' in
      let p' = Core.Campaign.prepare target' Core.Policy.Protect_nothing in
      let mono' = Core.Campaign.run ~jobs:2 p' ~errors ~trials ~seed in
      let inc, st =
        Core.Memo.run ~jobs:2 ~store p' ~errors ~trials ~seed
      in
      check_same_records "dirty rerun" mono' inc;
      Alcotest.(check bool) "clean sections hit" true (st.Core.Memo.hits > 0);
      Alcotest.(check bool) "dirty sections missed" true
        (st.Core.Memo.misses > 0);
      Alcotest.(check bool) "some trials re-ran" true
        (st.Core.Memo.trials_run > 0);
      Alcotest.(check bool) "some trials reused" true
        (st.Core.Memo.trials_reused > 0))

let test_corrupt_store_degrades () =
  let b = built "adpcm" in
  let errors = 4 and trials = 8 and seed = 11 in
  let target = Core.Campaign.of_prog b.Apps.App.prog in
  let p = Core.Campaign.prepare target Core.Policy.Protect_nothing in
  let mono = Core.Campaign.run ~jobs:1 p ~errors ~trials ~seed in
  let dir = fresh_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let store = Core.Memo.Store.open_ dir in
      let _ = Core.Memo.run ~jobs:1 ~store p ~errors ~trials ~seed in
      (* Smash every entry: truncated JSON, wrong schema, garbage. *)
      let n = ref 0 in
      let rec smash path =
        if Sys.is_directory path then
          Array.iter
            (fun e -> smash (Filename.concat path e))
            (Sys.readdir path)
        else begin
          let payload =
            match !n mod 3 with
            | 0 -> "{ not json at all"
            | 1 -> "{\"schema\": \"etap-cache/999\", \"trials\": []}\n"
            | _ -> "{\"schema\": \"etap-cache/1\", \"trials\": [{\"index\": 99}]}\n"
          in
          incr n;
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc payload)
        end
      in
      smash dir;
      let s, st = Core.Memo.run ~jobs:1 ~store p ~errors ~trials ~seed in
      check_same_records "corrupt store" mono s;
      Alcotest.(check int) "corrupt entries read as misses" 0
        st.Core.Memo.hits;
      (* ... and the rewritten entries serve the next run again. *)
      let s2, st2 = Core.Memo.run ~jobs:1 ~store p ~errors ~trials ~seed in
      check_same_records "repaired store" mono s2;
      Alcotest.(check int)
        "repaired: all hit" st2.Core.Memo.sections st2.Core.Memo.hits)

let test_empty_plan_bucket () =
  (* errors = 0: every plan is empty, every trial lands in the entry
     bucket, and the composed summary still matches monolithic. *)
  let b = built "adpcm" in
  let target = Core.Campaign.of_prog b.Apps.App.prog in
  let p = Core.Campaign.prepare target Core.Policy.Protect_nothing in
  let mono = Core.Campaign.run ~jobs:1 p ~errors:0 ~trials:5 ~seed:2 in
  let dir = fresh_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let store = Core.Memo.Store.open_ dir in
      let s, st = Core.Memo.run ~jobs:1 ~store p ~errors:0 ~trials:5 ~seed:2 in
      check_same_records "errors=0" mono s;
      Alcotest.(check int) "one group (entry bucket)" 1 st.Core.Memo.sections;
      let s2, st2 =
        Core.Memo.run ~jobs:1 ~store p ~errors:0 ~trials:5 ~seed:2
      in
      check_same_records "errors=0 warm" mono s2;
      Alcotest.(check int) "entry bucket hit" 1 st2.Core.Memo.hits)

(* ------------------------- concurrency ----------------------------- *)

(* The store's atomic-publish contract under real concurrency: unique
   temp names (pid + domain + counter) mean parallel writers of the
   same key never truncate each other's in-flight temp file, so a
   reader observes either nothing or one writer's complete document —
   never a torn or mixed one. *)

let list_store_files dir =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter (fun e -> walk (Filename.concat path e)) (Sys.readdir path)
    else acc := path :: !acc
  in
  if Sys.file_exists dir then walk dir;
  !acc

let test_store_save_race () =
  let dir = fresh_cache_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let store = Core.Memo.Store.open_ dir in
      let key = String.make 32 'a' in
      let blob i = String.make 4096 (Char.chr (65 + (i mod 26))) in
      let payload i =
        Report.Json.Obj
          [
            ("schema", Report.Json.Str Core.Memo.Store.schema);
            ("writer", Report.Json.Int i);
            ("blob", Report.Json.Str (blob i));
          ]
      in
      let writers =
        List.init 4 (fun i ->
            Domain.spawn (fun () ->
                for _ = 1 to 50 do
                  Core.Memo.Store.save store ~key (payload i)
                done))
      in
      let readers =
        List.init 2 (fun _ ->
            Domain.spawn (fun () ->
                let bad = ref 0 in
                for _ = 1 to 400 do
                  match Core.Memo.Store.load store ~key with
                  | None -> ()  (* not yet published *)
                  | Some (Report.Json.Obj kvs) -> (
                    match
                      ( List.assoc_opt "writer" kvs,
                        List.assoc_opt "blob" kvs )
                    with
                    | Some (Report.Json.Int i), Some (Report.Json.Str s)
                      when s = blob i ->
                      ()
                    | _ -> incr bad)
                  | Some _ -> incr bad
                done;
                !bad))
      in
      List.iter Domain.join writers;
      let torn = List.map Domain.join readers in
      Alcotest.(check (list int)) "no torn or mixed reads" [ 0; 0 ] torn;
      (match Core.Memo.Store.load store ~key with
       | Some (Report.Json.Obj kvs) ->
         Alcotest.(check bool) "final entry is one writer's document" true
           (match List.assoc_opt "writer" kvs with
            | Some (Report.Json.Int i) -> i >= 0 && i < 4
            | _ -> false)
       | _ -> Alcotest.fail "final entry unreadable after the race");
      Alcotest.(check (list string))
        "no temp files survive the race" []
        (List.filter
           (fun f -> Filename.check_suffix f ".tmp")
           (list_store_files dir)))

(* N domains race whole campaigns (overlapping group keys, jobs=1 each
   so nothing nests the pool) against one store. Afterwards every entry
   on disk must raw-parse as a complete etap-cache/1 document, no temp
   litter may remain, and a warm run must be all-hits and bit-exact
   against the monolithic campaign. *)
let concurrent_writers_qcheck =
  QCheck.Test.make ~count:6
    ~name:"concurrent campaign writers: store stays valid, hits bit-exact"
    QCheck.(pair (int_range 2 4) (int_bound 2))
    (fun (ndomains, seed_off) ->
      let b = built "adpcm" in
      let errors_list = [ 1; 3 ] in
      let trials = 8 and seed = 5 + seed_off in
      let target = Core.Campaign.of_prog b.Apps.App.prog in
      let p = Core.Campaign.prepare target Core.Policy.Protect_nothing in
      let dir = fresh_cache_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let store = Core.Memo.Store.open_ dir in
          let domains =
            List.init ndomains (fun _ ->
                Domain.spawn (fun () ->
                    List.iter
                      (fun errors ->
                        ignore
                          (Core.Memo.run ~jobs:1 ~store p ~errors ~trials
                             ~seed))
                      errors_list))
          in
          List.iter Domain.join domains;
          let files = list_store_files dir in
          let entries_valid =
            files <> []
            && List.for_all
                 (fun f ->
                   (not (Filename.check_suffix f ".tmp"))
                   &&
                   match
                     Report.Json.of_string
                       (In_channel.with_open_bin f In_channel.input_all)
                   with
                   | Ok j ->
                     Report.Json.member "schema" j
                     = Some (Report.Json.Str Core.Memo.Store.schema)
                   | Error _ -> false)
                 files
          in
          entries_valid
          && List.for_all
               (fun errors ->
                 let mono =
                   Core.Campaign.run ~jobs:1 p ~errors ~trials ~seed
                 in
                 let s, st =
                   Core.Memo.run ~jobs:1 ~store p ~errors ~trials ~seed
                 in
                 st.Core.Memo.trials_run = 0
                 && compare (summary_core mono) (summary_core s) = 0)
               errors_list))

let () =
  Alcotest.run "memo"
    [
      ( "hashing",
        [
          QCheck_alcotest.to_alcotest stability_qcheck;
          Alcotest.test_case "edit sensitivity (local + composed)" `Quick
            test_edit_sensitivity;
          Alcotest.test_case "tag mask is part of the identity" `Quick
            test_tag_sensitivity;
        ] );
      ("records", [ QCheck_alcotest.to_alcotest roundtrip_qcheck ]);
      ( "equivalence",
        [
          Alcotest.test_case "adpcm jobs=1" `Quick
            (equivalence_cycle "adpcm" "decode" 1);
          Alcotest.test_case "adpcm jobs=2" `Quick
            (equivalence_cycle "adpcm" "decode" 2);
          Alcotest.test_case "adpcm jobs=4" `Quick
            (equivalence_cycle "adpcm" "decode" 4);
          Alcotest.test_case "gsm jobs=1" `Quick
            (equivalence_cycle "gsm" "decode" 1);
          Alcotest.test_case "gsm jobs=2" `Quick
            (equivalence_cycle "gsm" "decode" 2);
          Alcotest.test_case "gsm jobs=4" `Quick
            (equivalence_cycle "gsm" "decode" 4);
        ] );
      ( "store",
        [
          Alcotest.test_case "dirty sections miss, clean sections hit" `Quick
            test_dirty_sections_rerun;
          Alcotest.test_case "corrupt entries degrade to misses" `Quick
            test_corrupt_store_degrades;
          Alcotest.test_case "empty plans go to the entry bucket" `Quick
            test_empty_plan_bucket;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "save race: atomic publish, unique temps" `Quick
            test_store_save_race;
          QCheck_alcotest.to_alcotest concurrent_writers_qcheck;
        ] );
    ]
