(* Fault-injection campaigns: the experimental loop of the paper.

   A [target] bundles a compiled program with its tagging analysis and
   a fault-free baseline run per policy. Each trial draws a fresh plan
   (deterministically from [seed] and the trial number), executes, and
   classifies the outcome. "Infinite execution" is a dynamic count
   above [timeout_factor] x the fault-free count.

   Trials are scored at the source: the optional [score] callback is
   applied to the raw simulator result inside the trial, and only the
   resulting [fidelity : float option] is retained. A summary therefore
   never holds a live [Memory.t] — campaign memory is O(1) per trial
   instead of O(memory image), and nothing heavy crosses domains in
   [Pool.map_n]. Callers that genuinely need the final memory image
   (output rendering, debugging) use the {!run_trial_result} escape
   hatch, which returns the raw [Sim.Interp.result] for one trial. *)

type target = {
  code : Sim.Code.t;
  tagging : Tagging.t;
  baseline : Sim.Interp.result;  (* fault-free reference run *)
  lenient : bool;                (* sim-safe sparse-memory model *)
  proto : Sim.Memory.t;
      (* prototype trial image: globals laid out once; per-trial
         memories are blit-copies of this, never rebuilt from the
         globals list *)
  engine : Sim.Interp.engine;
      (* which interpreter executes trials; the fast engine compiles a
         per-policy closure image at [prepare] time *)
  baseline_digest : string;
      (* content digest of the baseline's final memory image, computed
         once here: cache keys (lib/core/memo) fold it into every group
         key, and a sweep evaluates many keys per target *)
}

type prepared = {
  target : target;
  policy : Policy.t;
  tags : bool array array;
  injectable_total : int;  (* dynamic injectable instructions under policy *)
  budget : int;
  snapshots : Sim.Snapshot.t option;
      (* golden checkpoints for fork-from-prefix trials; [None] when
         checkpointing is disabled ([~checkpoint_stride:0]) *)
  image : Sim.Interp.image option;
      (* threaded-closure compilation of (code, tags) for the fast
         engine; [None] iff the target runs the reference engine *)
}

type trial = {
  index : int;
  outcome : Outcome.t;
  dyn_count : int;
  faults_planned : int;
      (* the plan's actual size: the request capped at the injectable
         pool ([Fault_model.planned]), not the raw [errors] argument *)
  faults_landed : int;
  fidelity : float option;
      (* [Some] iff the trial completed and a scorer was supplied *)
  fault_flow : Sim.Taint.summary option;
      (* [Some] iff the trial ran with taint on *)
}

type summary = {
  trials : trial list;
  stats : Stats.t;
  errors_requested : int;  (* the [errors] argument *)
  errors_planned : int;    (* per-trial plan size after the pool cap *)
  resumed_trials : int;
      (* trials that fast-forwarded past a non-empty prefix by
         restoring a checkpoint *)
  skipped_dyn : int;
      (* dynamic instructions those restores avoided re-executing *)
}

let timeout_factor = 10

(* [lenient] defaults to true: the paper ran on SimpleScalar sim-safe,
   whose sparse memory does not fault wild accesses. *)
let of_prog ?protect_addresses ?(lenient = true)
    ?(engine = Sim.Interp.Fast) (prog : Ir.Prog.t) =
  let code = Sim.Code.of_prog prog in
  let tagging = Tagging.compute ?protect_addresses prog in
  (* The baseline profiles exec counts, which only the reference engine
     supports — engine choice applies to trials, not to this run. *)
  let baseline = Sim.Interp.run_exn ~count_exec:true code in
  let proto = Sim.Memory.of_prog ~lenient prog in
  let baseline_digest = Sim.Memory.digest baseline.Sim.Interp.memory in
  { code; tagging; baseline; lenient; proto; engine; baseline_digest }

(* The injectable pool needs no profiling interpretation: the baseline
   already counted every dynamic execution, and the fault hook fires
   exactly once per execution of a tagged (value-producing)
   instruction — including call-return write-backs, which are counted
   at the DCall's own body slot. So the pool is the sum of the
   baseline's exec counts over tagged slots. (The fault-free baseline
   runs strict and trials run lenient, but a fault-free run never
   leaves the image, so the counts coincide; test_core pins this
   arithmetic against an actual profiled run.) *)
let injectable_pool (t : target) (tags : bool array array) =
  let counts = t.baseline.Sim.Interp.exec_counts in
  let total = ref 0 in
  Array.iteri
    (fun fid row ->
      let cr = counts.(fid) in
      Array.iteri (fun pc tagged -> if tagged then total := !total + cr.(pc)) row)
    tags;
  !total

let prepare ?checkpoint_stride (t : target) (policy : Policy.t) =
  let t0 = Obs.span_begin () in
  let tags = Tagging.mask t.tagging policy in
  let injectable_total = injectable_pool t tags in
  let budget = timeout_factor * t.baseline.Sim.Interp.dyn_count in
  (* Fast engine: compile the (code, tags) pair once per prepared
     policy; every trial and the checkpointing pass below reuse the
     closure image. *)
  let image =
    match t.engine with
    | Sim.Interp.Fast -> Some (Sim.Interp.compile ~tags t.code)
    | Sim.Interp.Ref -> None
  in
  (* Golden checkpointing pass: one fault-free interpretation under the
     policy's tag mask, recording a snapshot every [stride] injectable
     ordinals. Costs what the retired profiling run used to cost, and
     every trial of this prepared target fast-forwards from it. *)
  let snapshots =
    let stride =
      match checkpoint_stride with
      | Some 0 -> None  (* checkpointing off: trials run from scratch *)
      | Some s when s < 0 ->
        invalid_arg "Campaign.prepare: negative checkpoint stride"
      | Some s -> Some s
      | None ->
        Some
          (Sim.Snapshot.auto_stride ~injectable_total
             ~image_bytes:(Sim.Memory.size_bytes t.proto))
    in
    Option.map
      (fun stride ->
        Sim.Snapshot.build ~stride ~tags ?image ~budget
          ~memory:(Sim.Memory.copy t.proto) t.code)
      stride
  in
  if Obs.enabled () then begin
    Obs.count "campaign.prepares" 1;
    Obs.span_end ~name:"prepare" ~cat:"campaign"
      ~args:
        [
          ("policy", Policy.to_string policy);
          ("injectable_total", string_of_int injectable_total);
        ]
      t0
  end;
  { target = t; policy; tags; injectable_total; budget; snapshots; image }

(* One trial's raw simulator result, plus the dynamic instructions a
   checkpoint restore let it skip (0 when it ran from scratch). Taint
   trials always run from scratch: the shadow-taint twin threads its
   state through host-stack recursion and is not snapshotable. *)
let run_trial_raw ?(taint = false) (p : prepared) ~errors ~rng :
    Sim.Interp.result * int =
  let plan =
    Fault_model.make_plan ~rng ~injectable_total:p.injectable_total ~errors
  in
  let injection = Fault_model.injection ~tags:p.tags ~plan in
  match p.snapshots with
  | Some snaps when not taint ->
    (* Fast-forward: restore the nearest checkpoint at or before the
       trial's first planned ordinal. The prefix up to that ordinal is
       fault-free and identical in every trial, so the result is
       bit-exact versus from-scratch execution. An empty plan resolves
       to the last checkpoint and replays only the tail. *)
    let first = Hashtbl.fold (fun o _ acc -> min o acc) plan max_int in
    let snap = Sim.Snapshot.nearest snaps ~ordinal:first in
    let m = Sim.Interp.resume ?image:p.image ~injection snap in
    let skipped = Sim.Interp.snapshot_dyn snap in
    if Obs.enabled () then begin
      (* snapshot.* telemetry is stride-dependent by nature (how much
         prefix a restore skips depends on checkpoint spacing); only
         campaign.* and sim.* counters are stride-invariant. *)
      if skipped > 0 then begin
        Obs.count "snapshot.hit" 1;
        Obs.count "snapshot.skipped_dyn" skipped
      end
      else Obs.count "snapshot.miss" 1
    end;
    (Sim.Interp.finish m, skipped)
  | _ ->
    if Obs.enabled () then Obs.count "snapshot.miss" 1;
    (* Taint trials stay on the reference loop (the shadow twin is not
       compiled), so the image is withheld there. *)
    ( Sim.Interp.run
        ?image:(if taint then None else p.image)
        ~injection ~budget:p.budget ~taint
        ~memory:(Sim.Memory.copy p.target.proto) p.target.code,
      0 )

(* Escape hatch: the raw simulator result of one trial, memory image
   included. Everything else should go through {!run_trial}/{!run},
   which discard the image after scoring. *)
let run_trial_result ?taint (p : prepared) ~errors ~rng : Sim.Interp.result =
  fst (run_trial_raw ?taint p ~errors ~rng)

(* Per-trial telemetry: counters keyed only on what the trial computed
   (outcome class, landed faults and their sites) — never on which
   domain or stripe ran it — so totals are identical for any [--jobs];
   the wall-clock lives only in the span and the latency histogram. *)
let obs_trial ~index ~outcome ~(r : Sim.Interp.result) ~resumed t0 =
  let cls, cls_name =
    match (outcome : Outcome.t) with
    | Outcome.Crash _ -> (Obs.Crash, "crash")
    | Outcome.Infinite -> (Obs.Infinite, "infinite")
    | Outcome.Completed -> (Obs.Completed, "completed")
  in
  Obs.count "campaign.trials" 1;
  Obs.count ("campaign.trials." ^ cls_name) 1;
  let landed = r.Sim.Interp.faults_landed in
  if landed > 0 then Obs.count "campaign.faults_landed" landed;
  Array.iter
    (fun (func, pc) -> Obs.site ~func ~pc cls)
    r.Sim.Interp.landed_sites;
  Obs.observe "campaign.trial_us" (Obs.elapsed_us t0);
  Obs.span_end ~name:"trial" ~cat:"campaign"
    ~args:
      (("index", string_of_int index)
       :: ("outcome", cls_name)
       :: (if resumed then [ ("resumed", "1") ] else []))
    t0

let run_trial_skip ?score ?taint (p : prepared) ~errors ~rng ~index :
    trial * int =
  let t0 = Obs.span_begin () in
  let r, skipped = run_trial_raw ?taint p ~errors ~rng in
  let outcome = Outcome.of_result r in
  let fidelity =
    match (outcome, score) with
    | Outcome.Completed, Some score -> Some (score r)
    | _ -> None
  in
  if Obs.enabled () then obs_trial ~index ~outcome ~r ~resumed:(skipped > 0) t0;
  ( {
      index;
      outcome;
      dyn_count = r.Sim.Interp.dyn_count;
      faults_planned =
        Fault_model.planned ~injectable_total:p.injectable_total ~errors;
      faults_landed = r.Sim.Interp.faults_landed;
      fidelity;
      fault_flow = r.Sim.Interp.fault_flow;
    },
    skipped )

let run_trial ?score ?taint (p : prepared) ~errors ~rng ~index : trial =
  fst (run_trial_skip ?score ?taint p ~errors ~rng ~index)

(* Trial [i]'s RNG depends only on [(seed, i, errors, policy)] — not on
   any other trial — so trials may run in any order, on any domain, and
   still produce bit-exact results. [Policy.seed_tag] replaces the old
   [Hashtbl.hash policy] component with a stable explicit encoding
   (frozen to the same values, so historic outputs are unchanged). *)
let trial_rng ~seed ~errors ~policy index =
  Random.State.make [| seed; index; errors; Policy.seed_tag policy |]

let run ?jobs ?score ?taint (p : prepared) ~errors ~trials ~seed : summary =
  let results =
    Pool.map_n ?jobs trials (fun i ->
        let rng = trial_rng ~seed ~errors ~policy:p.policy i in
        run_trial_skip ?score ?taint p ~errors ~rng ~index:i)
  in
  let stats =
    Array.fold_left
      (fun acc (t, _) ->
        let flow =
          Option.map (fun (s : Sim.Taint.summary) -> s.Sim.Taint.flow)
            t.fault_flow
        in
        Stats.observe ?flow acc t.outcome ~fidelity:t.fidelity)
      Stats.empty results
  in
  {
    trials = Array.to_list (Array.map fst results);
    stats;
    errors_requested = errors;
    errors_planned =
      Fault_model.planned ~injectable_total:p.injectable_total ~errors;
    resumed_trials =
      Array.fold_left (fun n (_, sk) -> if sk > 0 then n + 1 else n) 0 results;
    skipped_dyn = Array.fold_left (fun n (_, sk) -> n + sk) 0 results;
  }

(* True when the pool was too small for the request, so each plan holds
   fewer faults than asked — surfaced by the CLI next to the summary. *)
let errors_capped (s : summary) = s.errors_planned < s.errors_requested

let n (s : summary) = s.stats.Stats.n
let crashes (s : summary) = s.stats.Stats.crashes
let infinite (s : summary) = s.stats.Stats.infinite
let completed (s : summary) = s.stats.Stats.completed
let pct_catastrophic (s : summary) = Stats.pct_catastrophic s.stats
let mean_fidelity (s : summary) = Stats.mean_fidelity s.stats

(* Fidelities of the scored completed trials, in trial order. *)
let fidelities (s : summary) = List.filter_map (fun t -> t.fidelity) s.trials
