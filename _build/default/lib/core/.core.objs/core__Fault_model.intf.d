lib/core/fault_model.mli: Hashtbl Random Sim
