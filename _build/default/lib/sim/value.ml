(* Runtime values and single-bit corruption.

   Integers are kept as native OCaml ints constrained to signed 32-bit
   range (the simulator re-normalizes after every operation); floats
   are IEEE-754 doubles. Bit flips act on the 32-bit two's-complement
   image of an integer and on the 64-bit IEEE image of a float,
   matching the paper's "flip a bit in the result of an instruction". *)

type t =
  | I of int   (* always within [-2^31, 2^31) *)
  | F of float

(* Sign-extend the low 32 bits of [v] — the canonical form of every
   integer value in the machine. *)
let sx32 v = ((v land 0xFFFFFFFF) lxor 0x80000000) - 0x80000000

let of_int32 n = sx32 (Int32.to_int n)

let flip_int ~bit v =
  assert (bit >= 0 && bit < 32);
  sx32 (v lxor (1 lsl bit))

let flip_float ~bit x =
  assert (bit >= 0 && bit < 64);
  Int64.float_of_bits (Int64.logxor (Int64.bits_of_float x) (Int64.shift_left 1L bit))

let flip ~bit = function
  | I v -> I (flip_int ~bit:(bit mod 32) v)
  | F x -> F (flip_float ~bit:(bit mod 64) x)

let bits = function I _ -> 32 | F _ -> 64

let equal a b =
  match (a, b) with
  | I x, I y -> x = y
  | F x, F y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | I _, F _ | F _, I _ -> false

let to_string = function
  | I v -> string_of_int v
  | F x -> Printf.sprintf "%g" x

let pp fmt v = Format.pp_print_string fmt (to_string v)
