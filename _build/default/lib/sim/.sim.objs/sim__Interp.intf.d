lib/sim/interp.mli: Code Hashtbl Memory Trap Value
