(* Protection policies compared in the paper's evaluation. *)

type t =
  | Protect_control   (* the paper's proposal: static analysis ON *)
  | Protect_nothing   (* static analysis OFF: every result injectable *)
  | Protect_all       (* everything protected: no injection possible *)

let to_string = function
  | Protect_control -> "protect-control"
  | Protect_nothing -> "protect-nothing"
  | Protect_all -> "protect-all"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let all = [ Protect_control; Protect_nothing; Protect_all ]

(* Per-policy component of the campaign trial seed. Campaigns used to
   mix in [Hashtbl.hash policy], whose value is an implementation
   detail of the OCaml runtime (it has changed across compiler
   versions and differs under flambda's constant folding). These
   constants freeze the values [Hashtbl.hash] produced on the runtime
   the seed-era goldens were generated with (OCaml 5.1.1), so every
   published campaign result stays byte-identical while the encoding
   itself is now explicit and portable. *)
let seed_tag = function
  | Protect_control -> 129913994
  | Protect_nothing -> 883721435
  | Protect_all -> 648017920
