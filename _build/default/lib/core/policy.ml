(* Protection policies compared in the paper's evaluation. *)

type t =
  | Protect_control   (* the paper's proposal: static analysis ON *)
  | Protect_nothing   (* static analysis OFF: every result injectable *)
  | Protect_all       (* everything protected: no injection possible *)

let to_string = function
  | Protect_control -> "protect-control"
  | Protect_nothing -> "protect-nothing"
  | Protect_all -> "protect-all"

let pp fmt t = Format.pp_print_string fmt (to_string t)

let all = [ Protect_control; Protect_nothing; Protect_all ]
