(* Regenerates the golden files under test/golden/.

   The files freeze the text output of the quick-scale experiments and
   the observable content of a fixed-seed campaign, so the report-layer
   and campaign refactors can be checked for byte parity. Run from the
   repository root:

     dune exec test/golden_gen/gen.exe -- test/golden

   Regenerate only when an output change is intended, and say so in the
   commit message. *)

let write dir name s =
  let path = Filename.concat dir name in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc s;
      Out_channel.output_string oc "\n");
  Printf.printf "wrote %s\n%!" path

(* The gcd kernel from the core tests: small, branchy, with a memory
   sink whose value serves as a cheap fidelity score. *)
let gcd_mlang =
  let open Mlang.Dsl in
  program
    [ garray "out" 2 ]
    [
      fn "gcd" [ p_int "a"; p_int "b" ] ~ret:(Some Mlang.Ast.TInt)
        [
          while_ (v "b" <>! i 0)
            [ let_ "t" (v "b"); set "b" (v "a" %! v "b"); set "a" (v "t") ];
          ret (v "a");
        ];
      fn "main" [] ~ret:(Some Mlang.Ast.TInt)
        [
          let_ "g" (call "gcd" [ i 252; i 105 ]);
          let_ "scaled" (v "g" *! i 3);
          sto "out" (i 0) (v "scaled");
          ret (i 0);
        ];
    ]

let campaign_dump ~jobs =
  let prog = Mlang.Compile.to_ir gcd_mlang in
  let target = Core.Campaign.of_prog prog in
  let p = Core.Campaign.prepare target Core.Policy.Protect_nothing in
  let score (r : Sim.Interp.result) =
    float_of_int (Sim.Memory.read_global_ints r.Sim.Interp.memory prog "out").(0)
  in
  let s = Core.Campaign.run ~jobs ~score p ~errors:2 ~trials:13 ~seed:5 in
  let buf = Buffer.create 512 in
  List.iter
    (fun (t : Core.Campaign.trial) ->
      let dyn, fid =
        match t.Core.Campaign.outcome with
        | Core.Outcome.Completed ->
          ( string_of_int t.Core.Campaign.dyn_count,
            match t.Core.Campaign.fidelity with
            | Some f -> Printf.sprintf "%.6f" f
            | None -> "-" )
        | Core.Outcome.Crash _ | Core.Outcome.Infinite -> ("-", "-")
      in
      Buffer.add_string buf
        (Printf.sprintf "trial %02d: %s landed=%d dyn=%s fidelity=%s\n"
           t.Core.Campaign.index
           (Core.Outcome.to_string t.Core.Campaign.outcome)
           t.Core.Campaign.faults_landed dyn fid))
    s.Core.Campaign.trials;
  Buffer.add_string buf
    (Printf.sprintf "totals: n=%d crashes=%d infinite=%d completed=%d"
       (Core.Campaign.n s) (Core.Campaign.crashes s)
       (Core.Campaign.infinite s) (Core.Campaign.completed s));
  Buffer.contents buf

(* Fault-site attribution profile for susan at quick scale, and the
   redacted metrics stream of the same campaign. Both come from the obs
   sink, so they freeze the telemetry layer's deterministic content:
   counter totals, site tallies and histogram counts (wall-clock-derived
   fields are nulled by [redact_volatile]). *)
let profile_susan ~render =
  let l =
    match Apps.Registry.find "susan" with
    | Some app -> Harness.Experiment.load ~seed:1 app
    | None -> failwith "susan not registered"
  in
  let sink = Obs.make () in
  let p =
    Obs.with_sink sink (fun () ->
        Harness.Profile.run ~errors:2 ~trials:8 ~seed:41 ~jobs:1
          ~mode:Harness.Experiment.Full l)
  in
  if render then Harness.Profile.render ~top:10 p
  else
    String.concat "\n"
      (Obs.metrics_lines ~redact_volatile:true ~command:"profile"
         ~meta:
           [
             ("app", Report.Json.Str "susan");
             ("errors", Report.Json.Int 2);
             ("trials", Report.Json.Int 8);
             ("seed", Report.Json.Int 41);
           ]
         (Obs.view sink))

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  let loaded =
    List.filter_map
      (fun n ->
        Option.map (Harness.Experiment.load ~seed:1) (Apps.Registry.find n))
      [ "mcf"; "adpcm" ]
  in
  write dir "table2_quick.txt"
    (Harness.Table2.render (Harness.Table2.run ~trials:4 ~jobs:1 loaded));
  write dir "table3_quick.txt" (Harness.Table3.render (Harness.Table3.run loaded));
  write dir "taxonomy_quick.txt"
    (Harness.Taxonomy.render ~mode:Harness.Experiment.Literal
       (Harness.Taxonomy.run ~errors:2 ~trials:8 ~seed:41
          ~mode:Harness.Experiment.Literal
          [ List.hd loaded ]));
  write dir "audit_quick.txt"
    (Harness.Taxonomy.render_audit ~mode:Harness.Experiment.Full
       (Harness.Taxonomy.audit ~errors:2 ~trials:8 ~seed:41
          ~mode:Harness.Experiment.Full
          [ List.hd loaded ]));
  let d1 = campaign_dump ~jobs:1 and d4 = campaign_dump ~jobs:4 in
  if d1 <> d4 then failwith "campaign dump differs between jobs=1 and jobs=4";
  write dir "campaign_gcd.txt" d1;
  write dir "profile_susan.txt" (profile_susan ~render:true);
  write dir "metrics_susan.txt" (profile_susan ~render:false)
