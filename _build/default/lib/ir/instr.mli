(** Instruction set of the MIPS-like IR.

    Instructions are laid out linearly inside a function body; [Label]
    is a pseudo-instruction marking branch targets. All loads and
    stores address memory in bytes through a base register plus a
    constant byte offset; every access must be 4-byte aligned. *)

type label = string

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Sll | Srl | Sra
type cmpop = Eq | Ne | Lt | Le | Gt | Ge
type fbinop = Fadd | Fsub | Fmul | Fdiv
type funop = Fneg | Fabs | Fsqrt

type t =
  | Li of Reg.t * int32
  | Lf of Reg.t * float
  | La of Reg.t * string
  | Mov of Reg.t * Reg.t
  | Bin of binop * Reg.t * Reg.t * Reg.t
  | Bini of binop * Reg.t * Reg.t * int32
  | Cmp of cmpop * Reg.t * Reg.t * Reg.t
  | Fbin of fbinop * Reg.t * Reg.t * Reg.t
  | Fun_ of funop * Reg.t * Reg.t
  | Fcmp of cmpop * Reg.t * Reg.t * Reg.t
  | I2f of Reg.t * Reg.t
  | F2i of Reg.t * Reg.t
  | Lw of Reg.t * Reg.t * int
  | Sw of Reg.t * Reg.t * int
  | Lb of Reg.t * Reg.t * int
      (** byte load, zero-extended; never alignment-traps *)
  | Sb of Reg.t * Reg.t * int  (** byte store of the low 8 bits *)
  | Lwf of Reg.t * Reg.t * int
  | Swf of Reg.t * Reg.t * int
  | Br of cmpop * Reg.t * Reg.t * label
  | Brz of cmpop * Reg.t * label
  | Jmp of label
  | Call of { dst : Reg.t option; func : string; args : Reg.t list }
  | Ret of Reg.t option
  | Label of label
  | Nop

val def : t -> Reg.t option
(** The register written by the instruction, if any. *)

val uses : t -> Reg.t list
(** All registers read by the instruction (including address bases and
    stored values). *)

val addr_uses : t -> Reg.t list
(** Registers used to form a memory address; corrupting one yields a
    wild access, so protection treats them like control. *)

val stored_value : t -> Reg.t option
(** The value operand of a store, which escapes to memory and is not
    tracked further by the static analysis. *)

val is_control : t -> bool
(** Branches, jumps and returns. *)

val is_branch : t -> bool
val branch_target : t -> label option

val is_terminator : t -> bool
(** True if control never falls through to the next instruction
    unconditionally ([Jmp], [Ret]) or may leave the straight line
    ([Br], [Brz]). *)

val string_of_binop : binop -> string
val string_of_cmpop : cmpop -> string
val string_of_fbinop : fbinop -> string
val string_of_funop : funop -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit
