lib/apps/adpcm.ml: App Array Fidelity Mlang Sim Workloads
