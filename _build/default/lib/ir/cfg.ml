(* Control-flow graph over a function's linear body.

   Blocks are maximal straight-line index ranges [lo, hi] of the body
   array. Edges follow fall-through, branch targets and jumps. Returns
   have no successors. A call is not a block terminator: we model
   interprocedural effects separately (summaries in the tagging
   analysis), matching the paper's treatment. *)

type block = {
  id : int;
  lo : int;  (* first body index of the block *)
  hi : int;  (* last body index, inclusive *)
  mutable succs : int list;
  mutable preds : int list;
}

type t = {
  func : Func.t;
  blocks : block array;
  block_of_index : int array;  (* body index -> block id *)
}

let leaders (f : Func.t) =
  let n = Array.length f.Func.body in
  let is_leader = Array.make (max n 1) false in
  if n > 0 then is_leader.(0) <- true;
  Array.iteri
    (fun i instr ->
      (match instr with
       | Instr.Label _ -> is_leader.(i) <- true
       | _ -> ());
      (match Instr.branch_target instr with
       | Some l -> is_leader.(Func.label_index f l) <- true
       | None -> ());
      if Instr.is_terminator instr && i + 1 < n then is_leader.(i + 1) <- true)
    f.Func.body;
  is_leader

let build (f : Func.t) =
  let n = Array.length f.Func.body in
  let is_leader = leaders f in
  let starts = ref [] in
  for i = n - 1 downto 0 do
    if is_leader.(i) then starts := i :: !starts
  done;
  let starts = Array.of_list !starts in
  let nb = Array.length starts in
  let blocks =
    Array.init nb (fun b ->
        let lo = starts.(b) in
        let hi = if b + 1 < nb then starts.(b + 1) - 1 else n - 1 in
        { id = b; lo; hi; succs = []; preds = [] })
  in
  let block_of_index = Array.make (max n 1) 0 in
  Array.iter
    (fun blk ->
      for i = blk.lo to blk.hi do
        block_of_index.(i) <- blk.id
      done)
    blocks;
  let add_edge src dst =
    let s = blocks.(src) and d = blocks.(dst) in
    if not (List.mem dst s.succs) then begin
      s.succs <- dst :: s.succs;
      d.preds <- src :: d.preds
    end
  in
  Array.iter
    (fun blk ->
      let last = f.Func.body.(blk.hi) in
      (match Instr.branch_target last with
       | Some l -> add_edge blk.id block_of_index.(Func.label_index f l)
       | None -> ());
      let falls_through =
        match last with
        | Instr.Jmp _ | Instr.Ret _ -> false
        | _ -> true
      in
      if falls_through && blk.hi + 1 < n then
        add_edge blk.id block_of_index.(blk.hi + 1))
    blocks;
  { func = f; blocks; block_of_index }

let n_blocks t = Array.length t.blocks
let block t id = t.blocks.(id)
let block_of_index t i = t.block_of_index.(i)

let instr_indices blk =
  let rec range i acc = if i < blk.lo then acc else range (i - 1) (i :: acc) in
  range blk.hi []

(* Iterate instructions of a block in reverse order (for backward
   analyses), calling [f index instr]. *)
let rev_iter_instrs t blk f =
  for i = blk.hi downto blk.lo do
    f i t.func.Func.body.(i)
  done

let iter_instrs t blk f =
  for i = blk.lo to blk.hi do
    f i t.func.Func.body.(i)
  done

(* Reverse postorder from the entry block, for fast forward fixpoints;
   unreachable blocks are appended at the end in index order. *)
let reverse_postorder t =
  let n = n_blocks t in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs t.blocks.(b).succs;
      order := b :: !order
    end
  in
  if n > 0 then dfs 0;
  let extra = ref [] in
  for b = n - 1 downto 0 do
    if not visited.(b) then extra := b :: !extra
  done;
  !order @ !extra

let pp fmt t =
  Format.fprintf fmt "@[<v>cfg %s:@," t.func.Func.name;
  Array.iter
    (fun blk ->
      Format.fprintf fmt "  B%d [%d..%d] -> %s@," blk.id blk.lo blk.hi
        (String.concat ","
           (List.map (fun s -> "B" ^ string_of_int s) (List.sort compare blk.succs))))
    t.blocks;
  Format.fprintf fmt "@]"
