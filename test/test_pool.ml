(* Tests for the domain pool: bit-exact determinism across job counts,
   clamping, order preservation and exception propagation. *)

let seq n f = Array.init n f

let test_matches_sequential () =
  let f i = (i * 2654435761) land 0xFFFF in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d equals sequential" jobs)
        (seq 37 f)
        (Core.Pool.map_n ~jobs 37 f))
    [ 1; 2; 3; 4; 8; 37; 100 ]

let test_empty_and_small () =
  Alcotest.(check (array int)) "n=0" [||] (Core.Pool.map_n ~jobs:4 0 Fun.id);
  Alcotest.(check (array int)) "n=1" [| 0 |] (Core.Pool.map_n ~jobs:4 1 Fun.id);
  (* a requested job count below 1 clamps to a sequential run *)
  Alcotest.(check (array int))
    "jobs=0 clamps" (seq 5 Fun.id)
    (Core.Pool.map_n ~jobs:0 5 Fun.id);
  Alcotest.(check (array int))
    "negative jobs clamp" (seq 5 Fun.id)
    (Core.Pool.map_n ~jobs:(-3) 5 Fun.id)

let test_map_list_order () =
  Alcotest.(check (list string))
    "order preserved"
    [ "a!"; "b!"; "c!"; "d!"; "e!" ]
    (Core.Pool.map_list ~jobs:3 (fun s -> s ^ "!") [ "a"; "b"; "c"; "d"; "e" ])

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      match Core.Pool.map_n ~jobs 16 (fun i -> if i = 11 then raise (Boom i) else i) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 11 -> ()
      | exception e -> raise e)
    [ 1; 4 ]

let test_default_jobs_positive () =
  Alcotest.(check bool) "at least one stripe" true (Core.Pool.default_jobs () >= 1)

(* The contract the campaign runner relies on: results land in index
   order even though stripes interleave arbitrarily in time. *)
let pool_determinism_prop =
  QCheck.Test.make ~name:"map_n deterministic for any (n, jobs)" ~count:60
    QCheck.(pair (int_bound 64) (int_range 1 9))
    (fun (n, jobs) ->
      let f i = Hashtbl.hash (i, n) in
      Core.Pool.map_n ~jobs n f = seq n f)

let () =
  Alcotest.run "pool"
    [
      ( "map",
        [
          Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
          Alcotest.test_case "empty and clamping" `Quick test_empty_and_small;
          Alcotest.test_case "map_list order" `Quick test_map_list_order;
          Alcotest.test_case "exceptions propagate" `Quick
            test_exception_propagates;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
          QCheck_alcotest.to_alcotest pool_determinism_prop;
        ] );
    ]
