(* IR-level cleanup passes run after lowering: dead-code elimination
   driven by liveness, plus a trivial peephole (self-moves, dead
   labels are kept — labels are structural). Iterates to a fixpoint.

   Only provably effect-free instructions are removed: memory
   operations, calls, control flow, and trapping arithmetic
   (div/rem/f2i) always survive. *)

let pure (i : Ir.Instr.t) =
  match i with
  | Li _ | Lf _ | La _ | Mov _ | Cmp _ | Fbin _ | Fun_ _ | Fcmp _ | I2f _ ->
    true
  | Bin (op, _, _, _) | Bini (op, _, _, _) -> (
    match op with
    | Div | Rem -> false  (* may trap *)
    | Add | Sub | Mul | And | Or | Xor | Sll | Srl | Sra -> true)
  | F2i _  (* may trap *)
  | Lw _ | Lb _ | Lwf _  (* may trap *)
  | Sw _ | Sb _ | Swf _ | Br _ | Brz _ | Jmp _ | Call _ | Ret _ | Label _
  | Nop ->
    false

(* One DCE pass; returns [None] when nothing was removed. *)
let dce_once (f : Ir.Func.t) : Ir.Func.t option =
  let cfg = Ir.Cfg.build f in
  let live = Analysis.Liveness.compute cfg in
  let live_after = Analysis.Liveness.live_after live in
  let keep = Array.make (Array.length f.Ir.Func.body) true in
  let removed = ref 0 in
  Array.iteri
    (fun i instr ->
      let dead =
        match Ir.Instr.def instr with
        | Some d -> pure instr && not (Ir.Reg.Set.mem d live_after.(i))
        | None -> (match instr with Ir.Instr.Nop -> true | _ -> false)
      in
      let self_move =
        match instr with
        | Ir.Instr.Mov (d, s) -> Ir.Reg.equal d s
        | _ -> false
      in
      if dead || self_move then begin
        keep.(i) <- false;
        incr removed
      end)
    f.Ir.Func.body;
  if !removed = 0 then None
  else begin
    let body = ref [] in
    Array.iteri
      (fun i instr -> if keep.(i) then body := instr :: !body)
      f.Ir.Func.body;
    Some
      (Ir.Func.make ~eligible:f.Ir.Func.eligible ~name:f.Ir.Func.name
         ~params:f.Ir.Func.params ~ret:f.Ir.Func.ret (List.rev !body))
  end

(* Drop blocks unreachable from the entry (e.g. the safety epilogue
   after a returning body). Whole blocks disappear, including their
   labels: a label is only a target if its block is reachable. *)
let remove_unreachable (f : Ir.Func.t) : Ir.Func.t =
  let cfg = Ir.Cfg.build f in
  let n = Ir.Cfg.n_blocks cfg in
  let reachable = Array.make n false in
  let rec dfs b =
    if not reachable.(b) then begin
      reachable.(b) <- true;
      List.iter dfs (Ir.Cfg.block cfg b).Ir.Cfg.succs
    end
  in
  if n > 0 then dfs 0;
  if Array.for_all Fun.id reachable then f
  else begin
    let body = ref [] in
    Array.iteri
      (fun i instr ->
        if reachable.(Ir.Cfg.block_of_index cfg i) then body := instr :: !body)
      f.Ir.Func.body;
    Ir.Func.make ~eligible:f.Ir.Func.eligible ~name:f.Ir.Func.name
      ~params:f.Ir.Func.params ~ret:f.Ir.Func.ret (List.rev !body)
  end

let dce_func (f : Ir.Func.t) : Ir.Func.t =
  let rec go f n =
    if n = 0 then f
    else match dce_once f with None -> f | Some f' -> go f' (n - 1)
  in
  go (remove_unreachable f) 10
  (* convergence bound; each pass strictly shrinks the body *)

let run (prog : Ir.Prog.t) : Ir.Prog.t =
  let funcs = List.map dce_func (Ir.Prog.funcs prog) in
  Ir.Prog.make ~entry:prog.Ir.Prog.entry ~globals:prog.Ir.Prog.globals funcs
