lib/mlang/compile.ml: Ast Ir Lower Opt Typecheck
