(* A function: a linear body of instructions plus metadata.

   [eligible] records the programmer's judgement that the function's
   data may tolerate error (paper, Section 4): only eligible functions
   are considered by the tagging analysis; everything in an ineligible
   function is protected. *)

type t = {
  name : string;
  params : Reg.t list;
  ret : Ty.t option;
  body : Instr.t array;
  labels : (string, int) Hashtbl.t;  (* label -> body index *)
  n_int_regs : int;
  n_flt_regs : int;
  eligible : bool;
}

exception Invalid of string

let invalidf fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let scan_registers body params =
  let max_int_reg = ref (-1) and max_flt_reg = ref (-1) in
  let see r =
    match r with
    | Reg.Int i -> if i > !max_int_reg then max_int_reg := i
    | Reg.Flt i -> if i > !max_flt_reg then max_flt_reg := i
  in
  List.iter see params;
  Array.iter
    (fun i ->
      (match Instr.def i with Some d -> see d | None -> ());
      List.iter see (Instr.uses i))
    body;
  (!max_int_reg + 1, !max_flt_reg + 1)

let build_labels name body =
  let labels = Hashtbl.create 16 in
  Array.iteri
    (fun idx instr ->
      match instr with
      | Instr.Label l ->
        if Hashtbl.mem labels l then
          invalidf "function %s: duplicate label %s" name l;
        Hashtbl.replace labels l idx
      | _ -> ())
    body;
  labels

let check_targets name body labels =
  Array.iter
    (fun instr ->
      match Instr.branch_target instr with
      | Some l when not (Hashtbl.mem labels l) ->
        invalidf "function %s: undefined label %s" name l
      | Some _ | None -> ())
    body

let make ?(eligible = true) ~name ~params ~ret body =
  let body = Array.of_list body in
  let labels = build_labels name body in
  check_targets name body labels;
  let n_int_regs, n_flt_regs = scan_registers body params in
  { name; params; ret; body; labels; n_int_regs; n_flt_regs; eligible }

let label_index t l =
  match Hashtbl.find_opt t.labels l with
  | Some i -> i
  | None -> invalidf "function %s: undefined label %s" t.name l

let length t = Array.length t.body

let pp fmt t =
  let pp_param fmt r =
    Format.fprintf fmt "%a:%a" Reg.pp r Ty.pp (Ty.of_reg r)
  in
  Format.fprintf fmt "@[<v>func %s(%a)%s%s:@,"
    t.name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_param)
    t.params
    (match t.ret with
     | None -> ""
     | Some ty -> " -> " ^ Ty.to_string ty)
    (if t.eligible then "" else "  ; protected");
  Array.iter
    (fun i ->
      match i with
      | Instr.Label _ -> Format.fprintf fmt "%a@," Instr.pp i
      | _ -> Format.fprintf fmt "  %a@," Instr.pp i)
    t.body;
  Format.fprintf fmt "@]"
