(* Front door of the Mlang compiler: typecheck, lower, optimize,
   validate. *)

let to_ir ?(optimize = true) (p : Ast.program) : Ir.Prog.t =
  Typecheck.check_program p;
  let prog = Lower.lower_program p in
  let prog = if optimize then Opt.run prog else prog in
  Ir.Validate.check_exn prog;
  prog
