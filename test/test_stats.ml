(* Property tests for the streaming statistics accumulator: Welford's
   recurrences must agree with the naive two-pass formulas, and merging
   partial accumulators (the parallel campaign path) must agree with a
   single pass over the concatenated observations. *)

let close a b =
  Float.abs (a -. b)
  <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let acc_of xs = List.fold_left Core.Stats.acc_add Core.Stats.acc_empty xs

let naive_mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let naive_variance xs =
  let m = naive_mean xs in
  List.fold_left (fun a x -> a +. (((x -. m) ** 2.0) /. float_of_int (List.length xs))) 0.0 xs

let nonempty_floats =
  QCheck.(list_of_size Gen.(int_range 1 200) (float_range (-1e6) 1e6))

let floats = QCheck.(list_of_size Gen.(int_range 0 200) (float_range (-1e6) 1e6))

let opt_close a b =
  match (a, b) with
  | Some a, Some b -> close a b
  | None, None -> true
  | _ -> false

let welford_matches_two_pass =
  QCheck.Test.make ~name:"welford mean/variance = naive two-pass" ~count:300
    nonempty_floats (fun xs ->
      let a = acc_of xs in
      opt_close (Core.Stats.acc_mean a) (Some (naive_mean xs))
      && opt_close (Core.Stats.acc_variance a) (Some (naive_variance xs)))

let merge_matches_single_pass =
  QCheck.Test.make ~name:"acc_merge = one pass over the concatenation"
    ~count:300
    QCheck.(pair floats floats)
    (fun (xs, ys) ->
      let merged = Core.Stats.acc_merge (acc_of xs) (acc_of ys) in
      let whole = acc_of (xs @ ys) in
      Core.Stats.acc_count merged = Core.Stats.acc_count whole
      && opt_close (Core.Stats.acc_mean merged) (Core.Stats.acc_mean whole)
      && opt_close (Core.Stats.acc_variance merged)
           (Core.Stats.acc_variance whole)
      && Core.Stats.acc_min merged = Core.Stats.acc_min whole
      && Core.Stats.acc_max merged = Core.Stats.acc_max whole)

(* The empty accumulator: every derived statistic is None, never nan. *)
let test_empty_acc () =
  let open Core.Stats in
  Alcotest.(check int) "count" 0 (acc_count acc_empty);
  Alcotest.(check (option (float 0.0))) "mean" None (acc_mean acc_empty);
  Alcotest.(check (option (float 0.0))) "variance" None (acc_variance acc_empty);
  Alcotest.(check (option (float 0.0))) "stddev" None (acc_stddev acc_empty);
  Alcotest.(check (option (float 0.0))) "min" None (acc_min acc_empty);
  Alcotest.(check (option (float 0.0))) "max" None (acc_max acc_empty)

let test_empty_summary () =
  let open Core.Stats in
  Alcotest.(check (float 0.0)) "pct on empty" 0.0 (pct_catastrophic empty);
  Alcotest.(check (option (float 0.0))) "fidelity on empty" None
    (mean_fidelity empty)

let test_single_observation () =
  let a = Core.Stats.acc_add Core.Stats.acc_empty 42.0 in
  Alcotest.(check (option (float 1e-12))) "mean" (Some 42.0)
    (Core.Stats.acc_mean a);
  Alcotest.(check (option (float 1e-12))) "variance" (Some 0.0)
    (Core.Stats.acc_variance a);
  Alcotest.(check (option (float 1e-12))) "min" (Some 42.0)
    (Core.Stats.acc_min a);
  Alcotest.(check (option (float 1e-12))) "max" (Some 42.0)
    (Core.Stats.acc_max a)

(* Outcome bookkeeping: observing three classified trials one at a time
   and merging partial summaries give the same breakdown. *)
let test_observe_and_merge () =
  let open Core in
  let crash =
    Stats.observe Stats.empty
      (Outcome.Crash (Sim.Trap.Division_by_zero, None))
      ~fidelity:None
  in
  let completed =
    Stats.observe Stats.empty Outcome.Completed ~fidelity:(Some 80.0)
  in
  let infinite = Stats.observe Stats.empty Outcome.Infinite ~fidelity:None in
  let s = Stats.merge crash (Stats.merge completed infinite) in
  Alcotest.(check int) "n" 3 s.Stats.n;
  Alcotest.(check int) "crashes" 1 s.Stats.crashes;
  Alcotest.(check int) "infinite" 1 s.Stats.infinite;
  Alcotest.(check int) "completed" 1 s.Stats.completed;
  Alcotest.(check int) "catastrophic" 2 (Stats.catastrophic s);
  Alcotest.(check (option (float 1e-12))) "fidelity" (Some 80.0)
    (Stats.mean_fidelity s);
  (* an unscored completed trial counts for the breakdown but not for
     the fidelity accumulator *)
  let s' = Stats.observe s Outcome.Completed ~fidelity:None in
  Alcotest.(check int) "completed'" 2 s'.Stats.completed;
  Alcotest.(check (option (float 1e-12))) "fidelity unchanged" (Some 80.0)
    (Stats.mean_fidelity s')

let () =
  Alcotest.run "stats"
    [
      ( "accumulator",
        [
          QCheck_alcotest.to_alcotest welford_matches_two_pass;
          QCheck_alcotest.to_alcotest merge_matches_single_pass;
          Alcotest.test_case "empty accumulator" `Quick test_empty_acc;
          Alcotest.test_case "single observation" `Quick
            test_single_observation;
        ] );
      ( "summary",
        [
          Alcotest.test_case "empty summary" `Quick test_empty_summary;
          Alcotest.test_case "observe and merge" `Quick
            test_observe_and_merge;
        ] );
    ]
