(** Dynamic taint audit of the tagging analysis.

    Runs a campaign under the shadow-taint interpreter
    ({!Campaign.run} with [~taint:true]) and checks, per policy, the
    promise the static analysis makes:

    - [Protect_control]: no fault reaches a branch operand along a
      memory-free chain (through-memory contamination is the paper's
      documented residual — no memory disambiguation — and is reported,
      not flagged);
    - [Protect_all]: nothing is injectable, so taint never propagates;
    - [Protect_nothing]: no promise — its control contamination is the
      experiment's positive control.

    See DESIGN.md §11. *)

type violation = {
  trial : int;
  site : (string * int) option;
      (** (function, body index) of the first memory-free branch whose
          operand was tainted *)
}

type report = {
  policy : Policy.t;
  errors : int;  (** per-trial faults requested *)
  errors_planned : int;  (** after the injectable-pool cap *)
  trials : int;
  seed : int;
  injectable_total : int;
  stats : Stats.t;  (** includes the fault-flow class counters *)
  control_free : int;  (** memory-free control contaminations, summed *)
  control_via_memory : int;  (** through-memory residual, summed *)
  address_hits : int;
  trap_operand_hits : int;
  memory_hits : int;
  violations : violation list;
}

val run :
  ?jobs:int -> Campaign.prepared -> errors:int -> trials:int -> seed:int ->
  report
(** Deterministic and jobs-independent, like {!Campaign.run}. *)

val sound : report -> bool
(** No trial broke the policy's promise. *)

val describe : report -> string
(** One-line verdict, naming the first violation site if any. *)

val check : report -> unit
(** Raises [Failure] with {!describe} when the report is not sound. *)
