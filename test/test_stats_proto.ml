(* Live daemon introspection (DESIGN.md §18).

   The load-bearing properties:
   - [Obs.diff] is the exact interval between two snapshots of a
     growing sink, and it distributes over [Obs.merge] — so interval
     deltas inherit the jobs-invariance of the totals (qcheck'd at the
     histogram and the view level, then witnessed end-to-end: the same
     request stream against a jobs=1 and a jobs=2 daemon yields
     byte-identical interval counter sections);
   - the [stats] verb answers a versioned etap-stats/1 document whose
     interval section covers exactly the requests since the previous
     [stats] call;
   - the access log writes one etap-access/1 line per request, with
     per-request attribution (a coalesced pair logs its execution
     exactly once, on the winner's line);
   - [bench diff] breaches only on direction-adjusted regressions over
     the threshold, and never on added/removed/skipped cells;
   - [Obs.openmetrics_lines] emits well-formed OpenMetrics text:
     cumulative monotone buckets, [_count] equal to the histogram
     count, a final [# EOF]. *)

module J = Report.Json

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let fresh_path prefix =
  incr dir_counter;
  let d = Printf.sprintf "_stats_test_%s_%d" prefix !dir_counter in
  rm_rf d;
  d

let with_serve ?gate ?access_log ?(jobs = Some 2) f =
  let dir = fresh_path "cache" in
  let config =
    {
      Harness.Serve.default_config with
      cache_dir = dir;
      jobs;
      gate;
      access_log;
    }
  in
  let t = Harness.Serve.create ~config () in
  Fun.protect
    ~finally:(fun () ->
      Harness.Serve.shutdown t;
      rm_rf dir)
    (fun () -> f t)

(* One connection against [t]'s handler, pipes standing in for the
   socket: write [lines], close, collect every response line. *)
let exchange t (lines : string list) : string list =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr req_r in
  let oc = Unix.out_channel_of_descr resp_w in
  let handler =
    Thread.create
      (fun () ->
        ignore (Harness.Serve.serve_connection t ~ic ~oc);
        close_out_noerr oc)
      ()
  in
  let req = Unix.out_channel_of_descr req_w in
  List.iter
    (fun l ->
      output_string req l;
      output_char req '\n')
    lines;
  close_out req;
  let resp_ic = Unix.in_channel_of_descr resp_r in
  let rec collect acc =
    match input_line resp_ic with
    | l -> collect (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = collect [] in
  Thread.join handler;
  close_in_noerr resp_ic;
  close_in_noerr ic;
  responses

let reply_exn line =
  match Harness.Proto.reply_of_line line with
  | Ok r -> r
  | Error m -> Alcotest.failf "unreadable response %S: %s" line m

let member_exn name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "document without %S" name

let get_path path doc =
  List.fold_left (fun acc k -> member_exn k acc) doc path

let geti path doc =
  match get_path path doc with
  | J.Int i -> i
  | j -> Alcotest.failf "expected an int, got %s" (J.to_compact_string j)

let stats_doc line =
  let r = reply_exn line in
  if not r.Harness.Proto.ok then
    Alcotest.failf "stats request failed: %s"
      (Option.value ~default:"(no error)" r.Harness.Proto.error);
  member_exn "stats" r.Harness.Proto.body

let stats_line id = Printf.sprintf {|{"id":%d,"cmd":"stats"}|} id

let inject_line ?(id = 1) ~errors ~trials ~seed app =
  Printf.sprintf
    {|{"id":%d,"cmd":"inject","app":"%s","errors":%d,"trials":%d,"seed":%d}|}
    id app errors trials seed

(* ------------------------- diff algebra ---------------------------- *)

let hist_of xs = List.fold_left Obs.Hist.add Obs.Hist.empty xs

let hist_eq a b =
  Obs.Hist.count a = Obs.Hist.count b
  && Obs.Hist.buckets a = Obs.Hist.buckets b

let samples =
  QCheck.(
    list_of_size
      Gen.(int_range 0 80)
      (oneof [ float_range (-10.0) 1e9; always 0.0; always 1e-12 ]))

(* A histogram grown from [xs] to [xs @ ys]: the diff of its two
   snapshots is exactly the histogram of the growth. *)
let hist_diff_exact =
  QCheck.Test.make ~name:"Hist.diff of a growth is exact" ~count:300
    QCheck.(pair samples samples)
    (fun (xs, ys) ->
      hist_eq (Obs.Hist.diff (hist_of (xs @ ys)) (hist_of xs)) (hist_of ys))

(* Recording ops, appliable to the ambient sink — the view-level
   algebra is checked on views produced by real sinks, not records
   assembled by hand, so the sorted-assoc invariants hold. *)
type op =
  | Count of string * int
  | Observe of string * float
  | Site of string * int * Obs.cls

let apply_ops ops =
  List.iter
    (function
      | Count (n, v) -> Obs.count n v
      | Observe (n, x) -> Obs.observe n x
      | Site (f, pc, c) -> Obs.site ~func:f ~pc c)
    ops

let view_of ops =
  let s = Obs.make () in
  Obs.with_sink s (fun () -> apply_ops ops);
  Obs.view s

let op_gen =
  QCheck.Gen.(
    oneof
      [
        map2
          (fun n v -> Count (n, v))
          (oneofl [ "a"; "b"; "c.d" ])
          (int_range 0 50);
        map2
          (fun n x -> Observe (n, x))
          (oneofl [ "h"; "h.two" ])
          (float_range 0.5 1e6);
        map3
          (fun f pc c -> Site (f, pc, c))
          (oneofl [ "f"; "g" ])
          (int_range 0 3)
          (oneofl [ Obs.Crash; Obs.Infinite; Obs.Completed ]);
      ])

let ops_arb = QCheck.make QCheck.Gen.(list_size (int_range 0 40) op_gen)

(* Span-free view equality: counters and site tallies structurally,
   histograms bucket-by-bucket. *)
let view_eq (a : Obs.view) (b : Obs.view) =
  a.Obs.counters = b.Obs.counters
  && a.Obs.sites = b.Obs.sites
  && List.map fst a.Obs.hists = List.map fst b.Obs.hists
  && List.for_all2
       (fun (_, x) (_, y) -> hist_eq x y)
       a.Obs.hists b.Obs.hists

(* The property the stats verb's exactness rests on: with per-domain
   buffers [a] and [b] each growing by a delta, diffing the merged
   snapshots equals merging the per-buffer diffs. *)
let diff_distributes_over_merge =
  QCheck.Test.make ~name:"Obs.diff distributes over Obs.merge" ~count:150
    QCheck.(quad ops_arb ops_arb ops_arb ops_arb)
    (fun (a0, da, b0, db) ->
      let a0v = view_of a0 and b0v = view_of b0 in
      let a1v = view_of (a0 @ da) and b1v = view_of (b0 @ db) in
      view_eq
        (Obs.diff (Obs.merge a1v b1v) (Obs.merge a0v b0v))
        (Obs.merge (Obs.diff a1v a0v) (Obs.diff b1v b0v)))

(* Live multi-domain sink: snapshots bracket joined phases exactly,
   and the interval is identical for any domain fan-out. *)
let test_multi_domain_interval () =
  let phase0 = List.init 300 (fun i -> Count ("campaign.trials", 1 + (i mod 3))) in
  let phase1 =
    List.init 200 (fun i ->
        if i mod 5 = 0 then Observe ("trial.us", float_of_int (i + 1))
        else Count ("campaign.trials", 1))
    @ [ Site ("f", 2, Obs.Crash); Site ("f", 2, Obs.Completed) ]
  in
  let split n ops =
    List.init n (fun d ->
        List.filteri (fun i _ -> i mod n = d) ops)
  in
  let run fan =
    let s = Obs.make () in
    Obs.with_sink s (fun () ->
        let go ops =
          let ds =
            List.map (fun o -> Domain.spawn (fun () -> apply_ops o)) (split fan ops)
          in
          List.iter Domain.join ds
        in
        go phase0;
        let s0 = Obs.snapshot s in
        go phase1;
        let s1 = Obs.snapshot s in
        Obs.diff s1 s0)
  in
  let d1 = run 1 and d2 = run 2 in
  let expected = view_of phase1 in
  Alcotest.(check bool) "interval = phase-1 ops exactly" true
    (view_eq d1 expected);
  Alcotest.(check bool) "interval invariant under domain fan-out" true
    (view_eq d1 d2)

(* ------------------------- stats protocol -------------------------- *)

let test_stats_document () =
  with_serve @@ fun t ->
  let responses =
    exchange t
      [
        stats_line 1;
        inject_line ~id:2 ~errors:2 ~trials:4 ~seed:1 "adpcm";
        stats_line 3;
      ]
  in
  Alcotest.(check int) "every line answered" 3 (List.length responses);
  let d1 = stats_doc (List.nth responses 0) in
  let d2 = stats_doc (List.nth responses 2) in
  (match member_exn "schema" d2 with
   | J.Str s ->
     Alcotest.(check string) "schema marker" "etap-stats/1" s
   | _ -> Alcotest.fail "schema is not a string");
  Alcotest.(check bool) "uptime covers the window" true
    (geti [ "uptime_us" ] d2 >= geti [ "window_us" ] d2);
  Alcotest.(check bool) "window is positive" true (geti [ "window_us" ] d2 > 0);
  Alcotest.(check int) "first stats sees itself served" 1
    (geti [ "requests"; "served" ] d1);
  Alcotest.(check int) "served total" 3 (geti [ "requests"; "served" ] d2);
  Alcotest.(check int) "no failures" 0 (geti [ "requests"; "failed" ] d2);
  Alcotest.(check int) "executor workers" 2 (geti [ "executor"; "workers" ] d2);
  Alcotest.(check int) "one app warm" 1 (geti [ "warm"; "apps" ] d2);
  Alcotest.(check bool) "store populated" true
    (geti [ "store"; "entries" ] d2 > 0);
  (* The interval section covers exactly the requests since the
     previous stats call: the inject plus this stats request. *)
  Alcotest.(check int) "interval served = inject + this stats" 2
    (geti [ "interval"; "counters"; "serve.requests" ] d2);
  Alcotest.(check bool) "interval saw the campaign" true
    (geti [ "interval"; "counters"; "campaign.trials" ] d2 > 0);
  Alcotest.(check int) "interval inject latency count" 1
    (geti [ "interval"; "latency"; "inject"; "count" ] d2);
  (* Totals carry latency digests for every kind seen so far. *)
  Alcotest.(check int) "totals stats latency count" 1
    (geti [ "totals"; "latency"; "stats"; "count" ] d2)

(* The same request stream against a jobs=1 and a jobs=2 daemon:
   byte-identical interval counter sections (DESIGN.md §13's contract
   surfaced through the stats verb). *)
let test_stats_jobs_invariance () =
  let lines =
    [ stats_line 1; inject_line ~id:2 ~errors:2 ~trials:5 ~seed:1 "gsm";
      stats_line 3 ]
  in
  let interval_counters jobs =
    with_serve ~jobs @@ fun t ->
    let responses = exchange t lines in
    J.to_compact_string
      (get_path [ "interval"; "counters" ] (stats_doc (List.nth responses 2)))
  in
  Alcotest.(check string) "interval counters invariant under --jobs"
    (interval_counters (Some 1))
    (interval_counters (Some 2))

(* -------------------------- access log ----------------------------- *)

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let access_entries path =
  List.map
    (fun l ->
      match J.of_string l with
      | Ok j -> j
      | Error m -> Alcotest.failf "unreadable access line %S: %s" l m)
    (read_lines path)

let gets path doc =
  match get_path path doc with
  | J.Str s -> s
  | j -> Alcotest.failf "expected a string, got %s" (J.to_compact_string j)

let getb path doc =
  match get_path path doc with
  | J.Bool b -> b
  | j -> Alcotest.failf "expected a bool, got %s" (J.to_compact_string j)

let test_access_log () =
  let log = fresh_path "access" ^ ".jsonl" in
  Fun.protect ~finally:(fun () -> rm_rf log) @@ fun () ->
  (with_serve ~access_log:log @@ fun t ->
   ignore
     (exchange t
        [
          {|{"id":5,"cmd":"ping"}|};
          inject_line ~id:6 ~errors:1 ~trials:3 ~seed:1 "adpcm";
          inject_line ~id:7 ~errors:1 ~trials:3 ~seed:1 "adpcm";
          "this is not json";
        ]));
  let entries = access_entries log in
  Alcotest.(check int) "one line per request" 4 (List.length entries);
  List.iter
    (fun e ->
      Alcotest.(check string) "schema marker" "etap-access/1"
        (gets [ "schema" ] e);
      Alcotest.(check bool) "wall_us non-negative" true
        (geti [ "wall_us" ] e >= 0);
      Alcotest.(check bool) "nothing coalesced" false (getb [ "coalesced" ] e))
    entries;
  Alcotest.(check (list string)) "kinds in request order"
    [ "ping"; "inject"; "inject"; "malformed" ]
    (List.map (gets [ "kind" ]) entries);
  Alcotest.(check (list string)) "statuses"
    [ "ok"; "ok"; "ok"; "failed" ]
    (List.map (gets [ "status" ]) entries);
  let cold = List.nth entries 1 and warm = List.nth entries 2 in
  Alcotest.(check bool) "cold inject ran trials" true
    (geti [ "trials_run" ] cold > 0);
  Alcotest.(check int) "cold inject missed the registry" 1
    (geti [ "warm_misses" ] cold);
  Alcotest.(check int) "warm inject ran nothing" 0 (geti [ "trials_run" ] warm);
  Alcotest.(check int) "warm inject hit the registry" 1
    (geti [ "warm_hits" ] warm);
  Alcotest.(check bool) "warm inject reused trials" true
    (geti [ "trials_reused" ] warm > 0)

(* Two identical in-flight requests: two access lines, but the
   execution is attributed exactly once — the winner's line carries the
   trial counts, the waiter's line is marked coalesced and carries
   none. *)
let test_access_coalesced () =
  let log = fresh_path "access" ^ ".jsonl" in
  Fun.protect ~finally:(fun () -> rm_rf log) @@ fun () ->
  let tref = ref None in
  let gate key =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec wait () =
      match !tref with
      | Some t when Harness.Serve.inflight_waiters t ~key >= 1 -> ()
      | _ ->
        if Unix.gettimeofday () < deadline then begin
          Thread.yield ();
          wait ()
        end
    in
    wait ()
  in
  let line = inject_line ~errors:2 ~trials:4 ~seed:1 "gsm" in
  (with_serve ~gate ~access_log:log @@ fun t ->
   tref := Some t;
   let th_a = Thread.create (fun () -> ignore (exchange t [ line ])) () in
   let th_b = Thread.create (fun () -> ignore (exchange t [ line ])) () in
   Thread.join th_a;
   Thread.join th_b);
  let entries = access_entries log in
  Alcotest.(check int) "one line per request" 2 (List.length entries);
  let coalesced, winners =
    List.partition (fun e -> getb [ "coalesced" ] e) entries
  in
  Alcotest.(check int) "exactly one waiter" 1 (List.length coalesced);
  Alcotest.(check int) "exactly one winner" 1 (List.length winners);
  Alcotest.(check bool) "execution on the winner's line" true
    (geti [ "trials_run" ] (List.hd winners) > 0);
  Alcotest.(check int) "no execution on the waiter's line" 0
    (geti [ "trials_run" ] (List.hd coalesced))

(* --------------------------- bench diff ---------------------------- *)

let fnum v = Report.num ~text:(Printf.sprintf "%.3f" v) v

let bench_doc ?(wall = []) ?(micro = []) () =
  Report.to_json
    (Report.make ~command:"bench" ~meta:[]
       [
         Report.table ~id:"experiments" ~title:"Experiments"
           ~columns:
             [
               Report.column ~key:"name" "name";
               Report.column ~key:"wall_s" "wall";
             ]
           (List.map
              (fun (n, w) ->
                [ Report.text n; Report.opt ~missing:"-" fnum w ])
              wall);
         Report.table ~id:"micro" ~title:"Micro"
           ~columns:
             [
               Report.column ~key:"name" "name";
               Report.column ~key:"ns_per_run" "ns/run";
               Report.column ~key:"minstr_per_s" "Minstr/s";
             ]
           (List.map
              (fun (n, ns, mi) -> [ Report.text n; fnum ns; fnum mi ])
              micro);
       ])

let diff_exn ?fail_above ~old_doc ~new_doc () =
  match Harness.Bench_diff.diff ?fail_above ~old_doc ~new_doc () with
  | Ok r -> r
  | Error m -> Alcotest.failf "bench diff failed: %s" m

let verdict_of r name metric =
  match
    List.find_opt
      (fun row ->
        row.Harness.Bench_diff.name = name
        && row.Harness.Bench_diff.metric = metric)
      r.Harness.Bench_diff.rows
  with
  | Some row -> Harness.Bench_diff.verdict_name row.Harness.Bench_diff.verdict
  | None -> Alcotest.failf "no row for %s/%s" metric name

let test_bench_diff_identical () =
  let doc =
    bench_doc
      ~wall:[ ("a", Some 1.0); ("b", Some 2.0) ]
      ~micro:[ ("m", 100.0, 50.0) ]
      ()
  in
  let r = diff_exn ~fail_above:5.0 ~old_doc:doc ~new_doc:doc () in
  Alcotest.(check int) "no breaches on identical inputs" 0
    r.Harness.Bench_diff.breaches;
  List.iter
    (fun row ->
      Alcotest.(check string) "every cell ok" "ok"
        (Harness.Bench_diff.verdict_name row.Harness.Bench_diff.verdict))
    r.Harness.Bench_diff.rows

let test_bench_diff_regression () =
  let old_doc = bench_doc ~wall:[ ("a", Some 1.0) ] () in
  let new_doc = bench_doc ~wall:[ ("a", Some 1.25) ] () in
  (* Over the threshold: a breach. *)
  let r = diff_exn ~fail_above:20.0 ~old_doc ~new_doc () in
  Alcotest.(check int) "25% wall regression breaches at 20%" 1
    r.Harness.Bench_diff.breaches;
  Alcotest.(check string) "row marked regressed" "regressed"
    (verdict_of r "a" "wall_s");
  (* Under the threshold: labeled but not a breach. *)
  let r = diff_exn ~fail_above:30.0 ~old_doc ~new_doc () in
  Alcotest.(check int) "25% under a 30% gate" 0 r.Harness.Bench_diff.breaches;
  (* No threshold: warn-only, never a breach. *)
  let r = diff_exn ~old_doc ~new_doc () in
  Alcotest.(check int) "warn-only never breaches" 0
    r.Harness.Bench_diff.breaches;
  Alcotest.(check string) "warn-only still labels the regression"
    "regressed"
    (verdict_of r "a" "wall_s")

let test_bench_diff_directions () =
  (* Minstr/s is lower-is-worse: a throughput drop regresses, a
     ns/run drop improves. *)
  let old_doc = bench_doc ~micro:[ ("m", 100.0, 100.0) ] () in
  let new_doc = bench_doc ~micro:[ ("m", 60.0, 70.0) ] () in
  let r = diff_exn ~fail_above:20.0 ~old_doc ~new_doc () in
  Alcotest.(check string) "throughput drop regresses" "regressed"
    (verdict_of r "m" "minstr_per_s");
  Alcotest.(check string) "ns/run drop improves" "improved"
    (verdict_of r "m" "ns_per_run");
  Alcotest.(check int) "only the drop breaches" 1
    r.Harness.Bench_diff.breaches

let test_bench_diff_shape_changes () =
  (* Added, removed and skipped cells stay visible and never breach. *)
  let old_doc = bench_doc ~wall:[ ("gone", Some 1.0); ("skip", Some 1.0) ] () in
  let new_doc = bench_doc ~wall:[ ("new", Some 9.0); ("skip", None) ] () in
  let r = diff_exn ~fail_above:1.0 ~old_doc ~new_doc () in
  Alcotest.(check string) "removed" "removed" (verdict_of r "gone" "wall_s");
  Alcotest.(check string) "added" "added" (verdict_of r "new" "wall_s");
  Alcotest.(check string) "skipped" "skipped" (verdict_of r "skip" "wall_s");
  Alcotest.(check int) "shape changes never breach" 0
    r.Harness.Bench_diff.breaches;
  (* Non-report inputs are typed errors, not crashes. *)
  match
    Harness.Bench_diff.diff ~old_doc:(J.Obj []) ~new_doc ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "schema-less input accepted"

(* --------------------------- openmetrics --------------------------- *)

let test_openmetrics () =
  let s = Obs.make () in
  Obs.with_sink s (fun () ->
      Obs.count "campaign.trials" 7;
      List.iter (Obs.observe "trial.us") [ 1.0; 4.0; 1000.0 ];
      Obs.site ~func:"f" ~pc:3 Obs.Crash;
      Obs.site ~func:"f" ~pc:3 Obs.Crash;
      Obs.site ~func:"f" ~pc:3 Obs.Completed);
  let lines = Obs.openmetrics_lines (Obs.view s) in
  Alcotest.(check string) "terminated by # EOF" "# EOF"
    (List.nth lines (List.length lines - 1));
  let mem l = List.mem l lines in
  Alcotest.(check bool) "counter sample" true
    (mem "etap_campaign_trials_total 7");
  Alcotest.(check bool) "site tally: crash" true
    (mem {|etap_fault_site_total{func="f",pc="3",class="crash"} 2|});
  Alcotest.(check bool) "site tally: completed" true
    (mem {|etap_fault_site_total{func="f",pc="3",class="completed"} 1|});
  Alcotest.(check bool) "count sample" true (mem "etap_trial_us_count 3");
  let prefixed p l =
    String.length l >= String.length p && String.sub l 0 (String.length p) = p
  in
  Alcotest.(check bool) "sum sample present" true
    (List.exists (prefixed "etap_trial_us_sum ") lines);
  (* Cumulative buckets: monotone non-decreasing, closed by +Inf at
     the total count. *)
  let buckets = List.filter (prefixed "etap_trial_us_bucket{") lines in
  let value l =
    int_of_string (String.sub l (String.rindex l ' ' + 1)
                     (String.length l - String.rindex l ' ' - 1))
  in
  let vs = List.map value buckets in
  Alcotest.(check bool) "buckets present" true (List.length vs >= 2);
  let rec monotone = function
    | a :: (b :: _ as tl) -> a <= b && monotone tl
    | _ -> true
  in
  Alcotest.(check bool) "buckets cumulative" true (monotone vs);
  let last = List.nth buckets (List.length buckets - 1) in
  Alcotest.(check bool) "+Inf closes the family" true
    (prefixed "etap_trial_us_bucket{le=\"+Inf\"}" last);
  Alcotest.(check int) "+Inf equals the count" 3
    (value last)

let () =
  Alcotest.run "stats_proto"
    [
      ( "diff algebra",
        [
          QCheck_alcotest.to_alcotest hist_diff_exact;
          QCheck_alcotest.to_alcotest diff_distributes_over_merge;
          Alcotest.test_case "multi-domain interval exact and fan-out invariant"
            `Quick test_multi_domain_interval;
        ] );
      ( "stats verb",
        [
          Alcotest.test_case "etap-stats/1 document and exact intervals" `Quick
            test_stats_document;
          Alcotest.test_case "interval counters invariant under --jobs" `Quick
            test_stats_jobs_invariance;
        ] );
      ( "access log",
        [
          Alcotest.test_case "one etap-access/1 line per request" `Quick
            test_access_log;
          Alcotest.test_case "coalesced pair logs one execution" `Quick
            test_access_coalesced;
        ] );
      ( "bench diff",
        [
          Alcotest.test_case "identical inputs never breach" `Quick
            test_bench_diff_identical;
          Alcotest.test_case "threshold gates wall regressions" `Quick
            test_bench_diff_regression;
          Alcotest.test_case "direction-adjusted verdicts" `Quick
            test_bench_diff_directions;
          Alcotest.test_case "added/removed/skipped stay visible" `Quick
            test_bench_diff_shape_changes;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "well-formed exposition" `Quick test_openmetrics;
        ] );
    ]
