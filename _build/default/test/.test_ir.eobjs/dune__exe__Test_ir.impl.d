test/test_ir.ml: Alcotest Array Cfg Format Func Instr Ir List Printf Prog QCheck QCheck_alcotest Random Reg Sim Ty Validate
