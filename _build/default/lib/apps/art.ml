(* ART (SPEC CPU2000 floating point): an Adaptive Resonance Theory
   network trained on binary object templates, then scanned across a
   thermal image window by window to find a learned object — the
   structure of SPEC's 179.art at reduced scale, in real floating
   point.

   Fidelity (paper Figure 6 / Table 1): a run is "recognized" when it
   reports the same winning window and category as the fault-free run;
   the error in the confidence of the match is the secondary measure.
   ART never crashes in the paper — its data path is all FP arithmetic
   with in-range indexing — and the same holds here. *)

let img_w = 16
let img_h = 16
let win = 8
let n_windows = 9          (* 3x3 grid of 8x8 windows, stride 4 *)
let n_categories = 8
let n_patterns = 4
let epochs = 3
let vigilance = 0.7
let choice_alpha = 0.5

(* 8x8 binary object templates: cross, box outline, diagonal band, T. *)
let patterns : float array array =
  let mk f =
    Array.init 64 (fun k ->
        let y = k / 8 and x = k mod 8 in
        if f x y then 1.0 else 0.0)
  in
  [|
    mk (fun x y -> x = 3 || x = 4 || y = 3 || y = 4);
    mk (fun x y -> x = 0 || x = 7 || y = 0 || y = 7);
    mk (fun x y -> abs (x - y) <= 1);
    mk (fun x y -> y <= 1 || ((x = 3 || x = 4) && y >= 2));
  |]

(* ------------------------------------------------------------------ *)
(* Host reference implementation.                                      *)

type net = { td : float array }  (* top-down templates, n_categories*64 *)

let make_net () = { td = Array.make (n_categories * 64) 1.0 }

let sum_min net cat (x : float array) =
  let acc = ref 0.0 in
  for k = 0 to 63 do
    let w = net.td.((cat * 64) + k) in
    acc := !acc +. (if w < x.(k) then w else x.(k))
  done;
  !acc

let sum_td net cat =
  let acc = ref 0.0 in
  for k = 0 to 63 do
    acc := !acc +. net.td.((cat * 64) + k)
  done;
  !acc

let sum_x (x : float array) =
  let acc = ref 0.0 in
  Array.iter (fun v -> acc := !acc +. v) x;
  !acc

let choice net cat x = sum_min net cat x /. (choice_alpha +. sum_td net cat)

let match_ratio net cat x =
  let n = sum_x x in
  if n = 0.0 then 0.0 else sum_min net cat x /. n

let learn net cat (x : float array) =
  for k = 0 to 63 do
    let w = net.td.((cat * 64) + k) in
    if x.(k) < w then net.td.((cat * 64) + k) <- x.(k)
  done

let train net =
  for _e = 1 to epochs do
    Array.iter
      (fun x ->
        let tried = Array.make n_categories false in
        let resolved = ref false in
        while not !resolved do
          let best = ref (-1) and bestv = ref (-1.0) in
          for c = 0 to n_categories - 1 do
            if not tried.(c) then begin
              let t = choice net c x in
              if t > !bestv then begin
                bestv := t;
                best := c
              end
            end
          done;
          if !best < 0 then resolved := true
          else if match_ratio net !best x >= vigilance then begin
            learn net !best x;
            resolved := true
          end
          else tried.(!best) <- true
        done)
      patterns
  done

let binarize_window (thermal : int array) ~wy ~wx =
  Array.init 64 (fun k ->
      let y = k / 8 and x = k mod 8 in
      if thermal.(((wy + y) * img_w) + wx + x) > 100 then 1.0 else 0.0)

let host_scan (thermal : int array) =
  let net = make_net () in
  train net;
  let confs = Array.make n_windows 0.0 in
  let cats = Array.make n_windows 0 in
  for w = 0 to n_windows - 1 do
    let wy = w / 3 * 4 and wx = w mod 3 * 4 in
    let x = binarize_window thermal ~wy ~wx in
    let best = ref 0 and bestv = ref (-1.0) in
    for c = 0 to n_categories - 1 do
      let t = choice net c x in
      if t > !bestv then begin
        bestv := t;
        best := c
      end
    done;
    cats.(w) <- !best;
    confs.(w) <- match_ratio net !best x
  done;
  let bw = ref 0 in
  for w = 1 to n_windows - 1 do
    if confs.(w) > confs.(!bw) then bw := w
  done;
  (net, cats, confs, !bw)

(* ------------------------------------------------------------------ *)
(* The Mlang program.                                                  *)

let mlang_program (thermal : int array) : Mlang.Ast.program =
  let open Mlang.Dsl in
  let pats = Array.concat (Array.to_list patterns) in
  program
    [
      garray_init_b "thermal" (App.ints_of_array thermal);
      garray_init_f "patterns" pats;
      garray_init_f "td" (Array.make (n_categories * 64) 1.0);
      garray_f "xbuf" 64;
      garray "tried" n_categories;
      garray_f "winconf" n_windows;
      garray "wincat" n_windows;
      garray "result" 2;   (* best window, best category *)
      garray_f "confout" 1;
    ]
    [
      fn "sum_min" [ p_int "cat" ] ~ret:(Some Mlang.Ast.TFlt)
        [
          let_ "acc" (f 0.0);
          for_ "k" (i 0) (i 64)
            [
              let_ "w" ("td".%((v "cat" *! i 64) +! v "k"));
              let_ "x" ("xbuf".%(v "k"));
              if_ (v "w" <! v "x")
                [ set "acc" (v "acc" +!. v "w") ]
                [ set "acc" (v "acc" +!. v "x") ];
            ];
          ret (v "acc");
        ];
      fn "sum_td" [ p_int "cat" ] ~ret:(Some Mlang.Ast.TFlt)
        [
          let_ "acc" (f 0.0);
          for_ "k" (i 0) (i 64)
            [ set "acc" (v "acc" +!. "td".%((v "cat" *! i 64) +! v "k")) ];
          ret (v "acc");
        ];
      fn "sum_x" [] ~ret:(Some Mlang.Ast.TFlt)
        [
          let_ "acc" (f 0.0);
          for_ "k" (i 0) (i 64) [ set "acc" (v "acc" +!. "xbuf".%(v "k")) ];
          ret (v "acc");
        ];
      fn "choice" [ p_int "cat" ] ~ret:(Some Mlang.Ast.TFlt)
        [
          ret
            (call "sum_min" [ v "cat" ]
            /!. (f choice_alpha +!. call "sum_td" [ v "cat" ]));
        ];
      fn "match_ratio" [ p_int "cat" ] ~ret:(Some Mlang.Ast.TFlt)
        [
          let_ "n" (call "sum_x" []);
          when_ (v "n" ==! f 0.0) [ ret (f 0.0) ];
          ret (call "sum_min" [ v "cat" ] /!. v "n");
        ];
      proc "learn" [ p_int "cat" ]
        [
          for_ "k" (i 0) (i 64)
            [
              let_ "w" ("td".%((v "cat" *! i 64) +! v "k"));
              let_ "x" ("xbuf".%(v "k"));
              when_ (v "x" <! v "w")
                [ sto "td" ((v "cat" *! i 64) +! v "k") (v "x") ];
            ];
        ];
      proc "load_pattern" [ p_int "p" ]
        [
          for_ "k" (i 0) (i 64)
            [ sto "xbuf" (v "k") ("patterns".%((v "p" *! i 64) +! v "k")) ];
        ];
      proc "load_window" [ p_int "wy"; p_int "wx" ]
        [
          for_ "k" (i 0) (i 64)
            [
              let_ "y" (v "k" /! i 8);
              let_ "x" (v "k" %! i 8);
              let_ "pix"
                ("thermal".%(((v "wy" +! v "y") *! i img_w) +! v "wx" +! v "x"));
              if_ (v "pix" >! i 100)
                [ sto "xbuf" (v "k") (f 1.0) ]
                [ sto "xbuf" (v "k") (f 0.0) ];
            ];
        ];
      proc "train" []
        [
          for_ "e" (i 0) (i epochs)
            [
              for_ "p" (i 0) (i n_patterns)
                [
                  call_ "load_pattern" [ v "p" ];
                  for_ "c" (i 0) (i n_categories) [ sto "tried" (v "c") (i 0) ];
                  let_ "resolved" (i 0);
                  while_
                    (v "resolved" ==! i 0)
                    [
                      let_ "best" (i (-1));
                      let_ "bestv" (f (-1.0));
                      for_ "c" (i 0) (i n_categories)
                        [
                          when_
                            ("tried".%(v "c") ==! i 0)
                            [
                              let_ "t" (call "choice" [ v "c" ]);
                              when_
                                (v "t" >! v "bestv")
                                [ set "bestv" (v "t"); set "best" (v "c") ];
                            ];
                        ];
                      if_ (v "best" <! i 0)
                        [ set "resolved" (i 1) ]
                        [
                          if_
                            (call "match_ratio" [ v "best" ] >=! f vigilance)
                            [ call_ "learn" [ v "best" ]; set "resolved" (i 1) ]
                            [ sto "tried" (v "best") (i 1) ];
                        ];
                    ];
                ];
            ];
        ];
      proc "scan" []
        [
          for_ "w" (i 0) (i n_windows)
            [
              let_ "wy" (v "w" /! i 3 *! i 4);
              let_ "wx" (v "w" %! i 3 *! i 4);
              call_ "load_window" [ v "wy"; v "wx" ];
              let_ "best" (i 0);
              let_ "bestv" (f (-1.0));
              for_ "c" (i 0) (i n_categories)
                [
                  let_ "t" (call "choice" [ v "c" ]);
                  when_
                    (v "t" >! v "bestv")
                    [ set "bestv" (v "t"); set "best" (v "c") ];
                ];
              sto "wincat" (v "w") (v "best");
              sto "winconf" (v "w") (call "match_ratio" [ v "best" ]);
            ];
          let_ "bw" (i 0);
          for_ "w" (i 1) (i n_windows)
            [
              when_
                ("winconf".%(v "w") >! "winconf".%(v "bw"))
                [ set "bw" (v "w") ];
            ];
          sto "result" (i 0) (v "bw");
          sto "result" (i 1) ("wincat".%(v "bw"));
          sto "confout" (i 0) ("winconf".%(v "bw"));
        ];
      fn ~eligible:false "main" [] ~ret:(Some Mlang.Ast.TInt)
        [ call_ "train" []; call_ "scan" []; ret (i 0) ];
    ]

(* ------------------------------------------------------------------ *)

let scan_of_run prog (r : Sim.Interp.result) : Fidelity.Confidence.scan =
  let result = App.out_ints r prog "result" in
  let conf = App.out_flts r prog "confout" in
  {
    Fidelity.Confidence.best_window = result.(0);
    best_category = result.(1);
    confidence = conf.(0);
  }

let build ~seed : App.built =
  let rng = Workloads.Rng.make (seed + 7919) in
  let p_true = Workloads.Rng.int rng n_patterns in
  let wslot = Workloads.Rng.int rng n_windows in
  let ox = wslot mod 3 * 4 and oy = wslot / 3 * 4 in
  let obj =
    {
      Workloads.Image_gen.width = 8;
      height = 8;
      pixels = Array.map (fun x -> if x > 0.5 then 200 else 30) patterns.(p_true);
    }
  in
  let thermal =
    Workloads.Image_gen.thermal ~seed ~width:img_w ~height:img_h ~obj ~ox ~oy
  in
  let prog =
    Mlang.Compile.to_ir (mlang_program thermal.Workloads.Image_gen.pixels)
  in
  let _net, expected_cats, expected_confs, expected_bw =
    host_scan thermal.Workloads.Image_gen.pixels
  in
  let score ~(golden : Sim.Interp.result) (r : Sim.Interp.result) =
    let g = scan_of_run prog golden and o = scan_of_run prog r in
    if Fidelity.Confidence.recognized ~golden:g ~observed:o then 100.0 else 0.0
  in
  let host_check (r : Sim.Interp.result) =
    let got = scan_of_run prog r in
    let cats = App.out_ints r prog "wincat" in
    let confs = App.out_flts r prog "winconf" in
    if got.Fidelity.Confidence.best_window <> expected_bw then
      Error "art: winning window differs from host reference"
    else if cats <> expected_cats then
      Error "art: per-window categories differ from host reference"
    else if confs <> expected_confs then
      Error "art: per-window confidences differ from host reference"
    else Ok ()
  in
  {
    App.app_name = "art";
    prog;
    fidelity_name = "recognized";
    fidelity_units = "% (100 = same window+category)";
    higher_is_better = true;
    threshold = Some 100.0;
    score;
    host_check;
  }

let app : App.t =
  {
    App.name = "art";
    description =
      "Adaptive-Resonance-Theory image recognition: train on object \
       templates, scan a thermal image; fidelity = recognized the same \
       window and category as the fault-free run";
    source = "SPEC CPU2000 FP (179.art)";
    build;
  }
