lib/mlang/parser.ml: Array Ast Compile Format Int32 Ir Lexer List Printf
