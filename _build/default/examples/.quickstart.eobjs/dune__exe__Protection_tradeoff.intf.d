examples/protection_tradeoff.mli:
