lib/harness/taxonomy.ml: Apps Core Experiment Float List Printf Tablefmt
