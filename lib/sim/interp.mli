(** Functional simulator — the SimpleScalar sim-safe role in the
    paper's methodology: exact architectural state, no timing model,
    faithful traps, and the paper's fault-injection hook.

    An {!injection} carries a per-instruction injectability mask (the
    tagging analysis output) and a plan over ordinals *among dynamic
    executions of injectable instructions*. When execution reaches a
    planned ordinal, the chosen bit is flipped in the just-computed
    destination value before write-back; the corruption then
    propagates architecturally.

    The plan is stored pre-sorted by ordinal and consumed with a
    monotone cursor, so the per-execution check is one integer compare
    (ordinals are assigned in increasing order). Build values with
    {!injection} rather than filling the record directly. *)

type injection = {
  tags : bool array array;  (** fid -> body index -> injectable *)
  plan_ords : int array;    (** planned ordinals, strictly increasing *)
  plan_bits : int array;    (** bit to flip, parallel to [plan_ords] *)
}

val injection : tags:bool array array -> plan:(int * int) list -> injection
(** [injection ~tags ~plan] sorts the [(ordinal, bit)] pairs by
    ordinal. Raises [Invalid_argument] on a negative or duplicate
    ordinal. *)

type outcome =
  | Done of Value.t option  (** entry function returned *)
  | Trapped of Trap.t
  | Timeout  (** exceeded the dynamic-instruction budget *)

type result = {
  outcome : outcome;
  dyn_count : int;
  injectable_seen : int;
  faults_landed : int;
  memory : Memory.t;
  exec_counts : int array array;
      (** per-function, per-body-index execution counts; populated only
          when [count_exec] was set (empty array otherwise) *)
  trap_site : (string * int) option;
      (** provenance of a [Trapped] outcome: name of the function and
          body index of the instruction whose evaluation trapped.
          Stack-overflow traps are attributed to the overflowing call
          site. [None] for [Done] and [Timeout]. *)
  fault_flow : Taint.summary option;
      (** shadow-taint fault-flow classification; [Some] iff the run
          was started with [~taint:true] *)
}

exception Timeout_exn

val max_call_depth : int

val run :
  ?injection:injection ->
  ?lenient:bool ->
  ?budget:int ->
  ?count_exec:bool ->
  ?taint:bool ->
  Code.t ->
  result
(** Execute from the entry function. [budget] defaults to 10^8 dynamic
    instructions; [lenient] selects the memory model (default strict).
    [taint] (default off) runs the shadow-taint twin of the
    interpreter: identical architectural behaviour and fault landings,
    plus a {!Taint.summary} in [fault_flow]. The plain path pays
    nothing for the feature — taint mode is a separate loop. *)

val run_exn :
  ?lenient:bool -> ?budget:int -> ?count_exec:bool -> Code.t -> result
(** Like {!run} for fault-free execution: fails on trap or timeout. *)
