(* Recursive-descent parser for Mlang's C-like surface syntax.

     // edge response kernel
     global byte img[1024] = { 12, 13, 200 };
     global int out[32];
     global float weights[8] = { 0.5, 0.25 };

     int clamp255(int x) {
       if (x > 255) { return 255; }
       return x;
     }

     protected int main() {        // 'protected' = ineligible
       int acc = 0;
       for (int k = 0; k < 32; k = k + 1) {
         acc = acc + img[k];
         out[k] = clamp255(acc);
       }
       while (acc > 0) { acc = acc >> 1; }
       return acc;
     }

   Operator precedence, loosest to tightest:
     || ; && ; | ; ^ ; & ; == != ; < <= > >= ; << >> >>> ; + - ;
     * / % ; unary - ! ; postfix [] () .
   `i2f(e)` and `f2i(e)` are built-in conversions. For loops are
   restricted to the upward-counting shape the core language has:
     for (int i = LO; i < HI; i = i + 1) { ... }  (or i++). *)

open Ast

type error = {
  line : int;
  message : string;
}

exception Parse_error of error

let pp_error fmt e = Format.fprintf fmt "line %d: %s" e.line e.message

type p = { lx : Lexer.t }

let errorf p fmt =
  Printf.ksprintf
    (fun message -> raise (Parse_error { line = Lexer.line p.lx; message }))
    fmt

let peek p = Lexer.peek p.lx
let advance p = ignore (Lexer.next p.lx)

let expect_punct p s =
  match Lexer.next p.lx with
  | Lexer.PUNCT x when x = s -> ()
  | tok -> errorf p "expected %S, got %S" s (Lexer.string_of_token tok)

let expect_kw p s =
  match Lexer.next p.lx with
  | Lexer.KW x when x = s -> ()
  | tok -> errorf p "expected %S, got %S" s (Lexer.string_of_token tok)

let expect_ident p =
  match Lexer.next p.lx with
  | Lexer.IDENT s -> s
  | tok -> errorf p "expected an identifier, got %S" (Lexer.string_of_token tok)

let accept_punct p s =
  match peek p with
  | Lexer.PUNCT x when x = s ->
    advance p;
    true
  | _ -> false

let accept_op p s =
  match peek p with
  | Lexer.OP x when x = s ->
    advance p;
    true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions.                                                        *)

let binop_of_op = function
  | "+" -> Some Add
  | "-" -> Some Sub
  | "*" -> Some Mul
  | "/" -> Some Div
  | "%" -> Some Rem
  | "&" -> Some BAnd
  | "|" -> Some BOr
  | "^" -> Some BXor
  | "<<" -> Some Shl
  | ">>>" -> Some Shr   (* logical, like Java *)
  | ">>" -> Some Ashr
  | _ -> None

let cmpop_of_op = function
  | "==" -> Some Eq
  | "!=" -> Some Ne
  | "<" -> Some Lt
  | "<=" -> Some Le
  | ">" -> Some Gt
  | ">=" -> Some Ge
  | _ -> None

(* precedence levels, loosest first; each is a list of operator
   spellings handled left-associatively at that level *)
let levels =
  [
    [ "||" ];
    [ "&&" ];
    [ "|" ];
    [ "^" ];
    [ "&" ];
    [ "=="; "!=" ];
    [ "<"; "<="; ">"; ">=" ];
    [ "<<"; ">>"; ">>>" ];
    [ "+"; "-" ];
    [ "*"; "/"; "%" ];
  ]

let mk_binary p op a b =
  match op with
  | "||" -> Bin (BOr, a, b)   (* non-short-circuit on 0/1 values *)
  | "&&" -> Bin (BAnd, a, b)
  | _ -> begin
    match (binop_of_op op, cmpop_of_op op) with
    | Some bop, _ -> Bin (bop, a, b)
    | None, Some cop -> Cmp (cop, a, b)
    | None, None -> errorf p "unknown operator %S" op
  end

let rec parse_expr p = parse_level p levels

and parse_level p = function
  | [] -> parse_unary p
  | ops :: tighter ->
    let rec loop acc =
      match peek p with
      | Lexer.OP o when List.mem o ops ->
        advance p;
        let rhs = parse_level p tighter in
        loop (mk_binary p o acc rhs)
      | _ -> acc
    in
    loop (parse_level p tighter)

and parse_unary p =
  match peek p with
  | Lexer.OP "-" ->
    advance p;
    (* negative literals fold directly *)
    (match parse_unary p with
     | Int n -> Int (-n)
     | Flt x -> Flt (-.x)
     | e -> Neg e)
  | Lexer.OP "!" ->
    advance p;
    Not (parse_unary p)
  | _ -> parse_primary p

and parse_primary p =
  match Lexer.next p.lx with
  | Lexer.INT n -> Int n
  | Lexer.FLOAT x -> Flt x
  | Lexer.PUNCT "(" ->
    let e = parse_expr p in
    expect_punct p ")";
    e
  | Lexer.IDENT "i2f" when peek p = Lexer.PUNCT "(" ->
    advance p;
    let e = parse_expr p in
    expect_punct p ")";
    I2F e
  | Lexer.IDENT "f2i" when peek p = Lexer.PUNCT "(" ->
    advance p;
    let e = parse_expr p in
    expect_punct p ")";
    F2I e
  | Lexer.IDENT name -> begin
    match peek p with
    | Lexer.PUNCT "(" ->
      advance p;
      Call (name, parse_args p)
    | Lexer.PUNCT "[" ->
      advance p;
      let idx = parse_expr p in
      expect_punct p "]";
      Load (name, idx)
    | _ -> Var name
  end
  | tok -> errorf p "expected an expression, got %S" (Lexer.string_of_token tok)

and parse_args p =
  if accept_punct p ")" then []
  else begin
    let rec loop acc =
      let e = parse_expr p in
      if accept_punct p "," then loop (e :: acc)
      else begin
        expect_punct p ")";
        List.rev (e :: acc)
      end
    in
    loop []
  end

(* ------------------------------------------------------------------ *)
(* Statements.                                                         *)

let parse_ty p =
  match Lexer.next p.lx with
  | Lexer.KW "int" -> TInt
  | Lexer.KW "float" -> TFlt
  | tok -> errorf p "expected a type, got %S" (Lexer.string_of_token tok)

let rec parse_block p : stmt list =
  expect_punct p "{";
  let rec loop acc =
    if accept_punct p "}" then List.rev acc else loop (parse_stmt p :: acc)
  in
  loop []

and parse_stmt p : stmt =
  match peek p with
  | Lexer.KW "int" | Lexer.KW "float" ->
    ignore (parse_ty p);
    let name = expect_ident p in
    expect_punct p "=";
    let e = parse_expr p in
    expect_punct p ";";
    Decl (name, e)
  | Lexer.KW "if" ->
    advance p;
    expect_punct p "(";
    let cond = parse_expr p in
    expect_punct p ")";
    let then_ = parse_block p in
    let else_ =
      match peek p with
      | Lexer.KW "else" ->
        advance p;
        parse_block p
      | _ -> []
    in
    If (cond, then_, else_)
  | Lexer.KW "while" ->
    advance p;
    expect_punct p "(";
    let cond = parse_expr p in
    expect_punct p ")";
    While (cond, parse_block p)
  | Lexer.KW "for" -> parse_for p
  | Lexer.KW "return" ->
    advance p;
    if accept_punct p ";" then Return None
    else begin
      let e = parse_expr p in
      expect_punct p ";";
      Return (Some e)
    end
  | Lexer.KW "break" ->
    advance p;
    expect_punct p ";";
    Break
  | Lexer.KW "continue" ->
    advance p;
    expect_punct p ";";
    Continue
  | Lexer.IDENT _ -> begin
    let name = expect_ident p in
    match peek p with
    | Lexer.PUNCT "=" ->
      advance p;
      let e = parse_expr p in
      expect_punct p ";";
      Assign (name, e)
    | Lexer.PUNCT "[" ->
      advance p;
      let idx = parse_expr p in
      expect_punct p "]";
      expect_punct p "=";
      let e = parse_expr p in
      expect_punct p ";";
      Store (name, idx, e)
    | Lexer.PUNCT "(" ->
      advance p;
      let args = parse_args p in
      expect_punct p ";";
      Expr (Call (name, args))
    | tok ->
      errorf p "expected '=', '[' or '(' after %S, got %S" name
        (Lexer.string_of_token tok)
  end
  | tok -> errorf p "expected a statement, got %S" (Lexer.string_of_token tok)

(* for (int i = LO; i < HI; i = i + 1) — also accepts `i++`-style
   written as `i = i + 1`; desugars to the core counting loop. *)
and parse_for p : stmt =
  expect_kw p "for";
  expect_punct p "(";
  expect_kw p "int";
  let var = expect_ident p in
  expect_punct p "=";
  let lo = parse_expr p in
  expect_punct p ";";
  let v2 = expect_ident p in
  if v2 <> var then errorf p "for condition must test %S" var;
  (match Lexer.next p.lx with
   | Lexer.OP "<" -> ()
   | tok ->
     errorf p "for supports only '<' bounds, got %S" (Lexer.string_of_token tok));
  let hi = parse_expr p in
  expect_punct p ";";
  let v3 = expect_ident p in
  if v3 <> var then errorf p "for step must update %S" var;
  expect_punct p "=";
  let v4 = expect_ident p in
  (match (v4 = var, Lexer.next p.lx, Lexer.next p.lx) with
   | true, Lexer.OP "+", Lexer.INT 1 -> ()
   | _ -> errorf p "for step must be `%s = %s + 1`" var var);
  expect_punct p ")";
  For (var, lo, hi, parse_block p)

(* ------------------------------------------------------------------ *)
(* Declarations.                                                       *)

let parse_initializer p =
  if accept_punct p "=" then begin
    expect_punct p "{";
    let rec loop acc =
      let item =
        match Lexer.next p.lx with
        | Lexer.INT n -> `I n
        | Lexer.FLOAT x -> `F x
        | Lexer.OP "-" -> begin
          match Lexer.next p.lx with
          | Lexer.INT n -> `I (-n)
          | Lexer.FLOAT x -> `F (-.x)
          | tok ->
            errorf p "expected a literal, got %S" (Lexer.string_of_token tok)
        end
        | tok -> errorf p "expected a literal, got %S" (Lexer.string_of_token tok)
      in
      if accept_punct p "," then loop (item :: acc)
      else begin
        expect_punct p "}";
        List.rev (item :: acc)
      end
    in
    Some (loop [])
  end
  else None

let ginit_of p kind items =
  match items with
  | None -> GZero
  | Some items -> begin
    match kind with
    | `Flt ->
      GFlts
        (Array.of_list
           (List.map
              (function `F x -> x | `I n -> float_of_int n)
              items))
    | `Int | `Byte ->
      GInts
        (Array.of_list
           (List.map
              (function
                | `I n -> Int32.of_int n
                | `F _ -> errorf p "float literal in integer array")
              items))
  end

let parse_global p : global =
  expect_kw p "global";
  let kind =
    match Lexer.next p.lx with
    | Lexer.KW "int" -> `Int
    | Lexer.KW "float" -> `Flt
    | Lexer.KW "byte" -> `Byte
    | tok -> errorf p "expected int/float/byte, got %S" (Lexer.string_of_token tok)
  in
  let name = expect_ident p in
  expect_punct p "[";
  let size =
    match Lexer.next p.lx with
    | Lexer.INT n when n > 0 -> n
    | tok -> errorf p "expected a positive size, got %S" (Lexer.string_of_token tok)
  in
  expect_punct p "]";
  let init = ginit_of p kind (parse_initializer p) in
  expect_punct p ";";
  {
    gname = name;
    gty = (match kind with `Flt -> TFlt | `Int | `Byte -> TInt);
    byte = kind = `Byte;
    size;
    init;
  }

let parse_func p ~eligible : func =
  let ret =
    match Lexer.next p.lx with
    | Lexer.KW "int" -> Some TInt
    | Lexer.KW "float" -> Some TFlt
    | Lexer.KW "void" -> None
    | tok ->
      errorf p "expected a return type, got %S" (Lexer.string_of_token tok)
  in
  let name = expect_ident p in
  expect_punct p "(";
  let params =
    if accept_punct p ")" then []
    else begin
      let rec loop acc =
        let ty = parse_ty p in
        let pname = expect_ident p in
        if accept_punct p "," then loop ((pname, ty) :: acc)
        else begin
          expect_punct p ")";
          List.rev ((pname, ty) :: acc)
        end
      in
      loop []
    end
  in
  let body = parse_block p in
  { name; params; ret; body; eligible }

let parse_program ?(entry = "main") (source : string) : program =
  let p = { lx = Lexer.create source } in
  let globals = ref [] and funcs = ref [] in
  let rec loop () =
    match peek p with
    | Lexer.EOF -> ()
    | Lexer.KW "global" ->
      globals := parse_global p :: !globals;
      loop ()
    | Lexer.KW "protected" ->
      advance p;
      funcs := parse_func p ~eligible:false :: !funcs;
      loop ()
    | Lexer.KW ("int" | "float" | "void") ->
      funcs := parse_func p ~eligible:true :: !funcs;
      loop ()
    | tok ->
      errorf p "expected a global or function declaration, got %S"
        (Lexer.string_of_token tok)
  in
  (try loop () with
   | Lexer.Lex_error (line, message) -> raise (Parse_error { line; message }));
  { globals = List.rev !globals; funcs = List.rev !funcs; entry }

let parse_program_res ?entry source =
  match parse_program ?entry source with
  | prog -> Ok prog
  | exception Parse_error e -> Error (Format.asprintf "%a" pp_error e)
  | exception Lexer.Lex_error (line, message) ->
    Error (Format.asprintf "%a" pp_error { line; message })

(* Parse and compile to IR in one step. *)
let compile ?entry ?optimize source : Ir.Prog.t =
  Compile.to_ir ?optimize (parse_program ?entry source)
