(* Benchmark harness: regenerates every table and figure of the paper
   (printed as text tables with the paper's own numbers alongside),
   runs the ablations from DESIGN.md, and finishes with Bechamel
   micro-benchmarks of the toolchain itself.

   Usage:
     dune exec bench/main.exe                 # everything, default size
     dune exec bench/main.exe -- table2 fig4  # selected experiments
     dune exec bench/main.exe -- --quick      # reduced trial counts
     dune exec bench/main.exe -- micro        # only the micro-benchmarks
     dune exec bench/main.exe -- --jobs 8     # campaign trials on 8 domains
     dune exec bench/main.exe -- --json out.json  # machine-readable timings
     dune exec bench/main.exe -- --trace t.json --metrics m.jsonl
                                              # telemetry exports (lib/obs)

   All campaigns are deterministic for a fixed seed and for any --jobs
   value: trial RNGs derive from the trial index, so the domain fan-out
   cannot change results. *)

let say fmt = Printf.printf (fmt ^^ "\n%!")

let section title =
  say "";
  say "%s" (String.make 72 '=');
  say "%s" title;
  say "%s" (String.make 72 '=')

(* Wall-time ledger, for the console trailer and the --json report.
   Each experiment also records an obs span (cat "bench"), so a --trace
   export shows the experiment envelope above the per-trial spans. *)
let experiment_times : (string * float) list ref = ref []

let timed name f =
  let s0 = Obs.span_begin () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  experiment_times := !experiment_times @ [ (name, Unix.gettimeofday () -. t0) ];
  Obs.span_end ~name ~cat:"bench" s0;
  r

(* ------------------------------------------------------------------ *)
(* Experiments.                                                        *)

let run_table2 ~trials ?jobs loaded =
  section "Table 2 — catastrophic failures with/without control protection";
  let rows = timed "table2" (fun () -> Harness.Table2.run ~trials ?jobs loaded) in
  say "%s" (Harness.Table2.render rows);
  section "Fault-flow taxonomy (dynamic taint audit)";
  let mode = Harness.Experiment.Full in
  let audit =
    timed "fault_flow" (fun () ->
        Harness.Taxonomy.audit ~trials ?jobs ~mode loaded)
  in
  say "%s" (Harness.Taxonomy.render_audit ~mode audit)

let run_table3 ?jobs loaded =
  section "Table 3 — % of dynamic instructions tagged low-reliability";
  let rows = timed "table3" (fun () -> Harness.Table3.run ?jobs loaded) in
  say "%s" (Harness.Table3.render rows)

let figures :
    (string
    * (?trials:int ->
       ?seed:int ->
       ?jobs:int ->
       Harness.Experiment.loaded list ->
       Harness.Figures.result))
    list =
  [
    ("fig1", Harness.Figures.fig1);
    ("fig2", Harness.Figures.fig2);
    ("fig3", Harness.Figures.fig3);
    ("fig4", Harness.Figures.fig4);
    ("fig5", Harness.Figures.fig5);
    ("fig6", Harness.Figures.fig6);
  ]

let run_figures ~trials ?jobs ~which loaded =
  List.iter
    (fun (id, f) ->
      if which id then begin
        section (String.uppercase_ascii id);
        let r =
          timed id (fun () -> f ?trials:(Some trials) ?seed:None ?jobs loaded)
        in
        say "%s" (Harness.Figures.render r)
      end)
    figures

let run_extensions ~trials ?jobs loaded =
  section "Cost model — selective vs uniform protection (paper Sec. 5.3)";
  let cost =
    timed "cost_model" (fun () ->
        Harness.Cost_model.run ?jobs ~mode:Harness.Experiment.Literal loaded)
  in
  say "%s" (Harness.Cost_model.render ~mode:Harness.Experiment.Literal cost);
  section "Fault outcome taxonomy (benign / degraded / catastrophic)";
  let tax =
    timed "taxonomy" (fun () ->
        Harness.Taxonomy.run ~trials ?jobs ~mode:Harness.Experiment.Literal
          loaded)
  in
  say "%s" (Harness.Taxonomy.render ~mode:Harness.Experiment.Literal tax)

let run_ablations ~trials ?jobs loaded =
  section "Ablation A — address protection";
  let a =
    timed "ablation_address" (fun () ->
        Harness.Ablation.address ~trials ?jobs loaded)
  in
  say "%s" (Harness.Ablation.render_address a);
  section "Ablation B — programmer eligibility marking";
  let b =
    timed "ablation_eligibility" (fun () ->
        Harness.Ablation.eligibility ~trials ?jobs ())
  in
  say "%s" (Harness.Ablation.render_eligibility b)

(* ------------------------------------------------------------------ *)
(* Checkpointed campaigns: fork-from-prefix vs from-scratch, with the
   per-phase wall clock (prepare / golden checkpointing / trials) and
   the checkpoint hit-rate. Two fault densities: the dense e=20 cell is
   timeout-dominated (skipping the fault-free prefix saves ~1/(e+1) of
   each completed trial and nothing of the infinite-loop trials, which
   must run to their budget to stay bit-exact), while the sparse e=1
   cell skips ~half of every trial — the regime checkpointing targets.
   Both paths must produce identical trial records; the run aborts if
   they diverge. *)

(* Bit-exactness fingerprint of one trial record — everything a
   summary's [trials] list carries except the never-populated
   [fault_flow]; fidelity travels as hexfloat so the comparison is
   exact, not printf-rounded. *)
let fingerprint (t : Core.Campaign.trial) =
  Printf.sprintf "%d/%s/%d/%d/%d/%s" t.Core.Campaign.index
    (Core.Outcome.describe t.Core.Campaign.outcome)
    t.Core.Campaign.dyn_count t.Core.Campaign.faults_planned
    t.Core.Campaign.faults_landed
    (match t.Core.Campaign.fidelity with
     | None -> "-"
     | Some f -> Printf.sprintf "%h" f)

type ckpt_cell = {
  ck_label : string;
  ck_errors : int;
  ck_trials : int;  (* per policy *)
  ck_resumed_s : float;
  ck_scratch_s : float;
  ck_hits : int;        (* trials fast-forwarded past a non-empty prefix *)
  ck_total : int;       (* trials across both policies *)
  ck_skipped_dyn : int; (* dynamic instructions not re-executed *)
}

let run_checkpoint ~quick ?jobs () : ckpt_cell list =
  section "Checkpointed campaigns — fork-from-prefix vs from-scratch (susan)";
  let trials = if quick then 25 else 100 in
  let seed = 1 in
  let b = Apps.Susan.app.Apps.App.build ~seed in
  let target =
    timed "ckpt_prepare" (fun () -> Core.Campaign.of_prog b.Apps.App.prog)
  in
  let golden = target.Core.Campaign.baseline in
  let score r = b.Apps.App.score ~golden r in
  let policies = [ Core.Policy.Protect_control; Core.Policy.Protect_nothing ] in
  (* Golden checkpointing passes (one per policy); the stride-0 prepares
     are arithmetic only. *)
  let ps_on =
    timed "ckpt_golden" (fun () ->
        List.map (fun policy -> Core.Campaign.prepare target policy) policies)
  in
  let ps_off =
    List.map
      (fun policy -> Core.Campaign.prepare ~checkpoint_stride:0 target policy)
      policies
  in
  let campaign ps ~errors =
    List.map
      (fun p ->
        Core.Campaign.run ?jobs ~score p ~errors ~trials ~seed:(seed + 100))
      ps
  in
  List.map
    (fun errors ->
      let label = Printf.sprintf "e=%d" errors in
      let wall name f =
        let t0 = Unix.gettimeofday () in
        let r = timed name f in
        (r, Unix.gettimeofday () -. t0)
      in
      let on, resumed_s =
        wall
          (Printf.sprintf "ckpt_trials_resumed[%s]" label)
          (fun () -> campaign ps_on ~errors)
      in
      let off, scratch_s =
        wall
          (Printf.sprintf "ckpt_trials_scratch[%s]" label)
          (fun () -> campaign ps_off ~errors)
      in
      List.iter2
        (fun (a : Core.Campaign.summary) (b : Core.Campaign.summary) ->
          let fp s = List.map fingerprint s.Core.Campaign.trials in
          if fp a <> fp b then
            failwith
              ("checkpointed and from-scratch trial records diverge at "
             ^ label))
        on off;
      let hits =
        List.fold_left (fun n s -> n + s.Core.Campaign.resumed_trials) 0 on
      in
      let skipped =
        List.fold_left (fun n s -> n + s.Core.Campaign.skipped_dyn) 0 on
      in
      let total = 2 * trials in
      say
        "  %-5s %3d trials x 2 policies: %6.2f s resumed vs %6.2f s \
         from-scratch (%.2fx)  hit-rate %d/%d  skipped %d Mdyn  [records \
         identical]"
        label trials resumed_s scratch_s
        (scratch_s /. Float.max resumed_s 1e-9)
        hits total (skipped / 1_000_000);
      {
        ck_label = label;
        ck_errors = errors;
        ck_trials = trials;
        ck_resumed_s = resumed_s;
        ck_scratch_s = scratch_s;
        ck_hits = hits;
        ck_total = total;
        ck_skipped_dyn = skipped;
      })
    [ 20; 1 ]

(* ------------------------------------------------------------------ *)
(* Incremental campaigns: section-level memoization (lib/core/memo)
   after a synthetic one-function edit. Per app: a cold incremental run
   on the pristine program populates a fresh cache; the program is then
   dead-padded in one late-phase function and re-run both monolithically
   (the cost an edit implies without the cache) and incrementally (only
   section groups reached through the edit re-execute). The two must
   produce identical trial records and the re-check must reuse at least
   one group — both enforced with a hard failure; the ≤1/3 cost target
   is reported, not asserted, so a loaded machine cannot flake the
   bench. *)

type inc_cell = {
  inc_app : string;
  inc_edited : string;  (* the dead-padded function *)
  inc_errors : int;
  inc_trials : int;  (* per policy *)
  inc_cold_s : float;  (* cold incremental run (cache populate) *)
  inc_full_s : float;  (* monolithic campaign on the edited program *)
  inc_recheck_s : float;  (* warm incremental run on the edited program *)
  inc_sections : int;  (* section groups across both policies *)
  inc_hits : int;
  inc_reused : int;
  inc_ran : int;
}

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let run_incremental ~quick ?jobs () : inc_cell list =
  section
    "Incremental campaigns — re-check after a one-function edit vs full";
  let trials = if quick then 30 else 100 in
  (* Dense plans concentrate first fault ordinals early (min of e
     uniforms), so editing a late-phase function leaves most section
     groups clean — the regime compositional injection targets. *)
  let errors = 5 in
  let seed = 1 in
  let policies =
    [ Core.Policy.Protect_control; Core.Policy.Protect_nothing ]
  in
  List.map
    (fun (app_name, edited) ->
      let app =
        match Apps.Registry.find app_name with
        | Some a -> a
        | None -> failwith ("unknown app " ^ app_name)
      in
      let b = app.Apps.App.build ~seed in
      let prog0 = b.Apps.App.prog in
      let prog1 = Analysis.Section.dead_pad ~func:edited prog0 in
      let cache = "_bench_memo_cache_" ^ app_name in
      rm_rf cache;
      let store = Core.Memo.Store.open_ cache in
      let wall name f =
        let t0 = Unix.gettimeofday () in
        let r = timed name f in
        (r, Unix.gettimeofday () -. t0)
      in
      (* Walls include of_prog + prepare: a re-check always pays the
         golden run and checkpointing again, so both sides charge it. *)
      let campaign run_one prog =
        let target = Core.Campaign.of_prog prog in
        let golden = target.Core.Campaign.baseline in
        let score r = b.Apps.App.score ~golden r in
        List.map
          (fun policy ->
            run_one ~score (Core.Campaign.prepare target policy))
          policies
      in
      let mono ~score p =
        Core.Campaign.run ?jobs ~score p ~errors ~trials ~seed:(seed + 100)
      in
      let inc ~score p =
        Core.Memo.run ?jobs ~score ~salt:app_name ~store p ~errors ~trials
          ~seed:(seed + 100)
      in
      let _, cold_s =
        wall
          (Printf.sprintf "inc_cold[%s]" app_name)
          (fun () -> campaign inc prog0)
      in
      let full, full_s =
        wall
          (Printf.sprintf "inc_full[%s]" app_name)
          (fun () -> campaign mono prog1)
      in
      let warm, recheck_s =
        wall
          (Printf.sprintf "inc_recheck[%s]" app_name)
          (fun () -> campaign inc prog1)
      in
      List.iter2
        (fun (a : Core.Campaign.summary) ((b : Core.Campaign.summary), _) ->
          let fp s = List.map fingerprint s.Core.Campaign.trials in
          if fp a <> fp b then
            failwith
              ("incremental and monolithic trial records diverge on "
             ^ app_name))
        full warm;
      let st =
        List.fold_left
          (fun (acc : Core.Memo.stats) (_, (st : Core.Memo.stats)) ->
            Core.Memo.
              {
                sections = acc.sections + st.sections;
                hits = acc.hits + st.hits;
                misses = acc.misses + st.misses;
                trials_reused = acc.trials_reused + st.trials_reused;
                trials_run = acc.trials_run + st.trials_run;
              })
          Core.Memo.zero_stats warm
      in
      if st.Core.Memo.hits = 0 then
        failwith ("incremental re-check reused nothing on " ^ app_name);
      rm_rf cache;
      let ratio = recheck_s /. Float.max full_s 1e-9 in
      say
        "  %-6s edit %-8s %3d trials x 2 policies: full %6.2f s vs \
         re-check %6.2f s (%.2fx cost)  %d/%d groups hit, %d/%d trials \
         reused  [records identical]%s"
        app_name edited trials full_s recheck_s ratio st.Core.Memo.hits
        st.Core.Memo.sections st.Core.Memo.trials_reused
        (st.Core.Memo.trials_reused + st.Core.Memo.trials_run)
        (if ratio > 1.0 /. 3.0 then "  [above 1/3 target]" else "");
      {
        inc_app = app_name;
        inc_edited = edited;
        inc_errors = errors;
        inc_trials = trials;
        inc_cold_s = cold_s;
        inc_full_s = full_s;
        inc_recheck_s = recheck_s;
        inc_sections = st.Core.Memo.sections;
        inc_hits = st.Core.Memo.hits;
        inc_reused = st.Core.Memo.trials_reused;
        inc_ran = st.Core.Memo.trials_run;
      })
    [ ("gsm", "decode"); ("mpeg", "decode") ]

(* ------------------------------------------------------------------ *)
(* Matrix sweep: the spec-driven runner (Harness.Matrix) cold vs warm
   on a shared result cache. The warm run must be served entirely from
   the cache (cell hits > 0, zero trials executed) and its summaries
   must be bit-identical to the cold run's — both enforced with a hard
   failure. The wall ratio is reported, not asserted, so a loaded
   machine cannot flake the bench. *)

type mx_cell = {
  mx_label : string;
  mx_requested : int;
  mx_ok : int;
  mx_skipped : int;
  mx_trials : int;  (* per cell *)
  mx_cold_s : float;
  mx_warm_s : float;
  mx_warm_hits : int;  (* warm cells served entirely from the cache *)
  mx_trials_reused : int;  (* warm run *)
}

let run_matrix ~quick ?jobs () : mx_cell list =
  section "Matrix sweep — cold vs warm on a shared result cache";
  let trials = if quick then 8 else 25 in
  let spec =
    {
      Harness.Matrix.apps = [ "adpcm"; "gsm" ];
      mode = Harness.Experiment.Full;
      policies = [ Core.Policy.Protect_control; Core.Policy.Protect_nothing ];
      errors = [ 1; 5 ];
      trials;
      seed = 1;
    }
  in
  let cache = "_bench_matrix_cache" in
  rm_rf cache;
  let store = Core.Memo.Store.open_ cache in
  let wall name f =
    let t0 = Unix.gettimeofday () in
    let r = timed name f in
    (r, Unix.gettimeofday () -. t0)
  in
  let cold, cold_s =
    wall "matrix_cold" (fun () -> Harness.Matrix.run ?jobs ~store spec)
  in
  let warm, warm_s =
    wall "matrix_warm" (fun () -> Harness.Matrix.run ?jobs ~store spec)
  in
  rm_rf cache;
  (match
     Harness.Matrix.failures cold @ Harness.Matrix.failures warm
   with
   | [] -> ()
   | (l, m) :: _ -> failwith ("matrix cell failed: " ^ l ^ ": " ^ m));
  let tc = Harness.Matrix.totals cold in
  let tw = Harness.Matrix.totals warm in
  if tw.Harness.Matrix.cells_hit = 0 then
    failwith "warm matrix run hit nothing in the cache";
  if tw.Harness.Matrix.trials_run > 0 then
    failwith "warm matrix run re-executed trials";
  List.iter2
    (fun (a : Harness.Matrix.cell) (b : Harness.Matrix.cell) ->
      match (a.Harness.Matrix.status, b.Harness.Matrix.status) with
      | Harness.Matrix.Ok x, Harness.Matrix.Ok y ->
        let fp (ok : Harness.Matrix.cell_ok) =
          List.map fingerprint ok.Harness.Matrix.summary.Core.Campaign.trials
        in
        if fp x <> fp y then
          failwith
            ("cold and warm matrix summaries diverge at "
            ^ Harness.Matrix.cell_label a.Harness.Matrix.cell)
      | Harness.Matrix.Skipped _, Harness.Matrix.Skipped _ -> ()
      | _ ->
        failwith
          ("cold and warm matrix statuses diverge at "
          ^ Harness.Matrix.cell_label a.Harness.Matrix.cell))
    cold.Harness.Matrix.cells warm.Harness.Matrix.cells;
  say
    "  %d cells (%d ok, %d skipped) x %d trials: cold %6.2f s vs warm \
     %6.2f s (%.2fx)  warm: %d/%d cells cached, %d trials reused  \
     [records identical]"
    tc.Harness.Matrix.requested tc.Harness.Matrix.ok
    tc.Harness.Matrix.skipped trials cold_s warm_s
    (warm_s /. Float.max cold_s 1e-9)
    tw.Harness.Matrix.cells_hit tw.Harness.Matrix.ok
    tw.Harness.Matrix.trials_reused;
  [
    {
      mx_label = "adpcm+gsm 2x2x2";
      mx_requested = tc.Harness.Matrix.requested;
      mx_ok = tc.Harness.Matrix.ok;
      mx_skipped = tc.Harness.Matrix.skipped;
      mx_trials = trials;
      mx_cold_s = cold_s;
      mx_warm_s = warm_s;
      mx_warm_hits = tw.Harness.Matrix.cells_hit;
      mx_trials_reused = tw.Harness.Matrix.trials_reused;
    };
  ]

(* ------------------------------------------------------------------ *)
(* `etap serve` daemon: the same inject request cold, warm (second
   request against the now-populated registry and result cache) and as
   a coalesced pair (two identical in-flight requests on one daemon).
   All three drive the real connection handler over pipes, so the
   measurement covers the full protocol path the CLI client sees.
   Hard guards: warm and coalesced responses carry tables bit-identical
   to the cold run's, the warm request executes zero trials and lands
   under 0.1x the cold wall, and the coalesced pair runs trials exactly
   once (serve.coalesced = 1, campaign.trials equal to a single
   request's). *)

type sv_cell = {
  sv_label : string;
  sv_trials : int;  (* per policy *)
  sv_cold_s : float;
  sv_warm_s : float;
  sv_coalesced : int;  (* serve.coalesced during the pair *)
  sv_pair_trials : int;  (* campaign.trials during the pair *)
  sv_single_trials : int;  (* campaign.trials during the cold run *)
}

(* One request/response exchange against [t]'s connection handler,
   running the handler on its own systhread with a pipe pair standing
   in for the socket. *)
let serve_request (t : Harness.Serve.t) (line : string) : string =
  let req_r, req_w = Unix.pipe () in
  let resp_r, resp_w = Unix.pipe () in
  let ic = Unix.in_channel_of_descr req_r in
  let oc = Unix.out_channel_of_descr resp_w in
  let handler =
    Thread.create
      (fun () ->
        ignore (Harness.Serve.serve_connection t ~ic ~oc);
        close_out_noerr oc)
      ()
  in
  let req = Unix.out_channel_of_descr req_w in
  output_string req line;
  output_char req '\n';
  close_out req;
  let resp_ic = Unix.in_channel_of_descr resp_r in
  let resp = input_line resp_ic in
  Thread.join handler;
  close_in_noerr resp_ic;
  close_in_noerr ic;
  resp

(* The identity surface of a served report: its tables. Cache-stat
   meta (hits, reused trials) legitimately varies with cache state. *)
let serve_tables (resp : string) : string =
  match Harness.Proto.reply_of_line resp with
  | Error m -> failwith ("serve: unreadable response: " ^ m)
  | Ok r ->
    if not r.Harness.Proto.ok then
      failwith
        ("serve: request failed: "
        ^ Option.value ~default:"(no error)" r.Harness.Proto.error);
    (match r.Harness.Proto.report with
     | None -> failwith "serve: ok response without a report"
     | Some rep -> (
       match Report.Json.member "tables" rep with
       | Some t -> Report.Json.to_compact_string t
       | None -> failwith "serve: response report without tables"))

let sink_counter sink name =
  Option.value ~default:0
    (List.assoc_opt name (Obs.view sink).Obs.counters)

let run_serve ~quick ?jobs () : sv_cell list =
  section "`etap serve` — cold vs warm vs coalesced on one daemon";
  let trials = if quick then 8 else 25 in
  let errors = 3 in
  let line =
    Report.Json.to_compact_string
      (Report.Json.Obj
         [
           ("id", Report.Json.Int 1);
           ("cmd", Report.Json.Str "inject");
           ("app", Report.Json.Str "gsm");
           ("errors", Report.Json.Int errors);
           ("trials", Report.Json.Int trials);
         ])
  in
  let cache = "_bench_serve_cache" in
  let config gate =
    { Harness.Serve.default_config with cache_dir = cache; jobs; gate }
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Cold then warm: same daemon, same request. *)
  rm_rf cache;
  let t = Harness.Serve.create ~config:(config None) () in
  let sink_cold = Obs.make () in
  let cold_resp, cold_s =
    wall (fun () ->
        timed "serve_cold" (fun () ->
            Obs.with_sink sink_cold (fun () -> serve_request t line)))
  in
  let sink_warm = Obs.make () in
  let warm_resp, warm_s =
    wall (fun () ->
        timed "serve_warm" (fun () ->
            Obs.with_sink sink_warm (fun () -> serve_request t line)))
  in
  (* Hard guard on the introspection path: two stats polls against the
     still-live daemon (outside any with_sink wrapper, so the daemon's
     own sink records them). The second document's interval section
     must cover exactly the one request since the first poll. *)
  ignore (serve_request t {|{"id":90,"cmd":"stats"}|});
  (match Harness.Proto.reply_of_line (serve_request t {|{"id":91,"cmd":"stats"}|}) with
   | Error m -> failwith ("serve: unreadable stats response: " ^ m)
   | Ok r ->
     (match Report.Json.member "stats" r.Harness.Proto.body with
      | None -> failwith "serve: stats response carries no document"
      | Some doc ->
        let geti path =
          match
            List.fold_left
              (fun acc k -> Option.bind acc (Report.Json.member k))
              (Some doc) path
          with
          | Some (Report.Json.Int i) -> i
          | _ ->
            failwith
              ("serve: stats." ^ String.concat "." path ^ " missing")
        in
        if Report.Json.member "schema" doc
           <> Some (Report.Json.Str Harness.Proto.stats_schema)
        then failwith "serve: stats document without its schema marker";
        if geti [ "uptime_us" ] <= 0 then
          failwith "serve: stats uptime not positive";
        if geti [ "executor"; "workers" ] < 1 then
          failwith "serve: stats reports no workers";
        let w = geti [ "interval"; "counters"; "serve.requests" ] in
        if w <> 1 then
          failwith
            (Printf.sprintf
               "serve: stats interval saw %d requests, expected exactly 1" w)));
  Harness.Serve.shutdown t;
  let cold_tables = serve_tables cold_resp in
  if serve_tables warm_resp <> cold_tables then
    failwith "serve: warm response diverges from cold";
  if sink_counter sink_warm "campaign.trials" > 0 then
    failwith "serve: warm request re-executed trials";
  (* The 50 ms absolute floor keeps scheduler noise on a tiny warm
     request from failing the ratio when cold itself is fast. *)
  if warm_s > 0.1 *. cold_s && warm_s > 0.05 then
    failwith
      (Printf.sprintf
         "serve: warm request too slow (%.3f s vs cold %.3f s, > 0.1x)"
         warm_s cold_s);
  (* Coalesced pair: fresh daemon, fresh cache, two identical requests
     in flight at once. The gate parks the winner until the second
     request has attached, so the overlap is deterministic rather than
     a race against campaign wall time. *)
  rm_rf cache;
  let tref = ref None in
  let gate key =
    let deadline = Unix.gettimeofday () +. 10.0 in
    let rec wait () =
      match !tref with
      | Some t2 when Harness.Serve.inflight_waiters t2 ~key >= 1 -> ()
      | _ ->
        if Unix.gettimeofday () < deadline then begin
          Thread.yield ();
          wait ()
        end
    in
    wait ()
  in
  let t2 = Harness.Serve.create ~config:(config (Some gate)) () in
  tref := Some t2;
  let sink_pair = Obs.make () in
  let (pair_a, pair_b), pair_s =
    wall (fun () ->
        timed "serve_coalesced" (fun () ->
            Obs.with_sink sink_pair (fun () ->
                let ra = ref "" and rb = ref "" in
                let th_a = Thread.create (fun () -> ra := serve_request t2 line) () in
                let th_b = Thread.create (fun () -> rb := serve_request t2 line) () in
                Thread.join th_a;
                Thread.join th_b;
                (!ra, !rb))))
  in
  Harness.Serve.shutdown t2;
  rm_rf cache;
  let coalesced = sink_counter sink_pair "serve.coalesced" in
  if coalesced <> 1 then
    failwith
      (Printf.sprintf "serve: expected 1 coalesced request, saw %d" coalesced);
  let pair_trials = sink_counter sink_pair "campaign.trials" in
  let single_trials = sink_counter sink_cold "campaign.trials" in
  if pair_trials <> single_trials then
    failwith
      (Printf.sprintf
         "serve: coalesced pair ran %d trials, single request ran %d"
         pair_trials single_trials);
  if serve_tables pair_a <> cold_tables || serve_tables pair_b <> cold_tables
  then failwith "serve: coalesced responses diverge from a standalone run";
  say
    "  gsm inject e%d t%d: cold %6.2f s, warm %6.2f s (%.2fx), coalesced \
     pair %6.2f s  [%d trials once, records identical]"
    errors trials cold_s warm_s
    (warm_s /. Float.max cold_s 1e-9)
    pair_s pair_trials;
  [
    {
      sv_label = Printf.sprintf "gsm e%d" errors;
      sv_trials = trials;
      sv_cold_s = cold_s;
      sv_warm_s = warm_s;
      sv_coalesced = coalesced;
      sv_pair_trials = pair_trials;
      sv_single_trials = single_trials;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the platform itself.                   *)

let micro () : (string * float * float option) list =
  section "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let susan = (Apps.Susan.app.Apps.App.build ~seed:1).Apps.App.prog in
  let code = Sim.Code.of_prog susan in
  let mcf = (Apps.Mcf.app.Apps.App.build ~seed:1).Apps.App.prog in
  let mcf_code = Sim.Code.of_prog mcf in
  let adpcm_code =
    Sim.Code.of_prog (Apps.Adpcm.app.Apps.App.build ~seed:1).Apps.App.prog
  in
  let gsm_code =
    Sim.Code.of_prog (Apps.Gsm.app.Apps.App.build ~seed:1).Apps.App.prog
  in
  (* Dynamic instruction count per workload, read back through the
     sim.instructions obs counter so the derived throughput column
     measures exactly what the engines report. *)
  let dyn_of c =
    let sink = Obs.make () in
    ignore (Obs.with_sink sink (fun () -> Sim.Interp.run_exn c));
    match List.assoc_opt "sim.instructions" (Obs.view sink).Obs.counters with
    | Some n -> Some (float n)
    | None -> None
  in
  let gcd_src =
    let open Mlang.Dsl in
    program []
      [
        fn "main" [] ~ret:(Some Mlang.Ast.TInt)
          [
            let_ "a" (i 1071);
            let_ "b" (i 462);
            while_ (v "b" <>! i 0)
              [ let_ "t" (v "b"); set "b" (v "a" %! v "b"); set "a" (v "t") ];
            ret (v "a");
          ];
      ]
  in
  (* The interp micros run the fast (threaded-closure) engine — the
     engine campaigns use by default; interp-ref micros keep the
     reference match-dispatch loop on the table for the cross-engine
     trajectory. *)
  let interp name c =
    let image = Sim.Interp.compile c in
    (Test.make ~name
       (Staged.stage (fun () -> ignore (Sim.Interp.run_exn ~image c))),
     dyn_of c)
  in
  let interp_ref name c =
    (Test.make ~name
       (Staged.stage (fun () -> ignore (Sim.Interp.run_exn c))),
     dyn_of c)
  in
  let plain t = (t, None) in
  let tests =
    [
      interp "interp: susan (630k instrs)" code;
      interp "interp: mcf (100k instrs)" mcf_code;
      interp "interp: adpcm (160k instrs)" adpcm_code;
      interp "interp: gsm (1.2M instrs)" gsm_code;
      interp_ref "interp-ref: susan (630k instrs)" code;
      interp_ref "interp-ref: mcf (100k instrs)" mcf_code;
      plain
        (Test.make ~name:"tagging: susan (full)"
           (Staged.stage (fun () ->
                ignore (Core.Tagging.compute ~protect_addresses:true susan))));
      plain
        (Test.make ~name:"tagging: susan (literal)"
           (Staged.stage (fun () ->
                ignore (Core.Tagging.compute ~protect_addresses:false susan))));
      plain
        (Test.make ~name:"compile: mlang gcd"
           (Staged.stage (fun () -> ignore (Mlang.Compile.to_ir gcd_src))));
      plain
        (Test.make ~name:"decode: susan"
           (Staged.stage (fun () -> ignore (Sim.Code.of_prog susan))));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:(Some 10) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results =
    List.concat_map
      (fun (test, dyn) ->
        List.map
          (fun elt ->
            let raw = Benchmark.run cfg [ instance ] elt in
            let est = Analyze.one ols instance raw in
            let ns =
              match Analyze.OLS.estimates est with
              | Some [ t ] -> t
              | Some _ | None -> nan
            in
            (* instrs / (ns * 1e-9) / 1e6 = instrs / ns * 1e3 *)
            let mips =
              match dyn with
              | Some d when Float.is_finite ns && ns > 0.0 ->
                Some (d /. ns *. 1e3)
              | _ -> None
            in
            say "  %-32s %14.1f ns/run  (%.3f ms)%s" (Test.Elt.name elt) ns
              (ns /. 1e6)
              (match mips with
               | Some m -> Printf.sprintf "  %8.1f Minstr/s" m
               | None -> "");
            (Test.Elt.name elt, ns, mips))
          (Test.elements test))
      tests
  in
  (* Engine regression guard: the threaded engine must never come out
     slower than the reference loop on the susan micro. A violation is
     a build/perf regression and fails the bench run (and CI's
     bench-smoke job) loudly. *)
  let ns_of name =
    List.find_map
      (fun (n, ns, _) -> if n = name then Some ns else None)
      results
  in
  (match (ns_of "interp: susan (630k instrs)",
          ns_of "interp-ref: susan (630k instrs)") with
   | Some fast, Some ref_ns
     when Float.is_finite fast && Float.is_finite ref_ns && fast > ref_ns ->
     failwith
       (Printf.sprintf
          "engine regression: fast interp slower than ref on susan \
           (%.0f ns/run > %.0f ns/run)"
          fast ref_ns)
   | _ -> ());
  results

(* ------------------------------------------------------------------ *)
(* JSON report: per-experiment wall times and micro ns/run, so future
   changes have a perf trajectory to diff against. Emitted through the
   shared report layer (schema etap-report/1, same document shape as
   every etap --json), whose printer renders every non-finite float
   (nan from a failed OLS fit, inf from a zero-length timing) as null —
   never a bare token that would break a JSON parser.                  *)

let round3 x = Float.round (x *. 1000.0) /. 1000.0

let bench_report ~jobs ~quick ~experiments ~micro ~checkpoint ~incremental
    ~matrix ~serve ~total : Report.t =
  let secs v = Report.num ~text:(Printf.sprintf "%.3f s" v) v in
  let timing_table ~id ~title ~key ~unit rows =
    Report.table ~id ~title
      ~columns:
        [
          Report.column ~key:"name" "name";
          Report.column ~key unit;
          Report.column ~key:"skipped" "skipped";
        ]
      (List.map
         (fun (name, v) ->
           (* Entries whose wall rounds to 0.000 are experiments that
              did no fresh work this run (their inputs were memoized
              by an earlier experiment — e.g. table3 behind
              load_apps in quick mode). The explicit [skipped]
              boolean is the marker consumers key on; the wall cell
              is null exactly when it is true, so skipped rows stay
              out of perf-trajectory diffs instead of contributing a
              misleading 0.0 — and a null wall can no longer be
              confused with a lost measurement. *)
           let skipped = v < 0.0005 in
           [
             Report.text name;
             (if skipped then Report.Missing "skipped"
              else
                let v = round3 v in
                Report.num ~text:(Printf.sprintf "%.3f" v) v);
             Report.bool skipped;
           ])
         rows)
  in
  let matrix_table =
    Report.table ~id:"matrix"
      ~title:"Matrix sweep: cold vs warm on a shared result cache"
      ~columns:
        (List.map
           (fun (k, l) -> Report.column ~key:k l)
           [
             ("cell", "cell");
             ("cells_requested", "cells");
             ("cells_ok", "ok");
             ("cells_skipped", "skipped");
             ("trials_per_cell", "trials/cell");
             ("cold_wall_s", "cold s");
             ("warm_wall_s", "warm s");
             ("warm_ratio", "warm/cold");
             ("warm_cells_hit", "warm hits");
             ("warm_trials_reused", "reused");
           ])
      (List.map
         (fun c ->
           [
             Report.text c.mx_label;
             Report.int c.mx_requested;
             Report.int c.mx_ok;
             Report.int c.mx_skipped;
             Report.int c.mx_trials;
             secs (round3 c.mx_cold_s);
             secs (round3 c.mx_warm_s);
             (let r = round3 (c.mx_warm_s /. Float.max c.mx_cold_s 1e-9) in
              Report.num ~text:(Printf.sprintf "%.2fx" r) r);
             Report.int c.mx_warm_hits;
             Report.int c.mx_trials_reused;
           ])
         matrix)
  in
  let checkpoint_table =
    Report.table ~id:"checkpoint"
      ~title:"Checkpointed campaigns: fork-from-prefix vs from-scratch"
      ~columns:
        (List.map
           (fun (k, l) -> Report.column ~key:k l)
           [
             ("cell", "cell");
             ("errors", "errors");
             ("trials_per_policy", "trials/policy");
             ("trials_resumed_wall_s", "resumed s");
             ("trials_scratch_wall_s", "scratch s");
             ("speedup", "speedup");
             ("checkpoint_hits", "hits");
             ("trials_total", "trials");
             ("skipped_dyn", "skipped dyn");
           ])
      (List.map
         (fun c ->
           [
             Report.text c.ck_label;
             Report.int c.ck_errors;
             Report.int c.ck_trials;
             secs (round3 c.ck_resumed_s);
             secs (round3 c.ck_scratch_s);
             (let s = round3 (c.ck_scratch_s /. Float.max c.ck_resumed_s 1e-9) in
              Report.num ~text:(Printf.sprintf "%.2fx" s) s);
             Report.int c.ck_hits;
             Report.int c.ck_total;
             Report.int c.ck_skipped_dyn;
           ])
         checkpoint)
  in
  let incremental_table =
    Report.table ~id:"incremental"
      ~title:
        "Incremental campaigns: re-check after a one-function edit vs full"
      ~columns:
        (List.map
           (fun (k, l) -> Report.column ~key:k l)
           [
             ("app", "app");
             ("edited", "edited");
             ("errors", "errors");
             ("trials_per_policy", "trials/policy");
             ("cold_wall_s", "cold s");
             ("full_wall_s", "full s");
             ("recheck_wall_s", "re-check s");
             ("cost_ratio", "re-check/full");
             ("groups_hit", "groups hit");
             ("groups", "groups");
             ("trials_reused", "reused");
             ("trials_run", "run");
           ])
      (List.map
         (fun c ->
           [
             Report.text c.inc_app;
             Report.text c.inc_edited;
             Report.int c.inc_errors;
             Report.int c.inc_trials;
             secs (round3 c.inc_cold_s);
             secs (round3 c.inc_full_s);
             secs (round3 c.inc_recheck_s);
             (let r = round3 (c.inc_recheck_s /. Float.max c.inc_full_s 1e-9) in
              Report.num ~text:(Printf.sprintf "%.2fx" r) r);
             Report.int c.inc_hits;
             Report.int c.inc_sections;
             Report.int c.inc_reused;
             Report.int c.inc_ran;
           ])
         incremental)
  in
  let serve_table =
    Report.table ~id:"serve"
      ~title:"etap serve: cold vs warm vs coalesced pair on one daemon"
      ~columns:
        (List.map
           (fun (k, l) -> Report.column ~key:k l)
           [
             ("cell", "cell");
             ("trials_per_policy", "trials/policy");
             ("cold_wall_s", "cold s");
             ("warm_wall_s", "warm s");
             ("warm_ratio", "warm/cold");
             ("coalesced", "coalesced");
             ("pair_trials_run", "pair trials");
             ("single_trials_run", "single trials");
           ])
      (List.map
         (fun c ->
           [
             Report.text c.sv_label;
             Report.int c.sv_trials;
             secs (round3 c.sv_cold_s);
             secs (round3 c.sv_warm_s);
             (let r = round3 (c.sv_warm_s /. Float.max c.sv_cold_s 1e-9) in
              Report.num ~text:(Printf.sprintf "%.2fx" r) r);
             Report.int c.sv_coalesced;
             Report.int c.sv_pair_trials;
             Report.int c.sv_single_trials;
           ])
         serve)
  in
  Report.make ~command:"bench"
    ~meta:
      [
        ("quick", Report.Json.Bool quick);
        ("jobs", Report.Json.of_int_opt jobs);
        ("total_wall_s", Report.Json.Float (round3 total));
      ]
    [
      timing_table ~id:"experiments" ~title:"Experiment wall times"
        ~key:"wall_s" ~unit:"wall_s" experiments;
      Report.table ~id:"micro" ~title:"Micro-benchmarks"
        ~columns:
          [
            Report.column ~key:"name" "name";
            Report.column ~key:"ns_per_run" "ns_per_run";
            Report.column ~key:"minstr_per_s" "minstr_per_s";
          ]
        (List.map
           (fun (name, ns, mips) ->
             let ns = round3 ns in
             [
               Report.text name;
               Report.num ~text:(Printf.sprintf "%.3f" ns) ns;
               (match mips with
                | Some m ->
                  let m = round3 m in
                  Report.num ~text:(Printf.sprintf "%.1f" m) m
                | None -> Report.text "-");
             ])
           micro);
      checkpoint_table;
      incremental_table;
      matrix_table;
      serve_table;
    ]

let write_json (path, oc) report =
  Out_channel.output_string oc (Report.Json.to_string (Report.to_json report));
  close_out oc;
  say "wrote %s" path

(* ------------------------------------------------------------------ *)

let usage_and_exit msg =
  prerr_endline msg;
  prerr_endline
    "usage: main.exe [--quick] [--jobs N | -j N] [--json PATH] [--trace PATH] \
     [--metrics PATH] [EXPERIMENT...]";
  exit 2

let () =
  let rec parse (quick, jobs, json, trace, metrics, rest) = function
    | [] -> (quick, jobs, json, trace, metrics, List.rev rest)
    | "--quick" :: tl -> parse (true, jobs, json, trace, metrics, rest) tl
    | ("--jobs" | "-j") :: n :: tl ->
      (match int_of_string_opt n with
       | Some j when j >= 1 -> parse (quick, Some j, json, trace, metrics, rest) tl
       | _ -> usage_and_exit ("bad --jobs value: " ^ n))
    | [ ("--jobs" | "-j") ] -> usage_and_exit "--jobs needs a value"
    | "--json" :: path :: tl -> parse (quick, jobs, Some path, trace, metrics, rest) tl
    | [ "--json" ] -> usage_and_exit "--json needs a path"
    | "--trace" :: path :: tl -> parse (quick, jobs, json, Some path, metrics, rest) tl
    | [ "--trace" ] -> usage_and_exit "--trace needs a path"
    | "--metrics" :: path :: tl -> parse (quick, jobs, json, trace, Some path, rest) tl
    | [ "--metrics" ] -> usage_and_exit "--metrics needs a path"
    | a :: tl -> parse (quick, jobs, json, trace, metrics, a :: rest) tl
  in
  let quick, jobs, json, trace, metrics, args =
    parse (false, None, None, None, None, []) (List.tl (Array.to_list Sys.argv))
  in
  (* Telemetry sink for --trace/--metrics: installed for the whole run,
     so every campaign span and counter below lands in it. Without the
     flags the ambient sink stays disabled and instrumentation is
     no-op. *)
  let obs_sink =
    if trace <> None || metrics <> None then begin
      let s = Obs.make () in
      Obs.install s;
      Some s
    end
    else None
  in
  (* Open the report up front so a bad path fails before the (possibly
     long) benchmark run, not after it. *)
  let json =
    Option.map
      (fun path ->
        match open_out path with
        | oc -> (path, oc)
        | exception Sys_error e -> usage_and_exit ("cannot open --json path: " ^ e))
      json
  in
  let trials = if quick then 8 else 20 in
  let t2_trials = if quick then 10 else 25 in
  let want name =
    args = [] || List.mem name args
    || (String.length name > 3
       && String.sub name 0 3 = "fig"
       && List.mem "figures" args)
  in
  let needs_apps =
    args = []
    || List.exists
         (fun a ->
           a <> "micro" && a <> "checkpoint" && a <> "incremental"
           && a <> "matrix" && a <> "serve")
         args
  in
  let t0 = Unix.gettimeofday () in
  let loaded =
    if needs_apps then begin
      say "building applications and baselines... (jobs=%s)"
        (match jobs with
         | Some j -> string_of_int j
         | None -> Printf.sprintf "auto:%d" (Core.Pool.default_jobs ()));
      timed "load_apps" (fun () -> Harness.Experiment.load_all ?jobs ())
    end
    else []
  in
  if want "table2" then run_table2 ~trials:t2_trials ?jobs loaded;
  if want "table3" then run_table3 ?jobs loaded;
  run_figures ~trials ?jobs ~which:want loaded;
  if want "ablation" then run_ablations ~trials ?jobs loaded;
  if want "extensions" then run_extensions ~trials ?jobs loaded;
  let checkpoint_results =
    if want "checkpoint" then run_checkpoint ~quick ?jobs () else []
  in
  let incremental_results =
    if want "incremental" then run_incremental ~quick ?jobs () else []
  in
  let matrix_results =
    if want "matrix" then run_matrix ~quick ?jobs () else []
  in
  let serve_results =
    if want "serve" then run_serve ~quick ?jobs () else []
  in
  let micro_results = if want "micro" then timed "micro" micro else [] in
  let total = Unix.gettimeofday () -. t0 in
  say "";
  List.iter
    (fun (name, secs) -> say "  %-28s %7.2f s" name secs)
    !experiment_times;
  say "total wall time: %.1f s" total;
  (* Telemetry trailer + exports. The trial-latency histogram comes
     from the merged obs view (campaign.trial_us, fed by every campaign
     above); quantiles are bucket representatives, ~9% resolution. *)
  (match obs_sink with
   | None -> ()
   | Some sink ->
     let v = Obs.view sink in
     (match List.assoc_opt "campaign.trial_us" v.Obs.hists with
      | Some h when Core.Stats.hist_count h > 0 ->
        let q p =
          match Core.Stats.hist_quantile h p with
          | Some us -> Printf.sprintf "%.2f ms" (us /. 1000.0)
          | None -> "n/a"
        in
        say "trial latency (%d trials): p50 %s  p90 %s  p99 %s"
          (Core.Stats.hist_count h) (q 0.50) (q 0.90) (q 0.99)
      | _ -> ());
     (match trace with
      | None -> ()
      | Some path ->
        Obs.write_trace ~path v;
        say "wrote %s" path);
     match metrics with
     | None -> ()
     | Some path ->
       Obs.write_metrics ~path ~command:"bench"
         ~meta:
           [
             ("quick", Report.Json.Bool quick);
             ("jobs", Report.Json.of_int_opt jobs);
           ]
         v;
       say "wrote %s" path);
  match json with
  | None -> ()
  | Some dest ->
    write_json dest
      (bench_report ~jobs ~quick ~experiments:!experiment_times
         ~micro:micro_results ~checkpoint:checkpoint_results
         ~incremental:incremental_results ~matrix:matrix_results
         ~serve:serve_results ~total)
