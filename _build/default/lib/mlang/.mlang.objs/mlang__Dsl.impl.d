lib/mlang/dsl.ml: Array Ast
