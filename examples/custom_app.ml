(* Custom application walkthrough — the paper's intended usage model:
   "The programmer identifies which functions can tolerate some error
   to their data, and the compiler tags instructions that do not
   affect the control operations."

   We build a small sensor-fusion pipeline (moving-average smoothing +
   peak detection) where the programmer marks the smoothing kernel as
   eligible but keeps the peak detector protected, then compare three
   eligibility choices under identical fault pressure.

   Run with:  dune exec examples/custom_app.exe *)

let say fmt = Printf.printf (fmt ^^ "\n%!")

let n = 256

let make_program ~smooth_eligible ~detect_eligible =
  let open Mlang.Dsl in
  let samples =
    Array.init n (fun k ->
        let base = 100.0 *. sin (float_of_int k /. 9.0) in
        let spike = if k mod 61 >= 16 && k mod 61 <= 18 then 400 else 0 in
        Int32.of_int (int_of_float base + spike + 500))
  in
  program
    [
      garray_init "raw" samples;
      garray "smooth" n;
      garray "peaks" 16;       (* indices of detected peaks *)
      garray "n_peaks" 1;
    ]
    [
      (* 5-tap moving average: pure data manipulation *)
      fn ~eligible:smooth_eligible "smooth_all" [] ~ret:None
        [
          for_ "k" (i 2)
            (i (n - 2))
            [
              let_ "acc"
                ("raw".%(v "k" -! i 2)
                +! "raw".%(v "k" -! i 1)
                +! "raw".%(v "k")
                +! "raw".%(v "k" +! i 1)
                +! "raw".%(v "k" +! i 2));
              sto "smooth" (v "k") (v "acc" /! i 5);
            ];
        ];
      (* threshold peak detector: output *positions*, i.e. control-like
         data the caller will branch on *)
      fn ~eligible:detect_eligible "detect" [] ~ret:None
        [
          let_ "count" (i 0);
          for_ "k" (i 1)
            (i (n - 1))
            [
              when_
                ((("smooth".%(v "k") >! i 700)
                 &&! ("smooth".%(v "k") >=! "smooth".%(v "k" -! i 1)))
                &&! ("smooth".%(v "k") >=! "smooth".%(v "k" +! i 1)))
                [
                  when_
                    (v "count" <! i 16)
                    [
                      sto "peaks" (v "count") (v "k");
                      set "count" (v "count" +! i 1);
                    ];
                ];
            ];
          sto "n_peaks" (i 0) (v "count");
        ];
      fn ~eligible:false "main" [] ~ret:(Some Mlang.Ast.TInt)
        [ call_ "smooth_all" []; call_ "detect" []; ret (i 0) ];
    ]

let campaign ~label ~smooth_eligible ~detect_eligible =
  let prog = Mlang.Compile.to_ir (make_program ~smooth_eligible ~detect_eligible) in
  let target = Core.Campaign.of_prog prog in
  let golden = target.Core.Campaign.baseline in
  let read r name = Sim.Memory.read_global_ints r.Sim.Interp.memory prog name in
  let peak_list r =
    let count = (read r "n_peaks").(0) in
    let peaks = read r "peaks" in
    List.init (max 0 (min count 16)) (fun i -> peaks.(i))
  in
  let golden_peaks = peak_list golden in
  let prepared = Core.Campaign.prepare target Core.Policy.Protect_control in
  (* recall: how many of the true peaks are still reported? Scored at
     the source — the peak lists never leave the worker, only the
     percentage does. *)
  let score r =
    let got = peak_list r in
    let found = List.filter (fun p -> List.mem p got) golden_peaks in
    100.0
    *. float_of_int (List.length found)
    /. float_of_int (max 1 (List.length golden_peaks))
  in
  let summary = Core.Campaign.run ~score prepared ~errors:3 ~trials:50 ~seed:13 in
  say
    "%-34s injectable pool %7d  catastrophic %4.0f%%  true peaks still \
     found: %3.0f%%"
    label prepared.Core.Campaign.injectable_total
    (Core.Campaign.pct_catastrophic summary)
    (Option.value ~default:Float.nan (Core.Campaign.mean_fidelity summary))

let () =
  say "sensor pipeline, 6 errors x 50 trials, control protection ON:";
  say "";
  campaign ~label:"nothing eligible (all protected)" ~smooth_eligible:false
    ~detect_eligible:false;
  campaign ~label:"smoothing eligible (recommended)" ~smooth_eligible:true
    ~detect_eligible:false;
  campaign ~label:"everything eligible" ~smooth_eligible:true
    ~detect_eligible:true;
  say "";
  say "marking only the data-manipulating kernel eligible exposes most of";
  say "the execution to cheap hardware while the peak positions survive."
