(* Unified typed report layer.

   Every experiment produces a [table] of typed [cell]s instead of
   pre-formatted strings; one value then renders both ways:

   - [to_text] — the plain-text table the harness has always printed
     (byte-identical to the old [Tablefmt.render] output);
   - [to_json] — a machine-readable document under the versioned
     schema [etap-report/1], shared by every [etap --json] subcommand
     and the bench harness.

   Cells keep the numeric value and the display text separately, so
   the JSON side always emits real numbers (or [null] — never a bare
   [nan]/[inf] token) while the text side reproduces the exact
   historical formatting. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON values and printer, shared by the [etap-report/1],
   [etap-trace/1] and [etap-metrics/1] emitters. No external
   dependency.                                                         *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float  (* non-finite values print as null *)
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* Shortest decimal form that still reads back as the same double for
     the magnitudes reports contain; integral floats print without an
     exponent so the document stays human-scannable. *)
  let float_repr x =
    if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.1f" x
    else Printf.sprintf "%.12g" x

  let rec write buf ~indent t =
    let pad n = String.make n ' ' in
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x ->
      Buffer.add_string buf
        (if Float.is_finite x then float_repr x else "null")
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          write buf ~indent:(indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          write buf ~indent:(indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 1024 in
    write buf ~indent:0 t;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  (* Single-line form, for JSONL streams (one document per line) and
     large machine-only payloads like trace events. Same value
     rendering as [write] — in particular non-finite floats still print
     as null. *)
  let rec write_compact buf t =
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x ->
      Buffer.add_string buf (if Float.is_finite x then float_repr x else "null")
    | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write_compact buf item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write_compact buf v)
        fields;
      Buffer.add_char buf '}'

  let to_compact_string t =
    let buf = Buffer.create 256 in
    write_compact buf t;
    Buffer.contents buf

  let of_int_opt = function None -> Null | Some i -> Int i

  let to_file path t =
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (to_string t))

  (* ---------------------------- parser ---------------------------- *)

  (* Recursive-descent reader for the documents this module writes
     (cache entries, reports). Accepts standard JSON; numbers without a
     fraction or exponent read back as [Int], everything else as
     [Float]. [\u] escapes decode to UTF-8 bytes. *)
  exception Parse_error of string

  let of_string_exn (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let lit word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let utf8 buf cp =
      if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let string_body () =
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'; incr pos
           | '\\' -> Buffer.add_char buf '\\'; incr pos
           | '/' -> Buffer.add_char buf '/'; incr pos
           | 'b' -> Buffer.add_char buf '\b'; incr pos
           | 'f' -> Buffer.add_char buf '\012'; incr pos
           | 'n' -> Buffer.add_char buf '\n'; incr pos
           | 'r' -> Buffer.add_char buf '\r'; incr pos
           | 't' -> Buffer.add_char buf '\t'; incr pos
           | 'u' ->
             if !pos + 4 >= n then fail "truncated \\u escape";
             let hex = String.sub s (!pos + 1) 4 in
             let cp =
               try int_of_string ("0x" ^ hex)
               with _ -> fail "bad \\u escape"
             in
             utf8 buf cp;
             pos := !pos + 5
           | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
        | c -> Buffer.add_char buf c; incr pos; go ()
      in
      go ();
      Buffer.contents buf
    in
    let number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do incr pos done;
      let tok = String.sub s start (!pos - start) in
      let is_float =
        String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok
      in
      if is_float then
        match float_of_string_opt tok with
        | Some x -> Float x
        | None -> fail ("bad number " ^ tok)
      else
        match int_of_string_opt tok with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt tok with
          | Some x -> Float x
          | None -> fail ("bad number " ^ tok))
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some 'n' -> lit "null" Null
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some '"' -> incr pos; Str (string_body ())
      | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; Arr [] end
        else begin
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; items (v :: acc)
            | Some ']' -> incr pos; List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
      | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; Obj [] end
        else begin
          let field () =
            skip_ws ();
            expect '"';
            let k = string_body () in
            skip_ws ();
            expect ':';
            let v = value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; fields (kv :: acc)
            | Some '}' -> incr pos; List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
      | Some _ -> number ()
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let of_string s : (t, string) result =
    match of_string_exn s with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  (* Field access helpers for readers of parsed documents. *)
  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None

  let to_int_opt = function Int i -> Some i | _ -> None
  let to_str_opt = function Str s -> Some s | _ -> None

  (* Numbers parse as Int when integral, so numeric readers accept
     both shapes. *)
  let to_float_opt = function
    | Float f -> Some f
    | Int i -> Some (float_of_int i)
    | _ -> None

  let to_bool_opt = function Bool b -> Some b | _ -> None
end

(* ------------------------------------------------------------------ *)
(* Cells, columns, tables.                                             *)

type cell =
  | Text of string          (* JSON string *)
  | Int of int              (* JSON integer *)
  | Num of float * string   (* JSON number, custom display text *)
  | Bool of bool            (* JSON boolean *)
  | Missing of string       (* JSON null, display placeholder *)

let text s = Text s
let int n = Int n
let num ~text v = Num (v, text)
let bool b = Bool b

(* Frozen display formats (formerly Tablefmt.{pct,db,count}). *)
let pct x = Num (x, Printf.sprintf "%.1f%%" x)
let db x = Num (x, Printf.sprintf "%.1f dB" x)
let count n = Int n

let opt ~missing some = function Some v -> some v | None -> Missing missing

let cell_text = function
  | Text s -> s
  | Int n -> string_of_int n
  | Num (_, s) -> s
  | Bool b -> string_of_bool b
  | Missing s -> s

let cell_json = function
  | Text s -> Json.Str s
  | Int n -> Json.Int n
  | Num (v, _) -> Json.Float v  (* nan/inf -> null at print time *)
  | Bool b -> Json.Bool b
  | Missing _ -> Json.Null

type column = {
  key : string;    (* JSON field name *)
  label : string;  (* text-rendering header *)
}

let column ?key label =
  let key =
    match key with
    | Some k -> k
    | None ->
      (* slug of the label: lowercase alphanumerics joined by '_' *)
      let b = Buffer.create (String.length label) in
      let pending = ref false in
      String.iter
        (fun c ->
          match Char.lowercase_ascii c with
          | ('a' .. 'z' | '0' .. '9') as c ->
            if !pending && Buffer.length b > 0 then Buffer.add_char b '_';
            pending := false;
            Buffer.add_char b c
          | _ -> pending := true)
        label;
      Buffer.contents b
  in
  { key; label }

type table = {
  id : string;
  title : string;
  columns : column list;
  rows : cell list list;
}

let table ~id ~title ~columns rows = { id; title; columns; rows }

(* ------------------------------------------------------------------ *)
(* Text rendering — byte-identical to the historical Tablefmt output.
   Array-based: column widths and row formatting are O(rows x cols)
   instead of the old List.nth-based O(rows x cols^2).                 *)

let to_text (t : table) : string =
  let headers = Array.of_list (List.map (fun c -> c.label) t.columns) in
  let ncols = Array.length headers in
  let rows =
    List.map
      (fun row ->
        let a = Array.make ncols "" in
        List.iteri (fun i c -> if i < ncols then a.(i) <- cell_text c) row;
        a)
      t.rows
  in
  let widths = Array.map String.length headers in
  List.iter
    (fun row ->
      Array.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
      row)
    rows;
  let buf = Buffer.create 256 in
  let line ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths
  in
  let fmt_row row =
    Buffer.add_char buf '|';
    Array.iteri
      (fun i cell ->
        Buffer.add_string buf (Printf.sprintf " %-*s " widths.(i) cell);
        Buffer.add_char buf '|')
      row
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  line '-';
  Buffer.add_char buf '\n';
  fmt_row headers;
  Buffer.add_char buf '\n';
  line '=';
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      fmt_row r;
      Buffer.add_char buf '\n')
    rows;
  line '-';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Reports and the etap-report/1 JSON document.                        *)

type t = {
  command : string;             (* producing subcommand, e.g. "table2" *)
  meta : (string * Json.t) list;  (* invocation parameters *)
  tables : table list;
}

let schema_version = "etap-report/1"

let make ~command ?(meta = []) tables = { command; meta; tables }

let table_json (t : table) =
  Json.Obj
    [
      ("id", Json.Str t.id);
      ("title", Json.Str t.title);
      ( "columns",
        Json.Arr
          (List.map
             (fun c ->
               Json.Obj
                 [ ("key", Json.Str c.key); ("label", Json.Str c.label) ])
             t.columns) );
      ( "rows",
        Json.Arr
          (List.map
             (fun row ->
               (* Short rows pad with null, mirroring the text
                  renderer's empty cells; extra cells are dropped. *)
               let rec zip cols cells =
                 match (cols, cells) with
                 | [], _ -> []
                 | c :: cols, [] -> (c.key, Json.Null) :: zip cols []
                 | c :: cols, cell :: cells ->
                   (c.key, cell_json cell) :: zip cols cells
               in
               Json.Obj (zip t.columns row))
             t.rows) );
    ]

let to_json (r : t) =
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("command", Json.Str r.command);
      ("meta", Json.Obj r.meta);
      ("tables", Json.Arr (List.map table_json r.tables));
    ]

let write_json ~path (r : t) = Json.to_file path (to_json r)
