(* Lexer for Mlang's C-like surface syntax. Supports `//` line and
   `/* */` block comments, decimal integer and floating literals, and
   the operator set of the language. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string        (* int float byte void global protected if else
                           while for return break continue true false *)
  | PUNCT of string     (* ( ) { } [ ] ; , = *)
  | OP of string        (* + - * / % & | ^ << >> >>> == != < <= > >= && || ! *)
  | EOF

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable peeked : (token * int) option;  (* token and its line *)
}

exception Lex_error of int * string

let keywords =
  [ "int"; "float"; "byte"; "void"; "global"; "protected"; "if"; "else";
    "while"; "for"; "return"; "break"; "continue" ]

let create src = { src; pos = 0; line = 1; peeked = None }

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

let rec skip_ws t =
  if t.pos >= String.length t.src then ()
  else
    match t.src.[t.pos] with
    | ' ' | '\t' | '\r' ->
      t.pos <- t.pos + 1;
      skip_ws t
    | '\n' ->
      t.pos <- t.pos + 1;
      t.line <- t.line + 1;
      skip_ws t
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '/' ->
      while t.pos < String.length t.src && t.src.[t.pos] <> '\n' do
        t.pos <- t.pos + 1
      done;
      skip_ws t
    | '/' when t.pos + 1 < String.length t.src && t.src.[t.pos + 1] = '*' ->
      let start_line = t.line in
      t.pos <- t.pos + 2;
      let rec find () =
        if t.pos + 1 >= String.length t.src then
          raise (Lex_error (start_line, "unterminated block comment"))
        else if t.src.[t.pos] = '*' && t.src.[t.pos + 1] = '/' then
          t.pos <- t.pos + 2
        else begin
          if t.src.[t.pos] = '\n' then t.line <- t.line + 1;
          t.pos <- t.pos + 1;
          find ()
        end
      in
      find ();
      skip_ws t
    | _ -> ()

let lex_number t =
  let start = t.pos in
  while t.pos < String.length t.src && is_digit t.src.[t.pos] do
    t.pos <- t.pos + 1
  done;
  let is_float =
    t.pos < String.length t.src
    && t.src.[t.pos] = '.'
    && t.pos + 1 < String.length t.src
    && is_digit t.src.[t.pos + 1]
  in
  if is_float then begin
    t.pos <- t.pos + 1;
    while t.pos < String.length t.src && is_digit t.src.[t.pos] do
      t.pos <- t.pos + 1
    done;
    (* optional exponent *)
    if t.pos < String.length t.src && (t.src.[t.pos] = 'e' || t.src.[t.pos] = 'E')
    then begin
      t.pos <- t.pos + 1;
      if t.pos < String.length t.src && (t.src.[t.pos] = '+' || t.src.[t.pos] = '-')
      then t.pos <- t.pos + 1;
      while t.pos < String.length t.src && is_digit t.src.[t.pos] do
        t.pos <- t.pos + 1
      done
    end;
    FLOAT (float_of_string (String.sub t.src start (t.pos - start)))
  end
  else INT (int_of_string (String.sub t.src start (t.pos - start)))

let lex_raw t : token =
  skip_ws t;
  if t.pos >= String.length t.src then EOF
  else begin
    let c = t.src.[t.pos] in
    let two =
      if t.pos + 1 < String.length t.src then
        String.sub t.src t.pos 2
      else ""
    in
    let three =
      if t.pos + 2 < String.length t.src then String.sub t.src t.pos 3 else ""
    in
    if is_digit c then lex_number t
    else if is_ident_start c then begin
      let start = t.pos in
      while t.pos < String.length t.src && is_ident t.src.[t.pos] do
        t.pos <- t.pos + 1
      done;
      let word = String.sub t.src start (t.pos - start) in
      if List.mem word keywords then KW word else IDENT word
    end
    else if three = ">>>" then begin
      t.pos <- t.pos + 3;
      OP ">>>"
    end
    else if List.mem two [ "<<"; ">>"; "=="; "!="; "<="; ">="; "&&"; "||" ]
    then begin
      t.pos <- t.pos + 2;
      OP two
    end
    else begin
      t.pos <- t.pos + 1;
      match c with
      | '(' | ')' | '{' | '}' | '[' | ']' | ';' | ',' -> PUNCT (String.make 1 c)
      | '=' -> PUNCT "="
      | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '<' | '>' | '!' ->
        OP (String.make 1 c)
      | c -> raise (Lex_error (t.line, Printf.sprintf "unexpected character %C" c))
    end
  end

let peek t =
  match t.peeked with
  | Some (tok, _) -> tok
  | None ->
    let tok = lex_raw t in
    t.peeked <- Some (tok, t.line);
    tok

let next t =
  match t.peeked with
  | Some (tok, _) ->
    t.peeked <- None;
    tok
  | None -> lex_raw t

let line t = match t.peeked with Some (_, l) -> l | None -> t.line

let string_of_token = function
  | INT n -> string_of_int n
  | FLOAT x -> string_of_float x
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> s
  | OP s -> s
  | EOF -> "<eof>"
