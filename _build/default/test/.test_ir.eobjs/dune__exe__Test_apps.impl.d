test/test_apps.ml: Alcotest Apps Array Fidelity Int32 List QCheck QCheck_alcotest Sim Workloads
