lib/mlang/lower.ml: Ast Int32 Ir List Map Option Printf String Typecheck
