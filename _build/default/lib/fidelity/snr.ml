(* Signal-to-noise ratio with an explicit reference signal, used for
   MPEG frame quality and GSM decoded speech (paper Table 1). *)

let cap_db = 99.0

(* SNR in dB of [signal] against [reference]: power of the reference
   over power of the deviation. *)
let snr_db (reference : int array) (signal : int array) =
  if Array.length reference <> Array.length signal then
    invalid_arg "snr: length mismatch";
  let sig_pow = ref 0.0 and noise_pow = ref 0.0 in
  Array.iteri
    (fun i r ->
      let rf = float_of_int r in
      let d = float_of_int (signal.(i) - r) in
      sig_pow := !sig_pow +. (rf *. rf);
      noise_pow := !noise_pow +. (d *. d))
    reference;
  if !noise_pow = 0.0 then cap_db
  else if !sig_pow = 0.0 then 0.0
  else Float.min (10.0 *. log10 (!sig_pow /. !noise_pow)) cap_db

let snr_db_f (reference : float array) (signal : float array) =
  if Array.length reference <> Array.length signal then
    invalid_arg "snr: length mismatch";
  let sig_pow = ref 0.0 and noise_pow = ref 0.0 in
  Array.iteri
    (fun i r ->
      let d = signal.(i) -. r in
      sig_pow := !sig_pow +. (r *. r);
      noise_pow := !noise_pow +. (d *. d))
    reference;
  if !noise_pow = 0.0 then cap_db
  else if !sig_pow = 0.0 then 0.0
  else Float.min (10.0 *. log10 (!sig_pow /. !noise_pow)) cap_db

(* dB lost relative to a baseline SNR (e.g. MPEG's per-frame quality
   drop against the fault-free reconstruction). *)
let loss_db ~baseline_db ~observed_db = baseline_db -. observed_db
