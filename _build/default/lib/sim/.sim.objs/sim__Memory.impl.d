lib/sim/memory.ml: Array Bytes Int32 Ir List Trap Value
