(* Tests for the shadow-taint interpreter and the fault-flow audit:
   directed single-fault kernels pinning each taxonomy class, the
   taint/plain equivalence property (same plan, same architectural
   behaviour), parallel bit-exactness with taint on, and the
   Audit-level soundness checks the `etap audit` subcommand relies
   on. *)

open Ir

let r0 = Reg.int 0
let r1 = Reg.int 1
let r2 = Reg.int 2

let flow_t =
  Alcotest.testable Sim.Taint.pp_flow (fun a b -> a = b)

let build ?(globals = []) ?ret body =
  let f = Func.make ~name:"main" ~params:[] ~ret body in
  Sim.Code.of_prog (Prog.make ~globals [ f ])

(* One main function, one tagged instruction, one planned fault at
   ordinal 0: run with taint and return the fault-flow summary. *)
let run_directed ?globals ?ret ?lenient ~tags body : Sim.Taint.summary =
  let code = build ?globals ?ret body in
  let injection = Sim.Interp.injection ~tags:[| tags |] ~plan:[ (0, 1) ] in
  let r = Sim.Interp.run ~injection ?lenient ~taint:true code in
  Alcotest.(check int) "fault landed" 1 r.Sim.Interp.faults_landed;
  match r.Sim.Interp.fault_flow with
  | Some s -> s
  | None -> Alcotest.fail "taint run returned no fault_flow"

let g_int = Prog.global "g" Ty.I32 2

(* A fault seeded in a branch operand is a memory-free control
   contamination — the event the soundness invariant forbids under
   protect-control. *)
let test_flow_control () =
  let s =
    run_directed ~tags:[| true; false; false; false |]
      [
        Instr.Li (r0, 5l);
        Instr.Brz (Instr.Ne, r0, "end");
        Instr.Label "end";
        Instr.Ret None;
      ]
  in
  Alcotest.check flow_t "class" Sim.Taint.Reached_control s.Sim.Taint.flow;
  Alcotest.(check bool) "memory-free events" true (s.Sim.Taint.control_free >= 1);
  Alcotest.(check int) "no via-memory events" 0 s.Sim.Taint.control_via_memory;
  Alcotest.(check (option (pair string int)))
    "witness names the branch" (Some ("main", 1)) s.Sim.Taint.first_control

(* The same contamination routed through a store/load round trip is the
   documented residual: still Reached_control, but via memory — and no
   memory-free witness. *)
let test_flow_control_via_memory () =
  let s =
    run_directed ~globals:[ g_int ]
      ~tags:[| true; false; false; false; false; false; false |]
      [
        Instr.Li (r0, 5l);
        Instr.La (r1, "g");
        Instr.Sw (r0, r1, 0);
        Instr.Lw (r2, r1, 0);
        Instr.Brz (Instr.Ne, r2, "end");
        Instr.Label "end";
        Instr.Ret None;
      ]
  in
  Alcotest.check flow_t "class" Sim.Taint.Reached_control s.Sim.Taint.flow;
  Alcotest.(check int) "no memory-free events" 0 s.Sim.Taint.control_free;
  Alcotest.(check bool) "via-memory events" true
    (s.Sim.Taint.control_via_memory >= 1);
  Alcotest.(check bool) "store recorded" true (s.Sim.Taint.memory_hits >= 1);
  Alcotest.(check (option (pair string int))) "no witness" None
    s.Sim.Taint.first_control

let test_flow_memory () =
  let s =
    run_directed ~globals:[ g_int ]
      ~tags:[| true; false; false; false |]
      [
        Instr.Li (r0, 5l);
        Instr.La (r1, "g");
        Instr.Sw (r0, r1, 0);
        Instr.Ret None;
      ]
  in
  Alcotest.check flow_t "class" Sim.Taint.Reached_memory s.Sim.Taint.flow;
  Alcotest.(check bool) "store recorded" true (s.Sim.Taint.memory_hits >= 1);
  Alcotest.(check int) "control clean" 0
    (s.Sim.Taint.control_free + s.Sim.Taint.control_via_memory)

(* A corrupted base register is a wild access in the making; lenient
   memory keeps the run alive whatever the flipped address is. *)
let test_flow_address () =
  let s =
    run_directed ~globals:[ g_int ] ~lenient:true
      ~tags:[| true; false; false |]
      [ Instr.La (r0, "g"); Instr.Lw (r1, r0, 0); Instr.Ret None ]
  in
  Alcotest.check flow_t "class" Sim.Taint.Reached_address s.Sim.Taint.flow;
  Alcotest.(check bool) "base hit recorded" true (s.Sim.Taint.address_hits >= 1)

(* A tainted div denominator is a trap hazard, classified with the
   address tier (crash-capable operand sinks) — NOT control: a
   memory-free chain into a denominator is reachable even under
   protect-control, as the paper's crash residual. *)
let test_flow_trap_operand () =
  let s =
    run_directed
      ~tags:[| true; false; false; false |]
      [
        Instr.Li (r0, 4l);
        Instr.Li (r1, 100l);
        Instr.Bin (Instr.Div, r2, r1, r0);
        Instr.Ret None;
      ]
  in
  Alcotest.check flow_t "class" Sim.Taint.Reached_address s.Sim.Taint.flow;
  Alcotest.(check bool) "denominator recorded" true
    (s.Sim.Taint.trap_operand_hits >= 1);
  Alcotest.(check int) "not control" 0
    (s.Sim.Taint.control_free + s.Sim.Taint.control_via_memory)

let test_flow_data_only () =
  let s =
    run_directed ~ret:Ty.I32
      ~tags:[| true; false; false |]
      [
        Instr.Li (r0, 5l);
        Instr.Bin (Instr.Add, r1, r0, r0);
        Instr.Ret (Some r1);
      ]
  in
  Alcotest.check flow_t "class" Sim.Taint.Data_only s.Sim.Taint.flow

let test_flow_vanished () =
  let s =
    run_directed ~ret:Ty.I32
      ~tags:[| true; false; false |]
      [ Instr.Li (r0, 5l); Instr.Li (r1, 1l); Instr.Ret (Some r1) ]
  in
  Alcotest.check flow_t "class" Sim.Taint.Vanished s.Sim.Taint.flow

(* Taint without any injection: nothing to track; and without [~taint]
   no summary is produced at all. *)
let test_no_fault_no_flow () =
  let code = build ~ret:Ty.I32 [ Instr.Li (r0, 1l); Instr.Ret (Some r0) ] in
  let r = Sim.Interp.run ~taint:true code in
  (match r.Sim.Interp.fault_flow with
   | Some s -> Alcotest.check flow_t "clean run" Sim.Taint.Vanished s.Sim.Taint.flow
   | None -> Alcotest.fail "expected a summary under ~taint:true");
  let r' = Sim.Interp.run code in
  Alcotest.(check bool) "no summary without taint" true
    (r'.Sim.Interp.fault_flow = None)

(* ------------------------------------------------------------------ *)
(* Equivalence and determinism at campaign level.                      *)

let gcd_mlang =
  let open Mlang.Dsl in
  program
    [ garray "out" 2 ]
    [
      fn "gcd" [ p_int "a"; p_int "b" ] ~ret:(Some Mlang.Ast.TInt)
        [
          while_ (v "b" <>! i 0)
            [ let_ "t" (v "b"); set "b" (v "a" %! v "b"); set "a" (v "t") ];
          ret (v "a");
        ];
      fn "main" [] ~ret:(Some Mlang.Ast.TInt)
        [
          let_ "g" (call "gcd" [ i 252; i 105 ]);
          let_ "scaled" (v "g" *! i 3);
          sto "out" (i 0) (v "scaled");
          ret (i 0);
        ];
    ]

let gcd_prepared =
  lazy
    (let prog = Mlang.Compile.to_ir gcd_mlang in
     let target = Core.Campaign.of_prog prog in
     fun policy -> Core.Campaign.prepare target policy)

(* The taint loop is a twin of the plain loop: same instruction order,
   same injection ordinals, same write-back points. Same plan in, same
   architectural behaviour out. *)
let taint_plain_equivalence =
  QCheck.Test.make ~name:"taint run == plain run (outcome, dyn, landings)"
    ~count:100
    QCheck.(pair (int_bound 100_000) (int_range 1 20))
    (fun (seed, errors) ->
      let p = Lazy.force gcd_prepared Core.Policy.Protect_nothing in
      let run taint =
        let rng = Random.State.make [| seed; errors |] in
        Core.Campaign.run_trial_result ~taint p ~errors ~rng
      in
      let a = run false and b = run true in
      Core.Outcome.to_string (Core.Outcome.of_result a)
      = Core.Outcome.to_string (Core.Outcome.of_result b)
      && a.Sim.Interp.dyn_count = b.Sim.Interp.dyn_count
      && a.Sim.Interp.injectable_seen = b.Sim.Interp.injectable_seen
      && a.Sim.Interp.faults_landed = b.Sim.Interp.faults_landed)

(* The flow classification is a pure function of the trial RNG. *)
let flow_determinism =
  QCheck.Test.make ~name:"flow classification deterministic" ~count:50
    QCheck.(int_bound 100_000)
    (fun seed ->
      let p = Lazy.force gcd_prepared Core.Policy.Protect_nothing in
      let flow () =
        let rng = Random.State.make [| seed |] in
        let t = Core.Campaign.run_trial ~taint:true p ~errors:3 ~rng ~index:0 in
        Option.map
          (fun (s : Sim.Taint.summary) -> s.Sim.Taint.flow)
          t.Core.Campaign.fault_flow
      in
      flow () = flow ())

let trial_flows (s : Core.Campaign.summary) =
  List.map
    (fun (t : Core.Campaign.trial) ->
      match t.Core.Campaign.fault_flow with
      | None -> "none"
      | Some f ->
        Printf.sprintf "%d:%s/%d/%d" t.Core.Campaign.index
          (Sim.Taint.flow_to_string f.Sim.Taint.flow)
          f.Sim.Taint.control_free f.Sim.Taint.control_via_memory)
    s.Core.Campaign.trials

let test_taint_jobs_bit_exact () =
  let p = Lazy.force gcd_prepared Core.Policy.Protect_nothing in
  let summary jobs =
    Core.Campaign.run ~jobs ~taint:true p ~errors:2 ~trials:13 ~seed:5
  in
  let a = summary 1 and b = summary 4 in
  Alcotest.(check (list string)) "per-trial flows identical" (trial_flows a)
    (trial_flows b);
  Alcotest.(check bool) "flow counters identical" true
    (a.Core.Campaign.stats.Core.Stats.flows
    = b.Core.Campaign.stats.Core.Stats.flows)

(* ------------------------------------------------------------------ *)
(* Audit.                                                              *)

let test_audit_protect_control_sound () =
  let p = Lazy.force gcd_prepared Core.Policy.Protect_control in
  let r = Core.Audit.run p ~errors:3 ~trials:20 ~seed:11 in
  Alcotest.(check bool) "sound" true (Core.Audit.sound r);
  Alcotest.(check int) "no memory-free control events" 0 r.Core.Audit.control_free;
  Core.Audit.check r

let test_audit_protect_nothing_contaminated () =
  let p = Lazy.force gcd_prepared Core.Policy.Protect_nothing in
  let r = Core.Audit.run p ~errors:3 ~trials:20 ~seed:11 in
  Alcotest.(check bool) "positive control: faults reach branches" true
    (Core.Stats.flows_get r.Core.Audit.stats.Core.Stats.flows
       Sim.Taint.Reached_control
    > 0);
  (* no promise under protect-nothing, so never a violation *)
  Alcotest.(check bool) "vacuously sound" true (Core.Audit.sound r)

let test_audit_protect_all_inert () =
  let p = Lazy.force gcd_prepared Core.Policy.Protect_all in
  let r = Core.Audit.run p ~errors:3 ~trials:10 ~seed:11 in
  Alcotest.(check bool) "sound" true (Core.Audit.sound r);
  Alcotest.(check int) "every trial vanished" 10
    (Core.Stats.flows_get r.Core.Audit.stats.Core.Stats.flows
       Sim.Taint.Vanished)

let () =
  Alcotest.run "taint"
    [
      ( "flows",
        [
          Alcotest.test_case "reached control" `Quick test_flow_control;
          Alcotest.test_case "control via memory" `Quick
            test_flow_control_via_memory;
          Alcotest.test_case "reached memory" `Quick test_flow_memory;
          Alcotest.test_case "reached address" `Quick test_flow_address;
          Alcotest.test_case "trap operand" `Quick test_flow_trap_operand;
          Alcotest.test_case "data only" `Quick test_flow_data_only;
          Alcotest.test_case "vanished" `Quick test_flow_vanished;
          Alcotest.test_case "no fault / no taint" `Quick test_no_fault_no_flow;
        ] );
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest taint_plain_equivalence;
          QCheck_alcotest.to_alcotest flow_determinism;
          Alcotest.test_case "jobs bit-exact with taint" `Quick
            test_taint_jobs_bit_exact;
        ] );
      ( "audit",
        [
          Alcotest.test_case "protect-control sound" `Quick
            test_audit_protect_control_sound;
          Alcotest.test_case "protect-nothing contaminated" `Quick
            test_audit_protect_nothing_contaminated;
          Alcotest.test_case "protect-all inert" `Quick
            test_audit_protect_all_inert;
        ] );
    ]
