lib/core/campaign.mli: Ir Outcome Policy Random Sim Tagging
