(* Hardware-visible traps. Any trap ends the run and is classified as a
   catastrophic failure (a "crash" in the paper's terminology). *)

type t =
  | Out_of_bounds of int       (* byte address outside memory *)
  | Unaligned of int           (* byte address not 4-aligned *)
  | Division_by_zero
  | Type_confusion of int      (* integer access to a float cell or vice versa *)
  | Float_to_int_overflow of float
  | Call_stack_overflow of int (* depth reached *)
  | Null_access                (* address 0..3, the null guard *)

exception Error of t

let to_string = function
  | Out_of_bounds a -> Printf.sprintf "out-of-bounds access at byte %d" a
  | Unaligned a -> Printf.sprintf "unaligned access at byte %d" a
  | Division_by_zero -> "integer division by zero"
  | Type_confusion a -> Printf.sprintf "type-confused access at byte %d" a
  | Float_to_int_overflow x -> Printf.sprintf "f2i overflow on %g" x
  | Call_stack_overflow d -> Printf.sprintf "call stack overflow at depth %d" d
  | Null_access -> "null access"

(* Payload-free slug, stable across runs — telemetry counter names
   ("sim.trap.<kind>") must not vary with the faulting address. *)
let kind = function
  | Out_of_bounds _ -> "out_of_bounds"
  | Unaligned _ -> "unaligned"
  | Division_by_zero -> "div_by_zero"
  | Type_confusion _ -> "type_confusion"
  | Float_to_int_overflow _ -> "f2i_overflow"
  | Call_stack_overflow _ -> "stack_overflow"
  | Null_access -> "null_access"

let pp fmt t = Format.pp_print_string fmt (to_string t)
