test/test_workloads.ml: Alcotest Array Char Int32 List String Workloads
