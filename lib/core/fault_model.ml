(* Single-bit-upset fault model (paper Section 4, "Error Insertion").

   A plan places [errors] single bit flips uniformly at random over the
   dynamic executions of injectable instructions, as counted by a
   profiling run. Ordinals are drawn without replacement (the paper
   inserts a fixed number of distinct errors per run); the bit position
   is uniform over the destination's width — we draw in [0, 64) and the
   interpreter folds it onto 32 bits for integer destinations, which
   keeps the per-bit distribution uniform for both banks. *)

type plan = (int, int) Hashtbl.t

let planned ~injectable_total ~errors =
  if injectable_total <= 0 then 0 else min errors injectable_total

(* Two draw strategies behind one distribution (uniform without
   replacement):

   - sparse (errors << injectable_total, every paper-rate experiment):
     rejection sampling, kept byte-for-byte identical to the historical
     RNG stream so existing goldens and published seeds reproduce;
   - dense (wanted approaching the population): rejection sampling
     degenerates — at wanted = injectable_total the expected draw count
     is n·H(n) and each tail acceptance takes ~n attempts — so a
     partial Fisher–Yates over the ordinal pool does it in exactly
     [wanted] index draws.

   The switch at wanted*2 > injectable_total keeps expected rejection
   work bounded (≤ 2 draws per acceptance) while leaving the sparse
   stream untouched. *)
let make_plan ~rng ~injectable_total ~errors : plan =
  let plan = Hashtbl.create (max errors 1) in
  if injectable_total > 0 then begin
    let wanted = min errors injectable_total in
    if wanted * 2 <= injectable_total then
      while Hashtbl.length plan < wanted do
        let ordinal = Random.State.int rng injectable_total in
        if not (Hashtbl.mem plan ordinal) then
          Hashtbl.replace plan ordinal (Random.State.int rng 64)
      done
    else begin
      let pool = Array.init injectable_total Fun.id in
      for i = 0 to wanted - 1 do
        let j = i + Random.State.int rng (injectable_total - i) in
        let t = pool.(i) in
        pool.(i) <- pool.(j);
        pool.(j) <- t;
        Hashtbl.replace plan pool.(i) (Random.State.int rng 64)
      done
    end
  end;
  plan

(* The interpreter consumes plans as ordinal-sorted parallel arrays
   (one int compare per injectable execution instead of a hash probe);
   the draw above stays a Hashtbl for O(1) without-replacement checks
   and is converted once per trial here. *)
let injection ~tags ~plan : Sim.Interp.injection =
  Sim.Interp.injection ~tags
    ~plan:(Hashtbl.fold (fun ord bit acc -> (ord, bit) :: acc) plan [])

(* An empty plan under real tags: the profiling configuration that
   counts injectable dynamic instructions without perturbing anything. *)
let profiling_injection ~tags : Sim.Interp.injection =
  Sim.Interp.injection ~tags ~plan:[]
