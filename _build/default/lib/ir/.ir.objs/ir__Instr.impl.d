lib/ir/instr.ml: Format List Printf Reg String
