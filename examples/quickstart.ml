(* Quickstart: the whole platform in one page.

   1. Write a tiny kernel in Mlang (an embedded mini-C).
   2. Compile it to the MIPS-like IR.
   3. Run the tagging analysis: which instructions may run on
      low-reliability hardware without endangering control flow?
   4. Inject single-bit faults and watch the difference between
      protecting control data and protecting nothing.

   Run with:  dune exec examples/quickstart.exe *)

let say fmt = Printf.printf (fmt ^^ "\n%!")

(* A kernel that scales an array by 3/2 with saturation — data errors
   are tolerable (a wrong pixel), control errors are not (a wrong loop
   bound loops forever or skips the work). *)
let program =
  let open Mlang.Dsl in
  let n = 64 in
  program
    [
      garray_init "input"
        (Array.init n (fun k -> Int32.of_int ((k * 37) mod 200)));
      garray "output" n;
    ]
    [
      fn "scale" [ p_int "x" ] ~ret:(Some Mlang.Ast.TInt)
        [
          let_ "y" (v "x" *! i 3 /! i 2);
          when_ (v "y" >! i 255) [ ret (i 255) ];
          ret (v "y");
        ];
      proc "kernel" []
        [
          for_ "k" (i 0) (i n)
            [ sto "output" (v "k") (call "scale" [ "input".%(v "k") ]) ];
        ];
      fn ~eligible:false "main" [] ~ret:(Some Mlang.Ast.TInt)
        [ call_ "kernel" []; ret (i 0) ];
    ]

let () =
  (* compile and run fault-free *)
  let prog = Mlang.Compile.to_ir program in
  let code = Sim.Code.of_prog prog in
  let golden = Sim.Interp.run_exn code in
  say "fault-free run: %d dynamic instructions"
    golden.Sim.Interp.dyn_count;

  (* the paper's static analysis *)
  let tagging = Core.Tagging.compute prog in
  let `Tagged tagged, `Producing producing, `Total total =
    Core.Tagging.static_stats tagging
  in
  say "tagging: %d of %d value-producing instructions (of %d total) are"
    tagged producing total;
  say "         low-reliability — their results never reach a branch or an address";

  (* a fault-injection campaign under each policy *)
  let target = Core.Campaign.of_prog prog in
  let golden_out = Sim.Memory.read_global_ints golden.Sim.Interp.memory prog "output" in
  (* Scoring happens at the source: each trial's output array is read
     on the worker and only the percentage survives into the summary. *)
  let score r =
    Fidelity.Byte_match.pct_equal golden_out
      (Sim.Memory.read_global_ints r.Sim.Interp.memory prog "output")
  in
  List.iter
    (fun policy ->
      let prepared = Core.Campaign.prepare target policy in
      let summary =
        Core.Campaign.run ~score prepared ~errors:4 ~trials:40 ~seed:7
      in
      say "%-18s 4 errors x 40 trials: %4.0f%% catastrophic, %5.1f%% of \
           outputs correct on completed runs"
        (Core.Policy.to_string policy)
        (Core.Campaign.pct_catastrophic summary)
        (Option.value ~default:Float.nan
           (Core.Campaign.mean_fidelity summary)))
    [ Core.Policy.Protect_control; Core.Policy.Protect_nothing ]
