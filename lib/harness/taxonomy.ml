(* Outcome taxonomy of injected faults, the classic fault-injection
   breakdown the paper's data implies but never tabulates:

   - benign: the run completed with output indistinguishable from the
     fault-free run (the fault was masked by the application);
   - degraded: completed, but the fidelity measure moved — a silent
     data corruption the application tolerates by design;
   - catastrophic: crash or infinite execution.

   Computed per application at a fixed error count under
   [Protect_control]; a benign trial is one whose fidelity equals the
   golden run's self-score (within epsilon). *)

type row = {
  app_name : string;
  errors : int;
  n : int;
  pct_benign : float;
  pct_degraded : float;
  pct_catastrophic : float;
}

let epsilon = 1e-9

let run ?(errors = 10) ?(trials = 30) ?(seed = 41) ?jobs
    ~(mode : Experiment.mode) (loaded : Experiment.loaded list) : row list =
  List.map
    (fun (l : Experiment.loaded) ->
      let p = l.Experiment.prepared mode Core.Policy.Protect_control in
      let golden = l.Experiment.golden in
      let score r = l.Experiment.built.Apps.App.score ~golden r in
      let s = Core.Campaign.run ?jobs ~score p ~errors ~trials ~seed in
      let self_score = l.Experiment.built.Apps.App.score ~golden golden in
      let fidelities = Core.Campaign.fidelities s in
      let benign =
        List.length
          (List.filter (fun f -> Float.abs (f -. self_score) < epsilon) fidelities)
      in
      let completed = Core.Campaign.completed s in
      let n = Core.Campaign.n s in
      let pct x = 100.0 *. float_of_int x /. float_of_int (max 1 n) in
      {
        app_name = l.Experiment.app.Apps.App.name;
        errors;
        n;
        pct_benign = pct benign;
        pct_degraded = pct (completed - benign);
        pct_catastrophic = Core.Campaign.pct_catastrophic s;
      })
    loaded

let to_table ~(mode : Experiment.mode) rows : Report.table =
  let errors = match rows with [] -> 0 | r :: _ -> r.errors in
  Report.table ~id:"taxonomy"
    ~title:
      (Printf.sprintf
         "Fault outcome taxonomy at %d errors (protection ON, %s tagging): \
          benign / degraded / catastrophic"
         errors
         (Experiment.mode_name mode))
    ~columns:
      [
        Report.column ~key:"app" "app";
        Report.column ~key:"pct_benign" "% benign (masked)";
        Report.column ~key:"pct_degraded" "% degraded";
        Report.column ~key:"pct_catastrophic" "% catastrophic";
      ]
    (List.map
       (fun r ->
         [
           Report.text r.app_name;
           Report.pct r.pct_benign;
           Report.pct r.pct_degraded;
           Report.pct r.pct_catastrophic;
         ])
       rows)

let render ~(mode : Experiment.mode) rows =
  Report.to_text (to_table ~mode rows)

(* ------------------------------------------------------------------ *)
(* Fault-flow taxonomy: the shadow-taint audit (DESIGN §11), per app
   under the two informative policies. [Protect_control] carries the
   soundness invariant (zero memory-free control contamination);
   [Protect_nothing] is the positive control whose contamination shows
   the taint machinery actually observes faults reaching branches. *)

type audit_row = {
  audit_app : string;
  report : Core.Audit.report;
}

let audit_policies = [ Core.Policy.Protect_control; Core.Policy.Protect_nothing ]

let audit ?(errors = 10) ?(trials = 30) ?(seed = 41) ?jobs
    ~(mode : Experiment.mode) (loaded : Experiment.loaded list) :
    audit_row list =
  List.concat_map
    (fun (l : Experiment.loaded) ->
      List.map
        (fun policy ->
          let p = l.Experiment.prepared mode policy in
          {
            audit_app = l.Experiment.app.Apps.App.name;
            report = Core.Audit.run ?jobs p ~errors ~trials ~seed;
          })
        audit_policies)
    loaded

let audit_table ~(mode : Experiment.mode) (rows : audit_row list) :
    Report.table =
  let errors, trials =
    match rows with [] -> (0, 0) | r :: _ -> (r.report.Core.Audit.errors, r.report.Core.Audit.trials)
  in
  Report.table ~id:"audit"
    ~title:
      (Printf.sprintf
         "Fault-flow taxonomy at %d errors x %d trials (%s tagging): \
          trial counts per taint class, control-contamination events, \
          soundness verdict"
         errors trials
         (Experiment.mode_name mode))
    ~columns:
      [
        Report.column ~key:"app" "app";
        Report.column ~key:"policy" "policy";
        Report.column ~key:"vanished" "vanished";
        Report.column ~key:"data_only" "data";
        Report.column ~key:"reached_memory" "mem";
        Report.column ~key:"reached_address" "addr";
        Report.column ~key:"reached_control" "ctl";
        Report.column ~key:"ctl_free_events" "ctl-free";
        Report.column ~key:"ctl_via_mem_events" "ctl-via-mem";
        Report.column ~key:"verdict" "verdict";
      ]
    (List.map
       (fun r ->
         let rep = r.report in
         let f = rep.Core.Audit.stats.Core.Stats.flows in
         [
           Report.text r.audit_app;
           Report.text (Core.Policy.to_string rep.Core.Audit.policy);
           Report.count f.Core.Stats.vanished;
           Report.count f.Core.Stats.data_only;
           Report.count f.Core.Stats.reached_memory;
           Report.count f.Core.Stats.reached_address;
           Report.count f.Core.Stats.reached_control;
           Report.count rep.Core.Audit.control_free;
           Report.count rep.Core.Audit.control_via_memory;
           Report.text
             (match rep.Core.Audit.policy with
              | Core.Policy.Protect_nothing -> "n/a"
              | _ -> if Core.Audit.sound rep then "sound" else "VIOLATED");
         ])
       rows)

let audit_violations (rows : audit_row list) =
  List.filter (fun r -> not (Core.Audit.sound r.report)) rows

let render_audit ~(mode : Experiment.mode) (rows : audit_row list) =
  let bad = audit_violations rows in
  Report.to_text (audit_table ~mode rows)
  ^ "\n\n"
  ^
  if bad = [] then
    "invariant holds: no memory-free control contamination under \
     protect-control in any trial"
  else
    String.concat "\n"
      (List.map
         (fun r ->
           Printf.sprintf "VIOLATION %s %s" r.audit_app
             (Core.Audit.describe r.report))
         bad)
