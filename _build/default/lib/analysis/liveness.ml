(* Classic backward liveness: a register is live if some path reads it
   before any redefinition. Used by the compiler's dead-code
   elimination and by tests as an oracle for the tagging analysis. *)

module B = Dataflow.Backward (Dataflow.Reg_set_domain)

type t = {
  cfg : Ir.Cfg.t;
  result : B.result;
}

let transfer _i instr live =
  let after_def =
    match Ir.Instr.def instr with
    | Some d -> Ir.Reg.Set.remove d live
    | None -> live
  in
  List.fold_left
    (fun acc r -> Ir.Reg.Set.add r acc)
    after_def (Ir.Instr.uses instr)

let compute (cfg : Ir.Cfg.t) =
  let result = B.solve cfg ~exit_state:Ir.Reg.Set.empty ~transfer in
  { cfg; result }

let live_in t b = t.result.B.live_in.(b)
let live_out t b = t.result.B.live_out.(b)

(* Per-instruction live-after sets (the set live just after instruction
   [i] executes), as an array indexed by body position. *)
let live_after t =
  let n = Array.length t.cfg.Ir.Cfg.func.Ir.Func.body in
  let out = Array.make n Ir.Reg.Set.empty in
  B.iter_instrs t.cfg t.result ~transfer (fun i _instr after ->
      out.(i) <- after);
  out
