lib/analysis/dataflow.ml: Array Int Ir List Queue Set
