(* Tests for the dataflow framework and the classic analyses. *)

open Ir

let r0 = Reg.int 0
let r1 = Reg.int 1
let r2 = Reg.int 2

(* if r0 then r1 = r2 else r1 = 7; ret r1 — r2 live only on one arm *)
let diamond =
  Func.make ~name:"d" ~params:[ r0; r2 ] ~ret:(Some Ty.I32)
    [
      Instr.Brz (Instr.Eq, r0, "else");
      Instr.Mov (r1, r2);
      Instr.Jmp "end";
      Instr.Label "else";
      Instr.Li (r1, 7l);
      Instr.Label "end";
      Instr.Ret (Some r1);
    ]

let loop_func =
  (* while r0 > 0 { r1 = r1 + r0; r0 = r0 - 1 }; ret r1 *)
  Func.make ~name:"l" ~params:[ r0 ] ~ret:(Some Ty.I32)
    [
      Instr.Li (r1, 0l);
      Instr.Label "head";
      Instr.Brz (Instr.Le, r0, "exit");
      Instr.Bin (Instr.Add, r1, r1, r0);
      Instr.Bini (Instr.Sub, r0, r0, 1l);
      Instr.Jmp "head";
      Instr.Label "exit";
      Instr.Ret (Some r1);
    ]

(* ------------------------------------------------------------------ *)
(* Liveness.                                                           *)

let test_liveness_diamond () =
  let cfg = Cfg.build diamond in
  let live = Analysis.Liveness.compute cfg in
  let entry_in = Analysis.Liveness.live_in live 0 in
  Alcotest.(check bool) "r0 live at entry" true (Reg.Set.mem r0 entry_in);
  Alcotest.(check bool) "r2 live at entry" true (Reg.Set.mem r2 entry_in);
  Alcotest.(check bool) "r1 dead at entry" false (Reg.Set.mem r1 entry_in)

let test_liveness_loop () =
  let cfg = Cfg.build loop_func in
  let live = Analysis.Liveness.compute cfg in
  (* at the loop head both the counter and the accumulator are live *)
  let head_block = Cfg.block_of_index cfg 1 in
  let inn = Analysis.Liveness.live_in live head_block in
  Alcotest.(check bool) "r0 live at head" true (Reg.Set.mem r0 inn);
  Alcotest.(check bool) "r1 live at head" true (Reg.Set.mem r1 inn)

let test_live_after () =
  let cfg = Cfg.build loop_func in
  let live = Analysis.Liveness.compute cfg in
  let after = Analysis.Liveness.live_after live in
  (* after the final ret nothing is live *)
  Alcotest.(check int) "nothing after ret" 0
    (Reg.Set.cardinal after.(7));
  (* after r1's definition at 0, r1 is live (used in loop) *)
  Alcotest.(check bool) "acc live after init" true (Reg.Set.mem r1 after.(0))

(* ------------------------------------------------------------------ *)
(* Reaching definitions.                                               *)

let test_reaching_diamond () =
  let cfg = Cfg.build diamond in
  let reach = Analysis.Reaching.compute cfg in
  (* both arm definitions of r1 reach the final ret *)
  let defs = Analysis.Reaching.reaching_defs_of_use reach ~use_index:6 ~reg:r1 in
  Alcotest.(check (list int)) "both defs reach" [ 1; 4 ]
    (List.sort compare (Analysis.Reaching.IS.elements defs))

let test_reaching_params () =
  let cfg = Cfg.build diamond in
  let reach = Analysis.Reaching.compute cfg in
  (* the use of r0 in the branch sees the parameter pseudo-site -1 *)
  let defs = Analysis.Reaching.reaching_defs_of_use reach ~use_index:0 ~reg:r0 in
  Alcotest.(check (list int)) "param site" [ -1 ]
    (Analysis.Reaching.IS.elements defs)

let test_reaching_kill () =
  (* r1 = 1; r1 = 2; use r1 -> only the second def reaches *)
  let f =
    Func.make ~name:"k" ~params:[] ~ret:(Some Ty.I32)
      [ Instr.Li (r1, 1l); Instr.Li (r1, 2l); Instr.Ret (Some r1) ]
  in
  let reach = Analysis.Reaching.compute (Cfg.build f) in
  let defs = Analysis.Reaching.reaching_defs_of_use reach ~use_index:2 ~reg:r1 in
  Alcotest.(check (list int)) "killed" [ 1 ]
    (Analysis.Reaching.IS.elements defs)

(* ------------------------------------------------------------------ *)
(* Dominators.                                                         *)

let test_dominators_diamond () =
  let cfg = Cfg.build diamond in
  let dom = Analysis.Dominators.compute cfg in
  (* entry dominates everything; neither arm dominates the join *)
  Alcotest.(check bool) "entry dominates join" true
    (Analysis.Dominators.dominates dom 0 3);
  Alcotest.(check bool) "arm does not dominate join" false
    (Analysis.Dominators.dominates dom 1 3);
  Alcotest.(check (option int)) "idom of join is entry" (Some 0)
    (Analysis.Dominators.idom dom 3)

let test_back_edges () =
  let cfg = Cfg.build loop_func in
  let dom = Analysis.Dominators.compute cfg in
  match Analysis.Dominators.back_edges dom with
  | [ (src, dst) ] ->
    Alcotest.(check bool) "target dominates source" true
      (Analysis.Dominators.dominates dom dst src)
  | edges -> Alcotest.failf "expected 1 back edge, got %d" (List.length edges)

let test_no_back_edges_in_dag () =
  let cfg = Cfg.build diamond in
  let dom = Analysis.Dominators.compute cfg in
  Alcotest.(check int) "dag" 0
    (List.length (Analysis.Dominators.back_edges dom))

(* ------------------------------------------------------------------ *)
(* Call graph.                                                         *)

let call ?dst func args = Instr.Call { dst; func; args }

let three_func_prog () =
  let leaf =
    Func.make ~name:"leaf" ~params:[] ~ret:None [ Instr.Ret None ]
  in
  let mid =
    Func.make ~name:"mid" ~params:[] ~ret:None
      [ call "leaf" []; Instr.Ret None ]
  in
  let island =
    Func.make ~name:"island" ~params:[] ~ret:None [ Instr.Ret None ]
  in
  let main =
    Func.make ~name:"main" ~params:[] ~ret:None
      [ call "mid" []; Instr.Ret None ]
  in
  Prog.make ~globals:[] [ main; mid; leaf; island ]

let test_callgraph () =
  let cg = Analysis.Callgraph.compute (three_func_prog ()) in
  Alcotest.(check (list string)) "main calls mid" [ "mid" ]
    (Analysis.Callgraph.SS.elements (Analysis.Callgraph.callees cg "main"));
  Alcotest.(check (list string)) "leaf called by mid" [ "mid" ]
    (Analysis.Callgraph.SS.elements (Analysis.Callgraph.callers cg "leaf"));
  let reach = Analysis.Callgraph.reachable cg in
  Alcotest.(check bool) "leaf reachable" true
    (Analysis.Callgraph.SS.mem "leaf" reach);
  Alcotest.(check bool) "island unreachable" false
    (Analysis.Callgraph.SS.mem "island" reach)

let test_recursion_detection () =
  let self =
    Func.make ~name:"self" ~params:[] ~ret:None
      [ call "self" []; Instr.Ret None ]
  in
  let main =
    Func.make ~name:"main" ~params:[] ~ret:None
      [ call "self" []; Instr.Ret None ]
  in
  let cg = Analysis.Callgraph.compute (Prog.make ~globals:[] [ main; self ]) in
  Alcotest.(check bool) "self recursive" true
    (Analysis.Callgraph.is_recursive cg "self");
  Alcotest.(check bool) "main not recursive" false
    (Analysis.Callgraph.is_recursive cg "main")

(* ------------------------------------------------------------------ *)
(* Property: liveness solution is a fixpoint (retransfer stable).      *)

let liveness_fixpoint_prop =
  QCheck.Test.make ~name:"liveness is a fixpoint" ~count:100
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 4 + Random.State.int rng 16 in
      let body = ref [] in
      for i = 0 to n - 1 do
        body := Instr.Label (Printf.sprintf "L%d" i) :: !body;
        let d = Reg.int (Random.State.int rng 4) in
        let a = Reg.int (Random.State.int rng 4) in
        let instr =
          match Random.State.int rng 4 with
          | 0 -> Instr.Bini (Instr.Add, d, a, 1l)
          | 1 -> Instr.Brz (Instr.Eq, a, Printf.sprintf "L%d" (Random.State.int rng n))
          | 2 -> Instr.Mov (d, a)
          | _ -> Instr.Li (d, 3l)
        in
        body := instr :: !body
      done;
      body := Instr.Ret None :: !body;
      let f = Func.make ~name:"p" ~params:[] ~ret:None (List.rev !body) in
      let cfg = Cfg.build f in
      let live = Analysis.Liveness.compute cfg in
      (* live_in(b) = transfer over block applied to join of succ live_ins *)
      let check_block blk =
        let out =
          List.fold_left
            (fun acc s -> Reg.Set.union acc (Analysis.Liveness.live_in live s))
            Reg.Set.empty blk.Cfg.succs
        in
        let state = ref out in
        Cfg.rev_iter_instrs cfg blk (fun i instr ->
            state := Analysis.Liveness.transfer i instr !state);
        Reg.Set.equal !state (Analysis.Liveness.live_in live blk.Cfg.id)
      in
      Array.for_all check_block cfg.Cfg.blocks)

let () =
  Alcotest.run "analysis"
    [
      ( "liveness",
        [
          Alcotest.test_case "diamond" `Quick test_liveness_diamond;
          Alcotest.test_case "loop" `Quick test_liveness_loop;
          Alcotest.test_case "live after" `Quick test_live_after;
          QCheck_alcotest.to_alcotest liveness_fixpoint_prop;
        ] );
      ( "reaching",
        [
          Alcotest.test_case "diamond merge" `Quick test_reaching_diamond;
          Alcotest.test_case "parameters" `Quick test_reaching_params;
          Alcotest.test_case "kill" `Quick test_reaching_kill;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "back edges" `Quick test_back_edges;
          Alcotest.test_case "dag has none" `Quick test_no_back_edges_in_dag;
        ] );
      ( "callgraph",
        [
          Alcotest.test_case "edges and reachability" `Quick test_callgraph;
          Alcotest.test_case "recursion" `Quick test_recursion_detection;
        ] );
    ]
