lib/fidelity/snr.ml: Array Float
