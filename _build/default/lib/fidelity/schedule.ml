(* Fidelity of a min-cost-flow schedule (paper Table 1: MCF, "% extra
   time in schedule"; Figure 3: "% optimal schedules found").

   A schedule is judged against the known-optimal cost and checked for
   feasibility: the required amount shipped, capacities respected, and
   flow conserved. Incorrect schedules in the paper were "not just
   inoptimal, but incomplete" — [Infeasible] captures that. *)

type verdict =
  | Optimal
  | Suboptimal of float  (* % extra cost over optimal *)
  | Infeasible

type instance = {
  n_nodes : int;
  arcs : (int * int * int * int) array;  (* from, to, capacity, cost *)
  source : int;
  sink : int;
  supply : int;
}

let check (inst : instance) ~(optimal_cost : int) ~(flows : int array)
    ~(reported_cost : int) : verdict =
  if Array.length flows <> Array.length inst.arcs then Infeasible
  else begin
    let balance = Array.make inst.n_nodes 0 in
    let ok = ref true in
    let actual_cost = ref 0 in
    Array.iteri
      (fun i (u, v, cap, cost) ->
        let f = flows.(i) in
        if f < 0 || f > cap then ok := false
        else begin
          balance.(u) <- balance.(u) - f;
          balance.(v) <- balance.(v) + f;
          actual_cost := !actual_cost + (f * cost)
        end)
      inst.arcs;
    Array.iteri
      (fun node b ->
        let want =
          if node = inst.source then -inst.supply
          else if node = inst.sink then inst.supply
          else 0
        in
        if b <> want then ok := false)
      balance;
    if (not !ok) || reported_cost <> !actual_cost then Infeasible
    else if !actual_cost = optimal_cost then Optimal
    else
      Suboptimal
        (100.0
        *. float_of_int (!actual_cost - optimal_cost)
        /. float_of_int (max optimal_cost 1))
  end

let is_optimal = function Optimal -> true | Suboptimal _ | Infeasible -> false
