(* Outcome taxonomy of injected faults, the classic fault-injection
   breakdown the paper's data implies but never tabulates:

   - benign: the run completed with output indistinguishable from the
     fault-free run (the fault was masked by the application);
   - degraded: completed, but the fidelity measure moved — a silent
     data corruption the application tolerates by design;
   - catastrophic: crash or infinite execution.

   Computed per application at a fixed error count under
   [Protect_control]; a benign trial is one whose fidelity equals the
   golden run's self-score (within epsilon). *)

type row = {
  app_name : string;
  errors : int;
  n : int;
  pct_benign : float;
  pct_degraded : float;
  pct_catastrophic : float;
}

let epsilon = 1e-9

let run ?(errors = 10) ?(trials = 30) ?(seed = 41) ?jobs
    ~(mode : Experiment.mode) (loaded : Experiment.loaded list) : row list =
  List.map
    (fun (l : Experiment.loaded) ->
      let p = l.Experiment.prepared mode Core.Policy.Protect_control in
      let golden = l.Experiment.golden in
      let score r = l.Experiment.built.Apps.App.score ~golden r in
      let s = Core.Campaign.run ?jobs ~score p ~errors ~trials ~seed in
      let self_score = l.Experiment.built.Apps.App.score ~golden golden in
      let fidelities = Core.Campaign.fidelities s in
      let benign =
        List.length
          (List.filter (fun f -> Float.abs (f -. self_score) < epsilon) fidelities)
      in
      let completed = Core.Campaign.completed s in
      let n = Core.Campaign.n s in
      let pct x = 100.0 *. float_of_int x /. float_of_int (max 1 n) in
      {
        app_name = l.Experiment.app.Apps.App.name;
        errors;
        n;
        pct_benign = pct benign;
        pct_degraded = pct (completed - benign);
        pct_catastrophic = Core.Campaign.pct_catastrophic s;
      })
    loaded

let to_table ~(mode : Experiment.mode) rows : Report.table =
  let errors = match rows with [] -> 0 | r :: _ -> r.errors in
  Report.table ~id:"taxonomy"
    ~title:
      (Printf.sprintf
         "Fault outcome taxonomy at %d errors (protection ON, %s tagging): \
          benign / degraded / catastrophic"
         errors
         (Experiment.mode_name mode))
    ~columns:
      [
        Report.column ~key:"app" "app";
        Report.column ~key:"pct_benign" "% benign (masked)";
        Report.column ~key:"pct_degraded" "% degraded";
        Report.column ~key:"pct_catastrophic" "% catastrophic";
      ]
    (List.map
       (fun r ->
         [
           Report.text r.app_name;
           Report.pct r.pct_benign;
           Report.pct r.pct_degraded;
           Report.pct r.pct_catastrophic;
         ])
       rows)

let render ~(mode : Experiment.mode) rows =
  Report.to_text (to_table ~mode rows)
